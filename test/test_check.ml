(* Tests for the correctness tooling: the Utlb_check static linter and
   the runtime invariant sanitizers.

   The sanitizer tests are mutation-style: each one injects a specific
   corruption behind the engine's back (a leaked pin, a garbage-frame
   DMA, a stale cache line, a broken classifier shadow) and asserts the
   matching UVxx violation fires; the golden tests assert that every
   unmutated workload runs violation-free under all three engines. *)

open Utlb
module Check = Utlb_check
module Finding = Utlb_check.Finding
module Config_file = Utlb_check.Config_file
module Config_lint = Utlb_check.Config_lint
module Invariant = Utlb_check.Invariant
module Sanitizer = Utlb_sim.Sanitizer
module Pid = Utlb_mem.Pid
module Host_memory = Utlb_mem.Host_memory

let pid0 = Pid.of_int 0

let codes findings = List.map (fun f -> f.Finding.code) findings

let has_code code findings = List.mem code (codes findings)

let check_has code findings =
  Alcotest.(check bool)
    (code ^ " reported")
    true (has_code code findings)

(* --- Static lint: config files -------------------------------------- *)

let test_parse_clean () =
  let text =
    "# comment\nengine = utlb\nentries = 4096\nassoc = 2-way\nprefetch = 8\n\
     limit_mb = 32\npin_table = 1:27, 2:30\n"
  in
  let config, findings = Config_file.parse_string text in
  Alcotest.(check (list string)) "no findings" [] (codes findings);
  Alcotest.(check int) "entries" 4096 config.Config_file.entries;
  Alcotest.(check int) "prefetch" 8 config.Config_file.prefetch;
  Alcotest.(check (option int)) "limit" (Some 32) config.Config_file.limit_mb;
  Alcotest.(check bool)
    "pin_table" true
    (config.Config_file.pin_table = [ (1, 27.0); (2, 30.0) ])

let test_parse_syntax_findings () =
  let _, findings =
    Config_file.parse_string
      "no equals here\nentries =\nentires = 1\nentries = bogus\n\
       entries = 512\nentries = 1024\n"
  in
  check_has "UC001" findings;
  check_has "UC005" findings;
  check_has "UC002" findings;
  check_has "UC003" findings;
  check_has "UC004" findings

let test_parse_bad_value_keeps_default () =
  let config, findings = Config_file.parse_string "entries = many\n" in
  check_has "UC003" findings;
  Alcotest.(check int) "default kept" Config_file.default.Config_file.entries
    config.Config_file.entries

(* --- Static lint: semantics ------------------------------------------ *)

let lint text = Config_lint.lint_config (fst (Config_file.parse_string text))

let test_lint_geometry () =
  check_has "UC101" (lint "entries = 0\n");
  check_has "UC102" (lint "entries = 1026\nassoc = 4-way\n");
  check_has "UC103" (lint "entries = 6000\n");
  check_has "UC104" (lint "entries = 65536\n")

let test_lint_windows () =
  check_has "UC110" (lint "prefetch = 0\n");
  check_has "UC111" (lint "entries = 1024\nprefetch = 2048\n");
  check_has "UC112" (lint "prepin = -1\n");
  check_has "UC113" (lint "entries = 1024\nprepin = 2048\n");
  check_has "UC120" (lint "limit_mb = 0\n");
  check_has "UC121" (lint "prepin = 512\nlimit_mb = 1\n")

let test_lint_per_process () =
  check_has "UC130" (lint "engine = pp\nprocesses = 0\n");
  check_has "UC131" (lint "engine = pp\nsram_budget_entries = 0\n");
  check_has "UC132"
    (lint "engine = pp\nprocesses = 64\nsram_budget_entries = 32\n");
  check_has "UC133"
    (lint "engine = pp\nprocesses = 5\nsram_budget_entries = 8192\n")

let test_lint_cost_anchors () =
  check_has "UC140" (Config_lint.lint_cost_anchors ~name:"t" []);
  check_has "UC141"
    (Config_lint.lint_cost_anchors ~name:"t" [ (1, 1.0); (1, 2.0) ]);
  check_has "UC142" (Config_lint.lint_cost_anchors ~name:"t" [ (0, 1.0) ]);
  check_has "UC143" (Config_lint.lint_cost_anchors ~name:"t" [ (1, -1.0) ]);
  check_has "UC144"
    (Config_lint.lint_cost_anchors ~name:"t" [ (1, 5.0); (2, 3.0) ])

let test_lint_cost_relations () =
  check_has "UC150" (lint "intr_us = -10\n");
  check_has "UC151" (lint "ni_hit_us = 5.0\n");
  check_has "UC152" (lint "dma_table = 1:2.5, 2:2.6, 4:2.6\n");
  check_has "UC153" (lint "check_min_us = 1.0\n");
  check_has "UC154" (lint "user_check_us = 20.0\n");
  check_has "UC155" (lint "intr_us = 0.1\n")

let test_lint_defaults_clean () =
  let findings = Config_lint.lint_defaults () in
  Alcotest.(check bool) "no errors" false (Finding.has_errors findings);
  Alcotest.(check int) "no warnings" 0 (Finding.warnings findings)

let test_finding_exit_codes () =
  let err = Finding.v ~code:"UC101" "e" in
  let warn = Finding.v ~severity:Finding.Warning ~code:"UC113" "w" in
  let info = Finding.v ~severity:Finding.Info ~code:"UC104" "i" in
  Alcotest.(check int) "clean" 0 (Finding.exit_code []);
  Alcotest.(check int) "info never fails" 0 (Finding.exit_code ~strict:true [ info ]);
  Alcotest.(check int) "errors fail" 1 (Finding.exit_code [ err; info ]);
  Alcotest.(check int) "warnings pass" 0 (Finding.exit_code [ warn ]);
  Alcotest.(check int) "strict warnings fail" 1
    (Finding.exit_code ~strict:true [ warn ]);
  let sorted = Finding.by_severity [ info; warn; err ] in
  Alcotest.(check (list string)) "severity order" [ "UC101"; "UC113"; "UC104" ]
    (codes sorted)

(* --- Runtime sanitizers: mutation tests ------------------------------ *)

let violation_codes san =
  List.map (fun v -> v.Sanitizer.code) (Sanitizer.violations san)

let check_violation code san =
  Alcotest.(check bool)
    (code ^ " fired")
    true
    (List.mem code (violation_codes san))

let make_hier ?host ?sanitizer () =
  Hier_engine.create ?host ?sanitizer ~seed:7L Hier_engine.default_config

let test_sanitizer_pin_leak () =
  let san = Sanitizer.create ~mode:Sanitizer.Record () in
  let e = make_hier ~sanitizer:san () in
  ignore (Hier_engine.lookup e ~pid:pid0 ~vpn:100 ~npages:4);
  (* Leak: an extra pin the engine's accounting never sees. *)
  (match Host_memory.pin (Hier_engine.host e) pid0 ~vpn:9000 ~count:1 with
  | Ok _ -> ()
  | Error `Out_of_memory -> Alcotest.fail "unexpected OOM");
  ignore (Hier_engine.remove_process e pid0);
  check_violation "UV01" san

let test_sanitizer_accounting_drift () =
  let san = Sanitizer.create ~mode:Sanitizer.Record () in
  let e = make_hier ~sanitizer:san () in
  ignore (Hier_engine.lookup e ~pid:pid0 ~vpn:100 ~npages:4);
  (match Host_memory.pin (Hier_engine.host e) pid0 ~vpn:9000 ~count:1 with
  | Ok _ -> ()
  | Error `Out_of_memory -> Alcotest.fail "unexpected OOM");
  Hier_engine.run_invariants e;
  check_violation "UV08" san

let test_sanitizer_stale_cache_entry () =
  let san = Sanitizer.create ~mode:Sanitizer.Record () in
  let e = make_hier ~sanitizer:san () in
  ignore (Hier_engine.lookup e ~pid:pid0 ~vpn:100 ~npages:1);
  let frame = Option.get (Hier_engine.translate e ~pid:pid0 ~vpn:100) in
  (* Corrupt the NI cache: same page, wrong frame. *)
  ignore
    (Ni_cache.insert (Hier_engine.cache e) ~pid:pid0 ~vpn:100
       ~frame:(frame + 1));
  Hier_engine.run_invariants e;
  check_violation "UV04" san

let test_sanitizer_unpinned_cache_entry () =
  let san = Sanitizer.create ~mode:Sanitizer.Record () in
  let e = make_hier ~sanitizer:san () in
  ignore (Hier_engine.lookup e ~pid:pid0 ~vpn:100 ~npages:1);
  (* Unpin behind the engine's back: the cache line now covers an
     evictable page. *)
  Host_memory.unpin (Hier_engine.host e) pid0 ~vpn:100 ~count:1;
  Hier_engine.run_invariants e;
  check_violation "UV05" san

let test_sanitizer_raise_mode () =
  let san = Sanitizer.create ~mode:Sanitizer.Raise () in
  let e = make_hier ~sanitizer:san () in
  ignore (Hier_engine.lookup e ~pid:pid0 ~vpn:100 ~npages:1);
  Host_memory.unpin (Hier_engine.host e) pid0 ~vpn:100 ~count:1;
  match Hier_engine.run_invariants e with
  | () -> Alcotest.fail "expected Sanitizer.Violation"
  | exception Sanitizer.Violation v ->
    Alcotest.(check string) "code" "UV05" v.Sanitizer.code

let test_sanitizer_garbage_frame_dma () =
  let san = Sanitizer.create ~mode:Sanitizer.Record () in
  let host = Host_memory.create () in
  let engine = Utlb_sim.Engine.create () in
  let dma = Utlb_nic.Dma.create (Utlb_nic.Io_bus.create engine) in
  Invariant.guard_dma san ~host dma;
  let garbage = Host_memory.garbage_frame host in
  let payload = Bytes.create 8 in
  Utlb_nic.Dma.host_to_nic dma
    ~frames:[| garbage |]
    ~src:(fun () -> payload)
    ~len:8
    ~on_done:(fun _ -> ());
  check_violation "UV02" san

let test_sanitizer_unpinned_frame_dma () =
  let san = Sanitizer.create ~mode:Sanitizer.Record () in
  let host = Host_memory.create () in
  Host_memory.add_process host pid0;
  let frame =
    match Host_memory.ensure_resident host pid0 ~vpn:5 with
    | Ok frame -> frame
    | Error `Out_of_memory -> Alcotest.fail "unexpected OOM"
  in
  let engine = Utlb_sim.Engine.create () in
  let dma = Utlb_nic.Dma.create (Utlb_nic.Io_bus.create engine) in
  Invariant.guard_dma san ~host dma;
  (* Resident but never pinned: the OS may evict it mid-transfer. *)
  Utlb_nic.Dma.nic_to_host dma
    ~frames:[| frame |]
    ~data:(Bytes.create 8)
    ~on_done:(fun _ -> ());
  check_violation "UV03" san;
  (* A frame backing no page at all is also UV03. *)
  Utlb_nic.Dma.nic_to_host dma
    ~frames:[| frame + 1 |]
    ~data:(Bytes.create 8)
    ~on_done:(fun _ -> ());
  Alcotest.(check int) "two violations" 2 (Sanitizer.count san)

let test_sanitizer_nonmonotonic_dispatch () =
  let san = Sanitizer.create ~mode:Sanitizer.Record () in
  let engine = Utlb_sim.Engine.create () in
  Invariant.monitor_engine san engine;
  Invariant.check_dispatch san
    ~now:(Utlb_sim.Time.of_us 10.0)
    ~at:(Utlb_sim.Time.of_us 5.0);
  check_violation "UV06" san;
  (* Normal forward dispatch through the monitored engine stays clean. *)
  Sanitizer.clear san;
  ignore
    (Utlb_sim.Engine.schedule engine ~delay:(Utlb_sim.Time.of_us 1.0)
       (fun () -> ()));
  Utlb_sim.Engine.run engine;
  Alcotest.(check bool) "clean" true (Sanitizer.is_clean san)

let test_sanitizer_classifier_divergence () =
  let san = Sanitizer.create ~mode:Sanitizer.Record () in
  let e = make_hier ~sanitizer:san () in
  ignore (Hier_engine.lookup e ~pid:pid0 ~vpn:100 ~npages:2);
  Miss_classifier.corrupt_for_testing (Hier_engine.classifier e);
  Hier_engine.run_invariants e;
  check_violation "UV07" san

let test_sanitizer_intr_stale_entry () =
  let san = Sanitizer.create ~mode:Sanitizer.Record () in
  let e =
    Intr_engine.create ~sanitizer:san ~seed:7L Intr_engine.default_config
  in
  ignore (Intr_engine.lookup e ~pid:pid0 ~vpn:100 ~npages:1);
  Host_memory.unpin (Intr_engine.host e) pid0 ~vpn:100 ~count:1;
  Intr_engine.run_invariants e;
  check_violation "UV05" san

let test_sanitizer_intr_pin_leak () =
  let san = Sanitizer.create ~mode:Sanitizer.Record () in
  let e =
    Intr_engine.create ~sanitizer:san ~seed:7L Intr_engine.default_config
  in
  ignore (Intr_engine.lookup e ~pid:pid0 ~vpn:100 ~npages:2);
  (match Host_memory.pin (Intr_engine.host e) pid0 ~vpn:9000 ~count:1 with
  | Ok _ -> ()
  | Error `Out_of_memory -> Alcotest.fail "unexpected OOM");
  ignore (Intr_engine.remove_process e pid0);
  check_violation "UV01" san

let test_sanitizer_describe () =
  List.iter
    (fun (code, _) ->
      Alcotest.(check bool)
        (code ^ " described")
        true
        (Invariant.describe code <> None))
    Invariant.codes;
  Alcotest.(check (option string)) "unknown" None (Invariant.describe "UV99")

(* --- Golden runs: unmutated workloads are violation-free ------------- *)

let mechanisms =
  [
    ("utlb", Sim_driver.Utlb Hier_engine.default_config);
    ("intr", Sim_driver.Intr Intr_engine.default_config);
    ("per-process", Sim_driver.Per_process Pp_engine.default_config);
  ]

let test_golden_workloads () =
  List.iter
    (fun (spec : Utlb_trace.Workloads.spec) ->
      List.iter
        (fun (name, mechanism) ->
          let san = Sanitizer.create ~mode:Sanitizer.Record () in
          ignore (Sim_driver.run_workload ~seed:11L ~sanitizer:san mechanism spec);
          if not (Sanitizer.is_clean san) then
            Alcotest.failf "%s/%s: %a" spec.name name Sanitizer.pp san)
        mechanisms)
    Utlb_trace.Workloads.all

let test_golden_limited_memory () =
  (* The eviction/unpin paths only exercise under a tight limit. *)
  let mechanisms =
    [
      ("utlb",
       Sim_driver.Utlb
         {
           Hier_engine.default_config with
           memory_limit_pages = Some 256;
           prepin = 4;
           prefetch = 4;
         });
      ("intr",
       Sim_driver.Intr
         { Intr_engine.default_config with memory_limit_pages = Some 256 });
    ]
  in
  List.iter
    (fun (name, mechanism) ->
      let san = Sanitizer.create ~mode:Sanitizer.Record () in
      let spec = List.hd Utlb_trace.Workloads.all in
      ignore (Sim_driver.run_workload ~seed:11L ~sanitizer:san mechanism spec);
      if not (Sanitizer.is_clean san) then
        Alcotest.failf "%s: %a" name Sanitizer.pp san)
    mechanisms

let suite =
  [
    Alcotest.test_case "parse: clean config" `Quick test_parse_clean;
    Alcotest.test_case "parse: syntax findings" `Quick
      test_parse_syntax_findings;
    Alcotest.test_case "parse: bad value keeps default" `Quick
      test_parse_bad_value_keeps_default;
    Alcotest.test_case "lint: geometry" `Quick test_lint_geometry;
    Alcotest.test_case "lint: prefetch/prepin/limit" `Quick test_lint_windows;
    Alcotest.test_case "lint: per-process" `Quick test_lint_per_process;
    Alcotest.test_case "lint: cost anchors" `Quick test_lint_cost_anchors;
    Alcotest.test_case "lint: cost relations" `Quick test_lint_cost_relations;
    Alcotest.test_case "lint: paper defaults are clean" `Quick
      test_lint_defaults_clean;
    Alcotest.test_case "findings: exit codes and ordering" `Quick
      test_finding_exit_codes;
    Alcotest.test_case "sanitizer: pin leak at removal (UV01)" `Quick
      test_sanitizer_pin_leak;
    Alcotest.test_case "sanitizer: accounting drift (UV08)" `Quick
      test_sanitizer_accounting_drift;
    Alcotest.test_case "sanitizer: stale cache entry (UV04)" `Quick
      test_sanitizer_stale_cache_entry;
    Alcotest.test_case "sanitizer: unpinned cache entry (UV05)" `Quick
      test_sanitizer_unpinned_cache_entry;
    Alcotest.test_case "sanitizer: raise mode throws" `Quick
      test_sanitizer_raise_mode;
    Alcotest.test_case "sanitizer: garbage-frame DMA (UV02)" `Quick
      test_sanitizer_garbage_frame_dma;
    Alcotest.test_case "sanitizer: unpinned-frame DMA (UV03)" `Quick
      test_sanitizer_unpinned_frame_dma;
    Alcotest.test_case "sanitizer: non-monotonic dispatch (UV06)" `Quick
      test_sanitizer_nonmonotonic_dispatch;
    Alcotest.test_case "sanitizer: classifier divergence (UV07)" `Quick
      test_sanitizer_classifier_divergence;
    Alcotest.test_case "sanitizer: intr stale entry (UV05)" `Quick
      test_sanitizer_intr_stale_entry;
    Alcotest.test_case "sanitizer: intr pin leak (UV01)" `Quick
      test_sanitizer_intr_pin_leak;
    Alcotest.test_case "sanitizer: code catalogue" `Quick
      test_sanitizer_describe;
    Alcotest.test_case "golden: workloads violation-free" `Slow
      test_golden_workloads;
    Alcotest.test_case "golden: tight memory limit" `Quick
      test_golden_limited_memory;
  ]
