(* Additional substrate coverage: counters, pretty-printers, and
   behaviours not exercised by the main per-module suites. *)

module Time = Utlb_sim.Time
module Engine = Utlb_sim.Engine
module Rng = Utlb_sim.Rng
open Utlb_net

let test_time_pp () =
  Alcotest.(check string) "pp" "12.500us"
    (Format.asprintf "%a" Time.pp (Time.of_us 12.5));
  Alcotest.(check int64) "max" (Time.of_us 2.0)
    (Time.max (Time.of_us 1.0) (Time.of_us 2.0))

let test_link_corruption_counter () =
  let e = Engine.create () in
  let intact = ref 0 and corrupted = ref 0 in
  let link =
    Link.create
      ~faults:{ Link.no_faults with corrupt_probability = 0.5 }
      ~rng:(Rng.create ~seed:3L)
      ~sink:(fun p -> if Packet.intact p then incr intact else incr corrupted)
      e
  in
  for _ = 1 to 100 do
    Link.transmit link
      (Packet.make ~src:0 ~dst:1 ~chan:0 ~seq:0 ~kind:Packet.Data ~route:[]
         ~payload:(Bytes.of_string "payload"))
  done;
  Engine.run e;
  Alcotest.(check int) "all delivered" 100 (!intact + !corrupted);
  Alcotest.(check int) "counter matches observation" !corrupted
    (Link.corrupted link);
  Alcotest.(check bool) "both outcomes occurred" true
    (!intact > 10 && !corrupted > 10);
  Alcotest.(check bool) "bytes accounted" true (Link.bytes_sent link > 0)

let test_fabric_dropped_counter () =
  let e = Engine.create () in
  let fabric =
    Fabric.create
      ~faults:{ Link.no_faults with drop_probability = 0.4 }
      ~rng:(Rng.create ~seed:4L) ~nodes:2 e
  in
  Fabric.attach fabric ~node:1 ignore;
  for _ = 1 to 100 do
    Fabric.send fabric ~src:0 ~dst:1 ~chan:0 ~seq:0 ~kind:Packet.Data
      ~payload:Bytes.empty
  done;
  Engine.run e;
  Alcotest.(check bool) "drops counted" true (Fabric.dropped fabric > 10);
  Alcotest.(check int) "conservation" 100
    (Fabric.delivered fabric + Fabric.dropped fabric)

let test_io_bus_counters () =
  let e = Engine.create () in
  let bus = Utlb_nic.Io_bus.create e in
  Utlb_nic.Io_bus.submit bus ~cost:(Time.of_us 5.0) (fun () -> ());
  Utlb_nic.Io_bus.submit bus ~cost:(Time.of_us 5.0) (fun () -> ());
  Alcotest.(check int) "transactions" 2 (Utlb_nic.Io_bus.transactions bus);
  Alcotest.(check (float 1e-6)) "busy until serialised" 10.0
    (Time.to_us (Utlb_nic.Io_bus.busy_until bus));
  Engine.run e

let test_mcp_busy_flag () =
  let e = Engine.create () in
  let nic = Utlb_nic.Nic.create ~node:0 e in
  let ring =
    Utlb_nic.Nic.new_command_queue nic ~pid:(Utlb_mem.Pid.of_int 0) ~slots:2
  in
  Utlb_nic.Mcp.set_handler (Utlb_nic.Nic.mcp nic) (fun ~pid:_ _ -> ());
  ignore (Utlb_nic.Command_queue.post ring Utlb_nic.Command_queue.Noop);
  Utlb_nic.Mcp.kick (Utlb_nic.Nic.mcp nic);
  Alcotest.(check bool) "busy after kick" true
    (Utlb_nic.Mcp.busy (Utlb_nic.Nic.mcp nic));
  Engine.run e;
  Alcotest.(check bool) "idle when drained" false
    (Utlb_nic.Mcp.busy (Utlb_nic.Nic.mcp nic))

let test_host_memory_counters () =
  let host = Utlb_mem.Host_memory.create ~frames:32 () in
  let pid = Utlb_mem.Pid.of_int 0 in
  Utlb_mem.Host_memory.add_process host pid;
  ignore (Utlb_mem.Host_memory.pin host pid ~vpn:0 ~count:4);
  Utlb_mem.Host_memory.unpin host pid ~vpn:0 ~count:4;
  Alcotest.(check int) "faults" 4 (Utlb_mem.Host_memory.faults host);
  Alcotest.(check int) "resident" 4 (Utlb_mem.Host_memory.resident_pages host pid);
  Alcotest.(check int) "free frames" (31 - 4)
    (Utlb_mem.Host_memory.free_frames host);
  Utlb_mem.Host_memory.reset_counters host;
  Alcotest.(check int) "counters reset" 0 (Utlb_mem.Host_memory.pin_calls host);
  Alcotest.(check bool) "process presence" true
    (Utlb_mem.Host_memory.has_process host pid)

let test_sram_byte_range_errors () =
  let sram = Utlb_nic.Sram.create ~bytes:128 () in
  let r = Utlb_nic.Sram.alloc sram ~name:"r" ~length:32 in
  Alcotest.check_raises "byte overflow"
    (Invalid_argument "Sram: byte range out of region bounds") (fun () ->
      ignore (Utlb_nic.Sram.read_bytes sram r ~off:30 ~len:4));
  Alcotest.check_raises "negative offset"
    (Invalid_argument "Sram: byte range out of region bounds") (fun () ->
      Utlb_nic.Sram.write_bytes sram r ~off:(-1) (Bytes.create 2))

let test_report_pp_smoke () =
  let r =
    {
      (Utlb.Report.empty ~label:"smoke") with
      Utlb.Report.lookups = 10;
      check_misses = 2;
    }
  in
  let s = Format.asprintf "%a" Utlb.Report.pp r in
  let contains hay needle =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions label" true (contains s "smoke");
  Alcotest.(check bool) "mentions lookups" true (contains s "lookups=10")

let test_engine_pending_counter () =
  let e = Engine.create () in
  let a = Engine.schedule e ~delay:(Time.of_us 1.0) (fun () -> ()) in
  ignore (Engine.schedule e ~delay:(Time.of_us 2.0) (fun () -> ()));
  Alcotest.(check int) "two pending" 2 (Engine.pending e);
  Engine.cancel e a;
  Alcotest.(check int) "one after cancel" 1 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "zero after run" 0 (Engine.pending e)

let test_pattern_mix_zero_weight () =
  Alcotest.check_raises "zero weight"
    (Invalid_argument "Pattern.mix: weights must be positive") (fun () ->
      ignore
        (Utlb_trace.Pattern.mix
           [ (0.0, Utlb_trace.Pattern.sequential ~pages:4 ()) ]
           ~lookups:10))

let test_analysis_bound_every_app () =
  (* The fully-associative bound must dominate the measured direct-mapped
     hit ratio for every calibrated workload. *)
  List.iter
    (fun (spec : Utlb_trace.Workloads.spec) ->
      let trace = spec.generate ~seed:42L in
      let hist = Utlb_trace.Analysis.reuse_distances trace in
      let bound = Utlb_trace.Analysis.hit_ratio_at hist ~entries:4096 in
      let r =
        Utlb.Sim_driver.run ~seed:42L
          (Utlb.Sim_driver.Utlb
             {
               Utlb.Hier_engine.default_config with
               cache =
                 {
                   Utlb.Ni_cache.entries = 4096;
                   associativity = Utlb.Ni_cache.Direct;
                 };
             })
          trace
      in
      let measured =
        1.0
        -. float_of_int r.Utlb.Report.ni_page_misses
           /. float_of_int r.Utlb.Report.ni_page_accesses
      in
      Alcotest.(check bool)
        (spec.name ^ ": LRU bound dominates")
        true
        (bound +. 0.02 >= measured))
    Utlb_trace.Workloads.all

let suite =
  [
    Alcotest.test_case "time pp" `Quick test_time_pp;
    Alcotest.test_case "link corruption counter" `Quick
      test_link_corruption_counter;
    Alcotest.test_case "fabric dropped counter" `Quick test_fabric_dropped_counter;
    Alcotest.test_case "io bus counters" `Quick test_io_bus_counters;
    Alcotest.test_case "mcp busy flag" `Quick test_mcp_busy_flag;
    Alcotest.test_case "host memory counters" `Quick test_host_memory_counters;
    Alcotest.test_case "sram byte range errors" `Quick test_sram_byte_range_errors;
    Alcotest.test_case "report pp smoke" `Quick test_report_pp_smoke;
    Alcotest.test_case "engine pending counter" `Quick test_engine_pending_counter;
    Alcotest.test_case "pattern mix zero weight" `Quick test_pattern_mix_zero_weight;
    Alcotest.test_case "analysis bound for every app" `Slow
      test_analysis_bound_every_app;
  ]
