(* Seeded differential coverage for the two modern engines: victima's
   L2 victim store and utopia's hash-constrained RestSeg zone.

   The anchor property is degeneracy: with the new plane sized to zero
   (victim-entries=0 / rest-ways=0) each engine must produce a report
   structurally identical to the hierarchical UTLB on the same trace —
   the modern machinery is additive, never perturbing the 1998 model.
   Under pressure the planes must actually fire (spills/recalls,
   RestSeg hits), and the cross-cutting planes — observability,
   sanitizers, fault injection, tenancy quotas — must behave exactly as
   they do for the built-in engines, deterministically per seed. *)

module Driver = Utlb.Sim_driver
module Report = Utlb.Report
module Stepper = Utlb.Stepper
module Sanitizer = Utlb_sim.Sanitizer
module Workloads = Utlb_trace.Workloads
module Scope = Utlb_obs.Scope
module Trace_sink = Utlb_obs.Trace_sink
module Metrics = Utlb_obs.Metrics
module Plan = Utlb_fault.Plan
module Injector = Utlb_fault.Injector
module Tenant = Utlb_tenant.Tenant
module Arbiter = Utlb_tenant.Arbiter
module Isolation = Utlb_tenant.Isolation
open Utlb

let seed = 0xd1ffL

let report_t = Alcotest.testable Report.pp (fun a b -> a = b)

let packed name params =
  match Driver.Registry.find name with
  | Some e -> e.Driver.Registry.of_params params
  | None -> Alcotest.failf "mechanism %s not registered" name

let run ?sanitizer ?obs ?faults ?tenancy name params
    (spec : Workloads.spec) =
  let trace = spec.Workloads.generate ~seed in
  Driver.run_packed ~seed ?sanitizer ?obs ?faults ?tenancy
    ~label:spec.Workloads.name (packed name params) trace

(* Non-default configurations that put both planes under real pressure:
   a 64-entry cache misses constantly on the paper workloads. *)
let small = [ ("entries", "64") ]

let victima_small = ("victim-entries", "4096") :: small

let utopia_small = ("rest-sets", "4096") :: ("rest-ways", "4") :: small

(* --- Degeneracy ---------------------------------------------------- *)

let pressure = [ ("entries", "1024"); ("prefetch", "4") ]

let test_victima_degenerates () =
  List.iter
    (fun (spec : Workloads.spec) ->
      Alcotest.check report_t
        (spec.Workloads.name ^ ": victim-entries=0 = utlb")
        (run "utlb" pressure spec)
        (run "victima" (("victim-entries", "0") :: pressure) spec))
    [ Workloads.water; Workloads.radix ]

let test_utopia_degenerates () =
  List.iter
    (fun (spec : Workloads.spec) ->
      Alcotest.check report_t
        (spec.Workloads.name ^ ": rest-ways=0 = utlb")
        (run "utlb" pressure spec)
        (run "utopia" (("rest-ways", "0") :: pressure) spec))
    [ Workloads.water; Workloads.radix ]

(* --- The planes fire under pressure -------------------------------- *)

let test_victima_spills_and_recalls () =
  let spec = Workloads.radix in
  let base = run "utlb" small spec in
  let vic = run "victima" victima_small spec in
  Alcotest.(check bool) "spills happen" true (vic.Report.spills > 0);
  Alcotest.(check bool) "recalls happen" true (vic.Report.recalls > 0);
  Alcotest.(check int) "utlb never spills" 0
    (base.Report.spills + base.Report.recalls);
  (* A recall is a counted NI miss served with zero entries fetched, so
     the miss stream is untouched while the walk traffic drops. *)
  Alcotest.(check int) "accesses unchanged" base.Report.ni_page_accesses
    vic.Report.ni_page_accesses;
  Alcotest.(check int) "misses unchanged" base.Report.ni_page_misses
    vic.Report.ni_page_misses;
  Alcotest.(check bool) "recalls skip table walks" true
    (vic.Report.entries_fetched < base.Report.entries_fetched)

let test_utopia_restseg_hits () =
  let spec = Workloads.radix in
  let base = run "utlb" small spec in
  let uto = run "utopia" utopia_small spec in
  Alcotest.(check bool) "restseg hits happen" true
    (uto.Report.restseg_hits > 0);
  Alcotest.(check int) "utlb has no restseg" 0 base.Report.restseg_hits;
  Alcotest.(check int) "accesses unchanged" base.Report.ni_page_accesses
    uto.Report.ni_page_accesses;
  Alcotest.(check bool) "restseg absorbs flexible misses" true
    (uto.Report.ni_page_misses <= base.Report.ni_page_misses)

(* --- Cross-cutting planes ------------------------------------------ *)

(* For the cross-cutting planes the RestSeg is kept small (128 slots)
   so the flexible path still carries real traffic — a RestSeg sized to
   the whole footprint absorbs every access and leaves nothing for the
   fault injector's cache-invalidate/DMA classes to hit. *)
let both =
  [
    ("victima", victima_small);
    ("utopia", ("rest-sets", "64") :: ("rest-ways", "2") :: small);
  ]

let test_obs_unperturbed () =
  List.iter
    (fun (name, params) ->
      let spec = Workloads.volrend in
      let bare = run name params spec in
      let sink = Trace_sink.create () in
      let metrics = Metrics.create () in
      let obs = Scope.create ~sink ~metrics () in
      Alcotest.check report_t
        (name ^ " report unchanged under obs")
        bare
        (run ~obs name params spec))
    both

let test_sanitizers_clean () =
  List.iter
    (fun (name, params) ->
      let san = Sanitizer.create ~mode:Sanitizer.Record () in
      ignore (run ~sanitizer:san name params Workloads.water);
      Alcotest.(check bool) (name ^ " sanitizers clean") true
        (Sanitizer.is_clean san))
    both

let test_fault_recoveries () =
  let plan =
    match
      Plan.of_string
        "dma-fail=0.5,dma-retries=2,cache-invalidate=0.2,table-swap=0.1,\
         irq-timeout=0.5,irq-retries=2"
    with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  List.iter
    (fun (name, params) ->
      let go () =
        run
          ~faults:(Injector.create ~seed:7L plan)
          name params Workloads.water
      in
      let a = go () in
      Alcotest.(check bool) (name ^ " recovers from faults") true
        (a.Report.fault_recoveries > 0);
      Alcotest.check report_t (name ^ " deterministic under faults") a (go ()))
    both

let test_tenancy_quota_denials () =
  List.iter
    (fun (name, params) ->
      let cfg =
        (* The quota must be smaller than a single multi-page request:
           admission first makes room by unpinning the tenant's own LRU
           pages, so denials only happen when one request overflows the
           whole quota. *)
        match Tenant.of_string "shared/all=0-4:quota=8" with
        | Ok (Some c) -> c
        | Ok None | Error _ -> Alcotest.fail "tenant spec"
      in
      let arb = Arbiter.create cfg in
      let r = run ~tenancy:arb name params Workloads.radix in
      match r.Report.isolation with
      | None -> Alcotest.failf "%s: no isolation breakdown" name
      | Some iso ->
        Alcotest.(check bool) (name ^ " quota denials under pressure") true
          (Isolation.quota_denials iso > 0))
    both

(* --- Protocol plane ------------------------------------------------ *)

let test_stepper_semantics () =
  Alcotest.(check string) "victima stepper name" "victima"
    (Stepper.mechanism
       (Victima_engine.stepper Victima_engine.default_config));
  Alcotest.(check string) "utopia stepper name" "utopia"
    (Stepper.mechanism (Utopia_engine.stepper Utopia_engine.default_config));
  Alcotest.(check string) "victima mechanism" "victima"
    Victima_engine.mechanism;
  Alcotest.(check string) "utopia mechanism" "utopia" Utopia_engine.mechanism

let suite =
  [
    Alcotest.test_case "victima degenerates to utlb" `Quick
      test_victima_degenerates;
    Alcotest.test_case "utopia degenerates to utlb" `Quick
      test_utopia_degenerates;
    Alcotest.test_case "victima spills and recalls" `Quick
      test_victima_spills_and_recalls;
    Alcotest.test_case "utopia restseg hits" `Quick test_utopia_restseg_hits;
    Alcotest.test_case "reports unchanged under obs" `Quick
      test_obs_unperturbed;
    Alcotest.test_case "sanitizers clean" `Quick test_sanitizers_clean;
    Alcotest.test_case "fault recoveries, deterministic" `Quick
      test_fault_recoveries;
    Alcotest.test_case "tenancy quota denials" `Quick
      test_tenancy_quota_denials;
    Alcotest.test_case "stepper semantics" `Quick test_stepper_semantics;
  ]
