(* End-to-end VMMC integration tests over the full simulated stack:
   UTLB + NIC + fabric + reliable channels. *)

open Utlb_vmmc
module Link = Utlb_net.Link

let pattern len salt = Bytes.init len (fun i -> Char.chr ((i * 7 + salt) land 0xff))

let test_message_roundtrip () =
  let msgs =
    [
      Message.Store
        { export_id = 7; key = 123; offset = 4096; data = Bytes.of_string "abc" };
      Message.Fetch_request
        { req_id = 1; export_id = 2; key = 3; offset = 4; len = 5 };
      Message.Fetch_reply { req_id = 9; ok = true; data = Bytes.of_string "xyz" };
      Message.Fetch_reply { req_id = 10; ok = false; data = Bytes.empty };
    ]
  in
  List.iter
    (fun m ->
      match Message.of_bytes (Message.to_bytes m) with
      | Ok m' -> Alcotest.(check bool) (Message.kind_name m) true (m = m')
      | Error e -> Alcotest.fail e)
    msgs

let test_message_rejects_garbage () =
  (match Message.of_bytes Bytes.empty with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty accepted");
  match Message.of_bytes (Bytes.of_string "\255 bogus") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad tag accepted"

let test_memory_image () =
  let m = Memory_image.create () in
  Alcotest.(check bytes) "zero fill" (Bytes.make 8 '\000')
    (Memory_image.read m ~vaddr:0 ~len:8);
  (* Write across a page boundary. *)
  let data = pattern 10000 3 in
  Memory_image.write m ~vaddr:4000 data;
  Alcotest.(check bytes) "cross-page roundtrip" data
    (Memory_image.read m ~vaddr:4000 ~len:10000);
  Alcotest.(check int) "pages touched" 4 (Memory_image.pages_touched m)

let with_cluster ?config f =
  let c = Cluster.create ?config () in
  let a = Cluster.spawn c ~node:0 in
  let b = Cluster.spawn c ~node:1 in
  f c a b

let test_remote_store () =
  with_cluster (fun c a b ->
      let export_id, key = Cluster.Process.export b ~vaddr:0x10000 ~len:65536 in
      let h = Cluster.Process.import a ~node:1 ~export_id ~key in
      let data = pattern 20000 1 in
      Cluster.Process.write_memory a ~vaddr:0x5000 data;
      let acked = ref false in
      Cluster.Process.send a h ~lvaddr:0x5000 ~offset:4096 ~len:20000
        ~on_complete:(fun () -> acked := true);
      Cluster.run c;
      Alcotest.(check bool) "acked" true !acked;
      Alcotest.(check bytes) "delivered intact" data
        (Cluster.Process.read_memory b ~vaddr:(0x10000 + 4096) ~len:20000);
      Alcotest.(check int) "no garbage" 0 (Cluster.garbage_stores c);
      Alcotest.(check bool) "time advanced" true (Cluster.now_us c > 0.0))

let test_remote_fetch () =
  with_cluster (fun c a b ->
      let export_id, key = Cluster.Process.export b ~vaddr:0x20000 ~len:16384 in
      let h = Cluster.Process.import a ~node:1 ~export_id ~key in
      let data = pattern 9000 2 in
      Cluster.Process.write_memory b ~vaddr:(0x20000 + 100) data;
      let done_ = ref false in
      Cluster.Process.fetch a h ~offset:100 ~len:9000 ~lvaddr:0x8000
        ~on_complete:(fun () -> done_ := true);
      Cluster.run c;
      Alcotest.(check bool) "completed" true !done_;
      Alcotest.(check bytes) "fetched intact" data
        (Cluster.Process.read_memory a ~vaddr:0x8000 ~len:9000);
      Alcotest.(check int) "counted" 1 (Cluster.fetches_completed c))

let test_wrong_key_goes_to_garbage () =
  with_cluster (fun c a b ->
      let export_id, key = Cluster.Process.export b ~vaddr:0x10000 ~len:4096 in
      let h = Cluster.Process.import a ~node:1 ~export_id ~key:(key + 1) in
      Cluster.Process.write_memory a ~vaddr:0x5000 (pattern 100 4);
      Cluster.Process.send a h ~lvaddr:0x5000 ~offset:0 ~len:100;
      Cluster.run c;
      Alcotest.(check int) "garbage store" 1 (Cluster.garbage_stores c);
      Alcotest.(check bytes) "receiver memory untouched" (Bytes.make 100 '\000')
        (Cluster.Process.read_memory b ~vaddr:0x10000 ~len:100))

let test_unknown_export_goes_to_garbage () =
  with_cluster (fun c a _b ->
      let h = Cluster.Process.import a ~node:1 ~export_id:999 ~key:1 in
      Cluster.Process.send a h ~lvaddr:0x5000 ~offset:0 ~len:64;
      Cluster.run c;
      Alcotest.(check int) "garbage" 1 (Cluster.garbage_stores c))

let test_out_of_bounds_store_rejected () =
  with_cluster (fun c a b ->
      let export_id, key = Cluster.Process.export b ~vaddr:0x10000 ~len:4096 in
      let h = Cluster.Process.import a ~node:1 ~export_id ~key in
      Cluster.Process.send a h ~lvaddr:0x5000 ~offset:4000 ~len:200;
      Cluster.run c;
      Alcotest.(check int) "overflowing store dropped" 1
        (Cluster.garbage_stores c))

let test_redirection () =
  with_cluster (fun c a b ->
      let export_id, key = Cluster.Process.export b ~vaddr:0x10000 ~len:8192 in
      let h = Cluster.Process.import a ~node:1 ~export_id ~key in
      Cluster.Process.write_memory a ~vaddr:0x5000 (Bytes.of_string "first");
      Cluster.Process.send a h ~lvaddr:0x5000 ~offset:0 ~len:5;
      Cluster.run c;
      Cluster.Process.redirect b ~export_id ~new_vaddr:0x90000;
      Cluster.Process.write_memory a ~vaddr:0x6000 (Bytes.of_string "second");
      Cluster.Process.send a h ~lvaddr:0x6000 ~offset:0 ~len:6;
      Cluster.run c;
      Cluster.Process.clear_redirect b ~export_id;
      Cluster.Process.write_memory a ~vaddr:0x7000 (Bytes.of_string "third");
      Cluster.Process.send a h ~lvaddr:0x7000 ~offset:0 ~len:5;
      Cluster.run c;
      Alcotest.(check string) "redirected delivery" "second"
        (Bytes.to_string (Cluster.Process.read_memory b ~vaddr:0x90000 ~len:6));
      (* Default location got the first and third. *)
      Alcotest.(check string) "default after clear" "third"
        (Bytes.to_string (Cluster.Process.read_memory b ~vaddr:0x10000 ~len:5)))

let test_redirect_requires_ownership () =
  with_cluster (fun _c a b ->
      let export_id, _ = Cluster.Process.export b ~vaddr:0x10000 ~len:4096 in
      (* Exports live per node; process a on node 0 does not own node 1's
         export table entry. *)
      Alcotest.check_raises "not owner"
        (Invalid_argument "Process.redirect: export not owned by this process")
        (fun () -> Cluster.Process.redirect a ~export_id ~new_vaddr:0x1000))

let test_lossy_fabric_still_delivers () =
  let config =
    {
      Cluster.default_config with
      faults = { Link.no_faults with drop_probability = 0.1; corrupt_probability = 0.03 };
    }
  in
  with_cluster ~config (fun c a b ->
      let export_id, key = Cluster.Process.export b ~vaddr:0x10000 ~len:131072 in
      let h = Cluster.Process.import a ~node:1 ~export_id ~key in
      let n = 16 in
      let acked = ref 0 in
      for i = 0 to n - 1 do
        let data = pattern 5000 i in
        Cluster.Process.write_memory a ~vaddr:(0x100000 + (i * 5000)) data;
        Cluster.Process.send a h
          ~lvaddr:(0x100000 + (i * 5000))
          ~offset:(i * 5000) ~len:5000
          ~on_complete:(fun () -> incr acked)
      done;
      Cluster.run c;
      Alcotest.(check int) "all acked" n !acked;
      for i = 0 to n - 1 do
        Alcotest.(check bytes)
          (Printf.sprintf "block %d intact" i)
          (pattern 5000 i)
          (Cluster.Process.read_memory b ~vaddr:(0x10000 + (i * 5000)) ~len:5000)
      done;
      Alcotest.(check bool) "retransmissions happened" true
        (Cluster.retransmissions c > 0))

let test_utlb_active_on_both_sides () =
  with_cluster (fun c a b ->
      let export_id, key = Cluster.Process.export b ~vaddr:0x10000 ~len:32768 in
      let h = Cluster.Process.import a ~node:1 ~export_id ~key in
      Cluster.Process.write_memory a ~vaddr:0x5000 (pattern 16384 7);
      Cluster.Process.send a h ~lvaddr:0x5000 ~offset:0 ~len:16384;
      Cluster.run c;
      let sender = Cluster.utlb_report c ~node:0 in
      let receiver = Cluster.utlb_report c ~node:1 in
      Alcotest.(check bool) "sender pinned pages" true
        (sender.Utlb.Report.pages_pinned >= 4);
      Alcotest.(check bool) "receiver pinned its export" true
        (receiver.Utlb.Report.pages_pinned >= 8);
      Alcotest.(check int) "no interrupts anywhere" 0
        (sender.Utlb.Report.interrupts + receiver.Utlb.Report.interrupts))

let test_multi_process_per_node () =
  with_cluster (fun c a _b ->
      let c2 = Cluster.spawn c ~node:1 in
      let c3 = Cluster.spawn c ~node:1 in
      let e2, k2 = Cluster.Process.export c2 ~vaddr:0x10000 ~len:4096 in
      let e3, k3 = Cluster.Process.export c3 ~vaddr:0x10000 ~len:4096 in
      let h2 = Cluster.Process.import a ~node:1 ~export_id:e2 ~key:k2 in
      let h3 = Cluster.Process.import a ~node:1 ~export_id:e3 ~key:k3 in
      Cluster.Process.write_memory a ~vaddr:0x5000 (Bytes.of_string "for-c2");
      Cluster.Process.write_memory a ~vaddr:0x6000 (Bytes.of_string "for-c3");
      Cluster.Process.send a h2 ~lvaddr:0x5000 ~offset:0 ~len:6;
      Cluster.Process.send a h3 ~lvaddr:0x6000 ~offset:0 ~len:6;
      Cluster.run c;
      (* Same virtual address, different processes: isolation holds. *)
      Alcotest.(check string) "c2 got its message" "for-c2"
        (Bytes.to_string (Cluster.Process.read_memory c2 ~vaddr:0x10000 ~len:6));
      Alcotest.(check string) "c3 got its message" "for-c3"
        (Bytes.to_string (Cluster.Process.read_memory c3 ~vaddr:0x10000 ~len:6)))

let prop_store_roundtrip =
  QCheck.Test.make ~name:"random-size stores deliver intact" ~count:12
    QCheck.(pair (int_range 1 30000) (int_bound 200))
    (fun (len, salt) ->
      let c = Cluster.create () in
      let a = Cluster.spawn c ~node:0 in
      let b = Cluster.spawn c ~node:1 in
      let export_id, key = Cluster.Process.export b ~vaddr:0x10000 ~len:32768 in
      let h = Cluster.Process.import a ~node:1 ~export_id ~key in
      let len = min len 32768 in
      let data = pattern len salt in
      Cluster.Process.write_memory a ~vaddr:0x5000 data;
      Cluster.Process.send a h ~lvaddr:0x5000 ~offset:0 ~len;
      Cluster.run c;
      Bytes.equal data (Cluster.Process.read_memory b ~vaddr:0x10000 ~len))


let test_interrupt_based_cluster () =
  (* The same end-to-end transfer works when every NI runs the
     interrupt-based baseline — but interrupts fire and unpins happen. *)
  let config =
    {
      Cluster.default_config with
      translation =
        Cluster.Intr_translation
          {
            Utlb.Intr_engine.cache =
              { Utlb.Ni_cache.entries = 8; associativity = Utlb.Ni_cache.Direct };
            memory_limit_pages = None;
          };
    }
  in
  with_cluster ~config (fun c a b ->
      let export_id, key = Cluster.Process.export b ~vaddr:0x10000 ~len:65536 in
      let h = Cluster.Process.import a ~node:1 ~export_id ~key in
      let data = pattern 30000 9 in
      Cluster.Process.write_memory a ~vaddr:0x5000 data;
      Cluster.Process.send a h ~lvaddr:0x5000 ~offset:0 ~len:30000;
      Cluster.run c;
      Alcotest.(check bytes) "delivered intact" data
        (Cluster.Process.read_memory b ~vaddr:0x10000 ~len:30000);
      let r0 = Cluster.utlb_report c ~node:0 in
      let r1 = Cluster.utlb_report c ~node:1 in
      Alcotest.(check bool) "interrupts fired" true
        (r0.Utlb.Report.interrupts + r1.Utlb.Report.interrupts > 0);
      (* An 8-entry cache cannot hold a 16-page window: evictions unpin. *)
      Alcotest.(check bool) "evictions unpinned pages" true
        (r1.Utlb.Report.pages_unpinned > 0))

let test_intr_cluster_slower_than_utlb () =
  (* Same transfer pattern under both translation mechanisms with a tiny
     cache: the interrupt-based cluster takes longer in simulated time. *)
  let run translation =
    let config = { Cluster.default_config with translation } in
    let c = Cluster.create ~config () in
    let a = Cluster.spawn c ~node:0 in
    let b = Cluster.spawn c ~node:1 in
    let export_id, key = Cluster.Process.export b ~vaddr:0x10000 ~len:262144 in
    let h = Cluster.Process.import a ~node:1 ~export_id ~key in
    Cluster.Process.write_memory a ~vaddr:0x80000 (pattern 4096 1);
    (* Rotate over 32 source pages so an 8-entry cache keeps missing. *)
    for i = 0 to 63 do
      let page = i mod 32 in
      Cluster.Process.send a h
        ~lvaddr:(0x80000 + (page * 4096))
        ~offset:(page * 4096) ~len:4096;
      Cluster.run c
    done;
    Cluster.now_us c
  in
  let cache =
    { Utlb.Ni_cache.entries = 8; associativity = Utlb.Ni_cache.Direct }
  in
  let utlb_time =
    run (Cluster.Utlb_translation { Utlb.Hier_engine.default_config with cache })
  in
  let intr_time =
    run
      (Cluster.Intr_translation
         { Utlb.Intr_engine.cache; memory_limit_pages = None })
  in
  Alcotest.(check bool) "interrupt-based is slower" true
    (intr_time > utlb_time)



let test_notifications () =
  with_cluster (fun c a b ->
      let export_id, key = Cluster.Process.export b ~vaddr:0x10000 ~len:16384 in
      let h = Cluster.Process.import a ~node:1 ~export_id ~key in
      Alcotest.(check int) "none yet" 0 (Cluster.Process.pending_notifications b);
      Cluster.Process.write_memory a ~vaddr:0x5000 (pattern 5000 2);
      Cluster.Process.send a h ~lvaddr:0x5000 ~offset:256 ~len:5000;
      Cluster.run c;
      (* One store = two page chunks = two notifications, in order. *)
      Alcotest.(check int) "two chunk notifications" 2
        (Cluster.Process.pending_notifications b);
      (match Cluster.Process.poll_notification b with
      | Some n ->
        Alcotest.(check int) "export" export_id n.Cluster.Process.n_export_id;
        Alcotest.(check int) "offset" 256 n.Cluster.Process.n_offset;
        Alcotest.(check bool) "timestamped" true
          (n.Cluster.Process.n_time_us > 0.0)
      | None -> Alcotest.fail "missing notification");
      (match Cluster.Process.poll_notification b with
      | Some n ->
        (* Chunks split at source page boundaries: the first chunk is a
           full source page. *)
        Alcotest.(check int) "second chunk continues" (256 + 4096)
          n.Cluster.Process.n_offset
      | None -> Alcotest.fail "missing second notification");
      Alcotest.(check bool) "drained" true
        (Cluster.Process.poll_notification b = None))

let test_kill_process () =
  with_cluster (fun c a b ->
      let export_id, key = Cluster.Process.export b ~vaddr:0x10000 ~len:16384 in
      let h = Cluster.Process.import a ~node:1 ~export_id ~key in
      Cluster.Process.write_memory a ~vaddr:0x5000 (pattern 100 1);
      Cluster.Process.send a h ~lvaddr:0x5000 ~offset:0 ~len:100;
      Cluster.run c;
      Alcotest.(check int) "delivered before kill" 0 (Cluster.garbage_stores c);
      (* Kill the receiver: its 4 exported pages must be released. *)
      let released = Cluster.kill_process c b in
      Alcotest.(check int) "pages released" 4 released;
      Alcotest.(check int) "idempotent" 0 (Cluster.kill_process c b);
      (* Stores to the dead process's export fall onto the garbage page. *)
      Cluster.Process.send a h ~lvaddr:0x5000 ~offset:0 ~len:100;
      Cluster.run c;
      Alcotest.(check int) "garbage after kill" 1 (Cluster.garbage_stores c);
      (* Its cache lines are gone. *)
      let engine = Cluster.utlb_engine c ~node:1 in
      Alcotest.(check int) "no cache lines" 0
        (Utlb.Ni_cache.valid_lines (Utlb.Hier_engine.cache engine)))

let test_per_process_translation_cluster () =
  let config =
    {
      Cluster.default_config with
      translation =
        Cluster.Per_process_translation
          {
            Utlb.Pp_engine.sram_budget_entries = 64;
            processes = 2;
            policy = Utlb.Replacement.Lru;
          };
    }
  in
  with_cluster ~config (fun c a b ->
      let export_id, key = Cluster.Process.export b ~vaddr:0x10000 ~len:16384 in
      let h = Cluster.Process.import a ~node:1 ~export_id ~key in
      let data = pattern 12000 5 in
      Cluster.Process.write_memory a ~vaddr:0x5000 data;
      Cluster.Process.send a h ~lvaddr:0x5000 ~offset:0 ~len:12000;
      Cluster.run c;
      Alcotest.(check bytes) "delivered intact" data
        (Cluster.Process.read_memory b ~vaddr:0x10000 ~len:12000);
      let r = Cluster.utlb_report c ~node:0 in
      Alcotest.(check int) "no NI misses with direct tables" 0
        r.Utlb.Report.ni_page_misses;
      Alcotest.(check bool) "pinned through the table" true
        (r.Utlb.Report.pages_pinned >= 3))

(* The command ring is mapped into user space, so the firmware cannot
   trust its contents: a rogue write lands a command with no host-side
   metadata behind it. The firmware must drop it, count the desync, and
   keep serving well-formed traffic. *)
let test_ring_desync_missing_meta () =
  with_cluster (fun c a b ->
      Alcotest.(check bool) "rogue accepted" true
        (Cluster.Process.post_rogue a
           (Utlb_nic.Command_queue.Fetch
              { lvaddr = 0x9000; nbytes = 64; src_node = 1; src_import = 0 }));
      Utlb_nic.Mcp.kick (Utlb_nic.Nic.mcp (Cluster.nic c ~node:0));
      Cluster.run c;
      Alcotest.(check int) "desync counted" 1 (Cluster.ring_desyncs c);
      (* The firmware survived: a real transfer still completes. *)
      let export_id, key = Cluster.Process.export b ~vaddr:0x10000 ~len:8192 in
      let h = Cluster.Process.import a ~node:1 ~export_id ~key in
      let data = pattern 512 11 in
      Cluster.Process.write_memory a ~vaddr:0x5000 data;
      Cluster.Process.send a h ~lvaddr:0x5000 ~offset:0 ~len:512;
      Cluster.run c;
      Alcotest.(check bytes) "later send delivered" data
        (Cluster.Process.read_memory b ~vaddr:0x10000 ~len:512);
      Alcotest.(check int) "no further desyncs" 1 (Cluster.ring_desyncs c))

(* A rogue slot written before the driver posts a real command sits
   ahead of it in FIFO order (the MCP idles until the real post rings
   the doorbell), so it steals the real command's metadata: the kinds
   mismatch and the firmware must discard both halves rather than
   deliver into the wrong export. The victim command then finds its
   metadata gone — the second desync branch. *)
let test_ring_desync_kind_mismatch () =
  with_cluster (fun c a b ->
      let export_id, key = Cluster.Process.export b ~vaddr:0x10000 ~len:8192 in
      let h = Cluster.Process.import a ~node:1 ~export_id ~key in
      let data = pattern 512 13 in
      Cluster.Process.write_memory a ~vaddr:0x5000 data;
      Alcotest.(check bool) "rogue accepted" true
        (Cluster.Process.post_rogue a
           (Utlb_nic.Command_queue.Fetch
              { lvaddr = 0x9000; nbytes = 64; src_node = 1; src_import = 0 }));
      let acked = ref false in
      Cluster.Process.send a h ~lvaddr:0x5000 ~offset:0 ~len:512
        ~on_complete:(fun () -> acked := true);
      Cluster.run c;
      Alcotest.(check int) "mismatch plus orphaned victim" 2
        (Cluster.ring_desyncs c);
      Alcotest.(check bool) "victim send not acked" false !acked;
      Alcotest.(check int) "nothing delivered" 0 (Cluster.stores_received c);
      (* Recovery: re-issuing the send goes through untouched. *)
      Cluster.Process.send a h ~lvaddr:0x5000 ~offset:0 ~len:512
        ~on_complete:(fun () -> acked := true);
      Cluster.run c;
      Alcotest.(check bool) "retry acked" true !acked;
      Alcotest.(check bytes) "retry delivered" data
        (Cluster.Process.read_memory b ~vaddr:0x10000 ~len:512);
      Alcotest.(check int) "no further desyncs" 2 (Cluster.ring_desyncs c))

(* Ring wrap-around: fill the ring to capacity (the writer sees
   backpressure, not an overwrite), drain it, and check the wrapped
   slots are reused cleanly by real traffic. *)
let test_ring_wrap_backpressure () =
  let config = { Cluster.default_config with command_slots = 4 } in
  with_cluster ~config (fun c a b ->
      let accepted = ref 0 in
      while Cluster.Process.post_rogue a Utlb_nic.Command_queue.Noop do
        incr accepted
      done;
      Alcotest.(check int) "full at capacity" 4 !accepted;
      Utlb_nic.Mcp.kick (Utlb_nic.Nic.mcp (Cluster.nic c ~node:0));
      Cluster.run c;
      Alcotest.(check int) "noops are not desyncs" 0 (Cluster.ring_desyncs c);
      Alcotest.(check bool) "drained ring accepts again" true
        (Cluster.Process.post_rogue a Utlb_nic.Command_queue.Noop);
      Utlb_nic.Mcp.kick (Utlb_nic.Nic.mcp (Cluster.nic c ~node:0));
      Cluster.run c;
      (* Real traffic through the wrapped slots. *)
      let export_id, key = Cluster.Process.export b ~vaddr:0x10000 ~len:8192 in
      let h = Cluster.Process.import a ~node:1 ~export_id ~key in
      let data = pattern 256 17 in
      Cluster.Process.write_memory a ~vaddr:0x5000 data;
      Cluster.Process.send a h ~lvaddr:0x5000 ~offset:0 ~len:256;
      Cluster.run c;
      Alcotest.(check bytes) "delivered through wrapped slots" data
        (Cluster.Process.read_memory b ~vaddr:0x10000 ~len:256))

let suite =
  [
    Alcotest.test_case "message roundtrip" `Quick test_message_roundtrip;
    Alcotest.test_case "message rejects garbage" `Quick test_message_rejects_garbage;
    Alcotest.test_case "memory image" `Quick test_memory_image;
    Alcotest.test_case "remote store" `Quick test_remote_store;
    Alcotest.test_case "remote fetch" `Quick test_remote_fetch;
    Alcotest.test_case "wrong key to garbage page" `Quick
      test_wrong_key_goes_to_garbage;
    Alcotest.test_case "unknown export to garbage page" `Quick
      test_unknown_export_goes_to_garbage;
    Alcotest.test_case "out-of-bounds store rejected" `Quick
      test_out_of_bounds_store_rejected;
    Alcotest.test_case "transfer redirection" `Quick test_redirection;
    Alcotest.test_case "redirect requires ownership" `Quick
      test_redirect_requires_ownership;
    Alcotest.test_case "lossy fabric still delivers" `Quick
      test_lossy_fabric_still_delivers;
    Alcotest.test_case "UTLB active on both sides" `Quick
      test_utlb_active_on_both_sides;
    Alcotest.test_case "multi-process isolation" `Quick test_multi_process_per_node;
    QCheck_alcotest.to_alcotest prop_store_roundtrip;
    Alcotest.test_case "interrupt-based cluster" `Quick
      test_interrupt_based_cluster;
    Alcotest.test_case "intr cluster slower than utlb" `Quick
      test_intr_cluster_slower_than_utlb;
    Alcotest.test_case "notifications" `Quick test_notifications;
    Alcotest.test_case "kill process" `Quick test_kill_process;
    Alcotest.test_case "per-process translation cluster" `Quick
      test_per_process_translation_cluster;
    Alcotest.test_case "ring desync: missing metadata" `Quick
      test_ring_desync_missing_meta;
    Alcotest.test_case "ring desync: kind mismatch" `Quick
      test_ring_desync_kind_mismatch;
    Alcotest.test_case "ring wrap backpressure" `Quick
      test_ring_wrap_backpressure;
  ]
