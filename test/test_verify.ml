(* The utlbcheck verify passes: the merged code catalogue, finding
   ordering and JSON output, config-file parsing edge cases, the static
   protocol verifier's lattice and UP0x triggers, the timeline event
   parser/reader, the happens-before race detector's UP1x codes, and
   the LINTS.md <-> catalogue sync. *)

module Finding = Utlb_check.Finding
module Catalogue = Utlb_check.Catalogue
module Config_file = Utlb_check.Config_file
module Protocol = Utlb_check.Protocol
module Hb = Utlb_check.Hb
module Event = Utlb_obs.Event
module Reader = Utlb_obs.Reader
module Record = Utlb_trace.Record
module Pid = Utlb_mem.Pid

let codes fs = List.map (fun (f : Finding.t) -> f.Finding.code) fs

(* {2 Catalogue} *)

let test_catalogue_unique () =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (code, _) ->
      Alcotest.(check bool)
        (code ^ " appears once") false (Hashtbl.mem seen code);
      Hashtbl.add seen code ())
    Catalogue.all

let test_catalogue_describe () =
  List.iter
    (fun (code, desc) ->
      Alcotest.(check (option string)) code (Some desc)
        (Catalogue.describe code);
      Alcotest.(check bool) (code ^ " mem") true (Catalogue.mem code))
    Catalogue.all;
  Alcotest.(check (option string)) "unknown" None (Catalogue.describe "UX99")

let test_catalogue_families () =
  List.iter
    (fun code ->
      Alcotest.(check bool) (code ^ " catalogued") true (Catalogue.mem code))
    [ "UC001"; "UC101"; "UV01"; "UV08"; "UP00"; "UP05"; "UP10"; "UP13";
      "UP20"; "UP23" ];
  (* The runtime slice Invariant exposes resolves against the same
     merged table. *)
  List.iter
    (fun (code, desc) ->
      Alcotest.(check (option string)) code (Some desc)
        (Utlb_check.Invariant.describe code))
    Utlb_check.Invariant.codes

(* {2 Finding ordering and JSON} *)

let test_by_severity_deterministic () =
  let f sev code = Finding.v ~severity:sev ~code "m" in
  let input =
    [
      f Finding.Warning "W1"; f Finding.Info "I1"; f Finding.Error "E1";
      f Finding.Warning "W2"; f Finding.Error "E2"; f Finding.Info "I2";
    ]
  in
  let sorted = Finding.by_severity input in
  Alcotest.(check (list string))
    "severity order, input order within severity"
    [ "E1"; "E2"; "W1"; "W2"; "I1"; "I2" ]
    (codes sorted);
  Alcotest.(check (list string))
    "idempotent" (codes sorted)
    (codes (Finding.by_severity sorted))

let test_finding_pp_line () =
  let s f = Format.asprintf "%a" Finding.pp f in
  Alcotest.(check string) "context+line" "t.trace:7: UP01 error: boom"
    (s (Finding.v ~context:"t.trace" ~line:7 ~code:"UP01" "boom"));
  Alcotest.(check string) "line only" "line 7: UP01 error: boom"
    (s (Finding.v ~line:7 ~code:"UP01" "boom"));
  Alcotest.(check string) "bare" "UP01 error: boom"
    (s (Finding.v ~code:"UP01" "boom"))

let test_finding_json () =
  let s f = Format.asprintf "%a" Finding.pp_json f in
  Alcotest.(check string) "all fields"
    "{\"code\":\"UP10\",\"severity\":\"warning\",\"message\":\"a \\\"b\\\" \
     \\\\ c\",\"context\":\"x.grid\",\"line\":3}"
    (s
       (Finding.v ~severity:Finding.Warning ~context:"x.grid" ~line:3
          ~code:"UP10" "a \"b\" \\ c"));
  Alcotest.(check string) "minimal"
    "{\"code\":\"UC001\",\"severity\":\"error\",\"message\":\"m\\nn\"}"
    (s (Finding.v ~code:"UC001" "m\nn"));
  let l = Format.asprintf "%a" Finding.pp_json_list [] in
  Alcotest.(check string) "empty list" "[]" l;
  let l =
    Format.asprintf "%a" Finding.pp_json_list [ Finding.v ~code:"UC001" "m" ]
  in
  Alcotest.(check bool) "array brackets" true
    (String.length l > 2 && l.[0] = '[' && l.[String.length l - 1] = ']')

(* {2 Config_file edge cases} *)

let test_config_duplicate_keys () =
  let config, findings =
    Config_file.parse_string ~source:"dup" "entries = 1024\nentries = 2048\n"
  in
  Alcotest.(check int) "later value wins" 2048 config.Config_file.entries;
  Alcotest.(check (list string)) "UC004 reported" [ "UC004" ] (codes findings)

let test_config_whitespace () =
  let config, findings =
    Config_file.parse_string ~source:"ws"
      "  engine   =   intr   \n\tentries\t=\t4096\t\n"
  in
  Alcotest.(check (list string)) "no findings" [] (codes findings);
  Alcotest.(check string) "engine" "intr"
    (Config_file.engine_name config.Config_file.engine);
  Alcotest.(check int) "entries" 4096 config.Config_file.entries

let test_config_crlf () =
  let config, findings =
    Config_file.parse_string ~source:"crlf"
      "engine = per-process\r\nprocesses = 4\r\n# comment\r\n\r\n"
  in
  Alcotest.(check (list string)) "no findings" [] (codes findings);
  Alcotest.(check int) "processes" 4 config.Config_file.processes

let test_config_empty () =
  let config, findings = Config_file.parse_string ~source:"empty" "" in
  Alcotest.(check (list string)) "no findings" [] (codes findings);
  Alcotest.(check int) "defaults intact" Config_file.default.Config_file.entries
    config.Config_file.entries

(* {2 Protocol verifier} *)

let record ?(t = 0.0) ~pid ~vpn ~npages () =
  Record.make ~time_us:t ~pid:(Pid.of_int pid) ~vpn ~npages ~op:Record.Send

let hier ?(entries = 8192) ?(prefetch = 1) ?(prepin = 1) ?limit () =
  {
    Protocol.model =
      Protocol.Hier { entries; prefetch; prepin; limit_pages = limit };
    label = "utlb";
  }

let verify sem records =
  Protocol.verify_records sem
    (List.mapi (fun i r -> (i + 1, r)) records)

let test_protocol_clean () =
  List.iter
    (fun sem ->
      Alcotest.(check (list string))
        ("clean under " ^ sem.Protocol.label)
        []
        (codes
           (verify sem
              [
                record ~pid:0 ~vpn:16 ~npages:4 ();
                record ~pid:1 ~vpn:64 ~npages:8 ();
                record ~pid:0 ~vpn:16 ~npages:4 ();
              ])))
    Protocol.defaults

let test_protocol_up01 () =
  let sem = hier ~limit:256 () in
  let fs = verify sem [ record ~pid:0 ~vpn:0 ~npages:300 () ] in
  Alcotest.(check (list string)) "UP01" [ "UP01" ] (codes fs);
  Alcotest.(check (option int)) "line" (Some 1)
    (List.hd fs).Finding.line;
  (* Dedup: the same break again for the same pid is not re-reported;
     a different pid is. *)
  let fs =
    verify sem
      [
        record ~pid:0 ~vpn:0 ~npages:300 ();
        record ~pid:0 ~vpn:4096 ~npages:300 ();
        record ~pid:1 ~vpn:0 ~npages:300 ();
      ]
  in
  Alcotest.(check (list string)) "per-pid dedup" [ "UP01"; "UP01" ] (codes fs)

let test_protocol_up02 () =
  let max_vpn = Utlb.Translation_table.max_vpn in
  let fs =
    verify (hier ())
      [ record ~pid:0 ~vpn:(max_vpn - 5) ~npages:16 () ]
  in
  Alcotest.(check (list string)) "UP02" [ "UP02" ] (codes fs);
  Alcotest.(check (list string)) "last entry is fine" []
    (codes (verify (hier ()) [ record ~pid:0 ~vpn:(max_vpn - 5) ~npages:6 () ]))

let test_protocol_up03 () =
  let sem =
    { Protocol.model = Protocol.Intr { entries = 1024; limit_pages = None };
      label = "intr" }
  in
  let fs = verify sem [ record ~pid:0 ~vpn:0 ~npages:2000 () ] in
  Alcotest.(check (list string)) "UP03" [ "UP03" ] (codes fs);
  Alcotest.(check (list string)) "at capacity is fine" []
    (codes (verify sem [ record ~pid:0 ~vpn:0 ~npages:1024 () ]))

let test_protocol_up04 () =
  let sem =
    {
      Protocol.model =
        Protocol.Per_process { processes = 2; entries_per_process = 4096 };
      label = "per-process";
    }
  in
  let fs =
    verify sem
      [
        record ~pid:0 ~vpn:0 ~npages:4 ();
        record ~pid:1 ~vpn:0 ~npages:4 ();
        record ~pid:2 ~vpn:0 ~npages:4 ();
      ]
  in
  Alcotest.(check (list string)) "pid overflow" [ "UP04" ] (codes fs);
  let fs = verify sem [ record ~pid:0 ~vpn:0 ~npages:5000 () ] in
  Alcotest.(check (list string)) "span overflow" [ "UP04" ] (codes fs)

let test_protocol_up05 () =
  let sem = hier ~prepin:64 ~limit:256 () in
  let fs = verify sem [ record ~pid:0 ~vpn:0 ~npages:250 () ] in
  Alcotest.(check (list string)) "UP05" [ "UP05" ] (codes fs);
  Alcotest.(check bool) "warning" true
    ((List.hd fs).Finding.severity = Finding.Warning);
  Alcotest.(check (list string)) "window fits" []
    (codes (verify sem [ record ~pid:0 ~vpn:0 ~npages:100 () ]))

let test_protocol_lattice () =
  let state = Protocol.init (hier ~limit:256 ()).Protocol.model in
  Alcotest.(check bool) "initially garbage" true
    (Protocol.page_state state ~pid:0 ~vpn:16 = Protocol.Garbage);
  let _ = Protocol.step state ~line:1 (record ~pid:0 ~vpn:16 ~npages:4 ()) in
  Alcotest.(check bool) "pinned after step" true
    (Protocol.page_state state ~pid:0 ~vpn:16 = Protocol.Pinned 1);
  Alcotest.(check (pair int int)) "interval" (4, 4)
    (Protocol.pinned_interval state ~pid:0);
  (* A capacity-straining record demotes the earlier span to a possible
     victim without touching its hashtable entry. *)
  let _ = Protocol.step state ~line:2 (record ~pid:0 ~vpn:512 ~npages:255 ()) in
  Alcotest.(check bool) "possible victim" true
    (Protocol.page_state state ~pid:0 ~vpn:16 = Protocol.Top);
  Alcotest.(check bool) "new span pinned" true
    (Protocol.page_state state ~pid:0 ~vpn:512 = Protocol.Pinned 1);
  (* The intr pigeonhole leaves the head of the span provably
     unpinned. *)
  let state =
    Protocol.init (Protocol.Intr { entries = 1024; limit_pages = None })
  in
  let _ = Protocol.step state ~line:1 (record ~pid:0 ~vpn:0 ~npages:1030 ()) in
  Alcotest.(check bool) "head unpinned" true
    (Protocol.page_state state ~pid:0 ~vpn:3 = Protocol.Unpinned);
  Alcotest.(check bool) "tail pinned" true
    (Protocol.page_state state ~pid:0 ~vpn:1029 = Protocol.Pinned 1)

let test_protocol_of_mech () =
  (match Protocol.of_mech ~name:"utlb" ~params:[ ("limit-mb", "1") ] with
  | Ok { Protocol.model = Protocol.Hier { limit_pages = Some 256; _ }; _ } ->
    ()
  | _ -> Alcotest.fail "utlb limit-mb=1 should model as 256 pages");
  (match Protocol.of_mech ~name:"nonesuch" ~params:[] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown mechanism must not model");
  match Protocol.of_mech ~name:"intr" ~params:[ ("entries", "lots") ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed parameter must not model"

let test_protocol_verify_file () =
  let path = Filename.temp_file "utlb_verify" ".trace" in
  Out_channel.with_open_text path (fun oc ->
      output_string oc "# comment\n0.000 0 16 4 S\nnot a record\n");
  (match Protocol.verify_file (hier ()) path with
  | Error e -> Alcotest.fail e
  | Ok fs ->
    Alcotest.(check (list string)) "UP00 for the bad line" [ "UP00" ]
      (codes fs);
    Alcotest.(check (option int)) "real line number" (Some 3)
      (List.hd fs).Finding.line);
  Sys.remove path;
  match Protocol.verify_file (hier ()) path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unreadable file must be an Error"

let test_protocol_verify_grid () =
  let grid_text =
    "name racecheck\nseed 7\nworkloads water\n\
     mechanism utlb entries=1024,8192\nmechanism intr entries=1024\n"
  in
  match Utlb_exp.Grid.of_string ~name:"racecheck" grid_text with
  | Error e -> Alcotest.fail e
  | Ok grid ->
    Alcotest.(check (list string)) "shipped-style grid is clean" []
      (codes (Protocol.verify_grid grid))

(* {2 Event parsing and the timeline reader} *)

let test_event_roundtrip () =
  List.iter
    (fun kind ->
      let ev =
        { Event.seq = 3; at_us = 1234.567; kind; pid = 2; vpn = 0x1a3;
          count = 7 }
      in
      let text = Format.asprintf "%a" Event.pp ev in
      match Event.of_string ~seq:3 text with
      | Error e -> Alcotest.fail (Event.kind_name kind ^ ": " ^ e)
      | Ok ev' -> Alcotest.(check bool) (Event.kind_name kind) true (ev = ev'))
    Event.all_kinds;
  (* vpn = -1 / count = 0 round-trip through field omission. *)
  let ev =
    { Event.seq = 0; at_us = 0.5; kind = Event.Interrupt; pid = 4; vpn = -1;
      count = 0 }
  in
  (match Event.of_string (Format.asprintf "%a" Event.pp ev) with
  | Ok ev' -> Alcotest.(check bool) "omitted fields" true (ev = ev')
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Event.of_string bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("should not parse: " ^ bad))
    [
      "";
      "1.0";
      "x host/lookup pid=1";
      "1.0 host/nonesuch pid=1";
      "1.0 ni/lookup pid=1";
      "1.0 host/lookup";
      "1.0 host/lookup pid=１";
      "1.0 host/lookup pid=1 bogus=2";
    ]

let test_reader_sections () =
  let text =
    "# timeline smoke\n\
     # cell 0 water/utlb[entries=1024]\n\
     \     0.000 host/lookup pid=0 vpn=0x10 n=2\n\
     \     0.500 ni/ni_miss pid=0 vpn=0x10\n\
     garbage line\n\
     # cell 1 water/intr[entries=1024]\n\
     \     0.000 host/lookup pid=0 vpn=0x10 n=2\n\
     12 event(s), 0 dropped\n"
  in
  let t = Reader.of_string text in
  Alcotest.(check int) "two sections" 2 (List.length t.Reader.sections);
  let s0 = List.nth t.Reader.sections 0 in
  Alcotest.(check string) "label" "0 water/utlb[entries=1024]"
    s0.Reader.label;
  Alcotest.(check int) "events in cell 0" 2 (List.length s0.Reader.events);
  Alcotest.(check (list int)) "line numbers" [ 3; 4 ]
    (List.map fst s0.Reader.events);
  Alcotest.(check int) "one parse error" 1 (List.length t.Reader.errors);
  Alcotest.(check int) "error line" 5 (fst (List.hd t.Reader.errors));
  Alcotest.(check int) "all events" 3 (List.length (Reader.events t));
  (* seq is re-assigned from whole-file order. *)
  Alcotest.(check (list int)) "seq order" [ 0; 1; 2 ]
    (List.map (fun (e : Event.t) -> e.Event.seq) (Reader.events t))

(* {2 Happens-before race detector} *)

let ev ?(pid = 1) ?(vpn = -1) ?(count = 0) ~at kind =
  { Event.seq = 0; at_us = at; kind; pid; vpn; count }

let analyze events = Hb.analyze_events (List.mapi (fun i e -> (i + 1, e)) events)

let test_hb_up10 () =
  let fs =
    analyze
      [
        ev ~at:0.0 ~vpn:0x100 ~count:2 Event.Lookup;
        ev ~at:1.0 ~vpn:0x100 Event.Ni_hit;
        ev ~at:2.0 ~vpn:0x100 ~count:1 Event.Unpin;
      ]
  in
  Alcotest.(check (list string)) "UP10" [ "UP10" ] (codes fs);
  Alcotest.(check (option int)) "anchored at the unpin" (Some 3)
    (List.hd fs).Finding.line

let test_hb_up11 () =
  let fs =
    analyze
      [
        ev ~at:0.0 ~vpn:0x100 ~count:1 Event.Lookup;
        ev ~at:1.0 ~vpn:0x100 ~count:1 Event.Fetch;
        ev ~at:2.0 ~vpn:0x100 ~count:1 Event.Pin;
      ]
  in
  Alcotest.(check (list string)) "UP11" [ "UP11" ] (codes fs)

let test_hb_ordered () =
  (* The interrupt orders the kernel after all NI activity; the next
     lookup of a pid observes the NI work done on its behalf. *)
  Alcotest.(check (list string)) "interrupt edge" []
    (codes
       (analyze
          [
            ev ~at:0.0 ~vpn:0x100 ~count:1 Event.Lookup;
            ev ~at:1.0 ~vpn:0x100 Event.Ni_miss;
            ev ~at:2.0 Event.Interrupt;
            ev ~at:3.0 ~vpn:0x100 ~count:1 Event.Pin;
            ev ~at:4.0 ~vpn:0x100 Event.Ni_hit;
            ev ~at:5.0 Event.Interrupt;
            ev ~at:6.0 ~vpn:0x100 ~count:1 Event.Unpin;
          ]));
  Alcotest.(check (list string)) "lookup-completion edge" []
    (codes
       (analyze
          [
            ev ~at:0.0 ~vpn:0x100 ~count:1 Event.Lookup;
            ev ~at:1.0 ~vpn:0x100 Event.Ni_hit;
            ev ~at:2.0 ~vpn:0x200 ~count:1 Event.Lookup;
            ev ~at:3.0 ~vpn:0x100 ~count:1 Event.Unpin;
          ]));
  (* Conflicts on different pages or different pids are no conflict at
     all. *)
  Alcotest.(check (list string)) "distinct variables" []
    (codes
       (analyze
          [
            ev ~at:0.0 ~vpn:0x100 ~count:1 Event.Lookup;
            ev ~at:1.0 ~vpn:0x100 Event.Ni_hit;
            ev ~at:2.0 ~vpn:0x101 ~count:1 Event.Unpin;
            ev ~at:3.0 ~pid:2 ~vpn:0x100 ~count:1 Event.Unpin;
          ]))

let test_hb_up13 () =
  let fs =
    analyze
      [ ev ~at:5.0 ~vpn:0x100 Event.Ni_miss; ev ~at:1.0 ~vpn:0x101 Event.Ni_hit ]
  in
  Alcotest.(check (list string)) "UP13" [ "UP13" ] (codes fs);
  (* Different actors may interleave times freely. *)
  Alcotest.(check (list string)) "cross-actor regress is fine" []
    (codes
       (analyze
          [ ev ~at:5.0 ~vpn:0x100 Event.Ni_miss; ev ~at:1.0 Event.Interrupt ]))

let test_hb_up12 () =
  let t = Reader.of_string "not an event\n" in
  Alcotest.(check (list string)) "UP12" [ "UP12" ] (codes (Hb.analyze t))

(* {2 LINTS.md sync} *)

let lints_md_rows () =
  (* Cwd is _build/default/test under `dune runtest`, the workspace
     root under `dune exec`. *)
  let path =
    List.find Sys.file_exists [ "../LINTS.md"; "LINTS.md" ]
  in
  let text = In_channel.with_open_text path In_channel.input_all in
  List.filter_map
    (fun line ->
      match String.split_on_char '|' (String.trim line) with
      | [ ""; code; desc; "" ] ->
        (* Table rows whose first cell looks like a code; the header
           row ("Code") and the separator row ("----") do not. *)
        let code = String.trim code and desc = String.trim desc in
        if String.length code >= 2 && code.[0] = 'U' then Some (code, desc)
        else None
      | _ -> None)
    (String.split_on_char '\n' text)

let test_lints_md_sync () =
  let rows = lints_md_rows () in
  (* Every catalogued code appears in LINTS.md with the same
     description... *)
  List.iter
    (fun (code, desc) ->
      match List.assoc_opt code rows with
      | None -> Alcotest.fail (code ^ " missing from LINTS.md")
      | Some d -> Alcotest.(check string) (code ^ " description") desc d)
    Catalogue.all;
  (* ... and LINTS.md documents no code the catalogue does not have. *)
  List.iter
    (fun (code, _) ->
      Alcotest.(check bool) (code ^ " known to the catalogue") true
        (Catalogue.mem code))
    rows;
  Alcotest.(check int) "same cardinality" (List.length Catalogue.all)
    (List.length rows)

let suite =
  [
    Alcotest.test_case "catalogue: codes unique" `Quick test_catalogue_unique;
    Alcotest.test_case "catalogue: describe/mem" `Quick test_catalogue_describe;
    Alcotest.test_case "catalogue: all families" `Quick test_catalogue_families;
    Alcotest.test_case "finding: by_severity deterministic" `Quick
      test_by_severity_deterministic;
    Alcotest.test_case "finding: pp with line" `Quick test_finding_pp_line;
    Alcotest.test_case "finding: json" `Quick test_finding_json;
    Alcotest.test_case "config: duplicate keys" `Quick
      test_config_duplicate_keys;
    Alcotest.test_case "config: whitespace" `Quick test_config_whitespace;
    Alcotest.test_case "config: crlf" `Quick test_config_crlf;
    Alcotest.test_case "config: empty file" `Quick test_config_empty;
    Alcotest.test_case "protocol: clean defaults" `Quick test_protocol_clean;
    Alcotest.test_case "protocol: UP01 limit break" `Quick test_protocol_up01;
    Alcotest.test_case "protocol: UP02 garbage frame" `Quick
      test_protocol_up02;
    Alcotest.test_case "protocol: UP03 pigeonhole" `Quick test_protocol_up03;
    Alcotest.test_case "protocol: UP04 table overflow" `Quick
      test_protocol_up04;
    Alcotest.test_case "protocol: UP05 prepin window" `Quick
      test_protocol_up05;
    Alcotest.test_case "protocol: lattice introspection" `Quick
      test_protocol_lattice;
    Alcotest.test_case "protocol: of_mech" `Quick test_protocol_of_mech;
    Alcotest.test_case "protocol: verify_file" `Quick test_protocol_verify_file;
    Alcotest.test_case "protocol: verify_grid" `Quick test_protocol_verify_grid;
    Alcotest.test_case "event: of_string roundtrip" `Quick
      test_event_roundtrip;
    Alcotest.test_case "reader: sections" `Quick test_reader_sections;
    Alcotest.test_case "hb: UP10 use-after-unpin" `Quick test_hb_up10;
    Alcotest.test_case "hb: UP11 fetch race" `Quick test_hb_up11;
    Alcotest.test_case "hb: ordered traces are clean" `Quick test_hb_ordered;
    Alcotest.test_case "hb: UP13 time regression" `Quick test_hb_up13;
    Alcotest.test_case "hb: UP12 parse error" `Quick test_hb_up12;
    Alcotest.test_case "LINTS.md in sync" `Quick test_lints_md_sync;
  ]
