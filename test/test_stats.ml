open Utlb_sim.Stats

let test_counter () =
  let c = Counter.create "c" in
  Alcotest.(check string) "name" "c" (Counter.name c);
  Alcotest.(check int) "zero" 0 (Counter.value c);
  Counter.incr c;
  Counter.add c 5;
  Alcotest.(check int) "accumulates" 6 (Counter.value c);
  Counter.reset c;
  Alcotest.(check int) "reset" 0 (Counter.value c)

let test_summary_basic () =
  let s = Summary.create "s" in
  List.iter (Summary.observe s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Summary.max s);
  Alcotest.(check (float 1e-9)) "total" 10.0 (Summary.total s);
  Alcotest.(check (float 1e-9)) "variance" 1.25 (Summary.variance s)

let test_summary_empty () =
  let s = Summary.create "s" in
  Alcotest.(check (float 1e-9)) "mean of empty" 0.0 (Summary.mean s);
  Alcotest.(check (float 1e-9)) "min of empty" 0.0 (Summary.min s);
  Alcotest.(check (float 1e-9)) "max of empty" 0.0 (Summary.max s)

let test_summary_single () =
  let s = Summary.create "s" in
  Summary.observe s 7.0;
  Alcotest.(check (float 1e-9)) "variance of one" 0.0 (Summary.variance s);
  Alcotest.(check (float 1e-9)) "min=max" (Summary.min s) (Summary.max s)

let test_histogram () =
  let h = Histogram.create ~name:"h" ~bucket_width:10.0 ~buckets:5 in
  List.iter (Histogram.observe h) [ 1.0; 5.0; 15.0; 47.0; 120.0 ];
  Alcotest.(check int) "count" 5 (Histogram.count h);
  Alcotest.(check int) "bucket 0" 2 (Histogram.bucket h 0);
  Alcotest.(check int) "bucket 1" 1 (Histogram.bucket h 1);
  Alcotest.(check int) "bucket 4" 1 (Histogram.bucket h 4);
  Alcotest.(check int) "overflow" 1 (Histogram.bucket h 5)

let test_histogram_percentile () =
  let h = Histogram.create ~name:"h" ~bucket_width:1.0 ~buckets:100 in
  for i = 1 to 100 do
    Histogram.observe h (float_of_int i -. 0.5)
  done;
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Histogram.percentile h 50.0);
  Alcotest.(check (float 1e-9)) "p99" 99.0 (Histogram.percentile h 99.0)

let test_histogram_quantile () =
  let h = Histogram.create ~name:"h" ~bucket_width:1.0 ~buckets:100 in
  Alcotest.(check (float 1e-9)) "quantile of empty" 0.0 (Histogram.quantile h 0.5);
  for i = 1 to 100 do
    Histogram.observe h (float_of_int i -. 0.5)
  done;
  Alcotest.(check (float 1e-9)) "q0.5" 50.0 (Histogram.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "q0.99" 99.0 (Histogram.quantile h 0.99);
  Alcotest.(check (float 1e-9)) "clamped above" 100.0 (Histogram.quantile h 2.0);
  Alcotest.(check (float 1e-9)) "matches percentile" (Histogram.percentile h 90.0)
    (Histogram.quantile h 0.9)

let test_histogram_invalid () =
  Alcotest.check_raises "bad width"
    (Invalid_argument "Stats.Histogram.create: bucket_width must be positive")
    (fun () -> ignore (Histogram.create ~name:"x" ~bucket_width:0.0 ~buckets:2))

let prop_welford_mean =
  QCheck.Test.make ~name:"Welford mean matches naive mean" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_range (-100.0) 100.0))
    (fun xs ->
      let s = Summary.create "w" in
      List.iter (Summary.observe s) xs;
      let naive = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      Float.abs (Summary.mean s -. naive) < 1e-6)

let suite =
  [
    Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "summary basic" `Quick test_summary_basic;
    Alcotest.test_case "summary empty" `Quick test_summary_empty;
    Alcotest.test_case "summary single" `Quick test_summary_single;
    Alcotest.test_case "histogram buckets" `Quick test_histogram;
    Alcotest.test_case "histogram percentile" `Quick test_histogram_percentile;
    Alcotest.test_case "histogram quantile" `Quick test_histogram_quantile;
    Alcotest.test_case "histogram invalid" `Quick test_histogram_invalid;
    QCheck_alcotest.to_alcotest prop_welford_mean;
  ]
