(* The multi-tenant virtualization plane: spec grammar, config lints,
   cache-window geometry, parallel-exact isolation accounting, quota
   enforcement at the engine boundary, and the end-to-end interference
   guarantee the partitioned sweeps rely on. *)

module Tenant = Utlb_tenant.Tenant
module Arbiter = Utlb_tenant.Arbiter
module Isolation = Utlb_tenant.Isolation
module Workloads = Utlb_trace.Workloads
module Plan = Utlb_fault.Plan
module Injector = Utlb_fault.Injector
module Pid = Utlb_mem.Pid
open Utlb

let config_of_spec spec =
  match Tenant.of_string spec with
  | Ok (Some cfg) -> cfg
  | Ok None -> Alcotest.failf "spec %S parsed to no tenancy" spec
  | Error e -> Alcotest.failf "spec %S: %s" spec e

(* --- Spec grammar -------------------------------------------------- *)

let test_spec_roundtrip () =
  let cfg =
    config_of_spec "strict/victim=0:share=0.5:weight=2/noisy=1-3:share=0.25"
  in
  Alcotest.(check bool) "mode" true (cfg.Tenant.mode = Tenant.Strict);
  Alcotest.(check int) "two tenants" 2 (Tenant.tenants cfg);
  let victim = Tenant.policy cfg 0 and noisy = Tenant.policy cfg 1 in
  Alcotest.(check string) "victim name" "victim" victim.Tenant.name;
  Alcotest.(check (list int)) "victim pids" [ 0 ] victim.Tenant.pids;
  Alcotest.(check (option (float 1e-9))) "victim share" (Some 0.5)
    victim.Tenant.share;
  Alcotest.(check int) "victim weight" 2 victim.Tenant.weight;
  Alcotest.(check (list int)) "range pids" [ 1; 2; 3 ] noisy.Tenant.pids;
  Alcotest.(check int) "default weight" 1 noisy.Tenant.weight;
  Alcotest.(check (option int)) "no quota" None noisy.Tenant.quota;
  (* to_string is the inverse of of_string up to defaults. *)
  let reparsed = config_of_spec (Tenant.to_string cfg) in
  Alcotest.(check bool) "round-trips" true (reparsed = cfg)

let test_spec_disabled () =
  (match Tenant.of_string "off" with
  | Ok None -> ()
  | _ -> Alcotest.fail "off must disable tenancy");
  (match Tenant.of_string "  " with
  | Ok None -> ()
  | _ -> Alcotest.fail "blank must disable tenancy");
  match Tenant.of_string "OFF" with
  | Ok None -> ()
  | _ -> Alcotest.fail "off is case-insensitive"

let test_spec_pid_atoms () =
  let cfg = config_of_spec "shared/t=0+2-4+7" in
  Alcotest.(check (list int)) "mixed atoms" [ 0; 2; 3; 4; 7 ]
    (Tenant.policy cfg 0).Tenant.pids

let test_spec_errors () =
  let rejects spec =
    match Tenant.of_string spec with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted bad spec %S" spec
  in
  rejects "sliced/t=0";
  (* unknown mode *)
  rejects "shared";
  (* no tenants *)
  rejects "shared/t";
  (* no pid set *)
  rejects "shared/=0";
  (* empty name *)
  rejects "shared/t=x";
  (* bad pid *)
  rejects "shared/t=3-1";
  (* inverted range *)
  rejects "shared/t=0:quota=many";
  (* bad attr value *)
  rejects "shared/t=0:colour=red" (* unknown attr *)

(* --- Config lints (UC18x) ------------------------------------------ *)

let codes_of ?sets spec =
  List.map fst (Tenant.validate ?sets (config_of_spec spec))

let test_validate_lints () =
  Alcotest.(check (list string)) "clean config" []
    (codes_of "strict/a=0:share=0.5/b=1:share=0.5" ~sets:8);
  Alcotest.(check (list string)) "overlapping pids" [ "UC181" ]
    (codes_of "shared/a=0-2/b=2-3");
  Alcotest.(check (list string)) "share out of range" [ "UC182" ]
    (codes_of "strict/a=0:share=-0.5");
  Alcotest.(check (list string)) "oversized share trips range and sum"
    [ "UC182"; "UC182" ]
    (codes_of "strict/a=0:share=1.5");
  Alcotest.(check (list string)) "shares oversum" [ "UC182" ]
    (codes_of "strict/a=0:share=0.75/b=1:share=0.75");
  Alcotest.(check (list string)) "non-positive quota" [ "UC183" ]
    (codes_of "shared/a=0:quota=0");
  Alcotest.(check (list string)) "non-positive weight" [ "UC183" ]
    (codes_of "shared/a=0:weight=-1");
  Alcotest.(check (list string)) "strict share below one set" [ "UC184" ]
    (codes_of "strict/a=0:share=0.01/b=1" ~sets:8)

(* --- Cache-window geometry ----------------------------------------- *)

let test_bind_strict_windows () =
  let arb = Arbiter.create (config_of_spec "strict/a=0:share=0.5/b=1:share=0.5") in
  Arbiter.bind arb ~sets:8;
  let win pid =
    match Arbiter.window arb ~pid with
    | Some w -> w
    | None -> Alcotest.failf "pid %d: expected a private window" pid
  in
  let indices pid =
    let base, mask, offset = win pid in
    List.init 64 (fun h -> base + ((h + offset) land mask))
    |> List.sort_uniq compare
  in
  let ia = indices 0 and ib = indices 1 in
  Alcotest.(check int) "a owns half the sets" 4 (List.length ia);
  Alcotest.(check int) "b owns half the sets" 4 (List.length ib);
  Alcotest.(check (list int)) "windows are disjoint and cover" [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (List.sort_uniq compare (ia @ ib));
  (* Unmanaged pids see the whole cache. *)
  Alcotest.(check bool) "unmanaged pid unconstrained" true
    (Arbiter.window arb ~pid:9 = None)

let test_bind_offset_windows () =
  let arb = Arbiter.create (config_of_spec "offset/a=0/b=1") in
  Arbiter.bind arb ~sets:8;
  (* Tenant 0 keeps the identity mapping; tenant 1 is rotated by half
     the cache but still reaches every set. *)
  Alcotest.(check bool) "tenant 0 identity" true (Arbiter.window arb ~pid:0 = None);
  match Arbiter.window arb ~pid:1 with
  | Some (0, 7, 4) -> ()
  | Some (b, m, o) -> Alcotest.failf "tenant 1 window (%d,%d,%d)" b m o
  | None -> Alcotest.fail "tenant 1 must be offset"

let test_bind_inert () =
  Alcotest.(check bool) "none is inactive" false (Arbiter.active Arbiter.none);
  Arbiter.bind Arbiter.none ~sets:8;
  Alcotest.(check bool) "none has no windows" true
    (Arbiter.window Arbiter.none ~pid:0 = None);
  Alcotest.(check int) "none has no quota" max_int
    (Arbiter.quota_remaining Arbiter.none ~pid:0);
  Alcotest.(check bool) "none has no snapshot" true
    (Arbiter.snapshot Arbiter.none = None)

(* --- Isolation accounting ------------------------------------------ *)

(* Feed a list of per-window outcomes (window length 4) into an
   arbiter for pid 0 and return its snapshot. *)
let snapshot_of_windows misses_per_window =
  let arb = Arbiter.create ~window:4 (config_of_spec "shared/t=0") in
  List.iter
    (fun misses ->
      for i = 0 to 3 do
        Arbiter.note_ni_access arb ~pid:0 ~hit:(i >= misses)
      done)
    misses_per_window;
  match Arbiter.snapshot arb with
  | Some iso -> iso
  | None -> Alcotest.fail "active arbiter must snapshot"

let test_isolation_parallel_welford () =
  (* Two shards observe different window streams; their merged moments
     must equal the single-stream computation exactly. *)
  let a = snapshot_of_windows [ 1; 2 ] (* rates 0.25, 0.50 *)
  and b = snapshot_of_windows [ 4 ] (* rate 1.00 *) in
  let merged = Isolation.add a b in
  let row = merged.Isolation.rows.(0) in
  Alcotest.(check int) "windows" 3 row.Isolation.windows;
  let rates = [ 0.25; 0.5; 1.0 ] in
  let mean = List.fold_left ( +. ) 0.0 rates /. 3.0 in
  let var =
    List.fold_left (fun acc r -> acc +. ((r -. mean) ** 2.0)) 0.0 rates /. 2.0
  in
  Alcotest.(check (float 1e-12)) "merged mean" mean row.Isolation.win_mean;
  Alcotest.(check (float 1e-12)) "merged sample variance" var
    (Isolation.window_variance row);
  Alcotest.(check int) "accesses sum" 12 row.Isolation.ni_accesses;
  Alcotest.(check int) "misses sum" 7 row.Isolation.ni_misses

let test_isolation_merge_opt () =
  let a = snapshot_of_windows [ 1 ] in
  Alcotest.(check bool) "None is identity" true
    (Isolation.merge_opt (Some a) None = Some a);
  Alcotest.(check bool) "None absorbs" true
    (Isolation.merge_opt None None = None);
  match Tenant.of_string "shared/other=0" with
  | Ok (Some cfg) -> (
    let alien =
      match Arbiter.snapshot (Arbiter.create cfg) with
      | Some iso -> iso
      | None -> Alcotest.fail "snapshot"
    in
    try
      ignore (Isolation.add a alien);
      Alcotest.fail "merging different tenant sets must raise"
    with Invalid_argument _ -> ())
  | _ -> Alcotest.fail "parse"

let test_jain_weighted () =
  let arb =
    Arbiter.create ~window:1024 (config_of_spec "shared/a=0:weight=2/b=1")
  in
  (* Service proportional to weight: a gets 2x the hits of b. *)
  for _ = 1 to 20 do
    Arbiter.note_ni_access arb ~pid:0 ~hit:true
  done;
  for _ = 1 to 10 do
    Arbiter.note_ni_access arb ~pid:1 ~hit:true
  done;
  let iso = Option.get (Arbiter.snapshot arb) in
  Alcotest.(check (float 1e-9)) "proportional service is fair" 1.0
    (Isolation.jain iso)

(* --- Quota enforcement at the engine boundary ---------------------- *)

let quota_engine ?sanitizer ?faults quota =
  let tenancy =
    Arbiter.create (config_of_spec (Printf.sprintf "shared/t=0:quota=%d" quota))
  in
  let e =
    Hier_engine.create ?sanitizer ?faults ~tenancy ~seed:7L
      Hier_engine.default_config
  in
  (e, tenancy)

let denials tenancy =
  match Arbiter.snapshot tenancy with
  | Some iso -> Isolation.quota_denials iso
  | None -> Alcotest.fail "snapshot"

let pid0 = Pid.of_int 0

let test_quota_exactly_exhausted () =
  (* A request that lands exactly on the quota is fully admitted: no
     denial, no headroom left. *)
  let e, tenancy = quota_engine 4 in
  let o = Hier_engine.lookup e ~pid:pid0 ~vpn:100 ~npages:4 in
  Alcotest.(check int) "all pages pinned" 4 o.Hier_engine.pages_pinned;
  Alcotest.(check int) "no headroom" 0 (Arbiter.quota_remaining tenancy ~pid:0);
  Alcotest.(check int) "no denials" 0 (denials tenancy)

let test_quota_overflow_denied () =
  (* A single request larger than the quota admits a prefix and denies
     the shortfall — the run proceeds, the surplus pages just stay
     unpinned (safe by design, like a memory-limit eviction). *)
  let e, tenancy = quota_engine 4 in
  let o = Hier_engine.lookup e ~pid:pid0 ~vpn:100 ~npages:6 in
  Alcotest.(check int) "quota's worth pinned" 4 o.Hier_engine.pages_pinned;
  Alcotest.(check int) "shortfall denied" 2 (denials tenancy);
  Alcotest.(check int) "pin accounting agrees" 4
    (Hier_engine.pinned_pages e pid0)

let test_quota_self_shrink () =
  (* At quota, a new working set first evicts the tenant's own LRU
     pages rather than burning denials. *)
  let e, tenancy = quota_engine 4 in
  ignore (Hier_engine.lookup e ~pid:pid0 ~vpn:100 ~npages:4);
  let o = Hier_engine.lookup e ~pid:pid0 ~vpn:200 ~npages:2 in
  Alcotest.(check int) "new pages pinned" 2 o.Hier_engine.pages_pinned;
  Alcotest.(check int) "old pages unpinned to make room" 2
    o.Hier_engine.pages_unpinned;
  Alcotest.(check int) "still at quota" 4 (Hier_engine.pinned_pages e pid0);
  Alcotest.(check int) "no denials" 0 (denials tenancy)

(* --- Degenerate tenancy is observationally inert ------------------- *)

let test_single_tenant_degenerate () =
  (* A single all-pid shared tenant with no quota must reproduce the
     untenanted run exactly — same counters, same costs — with the
     isolation block as the only difference. *)
  let spec = Workloads.interference in
  let mech = Sim_driver.Utlb Hier_engine.default_config in
  let plain = Sim_driver.run_workload ~seed:42L mech spec in
  let tenancy = Arbiter.create (config_of_spec "shared/all=0-7") in
  let tenanted = Sim_driver.run_workload ~seed:42L ~tenancy mech spec in
  Alcotest.(check bool) "tenanted run carries isolation" true
    (tenanted.Report.isolation <> None);
  Alcotest.(check bool) "otherwise byte-identical" true
    ({ tenanted with Report.isolation = None } = plain)

(* --- Tenant churn under an active fault plan ----------------------- *)

let test_churn_under_faults () =
  let faults =
    match
      Plan.of_string
        "dma-fail=0.3,dma-retries=2,cache-invalidate=0.1,table-swap=0.05"
    with
    | Ok p -> Injector.create ~seed:11L p
    | Error e -> Alcotest.fail e
  in
  let sanitizer = Utlb_sim.Sanitizer.create () in
  let tenancy =
    Arbiter.create (config_of_spec "shared/a=0:quota=64/b=1:quota=64")
  in
  let e =
    Hier_engine.create ~sanitizer ~faults ~tenancy ~seed:13L
      Hier_engine.default_config
  in
  let pid1 = Pid.of_int 1 in
  for i = 0 to 63 do
    ignore (Hier_engine.lookup e ~pid:pid0 ~vpn:(1000 + i) ~npages:1);
    ignore (Hier_engine.lookup e ~pid:pid1 ~vpn:(5000 + i) ~npages:1)
  done;
  Alcotest.(check int) "tenant b at quota" 0
    (Arbiter.quota_remaining tenancy ~pid:1);
  (* Departure releases every pin and restores the tenant's headroom,
     even mid-fault-storm. *)
  let released = Hier_engine.remove_process e pid1 in
  Alcotest.(check int) "all pages released" 64 released;
  Alcotest.(check int) "headroom restored" 64
    (Arbiter.quota_remaining tenancy ~pid:1);
  (* A successor process in the same tenant reuses the headroom. *)
  for i = 0 to 63 do
    ignore (Hier_engine.lookup e ~pid:pid1 ~vpn:(9000 + i) ~npages:1)
  done;
  Alcotest.(check int) "successor consumed it" 0
    (Arbiter.quota_remaining tenancy ~pid:1);
  Alcotest.(check int) "pin protocol stayed clean" 0
    (Utlb_sim.Sanitizer.errors sanitizer);
  let iso = Option.get (Arbiter.snapshot tenancy) in
  Alcotest.(check int) "no denials across churn" 0
    (Isolation.quota_denials iso)

(* --- The interference guarantee ------------------------------------ *)

let test_strict_partitioning_protects_victim () =
  (* The acceptance property of the tenancy subsystem: under strict set
     partitioning the victim keeps its hot set — lower miss rate, lower
     windowed miss-rate variance, zero cross-tenant evictions — while
     accounting-only (shared) tenancy documents the interference. *)
  let spec = Workloads.interference in
  let mech = Sim_driver.Utlb Hier_engine.default_config in
  let run tenants =
    let tenancy = Arbiter.create (config_of_spec tenants) in
    let r = Sim_driver.run_workload ~seed:42L ~tenancy mech spec in
    Option.get r.Report.isolation
  in
  let shared = run "shared/victim=0/noisy=1-3" in
  let strict = run "strict/victim=0:share=0.5/noisy=1-3:share=0.5" in
  let v iso = iso.Isolation.rows.(0) in
  Alcotest.(check bool) "shared mode interferes" true
    (Isolation.cross_evictions shared > 0);
  Alcotest.(check int) "strict mode cannot" 0
    (Isolation.cross_evictions strict);
  Alcotest.(check bool) "victim misses less when partitioned" true
    (Isolation.miss_rate (v strict) < Isolation.miss_rate (v shared));
  Alcotest.(check bool) "victim variance collapses when partitioned" true
    (Isolation.window_variance (v strict)
    < Isolation.window_variance (v shared))

let suite =
  [
    Alcotest.test_case "spec round-trip" `Quick test_spec_roundtrip;
    Alcotest.test_case "spec off/blank" `Quick test_spec_disabled;
    Alcotest.test_case "spec pid atoms" `Quick test_spec_pid_atoms;
    Alcotest.test_case "spec errors" `Quick test_spec_errors;
    Alcotest.test_case "validate UC18x lints" `Quick test_validate_lints;
    Alcotest.test_case "strict windows partition" `Quick
      test_bind_strict_windows;
    Alcotest.test_case "offset windows rotate" `Quick test_bind_offset_windows;
    Alcotest.test_case "inert arbiter" `Quick test_bind_inert;
    Alcotest.test_case "parallel Welford merge" `Quick
      test_isolation_parallel_welford;
    Alcotest.test_case "merge_opt identity/mismatch" `Quick
      test_isolation_merge_opt;
    Alcotest.test_case "weighted Jain index" `Quick test_jain_weighted;
    Alcotest.test_case "quota exactly exhausted" `Quick
      test_quota_exactly_exhausted;
    Alcotest.test_case "quota overflow denied" `Quick
      test_quota_overflow_denied;
    Alcotest.test_case "quota self-shrink" `Quick test_quota_self_shrink;
    Alcotest.test_case "single-tenant degenerate" `Slow
      test_single_tenant_degenerate;
    Alcotest.test_case "churn under faults" `Quick test_churn_under_faults;
    Alcotest.test_case "strict partitioning protects victim" `Slow
      test_strict_partitioning_protects_victim;
  ]
