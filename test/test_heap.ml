open Utlb_sim

let int_heap () = Heap.create ~cmp:Int.compare

let test_empty () =
  let h = int_heap () in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek" None (Heap.peek h);
  Alcotest.(check (option int)) "pop" None (Heap.pop h);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

let test_ordering () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2 ];
  Alcotest.(check (list int)) "sorted drain" [ 1; 2; 3; 5; 8; 9 ]
    (Heap.to_sorted_list h);
  (* to_sorted_list is non-destructive *)
  Alcotest.(check int) "length preserved" 6 (Heap.length h)

let test_fifo_ties () =
  (* Equal keys must pop in insertion order. *)
  let h = Heap.create ~cmp:(fun (a, _) (b, _) -> Int.compare a b) in
  Heap.push h (1, "first");
  Heap.push h (1, "second");
  Heap.push h (0, "zero");
  Heap.push h (1, "third");
  let order = List.map snd (Heap.to_sorted_list h) in
  Alcotest.(check (list string)) "fifo ties"
    [ "zero"; "first"; "second"; "third" ]
    order

let test_clear () =
  let h = int_heap () in
  List.iter (Heap.push h) [ 1; 2; 3 ];
  Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Heap.length h);
  Heap.push h 42;
  Alcotest.(check (option int)) "usable after clear" (Some 42) (Heap.pop h)

let test_interleaved () =
  let h = int_heap () in
  Heap.push h 10;
  Heap.push h 5;
  Alcotest.(check (option int)) "min first" (Some 5) (Heap.pop h);
  Heap.push h 1;
  Heap.push h 20;
  Alcotest.(check (option int)) "new min" (Some 1) (Heap.pop h);
  Alcotest.(check (option int)) "then 10" (Some 10) (Heap.pop h);
  Alcotest.(check (option int)) "then 20" (Some 20) (Heap.pop h)

let prop_heapsort =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = int_heap () in
      List.iter (Heap.push h) xs;
      let drained = Heap.to_sorted_list h in
      drained = List.stable_sort Int.compare xs)

let prop_length =
  QCheck.Test.make ~name:"length tracks pushes and pops" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let h = int_heap () in
      List.iter (Heap.push h) xs;
      let n = List.length xs in
      let popped = ref 0 in
      while Heap.pop h <> None do
        incr popped
      done;
      !popped = n && Heap.is_empty h)

(* Differential: the shipped 4-ary heap vs an inline reference binary
   heap with the same FIFO tie-breaking, driven by a seeded mixed
   push/pop schedule. The two layouts must observe identical pop
   sequences at every point, not just a sorted final drain. *)
module Ref_heap = struct
  type 'a entry = { value : 'a; seq : int }

  type 'a t = {
    cmp : 'a -> 'a -> int;
    mutable data : 'a entry list;  (* sorted ascending *)
    mutable next_seq : int;
  }

  let create ~cmp = { cmp; data = []; next_seq = 0 }

  let entry_cmp t a b =
    let c = t.cmp a.value b.value in
    if c <> 0 then c else compare a.seq b.seq

  let push t v =
    let e = { value = v; seq = t.next_seq } in
    t.next_seq <- t.next_seq + 1;
    let rec insert = function
      | [] -> [ e ]
      | x :: rest ->
        if entry_cmp t e x < 0 then e :: x :: rest else x :: insert rest
    in
    t.data <- insert t.data

  let pop t =
    match t.data with
    | [] -> None
    | e :: rest ->
      t.data <- rest;
      Some e.value
end

let test_differential () =
  let seed = 0x5EED in
  let st = Random.State.make [| seed |] in
  (* Values are (key, uid): only the key is compared, so equal keys are
     distinguishable and a FIFO tie-breaking divergence between the two
     layouts shows up as a uid mismatch. *)
  let cmp (a, _) (b, _) = Int.compare a b in
  let h = Heap.create ~cmp in
  let r = Ref_heap.create ~cmp in
  let pair_t = Alcotest.(pair int int) in
  for step = 1 to 10_000 do
    (* Push-biased so the heaps grow; keys from a small range so FIFO
       tie-breaking is exercised constantly. *)
    if Random.State.int st 3 < 2 then begin
      let v = (Random.State.int st 64, step) in
      Heap.push h v;
      Ref_heap.push r v
    end
    else begin
      let expected = Ref_heap.pop r in
      let got = Heap.pop h in
      Alcotest.(check (option pair_t))
        (Printf.sprintf "pop agrees at step %d" step)
        expected got
    end;
    Alcotest.(check int)
      (Printf.sprintf "length agrees at step %d" step)
      (List.length r.Ref_heap.data) (Heap.length h)
  done;
  let rec drain () =
    let expected = Ref_heap.pop r in
    let got = Heap.pop h in
    Alcotest.(check (option pair_t)) "final drain agrees" expected got;
    if got <> None then drain ()
  in
  drain ()

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "fifo tie-breaking" `Quick test_fifo_ties;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
    Alcotest.test_case "differential vs reference binary heap" `Quick
      test_differential;
    QCheck_alcotest.to_alcotest prop_heapsort;
    QCheck_alcotest.to_alcotest prop_length;
  ]
