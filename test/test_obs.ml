(* lib/obs: the event sink, exporters, metrics registry, and the
   ?obs scope wiring through engines, the driver, and the campaign
   runner. *)

module Event = Utlb_obs.Event
module Sink = Utlb_obs.Trace_sink
module Export = Utlb_obs.Export
module Metrics = Utlb_obs.Metrics
module Scope = Utlb_obs.Scope
module Workloads = Utlb_trace.Workloads
module Grid = Utlb_exp.Grid
module Runner = Utlb_exp.Runner
open Utlb

let seed = 42L

let tiny name factor =
  let scaled = Workloads.scaled (Option.get (Workloads.find name)) ~factor in
  Workloads.custom
    ~name:(Printf.sprintf "%s@%g" name factor)
    ~generate:scaled.Workloads.generate ()

(* --- Trace sink ----------------------------------------------------- *)

let test_ring_drops_keep_counts () =
  let sink = Sink.create ~capacity:8 () in
  for i = 1 to 20 do
    Sink.emit sink ~at_us:(float_of_int i) ~kind:Event.Lookup ~pid:0
      ~count:2 ()
  done;
  Alcotest.(check int) "emitted" 20 (Sink.emitted sink);
  Alcotest.(check int) "retained" 8 (Sink.retained sink);
  Alcotest.(check int) "dropped" 12 (Sink.dropped sink);
  (* Whole-run accounting survives the drops. *)
  Alcotest.(check int) "kind count" 20 (Sink.kind_count sink Event.Lookup);
  Alcotest.(check int) "kind total" 40 (Sink.kind_total sink Event.Lookup);
  (* The ring retains the newest events, oldest first. *)
  let seqs = List.map (fun (e : Event.t) -> e.Event.seq) (Sink.events sink) in
  Alcotest.(check (list int)) "newest retained"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    seqs

let test_clear () =
  let sink = Sink.create ~capacity:4 () in
  Sink.emit sink ~at_us:1.0 ~kind:Event.Pin ~pid:1 ~count:3 ();
  Sink.clear sink;
  Alcotest.(check int) "emitted" 0 (Sink.emitted sink);
  Alcotest.(check int) "kind count" 0 (Sink.kind_count sink Event.Pin);
  Alcotest.(check int) "kind total" 0 (Sink.kind_total sink Event.Pin)

(* --- Exporters ------------------------------------------------------ *)

let test_span_durations () =
  let sink = Sink.create () in
  Sink.emit sink ~at_us:10.0 ~kind:Event.Dma_fetch_start ~pid:1 ~count:4 ();
  Sink.emit sink ~at_us:12.0 ~kind:Event.Bus_start ~pid:2 ();
  Sink.emit sink ~at_us:25.0 ~kind:Event.Dma_fetch_end ~pid:1 ~count:4 ();
  Sink.emit sink ~at_us:13.5 ~kind:Event.Bus_end ~pid:2 ();
  (* Spans match per (pid, span); an unmatched end is skipped. *)
  Sink.emit sink ~at_us:99.0 ~kind:Event.Bus_end ~pid:3 ();
  Alcotest.(check (list (pair string (float 1e-9))))
    "durations"
    [ ("dma_fetch_start", 15.0); ("bus_start", 1.5) ]
    (List.map
       (fun (k, d) -> (Event.kind_name k, d))
       (Export.span_durations sink))

let test_chrome_json_shape () =
  let sink = Sink.create () in
  Sink.emit sink ~at_us:1.0 ~kind:Event.Lookup ~pid:0 ~vpn:0x42 ();
  Sink.emit sink ~at_us:2.0 ~kind:Event.Dma_fetch_start ~pid:0 ~count:2 ();
  Sink.emit sink ~at_us:5.0 ~kind:Event.Dma_fetch_end ~pid:0 ~count:2 ();
  let json = Format.asprintf "%a" Export.chrome_json sink in
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    let rec go i = i + nl <= hl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "object" true (String.length json > 2 && json.[0] = '{');
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "has %s" needle) true
        (contains needle))
    [
      "\"traceEvents\"";
      "\"otherData\"";
      (* One metadata record per (pid, component) lane. *)
      "thread_name";
      (* The lookup instant is thread-scoped. *)
      "\"ph\":\"i\"";
      (* The DMA fetch exports as a begin/end span pair. *)
      "\"ph\":\"B\"";
      "\"ph\":\"E\"";
      "\"lookup\"";
    ]

let test_timeline_limit_and_trailer () =
  let sink = Sink.create () in
  for i = 1 to 5 do
    Sink.emit sink ~at_us:(float_of_int i) ~kind:Event.Ni_hit ~pid:0 ()
  done;
  let text = Format.asprintf "%a" (Export.timeline ~limit:2) sink in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
  in
  (* 2 event lines plus the whole-run trailer. *)
  Alcotest.(check int) "line count" 3 (List.length lines);
  Alcotest.(check bool) "trailer totals" true
    (List.exists
       (fun l ->
         let nl = String.length "5 event(s)" in
         String.length l >= nl && String.sub l 0 nl = "5 event(s)")
       lines)

(* --- Scope ---------------------------------------------------------- *)

let test_scope_noop_paths () =
  (* A scope with neither sink nor metrics is a universal no-op. *)
  let scope = Scope.create () in
  Scope.tick scope ~pid:1 ~vpn:0 ~npages:1 ();
  Scope.emit scope Event.Ni_hit;
  Scope.finish scope;
  Alcotest.(check int) "kinds still counted" 1
    (Scope.kind_count scope Event.Ni_hit);
  Alcotest.(check bool) "no sink" true (Scope.sink scope = None)

let test_scope_clock_advances_by_cost () =
  let scope = Scope.create ~cost_of:Obs_cost.default () in
  let t_start = Scope.now_us scope in
  Scope.tick scope ~pid:0 ();
  let t0 = Scope.now_us scope in
  Scope.emit scope Event.Ni_hit;
  Alcotest.(check (float 1e-9)) "hit cost"
    (Cost_model.ni_hit_us Cost_model.default)
    (Scope.now_us scope -. t0);
  let t1 = Scope.now_us scope in
  Scope.emit scope ~count:4 Event.Fetch;
  Alcotest.(check (float 1e-9)) "fetch cost scales"
    (Cost_model.dma_us Cost_model.default ~entries:4)
    (Scope.now_us scope -. t1);
  Scope.finish scope;
  (* The tick's Lookup event is costed too, so the whole clock advance
     since creation equals the attributed total. *)
  Alcotest.(check (float 1e-9)) "total cost attributed"
    (Scope.now_us scope -. t_start)
    (Scope.total_cost scope);
  (* by_cost ranks the costlier DMA fetch first. *)
  match Scope.by_cost scope with
  | (k, _, _) :: _ -> Alcotest.(check string) "costliest" "fetch" (Event.kind_name k)
  | [] -> Alcotest.fail "by_cost empty"

(* --- Event <-> Report reconciliation -------------------------------- *)

let reconcile name mechanism =
  let spec = tiny "fft" 0.004 in
  let sink = Sink.create () in
  let registry = Metrics.create () in
  let obs =
    Scope.create ~sink ~metrics:registry ~cost_of:Obs_cost.default ()
  in
  let r = Sim_driver.run_workload ~seed ~obs mechanism spec in
  let check what expected kind =
    Alcotest.(check int)
      (Printf.sprintf "%s: %s" name what)
      expected (Sink.kind_count sink kind)
  in
  let check_total what expected kind =
    Alcotest.(check int)
      (Printf.sprintf "%s: %s" name what)
      expected (Sink.kind_total sink kind)
  in
  check "lookups" r.Report.lookups Event.Lookup;
  check "check misses" r.Report.check_misses Event.Check_miss;
  check "NI page misses" r.Report.ni_page_misses Event.Ni_miss;
  check "NI page hits"
    (r.Report.ni_page_accesses - r.Report.ni_page_misses)
    Event.Ni_hit;
  check "pin calls" r.Report.pin_calls Event.Pin;
  check_total "pages pinned" r.Report.pages_pinned Event.Pin;
  check "unpin calls" r.Report.unpin_calls Event.Unpin;
  check_total "pages unpinned" r.Report.pages_unpinned Event.Unpin;
  check "interrupts" r.Report.interrupts Event.Interrupt;
  check_total "entries fetched" r.Report.entries_fetched Event.Fetch;
  (* The metric registry mirrors the sink's drop-proof counters. *)
  (match Metrics.find registry "host/lookup" with
  | Some (Metrics.Counter c) ->
    Alcotest.(check int)
      (name ^ ": metric lookups")
      r.Report.lookups
      (Utlb_sim.Stats.Counter.value c)
  | _ -> Alcotest.fail "host/lookup missing");
  match Metrics.find registry "host/lookup_us" with
  | Some (Metrics.Histogram h) ->
    Alcotest.(check int)
      (name ^ ": one latency sample per lookup")
      r.Report.lookups
      (Utlb_sim.Stats.Histogram.count h)
  | _ -> Alcotest.fail "host/lookup_us missing"

let test_reconcile_hier () =
  reconcile "utlb"
    (Sim_driver.Utlb
       {
         Hier_engine.default_config with
         cache = { Ni_cache.entries = 1024; associativity = Ni_cache.Direct };
         prefetch = 4;
       })

let test_reconcile_intr () =
  reconcile "intr"
    (Sim_driver.Intr
       {
         Intr_engine.cache =
           { Ni_cache.entries = 1024; associativity = Ni_cache.Direct };
         memory_limit_pages = Some 64;
       })

let test_reconcile_pp () =
  reconcile "per-process"
    (Sim_driver.Per_process
       {
         Pp_engine.sram_budget_entries = 4096;
         processes = 5;
         policy = Replacement.Lru;
       })

(* --- Metrics snapshots ---------------------------------------------- *)

let feed registry values =
  let c = Metrics.counter registry "host/c" in
  let s = Metrics.summary registry "host/s" in
  let h = Metrics.histogram registry "host/h" ~bucket_width:2.0 ~buckets:8 in
  List.iter
    (fun v ->
      Utlb_sim.Stats.Counter.incr c;
      Utlb_sim.Stats.Summary.observe s v;
      Utlb_sim.Stats.Histogram.observe h v)
    values

let close_snapshots a b =
  Alcotest.(check int) "same size" (List.length a) (List.length b);
  List.iter2
    (fun (na, va) (nb, vb) ->
      Alcotest.(check string) "name" na nb;
      match (va, vb) with
      | Metrics.Snapshot.Counter x, Metrics.Snapshot.Counter y ->
        Alcotest.(check int) na x y
      | Metrics.Snapshot.Histogram h1, Metrics.Snapshot.Histogram h2 ->
        Alcotest.(check (array int)) na h1.counts h2.counts
      | Metrics.Snapshot.Summary s1, Metrics.Snapshot.Summary s2 ->
        Alcotest.(check int) (na ^ " count") s1.count s2.count;
        Alcotest.(check (float 1e-9)) (na ^ " total") s1.total s2.total;
        Alcotest.(check (float 1e-9)) (na ^ " mean") s1.mean s2.mean;
        Alcotest.(check (float 1e-6)) (na ^ " m2") s1.m2 s2.m2
      | _ -> Alcotest.fail (na ^ ": kind mismatch"))
    a b

let test_snapshot_diff_merge_roundtrip () =
  let registry = Metrics.create () in
  feed registry [ 1.0; 3.0; 4.5 ];
  let older = Metrics.snapshot registry in
  feed registry [ 7.0; 2.0 ];
  let newer = Metrics.snapshot registry in
  let delta = Metrics.Snapshot.diff ~older ~newer in
  (* What happened between the snapshots... *)
  (match List.assoc "host/c" delta with
  | Metrics.Snapshot.Counter n -> Alcotest.(check int) "delta count" 2 n
  | _ -> Alcotest.fail "host/c kind");
  (* ...recombines with the older snapshot into the newer one. *)
  close_snapshots newer (Metrics.Snapshot.merge [ older; delta ])

let test_merge_rejects_mismatch () =
  let r1 = Metrics.create () in
  let r2 = Metrics.create () in
  ignore (Metrics.counter r1 "x");
  ignore (Metrics.summary r2 "x");
  match Metrics.Snapshot.merge [ Metrics.snapshot r1; Metrics.snapshot r2 ] with
  | _ -> Alcotest.fail "kind mismatch must be rejected"
  | exception Invalid_argument _ -> ()

let test_collisions_and_lint () =
  let registry = Metrics.create () in
  ignore (Metrics.counter registry "ni/x");
  ignore (Metrics.histogram registry "ni/x" ~bucket_width:1.0 ~buckets:4);
  ignore (Metrics.counter registry "unnamespaced");
  Alcotest.(check int) "one collision" 1
    (List.length (Metrics.collisions registry));
  let codes =
    List.map
      (fun (f : Utlb_check.Finding.t) -> f.Utlb_check.Finding.code)
      (Utlb_check.Config_lint.lint_metrics registry)
  in
  Alcotest.(check (list string)) "lint codes" [ "UC160"; "UC161" ] codes

let test_csv_json_exports () =
  let registry = Metrics.create () in
  feed registry [ 1.0; 5.0 ];
  let snap = Metrics.snapshot registry in
  let csv = Format.asprintf "%a" Metrics.Snapshot.to_csv snap in
  (match String.split_on_char '\n' csv with
  | header :: _ ->
    Alcotest.(check string) "csv header"
      "name,kind,count,total,mean,min,max,p50,p90,p99" header
  | [] -> Alcotest.fail "empty csv");
  let json = Format.asprintf "%a" Metrics.Snapshot.to_json snap in
  Alcotest.(check bool) "json object" true
    (String.length json > 0 && json.[0] = '{')

(* --- Campaign integration ------------------------------------------- *)

let obs_grid =
  {
    Grid.name = "obs-test";
    seed;
    workloads = [ tiny "fft" 0.004; tiny "lu" 0.004 ];
    mechanisms =
      [
        Grid.mech ~params:[ ("entries", "1024") ] "utlb";
        Grid.mech ~params:[ ("entries", "1024") ] "intr";
      ];
    tenants = None;
  }

let test_campaign_metrics_domain_independent () =
  let serial = Runner.run ~domains:1 ~observe:true obs_grid in
  let parallel = Runner.run ~domains:2 ~observe:true obs_grid in
  let render outcomes =
    match Runner.merged_metrics outcomes with
    | None -> Alcotest.fail "no metrics collected"
    | Some snap -> Format.asprintf "%a" Metrics.Snapshot.to_csv snap
  in
  (* Byte-identical merged metrics whatever the domain count. *)
  Alcotest.(check string) "merged csv" (render serial) (render parallel);
  (* Without ~observe the outcomes carry no snapshots. *)
  let off = Runner.run ~domains:1 obs_grid in
  Alcotest.(check bool) "observe off" true (Runner.merged_metrics off = None)

(* --- SVM / NIC engine-time integration ------------------------------ *)

let test_svm_emits_engine_time_events () =
  let cluster = Utlb_vmmc.Cluster.create () in
  let sink = Sink.create () in
  let obs = Scope.create ~sink () in
  let svm = Utlb_svm.Svm.create ~obs cluster ~pages:8 in
  let h0 = Utlb_svm.Svm.handle svm ~node:0 in
  ignore (Utlb_svm.Svm.read h0 ~page:1 ~off:0 ~len:8);
  Utlb_svm.Svm.write h0 ~page:1 ~off:0 (Bytes.of_string "dirty");
  Utlb_svm.Svm.release h0;
  Alcotest.(check int) "faults traced" (Utlb_svm.Svm.faults svm)
    (Sink.kind_count sink Event.Fault);
  Alcotest.(check int) "diffs traced"
    (Utlb_svm.Svm.diffs_sent svm)
    (Sink.kind_count sink Event.Diff);
  Alcotest.(check int) "diff bytes traced"
    (Utlb_svm.Svm.diff_bytes svm)
    (Sink.kind_total sink Event.Diff);
  Alcotest.(check bool) "bus spans" true
    (Sink.kind_count sink Event.Bus_start > 0);
  Alcotest.(check int) "bus spans balance"
    (Sink.kind_count sink Event.Bus_start)
    (Sink.kind_count sink Event.Bus_end);
  Alcotest.(check bool) "dispatches observed" true
    (Sink.kind_count sink Event.Dispatch > 0);
  (* Engine-time events are monotone within the retained ring once
     sorted by timestamp — and every event carries a finite time. *)
  Sink.iter sink (fun e ->
      Alcotest.(check bool) "finite timestamp" true
        (Float.is_finite e.Event.at_us))

let suite =
  [
    Alcotest.test_case "ring drops keep counts" `Quick
      test_ring_drops_keep_counts;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "span durations" `Quick test_span_durations;
    Alcotest.test_case "chrome json shape" `Quick test_chrome_json_shape;
    Alcotest.test_case "timeline limit" `Quick test_timeline_limit_and_trailer;
    Alcotest.test_case "scope no-op paths" `Quick test_scope_noop_paths;
    Alcotest.test_case "scope clock" `Quick test_scope_clock_advances_by_cost;
    Alcotest.test_case "reconcile hier" `Quick test_reconcile_hier;
    Alcotest.test_case "reconcile intr" `Quick test_reconcile_intr;
    Alcotest.test_case "reconcile per-process" `Quick test_reconcile_pp;
    Alcotest.test_case "snapshot diff/merge roundtrip" `Quick
      test_snapshot_diff_merge_roundtrip;
    Alcotest.test_case "merge rejects mismatch" `Quick
      test_merge_rejects_mismatch;
    Alcotest.test_case "collisions and lint" `Quick test_collisions_and_lint;
    Alcotest.test_case "csv/json exports" `Quick test_csv_json_exports;
    Alcotest.test_case "campaign metrics domain-independent" `Quick
      test_campaign_metrics_domain_independent;
    Alcotest.test_case "svm engine-time events" `Quick
      test_svm_emits_engine_time_events;
  ]
