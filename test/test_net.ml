(* Tests for the network substrate: packets, links, switch, fabric,
   demux, and the go-back-N reliable channel. *)

open Utlb_net
module Time = Utlb_sim.Time
module Engine = Utlb_sim.Engine
module Rng = Utlb_sim.Rng

let mk_packet ?(payload = Bytes.of_string "abc") ?(route = [ 1 ]) () =
  Packet.make ~src:0 ~dst:1 ~chan:0 ~seq:0 ~kind:Packet.Data ~route ~payload

let test_crc () =
  let p = mk_packet () in
  Alcotest.(check bool) "intact" true (Packet.intact p);
  let c = Packet.corrupt p in
  Alcotest.(check bool) "corrupt detected" false (Packet.intact c);
  (* CRC of the standard test vector. *)
  Alcotest.(check int32) "crc32 of '123456789'" 0xCBF43926l
    (Packet.crc32 (Bytes.of_string "123456789"))

let test_corrupt_empty_payload () =
  let p = mk_packet ~payload:Bytes.empty () in
  Alcotest.(check bool) "empty corruptible" false
    (Packet.intact (Packet.corrupt p))

let test_wire_size () =
  let p = mk_packet ~payload:(Bytes.create 100) () in
  Alcotest.(check int) "header + payload" (Packet.header_bytes + 100)
    (Packet.wire_size p)

let test_link_delivery () =
  let e = Engine.create () in
  let got = ref None in
  let link =
    Link.create ~bandwidth_mb_per_s:160.0 ~latency_us:0.5
      ~sink:(fun p -> got := Some (Time.to_us (Engine.now e), p))
      e
  in
  let p = mk_packet ~payload:(Bytes.create 1584) () in
  (* 1584 + 16 header = 1600 B at 160 B/us = 10 us + 0.5 latency. *)
  Link.transmit link p;
  Engine.run e;
  (match !got with
  | Some (t, _) -> Alcotest.(check (float 1e-6)) "arrival time" 10.5 t
  | None -> Alcotest.fail "not delivered");
  Alcotest.(check int) "delivered count" 1 (Link.delivered link)

let test_link_serialisation_order () =
  let e = Engine.create () in
  let arrivals = ref [] in
  let link =
    Link.create
      ~sink:(fun p -> arrivals := p.Packet.seq :: !arrivals)
      e
  in
  for seq = 0 to 4 do
    Link.transmit link
      (Packet.make ~src:0 ~dst:1 ~chan:0 ~seq ~kind:Packet.Data ~route:[]
         ~payload:(Bytes.create 64))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "FIFO" [ 0; 1; 2; 3; 4 ] (List.rev !arrivals)

let test_link_faults () =
  let e = Engine.create () in
  let delivered = ref 0 in
  let rng = Rng.create ~seed:5L in
  let link =
    Link.create
      ~faults:{ Link.no_faults with drop_probability = 0.5 }
      ~rng
      ~sink:(fun _ -> incr delivered)
      e
  in
  for _ = 1 to 200 do
    Link.transmit link (mk_packet ())
  done;
  Engine.run e;
  Alcotest.(check int) "conservation" 200 (!delivered + Link.dropped link);
  Alcotest.(check bool) "some dropped" true (Link.dropped link > 50);
  Alcotest.(check bool) "some survived" true (!delivered > 50)

let test_link_fault_needs_rng () =
  let e = Engine.create () in
  Alcotest.check_raises "needs rng"
    (Invalid_argument "Link.create: fault model requires an rng") (fun () ->
      ignore
        (Link.create
           ~faults:{ Link.no_faults with drop_probability = 0.1 }
           ~sink:ignore e))

let test_switch_routes () =
  let e = Engine.create () in
  let sw = Switch.create ~ports:4 e in
  let arrived = Array.make 4 0 in
  for port = 0 to 3 do
    Switch.connect sw ~port
      (Link.create ~sink:(fun _ -> arrived.(port) <- arrived.(port) + 1) e)
  done;
  Switch.ingress sw (mk_packet ~route:[ 2 ] ());
  Switch.ingress sw (mk_packet ~route:[ 0 ] ());
  Engine.run e;
  Alcotest.(check (array int)) "routed" [| 1; 0; 1; 0 |] arrived;
  Alcotest.(check int) "forwarded" 2 (Switch.forwarded sw)

let test_switch_routing_errors () =
  let e = Engine.create () in
  let sw = Switch.create ~ports:2 e in
  Switch.ingress sw (mk_packet ~route:[] ());
  Switch.ingress sw (mk_packet ~route:[ 9 ] ());
  Switch.ingress sw (mk_packet ~route:[ 1 ] ());
  (* port 1 not connected *)
  Engine.run e;
  Alcotest.(check int) "errors" 3 (Switch.routing_errors sw)

let test_fabric_end_to_end () =
  let e = Engine.create () in
  let fabric = Fabric.create ~nodes:4 e in
  let got = ref [] in
  Fabric.attach fabric ~node:2 (fun p ->
      got := Bytes.to_string p.Packet.payload :: !got);
  Fabric.send fabric ~src:0 ~dst:2 ~chan:5 ~seq:0 ~kind:Packet.Data
    ~payload:(Bytes.of_string "over the fabric");
  Engine.run e;
  Alcotest.(check (list string)) "delivered" [ "over the fabric" ] !got;
  Alcotest.(check int) "fabric count" 1 (Fabric.delivered fabric)

let test_fabric_rejects_loopback () =
  let e = Engine.create () in
  let fabric = Fabric.create ~nodes:2 e in
  Alcotest.check_raises "loopback"
    (Invalid_argument "Fabric.send: src = dst (loopback not modelled)")
    (fun () ->
      Fabric.send fabric ~src:0 ~dst:0 ~chan:0 ~seq:0 ~kind:Packet.Data
        ~payload:Bytes.empty)

let test_demux () =
  let e = Engine.create () in
  let fabric = Fabric.create ~nodes:2 e in
  let demux = Demux.create fabric in
  let a = ref 0 and b = ref 0 in
  Demux.register demux ~node:1 ~chan:10 (fun _ -> incr a);
  Demux.register demux ~node:1 ~chan:11 (fun _ -> incr b);
  Fabric.send fabric ~src:0 ~dst:1 ~chan:10 ~seq:0 ~kind:Packet.Data
    ~payload:Bytes.empty;
  Fabric.send fabric ~src:0 ~dst:1 ~chan:11 ~seq:0 ~kind:Packet.Data
    ~payload:Bytes.empty;
  Fabric.send fabric ~src:0 ~dst:1 ~chan:99 ~seq:0 ~kind:Packet.Data
    ~payload:Bytes.empty;
  Engine.run e;
  Alcotest.(check int) "chan 10" 1 !a;
  Alcotest.(check int) "chan 11" 1 !b;
  Alcotest.(check int) "unrouted" 1 (Demux.unrouted demux)

let make_channel ?faults ?(window = 4) () =
  let e = Engine.create () in
  let fabric =
    match faults with
    | None -> Fabric.create ~nodes:2 e
    | Some f -> Fabric.create ~faults:f ~rng:(Rng.create ~seed:77L) ~nodes:2 e
  in
  let demux = Demux.create fabric in
  let ch = Channel.create ~window ~demux ~src:0 ~dst:1 () in
  (e, ch)

let test_channel_in_order () =
  let e, ch = make_channel () in
  let got = ref [] in
  Channel.set_receiver ch (fun b -> got := Bytes.to_string b :: !got);
  List.iter
    (fun s -> Channel.send ch (Bytes.of_string s))
    [ "one"; "two"; "three"; "four"; "five"; "six" ];
  Engine.run e;
  Alcotest.(check (list string)) "in order"
    [ "one"; "two"; "three"; "four"; "five"; "six" ]
    (List.rev !got);
  Alcotest.(check int) "no retransmissions" 0 (Channel.retransmissions ch);
  Alcotest.(check int) "in flight drained" 0 (Channel.in_flight ch)

let test_channel_window_backlog () =
  (* More sends than the window: the backlog must drain correctly. *)
  let e, ch = make_channel ~window:2 () in
  let got = ref 0 in
  Channel.set_receiver ch (fun _ -> incr got);
  for _ = 1 to 50 do
    Channel.send ch (Bytes.of_string "x")
  done;
  Engine.run e;
  Alcotest.(check int) "all delivered" 50 !got

let test_channel_on_delivered () =
  let e, ch = make_channel () in
  Channel.set_receiver ch ignore;
  let acked = ref [] in
  Channel.send ch ~on_delivered:(fun () -> acked := 1 :: !acked)
    (Bytes.of_string "a");
  Channel.send ch ~on_delivered:(fun () -> acked := 2 :: !acked)
    (Bytes.of_string "b");
  Engine.run e;
  Alcotest.(check (list int)) "acks in order" [ 1; 2 ] (List.rev !acked)

let test_channel_lossy_exactly_once () =
  let faults = { Link.no_faults with drop_probability = 0.2; corrupt_probability = 0.05 } in
  let e, ch = make_channel ~faults ~window:8 () in
  let got = ref [] in
  Channel.set_receiver ch (fun b -> got := Bytes.to_string b :: !got);
  let n = 100 in
  for i = 1 to n do
    Channel.send ch (Bytes.of_string (string_of_int i))
  done;
  Engine.run e;
  Alcotest.(check int) "exactly once" n (List.length !got);
  Alcotest.(check (list string)) "in order"
    (List.init n (fun i -> string_of_int (i + 1)))
    (List.rev !got);
  Alcotest.(check bool) "needed retransmissions" true
    (Channel.retransmissions ch > 0);
  Alcotest.(check bool) "did not fail" false (Channel.failed ch)

let test_channel_payload_isolation () =
  (* The channel must not alias the caller's buffer. *)
  let e, ch = make_channel () in
  let got = ref Bytes.empty in
  Channel.set_receiver ch (fun b -> got := b);
  let buf = Bytes.of_string "original" in
  Channel.send ch buf;
  Bytes.fill buf 0 (Bytes.length buf) 'X';
  Engine.run e;
  Alcotest.(check string) "unaffected by caller mutation" "original"
    (Bytes.to_string !got)


(* Chain-topology tests. *)

let test_chain_route_computation () =
  let e = Engine.create () in
  let f = Fabric.create_chain ~switches:3 ~hosts_per_switch:2 e in
  Alcotest.(check int) "nodes" 6 (Fabric.nodes f);
  Alcotest.(check int) "switches" 3 (Fabric.switch_count f);
  (* Same switch: direct exit port. *)
  Alcotest.(check (list int)) "local" [ 1 ] (Fabric.route f ~src:0 ~dst:1);
  (* Two switches to the right: right, right, exit port 0. *)
  Alcotest.(check (list int)) "rightward" [ 2; 2; 0 ]
    (Fabric.route f ~src:0 ~dst:4);
  (* Leftward: left, exit port 1. *)
  Alcotest.(check (list int)) "leftward" [ 3; 1 ]
    (Fabric.route f ~src:4 ~dst:3)

let test_chain_delivery () =
  let e = Engine.create () in
  let f = Fabric.create_chain ~switches:4 ~hosts_per_switch:2 e in
  let received = Array.make 8 0 in
  for node = 0 to 7 do
    Fabric.attach f ~node (fun _ -> received.(node) <- received.(node) + 1)
  done;
  (* All-to-all. *)
  for src = 0 to 7 do
    for dst = 0 to 7 do
      if src <> dst then
        Fabric.send f ~src ~dst ~chan:0 ~seq:0 ~kind:Packet.Data
          ~payload:Bytes.empty
    done
  done;
  Engine.run e;
  Array.iteri
    (fun node count ->
      Alcotest.(check int) (Printf.sprintf "node %d" node) 7 count)
    received;
  Alcotest.(check int) "no routing errors" 0
    (Array.fold_left
       (fun acc sw -> acc + Switch.routing_errors sw)
       0 (Fabric.switches f))

let test_chain_latency_grows_with_hops () =
  let e = Engine.create () in
  let f = Fabric.create_chain ~switches:4 ~hosts_per_switch:1 e in
  let arrival = Array.make 4 0.0 in
  for node = 1 to 3 do
    Fabric.attach f ~node (fun _ ->
        arrival.(node) <- Utlb_sim.Time.to_us (Engine.now e))
  done;
  for dst = 1 to 3 do
    Fabric.send f ~src:0 ~dst ~chan:0 ~seq:0 ~kind:Packet.Data
      ~payload:Bytes.empty
  done;
  Engine.run e;
  Alcotest.(check bool) "2 hops > 1 hop" true (arrival.(2) > arrival.(1));
  Alcotest.(check bool) "3 hops > 2 hops" true (arrival.(3) > arrival.(2))

let test_chain_channel_reliability () =
  (* Reliable channels work unchanged over the multi-hop fabric, even
     lossy. *)
  let e = Engine.create () in
  let f =
    Fabric.create_chain
      ~faults:{ Link.no_faults with drop_probability = 0.08; corrupt_probability = 0.02 }
      ~rng:(Rng.create ~seed:9L) ~switches:3 ~hosts_per_switch:2 e
  in
  let demux = Demux.create f in
  let ch = Channel.create ~window:8 ~demux ~src:0 ~dst:5 () in
  let got = ref [] in
  Channel.set_receiver ch (fun b -> got := Bytes.to_string b :: !got);
  for i = 1 to 40 do
    Channel.send ch (Bytes.of_string (string_of_int i))
  done;
  Engine.run e;
  Alcotest.(check (list string)) "in order across 3 switches"
    (List.init 40 (fun i -> string_of_int (i + 1)))
    (List.rev !got)

let chain_suite =
  [
    Alcotest.test_case "chain route computation" `Quick test_chain_route_computation;
    Alcotest.test_case "chain all-to-all delivery" `Quick test_chain_delivery;
    Alcotest.test_case "chain latency grows with hops" `Quick
      test_chain_latency_grows_with_hops;
    Alcotest.test_case "chain lossy channel" `Quick test_chain_channel_reliability;
  ]

let suite =
  [
    Alcotest.test_case "packet crc" `Quick test_crc;
    Alcotest.test_case "corrupt empty payload" `Quick test_corrupt_empty_payload;
    Alcotest.test_case "wire size" `Quick test_wire_size;
    Alcotest.test_case "link delivery timing" `Quick test_link_delivery;
    Alcotest.test_case "link serialisation order" `Quick test_link_serialisation_order;
    Alcotest.test_case "link fault injection" `Quick test_link_faults;
    Alcotest.test_case "link faults need rng" `Quick test_link_fault_needs_rng;
    Alcotest.test_case "switch routing" `Quick test_switch_routes;
    Alcotest.test_case "switch routing errors" `Quick test_switch_routing_errors;
    Alcotest.test_case "fabric end to end" `Quick test_fabric_end_to_end;
    Alcotest.test_case "fabric rejects loopback" `Quick test_fabric_rejects_loopback;
    Alcotest.test_case "demux dispatch" `Quick test_demux;
    Alcotest.test_case "channel in-order" `Quick test_channel_in_order;
    Alcotest.test_case "channel window backlog" `Quick test_channel_window_backlog;
    Alcotest.test_case "channel on_delivered" `Quick test_channel_on_delivered;
    Alcotest.test_case "channel lossy exactly-once" `Quick test_channel_lossy_exactly_once;
    Alcotest.test_case "channel payload isolation" `Quick test_channel_payload_isolation;
  ]
  @ chain_suite
