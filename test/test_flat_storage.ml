(* Differential tests for the flat-storage hot path.

   Each flat structure (Bitvec, Flat_map, Translation_table, Ni_cache)
   is driven through a seeded random operation stream in lockstep with
   a deliberately naive reference implementation (Hashtbl / assoc
   lists), comparing every observable result. A final set of checks
   replays the paper workloads through all three engines with and
   without an observability scope attached and demands structurally
   identical reports — the probes must not perturb the model. *)

module Bitvec = Utlb.Bitvec
module Flat_map = Utlb.Flat_map
module Tt = Utlb.Translation_table
module Ni = Utlb.Ni_cache
module Driver = Utlb.Sim_driver
module Report = Utlb.Report
module Workloads = Utlb_trace.Workloads
module Scope = Utlb_obs.Scope
module Trace_sink = Utlb_obs.Trace_sink
module Metrics = Utlb_obs.Metrics
module Rng = Utlb_sim.Rng
module Pid = Utlb_mem.Pid

let seed = 0x5eedL

(* ------------------------------------------------------------------ *)
(* Bitvec vs a Hashtbl of set positions.                              *)
(* ------------------------------------------------------------------ *)

let bitvec_range = 2_048

let model_runs model ~vpn ~count =
  (* Maximal runs of clear pages in [vpn, vpn+count), ascending. *)
  let runs = ref [] in
  let start = ref (-1) in
  for p = vpn to vpn + count - 1 do
    if Hashtbl.mem model p then begin
      if !start >= 0 then runs := (!start, p - !start) :: !runs;
      start := -1
    end
    else if !start < 0 then start := p
  done;
  if !start >= 0 then runs := (!start, vpn + count - !start) :: !runs;
  List.rev !runs

let bitvec_differential () =
  let rng = Rng.create ~seed in
  let bv = Bitvec.create () in
  let model = Hashtbl.create 256 in
  for step = 1 to 20_000 do
    let vpn = Rng.int rng bitvec_range in
    let count = 1 + Rng.int rng 80 in
    let count = min count (bitvec_range - vpn) in
    (match Rng.int rng 8 with
    | 0 | 1 ->
      Bitvec.set bv vpn;
      Hashtbl.replace model vpn ()
    | 2 ->
      Bitvec.clear bv vpn;
      Hashtbl.remove model vpn
    | 3 ->
      Alcotest.(check bool)
        (Printf.sprintf "test@%d" step)
        (Hashtbl.mem model vpn) (Bitvec.test bv vpn)
    | 4 ->
      let expect = model_runs model ~vpn ~count = [] in
      Alcotest.(check bool)
        (Printf.sprintf "all_set@%d" step)
        expect
        (Bitvec.all_set bv ~vpn ~count)
    | 5 ->
      let expect =
        match model_runs model ~vpn ~count with
        | [] -> None
        | (first, _) :: _ -> Some first
      in
      Alcotest.(check (option int))
        (Printf.sprintf "first_clear@%d" step)
        expect
        (Bitvec.first_clear bv ~vpn ~count)
    | 6 ->
      let expect =
        List.concat_map
          (fun (start, len) -> List.init len (fun i -> start + i))
          (model_runs model ~vpn ~count)
      in
      Alcotest.(check (list int))
        (Printf.sprintf "clear_pages@%d" step)
        expect
        (Bitvec.clear_pages bv ~vpn ~count);
      Alcotest.(check int)
        (Printf.sprintf "clear_count@%d" step)
        (List.length expect)
        (Bitvec.clear_count bv ~vpn ~count)
    | _ ->
      let got = ref [] in
      Bitvec.iter_clear_runs bv ~vpn ~count (fun ~vpn ~count ->
          got := (vpn, count) :: !got);
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "iter_clear_runs@%d" step)
        (model_runs model ~vpn ~count)
        (List.rev !got));
    if step mod 1_000 = 0 then
      Alcotest.(check int)
        (Printf.sprintf "population@%d" step)
        (Hashtbl.length model) (Bitvec.population bv)
  done;
  Alcotest.(check int) "final population" (Hashtbl.length model)
    (Bitvec.population bv);
  Alcotest.(check int) "population = recount" (Bitvec.recount bv)
    (Bitvec.population bv)

(* The pin path sets bits inside a run while iterating; the contract
   says delivered runs are not re-examined. *)
let bitvec_iter_sets_inside_run () =
  let bv = Bitvec.create () in
  Bitvec.set bv 10;
  Bitvec.set bv 200;
  let runs = ref [] in
  Bitvec.iter_clear_runs bv ~vpn:0 ~count:300 (fun ~vpn ~count ->
      runs := (vpn, count) :: !runs;
      for p = vpn to vpn + count - 1 do
        Bitvec.set bv p
      done);
  Alcotest.(check (list (pair int int)))
    "runs delivered once" [ (0, 10); (11, 189); (201, 99) ] (List.rev !runs);
  Alcotest.(check bool) "range now pinned" true
    (Bitvec.all_set bv ~vpn:0 ~count:300)

(* ------------------------------------------------------------------ *)
(* Flat_map vs a Hashtbl, with heavy overwrite/tombstone churn.       *)
(* ------------------------------------------------------------------ *)

let flat_map_differential () =
  let rng = Rng.create ~seed in
  let map = Flat_map.create () in
  let model = Hashtbl.create 64 in
  for step = 1 to 20_000 do
    let key = Rng.int rng 200 in
    (match Rng.int rng 5 with
    | 0 | 1 ->
      let v0 = Rng.int rng 1_000 and v1 = Rng.int rng 1_000 in
      let slot = Flat_map.add map key ~v0 ~v1 in
      Hashtbl.replace model key (v0, v1);
      Alcotest.(check int)
        (Printf.sprintf "add key_at@%d" step)
        key
        (Flat_map.key_at map slot)
    | 2 ->
      Flat_map.remove map key;
      Hashtbl.remove model key
    | 3 ->
      let slot = Flat_map.find map key in
      let got =
        if slot < 0 then None
        else Some (Flat_map.value0 map slot, Flat_map.value1 map slot)
      in
      Alcotest.(check (option (pair int int)))
        (Printf.sprintf "find@%d" step)
        (Hashtbl.find_opt model key)
        got
    | _ ->
      Alcotest.(check bool)
        (Printf.sprintf "mem@%d" step)
        (Hashtbl.mem model key) (Flat_map.mem map key));
    if step mod 1_000 = 0 then
      Alcotest.(check int)
        (Printf.sprintf "length@%d" step)
        (Hashtbl.length model) (Flat_map.length map)
  done;
  let seen = ref [] in
  Flat_map.iter map (fun key ~v0 ~v1 -> seen := (key, (v0, v1)) :: !seen);
  let expect =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []
    |> List.sort compare
  in
  Alcotest.(check (list (pair int (pair int int))))
    "iter matches model" expect
    (List.sort compare !seen)

(* ------------------------------------------------------------------ *)
(* Translation_table vs a Hashtbl plus explicit directory states.     *)
(* ------------------------------------------------------------------ *)

type dir_state = Empty | Resident | Swapped of int

let tt_differential () =
  let rng = Rng.create ~seed in
  let garbage = 0 in
  let table = Tt.create ~garbage_frame:garbage ~pid:(Pid.of_int 1) () in
  (* Pages-per-table is 1024 in the paper's two-level layout; keep the
     stream inside four directories so swaps collide with installs. *)
  let pages = 1 lsl 10 in
  let dirs = 4 in
  let dir_of vpn = vpn / pages in
  let entries : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let state = Array.make dirs Empty in
  let check_counters step =
    let resident = ref 0 and swapped = ref 0 in
    Array.iter
      (function
        | Resident -> incr resident
        | Swapped _ -> incr swapped
        | Empty -> ())
      state;
    Alcotest.(check int)
      (Printf.sprintf "valid_entries@%d" step)
      (Hashtbl.length entries) (Tt.valid_entries table);
    Alcotest.(check int)
      (Printf.sprintf "second_level_tables@%d" step)
      !resident
      (Tt.second_level_tables table);
    Alcotest.(check int)
      (Printf.sprintf "swapped_tables@%d" step)
      !swapped (Tt.swapped_tables table)
  in
  for step = 1 to 20_000 do
    let vpn = Rng.int rng (dirs * pages) in
    let dir = dir_of vpn in
    match Rng.int rng 10 with
    | 0 | 1 | 2 -> (
      let frame = 1 + Rng.int rng 999 in
      match state.(dir) with
      | Swapped _ ->
        Alcotest.check_raises
          (Printf.sprintf "install on swapped raises@%d" step)
          (Invalid_argument "Translation_table.install: table is swapped out")
          (fun () -> Tt.install table ~vpn ~frame)
      | Empty | Resident ->
        Tt.install table ~vpn ~frame;
        Hashtbl.replace entries vpn frame;
        state.(dir) <- Resident)
    | 3 -> (
      match state.(dir) with
      | Swapped _ ->
        Alcotest.check_raises
          (Printf.sprintf "invalidate on swapped raises@%d" step)
          (Invalid_argument
             "Translation_table.invalidate: table is swapped out")
          (fun () -> Tt.invalidate table ~vpn)
      | Empty | Resident ->
        Tt.invalidate table ~vpn;
        Hashtbl.remove entries vpn)
    | 4 | 5 | 6 -> (
      let got = Tt.lookup table ~vpn in
      match state.(dir) with
      | Swapped block ->
        Alcotest.(check bool)
          (Printf.sprintf "lookup swapped@%d" step)
          true
          (got = Tt.Table_swapped block)
      | Empty | Resident ->
        let expect =
          match Hashtbl.find_opt entries vpn with
          | Some frame -> Tt.Frame frame
          | None -> Tt.Garbage
        in
        Alcotest.(check bool)
          (Printf.sprintf "lookup@%d" step)
          true (got = expect))
    | 7 ->
      let block = Rng.int rng 10_000 in
      let expect = state.(dir) = Resident in
      Alcotest.(check bool)
        (Printf.sprintf "swap_out@%d" step)
        expect
        (Tt.swap_out table ~dir_index:dir ~disk_block:block);
      if expect then state.(dir) <- Swapped block
    | 8 ->
      let expect =
        match state.(dir) with Swapped _ -> true | Empty | Resident -> false
      in
      Alcotest.(check bool)
        (Printf.sprintf "swap_in@%d" step)
        expect
        (Tt.swap_in table ~dir_index:dir);
      if expect then state.(dir) <- Resident
    | _ -> check_counters step
  done;
  check_counters 20_001;
  (* iter_valid only sees resident tables, ascending vpn. *)
  let expect =
    Hashtbl.fold
      (fun vpn frame acc ->
        if state.(dir_of vpn) = Resident then (vpn, frame) :: acc else acc)
      entries []
    |> List.sort compare
  in
  let seen = ref [] in
  Tt.iter_valid table (fun vpn frame -> seen := (vpn, frame) :: !seen);
  Alcotest.(check (list (pair int int)))
    "iter_valid resident ascending" expect (List.rev !seen)

(* ------------------------------------------------------------------ *)
(* Ni_cache vs a per-set recency list.                                *)
(*                                                                    *)
(* The flat cache picks victims by minimum stamp over a global tick    *)
(* counter; stamps are unique, so when a set is full the minimum       *)
(* stamp is exactly the least recently touched line. The reference    *)
(* keeps each set as a most-recent-first list capped at the way       *)
(* count, using the exported [static_set_index] for geometry.         *)
(* ------------------------------------------------------------------ *)

let ni_differential assoc () =
  let rng = Rng.create ~seed in
  let config = { Ni.entries = 64; associativity = assoc } in
  let cache = Ni.create config in
  let nsets =
    match Ni.sets_of_config config with
    | Some sets -> sets
    | None -> Alcotest.fail "invalid geometry"
  in
  let ways = Ni.ways assoc in
  let sets = Array.make nsets [] in
  let set_of ~pid ~vpn =
    match Ni.static_set_index config ~pid ~vpn with
    | Some s -> s
    | None -> Alcotest.fail "static_set_index"
  in
  let npids = 6 and nvpns = 4_096 in
  for step = 1 to 20_000 do
    let pid = Rng.int rng npids in
    let vpn = Rng.int rng nvpns in
    let s = set_of ~pid ~vpn in
    match Rng.int rng 10 with
    | 0 | 1 | 2 -> (
      let expect =
        match List.assoc_opt (pid, vpn) sets.(s) with
        | Some frame ->
          sets.(s) <-
            ((pid, vpn), frame) :: List.remove_assoc (pid, vpn) sets.(s);
          Some frame
        | None -> None
      in
      match Ni.lookup cache ~pid:(Pid.of_int pid) ~vpn with
      | got ->
        Alcotest.(check (option int))
          (Printf.sprintf "lookup@%d" step)
          expect got)
    | 3 | 4 | 5 ->
      let frame = Rng.int rng 10_000 in
      let expect_evicted =
        if List.mem_assoc (pid, vpn) sets.(s) then begin
          sets.(s) <-
            ((pid, vpn), frame) :: List.remove_assoc (pid, vpn) sets.(s);
          None
        end
        else if List.length sets.(s) < ways then begin
          sets.(s) <- ((pid, vpn), frame) :: sets.(s);
          None
        end
        else begin
          let rec split_last = function
            | [ victim ] -> ([], victim)
            | line :: rest ->
              let kept, victim = split_last rest in
              (line :: kept, victim)
            | [] -> assert false
          in
          let kept, ((vpid, vvpn), vframe) = split_last sets.(s) in
          sets.(s) <- ((pid, vpn), frame) :: kept;
          Some (vpid, vvpn, vframe)
        end
      in
      let got =
        Option.map
          (fun (p, v, f) -> (Pid.to_int p, v, f))
          (Ni.insert cache ~pid:(Pid.of_int pid) ~vpn ~frame)
      in
      Alcotest.(check (option (triple int int int)))
        (Printf.sprintf "insert@%d" step)
        expect_evicted got
    | 6 ->
      let expect = List.mem_assoc (pid, vpn) sets.(s) in
      sets.(s) <- List.remove_assoc (pid, vpn) sets.(s);
      Alcotest.(check bool)
        (Printf.sprintf "invalidate@%d" step)
        expect
        (Ni.invalidate cache ~pid:(Pid.of_int pid) ~vpn)
    | 7 ->
      Alcotest.(check (option int))
        (Printf.sprintf "peek@%d" step)
        (List.assoc_opt (pid, vpn) sets.(s))
        (Ni.peek cache ~pid:(Pid.of_int pid) ~vpn);
      Alcotest.(check bool)
        (Printf.sprintf "contains@%d" step)
        (List.mem_assoc (pid, vpn) sets.(s))
        (Ni.contains cache ~pid:(Pid.of_int pid) ~vpn)
    | 8 when Rng.int rng 50 = 0 ->
      let expect = ref 0 in
      Array.iteri
        (fun i lines ->
          let kept =
            List.filter (fun ((p, _), _) -> p <> pid) lines
          in
          expect := !expect + (List.length lines - List.length kept);
          sets.(i) <- kept)
        sets;
      Alcotest.(check int)
        (Printf.sprintf "invalidate_process@%d" step)
        !expect
        (Ni.invalidate_process cache ~pid:(Pid.of_int pid))
    | _ ->
      Alcotest.(check int)
        (Printf.sprintf "valid_lines@%d" step)
        (Array.fold_left (fun acc l -> acc + List.length l) 0 sets)
        (Ni.valid_lines cache)
  done;
  let expect =
    Array.to_list sets
    |> List.concat_map (List.map (fun ((p, v), f) -> (p, v, f)))
    |> List.sort compare
  in
  let seen = ref [] in
  Ni.iter_valid cache (fun ~pid ~vpn ~frame ->
      seen := (Pid.to_int pid, vpn, frame) :: !seen);
  Alcotest.(check (list (triple int int int)))
    "iter_valid matches model" expect
    (List.sort compare !seen)

(* ------------------------------------------------------------------ *)
(* Instrumented runs must not perturb the model: for every engine and *)
(* paper workload, a replay with a full scope attached (sink +        *)
(* metrics) yields a report structurally equal to the bare replay.    *)
(* ------------------------------------------------------------------ *)

let report_t = Alcotest.testable Report.pp (fun a b -> a = b)

let reports_unperturbed () =
  let engines = Driver.Registry.mechanisms () in
  List.iter
    (fun (spec : Workloads.spec) ->
      let trace = spec.Workloads.generate ~seed:Driver.default_seed in
      List.iter
        (fun (entry : Driver.Registry.entry) ->
          let packed () = entry.Driver.Registry.of_params [] in
          let bare =
            Driver.run_packed ~label:spec.Workloads.name (packed ()) trace
          in
          let sink = Trace_sink.create () in
          let metrics = Metrics.create () in
          let obs = Scope.create ~sink ~metrics () in
          let observed =
            Driver.run_packed ~label:spec.Workloads.name ~obs (packed ())
              trace
          in
          Alcotest.check report_t
            (Printf.sprintf "%s/%s report unchanged under obs"
               entry.Driver.Registry.name spec.Workloads.name)
            bare observed)
        engines)
    Workloads.all

let suite =
  [
    Alcotest.test_case "bitvec differential" `Quick bitvec_differential;
    Alcotest.test_case "bitvec iter sets inside run" `Quick
      bitvec_iter_sets_inside_run;
    Alcotest.test_case "flat_map differential" `Quick flat_map_differential;
    Alcotest.test_case "translation_table differential" `Quick
      tt_differential;
    Alcotest.test_case "ni_cache differential (direct)" `Quick
      (ni_differential Ni.Direct);
    Alcotest.test_case "ni_cache differential (direct_nohash)" `Quick
      (ni_differential Ni.Direct_nohash);
    Alcotest.test_case "ni_cache differential (two_way)" `Quick
      (ni_differential Ni.Two_way);
    Alcotest.test_case "ni_cache differential (four_way)" `Quick
      (ni_differential Ni.Four_way);
    Alcotest.test_case "reports unchanged under instrumentation" `Slow
      reports_unperturbed;
  ]
