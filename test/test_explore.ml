(* The utlbcheck explore pass: clean certificates and DPOR effectiveness
   for all five registered engines at the default scope, deterministic
   detection of each seeded protocol mutant (UP20-UP23), rediscovery of
   the UP01-05 corpus by exhaustive search with Protocol agreeing on
   every minimized counterexample, a seeded random-walk differential
   fuzz against the static verifier, and the UP2x catalogue entries. *)

module Explore = Utlb_check.Explore
module Stepper = Utlb.Stepper
module Protocol = Utlb_check.Protocol
module Catalogue = Utlb_check.Catalogue
module Config_file = Utlb_check.Config_file
module Finding = Utlb_check.Finding
module Record = Utlb_trace.Record

let codes fs =
  List.sort_uniq compare (List.map (fun (f : Finding.t) -> f.Finding.code) fs)

let engines =
  [
    ("utlb", Stepper.Hier { prepin = 1; limit_pages = None });
    ("intr", Stepper.Intr { entries = 8192; limit_pages = None });
    ("per-process", Stepper.Static { processes = 5; share = 1638 });
    ("victima", Stepper.Victima { prepin = 1; limit_pages = None });
    ("utopia", Stepper.Utopia { prepin = 1; limit_pages = None });
  ]

(* {2 Clean engines at the default scope} *)

let test_clean_engines () =
  List.iter
    (fun (name, sem) ->
      let r = Explore.explore ~label:name sem in
      Alcotest.(check (list string)) (name ^ " clean") [] (codes r.Explore.findings);
      Alcotest.(check string)
        (name ^ " exhaustive") "exhaustive"
        (Explore.truncation_label r.Explore.stats.Explore.truncation);
      let ratio = Explore.prune_ratio r.Explore.stats in
      Alcotest.(check bool)
        (Printf.sprintf "%s DPOR prunes >= 50%% (got %.1f%%)" name (100. *. ratio))
        true (ratio >= 0.5))
    engines

(* {2 Mutant detection} *)

(* Each seeded mutant must be caught deterministically with its designed
   code. Blocking-evict only bites when the cache is small enough to
   fill; early-unpin explodes the interleaving space, so it runs at the
   smallest scope that still exhibits the race. *)
let mutant_cases =
  [
    ( Stepper.Blocking_evict,
      "UP20",
      { Stepper.default_scope with Stepper.mutant = Some Stepper.Blocking_evict; sets = 2 } );
    ( Stepper.Leak_unpin,
      "UP21",
      { Stepper.default_scope with Stepper.mutant = Some Stepper.Leak_unpin } );
    ( Stepper.No_shootdown,
      "UP22",
      { Stepper.default_scope with Stepper.mutant = Some Stepper.No_shootdown } );
    ( Stepper.Early_unpin,
      "UP23",
      {
        Stepper.default_scope with
        Stepper.mutant = Some Stepper.Early_unpin;
        procs = 1;
        pages = 1;
        requests = 1;
      } );
  ]

let test_mutants () =
  List.iter
    (fun (m, expected, scope) ->
      let sem = Stepper.Intr { entries = 8192; limit_pages = None } in
      let r =
        Explore.explore
          ~config:{ Explore.default_config with Explore.scope }
          ~label:(Stepper.mutant_name m) sem
      in
      Alcotest.(check bool)
        (Stepper.mutant_name m ^ " finds " ^ expected)
        true
        (List.mem expected (codes r.Explore.findings));
      (* Every finding ships a counterexample with a non-empty schedule. *)
      Alcotest.(check int)
        (Stepper.mutant_name m ^ " one ce per finding")
        (List.length r.Explore.findings)
        (List.length r.Explore.counterexamples);
      List.iter
        (fun (ce : Explore.counterexample) ->
          Alcotest.(check bool) "schedule non-empty" true (ce.Explore.schedule <> []))
        r.Explore.counterexamples)
    mutant_cases

(* {2 Determinism} *)

let test_determinism () =
  let scope =
    { Stepper.default_scope with Stepper.mutant = Some Stepper.Leak_unpin }
  in
  let run () =
    Explore.explore
      ~config:{ Explore.default_config with Explore.scope }
      ~label:"det"
      (Stepper.Hier { prepin = 1; limit_pages = None })
  in
  let a = run () and b = run () in
  Alcotest.(check (list string)) "same findings" (codes a.Explore.findings)
    (codes b.Explore.findings);
  Alcotest.(check int) "same states" a.Explore.stats.Explore.states
    b.Explore.stats.Explore.states;
  Alcotest.(check int) "same transitions" a.Explore.stats.Explore.transitions
    b.Explore.stats.Explore.transitions;
  List.iter2
    (fun (x : Explore.counterexample) (y : Explore.counterexample) ->
      Alcotest.(check (list string)) "same schedule" x.Explore.schedule y.Explore.schedule;
      Alcotest.(check (list string)) "same records"
        (List.map Record.to_string x.Explore.records)
        (List.map Record.to_string y.Explore.records))
    a.Explore.counterexamples b.Explore.counterexamples

(* {2 Corpus rediscovery + counterexample agreement} *)

let load_records path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | s ->
            let t = String.trim s in
            if t = "" || t.[0] = '#' then go acc
            else (
              match Record.of_string t with
              | Ok r -> go (r :: acc)
              | Error e -> failwith e)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* dune runtest runs from the test directory; dune exec from the repo
   root. Resolve the corpus relative to whichever exists. *)
let corpus_dir =
  if Sys.file_exists "verify" then "verify" else Filename.concat "test" "verify"

let corpus_semantics conf =
  match conf with
  | Some c -> (
      match Config_file.parse_file (Filename.concat corpus_dir c) with
      | Ok (cfg, _) ->
          (Explore.semantics_of_config cfg, Protocol.of_config cfg)
      | Error e -> failwith e)
  | None ->
      (Stepper.Hier { prepin = 1; limit_pages = None }, List.hd Protocol.defaults)

let test_corpus_rediscovery () =
  List.iter
    (fun (name, conf, trace, expected) ->
      let records = load_records (Filename.concat corpus_dir trace) in
      let sem, psem = corpus_semantics conf in
      let scope =
        {
          Stepper.default_scope with
          Stepper.program = Some (Explore.program_of_records records);
          sets = 64;
        }
      in
      let r =
        Explore.explore
          ~config:{ Explore.default_config with Explore.scope }
          ~label:name sem
      in
      Alcotest.(check bool)
        (name ^ " rediscovers " ^ expected)
        true
        (List.mem expected (codes r.Explore.findings));
      Alcotest.(check string)
        (name ^ " exhaustive") "exhaustive"
        (Explore.truncation_label r.Explore.stats.Explore.truncation);
      (* The static verifier agrees on every minimized UP0x
         counterexample: re-checking its records flags the same code. *)
      List.iter
        (fun (ce : Explore.counterexample) ->
          let fs =
            Protocol.verify_records psem
              (List.mapi (fun i rec_ -> (i + 1, rec_)) ce.Explore.records)
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s ce %s re-verifies" name ce.Explore.code)
            true
            (List.mem ce.Explore.code (codes fs)))
        r.Explore.counterexamples)
    [
      ("up01", Some "up01.conf", "up01.trace", "UP01");
      ("up02", None, "up02.trace", "UP02");
      ("up03", Some "up03.conf", "up03.trace", "UP03");
      ("up04", Some "up04.conf", "up04.trace", "UP04");
      ("up05", Some "up05.conf", "up05.trace", "UP05");
    ]

(* {2 Differential fuzz: Stepper vs Protocol} *)

(* Seeded random traces explored in trace mode must admit exactly the
   UP0x codes the static verifier reports, and never a spurious UP2x:
   the honest engines' step semantics and the abstract interpreter are
   two independent encodings of the same protocol. *)
let test_fuzz_differential () =
  let rng = Random.State.make [| 0x5EED |] in
  for case = 1 to 40 do
    let nrec = 1 + Random.State.int rng 5 in
    let records =
      List.init nrec (fun i ->
          let pid = Random.State.int rng 3 in
          let vpn =
            if Random.State.int rng 8 = 0 then 0xffffe
            else Random.State.int rng 4
          in
          let npages =
            1
            +
            if Random.State.int rng 4 = 0 then Random.State.int rng 40
            else Random.State.int rng 3
          in
          Record.make ~time_us:(float_of_int i) ~pid:(Utlb_mem.Pid.of_int pid)
            ~vpn ~npages
            ~op:(if Random.State.int rng 2 = 0 then Record.Send else Record.Fetch))
    in
    let pairs =
      [
        ( Stepper.Hier { prepin = 4; limit_pages = Some 16 },
          Protocol.Hier
            { entries = 8192; prefetch = 1; prepin = 4; limit_pages = Some 16 } );
        ( Stepper.Intr { entries = 8; limit_pages = Some 16 },
          Protocol.Intr { entries = 8; limit_pages = Some 16 } );
        ( Stepper.Static { processes = 2; share = 8 },
          Protocol.Per_process { processes = 2; entries_per_process = 8 } );
        ( Stepper.Victima { prepin = 4; limit_pages = Some 16 },
          Protocol.Hier
            { entries = 8192; prefetch = 1; prepin = 4; limit_pages = Some 16 } );
        ( Stepper.Utopia { prepin = 4; limit_pages = Some 16 },
          Protocol.Hier
            { entries = 8192; prefetch = 1; prepin = 4; limit_pages = Some 16 } );
      ]
    in
    List.iter
      (fun (ssem, pmodel) ->
        let scope =
          {
            Stepper.default_scope with
            Stepper.program = Some (Explore.program_of_records records);
            sets = 256;
            page_cap = 2;
          }
        in
        let r =
          Explore.explore
            ~config:
              { Explore.default_config with Explore.scope; Explore.budget = 500_000 }
            ssem
        in
        let up0x, up2x =
          List.partition (fun c -> c < "UP20") (codes r.Explore.findings)
        in
        let pf =
          Protocol.verify_records
            { Protocol.model = pmodel; Protocol.label = "fuzz" }
            (List.mapi (fun i rec_ -> (i + 1, rec_)) records)
        in
        let tag =
          Printf.sprintf "case %d %s" case (Stepper.mechanism ssem)
        in
        Alcotest.(check (list string)) (tag ^ " UP0x agree") (codes pf) up0x;
        Alcotest.(check (list string)) (tag ^ " no spurious UP2x") [] up2x)
      pairs
  done

(* {2 Catalogue coverage} *)

let test_catalogue_up2x () =
  Alcotest.(check int) "four exploration codes" 4
    (List.length Catalogue.exploration);
  List.iter
    (fun code ->
      Alcotest.(check bool) (code ^ " catalogued") true (Catalogue.mem code);
      Alcotest.(check bool)
        (code ^ " described") true
        (Catalogue.describe code <> None))
    [ "UP20"; "UP21"; "UP22"; "UP23" ]

(* {2 Counterexample trace format} *)

let test_counterexample_lines () =
  let scope =
    {
      Stepper.default_scope with
      Stepper.mutant = Some Stepper.Early_unpin;
      procs = 1;
      pages = 1;
      requests = 1;
    }
  in
  let r =
    Explore.explore
      ~config:{ Explore.default_config with Explore.scope }
      ~label:"ce"
      (Stepper.Hier { prepin = 1; limit_pages = None })
  in
  Alcotest.(check bool) "found UP23" true
    (List.mem "UP23" (codes r.Explore.findings));
  List.iter
    (fun (ce : Explore.counterexample) ->
      let lines = Explore.counterexample_lines r ce in
      (* Every non-comment line is a loadable trace record; comments
         carry the schedule. *)
      let parsed =
        List.filter_map
          (fun l ->
            let t = String.trim l in
            if t = "" || t.[0] = '#' then None
            else
              match Record.of_string t with
              | Ok rec_ -> Some rec_
              | Error e -> failwith e)
          lines
      in
      Alcotest.(check int)
        ("ce " ^ ce.Explore.code ^ " records round-trip")
        (List.length ce.Explore.records)
        (List.length parsed);
      Alcotest.(check bool) "header present" true
        (List.exists (fun l -> String.length l > 0 && l.[0] = '#') lines))
    r.Explore.counterexamples

let suite =
  [
    Alcotest.test_case "clean engines at default scope" `Slow test_clean_engines;
    Alcotest.test_case "mutants caught with designed codes" `Slow test_mutants;
    Alcotest.test_case "exploration is deterministic" `Slow test_determinism;
    Alcotest.test_case "corpus rediscovered exhaustively" `Slow
      test_corpus_rediscovery;
    Alcotest.test_case "differential fuzz vs verifier" `Slow
      test_fuzz_differential;
    Alcotest.test_case "UP2x catalogued" `Quick test_catalogue_up2x;
    Alcotest.test_case "counterexamples are trace files" `Quick
      test_counterexample_lines;
  ]
