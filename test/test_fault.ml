(* The fault-injection plane: plan grammar, injector determinism, and
   the recovery paths it exercises end to end in all three translation
   engines. *)

module Plan = Utlb_fault.Plan
module Injector = Utlb_fault.Injector
module Workloads = Utlb_trace.Workloads
module Sim_driver = Utlb.Sim_driver

let heavy_plan_spec =
  "dma-fail=0.5,dma-retries=2,dma-backoff-us=1.0,cache-invalidate=0.2,\
   table-swap=0.1,irq-timeout=0.5,irq-retries=2"

let heavy_plan () =
  match Plan.of_string heavy_plan_spec with
  | Ok p -> p
  | Error e -> Alcotest.fail e

let test_plan_roundtrip () =
  let p = heavy_plan () in
  (match Plan.of_string (Plan.to_string p) with
  | Ok p' -> Alcotest.(check bool) "spec round-trips" true (p = p')
  | Error e -> Alcotest.fail e);
  Alcotest.(check string) "empty prints none" "none" (Plan.to_string Plan.empty);
  Alcotest.(check bool) "empty is empty" true (Plan.is_empty Plan.empty);
  Alcotest.(check bool) "heavy is not" false (Plan.is_empty p)

let test_plan_parse_errors () =
  (match Plan.parse "flux-capacitor=0.5" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown key accepted");
  (match Plan.parse "dma-fail=banana" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad value accepted");
  match Plan.parse "dma-fail" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing value accepted"

let test_plan_validate () =
  match Plan.parse "dma-fail=1.5,irq-timeout=0.2,irq-retries=-1" with
  | Error e -> Alcotest.fail e
  | Ok p ->
    let problems = Plan.validate p in
    let keys = List.map fst problems in
    Alcotest.(check (list string))
      "both range problems reported" [ "dma-fail"; "irq-retries" ] keys;
    (* The strict entry point refuses the same spec. *)
    (match Plan.of_string "dma-fail=1.5" with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "out-of-range probability accepted");
    Alcotest.(check (list (pair string string)))
      "well-formed plan validates clean" []
      (Plan.validate (heavy_plan ()))

(* An injector is a pure function of (seed, plan): the same seed must
   reproduce the same decision stream. *)
let test_injector_determinism () =
  let p = heavy_plan () in
  let drain inj =
    List.init 200 (fun _ ->
        ( Injector.dma_attempts inj,
          Injector.cache_invalidate inj,
          Injector.table_swap inj,
          Injector.irq_reissues inj ))
  in
  let a = drain (Injector.create ~seed:99L p) in
  let b = drain (Injector.create ~seed:99L p) in
  Alcotest.(check bool) "same seed, same decisions" true (a = b)

(* Probability-0 classes never fire; an empty plan answers every query
   with the clean outcome and injects nothing. *)
let test_empty_plan_is_inert () =
  let inj = Injector.create Plan.empty in
  for _ = 1 to 100 do
    Alcotest.(check (option int)) "dma clean" (Some 0)
      (Injector.dma_attempts inj);
    Alcotest.(check (float 0.0)) "no spike" 0.0 (Injector.dma_spike_us inj);
    Alcotest.(check (float 0.0)) "no stall" 0.0 (Injector.bus_stall_us inj);
    Alcotest.(check bool) "no drop" false (Injector.net_drop inj);
    Alcotest.(check bool) "no dup" false (Injector.net_dup inj);
    Alcotest.(check bool) "no invalidate" false (Injector.cache_invalidate inj);
    Alcotest.(check bool) "no swap" false (Injector.table_swap inj);
    Alcotest.(check int) "no reissue" 0 (Injector.irq_reissues inj)
  done;
  Alcotest.(check int) "nothing injected" 0 (Injector.injected inj)

let test_backoff_schedule () =
  match Plan.of_string "dma-fail=0.1,dma-retries=4,dma-backoff-us=2.0" with
  | Error e -> Alcotest.fail e
  | Ok p ->
    let inj = Injector.create p in
    Alcotest.(check (float 1e-9)) "no failures, no backoff" 0.0
      (Injector.backoff_us inj ~attempts:0);
    (* 2 * (2^3 - 1) = 14: exponential doubling per retry. *)
    Alcotest.(check (float 1e-9)) "three failures" 14.0
      (Injector.backoff_us inj ~attempts:3)

let test_irq_reissue_budget () =
  (match Plan.of_string "irq-timeout=1.0,irq-retries=3" with
  | Error e -> Alcotest.fail e
  | Ok p ->
    let inj = Injector.create p in
    for _ = 1 to 20 do
      (* Certain timeout: every issue burns the whole budget, then the
         interrupt is serviced unconditionally. *)
      Alcotest.(check int) "budget bounds reissues" 3
        (Injector.irq_reissues inj)
    done);
  match Plan.of_string "irq-timeout=1.0,irq-retries=0" with
  | Error e -> Alcotest.fail e
  | Ok p ->
    let inj = Injector.create p in
    Alcotest.(check int) "zero budget disables the class" 0
      (Injector.irq_reissues inj);
    Alcotest.(check int) "nothing injected" 0 (Injector.injected inj)

(* Each engine degrades gracefully under a heavy plan: the run
   completes and counts its recoveries instead of aborting. *)
let mechanisms =
  [
    ("utlb", Sim_driver.Utlb Utlb.Hier_engine.default_config);
    ("intr", Sim_driver.Intr Utlb.Intr_engine.default_config);
    ("per-process", Sim_driver.Per_process Utlb.Pp_engine.default_config);
  ]

let test_engines_recover () =
  let trace = Workloads.water.Workloads.generate ~seed:42L in
  List.iter
    (fun (name, mech) ->
      let inj = Injector.create ~seed:7L (heavy_plan ()) in
      let r = Sim_driver.run ~seed:42L ~faults:inj mech trace in
      Alcotest.(check bool)
        (name ^ " recovered from injected faults")
        true
        (r.Utlb.Report.fault_recoveries > 0);
      Alcotest.(check bool)
        (name ^ " injector saw faults")
        true
        (Injector.injected inj > 0))
    mechanisms

(* An injector over the empty plan consumes no randomness, so the run
   is indistinguishable from one with no injector at all — the property
   that keeps every golden output stable. *)
let test_empty_plan_changes_nothing () =
  let trace = Workloads.water.Workloads.generate ~seed:42L in
  List.iter
    (fun (name, mech) ->
      let bare = Sim_driver.run ~seed:42L mech trace in
      let inert =
        Sim_driver.run ~seed:42L ~faults:(Injector.create Plan.empty) mech
          trace
      in
      Alcotest.(check bool) (name ^ " byte-identical report") true
        (bare = inert))
    mechanisms

let test_faulted_run_is_deterministic () =
  let trace = Workloads.water.Workloads.generate ~seed:42L in
  let once () =
    Sim_driver.run ~seed:42L
      ~faults:(Injector.create ~seed:7L (heavy_plan ()))
      (List.assoc "utlb" mechanisms) trace
  in
  Alcotest.(check bool) "same seeds, same report" true (once () = once ())

(* The lenient trace loader: malformed records are skipped with their
   line numbers, good records survive. *)
let test_lenient_trace_load () =
  let file = Filename.temp_file "utlb_fault_test" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Out_channel.with_open_text file (fun oc ->
          output_string oc
            "# header comment\n\
             1.000 0 16 1 S\n\
             not a record\n\
             2.000 0 17 2 X\n\
             3.000 1 18 1 F\n");
      let skipped_lines = ref [] in
      let trace, skipped =
        In_channel.with_open_text file
          (Utlb_trace.Trace.load_lenient ~on_skip:(fun ~line msg ->
               skipped_lines := (line, msg) :: !skipped_lines))
      in
      Alcotest.(check int) "two records survive" 2
        (Utlb_trace.Trace.length trace);
      Alcotest.(check int) "two skipped" 2 skipped;
      Alcotest.(check (list int)) "skip line numbers" [ 3; 4 ]
        (List.rev_map fst !skipped_lines);
      (* The strict loader refuses the same file, naming the line. *)
      match In_channel.with_open_text file Utlb_trace.Trace.load with
      | Ok _ -> Alcotest.fail "strict load accepted a malformed record"
      | Error msg ->
        Alcotest.(check bool) "error carries line number" true
          (String.length msg >= 7 && String.sub msg 0 7 = "line 3:"))

let suite =
  [
    Alcotest.test_case "plan roundtrip" `Quick test_plan_roundtrip;
    Alcotest.test_case "plan parse errors" `Quick test_plan_parse_errors;
    Alcotest.test_case "plan validate" `Quick test_plan_validate;
    Alcotest.test_case "injector determinism" `Quick test_injector_determinism;
    Alcotest.test_case "empty plan is inert" `Quick test_empty_plan_is_inert;
    Alcotest.test_case "backoff schedule" `Quick test_backoff_schedule;
    Alcotest.test_case "irq reissue budget" `Quick test_irq_reissue_budget;
    Alcotest.test_case "engines recover under faults" `Quick
      test_engines_recover;
    Alcotest.test_case "empty plan changes nothing" `Quick
      test_empty_plan_changes_nothing;
    Alcotest.test_case "faulted run deterministic" `Quick
      test_faulted_run_is_deterministic;
    Alcotest.test_case "lenient trace load" `Quick test_lenient_trace_load;
  ]
