(* Differential soundness suite for the symbolic worst-case analyzer:
   whatever the bound pass promises, no concrete replay may exceed.

   For all five engines x the paper workloads it asserts that the
   empirically observed average lookup cost (the Section 6.2 equations
   over the replay's own rates) and the peak per-process pinned
   population stay at or under the static bound, that tenanted
   campaign runs respect the per-tenant caps, and that seeded mutant
   configurations make the UP40/UP41/UP42 gates fire. *)

open Utlb
module Bound = Utlb_check.Bound
module Explore = Utlb_check.Explore
module Finding = Utlb_check.Finding
module Catalogue = Utlb_check.Catalogue
module Workloads = Utlb_trace.Workloads
module Trace = Utlb_trace.Trace
module Record = Utlb_trace.Record
module Pid = Utlb_mem.Pid

let model = Cost_model.default

let trace_npages trace =
  Array.fold_left
    (fun m (r : Record.t) -> max m r.Record.npages)
    1
    (Trace.records trace)

let has_code code findings =
  List.exists (fun (f : Finding.t) -> f.Finding.code = code) findings

(* {2 SLO spec parsing} *)

let test_slo_parse () =
  (match Bound.slo_of_string "lat_us<=250,pinned<=8192" with
  | Ok slo ->
    Alcotest.(check (option (float 1e-9))) "lat" (Some 250.) slo.Bound.lat_us;
    Alcotest.(check (option int)) "pinned" (Some 8192) slo.Bound.pinned
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Bound.slo_of_string " pinned<=4096 " with
  | Ok slo ->
    Alcotest.(check (option (float 1e-9))) "lat omitted" None slo.Bound.lat_us;
    Alcotest.(check (option int)) "pinned only" (Some 4096) slo.Bound.pinned
  | Error e -> Alcotest.failf "parse failed: %s" e);
  List.iter
    (fun bad ->
      match Bound.slo_of_string bad with
      | Ok _ -> Alcotest.failf "accepted bad spec %S" bad
      | Error _ -> ())
    [ ""; "lat_us<=x"; "pinned<=-1"; "cheese<=4"; "lat_us=250" ]

(* {2 Per-engine harnesses}

   Each harness replays a trace record-by-record through the concrete
   engine, tracking the peak per-process pinned population (or table
   occupancy) as it goes, and pairs the final report with the engine's
   own Section 6.2 average-cost equation. *)

type harness = {
  name : string;
  packed : Engine_intf.packed;
  replay : Trace.t -> Report.t * int;  (** (report, peak per-process) *)
  cost_us : Report.t -> float;
}

let peak_replay ~create ~lookup ~measure ~report trace =
  let engine = create () in
  let peak = ref 0 in
  Trace.iter trace (fun (r : Record.t) ->
      ignore (lookup engine ~pid:r.Record.pid ~vpn:r.Record.vpn ~npages:r.Record.npages);
      peak := max !peak (measure engine r.Record.pid));
  (report engine, !peak)

let harnesses =
  let prefetch = Hier_engine.default_config.Hier_engine.prefetch in
  [
    {
      name = "utlb";
      packed =
        Engine_intf.Packed ((module Hier_engine), Hier_engine.default_config);
      replay =
        peak_replay
          ~create:(fun () -> Hier_engine.create ~seed:Sim_driver.default_seed Hier_engine.default_config)
          ~lookup:Hier_engine.lookup ~measure:Hier_engine.pinned_pages
          ~report:(Hier_engine.report ~label:"utlb");
      cost_us = Report.utlb_cost_us ~prefetch model;
    };
    {
      name = "intr";
      packed =
        Engine_intf.Packed ((module Intr_engine), Intr_engine.default_config);
      replay =
        peak_replay
          ~create:(fun () -> Intr_engine.create ~seed:Sim_driver.default_seed Intr_engine.default_config)
          ~lookup:Intr_engine.lookup ~measure:Intr_engine.pinned_pages
          ~report:(Intr_engine.report ~label:"intr");
      cost_us = Report.intr_cost_us model;
    };
    {
      name = "per-process";
      packed =
        Engine_intf.Packed ((module Pp_engine), Pp_engine.default_config);
      replay =
        peak_replay
          ~create:(fun () -> Pp_engine.create ~seed:Sim_driver.default_seed Pp_engine.default_config)
          ~lookup:Pp_engine.lookup ~measure:Pp_engine.occupancy
          ~report:(Pp_engine.report ~label:"per-process");
      cost_us = Report.utlb_cost_us model;
    };
    {
      name = "victima";
      packed =
        Engine_intf.Packed
          ((module Victima_engine), Victima_engine.default_config);
      replay =
        peak_replay
          ~create:(fun () -> Victima_engine.create ~seed:Sim_driver.default_seed Victima_engine.default_config)
          ~lookup:Victima_engine.lookup ~measure:Victima_engine.pinned_pages
          ~report:(Victima_engine.report ~label:"victima");
      cost_us = Report.victima_cost_us ~prefetch model;
    };
    {
      name = "utopia";
      packed =
        Engine_intf.Packed
          ((module Utopia_engine), Utopia_engine.default_config);
      replay =
        peak_replay
          ~create:(fun () -> Utopia_engine.create ~seed:Sim_driver.default_seed Utopia_engine.default_config)
          ~lookup:Utopia_engine.lookup ~measure:Utopia_engine.pinned_pages
          ~report:(Utopia_engine.report ~label:"utopia");
      cost_us = Report.utopia_cost_us ~prefetch model;
    };
  ]

(* Every empirically observed average lookup cost and peak pinned
   population must sit at or under the static bound, for every engine
   and every paper workload. *)
let test_soundness () =
  List.iter
    (fun h ->
      List.iter
        (fun (spec : Workloads.spec) ->
          let trace =
            spec.Workloads.generate ~seed:Sim_driver.default_seed
          in
          let npages = trace_npages trace in
          let b = Bound.analyze ~model ~npages h.packed in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: bound is clean" h.name spec.Workloads.name)
            false
            (Finding.has_errors b.Bound.findings);
          let report, peak = h.replay trace in
          let observed = h.cost_us report in
          if observed > b.Bound.lat_us then
            Alcotest.failf "%s/%s: observed avg cost %.2f us > bound %.2f us"
              h.name spec.Workloads.name observed b.Bound.lat_us;
          if peak > b.Bound.pinned.Bound.per_process then
            Alcotest.failf "%s/%s: peak pinned %d > per-process bound %d"
              h.name spec.Workloads.name peak
              b.Bound.pinned.Bound.per_process)
        Workloads.all)
    harnesses

(* A bounded configuration must also dominate its replays, and the
   bound must tighten: the limit caps the population the trace-free
   analysis promises. *)
let test_soundness_bounded () =
  let limit_pages = 4096 in
  let config =
    { Hier_engine.default_config with
      Hier_engine.memory_limit_pages = Some limit_pages }
  in
  let packed = Engine_intf.Packed ((module Hier_engine), config) in
  List.iter
    (fun (spec : Workloads.spec) ->
      let trace = spec.Workloads.generate ~seed:Sim_driver.default_seed in
      let npages = trace_npages trace in
      let b = Bound.analyze ~model ~npages packed in
      Alcotest.(check bool)
        (Printf.sprintf "%s: limit binds" spec.Workloads.name)
        true b.Bound.pinned.Bound.bounded;
      Alcotest.(check int)
        (Printf.sprintf "%s: per-process bound is the limit"
           spec.Workloads.name)
        limit_pages b.Bound.pinned.Bound.per_process;
      let engine = Hier_engine.create ~seed:Sim_driver.default_seed config in
      let peak = ref 0 in
      Trace.iter trace (fun (r : Record.t) ->
          ignore
            (Hier_engine.lookup engine ~pid:r.Record.pid ~vpn:r.Record.vpn
               ~npages:r.Record.npages);
          peak := max !peak (Hier_engine.pinned_pages engine r.Record.pid));
      if !peak > b.Bound.pinned.Bound.per_process then
        Alcotest.failf "%s: peak pinned %d > bound %d" spec.Workloads.name
          !peak b.Bound.pinned.Bound.per_process)
    Workloads.all

(* {2 Tenanted campaign runs vs per-tenant caps} *)

let test_tenant_bounds () =
  let spec = "shared/alpha=0-1:quota=64/beta=2-7" in
  let grid =
    {
      Utlb_exp.Grid.name = "bound-tenants";
      seed = Sim_driver.default_seed;
      workloads =
        List.filter
          (fun (w : Workloads.spec) ->
            List.mem w.Workloads.name [ "water"; "fft" ])
          Workloads.all;
      mechanisms = [ Utlb_exp.Grid.mech "utlb" ];
      tenants = Some spec;
    }
  in
  let tenants =
    match Utlb_tenant.Tenant.of_string spec with
    | Ok (Some cfg) -> cfg
    | _ -> Alcotest.fail "tenancy spec did not parse"
  in
  let outcomes = Utlb_exp.Runner.run grid in
  List.iter
    (fun (o : Utlb_exp.Runner.outcome) ->
      let trace_pages =
        trace_npages
          (o.Utlb_exp.Runner.cell.Utlb_exp.Grid.workload.Workloads.generate
             ~seed:Sim_driver.default_seed)
      in
      let b =
        Bound.analyze ~model ~tenants ~npages:trace_pages
          (Engine_intf.Packed ((module Hier_engine), Hier_engine.default_config))
      in
      match o.Utlb_exp.Runner.report.Report.isolation with
      | None -> Alcotest.fail "tenanted cell produced no isolation block"
      | Some iso ->
        Array.iter
          (fun (row : Utlb_tenant.Isolation.row) ->
            match
              List.find_opt
                (fun (tb : Bound.tenant_bound) ->
                  tb.Bound.tenant = row.Utlb_tenant.Isolation.name)
                b.Bound.tenants
            with
            | None ->
              Alcotest.failf "no bound for tenant %s"
                row.Utlb_tenant.Isolation.name
            | Some tb ->
              if
                row.Utlb_tenant.Isolation.pinned_peak > tb.Bound.pinned_cap
              then
                Alcotest.failf "tenant %s: pinned peak %d > cap %d"
                  tb.Bound.tenant row.Utlb_tenant.Isolation.pinned_peak
                  tb.Bound.pinned_cap)
          iso.Utlb_tenant.Isolation.rows)
    outcomes

(* {2 Seeded mutants: the gates must fire} *)

let utlb_packed =
  Engine_intf.Packed ((module Hier_engine), Hier_engine.default_config)

let test_mutant_up40 () =
  let slo =
    match Bound.slo_of_string "lat_us<=1" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let b = Bound.analyze ~model ~slo utlb_packed in
  Alcotest.(check bool) "UP40 fires" true (has_code "UP40" b.Bound.findings);
  Alcotest.(check int) "exit code 1" 1 (Finding.exit_code b.Bound.findings);
  (* A generous SLO stays clean. *)
  let ok =
    match Bound.slo_of_string "lat_us<=100000,pinned<=100000000" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let b = Bound.analyze ~model ~slo:ok utlb_packed in
  Alcotest.(check bool) "generous SLO clean" false
    (Finding.has_errors b.Bound.findings)

let test_mutant_up41 () =
  let faults =
    {
      Utlb_fault.Plan.empty with
      Utlb_fault.Plan.dma_fail = 0.5;
      dma_retries = 40;
      dma_backoff_us = 10.;
    }
  in
  let b = Bound.analyze ~model ~faults utlb_packed in
  Alcotest.(check bool) "UP41 fires" true (has_code "UP41" b.Bound.findings);
  (* A sane retry budget does not. *)
  let faults =
    {
      Utlb_fault.Plan.empty with
      Utlb_fault.Plan.dma_fail = 0.5;
      dma_retries = 3;
      dma_backoff_us = 10.;
    }
  in
  let b = Bound.analyze ~model ~faults utlb_packed in
  Alcotest.(check bool) "bounded retries clean" false
    (has_code "UP41" b.Bound.findings);
  Alcotest.(check bool) "fault surcharge priced in" true
    (b.Bound.fault_us > 0.)

let test_mutant_up42 () =
  let tenants =
    match Utlb_tenant.Tenant.of_string "shared/starved=0-1:quota=2/fat=2-7" with
    | Ok (Some cfg) -> cfg
    | _ -> Alcotest.fail "tenancy spec did not parse"
  in
  let b = Bound.analyze ~model ~tenants ~npages:32 utlb_packed in
  Alcotest.(check bool) "UP42 fires" true (has_code "UP42" b.Bound.findings);
  let starved =
    List.find
      (fun (tb : Bound.tenant_bound) -> tb.Bound.tenant = "starved")
      b.Bound.tenants
  in
  Alcotest.(check bool) "negative headroom" true
    (starved.Bound.headroom < 0)

let test_up43_up44 () =
  (match
     Bound.analyze_mech ~model ~name:"intr"
       ~params:[ ("entries", "16") ]
       ()
   with
  | Ok b ->
    Alcotest.(check bool) "UP43 fires for narrow intr cache" true
      (has_code "UP43" b.Bound.findings);
    Alcotest.(check bool) "UP43 is an error under intr semantics" true
      (Finding.has_errors b.Bound.findings)
  | Error e -> Alcotest.fail e);
  match
    Bound.analyze_mech ~model ~name:"utlb"
      ~params:[ ("limit-mb", "8192") ]
      ()
  with
  | Ok b ->
    Alcotest.(check bool) "UP44 fires for unreachable limit" true
      (has_code "UP44" b.Bound.findings);
    Alcotest.(check bool) "UP44 is only a warning" false
      (Finding.has_errors b.Bound.findings)
  | Error e -> Alcotest.fail e

(* {2 Witness search} *)

let test_witness () =
  List.iter
    (fun h ->
      let b = Bound.analyze ~model h.packed in
      let scope = Explore.default_config.Explore.scope in
      let target = Bound.witness_target scope b in
      let w = Explore.pinned_witness ~target b.Bound.semantics in
      Alcotest.(check bool)
        (Printf.sprintf "%s: witness confirmed" h.name)
        true w.Explore.confirmed;
      Alcotest.(check int)
        (Printf.sprintf "%s: peak meets target" h.name)
        target w.Explore.peak;
      (* The witness trace replays: its records parse back into a
         request program of the same length. *)
      let program = Explore.program_of_records w.Explore.records in
      Alcotest.(check int)
        (Printf.sprintf "%s: records round-trip" h.name)
        (List.length w.Explore.records)
        (List.length program);
      Alcotest.(check bool)
        (Printf.sprintf "%s: witness has a schedule" h.name)
        true
        (w.Explore.schedule <> []))
    harnesses

(* {2 Catalogue and case-insensitive lookup} *)

let test_catalogue () =
  List.iter
    (fun code ->
      Alcotest.(check bool) (code ^ " catalogued") true (Catalogue.mem code);
      Alcotest.(check bool)
        (String.lowercase_ascii code ^ " resolves lowercase")
        true
        (Catalogue.mem (String.lowercase_ascii code));
      Alcotest.(check (option string))
        (code ^ " same description either case")
        (Catalogue.describe code)
        (Catalogue.describe (String.lowercase_ascii code)))
    [ "UP40"; "UP41"; "UP42"; "UP43"; "UP44"; "UC101"; "UV01" ];
  Alcotest.(check int) "five bound codes" 5 (List.length Catalogue.bounds)

let suite =
  [
    Alcotest.test_case "slo spec parsing" `Quick test_slo_parse;
    Alcotest.test_case "replays never exceed the bound" `Quick test_soundness;
    Alcotest.test_case "memory limit tightens the bound" `Quick
      test_soundness_bounded;
    Alcotest.test_case "tenant caps dominate campaign peaks" `Quick
      test_tenant_bounds;
    Alcotest.test_case "UP40 SLO gate fires" `Quick test_mutant_up40;
    Alcotest.test_case "UP41 retry ceiling fires" `Quick test_mutant_up41;
    Alcotest.test_case "UP42 starvation fires" `Quick test_mutant_up42;
    Alcotest.test_case "UP43/UP44 geometry findings" `Quick test_up43_up44;
    Alcotest.test_case "pinned witness confirms all engines" `Quick
      test_witness;
    Alcotest.test_case "catalogue and case-insensitive codes" `Quick
      test_catalogue;
  ]
