(* Aggregated test runner for the whole repository. *)

let () =
  Alcotest.run "utlb-reproduction"
    [
      ("rng", Test_rng.suite);
      ("heap", Test_heap.suite);
      ("engine", Test_engine.suite);
      ("stats", Test_stats.suite);
      ("cost-table", Test_cost_table.suite);
      ("mem", Test_mem.suite);
      ("nic", Test_nic.suite);
      ("net", Test_net.suite);
      ("bitvec", Test_bitvec.suite);
      ("lookup-tree", Test_lookup_tree.suite);
      ("replacement", Test_replacement.suite);
      ("translation-table", Test_translation_table.suite);
      ("ni-cache", Test_ni_cache.suite);
      ("miss-classifier", Test_miss_classifier.suite);
      ("flat-storage", Test_flat_storage.suite);
      ("cost-model", Test_cost_model.suite);
      ("report", Test_report.suite);
      ("hier-engine", Test_hier_engine.suite);
      ("intr-engine", Test_intr_engine.suite);
      ("per-process", Test_per_process.suite);
      ("pp-engine", Test_pp_engine.suite);
      ("trace", Test_trace.suite);
      ("workloads", Test_workloads.suite);
      ("analysis", Test_analysis.suite);
      ("pattern", Test_pattern.suite);
      ("vmmc", Test_vmmc.suite);
      ("svm", Test_svm.suite);
      ("msg", Test_msg.suite);
      ("collective", Test_collective.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("substrate-extra", Test_substrate_extra.suite);
      ("experiments", Test_experiments.suite);
      ("check", Test_check.suite);
      ("campaign", Test_campaign.suite);
      ("modern-engines", Test_modern_engines.suite);
      ("obs", Test_obs.suite);
      ("fault", Test_fault.suite);
      ("tenant", Test_tenant.suite);
      ("verify", Test_verify.suite);
      ("explore", Test_explore.suite);
      ("bound", Test_bound.suite);
    ]
