open Utlb

let sample =
  {
    (Report.empty ~label:"sample") with
    Report.lookups = 1000;
    check_misses = 250;
    ni_miss_lookups = 400;
    ni_page_accesses = 1200;
    ni_page_misses = 450;
    pin_calls = 250;
    pages_pinned = 500;
    unpin_calls = 100;
    pages_unpinned = 100;
    compulsory = 300;
    capacity = 100;
    conflict = 50;
  }

let test_rates () =
  Alcotest.(check (float 1e-9)) "check" 0.25 (Report.check_miss_rate sample);
  Alcotest.(check (float 1e-9)) "ni" 0.40 (Report.ni_miss_rate sample);
  Alcotest.(check (float 1e-9)) "unpin" 0.10 (Report.unpin_rate sample);
  Alcotest.(check (float 1e-9)) "pages/call" 2.0 (Report.pin_pages_per_call sample)

let test_empty_rates () =
  let e = Report.empty ~label:"e" in
  Alcotest.(check (float 1e-9)) "check" 0.0 (Report.check_miss_rate e);
  Alcotest.(check (float 1e-9)) "pages/call defaults to 1" 1.0
    (Report.pin_pages_per_call e);
  Alcotest.(check (float 1e-9)) "amortized pin" 0.0
    (Report.amortized_pin_us Cost_model.default e)

let test_breakdown_sums_to_miss_rate () =
  let comp, cap, conf = Report.miss_breakdown sample in
  Alcotest.(check (float 1e-9)) "sums" (Report.ni_miss_rate sample)
    (comp +. cap +. conf);
  (* Shares proportional to the page-miss classification. *)
  Alcotest.(check (float 1e-9)) "compulsory share" (0.4 *. 300.0 /. 450.0) comp

let test_costs_consistent_with_model () =
  let m = Cost_model.default in
  let expected =
    Cost_model.utlb_lookup_us m ~prefetch:1 (Report.rates sample)
  in
  Alcotest.(check (float 1e-9)) "utlb cost" expected
    (Report.utlb_cost_us m sample);
  let expected_intr = Cost_model.intr_lookup_us m (Report.rates sample) in
  Alcotest.(check (float 1e-9)) "intr cost" expected_intr
    (Report.intr_cost_us m sample)

let test_amortized () =
  let m = Cost_model.default in
  (* 250 calls of 2 pages: pin_us(2)=30; 250*30/1000 = 7.5 us/lookup. *)
  Alcotest.(check (float 1e-9)) "amortized pin" 7.5
    (Report.amortized_pin_us m sample);
  (* 100 single-page unpins at 25us over 1000 lookups. *)
  Alcotest.(check (float 1e-9)) "amortized unpin" 2.5
    (Report.amortized_unpin_us m sample)

let test_add () =
  let sum = Report.add sample sample in
  Alcotest.(check string) "keeps left label" "sample" sum.Report.label;
  Alcotest.(check int) "lookups" 2000 sum.Report.lookups;
  Alcotest.(check int) "check misses" 500 sum.Report.check_misses;
  Alcotest.(check int) "conflict" 100 sum.Report.conflict;
  (* Rates are counter ratios, so summing an identical report twice
     leaves every rate unchanged. *)
  Alcotest.(check (float 1e-9)) "check rate invariant"
    (Report.check_miss_rate sample)
    (Report.check_miss_rate sum);
  Alcotest.(check (float 1e-9)) "unpin rate invariant"
    (Report.unpin_rate sample) (Report.unpin_rate sum);
  (* An empty left label adopts the right one — and symmetrically, a
     labelled left wins over an anonymous right, so accumulating into
     an empty seed from either side preserves the campaign label. *)
  let anon = Report.add (Report.empty ~label:"") sample in
  Alcotest.(check string) "empty label adopts" "sample" anon.Report.label;
  let anon_right = Report.add sample (Report.empty ~label:"") in
  Alcotest.(check string) "labelled left wins" "sample"
    anon_right.Report.label;
  Alcotest.(check int) "labelled left sums" 1000 anon_right.Report.lookups

let test_add_identity () =
  let sum = Report.add sample (Report.empty ~label:"sample") in
  Alcotest.(check bool) "empty is the identity" true (sum = sample)

let test_merge () =
  (* Merging an empty list is the empty report. *)
  let none = Report.merge [] in
  Alcotest.(check string) "empty merge label" "merged" none.Report.label;
  Alcotest.(check int) "empty merge lookups" 0 none.Report.lookups;
  Alcotest.(check (float 1e-9)) "empty merge rate" 0.0
    (Report.check_miss_rate none);
  (* Uniform labels survive the merge; mixed ones collapse. *)
  let uniform = Report.merge [ sample; sample ] in
  Alcotest.(check string) "uniform label" "sample" uniform.Report.label;
  Alcotest.(check int) "summed lookups" 2000 uniform.Report.lookups;
  let other = { sample with Report.label = "other" } in
  let mixed = Report.merge [ sample; other ] in
  Alcotest.(check string) "mixed labels collapse" "merged" mixed.Report.label;
  let forced = Report.merge ~label:"campaign" [ sample; other ] in
  Alcotest.(check string) "explicit label wins" "campaign" forced.Report.label;
  (* Merged rates are lookup-weighted means: a 1000-lookup report at
     0.25 merged with a 3000-lookup all-miss report sits at 0.8125. *)
  let heavy =
    {
      (Report.empty ~label:"heavy") with
      Report.lookups = 3000;
      check_misses = 3000;
    }
  in
  Alcotest.(check (float 1e-9)) "weighted rate"
    ((250.0 +. 3000.0) /. 4000.0)
    (Report.check_miss_rate (Report.merge [ sample; heavy ]))

let suite =
  [
    Alcotest.test_case "rates" `Quick test_rates;
    Alcotest.test_case "empty rates" `Quick test_empty_rates;
    Alcotest.test_case "breakdown sums" `Quick test_breakdown_sums_to_miss_rate;
    Alcotest.test_case "costs consistent" `Quick test_costs_consistent_with_model;
    Alcotest.test_case "amortized costs" `Quick test_amortized;
    Alcotest.test_case "add" `Quick test_add;
    Alcotest.test_case "add identity" `Quick test_add_identity;
    Alcotest.test_case "merge" `Quick test_merge;
  ]
