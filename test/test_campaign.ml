(* The campaign layer: grids, the domain-parallel runner, emitters,
   and the packed-module dispatch they are built on. *)

module Grid = Utlb_exp.Grid
module Runner = Utlb_exp.Runner
module Emit = Utlb_exp.Emit
module Workloads = Utlb_trace.Workloads
module Trace = Utlb_trace.Trace
module Record = Utlb_trace.Record
open Utlb

let seed = 42L

let small_grid =
  {
    Grid.name = "test";
    seed;
    workloads = [ Workloads.water; Workloads.volrend ];
    mechanisms =
      [
        Grid.mech ~params:[ ("entries", "1024") ] "utlb";
        Grid.mech ~params:[ ("entries", "1024") ] "intr";
        Grid.mech ~params:[ ("budget", "4096") ] "per-process";
      ];
    tenants = None;
  }

(* --- Grid ---------------------------------------------------------- *)

let test_axes_cross_product () =
  let mechs =
    Grid.axes "utlb"
      [ ("entries", [ "1024"; "8192" ]); ("assoc", [ "direct"; "2-way" ]) ]
  in
  Alcotest.(check int) "4 points" 4 (List.length mechs);
  Alcotest.(check (list string)) "first axis outermost"
    [
      "utlb[entries=1024,assoc=direct]";
      "utlb[entries=1024,assoc=2-way]";
      "utlb[entries=8192,assoc=direct]";
      "utlb[entries=8192,assoc=2-way]";
    ]
    (List.map Grid.mech_label mechs);
  Alcotest.(check string) "no params, no brackets" "intr"
    (Grid.mech_label (Grid.mech "intr"))

let test_cells_and_seeds () =
  let cells = Grid.cells small_grid in
  Alcotest.(check int) "workloads x mechanisms" 6 (List.length cells);
  Alcotest.(check (list int)) "sequential indices" [ 0; 1; 2; 3; 4; 5 ]
    (List.map (fun c -> c.Grid.index) cells);
  (* Workloads outermost: the first three cells are water. *)
  Alcotest.(check string) "outer order" "water"
    (List.nth cells 2).Grid.workload.Workloads.name;
  Alcotest.(check string) "inner order" "volrend"
    (List.nth cells 3).Grid.workload.Workloads.name;
  let seeds = List.map (Grid.cell_seed small_grid) cells in
  Alcotest.(check int) "all cell seeds distinct" (List.length cells)
    (List.length (List.sort_uniq Int64.compare seeds));
  Alcotest.(check bool) "seeds differ from the grid seed" false
    (List.mem small_grid.Grid.seed seeds)

let test_grid_parse () =
  let text =
    "# comment\n\
     name parsed\n\
     seed 7\n\
     workloads water volrend\n\
     mechanism utlb entries=1024,8192 # trailing comment\n\
     mechanism intr entries=1024\n"
  in
  match Grid.of_string text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok grid ->
    Alcotest.(check string) "name" "parsed" grid.Grid.name;
    Alcotest.(check int64) "seed" 7L grid.Grid.seed;
    Alcotest.(check int) "cells" 6 (List.length (Grid.cells grid));
    Alcotest.(check (list string)) "mechanism points"
      [ "utlb[entries=1024]"; "utlb[entries=8192]"; "intr[entries=1024]" ]
      (List.map Grid.mech_label grid.Grid.mechanisms)

let test_grid_parse_scaled () =
  match Grid.of_string "workloads water@2\nmechanism utlb entries=1024\n" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok grid ->
    let w = List.hd grid.Grid.workloads in
    Alcotest.(check string) "renamed by token" "water@2" w.Workloads.name;
    (* The renamed variant still generates a (larger) trace. *)
    let base = (Workloads.water.Workloads.generate ~seed) in
    let scaled = w.Workloads.generate ~seed in
    Alcotest.(check bool) "scaled footprint grows" true
      (Trace.footprint_pages scaled > Trace.footprint_pages base)

let test_grid_parse_errors () =
  let fails ~substring text =
    match Grid.of_string text with
    | Ok _ -> Alcotest.failf "expected %S to fail" text
    | Error e ->
      let found =
        let len = String.length substring in
        let rec scan i =
          i + len <= String.length e
          && (String.equal (String.sub e i len) substring || scan (i + 1))
        in
        scan 0
      in
      if not found then
        Alcotest.failf "error %S does not mention %S" e substring
  in
  fails ~substring:"line 2: unknown workload"
    "workloads water\nworkloads nosuchapp\nmechanism utlb entries=1\n";
  fails ~substring:"line 2: unregistered mechanism"
    "workloads water\nmechanism warp-drive\n";
  fails ~substring:"line 1: bad seed" "seed fortytwo\n";
  fails ~substring:"line 2: expected key=v1,v2 axis"
    "workloads water\nmechanism utlb entries\n";
  fails ~substring:"no workloads" "mechanism utlb entries=1024\n";
  fails ~substring:"no mechanisms" "workloads water\n";
  fails ~substring:"line 1: unknown directive" "workload water\n"

(* --- Registry and packed dispatch ---------------------------------- *)

let test_registry () =
  Alcotest.(check (list string)) "registered mechanisms"
    [ "intr"; "per-process"; "utlb"; "utopia"; "victima" ]
    (List.map
       (fun (e : Sim_driver.Registry.entry) -> e.Sim_driver.Registry.name)
       (Sim_driver.Registry.mechanisms ()));
  (match Sim_driver.Registry.find "UTLB" with
  | Some e ->
    Alcotest.(check string) "case-insensitive find" "utlb"
      e.Sim_driver.Registry.name
  | None -> Alcotest.fail "find UTLB");
  Alcotest.(check bool) "unknown mechanism" true
    (Option.is_none (Sim_driver.Registry.find "warp-drive"));
  match Sim_driver.Registry.find "utlb" with
  | None -> Alcotest.fail "find utlb"
  | Some e ->
    Alcotest.check_raises "bad parameter value"
      (Invalid_argument
         "mechanism parameter entries=\"lots\": expected an integer")
      (fun () ->
        ignore (e.Sim_driver.Registry.of_params [ ("entries", "lots") ]))

let reports_equal = Alcotest.testable Report.pp ( = )

(* Driving each engine by hand must reproduce the packed-module path
   exactly: [Sim_driver.run_packed] adds nothing but dispatch. *)
let test_packed_path_matches_direct () =
  let trace = Workloads.water.Workloads.generate ~seed in
  let cache = { Ni_cache.entries = 1024; associativity = Ni_cache.Direct } in
  let drive create lookup invariants report =
    let e = create () in
    Trace.iter trace (fun (r : Record.t) ->
        ignore (lookup e ~pid:r.pid ~vpn:r.vpn ~npages:r.npages));
    invariants e;
    report e ~label:"direct"
  in
  let hier_config = { Hier_engine.default_config with cache } in
  Alcotest.check reports_equal "hier engine"
    (drive
       (fun () -> Hier_engine.create ~seed hier_config)
       Hier_engine.lookup Hier_engine.run_invariants Hier_engine.report)
    (Sim_driver.run ~seed ~label:"direct" (Sim_driver.Utlb hier_config) trace);
  let intr_config = { Intr_engine.cache; memory_limit_pages = None } in
  Alcotest.check reports_equal "intr engine"
    (drive
       (fun () -> Intr_engine.create ~seed intr_config)
       Intr_engine.lookup Intr_engine.run_invariants Intr_engine.report)
    (Sim_driver.run ~seed ~label:"direct" (Sim_driver.Intr intr_config) trace);
  let pp_config = Pp_engine.default_config in
  Alcotest.check reports_equal "per-process engine"
    (drive
       (fun () -> Pp_engine.create ~seed pp_config)
       Pp_engine.lookup Pp_engine.run_invariants Pp_engine.report)
    (Sim_driver.run ~seed ~label:"direct" (Sim_driver.Per_process pp_config)
       trace)

let test_registry_params_match_variants () =
  let trace = Workloads.volrend.Workloads.generate ~seed in
  let via_registry name params =
    match Sim_driver.Registry.find name with
    | None -> Alcotest.failf "mechanism %s not registered" name
    | Some e ->
      Sim_driver.run_packed ~seed ~label:"m"
        (e.Sim_driver.Registry.of_params params)
        trace
  in
  let cache = { Ni_cache.entries = 2048; associativity = Ni_cache.Two_way } in
  Alcotest.check reports_equal "utlb params"
    (Sim_driver.run ~seed ~label:"m"
       (Sim_driver.Utlb
          {
            Hier_engine.default_config with
            cache;
            prefetch = 4;
            prepin = 4;
            memory_limit_pages = Some 1024;
          })
       trace)
    (via_registry "utlb"
       [
         ("entries", "2048"); ("assoc", "2-way"); ("prefetch", "4");
         ("prepin", "4"); ("limit-mb", "4");
       ]);
  (* Unknown keys are ignored so shared grid axes stay usable. *)
  Alcotest.check reports_equal "intr ignores foreign axes"
    (Sim_driver.run ~seed ~label:"m"
       (Sim_driver.Intr { Intr_engine.cache; memory_limit_pages = None })
       trace)
    (via_registry "intr"
       [ ("entries", "2048"); ("assoc", "2-way"); ("prefetch", "4") ])

(* --- Runner -------------------------------------------------------- *)

let test_parallel_byte_identical () =
  let serial = Runner.run ~domains:1 ~sanitize:true small_grid in
  let parallel = Runner.run ~domains:4 ~sanitize:true small_grid in
  Alcotest.(check string) "csv identical"
    (Emit.to_string Emit.csv serial)
    (Emit.to_string Emit.csv parallel);
  Alcotest.(check string) "json identical"
    (Emit.to_string Emit.json serial)
    (Emit.to_string Emit.json parallel);
  Alcotest.(check bool) "sanitizers clean" true
    (Runner.violation_summary parallel = [])

let test_runner_labels_and_order () =
  let outcomes = Runner.run small_grid in
  Alcotest.(check (list string)) "cell-order labels"
    [
      "water/utlb[entries=1024]"; "water/intr[entries=1024]";
      "water/per-process[budget=4096]"; "volrend/utlb[entries=1024]";
      "volrend/intr[entries=1024]"; "volrend/per-process[budget=4096]";
    ]
    (List.map
       (fun (o : Runner.outcome) -> o.Runner.report.Report.label)
       outcomes)

let test_runner_unregistered_mechanism () =
  let grid = { small_grid with Grid.mechanisms = [ Grid.mech "warp-drive" ] } in
  Alcotest.check_raises "unregistered"
    (Invalid_argument "Runner.run: unregistered mechanism \"warp-drive\"")
    (fun () -> ignore (Runner.run grid))

let test_merged_report () =
  let outcomes = Runner.run small_grid in
  let merged = Runner.merged_report outcomes in
  Alcotest.(check int) "lookups sum"
    (List.fold_left
       (fun acc (o : Runner.outcome) -> acc + o.Runner.report.Report.lookups)
       0 outcomes)
    merged.Report.lookups;
  Alcotest.(check string) "distinct labels collapse" "merged"
    merged.Report.label

(* --- Emitters ------------------------------------------------------ *)

let test_csv_shape () =
  let outcomes = Runner.run small_grid in
  let lines =
    Emit.to_string Emit.csv outcomes
    |> String.split_on_char '\n'
    |> List.filter (fun l -> not (String.equal l ""))
  in
  Alcotest.(check int) "header + one row per cell" 7 (List.length lines);
  let header = List.hd lines in
  Alcotest.(check bool) "param columns first-seen order" true
    (String.length header > String.length "workload,mechanism,entries,budget"
    && String.equal
         (String.sub header 0 (String.length "workload,mechanism,entries,budget"))
         "workload,mechanism,entries,budget");
  List.iter
    (fun line ->
      Alcotest.(check int) "column count"
        (List.length (String.split_on_char ',' header))
        (List.length (String.split_on_char ',' line)))
    (List.tl lines)

let test_matrix_pivot () =
  let outcomes = Runner.run small_grid in
  let rendered =
    Emit.to_string
      (Emit.matrix ?fmt:None
         ~rows:(fun o -> o.Runner.cell.Grid.workload.Workloads.name)
         ~cols:(fun o -> Grid.mech_label o.Runner.cell.Grid.mech)
         ~metrics:
           [ ("check", fun o -> Report.check_miss_rate o.Runner.report) ])
      outcomes
  in
  let lines =
    String.split_on_char '\n' rendered
    |> List.filter (fun l -> not (String.equal l ""))
  in
  (* Header plus one line per workload (single metric). *)
  Alcotest.(check int) "line count" 3 (List.length lines)

let suite =
  [
    Alcotest.test_case "axes cross product" `Quick test_axes_cross_product;
    Alcotest.test_case "cells and seeds" `Quick test_cells_and_seeds;
    Alcotest.test_case "grid parse" `Quick test_grid_parse;
    Alcotest.test_case "grid parse scaled" `Quick test_grid_parse_scaled;
    Alcotest.test_case "grid parse errors" `Quick test_grid_parse_errors;
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "packed path = direct" `Quick
      test_packed_path_matches_direct;
    Alcotest.test_case "registry params = variants" `Quick
      test_registry_params_match_variants;
    Alcotest.test_case "parallel byte-identical" `Quick
      test_parallel_byte_identical;
    Alcotest.test_case "runner labels and order" `Quick
      test_runner_labels_and_order;
    Alcotest.test_case "unregistered mechanism" `Quick
      test_runner_unregistered_mechanism;
    Alcotest.test_case "merged report" `Quick test_merged_report;
    Alcotest.test_case "csv shape" `Quick test_csv_shape;
    Alcotest.test_case "matrix pivot" `Quick test_matrix_pivot;
  ]
