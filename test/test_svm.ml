(* Tests for the mini home-based SVM substrate (lib/svm). *)

module Cluster = Utlb_vmmc.Cluster
module Svm = Utlb_svm.Svm

let with_svm ?(pages = 8) f =
  let cluster = Cluster.create () in
  let svm = Svm.create cluster ~pages in
  f cluster svm

let test_homes_round_robin () =
  with_svm (fun cluster svm ->
      for page = 0 to Svm.pages svm - 1 do
        Alcotest.(check int)
          (Printf.sprintf "home of page %d" page)
          (page mod Cluster.node_count cluster)
          (Svm.home_of svm ~page)
      done)

let test_read_own_home_no_fault () =
  with_svm (fun _ svm ->
      let h0 = Svm.handle svm ~node:0 in
      (* Page 0 is homed on node 0: reading it must not fault. *)
      let b = Svm.read h0 ~page:0 ~off:0 ~len:16 in
      Alcotest.(check bytes) "zeros" (Bytes.make 16 '\000') b;
      Alcotest.(check int) "no faults" 0 (Svm.faults svm))

let test_remote_read_faults_once () =
  with_svm (fun _ svm ->
      let h0 = Svm.handle svm ~node:0 in
      (* Page 1 is homed on node 1. *)
      ignore (Svm.read h0 ~page:1 ~off:0 ~len:8);
      Alcotest.(check int) "one fault" 1 (Svm.faults svm);
      ignore (Svm.read h0 ~page:1 ~off:100 ~len:8);
      Alcotest.(check int) "cached after" 1 (Svm.faults svm))

let test_write_read_through_barrier () =
  with_svm (fun _ svm ->
      let h0 = Svm.handle svm ~node:0 in
      let h2 = Svm.handle svm ~node:2 in
      Svm.write h0 ~page:1 ~off:64 (Bytes.of_string "written-by-0");
      (* Not visible remotely before the barrier. *)
      let before = Svm.read h2 ~page:1 ~off:64 ~len:12 in
      Alcotest.(check bytes) "invisible before barrier" (Bytes.make 12 '\000')
        before;
      Svm.barrier svm;
      let after = Svm.read h2 ~page:1 ~off:64 ~len:12 in
      Alcotest.(check string) "visible after barrier" "written-by-0"
        (Bytes.to_string after))

let test_multiple_writer_merge () =
  with_svm (fun _ svm ->
      (* Nodes 0 and 2 write disjoint halves of page 1 (homed on 1). *)
      let h0 = Svm.handle svm ~node:0 in
      let h2 = Svm.handle svm ~node:2 in
      let h3 = Svm.handle svm ~node:3 in
      Svm.write h0 ~page:1 ~off:0 (Bytes.make 128 'a');
      Svm.write h2 ~page:1 ~off:2048 (Bytes.make 128 'b');
      Svm.barrier svm;
      Alcotest.(check bytes) "first half merged" (Bytes.make 128 'a')
        (Svm.read h3 ~page:1 ~off:0 ~len:128);
      Alcotest.(check bytes) "second half merged" (Bytes.make 128 'b')
        (Svm.read h3 ~page:1 ~off:2048 ~len:128);
      Alcotest.(check bytes) "untouched middle" (Bytes.make 64 '\000')
        (Svm.read h3 ~page:1 ~off:1024 ~len:64))

let test_diffs_are_sparse () =
  with_svm (fun _ svm ->
      let h0 = Svm.handle svm ~node:0 in
      (* Two small writes far apart in one page: two diffs, not a whole
         page. *)
      Svm.write h0 ~page:1 ~off:0 (Bytes.make 8 'x');
      Svm.write h0 ~page:1 ~off:3000 (Bytes.make 8 'y');
      Svm.release h0;
      Alcotest.(check int) "two diff runs" 2 (Svm.diffs_sent svm);
      Alcotest.(check bool) "few bytes" true (Svm.diff_bytes svm <= 32))

let test_home_write_visible_after_invalidate () =
  with_svm (fun _ svm ->
      let h1 = Svm.handle svm ~node:1 in
      let h0 = Svm.handle svm ~node:0 in
      (* Node 0 caches page 1, then the home (node 1) updates it. *)
      ignore (Svm.read h0 ~page:1 ~off:0 ~len:4);
      Svm.write h1 ~page:1 ~off:0 (Bytes.of_string "new!");
      (* Stale until node 0 acquires. *)
      Alcotest.(check bytes) "stale read" (Bytes.make 4 '\000')
        (Svm.read h0 ~page:1 ~off:0 ~len:4);
      Svm.acquire h0;
      Alcotest.(check string) "fresh after acquire" "new!"
        (Bytes.to_string (Svm.read h0 ~page:1 ~off:0 ~len:4)))

let test_acquire_with_dirty_flushes () =
  with_svm (fun _ svm ->
      let h0 = Svm.handle svm ~node:0 in
      let h1 = Svm.handle svm ~node:1 in
      (* Page 1 is homed on node 1; node 0 dirties it and acquires
         without releasing. The acquire must flush the diff first
         (counted as a forced flush) instead of crashing, so the home
         sees the write. *)
      Svm.write h0 ~page:1 ~off:0 (Bytes.make 4 'z');
      Svm.acquire h0;
      Alcotest.(check int) "forced flush counted" 1
        (Svm.forced_flushes svm);
      Alcotest.(check bytes) "write reached the home" (Bytes.make 4 'z')
        (Svm.read h1 ~page:1 ~off:0 ~len:4);
      (* A clean acquire stays free. *)
      Svm.acquire h0;
      Alcotest.(check int) "clean acquire not counted" 1
        (Svm.forced_flushes svm))

let test_twin_accounting () =
  with_svm (fun _ svm ->
      let h0 = Svm.handle svm ~node:0 in
      Svm.write h0 ~page:1 ~off:0 (Bytes.make 4 'p');
      Svm.write h0 ~page:1 ~off:8 (Bytes.make 4 'q');
      Alcotest.(check int) "one twin per page" 1 (Svm.twins_made svm);
      Svm.write h0 ~page:2 ~off:0 (Bytes.make 4 'r');
      Alcotest.(check int) "second page twins" 2 (Svm.twins_made svm))

let test_many_pages_stress () =
  with_svm ~pages:64 (fun cluster svm ->
      let nodes = Cluster.node_count cluster in
      let handles = Array.init nodes (fun node -> Svm.handle svm ~node) in
      (* Every node writes a tag into every page at its own slot. *)
      Array.iteri
        (fun n h ->
          for page = 0 to 63 do
            Svm.write h ~page ~off:(n * 16)
              (Bytes.of_string (Printf.sprintf "node%d-page%02d-x" n page))
          done)
        handles;
      Svm.barrier svm;
      (* Every node verifies every slot of every page. *)
      let ok = ref true in
      Array.iter
        (fun h ->
          for page = 0 to 63 do
            for n = 0 to nodes - 1 do
              let expected = Printf.sprintf "node%d-page%02d-x" n page in
              let got =
                Bytes.to_string
                  (Svm.read h ~page ~off:(n * 16) ~len:(String.length expected))
              in
              if got <> expected then ok := false
            done
          done)
        handles;
      Alcotest.(check bool) "all slots consistent" true !ok;
      Alcotest.(check bool) "no UTLB interrupts" true
        (let total = ref 0 in
         for node = 0 to nodes - 1 do
           total :=
             !total + (Cluster.utlb_report cluster ~node).Utlb.Report.interrupts
         done;
         !total = 0))

let test_bounds () =
  with_svm (fun _ svm ->
      let h0 = Svm.handle svm ~node:0 in
      Alcotest.check_raises "page range" (Invalid_argument "Svm: page out of range")
        (fun () -> ignore (Svm.read h0 ~page:99 ~off:0 ~len:1));
      Alcotest.check_raises "cross page"
        (Invalid_argument "Svm: access must stay within one page") (fun () ->
          ignore (Svm.read h0 ~page:0 ~off:4090 ~len:10)))

let suite =
  [
    Alcotest.test_case "homes round robin" `Quick test_homes_round_robin;
    Alcotest.test_case "home read no fault" `Quick test_read_own_home_no_fault;
    Alcotest.test_case "remote read faults once" `Quick test_remote_read_faults_once;
    Alcotest.test_case "write visible after barrier" `Quick
      test_write_read_through_barrier;
    Alcotest.test_case "multiple-writer merge" `Quick test_multiple_writer_merge;
    Alcotest.test_case "diffs are sparse" `Quick test_diffs_are_sparse;
    Alcotest.test_case "home write + acquire" `Quick
      test_home_write_visible_after_invalidate;
    Alcotest.test_case "acquire with dirty flushes first" `Quick
      test_acquire_with_dirty_flushes;
    Alcotest.test_case "twin accounting" `Quick test_twin_accounting;
    Alcotest.test_case "64-page stress" `Slow test_many_pages_stress;
    Alcotest.test_case "bounds" `Quick test_bounds;
  ]
