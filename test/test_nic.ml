(* Tests for the NIC device model: SRAM, I/O bus, DMA, interrupts,
   command rings, and the MCP firmware loop. *)

open Utlb_nic
module Time = Utlb_sim.Time
module Engine = Utlb_sim.Engine

let test_sram_regions () =
  let sram = Sram.create ~bytes:1024 () in
  let a = Sram.alloc sram ~name:"a" ~length:256 in
  let b = Sram.alloc sram ~name:"b" ~length:256 in
  Alcotest.(check int) "allocated" 512 (Sram.allocated sram);
  Alcotest.(check int) "available" 512 (Sram.available sram);
  Alcotest.(check bool) "disjoint" true (b.Sram.offset >= a.Sram.offset + 256);
  Alcotest.(check bool) "lookup" true (Sram.region sram "a" <> None);
  Alcotest.(check int) "two regions" 2 (List.length (Sram.regions sram))

let test_sram_exhaustion () =
  let sram = Sram.create ~bytes:128 () in
  ignore (Sram.alloc sram ~name:"x" ~length:100);
  (try
     ignore (Sram.alloc sram ~name:"y" ~length:100);
     Alcotest.fail "expected exhaustion"
   with Invalid_argument _ -> ());
  Alcotest.check_raises "duplicate name"
    (Invalid_argument "Sram.alloc: duplicate region name") (fun () ->
      ignore (Sram.alloc sram ~name:"x" ~length:8))

let test_sram_words () =
  let sram = Sram.create ~bytes:256 () in
  let r = Sram.alloc sram ~name:"w" ~length:64 in
  Sram.write_word sram r 0 42L;
  Sram.write_word sram r 7 (-1L);
  Alcotest.(check int64) "word 0" 42L (Sram.read_word sram r 0);
  Alcotest.(check int64) "word 7" (-1L) (Sram.read_word sram r 7);
  Alcotest.check_raises "oob" (Invalid_argument "Sram: word index out of region bounds")
    (fun () -> ignore (Sram.read_word sram r 8))

let test_sram_bytes () =
  let sram = Sram.create ~bytes:256 () in
  let r = Sram.alloc sram ~name:"b" ~length:32 in
  Sram.write_bytes sram r ~off:4 (Bytes.of_string "hello");
  Alcotest.(check string) "roundtrip" "hello"
    (Bytes.to_string (Sram.read_bytes sram r ~off:4 ~len:5))

let test_bus_costs () =
  let e = Engine.create () in
  let bus = Io_bus.create e in
  (* Paper Table 2 anchors. *)
  Alcotest.(check (float 1e-6)) "1 entry" 1.5
    (Time.to_us (Io_bus.entry_fetch_cost bus ~entries:1));
  Alcotest.(check (float 1e-6)) "32 entries" 2.5
    (Time.to_us (Io_bus.entry_fetch_cost bus ~entries:32));
  (* Bulk: setup + bytes/bandwidth. 127 MB/s -> 4096 B = 32.25 us + 1. *)
  let d = Time.to_us (Io_bus.data_cost bus ~bytes:4096) in
  Alcotest.(check bool) "4KB cost plausible" true (d > 30.0 && d < 36.0)

let test_bus_serialises () =
  let e = Engine.create () in
  let bus = Io_bus.create e in
  let log = ref [] in
  Io_bus.submit bus ~cost:(Time.of_us 10.0) (fun () ->
      log := ("a", Time.to_us (Engine.now e)) :: !log);
  Io_bus.submit bus ~cost:(Time.of_us 5.0) (fun () ->
      log := ("b", Time.to_us (Engine.now e)) :: !log);
  Engine.run e;
  match List.rev !log with
  | [ ("a", ta); ("b", tb) ] ->
    Alcotest.(check (float 1e-6)) "first at 10" 10.0 ta;
    Alcotest.(check (float 1e-6)) "second queued behind" 15.0 tb
  | _ -> Alcotest.fail "wrong completion order"

let test_dma_entries () =
  let e = Engine.create () in
  let dma = Dma.create (Io_bus.create e) in
  let got = ref [||] in
  Dma.fetch_entries dma ~count:4 ~on_done:(fun a -> got := a)
    ~read:(fun i -> Int64.of_int (i * 10));
  Engine.run e;
  Alcotest.(check (array int64)) "entries" [| 0L; 10L; 20L; 30L |] !got;
  Alcotest.(check int) "counted" 1 (Dma.entry_transfers dma)

let test_dma_data_roundtrip () =
  let e = Engine.create () in
  let dma = Dma.create (Io_bus.create e) in
  let payload = Bytes.of_string "payload-bytes" in
  let up = ref Bytes.empty and down = ref Bytes.empty in
  Dma.host_to_nic dma ~src:(fun () -> payload) ~len:(Bytes.length payload)
    ~on_done:(fun b ->
      up := b;
      Dma.nic_to_host dma ~data:b ~on_done:(fun b -> down := b));
  Engine.run e;
  Alcotest.(check bytes) "up" payload !up;
  Alcotest.(check bytes) "down" payload !down;
  Alcotest.(check int) "bytes moved" (2 * Bytes.length payload)
    (Dma.bytes_moved dma)

let test_interrupt_dispatch_cost () =
  let e = Engine.create () in
  let irq = Interrupt.create ~dispatch_us:10.0 e in
  let fired_at = ref (-1.0) in
  Interrupt.set_handler irq (fun ~payload ->
      Alcotest.(check int) "payload" 99 payload;
      fired_at := Time.to_us (Engine.now e));
  Alcotest.(check bool) "delivered" true
    (Interrupt.raise_irq irq ~payload:99 = Interrupt.Delivered);
  Engine.run e;
  Alcotest.(check (float 1e-6)) "10us dispatch" 10.0 !fired_at;
  Alcotest.(check int) "counted" 1 (Interrupt.raised irq)

let test_interrupt_queueing () =
  let e = Engine.create () in
  let irq = Interrupt.create ~dispatch_us:10.0 e in
  let times = ref [] in
  Interrupt.set_handler irq (fun ~payload:_ ->
      times := Time.to_us (Engine.now e) :: !times);
  ignore (Interrupt.raise_irq irq ~payload:1);
  ignore (Interrupt.raise_irq irq ~payload:2);
  Engine.run e;
  Alcotest.(check (list (float 1e-6))) "serialised" [ 10.0; 20.0 ]
    (List.rev !times)

let test_interrupt_no_handler () =
  (* Regression: an interrupt raised with no handler installed used to
     be a hard crash. It is now a counted Dropped result, so a fault
     campaign that fires interrupts early cannot abort the run. *)
  let e = Engine.create () in
  let irq = Interrupt.create e in
  Alcotest.(check bool) "dropped result" true
    (Interrupt.raise_irq irq ~payload:0 = Interrupt.Dropped);
  Alcotest.(check bool) "second drop too" true
    (Interrupt.raise_irq irq ~payload:1 = Interrupt.Dropped);
  Alcotest.(check int) "drops counted" 2 (Interrupt.dropped irq);
  Alcotest.(check int) "nothing raised" 0 (Interrupt.raised irq);
  Engine.run e;
  (* A handler installed later still works. *)
  let got = ref (-1) in
  Interrupt.set_handler irq (fun ~payload -> got := payload);
  ignore (Interrupt.raise_irq irq ~payload:7);
  Engine.run e;
  Alcotest.(check int) "later delivery" 7 !got

let test_command_queue_roundtrip () =
  let sram = Sram.create () in
  let q = Command_queue.create sram ~pid:(Utlb_mem.Pid.of_int 3) ~slots:4 in
  let send =
    Command_queue.Send { lvaddr = 0x1234; nbytes = 4096; dest_node = 2; dest_import = 7 }
  in
  let fetch =
    Command_queue.Fetch { lvaddr = 0x9999; nbytes = 100; src_node = 1; src_import = 3 }
  in
  Alcotest.(check bool) "post send" true (Command_queue.post q send);
  Alcotest.(check bool) "post fetch" true (Command_queue.post q fetch);
  Alcotest.(check int) "pending" 2 (Command_queue.pending q);
  (match Command_queue.poll q with
  | Some (Command_queue.Send s) ->
    Alcotest.(check int) "lvaddr survives SRAM" 0x1234 s.lvaddr;
    Alcotest.(check int) "nbytes" 4096 s.nbytes
  | _ -> Alcotest.fail "expected the send first");
  (match Command_queue.poll q with
  | Some (Command_queue.Fetch f) ->
    Alcotest.(check int) "src node" 1 f.src_node
  | _ -> Alcotest.fail "expected the fetch second");
  Alcotest.(check (option reject)) "drained" None
    (Option.map (fun _ -> ()) (Command_queue.poll q))

let test_command_queue_full () =
  let sram = Sram.create () in
  let q = Command_queue.create sram ~pid:(Utlb_mem.Pid.of_int 0) ~slots:2 in
  Alcotest.(check bool) "1" true (Command_queue.post q Command_queue.Noop);
  Alcotest.(check bool) "2" true (Command_queue.post q Command_queue.Noop);
  Alcotest.(check bool) "full" false (Command_queue.post q Command_queue.Noop);
  ignore (Command_queue.poll q);
  Alcotest.(check bool) "room again" true (Command_queue.post q Command_queue.Noop)

let test_mcp_round_robin () =
  let e = Engine.create () in
  let nic = Nic.create ~node:0 e in
  let q0 = Nic.new_command_queue nic ~pid:(Utlb_mem.Pid.of_int 0) ~slots:8 in
  let q1 = Nic.new_command_queue nic ~pid:(Utlb_mem.Pid.of_int 1) ~slots:8 in
  let served = ref [] in
  Mcp.set_handler (Nic.mcp nic) (fun ~pid _cmd ->
      served := Utlb_mem.Pid.to_int pid :: !served);
  for _ = 1 to 3 do
    ignore (Command_queue.post q0 Command_queue.Noop);
    ignore (Command_queue.post q1 Command_queue.Noop)
  done;
  Mcp.kick (Nic.mcp nic);
  Engine.run e;
  Alcotest.(check int) "all served" 6 (List.length !served);
  Alcotest.(check int) "processed counter" 6
    (Mcp.commands_processed (Nic.mcp nic));
  (* Round-robin must interleave, not drain one ring first. *)
  let first_two = List.rev !served |> fun l -> [ List.nth l 0; List.nth l 1 ] in
  Alcotest.(check (list int)) "interleaved" [ 0; 1 ] first_two

let test_mcp_kick_idempotent () =
  let e = Engine.create () in
  let nic = Nic.create ~node:0 e in
  let q = Nic.new_command_queue nic ~pid:(Utlb_mem.Pid.of_int 0) ~slots:4 in
  let count = ref 0 in
  Mcp.set_handler (Nic.mcp nic) (fun ~pid:_ _ -> incr count);
  ignore (Command_queue.post q Command_queue.Noop);
  Mcp.kick (Nic.mcp nic);
  Mcp.kick (Nic.mcp nic);
  Mcp.kick (Nic.mcp nic);
  Engine.run e;
  Alcotest.(check int) "command handled once" 1 !count

let suite =
  [
    Alcotest.test_case "sram regions" `Quick test_sram_regions;
    Alcotest.test_case "sram exhaustion" `Quick test_sram_exhaustion;
    Alcotest.test_case "sram words" `Quick test_sram_words;
    Alcotest.test_case "sram bytes" `Quick test_sram_bytes;
    Alcotest.test_case "bus costs" `Quick test_bus_costs;
    Alcotest.test_case "bus serialises" `Quick test_bus_serialises;
    Alcotest.test_case "dma entry fetch" `Quick test_dma_entries;
    Alcotest.test_case "dma data roundtrip" `Quick test_dma_data_roundtrip;
    Alcotest.test_case "interrupt dispatch cost" `Quick test_interrupt_dispatch_cost;
    Alcotest.test_case "interrupt queueing" `Quick test_interrupt_queueing;
    Alcotest.test_case "interrupt without handler" `Quick test_interrupt_no_handler;
    Alcotest.test_case "command queue roundtrip" `Quick test_command_queue_roundtrip;
    Alcotest.test_case "command queue full" `Quick test_command_queue_full;
    Alcotest.test_case "mcp round robin" `Quick test_mcp_round_robin;
    Alcotest.test_case "mcp kick idempotent" `Quick test_mcp_kick_idempotent;
  ]
