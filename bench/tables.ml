(* Reproduction of every table and figure in the paper's evaluation.

   Each [table_N]/[figure_N] function prints the same rows/series the
   paper reports, computed from the trace-driven simulator and the cost
   model. Absolute times come from the paper's measured constants
   (Table 1/2 micro-benchmarks); miss rates and pin/unpin counts come
   from simulation of the calibrated synthetic workloads. *)

module Workloads = Utlb_trace.Workloads
module Trace = Utlb_trace.Trace
open Utlb

let seed = 42L

let sizes = [ 1024; 2048; 4096; 8192; 16384 ]

let entry_counts = [ 1; 2; 4; 8; 16; 32 ]

let model = Cost_model.default

(* Traces are expensive to generate; build each once. *)
let trace_cache : (string, Trace.t) Hashtbl.t = Hashtbl.create 8

let trace_of (spec : Workloads.spec) =
  match Hashtbl.find_opt trace_cache spec.name with
  | Some t -> t
  | None ->
    let t = spec.generate ~seed in
    Hashtbl.replace trace_cache spec.name t;
    t

let run_utlb ?(prefetch = 1) ?(prepin = 1) ?(policy = Replacement.Lru)
    ?memory_limit ~entries ~assoc spec =
  let config =
    {
      Hier_engine.cache = { Ni_cache.entries; associativity = assoc };
      prefetch;
      prepin;
      policy;
      memory_limit_pages = memory_limit;
    }
  in
  Sim_driver.run ~seed ~label:spec.Workloads.name (Sim_driver.Utlb config)
    (trace_of spec)

let run_intr ?memory_limit ~entries spec =
  let config =
    {
      Intr_engine.cache =
        { Ni_cache.entries; associativity = Ni_cache.Direct };
      memory_limit_pages = memory_limit;
    }
  in
  Sim_driver.run ~seed ~label:spec.Workloads.name (Sim_driver.Intr config)
    (trace_of spec)

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let table1 () =
  header "Table 1: UTLB overhead on the host processor (microseconds)";
  Printf.printf "%-12s" "num pages";
  List.iter (fun n -> Printf.printf "%8d" n) entry_counts;
  print_newline ();
  let row name f =
    Printf.printf "%-12s" name;
    List.iter (fun n -> Printf.printf "%8.1f" (f n)) entry_counts;
    print_newline ()
  in
  row "check min" (fun n -> Cost_model.check_min_us model ~pages:n);
  row "check max" (fun n -> Cost_model.check_max_us model ~pages:n);
  row "pin" (fun n -> Cost_model.pin_us model ~pages:n);
  row "unpin" (fun n -> Cost_model.unpin_us model ~pages:n)

let table2 () =
  header
    "Table 2: UTLB overhead on the network interface (hit cost 0.8 us)";
  Printf.printf "%-16s" "num entries";
  List.iter (fun n -> Printf.printf "%8d" n) entry_counts;
  print_newline ();
  let row name f =
    Printf.printf "%-16s" name;
    List.iter (fun n -> Printf.printf "%8.1f" (f n)) entry_counts;
    print_newline ()
  in
  row "DMA cost (us)" (fun n -> Cost_model.dma_us model ~entries:n);
  row "total miss (us)" (fun n -> Cost_model.ni_miss_us model ~entries:n)

let table3 () =
  header "Table 3: application problem size, footprint, lookups (per node)";
  Printf.printf "%-12s %-18s %12s %12s %12s %12s\n" "application"
    "problem size" "footprint" "(paper)" "lookups" "(paper)";
  List.iter
    (fun (spec : Workloads.spec) ->
      let trace = trace_of spec in
      Printf.printf "%-12s %-18s %12d %12d %12d %12d\n" spec.name
        spec.problem_size
        (Trace.footprint_pages trace)
        spec.table3_footprint (Trace.length trace) spec.table3_lookups)
    Workloads.all

let mechanism_rows ~memory_limit () =
  Printf.printf "%-8s %-14s" "cache" "metric";
  List.iter
    (fun (spec : Workloads.spec) ->
      Printf.printf "  %5s/U %5s/I" (String.sub spec.name 0 (min 5 (String.length spec.name)))
        (String.sub spec.name 0 (min 5 (String.length spec.name))))
    Workloads.all;
  print_newline ();
  List.iter
    (fun entries ->
      let pairs =
        List.map
          (fun spec ->
            ( run_utlb ?memory_limit ~entries ~assoc:Ni_cache.Direct spec,
              run_intr ?memory_limit ~entries spec ))
          Workloads.all
      in
      let row name ~u ~i =
        Printf.printf "%-8s %-14s"
          (Printf.sprintf "%dK" (entries / 1024))
          name;
        List.iter
          (fun (ur, ir) -> Printf.printf "  %7.2f %7.2f" (u ur) (i ir))
          pairs;
        print_newline ()
      in
      row "check misses" ~u:Report.check_miss_rate ~i:(fun _ -> 0.0);
      row "NI misses" ~u:Report.ni_miss_rate ~i:Report.ni_miss_rate;
      row "unpins" ~u:Report.unpin_rate ~i:Report.unpin_rate)
    sizes

let table4 () =
  header
    "Table 4: UTLB vs Intr translation overhead per lookup \
     (infinite host memory, direct-mapped with offsetting, no prefetch)";
  mechanism_rows ~memory_limit:None ()

let table5 () =
  header
    "Table 5: UTLB vs Intr translation overhead per lookup \
     (4 MB per-process memory limit)";
  mechanism_rows ~memory_limit:(Some 1024) ()

let table6 () =
  header
    "Table 6: average lookup cost in microseconds (infinite host memory)";
  let apps = [ Workloads.barnes; Workloads.fft ] in
  Printf.printf "%-8s" "cache";
  List.iter
    (fun (s : Workloads.spec) ->
      Printf.printf " %9s/UTLB %9s/Intr" s.name s.name)
    apps;
  print_newline ();
  List.iter
    (fun entries ->
      Printf.printf "%-8s" (Printf.sprintf "%dK" (entries / 1024));
      List.iter
        (fun spec ->
          let u = run_utlb ~entries ~assoc:Ni_cache.Direct spec in
          let i = run_intr ~entries spec in
          Printf.printf " %14.1f %14.1f"
            (Report.utlb_cost_us model u)
            (Report.intr_cost_us model i))
        apps;
      print_newline ())
    [ 1024; 4096; 16384 ]

let table7 () =
  header
    "Table 7: amortized pin/unpin cost per lookup (us), prepin 1 vs 16 \
     pages, 16 MB per-process limit";
  let apps =
    [ Workloads.barnes; Workloads.radix; Workloads.raytrace; Workloads.water;
      Workloads.fft; Workloads.lu ]
  in
  Printf.printf "%-8s %-6s" "cost" "pages";
  List.iter (fun (s : Workloads.spec) -> Printf.printf "%10s" s.name) apps;
  print_newline ();
  let reports prepin =
    List.map
      (fun spec ->
        run_utlb ~prepin ~memory_limit:4096 ~entries:8192
          ~assoc:Ni_cache.Direct spec)
      apps
  in
  let one = reports 1 and sixteen = reports 16 in
  let row name pages f rs =
    Printf.printf "%-8s %-6d" name pages;
    List.iter (fun r -> Printf.printf "%10.1f" (f r)) rs;
    print_newline ()
  in
  row "pin" 1 (Report.amortized_pin_us model) one;
  row "pin" 16 (Report.amortized_pin_us model) sixteen;
  row "unpin" 1 (Report.amortized_unpin_us model) one;
  row "unpin" 16 (Report.amortized_unpin_us model) sixteen

let table8 () =
  header
    "Table 8: overall miss rates in the Shared UTLB-Cache vs cache size \
     and associativity (infinite host memory, no prefetch)";
  let assocs =
    [ Ni_cache.Direct; Ni_cache.Two_way; Ni_cache.Four_way;
      Ni_cache.Direct_nohash ]
  in
  Printf.printf "%-8s %-14s" "cache" "assoc";
  List.iter
    (fun (s : Workloads.spec) -> Printf.printf "%10s" s.name)
    Workloads.all;
  print_newline ();
  List.iter
    (fun entries ->
      List.iter
        (fun assoc ->
          Printf.printf "%-8s %-14s"
            (Printf.sprintf "%dK" (entries / 1024))
            (Ni_cache.associativity_name assoc);
          List.iter
            (fun spec ->
              let r = run_utlb ~entries ~assoc spec in
              Printf.printf "%10.2f" (Report.ni_miss_rate r))
            Workloads.all;
          print_newline ())
        assocs)
    sizes

let figure7 () =
  header
    "Figure 7: breakdown of translation cache miss rates (%) into \
     compulsory/capacity/conflict (infinite host memory, direct-mapped, \
     no prefetch)";
  Printf.printf "%-12s %-8s %12s %12s %12s %12s\n" "application" "cache"
    "total%" "compulsory%" "capacity%" "conflict%";
  List.iter
    (fun (spec : Workloads.spec) ->
      List.iter
        (fun entries ->
          let r = run_utlb ~entries ~assoc:Ni_cache.Direct spec in
          let comp, cap, conf = Report.miss_breakdown r in
          Printf.printf "%-12s %-8s %12.1f %12.1f %12.1f %12.1f\n" spec.name
            (Printf.sprintf "%dK" (entries / 1024))
            (100.0 *. Report.ni_miss_rate r)
            (100.0 *. comp) (100.0 *. cap) (100.0 *. conf))
        [ 1024; 4096; 8192; 16384 ])
    Workloads.all

let figure8 () =
  header
    "Figure 8: prefetching effect in the translation cache (RADIX, \
     infinite host memory, direct-mapped; prefetch coupled with \
     sequential pre-pinning)";
  let prefetches = [ 1; 4; 8; 12; 16; 20; 24; 28; 32 ] in
  Printf.printf "%-10s" "entries";
  List.iter (fun p -> Printf.printf "%8d" p) prefetches;
  print_newline ();
  List.iter
    (fun entries ->
      Printf.printf "%-10s"
        (Printf.sprintf "%dK miss" (entries / 1024));
      let reports =
        List.map
          (fun p ->
            ( p,
              run_utlb ~prefetch:p ~prepin:p ~entries ~assoc:Ni_cache.Direct
                Workloads.radix ))
          prefetches
      in
      List.iter
        (fun (_, r) -> Printf.printf "%8.2f" (Report.ni_miss_rate r))
        reports;
      print_newline ();
      Printf.printf "%-10s" (Printf.sprintf "%dK cost" (entries / 1024));
      List.iter
        (fun (p, r) ->
          Printf.printf "%8.1f" (Report.utlb_cost_us ~prefetch:p model r))
        reports;
      print_newline ())
    sizes

(* Ablation beyond the paper's tables: the five user-level replacement
   policies under a tight memory limit (Section 3.4 offers them; the
   paper's study only used LRU — this quantifies the choice). *)
let ablation_policies () =
  header
    "Ablation: replacement policy vs pin/unpin traffic (4 MB limit, 8K \
     direct-mapped cache)";
  Printf.printf "%-12s" "application";
  List.iter
    (fun p -> Printf.printf "%18s" (Replacement.policy_name p))
    Replacement.all_policies;
  print_newline ();
  List.iter
    (fun (spec : Workloads.spec) ->
      Printf.printf "%-12s" spec.name;
      List.iter
        (fun policy ->
          let r =
            run_utlb ~policy ~memory_limit:1024 ~entries:8192
              ~assoc:Ni_cache.Direct spec
          in
          Printf.printf "%11.2f/%.2f" (Report.check_miss_rate r)
            (Report.unpin_rate r))
        Replacement.all_policies;
      print_newline ())
    Workloads.all;
  Printf.printf "(each cell: check-miss rate / unpin rate per lookup)\n"

(* Extension experiment: the comparison the paper could not run
   (Section 7, limitation 2) — Per-process UTLB tables vs the Shared
   UTLB-Cache under the same NI SRAM budget. *)
let ablation_per_process () =
  header
    "Ablation: Per-process UTLB vs Shared UTLB-Cache at equal SRAM budget \
     (8K entries total, 5 processes, infinite host memory)";
  Printf.printf "%-12s %12s %12s %12s %12s %12s\n" "application"
    "pp check" "pp unpins" "sh check" "sh unpins" "sh NI miss";
  List.iter
    (fun (spec : Workloads.spec) ->
      let pp =
        Sim_driver.run ~seed ~label:spec.Workloads.name
          (Sim_driver.Per_process Pp_engine.default_config)
          (trace_of spec)
      in
      let shared = run_utlb ~entries:8192 ~assoc:Ni_cache.Direct spec in
      Printf.printf "%-12s %12.3f %12.3f %12.3f %12.3f %12.3f\n"
        spec.Workloads.name (Report.check_miss_rate pp) (Report.unpin_rate pp)
        (Report.check_miss_rate shared)
        (Report.unpin_rate shared)
        (Report.ni_miss_rate shared))
    Workloads.all;
  Printf.printf
    "(pp = per-process tables of %d entries each; sh = shared 8K cache.\n\
     \ Per-process tables force unpins whenever a process's footprint\n\
     \ exceeds its static share; the shared cache never unpins.)\n"
    (Pp_engine.default_config.Pp_engine.sram_budget_entries
    / Pp_engine.default_config.Pp_engine.processes)

(* Extension experiment: end-to-end VMMC latency through the full
   simulated stack, cold (first use of the buffers: pinning + NI cache
   fills on both sides) vs warm (the UTLB fast path the paper's 0.9 us
   translation cost enables). *)
let e2e_latency () =
  header
    "End-to-end VMMC remote-store latency (simulated), cold vs warm UTLB";
  let module Cluster = Utlb_vmmc.Cluster in
  Printf.printf "%-10s %14s %14s %14s\n" "size" "cold (us)" "warm (us)"
    "cold/warm";
  List.iter
    (fun size ->
      let cluster = Cluster.create () in
      let a = Cluster.spawn cluster ~node:0 in
      let b = Cluster.spawn cluster ~node:1 in
      let export_id, key =
        Cluster.Process.export b ~vaddr:0x100000 ~len:(max size 4096)
      in
      let h = Cluster.Process.import a ~node:1 ~export_id ~key in
      Cluster.Process.write_memory a ~vaddr:0x200000 (Bytes.create size);
      let measure () =
        let t0 = Cluster.now_us cluster in
        let done_at = ref t0 in
        Cluster.Process.send a h ~lvaddr:0x200000 ~offset:0 ~len:size
          ~on_complete:(fun () -> done_at := Cluster.now_us cluster);
        Cluster.run cluster;
        !done_at -. t0
      in
      let cold = measure () in
      (* Pins and cache entries now exist on both sides. *)
      let warm = measure () in
      let warm2 = measure () in
      let warm = Float.min warm warm2 in
      Printf.printf "%-10s %14.1f %14.1f %14.2f\n"
        (if size >= 4096 then Printf.sprintf "%dKB" (size / 1024)
         else Printf.sprintf "%dB" size)
        cold warm (cold /. warm))
    [ 64; 512; 4096; 16384; 65536 ]

(* Extension experiment: replay a calibrated workload trace through the
   full VMMC stack (NIC firmware, DMA, fabric, reliable channels) under
   both translation mechanisms, and compare whole-run communication
   time — the end-to-end version of Table 6. *)
let online_replay () =
  header
    "Online trace replay through VMMC: UTLB vs interrupt-based NI \
     (1K-entry caches, first 3000 records per workload)";
  let module Cluster = Utlb_vmmc.Cluster in
  let cache = { Ni_cache.entries = 1024; associativity = Ni_cache.Direct } in
  let mechanisms =
    [
      ( "utlb",
        Cluster.Utlb_translation { Hier_engine.default_config with cache } );
      ( "intr",
        Cluster.Intr_translation
          { Intr_engine.cache; memory_limit_pages = None } );
    ]
  in
  Printf.printf "%-10s %-6s %12s %12s %12s %12s\n" "app" "mech" "sim ms"
    "interrupts" "pins" "NI misses";
  List.iter
    (fun (spec : Workloads.spec) ->
      let records = Utlb_trace.Trace.records (trace_of spec) in
      let n = min 3000 (Array.length records) in
      List.iter
        (fun (name, translation) ->
          let cluster =
            Cluster.create
              ~config:{ Cluster.default_config with translation }
              ()
          in
          (* Five sender processes on node 0 (the traced node); one
             receiver per remote node exporting a 16 MB window. *)
          let senders = Array.init 5 (fun _ -> Cluster.spawn cluster ~node:0) in
          let window_pages = 4096 in
          let imports =
            Array.init 3 (fun i ->
                let receiver = Cluster.spawn cluster ~node:(i + 1) in
                let export_id, key =
                  Cluster.Process.export receiver ~vaddr:0x2000000
                    ~len:(window_pages * 4096)
                in
                Array.map
                  (fun sender ->
                    Cluster.Process.import sender ~node:(i + 1) ~export_id ~key)
                  senders)
          in
          Cluster.run cluster;
          let start = Cluster.now_us cluster in
          for k = 0 to n - 1 do
            let r = records.(k) in
            let sender = senders.(Utlb_mem.Pid.to_int r.Utlb_trace.Record.pid) in
            let vpn = r.Utlb_trace.Record.vpn in
            let len = r.Utlb_trace.Record.npages * 4096 in
            let dest = vpn mod 3 in
            let offset = vpn mod (window_pages - 8) * 4096 in
            let import = imports.(dest).(Utlb_mem.Pid.to_int r.Utlb_trace.Record.pid) in
            (match r.Utlb_trace.Record.op with
            | Utlb_trace.Record.Send ->
              Cluster.Process.send sender import ~lvaddr:(vpn * 4096) ~offset
                ~len
            | Utlb_trace.Record.Fetch ->
              Cluster.Process.fetch sender import ~offset ~len
                ~lvaddr:(vpn * 4096));
            (* Sequential replay: drain between operations so both
               mechanisms see identical queueing. *)
            Cluster.run cluster
          done;
          let elapsed_ms = (Cluster.now_us cluster -. start) /. 1000.0 in
          let interrupts = ref 0 and pins = ref 0 and misses = ref 0 in
          for node = 0 to 3 do
            let r = Cluster.utlb_report cluster ~node in
            interrupts := !interrupts + r.Report.interrupts;
            pins := !pins + r.Report.pin_calls;
            misses := !misses + r.Report.ni_page_misses
          done;
          Printf.printf "%-10s %-6s %12.1f %12d %12d %12d\n"
            spec.Workloads.name name elapsed_ms !interrupts !pins !misses)
        mechanisms)
    [ Workloads.water; Workloads.volrend ]

(* Extension experiment: sensitivity of the Table 4 behaviour to
   problem size. The UTLB claim — robust performance at small cache
   sizes — should hold as footprints grow past Table 3. *)
let scaling () =
  header
    "Scaling: miss rates vs problem-size factor (8K-entry direct cache,      infinite host memory)";
  Printf.printf "%-10s %-8s %12s %12s %12s %12s\n" "app" "factor"
    "footprint" "check" "NI miss" "intr unpins";
  List.iter
    (fun base ->
      List.iter
        (fun factor ->
          let spec = Workloads.scaled base ~factor in
          let trace = spec.Workloads.generate ~seed in
          let utlb =
            Sim_driver.run ~seed ~label:spec.Workloads.name
              (Sim_driver.Utlb
                 {
                   Hier_engine.default_config with
                   cache =
                     { Ni_cache.entries = 8192; associativity = Ni_cache.Direct };
                 })
              trace
          in
          let intr =
            Sim_driver.run ~seed ~label:spec.Workloads.name
              (Sim_driver.Intr
                 {
                   Intr_engine.cache =
                     { Ni_cache.entries = 8192; associativity = Ni_cache.Direct };
                   memory_limit_pages = None;
                 })
              trace
          in
          Printf.printf "%-10s %-8.2f %12d %12.3f %12.3f %12.3f\n"
            base.Workloads.name factor
            (Utlb_trace.Trace.footprint_pages trace)
            (Report.check_miss_rate utlb)
            (Report.ni_miss_rate utlb) (Report.unpin_rate intr))
        [ 0.5; 1.0; 2.0; 4.0 ])
    [ Workloads.water; Workloads.fft ]

(* Extension experiment: collective-operation cost vs topology. The
   same binomial/dissemination patterns cost more over a switch chain
   than over one crossbar — quantified end to end. *)
let collectives () =
  header "Collectives: simulated completion time (us) by topology";
  let module Cluster = Utlb_vmmc.Cluster in
  let module Msg = Utlb_msg.Msg in
  let module Collective = Utlb_msg.Collective in
  Printf.printf "%-22s %12s %12s %12s %12s\n" "topology" "bcast 4KB"
    "barrier" "reduce 8B" "alltoall 1KB";
  List.iter
    (fun (name, topology, members) ->
      let config = { Cluster.default_config with topology } in
      let cluster = Cluster.create ~config () in
      let endpoints =
        Array.init members (fun i ->
            Msg.create cluster ~node:(i mod Cluster.node_count cluster) ())
      in
      let g = Collective.group endpoints in
      let timed f =
        let t0 = Cluster.now_us cluster in
        f ();
        Cluster.now_us cluster -. t0
      in
      let bcast =
        timed (fun () ->
            ignore (Collective.broadcast g ~root:0 (Bytes.create 4096)))
      in
      let barrier = timed (fun () -> Collective.barrier g) in
      let reduce =
        timed (fun () ->
            ignore
              (Collective.reduce g ~root:0 ~combine:(fun a _ -> a)
                 (Array.make members (Bytes.create 8))))
      in
      let a2a =
        timed (fun () ->
            ignore
              (Collective.all_to_all g
                 (Array.init members (fun _ ->
                      Array.init members (fun _ -> Bytes.create 1024)))))
      in
      Printf.printf "%-22s %12.1f %12.1f %12.1f %12.1f\n" name bcast barrier
        reduce a2a)
    [
      ("star-4 (4 ranks)", Cluster.Star 4, 4);
      ( "chain-4x2 (8 ranks)",
        Cluster.Chain { switches = 4; hosts_per_switch = 2 },
        8 );
    ]

(* Extension experiment: true multiprogramming — independent
   applications sharing one NI, the behaviour Section 7 says the
   paper's traces could not capture. Compares each application's miss
   rates alone vs in a mix, and the benefit of index offsetting. *)
let ablation_multiprogramming () =
  header
    "Ablation: independent applications timesharing one NI (8K-entry      cache, infinite host memory)";
  let mix =
    Workloads.multiprogram [ Workloads.water; Workloads.volrend; Workloads.barnes ]
  in
  let run ~assoc spec =
    let config =
      {
        Hier_engine.default_config with
        cache = { Ni_cache.entries = 8192; associativity = assoc };
      }
    in
    Sim_driver.run_workload ~seed (Sim_driver.Utlb config) spec
  in
  Printf.printf "%-22s %10s %10s %12s\n" "workload" "check" "NI miss"
    "NI (nohash)";
  List.iter
    (fun spec ->
      let direct = run ~assoc:Ni_cache.Direct spec in
      let nohash = run ~assoc:Ni_cache.Direct_nohash spec in
      Printf.printf "%-22s %10.3f %10.3f %12.3f\n" spec.Workloads.name
        (Report.check_miss_rate direct)
        (Report.ni_miss_rate direct)
        (Report.ni_miss_rate nohash))
    [ Workloads.water; Workloads.volrend; Workloads.barnes; mix ];
  Printf.printf
    "(the mix runs 15 processes against one cache: check misses are \
     unchanged while shared-cache contention raises NI misses — and \
     offsetting matters even more than with one application)\n"

let all_named =
  [
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("table4", table4);
    ("table5", table5);
    ("table6", table6);
    ("table7", table7);
    ("table8", table8);
    ("figure7", figure7);
    ("figure8", figure8);
    ("ablation", ablation_policies);
    ("ablation-pp", ablation_per_process);
    ("e2e", e2e_latency);
    ("online", online_replay);
    ("scaling", scaling);
    ("collectives", collectives);
    ("ablation-multi", ablation_multiprogramming);
  ]
