(* Reproduction of every table and figure in the paper's evaluation.

   Each [table_N]/[figure_N] function prints the same rows/series the
   paper reports. Tables 1–3 come straight from the cost model and the
   trace generators; every simulated table is a declarative campaign —
   a [Utlb_exp.Grid] of workloads x mechanism points handed to the
   domain-parallel runner and pivoted by [Utlb_exp.Emit.matrix]. The
   parallel fan-out is byte-identical to a serial run, so the printed
   tables are stable however many cores execute them. *)

module Workloads = Utlb_trace.Workloads
module Trace = Utlb_trace.Trace
module Grid = Utlb_exp.Grid
module Runner = Utlb_exp.Runner
module Emit = Utlb_exp.Emit
open Utlb

let seed = 42L

let sizes = [ 1024; 2048; 4096; 8192; 16384 ]

let sizes_s = List.map string_of_int sizes

let entry_counts = [ 1; 2; 4; 8; 16; 32 ]

let model = Cost_model.default

let domains = max 2 (min 8 (Domain.recommended_domain_count ()))

let run_campaign ?(workloads = Workloads.all) name mechanisms =
  Runner.run ~domains { Grid.name; seed; workloads; mechanisms; tenants = None }

(* Pivot accessors shared by the table declarations. *)
let cell (o : Runner.outcome) = o.Runner.cell

let report (o : Runner.outcome) = o.Runner.report

let app o = (cell o).Grid.workload.Workloads.name

let param_of o key = Option.value ~default:"" (Grid.param (cell o) key)

let entries_k o = string_of_int (int_of_string (param_of o "entries") / 1024) ^ "K"

let mech_tag o =
  match (cell o).Grid.mech.Grid.mech_name with
  | "utlb" -> "U"
  | "intr" -> "I"
  | "per-process" -> "P"
  | "victima" -> "V"
  | "utopia" -> "O"
  | m -> m

let check o = Report.check_miss_rate (report o)

let ni o = Report.ni_miss_rate (report o)

let unpins o = Report.unpin_rate (report o)

let cost_us o =
  match (cell o).Grid.mech.Grid.mech_name with
  | "intr" -> Report.intr_cost_us model (report o)
  | mech ->
    let prefetch =
      match Grid.param (cell o) "prefetch" with
      | Some p -> int_of_string p
      | None -> 1
    in
    (match mech with
    | "victima" -> Report.victima_cost_us ~prefetch model (report o)
    | "utopia" -> Report.utopia_cost_us ~prefetch model (report o)
    | _ -> Report.utlb_cost_us ~prefetch model (report o))

let matrix ?fmt ~rows ~cols ~metrics outcomes =
  Emit.matrix ?fmt ~rows ~cols ~metrics Format.std_formatter outcomes

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let table1 () =
  header "Table 1: UTLB overhead on the host processor (microseconds)";
  Printf.printf "%-12s" "num pages";
  List.iter (fun n -> Printf.printf "%8d" n) entry_counts;
  print_newline ();
  let row name f =
    Printf.printf "%-12s" name;
    List.iter (fun n -> Printf.printf "%8.1f" (f n)) entry_counts;
    print_newline ()
  in
  row "check min" (fun n -> Cost_model.check_min_us model ~pages:n);
  row "check max" (fun n -> Cost_model.check_max_us model ~pages:n);
  row "pin" (fun n -> Cost_model.pin_us model ~pages:n);
  row "unpin" (fun n -> Cost_model.unpin_us model ~pages:n)

let table2 () =
  header
    "Table 2: UTLB overhead on the network interface (hit cost 0.8 us)";
  Printf.printf "%-16s" "num entries";
  List.iter (fun n -> Printf.printf "%8d" n) entry_counts;
  print_newline ();
  let row name f =
    Printf.printf "%-16s" name;
    List.iter (fun n -> Printf.printf "%8.1f" (f n)) entry_counts;
    print_newline ()
  in
  row "DMA cost (us)" (fun n -> Cost_model.dma_us model ~entries:n);
  row "total miss (us)" (fun n -> Cost_model.ni_miss_us model ~entries:n)

let table3 () =
  header "Table 3: application problem size, footprint, lookups (per node)";
  Printf.printf "%-12s %-18s %12s %12s %12s %12s\n" "application"
    "problem size" "footprint" "(paper)" "lookups" "(paper)";
  List.iter
    (fun (spec : Workloads.spec) ->
      let trace = spec.generate ~seed in
      Printf.printf "%-12s %-18s %12d %12d %12d %12d\n" spec.name
        spec.problem_size
        (Trace.footprint_pages trace)
        spec.table3_footprint (Trace.length trace) spec.table3_lookups)
    Workloads.all

let mechanism_matrix name extra =
  let outcomes =
    run_campaign name
      (Grid.axes "utlb" (("entries", sizes_s) :: extra)
      @ Grid.axes "intr" (("entries", sizes_s) :: extra))
  in
  matrix ~fmt:(Printf.sprintf "%.2f") ~rows:entries_k
    ~cols:(fun o -> app o ^ "/" ^ mech_tag o)
    ~metrics:
      [ ("check misses", check); ("NI misses", ni); ("unpins", unpins) ]
    outcomes

let table4 () =
  header
    "Table 4: UTLB vs Intr translation overhead per lookup \
     (infinite host memory, direct-mapped with offsetting, no prefetch)";
  mechanism_matrix "table4" []

let table5 () =
  header
    "Table 5: UTLB vs Intr translation overhead per lookup \
     (4 MB per-process memory limit)";
  mechanism_matrix "table5" [ ("limit-mb", [ "4" ]) ]

let table6 () =
  header
    "Table 6: average lookup cost in microseconds (infinite host memory)";
  let entries = [ "1024"; "4096"; "16384" ] in
  let outcomes =
    run_campaign
      ~workloads:[ Workloads.barnes; Workloads.fft ]
      "table6"
      (Grid.axes "utlb" [ ("entries", entries) ]
      @ Grid.axes "intr" [ ("entries", entries) ])
  in
  matrix ~fmt:(Printf.sprintf "%.1f") ~rows:entries_k
    ~cols:(fun o -> app o ^ "/" ^ mech_tag o)
    ~metrics:[ ("cost (us)", cost_us) ]
    outcomes

let table7 () =
  header
    "Table 7: amortized pin/unpin cost per lookup (us), prepin 1 vs 16 \
     pages, 16 MB per-process limit";
  let outcomes =
    run_campaign
      ~workloads:
        [ Workloads.barnes; Workloads.radix; Workloads.raytrace;
          Workloads.water; Workloads.fft; Workloads.lu ]
      "table7"
      (Grid.axes "utlb"
         [ ("prepin", [ "1"; "16" ]); ("entries", [ "8192" ]);
           ("limit-mb", [ "16" ]) ])
  in
  matrix ~fmt:(Printf.sprintf "%.1f")
    ~rows:(fun o -> "prepin " ^ param_of o "prepin")
    ~cols:app
    ~metrics:
      [
        ("pin", fun o -> Report.amortized_pin_us model (report o));
        ("unpin", fun o -> Report.amortized_unpin_us model (report o));
      ]
    outcomes

let table8 () =
  header
    "Table 8: overall miss rates in the Shared UTLB-Cache vs cache size \
     and associativity (infinite host memory, no prefetch)";
  let outcomes =
    run_campaign "table8"
      (Grid.axes "utlb"
         [ ("entries", sizes_s);
           ("assoc", [ "direct"; "2-way"; "4-way"; "direct-nohash" ]) ])
  in
  matrix ~fmt:(Printf.sprintf "%.2f")
    ~rows:(fun o -> entries_k o ^ " " ^ param_of o "assoc")
    ~cols:app
    ~metrics:[ ("NI miss", ni) ]
    outcomes

let figure7 () =
  header
    "Figure 7: breakdown of translation cache miss rates (%) into \
     compulsory/capacity/conflict (infinite host memory, direct-mapped, \
     no prefetch)";
  let outcomes =
    run_campaign "figure7"
      (Grid.axes "utlb"
         [ ("entries", [ "1024"; "4096"; "8192"; "16384" ]) ])
  in
  let breakdown pick o =
    let comp, cap, conf = Report.miss_breakdown (report o) in
    100.0 *. pick (comp, cap, conf)
  in
  matrix ~fmt:(Printf.sprintf "%.1f") ~rows:app ~cols:entries_k
    ~metrics:
      [
        ("total%", fun o -> 100.0 *. ni o);
        ("compulsory%", breakdown (fun (c, _, _) -> c));
        ("capacity%", breakdown (fun (_, c, _) -> c));
        ("conflict%", breakdown (fun (_, _, c) -> c));
      ]
    outcomes

let figure8 () =
  header
    "Figure 8: prefetching effect in the translation cache (RADIX, \
     infinite host memory, direct-mapped; prefetch coupled with \
     sequential pre-pinning)";
  (* Prefetch and prepin move together, so the points are zipped by
     hand rather than crossed by [Grid.axes]. *)
  let prefetches = [ 1; 4; 8; 12; 16; 20; 24; 28; 32 ] in
  let outcomes =
    run_campaign ~workloads:[ Workloads.radix ] "figure8"
      (List.concat_map
         (fun entries ->
           List.map
             (fun p ->
               Grid.mech
                 ~params:
                   [ ("entries", string_of_int entries);
                     ("prefetch", string_of_int p);
                     ("prepin", string_of_int p) ]
                 "utlb")
             prefetches)
         sizes)
  in
  matrix ~fmt:(Printf.sprintf "%.2f") ~rows:entries_k
    ~cols:(fun o -> param_of o "prefetch")
    ~metrics:[ ("NI miss", ni); ("cost (us)", cost_us) ]
    outcomes

(* Ablation beyond the paper's tables: the five user-level replacement
   policies under a tight memory limit (Section 3.4 offers them; the
   paper's study only used LRU — this quantifies the choice). *)
let ablation_policies () =
  header
    "Ablation: replacement policy vs pin/unpin traffic (4 MB limit, 8K \
     direct-mapped cache)";
  let outcomes =
    run_campaign "ablation-policies"
      (Grid.axes "utlb"
         [ ("policy", List.map Replacement.policy_name Replacement.all_policies);
           ("limit-mb", [ "4" ]); ("entries", [ "8192" ]) ])
  in
  matrix ~fmt:(Printf.sprintf "%.2f") ~rows:app
    ~cols:(fun o -> param_of o "policy")
    ~metrics:[ ("check", check); ("unpins", unpins) ]
    outcomes

(* Extension experiment: the comparison the paper could not run
   (Section 7, limitation 2) — Per-process UTLB tables vs the Shared
   UTLB-Cache under the same NI SRAM budget. *)
let ablation_per_process () =
  header
    "Ablation: Per-process UTLB vs Shared UTLB-Cache at equal SRAM budget \
     (8K entries total, 5 processes, infinite host memory)";
  let outcomes =
    run_campaign "ablation-pp"
      [
        Grid.mech "per-process";
        Grid.mech ~params:[ ("entries", "8192") ] "utlb";
      ]
  in
  matrix ~rows:app
    ~cols:(fun o -> Grid.mech_label (cell o).Grid.mech)
    ~metrics:[ ("check", check); ("unpins", unpins); ("NI miss", ni) ]
    outcomes;
  Printf.printf
    "(per-process tables get %d entries each; the shared cache never\n\
     \ unpins, while static shares force unpins whenever a process's\n\
     \ footprint exceeds its slice.)\n"
    (Pp_engine.default_config.Pp_engine.sram_budget_entries
    / Pp_engine.default_config.Pp_engine.processes)

(* Extension experiment: end-to-end VMMC latency through the full
   simulated stack, cold (first use of the buffers: pinning + NI cache
   fills on both sides) vs warm (the UTLB fast path the paper's 0.9 us
   translation cost enables). *)
let e2e_latency () =
  header
    "End-to-end VMMC remote-store latency (simulated), cold vs warm UTLB";
  let module Cluster = Utlb_vmmc.Cluster in
  Printf.printf "%-10s %14s %14s %14s\n" "size" "cold (us)" "warm (us)"
    "cold/warm";
  List.iter
    (fun size ->
      let cluster = Cluster.create () in
      let a = Cluster.spawn cluster ~node:0 in
      let b = Cluster.spawn cluster ~node:1 in
      let export_id, key =
        Cluster.Process.export b ~vaddr:0x100000 ~len:(max size 4096)
      in
      let h = Cluster.Process.import a ~node:1 ~export_id ~key in
      Cluster.Process.write_memory a ~vaddr:0x200000 (Bytes.create size);
      let measure () =
        let t0 = Cluster.now_us cluster in
        let done_at = ref t0 in
        Cluster.Process.send a h ~lvaddr:0x200000 ~offset:0 ~len:size
          ~on_complete:(fun () -> done_at := Cluster.now_us cluster);
        Cluster.run cluster;
        !done_at -. t0
      in
      let cold = measure () in
      (* Pins and cache entries now exist on both sides. *)
      let warm = measure () in
      let warm2 = measure () in
      let warm = Float.min warm warm2 in
      Printf.printf "%-10s %14.1f %14.1f %14.2f\n"
        (if size >= 4096 then Printf.sprintf "%dKB" (size / 1024)
         else Printf.sprintf "%dB" size)
        cold warm (cold /. warm))
    [ 64; 512; 4096; 16384; 65536 ]

(* Extension experiment: replay a calibrated workload trace through the
   full VMMC stack (NIC firmware, DMA, fabric, reliable channels) under
   both translation mechanisms, and compare whole-run communication
   time — the end-to-end version of Table 6. *)
let online_replay () =
  header
    "Online trace replay through VMMC: UTLB vs interrupt-based NI \
     (1K-entry caches, first 3000 records per workload)";
  let module Cluster = Utlb_vmmc.Cluster in
  let cache = { Ni_cache.entries = 1024; associativity = Ni_cache.Direct } in
  let mechanisms =
    [
      ( "utlb",
        Cluster.Utlb_translation { Hier_engine.default_config with cache } );
      ( "intr",
        Cluster.Intr_translation
          { Intr_engine.cache; memory_limit_pages = None } );
    ]
  in
  Printf.printf "%-10s %-6s %12s %12s %12s %12s\n" "app" "mech" "sim ms"
    "interrupts" "pins" "NI misses";
  List.iter
    (fun (spec : Workloads.spec) ->
      let records = Utlb_trace.Trace.records (spec.generate ~seed) in
      let n = min 3000 (Array.length records) in
      List.iter
        (fun (name, translation) ->
          let cluster =
            Cluster.create
              ~config:{ Cluster.default_config with translation }
              ()
          in
          (* Five sender processes on node 0 (the traced node); one
             receiver per remote node exporting a 16 MB window. *)
          let senders = Array.init 5 (fun _ -> Cluster.spawn cluster ~node:0) in
          let window_pages = 4096 in
          let imports =
            Array.init 3 (fun i ->
                let receiver = Cluster.spawn cluster ~node:(i + 1) in
                let export_id, key =
                  Cluster.Process.export receiver ~vaddr:0x2000000
                    ~len:(window_pages * 4096)
                in
                Array.map
                  (fun sender ->
                    Cluster.Process.import sender ~node:(i + 1) ~export_id ~key)
                  senders)
          in
          Cluster.run cluster;
          let start = Cluster.now_us cluster in
          for k = 0 to n - 1 do
            let r = records.(k) in
            let sender = senders.(Utlb_mem.Pid.to_int r.Utlb_trace.Record.pid) in
            let vpn = r.Utlb_trace.Record.vpn in
            let len = r.Utlb_trace.Record.npages * 4096 in
            let dest = vpn mod 3 in
            let offset = vpn mod (window_pages - 8) * 4096 in
            let import = imports.(dest).(Utlb_mem.Pid.to_int r.Utlb_trace.Record.pid) in
            (match r.Utlb_trace.Record.op with
            | Utlb_trace.Record.Send ->
              Cluster.Process.send sender import ~lvaddr:(vpn * 4096) ~offset
                ~len
            | Utlb_trace.Record.Fetch ->
              Cluster.Process.fetch sender import ~offset ~len
                ~lvaddr:(vpn * 4096));
            (* Sequential replay: drain between operations so both
               mechanisms see identical queueing. *)
            Cluster.run cluster
          done;
          let elapsed_ms = (Cluster.now_us cluster -. start) /. 1000.0 in
          let interrupts = ref 0 and pins = ref 0 and misses = ref 0 in
          for node = 0 to 3 do
            let r = Cluster.utlb_report cluster ~node in
            interrupts := !interrupts + r.Report.interrupts;
            pins := !pins + r.Report.pin_calls;
            misses := !misses + r.Report.ni_page_misses
          done;
          Printf.printf "%-10s %-6s %12.1f %12d %12d %12d\n"
            spec.Workloads.name name elapsed_ms !interrupts !pins !misses)
        mechanisms)
    [ Workloads.water; Workloads.volrend ]

(* Extension experiment: sensitivity of the Table 4 behaviour to
   problem size. The UTLB claim — robust performance at small cache
   sizes — should hold as footprints grow past Table 3. *)
let scaling () =
  header
    "Scaling: miss rates vs problem-size factor (8K-entry direct cache, \
     infinite host memory)";
  let scaled_named base factor =
    let s = Workloads.scaled base ~factor in
    Workloads.custom
      ~name:(Printf.sprintf "%s@%g" base.Workloads.name factor)
      ~problem_size:s.Workloads.problem_size
      ~description:s.Workloads.description ~generate:s.Workloads.generate ()
  in
  let workloads =
    List.concat_map
      (fun base ->
        List.map (scaled_named base) [ 0.5; 1.0; 2.0; 4.0 ])
      [ Workloads.water; Workloads.fft ]
  in
  let outcomes =
    run_campaign ~workloads "scaling"
      [
        Grid.mech ~params:[ ("entries", "8192") ] "utlb";
        Grid.mech ~params:[ ("entries", "8192") ] "intr";
      ]
  in
  matrix ~rows:app
    ~cols:(fun o -> mech_tag o)
    ~metrics:[ ("check", check); ("NI miss", ni); ("unpins", unpins) ]
    outcomes

(* Extension experiment: collective-operation cost vs topology. The
   same binomial/dissemination patterns cost more over a switch chain
   than over one crossbar — quantified end to end. *)
let collectives () =
  header "Collectives: simulated completion time (us) by topology";
  let module Cluster = Utlb_vmmc.Cluster in
  let module Msg = Utlb_msg.Msg in
  let module Collective = Utlb_msg.Collective in
  Printf.printf "%-22s %12s %12s %12s %12s\n" "topology" "bcast 4KB"
    "barrier" "reduce 8B" "alltoall 1KB";
  List.iter
    (fun (name, topology, members) ->
      let config = { Cluster.default_config with topology } in
      let cluster = Cluster.create ~config () in
      let endpoints =
        Array.init members (fun i ->
            Msg.create cluster ~node:(i mod Cluster.node_count cluster) ())
      in
      let g = Collective.group endpoints in
      let timed f =
        let t0 = Cluster.now_us cluster in
        f ();
        Cluster.now_us cluster -. t0
      in
      let bcast =
        timed (fun () ->
            ignore (Collective.broadcast g ~root:0 (Bytes.create 4096)))
      in
      let barrier = timed (fun () -> Collective.barrier g) in
      let reduce =
        timed (fun () ->
            ignore
              (Collective.reduce g ~root:0 ~combine:(fun a _ -> a)
                 (Array.make members (Bytes.create 8))))
      in
      let a2a =
        timed (fun () ->
            ignore
              (Collective.all_to_all g
                 (Array.init members (fun _ ->
                      Array.init members (fun _ -> Bytes.create 1024)))))
      in
      Printf.printf "%-22s %12.1f %12.1f %12.1f %12.1f\n" name bcast barrier
        reduce a2a)
    [
      ("star-4 (4 ranks)", Cluster.Star 4, 4);
      ( "chain-4x2 (8 ranks)",
        Cluster.Chain { switches = 4; hosts_per_switch = 2 },
        8 );
    ]

(* Extension experiment: true multiprogramming — independent
   applications sharing one NI, the behaviour Section 7 says the
   paper's traces could not capture. Compares each application's miss
   rates alone vs in a mix, and the benefit of index offsetting. *)
let ablation_multiprogramming () =
  header
    "Ablation: independent applications timesharing one NI (8K-entry \
     cache, infinite host memory)";
  let mix =
    Workloads.multiprogram
      [ Workloads.water; Workloads.volrend; Workloads.barnes ]
  in
  let outcomes =
    run_campaign
      ~workloads:[ Workloads.water; Workloads.volrend; Workloads.barnes; mix ]
      "ablation-multi"
      (Grid.axes "utlb"
         [ ("entries", [ "8192" ]);
           ("assoc", [ "direct"; "direct-nohash" ]) ])
  in
  matrix ~rows:app
    ~cols:(fun o -> param_of o "assoc")
    ~metrics:[ ("check", check); ("NI miss", ni) ]
    outcomes;
  Printf.printf
    "(the mix runs 15 processes against one cache: check misses are \
     unchanged while shared-cache contention raises NI misses — and \
     offsetting matters even more than with one application)\n"

(* Extension experiment: the grids/headtohead.grid campaign as a table —
   the three 1998 designs against the two modern engines (victima's L2
   victim store, utopia's RestSeg zone) over every paper workload at
   the 1K-entry pressure point, where capacity evictions happen. *)
let headtohead () =
  header
    "Head-to-head: 1998 designs vs Victima/Utopia (1K-entry caches, \
     infinite host memory; U=utlb I=intr P=per-process V=victima O=utopia)";
  let outcomes =
    run_campaign "headtohead"
      [
        Grid.mech ~params:[ ("entries", "1024"); ("prefetch", "4") ] "utlb";
        Grid.mech ~params:[ ("entries", "1024") ] "intr";
        Grid.mech ~params:[ ("budget", "4096") ] "per-process";
        Grid.mech
          ~params:
            [ ("entries", "1024"); ("prefetch", "4");
              ("victim-entries", "2048") ]
          "victima";
        Grid.mech
          ~params:
            [ ("entries", "1024"); ("prefetch", "4");
              ("rest-sets", "2048"); ("rest-ways", "4") ]
          "utopia";
      ]
  in
  matrix ~fmt:(Printf.sprintf "%.2f") ~rows:app ~cols:mech_tag
    ~metrics:[ ("NI miss", ni); ("cost (us)", cost_us) ]
    outcomes

let all_named =
  [
    ("table1", table1);
    ("table2", table2);
    ("table3", table3);
    ("table4", table4);
    ("table5", table5);
    ("table6", table6);
    ("table7", table7);
    ("table8", table8);
    ("figure7", figure7);
    ("figure8", figure8);
    ("ablation", ablation_policies);
    ("ablation-pp", ablation_per_process);
    ("e2e", e2e_latency);
    ("online", online_replay);
    ("scaling", scaling);
    ("collectives", collectives);
    ("ablation-multi", ablation_multiprogramming);
    ("headtohead", headtohead);
  ]
