(* Engine throughput micro-benchmark.

   Times the raw simulation rate of the three registered engines over
   the paper's seven calibrated workloads (same seed as the tables):

   - lookups/sec — a plain [Sim_driver.run_packed] replay, no
     observability attached, measuring the translation fast path;
   - events/sec — the same replay with a [Utlb_obs] scope and
     timeline sink attached, measuring the instrumented path by the
     number of events it emits.

   Each measurement is the best of [reps] runs (min wall time), so a
   cold first iteration or a stray scheduler hiccup does not skew the
   rate. Results go to BENCH_6.json (or the path given as the first
   argument) as plain hand-rendered JSON, one object per (engine,
   workload) pair plus a per-engine aggregate:

     dune exec bench/perf.exe              # writes BENCH_6.json
     dune exec bench/perf.exe -- out.json *)

module Driver = Utlb.Sim_driver
module Workloads = Utlb_trace.Workloads
module Scope = Utlb_obs.Scope
module Trace_sink = Utlb_obs.Trace_sink

let reps = 5

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Best-of-[reps] wall time for [f], with the first run's result. *)
let best f =
  let r, t0 = time f in
  let rec go best n = if n = 0 then best else go (min best (snd (time f))) (n - 1) in
  (r, go t0 (reps - 1))

type row = {
  engine : string;
  workload : string;
  lookups : int;
  lookup_s : float;  (** Best plain replay wall time. *)
  events : int;
  event_s : float;  (** Best instrumented replay wall time. *)
}

let rate n s = if s > 0. then float_of_int n /. s else 0.

let bench_pair (entry : Driver.Registry.entry) (spec : Workloads.spec) =
  let trace = spec.Workloads.generate ~seed:Driver.default_seed in
  let packed () = entry.Driver.Registry.of_params [] in
  let report, lookup_s =
    best (fun () -> Driver.run_packed ~label:spec.Workloads.name (packed ()) trace)
  in
  (* A fresh sink per run so [emitted] counts exactly one replay. *)
  let count_events () =
    let sink = Trace_sink.create ~capacity:1024 () in
    let obs = Scope.create ~sink () in
    ignore
      (Driver.run_packed ~label:spec.Workloads.name ~obs (packed ()) trace);
    Trace_sink.emitted sink
  in
  let events, event_s = best count_events in
  {
    engine = entry.Driver.Registry.name;
    workload = spec.Workloads.name;
    lookups = report.Utlb.Report.lookups;
    lookup_s;
    events;
    event_s;
  }

let row_json r =
  Printf.sprintf
    "    { \"engine\": %S, \"workload\": %S, \"lookups\": %d,\n\
    \      \"lookups_per_sec\": %.0f, \"events\": %d, \"events_per_sec\": %.0f }"
    r.engine r.workload r.lookups
    (rate r.lookups r.lookup_s)
    r.events
    (rate r.events r.event_s)

let aggregate_json engine rows =
  let rows = List.filter (fun r -> r.engine = engine) rows in
  let lookups = List.fold_left (fun n r -> n + r.lookups) 0 rows in
  let lookup_s = List.fold_left (fun s r -> s +. r.lookup_s) 0. rows in
  let events = List.fold_left (fun n r -> n + r.events) 0 rows in
  let event_s = List.fold_left (fun s r -> s +. r.event_s) 0. rows in
  Printf.sprintf
    "    { \"engine\": %S, \"lookups_per_sec\": %.0f, \"events_per_sec\": %.0f }"
    engine (rate lookups lookup_s) (rate events event_s)

let () =
  let out = match Sys.argv with [| _; p |] -> p | _ -> "BENCH_6.json" in
  let engines = Driver.Registry.mechanisms () in
  let rows =
    List.concat_map
      (fun entry ->
        List.map
          (fun spec ->
            let r = bench_pair entry spec in
            Printf.eprintf "%-12s %-9s %9.0f lookups/s %9.0f events/s\n%!"
              r.engine r.workload
              (rate r.lookups r.lookup_s)
              (rate r.events r.event_s);
            r)
          Workloads.all)
      engines
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc
        "{\n\
        \  \"bench\": \"engine-throughput\",\n\
        \  \"seed\": %Ld,\n\
        \  \"reps\": %d,\n\
        \  \"rows\": [\n%s\n  ],\n\
        \  \"aggregates\": [\n%s\n  ]\n\
         }\n"
        Driver.default_seed reps
        (String.concat ",\n" (List.map row_json rows))
        (String.concat ",\n"
           (List.map
              (fun (e : Driver.Registry.entry) ->
                aggregate_json e.Driver.Registry.name rows)
              engines)));
  Printf.eprintf "wrote %s\n" out
