(* Engine throughput micro-benchmark.

   Times the raw simulation rate of every registered engine over
   the paper's seven calibrated workloads (same seed as the tables):

   - lookups/sec — a plain [Sim_driver.run_packed] replay, no
     observability attached, measuring the translation fast path;
   - events/sec — the same replay with a [Utlb_obs] scope and
     timeline sink attached, measuring the instrumented path by the
     number of events it emits;
   - grid-cell wall time — full campaign cells (water and fft crossed
     with the five default mechanism points) at several problem-size
     scales, measuring what one [Runner] cell costs end to end.

   Each measurement is the best of [reps] runs (min wall time), so a
   cold first iteration or a stray scheduler hiccup does not skew the
   rate. Campaign reps share one [Runner.trace_cache], so the grid rows
   time simulation, not trace generation. Results go to BENCH_<n>.json
   (one past the highest BENCH_<n>.json already present, so a rerun
   never clobbers an older baseline) as plain hand-rendered JSON, one
   object per (engine, workload) pair plus a per-engine aggregate and
   one object per (workload, scale) grid point:

     dune exec bench/perf.exe                         # next BENCH_<n>.json
     dune exec bench/perf.exe -- --out out.json --reps 3
     dune exec bench/perf.exe -- --scales 1.0,2.0
     dune exec bench/perf.exe -- --baseline BENCH_7.json
     dune exec bench/perf.exe -- --smoke --out smoke.json

   --baseline loads a previous run of this benchmark and prints a
   per-row speedup table (new rate / old rate) after measuring.
   --smoke shrinks the campaign to one reps and one scale — the
   [@bench] alias wired into [dune runtest] uses it to keep the
   benchmark binary and its JSON schema from rotting. *)

module Driver = Utlb.Sim_driver
module Workloads = Utlb_trace.Workloads
module Scope = Utlb_obs.Scope
module Trace_sink = Utlb_obs.Trace_sink
module Grid = Utlb_exp.Grid
module Runner = Utlb_exp.Runner

type options = {
  mutable out : string;
  mutable reps : int;
  mutable scales : float list;
  mutable baseline : string option;
}

let usage () =
  prerr_endline
    "usage: perf [--out FILE] [--reps N] [--scales F1,F2,...]\n\
    \            [--baseline FILE] [--smoke]";
  exit 2

(* Default the output one past the highest BENCH_<n>.json already in
   the working directory, so a fresh run never silently overwrites the
   previous PR's artifact. *)
let next_bench_name () =
  let highest =
    Array.fold_left
      (fun acc name ->
        match String.length name with
        | len when len > 11 && String.sub name 0 6 = "BENCH_"
                   && String.sub name (len - 5) 5 = ".json" -> (
          match int_of_string_opt (String.sub name 6 (len - 11)) with
          | Some n when n > acc -> n
          | _ -> acc)
        | _ -> acc)
      0 (Sys.readdir Filename.current_dir_name)
  in
  Printf.sprintf "BENCH_%d.json" (highest + 1)

let parse_options () =
  let default_out = next_bench_name () in
  let o =
    { out = default_out; reps = 5; scales = [ 0.5; 1.0; 2.0; 4.0 ];
      baseline = None }
  in
  let rec go = function
    | [] -> o
    | "--out" :: path :: rest ->
      o.out <- path;
      go rest
    | "--reps" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n >= 1 -> o.reps <- n
      | Some _ | None -> usage ());
      go rest
    | "--scales" :: spec :: rest ->
      let parse s =
        match float_of_string_opt (String.trim s) with
        | Some f when f > 0.0 -> f
        | Some _ | None -> usage ()
      in
      o.scales <- List.map parse (String.split_on_char ',' spec);
      go rest
    | "--baseline" :: path :: rest ->
      o.baseline <- Some path;
      go rest
    | "--smoke" :: rest ->
      o.reps <- 1;
      o.scales <- [ 0.5 ];
      go rest
    | [ path ] when String.length path > 0 && path.[0] <> '-' ->
      (* Positional output path, kept from the BENCH_6 interface. *)
      o.out <- path;
      o
    | _ -> usage ()
  in
  let o = go (List.tl (Array.to_list Sys.argv)) in
  if String.equal o.out default_out then
    Printf.eprintf "no --out given; writing %s\n%!" o.out;
  o

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Best-of-[reps] wall time for [f], with the first run's result. *)
let best ~reps f =
  let r, t0 = time f in
  let rec go best n =
    if n = 0 then best else go (min best (snd (time f))) (n - 1)
  in
  (r, go t0 (reps - 1))

type row = {
  engine : string;
  workload : string;
  lookups : int;
  lookup_s : float;  (** Best plain replay wall time. *)
  events : int;
  event_s : float;  (** Best instrumented replay wall time. *)
}

type grid_row = {
  g_workload : string;
  scale : float;
  cells : int;
  g_lookups : int;
  cell_s : float;  (** Best campaign wall time / cells. *)
}

let rate n s = if s > 0. then float_of_int n /. s else 0.

let bench_pair ~reps (entry : Driver.Registry.entry) (spec : Workloads.spec) =
  let trace = spec.Workloads.generate ~seed:Driver.default_seed in
  let packed () = entry.Driver.Registry.of_params [] in
  let report, lookup_s =
    best ~reps (fun () ->
        Driver.run_packed ~label:spec.Workloads.name (packed ()) trace)
  in
  (* A fresh sink per run so [emitted] counts exactly one replay. *)
  let count_events () =
    let sink = Trace_sink.create ~capacity:1024 () in
    let obs = Scope.create ~sink () in
    ignore
      (Driver.run_packed ~label:spec.Workloads.name ~obs (packed ()) trace);
    Trace_sink.emitted sink
  in
  let events, event_s = best ~reps count_events in
  {
    engine = entry.Driver.Registry.name;
    workload = spec.Workloads.name;
    lookups = report.Utlb.Report.lookups;
    lookup_s;
    events;
    event_s;
  }

(* One campaign per (workload, scale): the workload rescaled, crossed
   with the three default mechanism points. The shared [cache] makes
   the reps after the first replay memoised traces, so cell wall time
   measures the runner and engines rather than the generator. *)
let bench_grid ~reps ~cache (spec : Workloads.spec) ~scale =
  let workload =
    if scale = 1.0 then spec else Workloads.scaled spec ~factor:scale
  in
  let grid =
    {
      Grid.name = Printf.sprintf "bench-%s" spec.Workloads.name;
      seed = Driver.default_seed;
      workloads = [ workload ];
      mechanisms =
        [
          Grid.mech "utlb";
          Grid.mech "intr";
          Grid.mech "per-process";
          Grid.mech "victima";
          Grid.mech "utopia";
        ];
      tenants = None;
    }
  in
  let cells = List.length (Grid.cells grid) in
  let outcomes, wall_s = best ~reps (fun () -> Runner.run ~cache grid) in
  let report = Runner.merged_report outcomes in
  {
    g_workload = spec.Workloads.name;
    scale;
    cells;
    g_lookups = report.Utlb.Report.lookups;
    cell_s = wall_s /. float_of_int cells;
  }

let row_json r =
  Printf.sprintf
    "    { \"engine\": %S, \"workload\": %S, \"lookups\": %d,\n\
    \      \"lookups_per_sec\": %.0f, \"events\": %d, \"events_per_sec\": \
     %.0f }"
    r.engine r.workload r.lookups
    (rate r.lookups r.lookup_s)
    r.events
    (rate r.events r.event_s)

let aggregate_json engine rows =
  let rows = List.filter (fun r -> r.engine = engine) rows in
  let lookups = List.fold_left (fun n r -> n + r.lookups) 0 rows in
  let lookup_s = List.fold_left (fun s r -> s +. r.lookup_s) 0. rows in
  let events = List.fold_left (fun n r -> n + r.events) 0 rows in
  let event_s = List.fold_left (fun s r -> s +. r.event_s) 0. rows in
  Printf.sprintf
    "    { \"engine\": %S, \"lookups_per_sec\": %.0f, \"events_per_sec\": \
     %.0f }"
    engine (rate lookups lookup_s) (rate events event_s)

let grid_row_json g =
  Printf.sprintf
    "    { \"workload\": %S, \"scale\": %g, \"cells\": %d, \"lookups\": %d,\n\
    \      \"cell_wall_us\": %.1f }"
    g.g_workload g.scale g.cells g.g_lookups (g.cell_s *. 1e6)

(* ------------------------------------------------------------------ *)
(* Baseline delta mode: parse a previous run of this benchmark (the
   exact JSON this file renders — not a general parser) and print
   per-row speedups. *)

let find_sub s ~from sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  if m = 0 then None else go from

let field_str block key =
  match find_sub block ~from:0 (Printf.sprintf "\"%s\": \"" key) with
  | None -> None
  | Some i -> (
    let start = i + String.length key + 5 in
    match String.index_from_opt block start '"' with
    | None -> None
    | Some stop -> Some (String.sub block start (stop - start)))

let field_num block key =
  match find_sub block ~from:0 (Printf.sprintf "\"%s\": " key) with
  | None -> None
  | Some i ->
    let start = i + String.length key + 4 in
    let stop = ref start in
    let n = String.length block in
    while
      !stop < n
      && (match block.[!stop] with
         | '0' .. '9' | '.' | '-' | 'e' | '+' -> true
         | _ -> false)
    do
      incr stop
    done;
    float_of_string_opt (String.sub block start (!stop - start))

(* Split the file into its "{...}" leaf objects (none of ours nest). *)
let blocks_of content =
  let out = ref [] in
  let depth = ref 0 and start = ref 0 in
  String.iteri
    (fun i c ->
      if c = '{' then begin
        if !depth = 1 then start := i;
        incr depth
      end
      else if c = '}' then begin
        decr depth;
        if !depth = 1 then
          out := String.sub content !start (i - !start + 1) :: !out
      end)
    content;
  List.rev !out

let load_baseline path =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  blocks_of content

let print_deltas ~baseline rows grid_rows =
  let base = load_baseline baseline in
  let base_rate block key =
    match field_num block key with Some r when r > 0.0 -> Some r | _ -> None
  in
  Printf.printf "speedup vs %s (new rate / old rate):\n" baseline;
  Printf.printf "  %-12s %-10s %10s %10s\n" "engine" "workload" "lookups"
    "events";
  List.iter
    (fun r ->
      let matching b =
        field_str b "engine" = Some r.engine
        && field_str b "workload" = Some r.workload
      in
      match List.find_opt matching base with
      | None -> ()
      | Some b ->
        let speedup key now =
          (* A --smoke baseline can record a 0 rate; either side being
             0 would render inf/nan, so mark the row instead. *)
          match base_rate b key with
          | None -> "-"
          | Some _ when now <= 0.0 -> "-"
          | Some old -> Printf.sprintf "%.2fx" (now /. old)
        in
        Printf.printf "  %-12s %-10s %10s %10s\n" r.engine r.workload
          (speedup "lookups_per_sec" (rate r.lookups r.lookup_s))
          (speedup "events_per_sec" (rate r.events r.event_s)))
    rows;
  (* Grid rows only appear in baselines from this benchmark version. *)
  List.iter
    (fun g ->
      let matching b =
        field_str b "workload" = Some g.g_workload
        && field_str b "engine" = None
        && field_num b "scale" = Some g.scale
      in
      match List.find_opt matching base with
      | None -> ()
      | Some b -> (
        match base_rate b "cell_wall_us" with
        | None -> ()
        | Some _ when g.cell_s <= 0.0 ->
          Printf.printf "  grid %-7s @%-4g cell wall -\n" g.g_workload
            g.scale
        | Some old ->
          Printf.printf "  grid %-7s @%-4g cell wall %.2fx\n" g.g_workload
            g.scale
            (old /. (g.cell_s *. 1e6))))
    grid_rows

(* ------------------------------------------------------------------ *)

let () =
  let o = parse_options () in
  let engines = Driver.Registry.mechanisms () in
  let rows =
    List.concat_map
      (fun entry ->
        List.map
          (fun spec ->
            let r = bench_pair ~reps:o.reps entry spec in
            Printf.eprintf "%-12s %-9s %9.0f lookups/s %9.0f events/s\n%!"
              r.engine r.workload
              (rate r.lookups r.lookup_s)
              (rate r.events r.event_s);
            r)
          Workloads.all)
      engines
  in
  let cache = Runner.trace_cache () in
  let grid_rows =
    List.concat_map
      (fun spec ->
        List.map
          (fun scale ->
            let g = bench_grid ~reps:o.reps ~cache spec ~scale in
            Printf.eprintf "grid %-9s @%-4g %9.1f us/cell\n%!" g.g_workload
              g.scale (g.cell_s *. 1e6);
            g)
          o.scales)
      [ Workloads.water; Workloads.fft ]
  in
  let oc = open_out o.out in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc
        "{\n\
        \  \"bench\": \"engine-throughput\",\n\
        \  \"seed\": %Ld,\n\
        \  \"reps\": %d,\n\
        \  \"rows\": [\n%s\n  ],\n\
        \  \"aggregates\": [\n%s\n  ],\n\
        \  \"grid\": [\n%s\n  ]\n\
         }\n"
        Driver.default_seed o.reps
        (String.concat ",\n" (List.map row_json rows))
        (String.concat ",\n"
           (List.map
              (fun (e : Driver.Registry.entry) ->
                aggregate_json e.Driver.Registry.name rows)
              engines))
        (String.concat ",\n" (List.map grid_row_json grid_rows)));
  Printf.eprintf "wrote %s\n" o.out;
  match o.baseline with
  | None -> ()
  | Some baseline -> print_deltas ~baseline rows grid_rows
