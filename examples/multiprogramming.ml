(* Multiprogramming and the Shared UTLB-Cache.

   Several processes on one node share the NI translation cache. SPMD
   processes lay out their buffers at identical virtual addresses, so
   without per-process index offsetting their entries collide in the
   direct-mapped cache on every access. This example builds that
   round-robin SPMD mix as a custom campaign workload and sweeps the
   four cache organisations of Table 8 in one grid — showing why the
   paper chose direct-mapped *with* offsetting.

   Run with: dune exec examples/multiprogramming.exe *)

open Utlb
module Grid = Utlb_exp.Grid
module Runner = Utlb_exp.Runner
module Emit = Utlb_exp.Emit
module Workloads = Utlb_trace.Workloads
module Trace = Utlb_trace.Trace
module Record = Utlb_trace.Record
module Pid = Utlb_mem.Pid

let processes = 4

let pages_per_process = 512

let rounds = 40

(* Identical SPMD layout: every process uses the same virtual range. *)
let buffer_base = 0x40000

(* Round-robin the processes the way timeslicing interleaves them. *)
let spmd_mix =
  Workloads.custom ~name:"spmd-mix"
    ~problem_size:
      (Printf.sprintf "%d procs x %d pages" processes pages_per_process)
    ~description:"SPMD processes at identical virtual addresses, timesliced"
    ~generate:(fun ~seed:_ ->
      let records = ref [] in
      let t = ref 0.0 in
      for _round = 1 to rounds do
        for p = 0 to processes - 1 do
          for chunk = 0 to (pages_per_process / 8) - 1 do
            t := !t +. 1.0;
            records :=
              Record.make ~time_us:!t ~pid:(Pid.of_int p)
                ~vpn:(buffer_base + (chunk * 8))
                ~npages:8 ~op:Record.Send
              :: !records
          done
        done
      done;
      Trace.of_records (Array.of_list (List.rev !records)))
    ()

let () =
  Printf.printf
    "%d processes, %d pages each at the SAME virtual addresses, %d rounds\n\n"
    processes pages_per_process rounds;
  let grid =
    {
      Grid.name = "multiprogramming";
      seed = 11L;
      workloads = [ spmd_mix ];
      mechanisms =
        Grid.axes "utlb"
          [
            ("entries", [ "4096" ]);
            ("assoc", [ "direct-nohash"; "direct"; "2-way"; "4-way" ]);
          ];
      tenants = None;
    }
  in
  let outcomes = Runner.run ~domains:2 grid in
  Emit.matrix ?fmt:None
    ~rows:(fun o ->
      Option.value ~default:"" (Grid.param o.Runner.cell "assoc"))
    ~cols:(fun _ -> "NI miss rate")
    ~metrics:[ ("", fun o -> Report.ni_miss_rate o.Runner.report) ]
    Format.std_formatter outcomes;
  print_newline ();
  print_endline
    "direct-nohash thrashes: all four processes fight over the same lines.";
  print_endline
    "Offsetting separates them at no extra probe cost, which is why the";
  print_endline
    "paper picked direct-mapped-with-offset over set-associativity: the";
  print_endline
    "LANai firmware probes set entries sequentially, so 2-way/4-way pay";
  print_endline "more probes per lookup for roughly the same miss rate."
