(* Reliable communication over a lossy fabric (the VMMC-2 extension).

   The paper's third VMMC extension is a data-link retransmission
   protocol between network interfaces. This example injects packet
   drops and payload corruption into every link and shows that remote
   stores still deliver exactly-once, in order, and intact — while the
   go-back-N machinery quietly retransmits.

   Run with: dune exec examples/fault_injection.exe *)

open Utlb_vmmc

let transfers = 64

let transfer_len = 6000

let pattern i = Bytes.init transfer_len (fun j -> Char.chr ((i + j) land 0xff))

let run ~drop ~corrupt =
  let config =
    {
      Cluster.default_config with
      faults =
        {
          Utlb_net.Link.no_faults with
          drop_probability = drop;
          corrupt_probability = corrupt;
        };
    }
  in
  let cluster = Cluster.create ~config () in
  let sender = Cluster.spawn cluster ~node:0 in
  let receiver = Cluster.spawn cluster ~node:3 in
  let export_id, key =
    Cluster.Process.export receiver ~vaddr:0x400000
      ~len:(transfers * transfer_len)
  in
  let handle = Cluster.Process.import sender ~node:3 ~export_id ~key in
  let completed = ref 0 in
  for i = 0 to transfers - 1 do
    let src = 0x100000 + (i * transfer_len) in
    Cluster.Process.write_memory sender ~vaddr:src (pattern i);
    Cluster.Process.send sender handle ~lvaddr:src
      ~offset:(i * transfer_len) ~len:transfer_len
      ~on_complete:(fun () -> incr completed)
  done;
  Cluster.run cluster;
  let intact = ref 0 in
  for i = 0 to transfers - 1 do
    let got =
      Cluster.Process.read_memory receiver
        ~vaddr:(0x400000 + (i * transfer_len))
        ~len:transfer_len
    in
    if Bytes.equal got (pattern i) then incr intact
  done;
  Printf.printf
    "drop=%4.1f%% corrupt=%4.1f%%: %d/%d acked, %d/%d intact, %5d \
     retransmissions, %8.0f us\n"
    (100.0 *. drop) (100.0 *. corrupt) !completed transfers !intact transfers
    (Cluster.retransmissions cluster)
    (Cluster.now_us cluster)

let () =
  Printf.printf "%d remote stores of %d bytes each, node 0 -> node 3\n\n"
    transfers transfer_len;
  run ~drop:0.0 ~corrupt:0.0;
  run ~drop:0.01 ~corrupt:0.0;
  run ~drop:0.05 ~corrupt:0.02;
  run ~drop:0.15 ~corrupt:0.05;
  print_endline
    "\nDelivery stays exactly-once and intact; only latency and the";
  print_endline "retransmission count grow with the fault rate."
