(* Quickstart: the UTLB public API in five minutes.

   Walks through the three layers a user of this library touches:

   1. the raw Hierarchical-UTLB engine (translate buffers, watch pins
      and Shared UTLB-Cache behaviour);
   2. a declarative campaign (a workloads x mechanisms grid run
      domain-parallel, pivoted into a table);
   3. end-to-end VMMC (export a receive buffer, remote-store into it
      through the simulated cluster).

   Run with: dune exec examples/quickstart.exe *)

open Utlb

let section title = Printf.printf "\n== %s ==\n" title

(* 1. Translate buffers through a Hierarchical-UTLB directly. *)
let demo_engine () =
  section "Hierarchical-UTLB engine";
  let engine = Hier_engine.create ~seed:1L Hier_engine.default_config in
  let pid = Utlb_mem.Pid.of_int 0 in
  (* First use of a buffer: user-level check misses, pages are pinned
     on demand, and the NI cache misses (compulsory). *)
  let o1 = Hier_engine.lookup engine ~pid ~vpn:0x400 ~npages:4 in
  Printf.printf
    "first lookup : check_miss=%b pages_pinned=%d ni_misses=%d\n"
    o1.Hier_engine.check_miss o1.Hier_engine.pages_pinned
    o1.Hier_engine.ni_misses;
  (* Second use: everything hits — no system call, no interrupt. *)
  let o2 = Hier_engine.lookup engine ~pid ~vpn:0x400 ~npages:4 in
  Printf.printf
    "second lookup: check_miss=%b pages_pinned=%d ni_misses=%d\n"
    o2.Hier_engine.check_miss o2.Hier_engine.pages_pinned
    o2.Hier_engine.ni_misses;
  Printf.printf "pinned pages now: %d; NI cache lines: %d\n"
    (Hier_engine.pinned_pages engine pid)
    (Ni_cache.valid_lines (Hier_engine.cache engine));
  (* The translation the NI would use (a physical frame number). *)
  match Hier_engine.translate engine ~pid ~vpn:0x401 with
  | Some frame -> Printf.printf "vpn 0x401 -> frame %d\n" frame
  | None -> print_endline "vpn 0x401 unexpectedly untranslated"

(* 2. A declarative campaign on paper workloads. The same grid could be
   a grids/*.grid file run with `utlbsim sweep`. *)
let demo_campaign () =
  section "Campaign: WATER and VOLREND x three mechanism points";
  let module Grid = Utlb_exp.Grid in
  let module Runner = Utlb_exp.Runner in
  let module Emit = Utlb_exp.Emit in
  let grid =
    {
      Grid.name = "quickstart";
      seed = 42L;
      workloads =
        [ Utlb_trace.Workloads.water; Utlb_trace.Workloads.volrend ];
      mechanisms =
        Grid.axes "utlb" [ ("entries", [ "1024"; "4096" ]) ]
        @ [ Grid.mech ~params:[ ("entries", "4096") ] "intr" ];
      tenants = None;
    }
  in
  (* Two domains; the table is byte-identical to a serial run. *)
  let outcomes = Runner.run ~domains:2 grid in
  Emit.matrix ?fmt:None
    ~rows:(fun o -> o.Runner.cell.Grid.workload.Utlb_trace.Workloads.name)
    ~cols:(fun o -> Grid.mech_label o.Runner.cell.Grid.mech)
    ~metrics:
      [
        ("check", fun o -> Report.check_miss_rate o.Runner.report);
        ("NI miss", fun o -> Report.ni_miss_rate o.Runner.report);
        ("unpins", fun o -> Report.unpin_rate o.Runner.report);
      ]
    Format.std_formatter outcomes

(* 3. End-to-end VMMC remote store. *)
let demo_vmmc () =
  section "VMMC remote store across the simulated cluster";
  let open Utlb_vmmc in
  let cluster = Cluster.create () in
  let sender = Cluster.spawn cluster ~node:0 in
  let receiver = Cluster.spawn cluster ~node:1 in
  (* The receiver exports a buffer; exporting pins it. *)
  let export_id, key =
    Cluster.Process.export receiver ~vaddr:0x200000 ~len:8192
  in
  let handle =
    Cluster.Process.import sender ~node:1 ~export_id ~key
  in
  (* The sender fills a local buffer and stores it remotely. *)
  let message = Bytes.of_string "hello through the UTLB" in
  Cluster.Process.write_memory sender ~vaddr:0x100000 message;
  Cluster.Process.send sender handle ~lvaddr:0x100000 ~offset:0
    ~len:(Bytes.length message);
  Cluster.run cluster;
  let received =
    Cluster.Process.read_memory receiver ~vaddr:0x200000
      ~len:(Bytes.length message)
  in
  Printf.printf "received: %S (at t=%.1f us, latency %.1f us)\n"
    (Bytes.to_string received) (Cluster.now_us cluster)
    (Utlb_sim.Stats.Summary.mean (Cluster.send_latency cluster))

let () =
  demo_engine ();
  demo_campaign ();
  demo_vmmc ()
