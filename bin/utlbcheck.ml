(* utlbcheck: static analysis of UTLB simulation configurations and
   workloads.

   Two passes share one finding pipeline and exit-code policy:

   - lint (the default command): key=value config files and the
     built-in paper defaults, reporting UCxxx findings before any
     simulation runs;
   - verify: the static protocol verifier (UP0x) over workload traces,
     built-in workloads, and whole campaign grids, plus the
     happens-before race detector (UP1x) over exported event
     timelines;
   - explore: exhaustive small-scope model checking of the pin
     protocol (UP2x) with replayable counterexamples;
   - bound: the symbolic worst-case analyzer (UP4x), gating sound
     latency/pinned/tenant bounds against a declared SLO.

   Exit status: 0 clean, 1 when any error finding was reported (or,
   with --strict, any warning), 2 when an input could not be read. *)

open Cmdliner
module Finding = Utlb_check.Finding
module Catalogue = Utlb_check.Catalogue
module Config_file = Utlb_check.Config_file
module Config_lint = Utlb_check.Config_lint
module Protocol = Utlb_check.Protocol
module Hb = Utlb_check.Hb
module Explore = Utlb_check.Explore
module Bound = Utlb_check.Bound
module Stepper = Utlb.Stepper

(* {2 Shared options and reporting} *)

type format = Text | Json

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", Text); ("json", Json) ]) Text
    & info [ "format" ] ~docv:"FORMAT"
        ~doc:
          "Report format: $(b,text) (one finding per line plus a summary) \
           or $(b,json) (an array of finding objects, no summary).")

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ] ~doc:"Treat warnings as errors for the exit code.")

let quiet_arg =
  Arg.(
    value & flag
    & info [ "q"; "quiet" ] ~doc:"Print nothing; report only the exit code.")

let report ~format ~quiet ~inputs findings =
  if not quiet then begin
    match format with
    | Json ->
      Format.printf "%a@." Finding.pp_json_list (Finding.by_severity findings)
    | Text ->
      List.iter
        (fun f -> Format.printf "%a@." Finding.pp f)
        (Finding.by_severity findings);
      Format.printf "utlbcheck: %d error(s), %d warning(s) in %d input(s)@."
        (Finding.errors findings)
        (Finding.warnings findings)
        inputs
  end

(* {2 lint} *)

let check_file path =
  match Config_file.parse_file path with
  | Error msg ->
    Format.eprintf "utlbcheck: %s@." msg;
    None
  | Ok (config, parse_findings) ->
    Some (parse_findings @ Config_lint.lint_config config)

let files_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"FILE" ~doc:"Configuration files to check.")

let defaults_arg =
  Arg.(
    value & flag
    & info [ "defaults" ]
        ~doc:
          "Also lint the built-in paper-default configurations and cost \
           model (a self-check; must be clean).")

let explain_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "explain" ] ~docv:"CODE"
        ~doc:
          "Print the description of one finding code — config syntax \
           (UC0xx), configuration lint (UC1xx), runtime violation (UVxx), \
           protocol verifier (UP0x), race detector (UP1x), exhaustive \
           exploration (UP2x), or worst-case bound (UP4x) — and exit \
           (status 2 for an unknown code). Codes are case-insensitive.")

(* Shared by every subcommand so `--explain CODE` behaves identically
   everywhere: print the catalogue entry and exit 0, or exit 2 on an
   unknown code. [None] when no --explain was requested. *)
let explain_exit = function
  | None -> None
  | Some code -> (
    match Catalogue.describe code with
    | Some text ->
      print_endline text;
      Some 0
    | None ->
      Format.eprintf "utlbcheck: unknown code %S@." code;
      Some 2)

let lint_main files defaults strict explain quiet format =
  match explain_exit explain with
  | Some code -> code
  | None ->
    if files = [] && not defaults then begin
      Format.eprintf
        "utlbcheck: nothing to check (give config files or --defaults)@.";
      2
    end
    else begin
      let unreadable = ref false in
      let findings =
        List.concat_map
          (fun path ->
            match check_file path with
            | Some fs -> fs
            | None ->
              unreadable := true;
              [])
          files
        @ (if defaults then Config_lint.lint_defaults () else [])
      in
      report ~format ~quiet
        ~inputs:(List.length files + if defaults then 1 else 0)
        findings;
      if !unreadable then 2 else Finding.exit_code ~strict findings
    end

let lint_term =
  Term.(
    const lint_main $ files_arg $ defaults_arg $ strict_arg $ explain_arg
    $ quiet_arg $ format_arg)

(* {2 verify} *)

let verify_inputs_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"INPUT"
        ~doc:
          "Inputs to verify: campaign grid files ($(i,*.grid), every cell \
           is checked) or saved workload trace files (one record per \
           line).")

let config_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "config" ] ~docv:"FILE"
        ~doc:
          "Verify traces against the engine semantics this configuration \
           file declares (its syntax findings are included).")

let mech_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "mech" ] ~docv:"SPEC"
        ~doc:
          "Verify traces against a registered mechanism point, e.g. \
           $(b,utlb) or $(b,intr,entries=1024,limit-mb=1). Overrides \
           $(b,--config).")

let workloads_arg =
  Arg.(
    value & flag
    & info [ "workloads" ]
        ~doc:
          "Also verify the built-in calibrated workload generators (the \
           paper's seven applications at the default seed).")

let hb_arg =
  Arg.(
    value & opt_all string []
    & info [ "hb" ] ~docv:"TIMELINE"
        ~doc:
          "Run the happens-before race detector over this saved event \
           timeline (single-run or the sectioned form \
           $(b,utlbsim sweep --timeline-out) writes). Repeatable.")

let tenants_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tenants" ] ~docv:"SPEC"
        ~doc:
          "Check $(b,--hb) timelines against this tenancy discipline \
           (same grammar as $(b,utlbsim --tenants)): cross-tenant \
           evictions under a strict spec are flagged UP30, cross-tenant \
           unpin/fetch interleavings UP31. The spec itself is linted \
           (UC180-UC184).")

let parse_mech_spec spec =
  match String.split_on_char ',' spec with
  | [] -> Error "empty mechanism spec"
  | name :: params ->
    let rec split acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
        match String.index_opt p '=' with
        | None -> Error (Printf.sprintf "mechanism parameter %S is not k=v" p)
        | Some i ->
          split
            ((String.sub p 0 i, String.sub p (i + 1) (String.length p - i - 1))
            :: acc)
            rest)
    in
    Result.bind (split [] params) (fun params ->
        Protocol.of_mech ~name:(String.trim name) ~params)

let verify_main inputs config mech workloads hbs tenants strict explain quiet
    format =
  match explain_exit explain with
  | Some code -> code
  | None ->
  let usage_error = ref None in
  let unreadable = ref false in
  let base_findings = ref [] in
  (* The tenancy spec is itself an input: a bad spec is a UC180
     finding, a parsable one is linted (UC181-UC184) and then drives
     the UP30/UP31 isolation checks over --hb timelines. *)
  let tenant_config =
    match Option.map Utlb_tenant.Tenant.of_string tenants with
    | None | Some (Ok None) -> None
    | Some (Ok (Some cfg)) ->
      base_findings :=
        !base_findings
        @ List.map
            (fun (code, msg) ->
              Finding.v ~context:"--tenants" ~severity:Finding.Warning ~code
                msg)
            (Utlb_tenant.Tenant.validate cfg);
      Some cfg
    | Some (Error msg) ->
      base_findings :=
        !base_findings
        @ [
            Finding.vf ~context:"--tenants" ~code:"UC180" "%s (%s)" msg
              Utlb_tenant.Tenant.grammar;
          ];
      None
  in
  let sems =
    match (mech, config) with
    | Some spec, _ -> (
      match parse_mech_spec spec with
      | Ok sem -> [ sem ]
      | Error msg ->
        usage_error := Some msg;
        [])
    | None, Some path -> (
      match Config_file.parse_file path with
      | Error msg ->
        usage_error := Some msg;
        []
      | Ok (cfg, parse_findings) ->
        base_findings := parse_findings;
        [ Protocol.of_config cfg ])
    | None, None -> Protocol.defaults
  in
  match !usage_error with
  | Some msg ->
    Format.eprintf "utlbcheck: %s@." msg;
    2
  | None ->
    if inputs = [] && hbs = [] && not workloads then begin
      Format.eprintf
        "utlbcheck: nothing to verify (give grids, traces, --workloads, or \
         --hb timelines)@.";
      2
    end
    else begin
      let input_findings =
        List.concat_map
          (fun path ->
            if Filename.check_suffix path ".grid" then
              match Utlb_exp.Grid.of_file path with
              | Error msg ->
                Format.eprintf "utlbcheck: %s@." msg;
                unreadable := true;
                []
              | Ok grid -> Protocol.verify_grid grid
            else
              List.concat_map
                (fun (sem : Protocol.semantics) ->
                  match Protocol.verify_file sem path with
                  | Error msg ->
                    Format.eprintf "utlbcheck: %s@." msg;
                    unreadable := true;
                    []
                  | Ok fs ->
                    let context = Some (path ^ ":" ^ sem.Protocol.label) in
                    List.map
                      (fun (f : Finding.t) -> { f with Finding.context })
                      fs)
                sems)
          inputs
      in
      let workload_findings =
        if not workloads then []
        else
          List.concat_map
            (fun spec ->
              List.concat_map
                (fun sem -> Protocol.verify_workload sem spec)
                sems)
            Utlb_trace.Workloads.all
      in
      let hb_findings =
        List.concat_map
          (fun path ->
            match Hb.analyze_file ?tenants:tenant_config path with
            | Error msg ->
              Format.eprintf "utlbcheck: %s@." msg;
              unreadable := true;
              []
            | Ok fs -> fs)
          hbs
      in
      let findings =
        !base_findings @ input_findings @ workload_findings @ hb_findings
      in
      let inputs_count =
        List.length inputs + List.length hbs
        + if workloads then List.length Utlb_trace.Workloads.all else 0
      in
      report ~format ~quiet ~inputs:inputs_count findings;
      if !unreadable then 2 else Finding.exit_code ~strict findings
    end

let verify_term =
  Term.(
    const verify_main $ verify_inputs_arg $ config_arg $ mech_arg
    $ workloads_arg $ hb_arg $ tenants_arg $ strict_arg $ explain_arg
    $ quiet_arg $ format_arg)

(* {2 explore} *)

let engine_arg =
  Arg.(
    value & opt_all string []
    & info [ "engine" ] ~docv:"SPEC"
        ~doc:
          "Explore this registered mechanism point, e.g. $(b,utlb) or \
           $(b,intr,entries=2,limit-mb=1). Repeatable; the default is \
           every registered mechanism at its paper defaults. Overrides \
           $(b,--config).")

let explore_config_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "config" ] ~docv:"FILE"
        ~doc:
          "Explore the engine semantics this configuration file declares \
           (its syntax findings are included).")

let trace_in_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-in" ] ~docv:"FILE"
        ~doc:
          "Trace mode: explore every interleaving of the protocol steps of \
           exactly this saved trace's records (in record order) instead of \
           synthesizing request programs.")

let int_opt ~name ~docv ~doc ~default =
  Arg.(value & opt int default & info [ name ] ~docv ~doc)

let procs_arg =
  int_opt ~name:"procs" ~docv:"N"
    ~doc:"Processes issuing requests (synthesis mode)."
    ~default:Stepper.default_scope.Stepper.procs

let pages_arg =
  int_opt ~name:"pages" ~docv:"P"
    ~doc:"Distinct pages the synthesized requests draw from."
    ~default:Stepper.default_scope.Stepper.pages

let sets_arg =
  int_opt ~name:"sets" ~docv:"S"
    ~doc:"Modelled NI-cache capacity in lines."
    ~default:Stepper.default_scope.Stepper.sets

let requests_arg =
  int_opt ~name:"requests" ~docv:"R"
    ~doc:"Requests each process issues (synthesis mode)."
    ~default:Stepper.default_scope.Stepper.requests

let page_cap_arg =
  int_opt ~name:"page-cap" ~docv:"C"
    ~doc:
      "Pages of one request that are micro-stepped individually (wider \
       requests still run their full admission checks)."
    ~default:Stepper.default_scope.Stepper.page_cap

let depth_arg =
  int_opt ~name:"depth" ~docv:"D"
    ~doc:
      "Depth cap on explored action sequences; hitting it is reported, \
       never silent."
    ~default:Explore.default_config.Explore.max_depth

let budget_arg =
  int_opt ~name:"budget" ~docv:"K"
    ~doc:
      "Transition budget for the whole search; hitting it is reported, \
       never silent."
    ~default:Explore.default_config.Explore.budget

let mutant_conv =
  let parse s =
    match Stepper.mutant_of_string s with
    | Some m -> Ok m
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown mutant %S (expected one of %s)" s
             (String.concat ", " (List.map Stepper.mutant_name Stepper.mutants))))
  in
  Arg.conv (parse, fun ppf m -> Format.pp_print_string ppf (Stepper.mutant_name m))

let mutant_arg =
  Arg.(
    value
    & opt (some mutant_conv) None
    & info [ "mutant" ] ~docv:"NAME"
        ~doc:
          "Seed one protocol bug and explore the mutated protocol: \
           $(b,blocking-evict) (UP20), $(b,leak-unpin) (UP21), \
           $(b,no-shootdown) (UP22), or $(b,early-unpin) (UP23). The \
           explorer must find the seeded bug's code.")

let ce_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "ce-dir" ] ~docv:"DIR"
        ~doc:
          "Write each minimized counterexample as a standard trace file \
           $(i,DIR)/ce-<engine>-<CODE>-<n>.trace (replayable by \
           $(b,utlbsim run --trace-in), re-checkable by $(b,utlbcheck \
           verify), re-explorable with $(b,--trace-in)).")

let load_program path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      match Utlb_trace.Trace.load ic with
      | Ok trace -> Ok (Explore.program_of_trace trace)
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

let explore_main engines config trace_in procs pages sets requests page_cap
    depth budget mutant ce_dir explain strict quiet format =
  match explain_exit explain with
  | Some code -> code
  | None -> (
    let ( let* ) r f =
      match r with
      | Error msg ->
        Format.eprintf "utlbcheck: %s@." msg;
        2
      | Ok v -> f v
    in
    let base_findings = ref [] in
    let* sems =
      match engines with
      | _ :: _ ->
        List.fold_left
          (fun acc spec ->
            Result.bind acc (fun sems ->
                let name, params =
                  match String.index_opt spec ',' with
                  | None -> (String.trim spec, [])
                  | Some i ->
                    ( String.trim (String.sub spec 0 i),
                      String.sub spec (i + 1) (String.length spec - i - 1)
                      |> String.split_on_char ','
                      |> List.map (fun p ->
                             match String.index_opt p '=' with
                             | None -> (String.trim p, "")
                             | Some j ->
                               ( String.trim (String.sub p 0 j),
                                 String.sub p (j + 1)
                                   (String.length p - j - 1) )) )
                in
                Result.map
                  (fun sem -> (name, sem) :: sems)
                  (Explore.semantics_of_mech ~name ~params)))
          (Ok []) engines
        |> Result.map List.rev
      | [] -> (
        match config with
        | Some path -> (
          match Config_file.parse_file path with
          | Error msg -> Error msg
          | Ok (cfg, parse_findings) ->
            base_findings := parse_findings;
            Ok
              [
                ( Config_file.engine_name cfg.Config_file.engine,
                  Explore.semantics_of_config cfg );
              ])
        | None ->
          Ok
            (List.filter_map
               (fun (entry : Utlb.Sim_driver.Registry.entry) ->
                 match
                   Explore.semantics_of_mech ~name:entry.name ~params:[]
                 with
                 | Ok sem -> Some (entry.name, sem)
                 | Error _ -> None)
               (Utlb.Sim_driver.Registry.mechanisms ())))
    in
    let* program =
      match trace_in with
      | None -> Ok None
      | Some path -> Result.map Option.some (load_program path)
    in
    let scope =
      {
        Stepper.procs;
        pages;
        sets;
        requests;
        page_cap;
        program;
        mutant;
      }
    in
    let econfig = { Explore.scope; max_depth = depth; budget } in
    let results =
      List.map
        (fun (label, sem) -> Explore.explore ~config:econfig ~label sem)
        sems
    in
    (* Stats go to stderr so --format json stays a pure finding array
       on stdout; a truncated search is flagged even under --quiet
       (silent truncation would read as a proof). *)
    List.iter
      (fun (r : Explore.result) ->
        if not quiet then Format.eprintf "utlbcheck explore: %a@." Explore.pp_stats r;
        match r.Explore.stats.Explore.truncation with
        | Explore.Exhaustive -> ()
        | t ->
          Format.eprintf
            "utlbcheck explore: warning: %s: search truncated by the %s \
             cap; the scope was not exhausted@."
            r.Explore.label
            (Explore.truncation_label t))
      results;
    let* () =
      match ce_dir with
      | None -> Ok ()
      | Some dir -> (
        try
          List.iter
            (fun (r : Explore.result) ->
              let counts = Hashtbl.create 8 in
              List.iter
                (fun (ce : Explore.counterexample) ->
                  let n =
                    1
                    + (try Hashtbl.find counts ce.Explore.code
                       with Not_found -> 0)
                  in
                  Hashtbl.replace counts ce.Explore.code n;
                  let path =
                    Filename.concat dir
                      (Printf.sprintf "ce-%s-%s-%d.trace" r.Explore.label
                         ce.Explore.code n)
                  in
                  let oc = open_out path in
                  List.iter
                    (fun line ->
                      output_string oc line;
                      output_char oc '\n')
                    (Explore.counterexample_lines r ce);
                  close_out oc;
                  if not quiet then
                    Format.eprintf "utlbcheck explore: wrote %s@." path)
                r.Explore.counterexamples)
            results;
          Ok ()
        with Sys_error msg -> Error msg)
    in
    let findings =
      !base_findings
      @ List.concat_map (fun (r : Explore.result) -> r.Explore.findings) results
    in
    report ~format ~quiet ~inputs:(List.length results) findings;
    Finding.exit_code ~strict findings)

let explore_term =
  Term.(
    const explore_main $ engine_arg $ explore_config_arg $ trace_in_arg
    $ procs_arg $ pages_arg $ sets_arg $ requests_arg $ page_cap_arg
    $ depth_arg $ budget_arg $ mutant_arg $ ce_dir_arg $ explain_arg
    $ strict_arg $ quiet_arg $ format_arg)

(* {2 bound} *)

let bound_inputs_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"GRID"
        ~doc:
          "Campaign grid files: every mechanism point of every grid is \
           certified (with the grid's own tenancy spec).")

let bound_engine_arg =
  Arg.(
    value & opt_all string []
    & info [ "engine" ] ~docv:"SPEC"
        ~doc:
          "Bound this registered mechanism point, e.g. $(b,utlb) or \
           $(b,victima,entries=1024,prepin=8). Repeatable; with no grids, \
           engines, or $(b,--config), every registered mechanism is \
           bounded at its paper defaults.")

let bound_config_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "config" ] ~docv:"FILE"
        ~doc:
          "Bound the engine and cost model this configuration file \
           declares (its syntax findings are included).")

let slo_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "slo" ] ~docv:"SPEC"
        ~doc:
          "Service-level objective to gate against, e.g. \
           $(b,lat_us<=250,pinned<=8192): a worst-case single-translation \
           latency budget in microseconds and/or a node-wide pinned-page \
           budget. Exceeding either is an UP40 error.")

let npages_arg =
  int_opt ~name:"npages" ~docv:"N"
    ~doc:
      "Widest buffer (pages per lookup) the bounds must cover (default \
       32, the cost tables' last anchor; wider buffers extrapolate \
       linearly). $(b,--workloads) overrides this with the widest buffer \
       any shipped workload actually issues."
    ~default:32

let bound_procs_arg =
  int_opt ~name:"procs" ~docv:"N"
    ~doc:"Processes the node-wide pinned bound multiplies by."
    ~default:8

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Charge this fault plan's worst case to every bound (same \
           grammar as $(b,utlbsim --faults)): each NI miss walk absorbs \
           the full DMA retry/backoff chain and each interrupt its full \
           re-issue chain. A chain past the one-second ceiling is an \
           UP41 error.")

let bound_tenants_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tenants" ] ~docv:"SPEC"
        ~doc:
          "Bound per-tenant pinned populations and quota headroom under \
           this tenancy discipline (same grammar as $(b,utlbsim \
           --tenants)). A quota below one maximal buffer is an UP42 \
           error.")

let bound_workloads_arg =
  Arg.(
    value & flag
    & info [ "workloads" ]
        ~doc:
          "Size $(b,--npages) from the built-in calibrated workloads: the \
           widest buffer any of the paper's seven applications issues at \
           the default seed.")

let witness_arg =
  Arg.(
    value & flag
    & info [ "witness" ]
        ~doc:
          "Ask the exhaustive explorer for a concrete schedule realizing \
           the pinned bound at its small scope (plain DFS, no DPOR). A \
           found schedule upgrades the scoped bound to CONFIRMED; an \
           exhausted search without one reports PLAUSIBLE. Status goes \
           to stderr.")

let witness_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "witness-dir" ] ~docv:"DIR"
        ~doc:
          "Write each witness as a standard trace file \
           $(i,DIR)/witness-<engine>.trace (status and schedule as \
           comments, then the issued requests — replayable by \
           $(b,utlbsim run --trace-in)). Implies $(b,--witness).")

(* "utlb[entries=1024]" -> "utlb-entries-1024": grid mech labels carry
   punctuation that does not belong in a file name. *)
let sanitize_label label =
  String.concat "-"
    (List.filter
       (fun s -> s <> "")
       (String.split_on_char '/'
          (String.map
             (fun c ->
               match c with
               | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' | '_' -> c
               | _ -> '/')
             label)))

let split_engine_spec spec =
  match String.index_opt spec ',' with
  | None -> (String.trim spec, [])
  | Some i ->
    ( String.trim (String.sub spec 0 i),
      String.sub spec (i + 1) (String.length spec - i - 1)
      |> String.split_on_char ','
      |> List.map (fun p ->
             match String.index_opt p '=' with
             | None -> (String.trim p, "")
             | Some j ->
               ( String.trim (String.sub p 0 j),
                 String.sub p (j + 1) (String.length p - j - 1) )) )

let workloads_npages () =
  List.fold_left
    (fun acc (spec : Utlb_trace.Workloads.spec) ->
      Array.fold_left
        (fun m (r : Utlb_trace.Record.t) -> max m r.Utlb_trace.Record.npages)
        acc
        (Utlb_trace.Trace.records
           (spec.Utlb_trace.Workloads.generate
              ~seed:Utlb.Sim_driver.default_seed)))
    1 Utlb_trace.Workloads.all

let bound_main grids engines config slo npages procs faults tenants workloads
    witness witness_dir explain strict quiet format =
  match explain_exit explain with
  | Some code -> code
  | None -> (
    let ( let* ) r f =
      match r with
      | Error msg ->
        Format.eprintf "utlbcheck: %s@." msg;
        2
      | Ok v -> f v
    in
    let base_findings = ref [] in
    let unreadable = ref false in
    let* slo =
      match slo with
      | None -> Ok Bound.no_slo
      | Some spec -> Bound.slo_of_string spec
    in
    let* faults =
      match faults with
      | None -> Ok Utlb_fault.Plan.empty
      | Some spec -> Utlb_fault.Plan.of_string spec
    in
    let* cli_tenants =
      match tenants with
      | None -> Ok None
      | Some spec -> Utlb_tenant.Tenant.of_string spec
    in
    let npages = if workloads then workloads_npages () else npages in
    let analyze_tenanted ?model ~tenants packed ~label =
      Bound.analyze ?model ~faults ?tenants ~slo ~npages ~processes:procs
        ~label packed
    in
    (* Grid certification: every mechanism point of every grid, under
       the grid's own tenancy spec (a mechanism-level [tenants=] param
       overrides the grid-level directive, as in the runner). *)
    let grid_bounds =
      List.concat_map
        (fun path ->
          match Utlb_exp.Grid.of_file path with
          | Error msg ->
            Format.eprintf "utlbcheck: %s@." msg;
            unreadable := true;
            []
          | Ok grid ->
            List.filter_map
              (fun (m : Utlb_exp.Grid.mech) ->
                let label =
                  Printf.sprintf "%s:%s" grid.Utlb_exp.Grid.name
                    (Utlb_exp.Grid.mech_label m)
                in
                let tenant_spec =
                  match List.assoc_opt "tenants" m.Utlb_exp.Grid.params with
                  | Some s -> Some s
                  | None -> grid.Utlb_exp.Grid.tenants
                in
                let tenancy =
                  match Option.map Utlb_tenant.Tenant.of_string tenant_spec with
                  | None | Some (Ok None) -> None
                  | Some (Ok (Some cfg)) -> Some cfg
                  | Some (Error msg) ->
                    Format.eprintf "utlbcheck: %s: %s@." label msg;
                    unreadable := true;
                    None
                in
                match
                  Utlb.Sim_driver.Registry.find m.Utlb_exp.Grid.mech_name
                with
                | None ->
                  Format.eprintf "utlbcheck: %s: unregistered mechanism %S@."
                    path m.Utlb_exp.Grid.mech_name;
                  unreadable := true;
                  None
                | Some entry -> (
                  try
                    Some
                      (analyze_tenanted ~tenants:tenancy
                         (entry.Utlb.Sim_driver.Registry.of_params
                            (List.remove_assoc "tenants"
                               m.Utlb_exp.Grid.params))
                         ~label)
                  with Invalid_argument msg ->
                    Format.eprintf "utlbcheck: %s: %s@." label msg;
                    unreadable := true;
                    None))
              grid.Utlb_exp.Grid.mechanisms)
        grids
    in
    let* engine_bounds =
      List.fold_left
        (fun acc spec ->
          Result.bind acc (fun bounds ->
              let name, params = split_engine_spec spec in
              Result.map
                (fun b -> b :: bounds)
                (Bound.analyze_mech ~faults ?tenants:cli_tenants ~slo ~npages
                   ~processes:procs ~name ~params ())))
        (Ok []) engines
      |> Result.map List.rev
    in
    let* config_bounds =
      match config with
      | None -> Ok []
      | Some path -> (
        match Config_file.parse_file path with
        | Error msg -> Error msg
        | Ok (cfg, parse_findings) ->
          base_findings := parse_findings;
          let packed, model = Bound.of_config cfg in
          Ok
            [
              analyze_tenanted ~model ~tenants:cli_tenants packed
                ~label:(Config_file.engine_name cfg.Config_file.engine);
            ])
    in
    let default_bounds =
      if grids <> [] || engines <> [] || config <> None then []
      else
        List.filter_map
          (fun (entry : Utlb.Sim_driver.Registry.entry) ->
            match
              Bound.analyze_mech ~faults ?tenants:cli_tenants ~slo ~npages
                ~processes:procs ~name:entry.name ~params:[] ()
            with
            | Ok b -> Some b
            | Error _ -> None)
          (Utlb.Sim_driver.Registry.mechanisms ())
    in
    let bounds = grid_bounds @ engine_bounds @ config_bounds @ default_bounds in
    if bounds = [] && not !unreadable then begin
      Format.eprintf "utlbcheck: nothing to bound@.";
      2
    end
    else begin
      (* The witness search is scoped reachability: CONFIRMED means a
         concrete schedule inside the explorer's small scope realizes
         the scoped instance of the pinned bound; PLAUSIBLE means the
         search exhausted (or capped) without reaching it. Status goes
         to stderr so --format json stays a pure bound array. *)
      let* () =
        if not (witness || witness_dir <> None) then Ok ()
        else
          try
            List.iter
              (fun (b : Bound.t) ->
                let scope = Explore.default_config.Explore.scope in
                let target = Bound.witness_target scope b in
                let w =
                  Explore.pinned_witness ~target b.Bound.semantics
                in
                if not quiet then
                  Format.eprintf
                    "utlbcheck bound: witness %s: %s (peak %d of target %d, \
                     %d states)@."
                    b.Bound.label
                    (if w.Explore.confirmed then "CONFIRMED" else "PLAUSIBLE")
                    w.Explore.peak w.Explore.target w.Explore.states;
                match witness_dir with
                | None -> ()
                | Some dir ->
                  let path =
                    Filename.concat dir
                      (Printf.sprintf "witness-%s.trace"
                         (sanitize_label b.Bound.label))
                  in
                  let oc = open_out path in
                  List.iter
                    (fun line ->
                      output_string oc line;
                      output_char oc '\n')
                    (Explore.witness_lines ~label:b.Bound.label w);
                  close_out oc;
                  if not quiet then
                    Format.eprintf "utlbcheck bound: wrote %s@." path)
              bounds;
            Ok ()
          with Sys_error msg -> Error msg
      in
      let findings =
        !base_findings @ List.concat_map (fun (b : Bound.t) -> b.Bound.findings) bounds
      in
      (match format with
      | Json -> if not quiet then Format.printf "%a@." Bound.pp_json_list bounds
      | Text ->
        if not quiet then begin
          List.iter (fun b -> Format.printf "%a@." Bound.pp b) bounds;
          report ~format ~quiet ~inputs:(List.length bounds) findings
        end);
      if !unreadable then 2 else Finding.exit_code ~strict findings
    end)

let bound_term =
  Term.(
    const bound_main $ bound_inputs_arg $ bound_engine_arg $ bound_config_arg
    $ slo_arg $ npages_arg $ bound_procs_arg $ faults_arg $ bound_tenants_arg
    $ bound_workloads_arg $ witness_arg $ witness_dir_arg $ explain_arg
    $ strict_arg $ quiet_arg $ format_arg)

(* {2 Command tree} *)

let lint_cmd =
  let doc = "Lint simulation configuration files (the default command)" in
  Cmd.v (Cmd.info "lint" ~doc) lint_term

let verify_cmd =
  let doc = "Statically verify workload traces, grids, and event timelines" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "The protocol verifier abstractly interprets workload traces \
         against the declared engine semantics — a pin-state lattice per \
         (process, page) plus pinned-population bounds — and reports \
         traces that must or may violate the pin protocol with UP0x codes \
         (pin balance vs the memory limit, garbage-frame reuse past the \
         translation table, DMA into self-evicted pages, per-process \
         table overflow, pre-pin divergence windows). Grid inputs check \
         every campaign cell with the exact traces and parameters the \
         campaign would run.";
      `P
        "The happens-before pass ($(b,--hb)) replays an exported event \
         timeline with one vector clock per actor (user processes, the \
         kernel, NI, DMA, bus, interrupt) and synchronisation edges from \
         interrupt delivery, DMA/bus completion, and lookup completion; \
         conflicting accesses to the same (process, page) that no edge \
         orders are reported with UP1x codes.";
      `S Manpage.s_exit_status;
      `P
        "0 on a clean run; 1 when any error finding was reported (with \
         $(b,--strict), also on warnings); 2 when an input could not be \
         read or the command line was unusable.";
    ]
  in
  Cmd.v (Cmd.info "verify" ~doc ~man) verify_term

let explore_cmd =
  let doc =
    "Exhaustively model-check the pin protocol at a small scope"
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Enumerates every interleaving of the pin protocol's individual \
         steps — pin, unpin, table publish, NI fetch, eviction, interrupt \
         delivery, DMA use — for a small configuration (by default 2 \
         processes x 2 pages x 4 NI-cache lines, 2 requests each) against \
         the step-level semantics the selected engines derive from their \
         configurations. Dynamic partial-order reduction (sleep sets plus \
         a persistent-set heuristic keyed on (page, process) \
         independence) and canonical state hashing keep the state space \
         tractable; the stats line reports how much of the naive frontier \
         was pruned.";
      `P
        "Violations combine the admission codes of $(b,verify) (UP01-UP05, \
         found on issue transitions) with exploration-only codes: UP20 \
         deadlock, UP21 unreachable-unpin leak, UP22 non-quiescent final \
         state, UP23 in-flight invalidation race. Every first (code, \
         process) violation is minimized to a counterexample trace \
         ($(b,--ce-dir)) that $(b,utlbsim run --trace-in) replays, \
         $(b,utlbcheck verify) flags with the same UP0x code, and \
         $(b,--trace-in) re-explores to the same UP2x code.";
      `P
        "$(b,--mutant) seeds one known protocol bug (a blocking eviction, \
         a leaked unpin, a skipped shootdown, an early unpin) to validate \
         the detectors: the explorer must find the seeded code \
         deterministically.";
      `S Manpage.s_exit_status;
      `P
        "0 on a clean (exhausted or truncated-but-clean) search; 1 when \
         any violation was found (with $(b,--strict), also on warnings); \
         2 when an input could not be read or the command line was \
         unusable. Depth/budget truncation is always reported on stderr, \
         even under $(b,--quiet).";
    ]
  in
  Cmd.v (Cmd.info "explore" ~doc ~man) explore_term

let bound_cmd =
  let doc =
    "Derive sound worst-case latency and resource bounds, gated by an SLO"
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Abstract-interprets each selected engine's worst-case control \
         paths — hit, miss, walk, and fault-retry chains, including \
         Victima's spill-recall and Utopia's RestSeg-fallback paths — \
         over the paper's cost model, without running any simulation, \
         and derives sound upper bounds on single-translation latency, \
         pinned-page population (per process and node-wide), and \
         per-tenant quota headroom. A $(b,--faults) plan charges its \
         worst-case DMA retry/backoff chain to every walk and its full \
         interrupt re-issue chain to every dispatch.";
      `P
        "Findings use UP4x codes: UP40 SLO violation, UP41 unbounded \
         retry cost, UP42 tenant starvation, UP43 eviction chain wider \
         than the cache, UP44 dead (unreachable) configuration. \
         $(b,--witness) asks the exhaustive explorer for a concrete \
         schedule realizing the pinned bound at its small scope — \
         CONFIRMED when found (the witness trace replays under \
         $(b,utlbsim run --trace-in)), PLAUSIBLE otherwise.";
      `P
        "$(b,utlbsim sweep --slo) runs this pass over a campaign grid \
         before any cell executes, so an SLO-violating configuration \
         fails fast instead of after a long campaign.";
      `S Manpage.s_exit_status;
      `P
        "0 when every bound meets the SLO; 1 when any error finding was \
         reported (with $(b,--strict), also on warnings); 2 when an \
         input could not be read or the command line was unusable.";
    ]
  in
  Cmd.v (Cmd.info "bound" ~doc ~man) bound_term

let cmd =
  let doc = "Static analysis for the UTLB simulator" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Checks simulation configurations before any simulation runs: \
         cache geometry (power-of-two sets, associativity multiples), \
         prefetch and pre-pin windows against cache and memory-limit \
         capacity, per-process SRAM carving, and cost-table consistency \
         (negative or non-monotone latencies, NI hit cost at or above the \
         host fetch cost, DMA cost above the miss cost it is part of). \
         Invoked without a subcommand, arguments are config files to \
         lint.";
      `P
        "$(b,utlbcheck verify) runs the static protocol verifier and the \
         happens-before race detector over workload traces, campaign \
         grids, and event timelines. $(b,utlbcheck explore) exhaustively \
         model-checks every interleaving of the protocol's individual \
         steps at a small scope, with dynamic partial-order reduction and \
         replayable minimized counterexamples. $(b,utlbcheck bound) \
         derives sound worst-case latency and resource bounds \
         symbolically and gates them against a declared SLO.";
      `P
        "Each finding carries a stable machine-readable code: UC0xx for \
         config-file syntax, UC1xx for semantic lints, UP0x/UP1x for the \
         verify passes, UP2x for exploration, UP4x for worst-case bounds. \
         Runtime sanitizer violations use UVxx codes. $(b,--explain) \
         $(i,CODE) describes any of them; LINTS.md lists the full \
         catalogue.";
      `S Manpage.s_exit_status;
      `P
        "0 on a clean run; 1 when any error finding was reported (with \
         $(b,--strict), also on warnings); 2 when an input file could not \
         be read or the command line was unusable.";
    ]
  in
  Cmd.group ~default:lint_term
    (Cmd.info "utlbcheck" ~doc ~man)
    [ lint_cmd; verify_cmd; explore_cmd; bound_cmd ]

(* Cmd.group treats a leading positional as a (possibly unknown)
   sub-command name, which would break the historical `utlbcheck
   file.conf` form; route such invocations to the lint command
   explicitly. *)
let argv =
  match Array.to_list Sys.argv with
  | exe :: first :: rest
    when first <> "lint" && first <> "verify" && first <> "explore"
         && first <> "bound"
         && (String.length first = 0 || first.[0] <> '-') ->
    Array.of_list (exe :: "lint" :: first :: rest)
  | _ -> Sys.argv

(* One exit-code policy for every subcommand: 0 clean, 1 findings,
   2 usage/IO error. Cmdliner splits command-line problems between
   `Parse (bad option value, 124 by default) and `Term (unknown
   option); both are usage errors here, so both map to 2. *)
let () =
  exit
    (match Cmd.eval_value ~argv cmd with
    | Ok (`Ok code) -> code
    | Ok (`Help | `Version) -> 0
    | Error (`Parse | `Term) -> 2
    | Error `Exn -> 125)
