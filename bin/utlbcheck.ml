(* utlbcheck: static lint of UTLB simulation configurations.

   Analyses key=value config files (and the built-in paper defaults)
   before any simulation runs, reporting findings with stable UCxxx
   codes. Exit status: 0 clean, 1 when any error finding was reported
   (or, with --strict, any warning), 2 when a file could not be read. *)

open Cmdliner
module Finding = Utlb_check.Finding
module Config_file = Utlb_check.Config_file
module Config_lint = Utlb_check.Config_lint

let print_findings findings =
  List.iter
    (fun f -> Format.printf "%a@." Finding.pp f)
    (Finding.by_severity findings)

let check_file path =
  match Config_file.parse_file path with
  | Error msg ->
    Format.eprintf "utlbcheck: %s@." msg;
    None
  | Ok (config, parse_findings) ->
    Some (parse_findings @ Config_lint.lint_config config)

let files_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"FILE" ~doc:"Configuration files to check.")

let defaults_arg =
  Arg.(
    value & flag
    & info [ "defaults" ]
        ~doc:
          "Also lint the built-in paper-default configurations and cost \
           model (a self-check; must be clean).")

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ] ~doc:"Treat warnings as errors for the exit code.")

let explain_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "explain" ] ~docv:"CODE"
        ~doc:"Print the description of one UVxx runtime-violation or UC17x \
              fault-plan code and exit.")

let quiet_arg =
  Arg.(
    value & flag
    & info [ "q"; "quiet" ] ~doc:"Print nothing; report only the exit code.")

let main files defaults strict explain quiet =
  match explain with
  | Some code ->
    (match Utlb_check.Invariant.describe code with
    | Some text ->
      print_endline text;
      0
    | None ->
      Format.eprintf "utlbcheck: unknown code %S@." code;
      2)
  | None ->
    if files = [] && not defaults then begin
      Format.eprintf
        "utlbcheck: nothing to check (give config files or --defaults)@.";
      2
    end
    else begin
      let unreadable = ref false in
      let findings =
        List.concat_map
          (fun path ->
            match check_file path with
            | Some fs -> fs
            | None ->
              unreadable := true;
              [])
          files
        @ (if defaults then Config_lint.lint_defaults () else [])
      in
      if not quiet then begin
        print_findings findings;
        Format.printf "utlbcheck: %d error(s), %d warning(s) in %d input(s)@."
          (Finding.errors findings)
          (Finding.warnings findings)
          (List.length files + if defaults then 1 else 0)
      end;
      if !unreadable then 2 else Finding.exit_code ~strict findings
    end

let cmd =
  let doc = "Static lint of UTLB simulator configurations" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Checks simulation configurations before any simulation runs: \
         cache geometry (power-of-two sets, associativity multiples), \
         prefetch and pre-pin windows against cache and memory-limit \
         capacity, per-process SRAM carving, and cost-table consistency \
         (negative or non-monotone latencies, NI hit cost at or above the \
         host fetch cost, DMA cost above the miss cost it is part of).";
      `P
        "Each finding carries a stable machine-readable code: UC0xx for \
         config-file syntax, UC1xx for semantic lints. Runtime sanitizer \
         violations use UVxx codes; $(b,--explain) $(i,CODE) describes \
         them.";
      `S Manpage.s_exit_status;
      `P "0 on a clean run; 1 when any error finding was reported (with \
          $(b,--strict), also on warnings); 2 when an input file could not \
          be read or the command line was unusable.";
    ]
  in
  Cmd.v
    (Cmd.info "utlbcheck" ~doc ~man)
    Term.(
      const main $ files_arg $ defaults_arg $ strict_arg $ explain_arg
      $ quiet_arg)

let () = exit (Cmd.eval' cmd)
