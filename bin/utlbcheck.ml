(* utlbcheck: static analysis of UTLB simulation configurations and
   workloads.

   Two passes share one finding pipeline and exit-code policy:

   - lint (the default command): key=value config files and the
     built-in paper defaults, reporting UCxxx findings before any
     simulation runs;
   - verify: the static protocol verifier (UP0x) over workload traces,
     built-in workloads, and whole campaign grids, plus the
     happens-before race detector (UP1x) over exported event
     timelines.

   Exit status: 0 clean, 1 when any error finding was reported (or,
   with --strict, any warning), 2 when an input could not be read. *)

open Cmdliner
module Finding = Utlb_check.Finding
module Catalogue = Utlb_check.Catalogue
module Config_file = Utlb_check.Config_file
module Config_lint = Utlb_check.Config_lint
module Protocol = Utlb_check.Protocol
module Hb = Utlb_check.Hb

(* {2 Shared options and reporting} *)

type format = Text | Json

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", Text); ("json", Json) ]) Text
    & info [ "format" ] ~docv:"FORMAT"
        ~doc:
          "Report format: $(b,text) (one finding per line plus a summary) \
           or $(b,json) (an array of finding objects, no summary).")

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ] ~doc:"Treat warnings as errors for the exit code.")

let quiet_arg =
  Arg.(
    value & flag
    & info [ "q"; "quiet" ] ~doc:"Print nothing; report only the exit code.")

let report ~format ~quiet ~inputs findings =
  if not quiet then begin
    match format with
    | Json ->
      Format.printf "%a@." Finding.pp_json_list (Finding.by_severity findings)
    | Text ->
      List.iter
        (fun f -> Format.printf "%a@." Finding.pp f)
        (Finding.by_severity findings);
      Format.printf "utlbcheck: %d error(s), %d warning(s) in %d input(s)@."
        (Finding.errors findings)
        (Finding.warnings findings)
        inputs
  end

(* {2 lint} *)

let check_file path =
  match Config_file.parse_file path with
  | Error msg ->
    Format.eprintf "utlbcheck: %s@." msg;
    None
  | Ok (config, parse_findings) ->
    Some (parse_findings @ Config_lint.lint_config config)

let files_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"FILE" ~doc:"Configuration files to check.")

let defaults_arg =
  Arg.(
    value & flag
    & info [ "defaults" ]
        ~doc:
          "Also lint the built-in paper-default configurations and cost \
           model (a self-check; must be clean).")

let explain_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "explain" ] ~docv:"CODE"
        ~doc:
          "Print the description of one finding code — config syntax \
           (UC0xx), configuration lint (UC1xx), runtime violation (UVxx), \
           protocol verifier (UP0x), or race detector (UP1x) — and exit.")

let lint_main files defaults strict explain quiet format =
  match explain with
  | Some code ->
    (match Catalogue.describe code with
    | Some text ->
      print_endline text;
      0
    | None ->
      Format.eprintf "utlbcheck: unknown code %S@." code;
      2)
  | None ->
    if files = [] && not defaults then begin
      Format.eprintf
        "utlbcheck: nothing to check (give config files or --defaults)@.";
      2
    end
    else begin
      let unreadable = ref false in
      let findings =
        List.concat_map
          (fun path ->
            match check_file path with
            | Some fs -> fs
            | None ->
              unreadable := true;
              [])
          files
        @ (if defaults then Config_lint.lint_defaults () else [])
      in
      report ~format ~quiet
        ~inputs:(List.length files + if defaults then 1 else 0)
        findings;
      if !unreadable then 2 else Finding.exit_code ~strict findings
    end

let lint_term =
  Term.(
    const lint_main $ files_arg $ defaults_arg $ strict_arg $ explain_arg
    $ quiet_arg $ format_arg)

(* {2 verify} *)

let verify_inputs_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"INPUT"
        ~doc:
          "Inputs to verify: campaign grid files ($(i,*.grid), every cell \
           is checked) or saved workload trace files (one record per \
           line).")

let config_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "config" ] ~docv:"FILE"
        ~doc:
          "Verify traces against the engine semantics this configuration \
           file declares (its syntax findings are included).")

let mech_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "mech" ] ~docv:"SPEC"
        ~doc:
          "Verify traces against a registered mechanism point, e.g. \
           $(b,utlb) or $(b,intr,entries=1024,limit-mb=1). Overrides \
           $(b,--config).")

let workloads_arg =
  Arg.(
    value & flag
    & info [ "workloads" ]
        ~doc:
          "Also verify the built-in calibrated workload generators (the \
           paper's seven applications at the default seed).")

let hb_arg =
  Arg.(
    value & opt_all string []
    & info [ "hb" ] ~docv:"TIMELINE"
        ~doc:
          "Run the happens-before race detector over this saved event \
           timeline (single-run or the sectioned form \
           $(b,utlbsim sweep --timeline-out) writes). Repeatable.")

let parse_mech_spec spec =
  match String.split_on_char ',' spec with
  | [] -> Error "empty mechanism spec"
  | name :: params ->
    let rec split acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
        match String.index_opt p '=' with
        | None -> Error (Printf.sprintf "mechanism parameter %S is not k=v" p)
        | Some i ->
          split
            ((String.sub p 0 i, String.sub p (i + 1) (String.length p - i - 1))
            :: acc)
            rest)
    in
    Result.bind (split [] params) (fun params ->
        Protocol.of_mech ~name:(String.trim name) ~params)

let verify_main inputs config mech workloads hbs strict quiet format =
  let usage_error = ref None in
  let unreadable = ref false in
  let base_findings = ref [] in
  let sems =
    match (mech, config) with
    | Some spec, _ -> (
      match parse_mech_spec spec with
      | Ok sem -> [ sem ]
      | Error msg ->
        usage_error := Some msg;
        [])
    | None, Some path -> (
      match Config_file.parse_file path with
      | Error msg ->
        usage_error := Some msg;
        []
      | Ok (cfg, parse_findings) ->
        base_findings := parse_findings;
        [ Protocol.of_config cfg ])
    | None, None -> Protocol.defaults
  in
  match !usage_error with
  | Some msg ->
    Format.eprintf "utlbcheck: %s@." msg;
    2
  | None ->
    if inputs = [] && hbs = [] && not workloads then begin
      Format.eprintf
        "utlbcheck: nothing to verify (give grids, traces, --workloads, or \
         --hb timelines)@.";
      2
    end
    else begin
      let input_findings =
        List.concat_map
          (fun path ->
            if Filename.check_suffix path ".grid" then
              match Utlb_exp.Grid.of_file path with
              | Error msg ->
                Format.eprintf "utlbcheck: %s@." msg;
                unreadable := true;
                []
              | Ok grid -> Protocol.verify_grid grid
            else
              List.concat_map
                (fun (sem : Protocol.semantics) ->
                  match Protocol.verify_file sem path with
                  | Error msg ->
                    Format.eprintf "utlbcheck: %s@." msg;
                    unreadable := true;
                    []
                  | Ok fs ->
                    let context = Some (path ^ ":" ^ sem.Protocol.label) in
                    List.map
                      (fun (f : Finding.t) -> { f with Finding.context })
                      fs)
                sems)
          inputs
      in
      let workload_findings =
        if not workloads then []
        else
          List.concat_map
            (fun spec ->
              List.concat_map
                (fun sem -> Protocol.verify_workload sem spec)
                sems)
            Utlb_trace.Workloads.all
      in
      let hb_findings =
        List.concat_map
          (fun path ->
            match Hb.analyze_file path with
            | Error msg ->
              Format.eprintf "utlbcheck: %s@." msg;
              unreadable := true;
              []
            | Ok fs -> fs)
          hbs
      in
      let findings =
        !base_findings @ input_findings @ workload_findings @ hb_findings
      in
      let inputs_count =
        List.length inputs + List.length hbs
        + if workloads then List.length Utlb_trace.Workloads.all else 0
      in
      report ~format ~quiet ~inputs:inputs_count findings;
      if !unreadable then 2 else Finding.exit_code ~strict findings
    end

let verify_term =
  Term.(
    const verify_main $ verify_inputs_arg $ config_arg $ mech_arg
    $ workloads_arg $ hb_arg $ strict_arg $ quiet_arg $ format_arg)

(* {2 Command tree} *)

let lint_cmd =
  let doc = "Lint simulation configuration files (the default command)" in
  Cmd.v (Cmd.info "lint" ~doc) lint_term

let verify_cmd =
  let doc = "Statically verify workload traces, grids, and event timelines" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "The protocol verifier abstractly interprets workload traces \
         against the declared engine semantics — a pin-state lattice per \
         (process, page) plus pinned-population bounds — and reports \
         traces that must or may violate the pin protocol with UP0x codes \
         (pin balance vs the memory limit, garbage-frame reuse past the \
         translation table, DMA into self-evicted pages, per-process \
         table overflow, pre-pin divergence windows). Grid inputs check \
         every campaign cell with the exact traces and parameters the \
         campaign would run.";
      `P
        "The happens-before pass ($(b,--hb)) replays an exported event \
         timeline with one vector clock per actor (user processes, the \
         kernel, NI, DMA, bus, interrupt) and synchronisation edges from \
         interrupt delivery, DMA/bus completion, and lookup completion; \
         conflicting accesses to the same (process, page) that no edge \
         orders are reported with UP1x codes.";
      `S Manpage.s_exit_status;
      `P
        "0 on a clean run; 1 when any error finding was reported (with \
         $(b,--strict), also on warnings); 2 when an input could not be \
         read or the command line was unusable.";
    ]
  in
  Cmd.v (Cmd.info "verify" ~doc ~man) verify_term

let cmd =
  let doc = "Static analysis for the UTLB simulator" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Checks simulation configurations before any simulation runs: \
         cache geometry (power-of-two sets, associativity multiples), \
         prefetch and pre-pin windows against cache and memory-limit \
         capacity, per-process SRAM carving, and cost-table consistency \
         (negative or non-monotone latencies, NI hit cost at or above the \
         host fetch cost, DMA cost above the miss cost it is part of). \
         Invoked without a subcommand, arguments are config files to \
         lint.";
      `P
        "$(b,utlbcheck verify) runs the static protocol verifier and the \
         happens-before race detector over workload traces, campaign \
         grids, and event timelines.";
      `P
        "Each finding carries a stable machine-readable code: UC0xx for \
         config-file syntax, UC1xx for semantic lints, UP0x/UP1x for the \
         verify passes. Runtime sanitizer violations use UVxx codes. \
         $(b,--explain) $(i,CODE) describes any of them; LINTS.md lists \
         the full catalogue.";
      `S Manpage.s_exit_status;
      `P
        "0 on a clean run; 1 when any error finding was reported (with \
         $(b,--strict), also on warnings); 2 when an input file could not \
         be read or the command line was unusable.";
    ]
  in
  Cmd.group ~default:lint_term
    (Cmd.info "utlbcheck" ~doc ~man)
    [ lint_cmd; verify_cmd ]

(* Cmd.group treats a leading positional as a (possibly unknown)
   sub-command name, which would break the historical `utlbcheck
   file.conf` form; route such invocations to the lint command
   explicitly. *)
let argv =
  match Array.to_list Sys.argv with
  | exe :: first :: rest
    when first <> "lint" && first <> "verify"
         && (String.length first = 0 || first.[0] <> '-') ->
    Array.of_list (exe :: "lint" :: first :: rest)
  | _ -> Sys.argv

let () = exit (Cmd.eval' ~argv cmd)
