(* utlbsim: command-line driver for the UTLB trace-driven simulator.

   Subcommands:
     run     — simulate one workload/configuration and print the report
     sweep   — run a declarative campaign grid (workloads x mechanisms
               x config axes) across N domains and emit csv/json/table
     list    — registered mechanisms and calibrated workloads
     trace   — generate a workload trace and write it to a file
     stats   — print Table-3 statistics for a saved trace file
     analyze — reuse-distance and locality analysis of a workload
     synth   — build a custom pattern-based workload and compare
               mechanisms on it

   A standalone --verbose anywhere on the command line enables debug
   logging from the utlb.* log sources. *)

open Cmdliner
module Workloads = Utlb_trace.Workloads
module Trace = Utlb_trace.Trace
open Utlb

let app_conv =
  let parse s =
    match Workloads.find s with
    | Some spec -> Ok spec
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown application %S (expected one of %s)" s
              (String.concat ", "
                 (List.map (fun (w : Workloads.spec) -> w.name) Workloads.all))))
  in
  let print ppf (w : Workloads.spec) = Format.pp_print_string ppf w.name in
  Arg.conv (parse, print)

let assoc_conv =
  let parse s =
    match Ni_cache.associativity_of_string s with
    | Some a -> Ok a
    | None ->
      Error (`Msg "expected direct, direct-nohash, 2-way, or 4-way")
  in
  let print ppf a = Format.pp_print_string ppf (Ni_cache.associativity_name a) in
  Arg.conv (parse, print)

let policy_conv =
  let parse s =
    match Replacement.policy_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg "expected lru, mru, lfu, mfu, or random")
  in
  let print ppf p = Format.pp_print_string ppf (Replacement.policy_name p) in
  Arg.conv (parse, print)

let app_arg =
  Arg.(
    required
    & opt (some app_conv) None
    & info [ "a"; "app" ] ~docv:"APP" ~doc:"Workload (fft, lu, barnes, ...).")

let entries_arg =
  Arg.(
    value & opt int 8192
    & info [ "e"; "entries" ] ~docv:"N" ~doc:"Shared UTLB-Cache entries.")

let assoc_arg =
  Arg.(
    value
    & opt assoc_conv Ni_cache.Direct
    & info [ "assoc" ] ~docv:"ASSOC" ~doc:"Cache organisation.")

let prefetch_arg =
  Arg.(
    value & opt int 1
    & info [ "prefetch" ] ~docv:"N" ~doc:"Entries fetched per NI miss.")

let prepin_arg =
  Arg.(
    value & opt int 1
    & info [ "prepin" ] ~docv:"N" ~doc:"Pages pre-pinned per check miss.")

let policy_arg =
  Arg.(
    value
    & opt policy_conv Replacement.Lru
    & info [ "policy" ] ~docv:"POLICY" ~doc:"User-level replacement policy.")

let limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "limit-mb" ] ~docv:"MB"
        ~doc:"Per-process pinned-memory limit in megabytes.")

let seed_arg =
  Arg.(
    value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let intr_arg =
  Arg.(
    value & flag
    & info [ "interrupt-based" ]
        ~doc:"Simulate the interrupt-based baseline instead of UTLB.")

let limit_pages = function
  | None -> None
  | Some mb -> Some (mb * 256) (* 4 KB pages per MB *)

let print_report model prefetch mechanism_is_intr r =
  Printf.printf "workload        %s\n" r.Report.label;
  Printf.printf "lookups         %d\n" r.Report.lookups;
  Printf.printf "check misses    %d (%.3f/lookup)\n" r.Report.check_misses
    (Report.check_miss_rate r);
  Printf.printf "NI misses       %d lookups, %d pages (%.3f/lookup)\n"
    r.Report.ni_miss_lookups r.Report.ni_page_misses (Report.ni_miss_rate r);
  Printf.printf "pins            %d calls, %d pages\n" r.Report.pin_calls
    r.Report.pages_pinned;
  Printf.printf "unpins          %d calls, %d pages (%.3f/lookup)\n"
    r.Report.unpin_calls r.Report.pages_unpinned (Report.unpin_rate r);
  Printf.printf "interrupts      %d\n" r.Report.interrupts;
  Printf.printf "3C breakdown    compulsory=%d capacity=%d conflict=%d\n"
    r.Report.compulsory r.Report.capacity r.Report.conflict;
  let cost =
    if mechanism_is_intr then Report.intr_cost_us model r
    else Report.utlb_cost_us ~prefetch model r
  in
  Printf.printf "avg lookup cost %.2f us\n" cost

let sanitize_arg =
  Arg.(
    value & flag
    & info [ "sanitize" ]
        ~doc:
          "Enable the runtime invariant sanitizers (pin accounting, \
           garbage-frame use, cache/host-table agreement, classifier \
           shadow checks). Violations are printed after the report and \
           make the command exit 1.")

let run_cmd =
  let run app entries assoc prefetch prepin policy limit seed intr sanitize =
    let mechanism =
      if intr then
        Sim_driver.Intr
          {
            Intr_engine.cache = { Ni_cache.entries; associativity = assoc };
            memory_limit_pages = limit_pages limit;
          }
      else
        Sim_driver.Utlb
          {
            Hier_engine.cache = { Ni_cache.entries; associativity = assoc };
            prefetch;
            prepin;
            policy;
            memory_limit_pages = limit_pages limit;
          }
    in
    let sanitizer =
      if sanitize then
        Some (Utlb_sim.Sanitizer.create ~mode:Utlb_sim.Sanitizer.Record ())
      else None
    in
    let report = Sim_driver.run_workload ?sanitizer ~seed mechanism app in
    print_report Cost_model.default prefetch intr report;
    match sanitizer with
    | None -> ()
    | Some san ->
      if Utlb_sim.Sanitizer.is_clean san then
        print_endline "sanitizers      clean"
      else begin
        Format.printf "%a@." Utlb_sim.Sanitizer.pp san;
        exit 1
      end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate one workload and print the full report.")
    Term.(
      const run $ app_arg $ entries_arg $ assoc_arg $ prefetch_arg
      $ prepin_arg $ policy_arg $ limit_arg $ seed_arg $ intr_arg
      $ sanitize_arg)

let sweep_cmd =
  let grid_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "g"; "grid" ] ~docv:"FILE"
          ~doc:
            "Campaign grid file: `name', `seed', `workloads' and \
             `mechanism NAME key=v1,v2,...' lines (see grids/*.grid).")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("csv", `Csv); ("json", `Json); ("table", `Table) ]) `Table
      & info [ "f"; "format" ] ~docv:"FORMAT"
          ~doc:"Output format: csv, json, or table.")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "d"; "domains" ] ~docv:"N"
          ~doc:"Fan the campaign's cells out over $(docv) domains. The \
                output is byte-identical to a serial run.")
  in
  let sweep grid_file format domains sanitize =
    match Utlb_exp.Grid.of_file grid_file with
    | Error msg ->
      Printf.eprintf "%s: %s\n" grid_file msg;
      exit 1
    | Ok grid -> (
      let outcomes =
        try Utlb_exp.Runner.run ~domains ~sanitize grid
        with Invalid_argument msg ->
          Printf.eprintf "%s: %s\n" grid_file msg;
          exit 1
      in
      let ppf = Format.std_formatter in
      (match format with
      | `Csv -> Utlb_exp.Emit.csv ppf outcomes
      | `Json -> Utlb_exp.Emit.json ppf outcomes
      | `Table ->
        Format.fprintf ppf "campaign %s: %d cells@.@." grid.Utlb_exp.Grid.name
          (List.length outcomes);
        Utlb_exp.Emit.matrix
          ~rows:(fun o ->
            o.Utlb_exp.Runner.cell.Utlb_exp.Grid.workload
              .Utlb_trace.Workloads.name)
          ~cols:(fun o ->
            Utlb_exp.Grid.mech_label
              o.Utlb_exp.Runner.cell.Utlb_exp.Grid.mech)
          ~metrics:
            [
              ("check", fun o -> Report.check_miss_rate o.Utlb_exp.Runner.report);
              ("NI miss", fun o -> Report.ni_miss_rate o.Utlb_exp.Runner.report);
              ("unpins", fun o -> Report.unpin_rate o.Utlb_exp.Runner.report);
            ]
          ppf outcomes);
      match Utlb_exp.Runner.violation_summary outcomes with
      | [] ->
        if sanitize then Format.eprintf "sanitizers clean@."
      | by_code ->
        List.iter
          (fun (code, count) ->
            Format.eprintf "%s: %d violation(s) — %s@." code count
              (Option.value ~default:"unknown code"
                 (Utlb_check.Invariant.describe code)))
          by_code;
        exit 1)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run a campaign grid (workloads x mechanisms x config axes) \
          across domains and emit the results.")
    Term.(const sweep $ grid_arg $ format_arg $ domains_arg $ sanitize_arg)

let list_cmd =
  let list () =
    print_endline "mechanisms (Sim_driver.Registry):";
    List.iter
      (fun (e : Sim_driver.Registry.entry) ->
        Printf.printf "  %-12s %s\n" e.Sim_driver.Registry.name
          e.Sim_driver.Registry.doc)
      (Sim_driver.Registry.mechanisms ());
    print_endline "";
    print_endline "workloads (Table 3 calibrated generators):";
    List.iter
      (fun (w : Workloads.spec) ->
        Printf.printf "  %-12s %-18s %s\n" w.Workloads.name
          w.Workloads.problem_size w.Workloads.description)
      Workloads.all
  in
  Cmd.v
    (Cmd.info "list"
       ~doc:"List registered mechanisms and calibrated workloads.")
    Term.(const list $ const ())

let out_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output trace file.")

let trace_cmd =
  let generate (app : Workloads.spec) seed out =
    let trace = app.generate ~seed in
    Out_channel.with_open_text out (fun oc -> Trace.save trace oc);
    Printf.printf "wrote %d records (%d-page footprint) to %s\n"
      (Trace.length trace)
      (Trace.footprint_pages trace)
      out
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Generate a workload trace file.")
    Term.(const generate $ app_arg $ seed_arg $ out_arg)

let in_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Trace file to analyse.")

let stats_cmd =
  let stats file =
    match In_channel.with_open_text file Trace.load with
    | Error msg ->
      prerr_endline msg;
      exit 1
    | Ok trace ->
      Printf.printf "records          %d\n" (Trace.length trace);
      Printf.printf "footprint        %d pages\n" (Trace.footprint_pages trace);
      Printf.printf "pages touched    %d\n" (Trace.total_pages_touched trace);
      List.iter
        (fun (pid, pages) ->
          Printf.printf "  pid %d footprint %d pages\n"
            (Utlb_mem.Pid.to_int pid) pages)
        (Trace.per_pid_footprint trace)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print statistics of a saved trace file.")
    Term.(const stats $ in_arg)

let synth_cmd =
  let pattern_conv =
    Arg.enum
      [ ("sequential", `Sequential); ("strided", `Strided);
        ("cyclic", `Cyclic); ("hotcold", `Hot_cold); ("random", `Random) ]
  in
  let synth pattern pages lookups passes entries seed =
    let module P = Utlb_trace.Pattern in
    let p =
      match pattern with
      | `Sequential -> P.sequential ~pages ()
      | `Strided -> P.strided ~pairs:true ~pages ()
      | `Cyclic -> P.cyclic ~passes ~pages ()
      | `Hot_cold -> P.hot_cold ~hot_fraction:0.15 ~hot_bias:0.9 ~lookups ~pages
      | `Random -> P.uniform_random ~lookups ~pages ()
    in
    let trace = P.to_trace ~seed p in
    Printf.printf "synthetic trace: %d lookups, %d-page footprint\n"
      (Trace.length trace)
      (Trace.footprint_pages trace);
    let model = Cost_model.default in
    List.iter
      (fun (name, mechanism) ->
        let r = Sim_driver.run ~seed ~label:name mechanism trace in
        let cost =
          match mechanism with
          | Sim_driver.Intr _ -> Report.intr_cost_us model r
          | Sim_driver.Utlb _ | Sim_driver.Per_process _ ->
            Report.utlb_cost_us model r
        in
        Printf.printf
          "%-12s check=%.3f ni=%.3f unpins=%.3f cost=%.1fus\n" name
          (Report.check_miss_rate r) (Report.ni_miss_rate r)
          (Report.unpin_rate r) cost)
      [
        ( "utlb",
          Sim_driver.Utlb
            {
              Hier_engine.default_config with
              cache = { Ni_cache.entries; associativity = Ni_cache.Direct };
            } );
        ( "intr",
          Sim_driver.Intr
            {
              Intr_engine.cache =
                { Ni_cache.entries; associativity = Ni_cache.Direct };
              memory_limit_pages = None;
            } );
        ( "per-process",
          Sim_driver.Per_process
            {
              Pp_engine.sram_budget_entries = entries;
              processes = 5;
              policy = Replacement.Lru;
            } );
      ]
  in
  let pattern_arg =
    Arg.(
      value
      & opt pattern_conv `Cyclic
      & info [ "pattern" ] ~docv:"PATTERN"
          ~doc:"sequential, strided, cyclic, hotcold, or random.")
  in
  let pages_arg =
    Arg.(value & opt int 2000 & info [ "pages" ] ~docv:"N" ~doc:"Pages per process.")
  in
  let lookups_arg =
    Arg.(
      value & opt int 10000
      & info [ "lookups" ] ~docv:"N" ~doc:"Lookups (hotcold/random patterns).")
  in
  let passes_arg =
    Arg.(value & opt int 4 & info [ "passes" ] ~docv:"N" ~doc:"Cyclic passes.")
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:
         "Build a custom synthetic workload from pattern combinators and           compare mechanisms on it.")
    Term.(
      const synth $ pattern_arg $ pages_arg $ lookups_arg $ passes_arg
      $ entries_arg $ seed_arg)

let analyze_cmd =
  let analyze app seed =
    let trace = (app : Workloads.spec).generate ~seed in
    let summary = Utlb_trace.Analysis.summarize trace in
    Format.printf "%a@." Utlb_trace.Analysis.pp_summary summary;
    let hist = Utlb_trace.Analysis.reuse_distances trace in
    Format.printf "%a@." Utlb_trace.Analysis.pp_histogram hist;
    Format.printf
      "fully-associative LRU hit-ratio bound: 1K %.2f, 4K %.2f, 16K %.2f@."
      (Utlb_trace.Analysis.hit_ratio_at hist ~entries:1024)
      (Utlb_trace.Analysis.hit_ratio_at hist ~entries:4096)
      (Utlb_trace.Analysis.hit_ratio_at hist ~entries:16384)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Locality analysis of a workload: reuse distances, footprints.")
    Term.(const analyze $ app_arg $ seed_arg)

let setup_logging verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let () =
  (* A lone --verbose before the subcommand enables debug logging for
     every command. *)
  setup_logging (Array.exists (String.equal "--verbose") Sys.argv);
  let info =
    Cmd.info "utlbsim" ~version:"1.0.0"
      ~doc:"Trace-driven simulator for UTLB address translation."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd; sweep_cmd; list_cmd; trace_cmd; stats_cmd; analyze_cmd;
            synth_cmd;
          ]))
