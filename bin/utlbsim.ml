(* utlbsim: command-line driver for the UTLB trace-driven simulator.

   Subcommands:
     run     — simulate one workload/configuration and print the report
               (optionally exporting a Chrome trace and a metrics
               snapshot)
     sweep   — run a declarative campaign grid (workloads x mechanisms
               x config axes) across N domains and emit csv/json/table
     inspect — replay one cell under full observation and rank the
               costliest event classes
     list    — registered mechanisms and calibrated workloads
     trace   — generate a workload trace and write it to a file
     stats   — print Table-3 statistics for a saved trace file
     analyze — reuse-distance and locality analysis of a workload
     synth   — build a custom pattern-based workload and compare
               mechanisms on it

   A standalone --verbose anywhere on the command line enables debug
   logging from the utlb.* log sources. *)

open Cmdliner
module Workloads = Utlb_trace.Workloads
module Trace = Utlb_trace.Trace
open Utlb

let app_conv =
  let spec_of name =
    match Workloads.find name with
    | Some spec -> Ok spec
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown application %S (expected one of %s)" name
              (String.concat ", "
                 (List.map (fun (w : Workloads.spec) -> w.name) Workloads.all))))
  in
  (* `name@factor' scales the workload, grid-file style: same access
     structure, footprint and lookup count multiplied. *)
  let parse s =
    match String.index_opt s '@' with
    | None -> spec_of s
    | Some i -> (
      let name = String.sub s 0 i in
      let factor = String.sub s (i + 1) (String.length s - i - 1) in
      match (spec_of name, float_of_string_opt factor) with
      | Error e, _ -> Error e
      | Ok _, None ->
        Error (`Msg (Printf.sprintf "bad scale factor %S in %S" factor s))
      | Ok spec, Some f -> (
        try
          let scaled = Workloads.scaled spec ~factor:f in
          Ok
            (Workloads.custom ~name:s
               ~problem_size:scaled.Workloads.problem_size
               ~description:scaled.Workloads.description
               ~generate:scaled.Workloads.generate ())
        with Invalid_argument msg -> Error (`Msg msg)))
  in
  let print ppf (w : Workloads.spec) = Format.pp_print_string ppf w.name in
  Arg.conv (parse, print)

let assoc_conv =
  let parse s =
    match Ni_cache.associativity_of_string s with
    | Some a -> Ok a
    | None ->
      Error (`Msg "expected direct, direct-nohash, 2-way, or 4-way")
  in
  let print ppf a = Format.pp_print_string ppf (Ni_cache.associativity_name a) in
  Arg.conv (parse, print)

let policy_conv =
  let parse s =
    match Replacement.policy_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg "expected lru, mru, lfu, mfu, or random")
  in
  let print ppf p = Format.pp_print_string ppf (Replacement.policy_name p) in
  Arg.conv (parse, print)

let app_arg =
  Arg.(
    required
    & opt (some app_conv) None
    & info [ "a"; "app" ] ~docv:"APP"
        ~doc:
          "Workload (fft, lu, barnes, ...). APP@FACTOR runs a scaled \
           variant, e.g. fft@0.01.")

let app_opt_arg =
  Arg.(
    value
    & opt (some app_conv) None
    & info [ "a"; "app" ] ~docv:"APP"
        ~doc:
          "Workload (fft, lu, barnes, ...). APP@FACTOR runs a scaled \
           variant, e.g. fft@0.01. Required unless $(b,--trace-in) is \
           given.")

let plan_conv =
  let parse s =
    match Utlb_fault.Plan.of_string s with
    | Ok plan -> Ok plan
    | Error msg -> Error (`Msg msg)
  in
  let print ppf plan =
    Format.pp_print_string ppf (Utlb_fault.Plan.to_string plan)
  in
  Arg.conv (parse, print)

let faults_arg =
  Arg.(
    value
    & opt (some plan_conv) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Fault-injection plan: comma-separated KEY=VALUE pairs, e.g. \
           $(b,dma-fail=0.05,dma-retries=3,table-swap=0.01). Keys: \
           dma-fail, dma-retries, dma-backoff-us, dma-spike, \
           dma-spike-us, bus-stall, bus-stall-us, net-drop, net-dup, \
           cache-invalidate, table-swap, irq-timeout, irq-retries. \
           Injection is deterministic in the seed; recoveries are \
           counted in the report.")

(* --tenants carries the raw spec: the conv validates it eagerly (so a
   bad spec fails argument parsing, with the grammar in the message)
   but keeps the string, which `sweep' installs as the grid-level
   directive and `run' compiles into an arbiter. *)
let tenants_conv =
  let parse s =
    match Utlb_tenant.Tenant.of_string s with
    | Ok _ -> Ok s
    | Error msg ->
      Error (`Msg (Printf.sprintf "%s (%s)" msg Utlb_tenant.Tenant.grammar))
  in
  Arg.conv (parse, Format.pp_print_string)

let tenants_arg =
  Arg.(
    value
    & opt (some tenants_conv) None
    & info [ "tenants" ] ~docv:"SPEC"
        ~doc:
          "Multi-tenant partitioning spec \
           $(b,MODE/NAME=PIDS:quota=N:share=F:weight=N/...) with MODE \
           one of shared, offset, or strict and PIDS $(b,+)-joined pids \
           or ranges (e.g. $(b,strict/victim=0:share=0.5/noisy=1-3)). \
           $(b,off) disables tenancy. Per-tenant isolation counters are \
           appended to the report.")

(* Tenancy config lints (UC18x) are warnings: the run proceeds, the
   codes land on stderr so report goldens are unaffected. *)
let warn_tenant_lints = function
  | None -> ()
  | Some cfg ->
    List.iter
      (fun (code, msg) -> Printf.eprintf "%s: %s\n%!" code msg)
      (Utlb_tenant.Tenant.validate cfg)

let tenancy_of_spec spec =
  match Option.map Utlb_tenant.Tenant.of_string spec with
  | None | Some (Ok None) -> None
  | Some (Ok (Some cfg)) ->
    warn_tenant_lints (Some cfg);
    Some (Utlb_tenant.Arbiter.create cfg)
  | Some (Error msg) ->
    (* Unreachable after conv validation, but fail loudly anyway. *)
    Printf.eprintf "bad --tenants spec: %s\n" msg;
    exit 1

(* The fault stream is seeded from the run seed but xor'd so it stays
   distinct from the engine's own RNG stream (same derivation as the
   campaign runner's per-cell injectors). *)
let injector_of ~seed faults =
  Option.map
    (fun plan ->
      Utlb_fault.Injector.create ~seed:(Int64.logxor seed 0xFA17_FA17L) plan)
    faults

let print_fault_summary inj =
  Printf.printf "faults          %d injected, %d recovered (plan: %s)\n"
    (Utlb_fault.Injector.injected inj)
    (Utlb_fault.Injector.recoveries inj)
    (Utlb_fault.Plan.to_string (Utlb_fault.Injector.plan inj));
  List.iter
    (fun (klass, n) -> Printf.printf "  %-17s %d\n" klass n)
    (Utlb_fault.Injector.by_class inj)

let entries_arg =
  Arg.(
    value & opt int 8192
    & info [ "e"; "entries" ] ~docv:"N" ~doc:"Shared UTLB-Cache entries.")

let assoc_arg =
  Arg.(
    value
    & opt assoc_conv Ni_cache.Direct
    & info [ "assoc" ] ~docv:"ASSOC" ~doc:"Cache organisation.")

let prefetch_arg =
  Arg.(
    value & opt int 1
    & info [ "prefetch" ] ~docv:"N" ~doc:"Entries fetched per NI miss.")

let prepin_arg =
  Arg.(
    value & opt int 1
    & info [ "prepin" ] ~docv:"N" ~doc:"Pages pre-pinned per check miss.")

let policy_arg =
  Arg.(
    value
    & opt policy_conv Replacement.Lru
    & info [ "policy" ] ~docv:"POLICY" ~doc:"User-level replacement policy.")

let limit_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "limit-mb" ] ~docv:"MB"
        ~doc:"Per-process pinned-memory limit in megabytes.")

let seed_arg =
  Arg.(
    value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let intr_arg =
  Arg.(
    value & flag
    & info [ "interrupt-based" ]
        ~doc:"Simulate the interrupt-based baseline instead of UTLB.")

let limit_pages = function
  | None -> None
  | Some mb -> Some (mb * 256) (* 4 KB pages per MB *)

let print_report model prefetch mechanism_is_intr r =
  Printf.printf "workload        %s\n" r.Report.label;
  Printf.printf "lookups         %d\n" r.Report.lookups;
  Printf.printf "check misses    %d (%.3f/lookup)\n" r.Report.check_misses
    (Report.check_miss_rate r);
  Printf.printf "NI misses       %d lookups, %d pages (%.3f/lookup)\n"
    r.Report.ni_miss_lookups r.Report.ni_page_misses (Report.ni_miss_rate r);
  Printf.printf "pins            %d calls, %d pages\n" r.Report.pin_calls
    r.Report.pages_pinned;
  Printf.printf "unpins          %d calls, %d pages (%.3f/lookup)\n"
    r.Report.unpin_calls r.Report.pages_unpinned (Report.unpin_rate r);
  Printf.printf "interrupts      %d\n" r.Report.interrupts;
  Printf.printf "3C breakdown    compulsory=%d capacity=%d conflict=%d\n"
    r.Report.compulsory r.Report.capacity r.Report.conflict;
  (* Fault and skip lines appear only when there is something to say,
     keeping fault-free output byte-identical to the pre-fault-plane
     format (the @obs golden depends on it). *)
  if r.Report.fault_recoveries > 0 then
    Printf.printf "recoveries      %d\n" r.Report.fault_recoveries;
  if r.Report.records_skipped > 0 then
    Printf.printf "records skipped %d\n" r.Report.records_skipped;
  (* Same gating for tenancy: the per-tenant block exists only when the
     run carried an arbiter, so untenanted reports stay byte-identical. *)
  (match r.Report.isolation with
  | None -> ()
  | Some iso -> Format.printf "%a@." Utlb_tenant.Isolation.pp iso);
  let cost =
    if mechanism_is_intr then Report.intr_cost_us model r
    else Report.utlb_cost_us ~prefetch model r
  in
  Printf.printf "avg lookup cost %.2f us\n" cost

let metrics_fmt_arg =
  Arg.(
    value
    & opt (some (enum [ ("csv", `Csv); ("json", `Json) ])) None
    & info [ "metrics" ] ~docv:"FORMAT"
        ~doc:
          "Collect an observability metrics snapshot (event counters, \
           volume counters, latency histograms) and print it as csv or \
           json after the report.")

let print_metrics fmt snapshot =
  let ppf = Format.std_formatter in
  (match fmt with
  | `Csv -> Utlb_obs.Metrics.Snapshot.to_csv ppf snapshot
  | `Json -> Utlb_obs.Metrics.Snapshot.to_json ppf snapshot);
  Format.pp_print_flush ppf ()

let write_chrome_trace file sink =
  Out_channel.with_open_text file (fun oc ->
      let ppf = Format.formatter_of_out_channel oc in
      Utlb_obs.Export.chrome_json ppf sink;
      Format.pp_print_flush ppf ());
  Printf.printf "trace           %d event(s) (%d dropped) -> %s\n"
    (Utlb_obs.Trace_sink.emitted sink)
    (Utlb_obs.Trace_sink.dropped sink)
    file

let sanitize_arg =
  Arg.(
    value & flag
    & info [ "sanitize" ]
        ~doc:
          "Enable the runtime invariant sanitizers (pin accounting, \
           garbage-frame use, cache/host-table agreement, classifier \
           shadow checks). Violations are printed after the report and \
           make the command exit 1.")

let run_cmd =
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace_event JSON timeline of the run to \
             $(docv); open it in chrome://tracing or Perfetto.")
  in
  let trace_cap_arg =
    Arg.(
      value
      & opt int Utlb_obs.Trace_sink.default_capacity
      & info [ "trace-cap" ] ~docv:"N"
          ~doc:
            "Trace ring capacity in events; older events are dropped \
             (whole-run counts survive in the trace's otherData block).")
  in
  let trace_in_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "trace-in" ] ~docv:"FILE"
          ~doc:
            "Replay a saved trace file instead of generating a \
             workload. Malformed records are skipped with a warning \
             and counted in the report.")
  in
  let run app trace_in entries assoc prefetch prepin policy limit seed intr
      sanitize trace_out trace_cap metrics_fmt faults tenants =
    let mechanism =
      if intr then
        Sim_driver.Intr
          {
            Intr_engine.cache = { Ni_cache.entries; associativity = assoc };
            memory_limit_pages = limit_pages limit;
          }
      else
        Sim_driver.Utlb
          {
            Hier_engine.cache = { Ni_cache.entries; associativity = assoc };
            prefetch;
            prepin;
            policy;
            memory_limit_pages = limit_pages limit;
          }
    in
    let sanitizer =
      if sanitize then
        Some (Utlb_sim.Sanitizer.create ~mode:Utlb_sim.Sanitizer.Record ())
      else None
    in
    let sink =
      Option.map
        (fun _ -> Utlb_obs.Trace_sink.create ~capacity:trace_cap ())
        trace_out
    in
    let registry =
      Option.map (fun _ -> Utlb_obs.Metrics.create ()) metrics_fmt
    in
    let obs =
      match (sink, registry) with
      | None, None -> None
      | _ ->
        Some
          (Utlb_obs.Scope.create ?sink ?metrics:registry
             ~cost_of:Obs_cost.default ())
    in
    let faults_inj = injector_of ~seed faults in
    let tenancy = tenancy_of_spec tenants in
    let report =
      match (trace_in, app) with
      | None, None ->
        Printf.eprintf "utlbsim run: one of --app or --trace-in is required\n";
        exit 1
      | Some _, Some _ ->
        Printf.eprintf "utlbsim run: --app and --trace-in are exclusive\n";
        exit 1
      | None, Some app ->
        Sim_driver.run_workload ?sanitizer ?obs ?faults:faults_inj ?tenancy
          ~seed mechanism app
      | Some file, None ->
        let trace, skipped =
          In_channel.with_open_text file Sim_driver.load_trace_lenient
        in
        Sim_driver.run ?sanitizer ?obs ?faults:faults_inj ?tenancy
          ~records_skipped:skipped ~seed ~label:(Filename.basename file)
          mechanism trace
    in
    print_report Cost_model.default prefetch intr report;
    (match faults_inj with
    | Some inj -> print_fault_summary inj
    | None -> ());
    (match (trace_out, sink) with
    | Some file, Some sink -> write_chrome_trace file sink
    | _ -> ());
    (match (metrics_fmt, registry) with
    | Some fmt, Some registry ->
      print_metrics fmt (Utlb_obs.Metrics.snapshot registry)
    | _ -> ());
    match sanitizer with
    | None -> ()
    | Some san ->
      if Utlb_sim.Sanitizer.is_clean san then
        print_endline "sanitizers      clean"
      else begin
        Format.printf "%a@." Utlb_sim.Sanitizer.pp san;
        exit 1
      end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate one workload and print the full report.")
    Term.(
      const run $ app_opt_arg $ trace_in_arg $ entries_arg $ assoc_arg
      $ prefetch_arg $ prepin_arg $ policy_arg $ limit_arg $ seed_arg
      $ intr_arg $ sanitize_arg $ trace_out_arg $ trace_cap_arg
      $ metrics_fmt_arg $ faults_arg $ tenants_arg)

let sweep_cmd =
  let grid_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "g"; "grid" ] ~docv:"FILE"
          ~doc:
            "Campaign grid file: `name', `seed', `workloads', \
             `mechanism NAME key=v1,v2,...', and `tenants SPEC' lines \
             (see grids/*.grid).")
  in
  let format_arg =
    Arg.(
      value
      & opt (enum [ ("csv", `Csv); ("json", `Json); ("table", `Table) ]) `Table
      & info [ "f"; "format" ] ~docv:"FORMAT"
          ~doc:"Output format: csv, json, or table.")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "d"; "domains" ] ~docv:"N"
          ~doc:"Fan the campaign's cells out over $(docv) domains. The \
                output is byte-identical to a serial run.")
  in
  let timeline_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "timeline-out" ] ~docv:"FILE"
          ~doc:
            "Write a sectioned text timeline of the campaign to $(docv): \
             one `# cell' header per cell (in cell order, byte-identical \
             at any $(b,--domains)) followed by its retained events. \
             Readable back by $(b,utlbcheck verify --hb).")
  in
  let timeline_cap_arg =
    Arg.(
      value
      & opt int Utlb_obs.Trace_sink.default_capacity
      & info [ "timeline-cap" ] ~docv:"N"
          ~doc:
            "Per-cell trace ring capacity in events; older events are \
             dropped.")
  in
  let write_timeline file grid outcomes =
    Out_channel.with_open_text file (fun oc ->
        let ppf = Format.formatter_of_out_channel oc in
        Format.fprintf ppf "# timeline %s@\n" grid.Utlb_exp.Grid.name;
        List.iter
          (fun (o : Utlb_exp.Runner.outcome) ->
            Format.fprintf ppf "# cell %d %s/%s@\n"
              o.Utlb_exp.Runner.cell.Utlb_exp.Grid.index
              o.Utlb_exp.Runner.cell.Utlb_exp.Grid.workload
                .Utlb_trace.Workloads.name
              (Utlb_exp.Grid.mech_label
                 o.Utlb_exp.Runner.cell.Utlb_exp.Grid.mech);
            List.iter
              (fun ev -> Format.fprintf ppf "%a@\n" Utlb_obs.Event.pp ev)
              o.Utlb_exp.Runner.events)
          outcomes;
        Format.pp_print_flush ppf ());
    Printf.printf "timeline        %d event(s) -> %s\n"
      (List.fold_left
         (fun acc (o : Utlb_exp.Runner.outcome) ->
           acc + List.length o.Utlb_exp.Runner.events)
         0 outcomes)
      file
  in
  let slo_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "slo" ] ~docv:"SPEC"
          ~doc:
            "Certify every mechanism point of the grid against this \
             service-level objective (e.g. $(b,lat_us<=250,pinned<=8192)) \
             with the symbolic worst-case analyzer ($(b,utlbcheck bound)) \
             $(i,before) any cell runs; the campaign is refused when a \
             bound exceeds the budget (UP4x findings on stderr).")
  in
  let sweep grid_file format domains sanitize metrics_fmt faults timeline_out
      timeline_cap tenants slo =
    match Utlb_exp.Grid.of_file grid_file with
    | Error msg ->
      Printf.eprintf "%s: %s\n" grid_file msg;
      exit 1
    | Ok grid -> (
      (* --tenants overrides the grid's own directive (but not per-cell
         tenants= mechanism parameters, which stay the finest grain). *)
      let grid =
        match tenants with
        | None -> grid
        | Some spec -> (
          match Utlb_tenant.Tenant.of_string spec with
          | Ok None -> { grid with Utlb_exp.Grid.tenants = None }
          | Ok (Some _) -> { grid with Utlb_exp.Grid.tenants = Some spec }
          | Error _ -> grid (* conv already validated *))
      in
      (match grid.Utlb_exp.Grid.tenants with
      | Some spec -> (
        match Utlb_tenant.Tenant.of_string spec with
        | Ok cfg -> warn_tenant_lints cfg
        | Error _ -> ())
      | None -> ());
      (* --slo: run the symbolic worst-case analyzer over every
         mechanism point first, so an SLO-violating configuration fails
         fast instead of after a long campaign. Resolution errors
         (unregistered mechanisms, bad params) are left to Runner.run,
         which reports them identically with or without the gate. *)
      (match slo with
      | None -> ()
      | Some spec -> (
        match Utlb_check.Bound.slo_of_string spec with
        | Error msg ->
          Printf.eprintf "%s: --slo %s\n" grid_file msg;
          exit 1
        | Ok slo ->
          let findings =
            List.concat_map
              (fun (m : Utlb_exp.Grid.mech) ->
                let tenancy =
                  let spec =
                    match
                      List.assoc_opt "tenants" m.Utlb_exp.Grid.params
                    with
                    | Some s -> Some s
                    | None -> grid.Utlb_exp.Grid.tenants
                  in
                  match Option.map Utlb_tenant.Tenant.of_string spec with
                  | Some (Ok cfg) -> cfg
                  | None | Some (Error _) -> None
                in
                match
                  Sim_driver.Registry.find m.Utlb_exp.Grid.mech_name
                with
                | None -> []
                | Some entry -> (
                  try
                    (Utlb_check.Bound.analyze
                       ?faults ?tenants:tenancy ~slo
                       ~label:
                         (grid.Utlb_exp.Grid.name ^ ":"
                         ^ Utlb_exp.Grid.mech_label m)
                       (entry.Sim_driver.Registry.of_params
                          (List.remove_assoc "tenants"
                             m.Utlb_exp.Grid.params)))
                      .Utlb_check.Bound.findings
                  with Invalid_argument _ -> []))
              grid.Utlb_exp.Grid.mechanisms
          in
          List.iter
            (fun f -> Format.eprintf "%a@." Utlb_check.Finding.pp f)
            findings;
          if Utlb_check.Finding.has_errors findings then begin
            Format.eprintf
              "sweep: SLO gate failed (utlbcheck bound); no cells were run@.";
            exit 1
          end));
      let observe = Option.is_some metrics_fmt in
      let trace =
        Option.map (fun _ -> timeline_cap) timeline_out
      in
      let outcomes =
        try
          Utlb_exp.Runner.run ~domains ~sanitize ~observe ?trace ?faults grid
        with Invalid_argument msg ->
          Printf.eprintf "%s: %s\n" grid_file msg;
          exit 1
      in
      (match timeline_out with
      | Some file -> write_timeline file grid outcomes
      | None -> ());
      let ppf = Format.std_formatter in
      (match format with
      | `Csv -> Utlb_exp.Emit.csv ppf outcomes
      | `Json -> Utlb_exp.Emit.json ppf outcomes
      | `Table ->
        Format.fprintf ppf "campaign %s: %d cells@.@." grid.Utlb_exp.Grid.name
          (List.length outcomes);
        Utlb_exp.Emit.matrix
          ~rows:(fun o ->
            o.Utlb_exp.Runner.cell.Utlb_exp.Grid.workload
              .Utlb_trace.Workloads.name)
          ~cols:(fun o ->
            Utlb_exp.Grid.mech_label
              o.Utlb_exp.Runner.cell.Utlb_exp.Grid.mech)
          ~metrics:
            [
              ("check", fun o -> Report.check_miss_rate o.Utlb_exp.Runner.report);
              ("NI miss", fun o -> Report.ni_miss_rate o.Utlb_exp.Runner.report);
              ("unpins", fun o -> Report.unpin_rate o.Utlb_exp.Runner.report);
            ]
          ppf outcomes;
        (* Per-cell per-tenant fairness blocks, only for cells that ran
           tenanted — untenanted tables are unchanged. Cells are kept
           separate (not merged) so aggressor/victim effects can be
           compared across partitioning modes. *)
        List.iter
          (fun o ->
            match o.Utlb_exp.Runner.report.Report.isolation with
            | None -> ()
            | Some iso ->
              Format.fprintf ppf "@.%s x %s@.%a@."
                o.Utlb_exp.Runner.cell.Utlb_exp.Grid.workload
                  .Utlb_trace.Workloads.name
                (Utlb_exp.Grid.mech_label
                   o.Utlb_exp.Runner.cell.Utlb_exp.Grid.mech)
                Utlb_tenant.Isolation.pp iso)
          outcomes);
      (match metrics_fmt with
      | None -> ()
      | Some fmt -> (
        match Utlb_exp.Runner.merged_metrics outcomes with
        | None -> ()
        | Some snapshot -> print_metrics fmt snapshot));
      match Utlb_exp.Runner.violation_summary outcomes with
      | [] ->
        if sanitize then Format.eprintf "sanitizers clean@."
      | by_code ->
        List.iter
          (fun (code, count) ->
            Format.eprintf "%s: %d violation(s) — %s@." code count
              (Option.value ~default:"unknown code"
                 (Utlb_check.Invariant.describe code)))
          by_code;
        exit 1)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run a campaign grid (workloads x mechanisms x config axes) \
          across domains and emit the results.")
    Term.(
      const sweep $ grid_arg $ format_arg $ domains_arg $ sanitize_arg
      $ metrics_fmt_arg $ faults_arg $ timeline_out_arg $ timeline_cap_arg
      $ tenants_arg $ slo_arg)

let inspect_cmd =
  let mech_arg =
    Arg.(
      value & opt string "utlb"
      & info [ "m"; "mech" ] ~docv:"NAME"
          ~doc:
            "Registered mechanism name (utlb, intr, per-process, ...; \
             see $(b,utlbsim list)).")
  in
  let param_arg =
    Arg.(
      value
      & opt_all (pair ~sep:'=' string string) []
      & info [ "p"; "param" ] ~docv:"KEY=VALUE"
          ~doc:"Mechanism parameter (repeatable), e.g. -p entries=4096.")
  in
  let top_arg =
    Arg.(
      value & opt int 8
      & info [ "top" ] ~docv:"K" ~doc:"Event classes to rank.")
  in
  let tail_arg =
    Arg.(
      value & opt int 0
      & info [ "tail" ] ~docv:"N"
          ~doc:"Also print the last $(docv) events of the timeline.")
  in
  let quantiles name h =
    let q = Utlb_sim.Stats.Histogram.quantile h in
    Printf.printf "%-15s p50=%.1fus p90=%.1fus p99=%.1fus (%d sample(s))\n"
      name (q 0.5) (q 0.9) (q 0.99)
      (Utlb_sim.Stats.Histogram.count h)
  in
  let inspect (app : Workloads.spec) mech params top tail seed faults =
    match Sim_driver.Registry.find mech with
    | None ->
      Printf.eprintf "unknown mechanism %S (try `utlbsim list')\n" mech;
      exit 1
    | Some entry ->
      let packed =
        try entry.Sim_driver.Registry.of_params params
        with Invalid_argument msg ->
          Printf.eprintf "%s\n" msg;
          exit 1
      in
      let sink = Utlb_obs.Trace_sink.create () in
      let registry = Utlb_obs.Metrics.create () in
      let obs =
        Utlb_obs.Scope.create ~sink ~metrics:registry
          ~cost_of:Obs_cost.default ()
      in
      let label = app.Workloads.name ^ "/" ^ mech in
      let trace = app.Workloads.generate ~seed in
      let faults_inj = injector_of ~seed faults in
      let report =
        Sim_driver.run_packed ~seed ~obs ?faults:faults_inj ~label packed
          trace
      in
      Printf.printf "cell            %s\n" report.Report.label;
      Printf.printf "lookups         %d (check=%.3f ni=%.3f unpins=%.3f)\n"
        report.Report.lookups
        (Report.check_miss_rate report)
        (Report.ni_miss_rate report) (Report.unpin_rate report);
      Printf.printf "events          %d emitted, %d dropped\n"
        (Utlb_obs.Trace_sink.emitted sink)
        (Utlb_obs.Trace_sink.dropped sink);
      let total = Utlb_obs.Scope.total_cost obs in
      Printf.printf "modelled cost   %.1f us\n" total;
      Printf.printf "costliest event classes:\n";
      List.iteri
        (fun i (kind, count, cost) ->
          if i < top then
            Printf.printf "  %2d. %-16s %8d event(s) %12.1f us  %5.1f%%\n"
              (i + 1)
              (Utlb_obs.Event.kind_name kind)
              count cost
              (if total > 0. then 100. *. cost /. total else 0.))
        (Utlb_obs.Scope.by_cost obs);
      List.iter
        (fun name ->
          match Utlb_obs.Metrics.find registry name with
          | Some (Utlb_obs.Metrics.Histogram h)
            when Utlb_sim.Stats.Histogram.count h > 0 ->
            quantiles name h
          | _ -> ())
        [ "host/lookup_us"; "host/miss_us"; "dma/fetch_us" ];
      (match faults_inj with
      | Some inj -> print_fault_summary inj
      | None -> ());
      if tail > 0 then
        Format.printf "%a@." (Utlb_obs.Export.timeline ~limit:tail) sink
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:
         "Replay one workload/mechanism cell under full observation and \
          rank the costliest event classes.")
    Term.(
      const inspect $ app_arg $ mech_arg $ param_arg $ top_arg $ tail_arg
      $ seed_arg $ faults_arg)

let list_cmd =
  let list () =
    print_endline "mechanisms (Sim_driver.Registry):";
    List.iter
      (fun (e : Sim_driver.Registry.entry) ->
        Printf.printf "  %-12s %s\n" e.Sim_driver.Registry.name
          e.Sim_driver.Registry.doc)
      (Sim_driver.Registry.mechanisms ());
    print_endline "";
    print_endline "workloads (Table 3 calibrated generators):";
    List.iter
      (fun (w : Workloads.spec) ->
        Printf.printf "  %-12s %-18s %s\n" w.Workloads.name
          w.Workloads.problem_size w.Workloads.description)
      Workloads.all
  in
  Cmd.v
    (Cmd.info "list"
       ~doc:"List registered mechanisms and calibrated workloads.")
    Term.(const list $ const ())

let out_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output trace file.")

let trace_cmd =
  let generate (app : Workloads.spec) seed out =
    let trace = app.generate ~seed in
    Out_channel.with_open_text out (fun oc -> Trace.save trace oc);
    Printf.printf "wrote %d records (%d-page footprint) to %s\n"
      (Trace.length trace)
      (Trace.footprint_pages trace)
      out
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Generate a workload trace file.")
    Term.(const generate $ app_arg $ seed_arg $ out_arg)

let in_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Trace file to analyse.")

let stats_cmd =
  let stats file =
    match In_channel.with_open_text file Trace.load with
    | Error msg ->
      prerr_endline msg;
      exit 1
    | Ok trace ->
      Printf.printf "records          %d\n" (Trace.length trace);
      Printf.printf "footprint        %d pages\n" (Trace.footprint_pages trace);
      Printf.printf "pages touched    %d\n" (Trace.total_pages_touched trace);
      List.iter
        (fun (pid, pages) ->
          Printf.printf "  pid %d footprint %d pages\n"
            (Utlb_mem.Pid.to_int pid) pages)
        (Trace.per_pid_footprint trace)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print statistics of a saved trace file.")
    Term.(const stats $ in_arg)

let synth_cmd =
  let pattern_conv =
    Arg.enum
      [ ("sequential", `Sequential); ("strided", `Strided);
        ("cyclic", `Cyclic); ("hotcold", `Hot_cold); ("random", `Random) ]
  in
  let synth pattern pages lookups passes entries seed =
    let module P = Utlb_trace.Pattern in
    let p =
      match pattern with
      | `Sequential -> P.sequential ~pages ()
      | `Strided -> P.strided ~pairs:true ~pages ()
      | `Cyclic -> P.cyclic ~passes ~pages ()
      | `Hot_cold -> P.hot_cold ~hot_fraction:0.15 ~hot_bias:0.9 ~lookups ~pages
      | `Random -> P.uniform_random ~lookups ~pages ()
    in
    let trace = P.to_trace ~seed p in
    Printf.printf "synthetic trace: %d lookups, %d-page footprint\n"
      (Trace.length trace)
      (Trace.footprint_pages trace);
    let model = Cost_model.default in
    List.iter
      (fun (name, mechanism) ->
        let r = Sim_driver.run ~seed ~label:name mechanism trace in
        let cost =
          match mechanism with
          | Sim_driver.Intr _ -> Report.intr_cost_us model r
          | Sim_driver.Utlb _ | Sim_driver.Per_process _ ->
            Report.utlb_cost_us model r
        in
        Printf.printf
          "%-12s check=%.3f ni=%.3f unpins=%.3f cost=%.1fus\n" name
          (Report.check_miss_rate r) (Report.ni_miss_rate r)
          (Report.unpin_rate r) cost)
      [
        ( "utlb",
          Sim_driver.Utlb
            {
              Hier_engine.default_config with
              cache = { Ni_cache.entries; associativity = Ni_cache.Direct };
            } );
        ( "intr",
          Sim_driver.Intr
            {
              Intr_engine.cache =
                { Ni_cache.entries; associativity = Ni_cache.Direct };
              memory_limit_pages = None;
            } );
        ( "per-process",
          Sim_driver.Per_process
            {
              Pp_engine.sram_budget_entries = entries;
              processes = 5;
              policy = Replacement.Lru;
            } );
      ]
  in
  let pattern_arg =
    Arg.(
      value
      & opt pattern_conv `Cyclic
      & info [ "pattern" ] ~docv:"PATTERN"
          ~doc:"sequential, strided, cyclic, hotcold, or random.")
  in
  let pages_arg =
    Arg.(value & opt int 2000 & info [ "pages" ] ~docv:"N" ~doc:"Pages per process.")
  in
  let lookups_arg =
    Arg.(
      value & opt int 10000
      & info [ "lookups" ] ~docv:"N" ~doc:"Lookups (hotcold/random patterns).")
  in
  let passes_arg =
    Arg.(value & opt int 4 & info [ "passes" ] ~docv:"N" ~doc:"Cyclic passes.")
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:
         "Build a custom synthetic workload from pattern combinators and           compare mechanisms on it.")
    Term.(
      const synth $ pattern_arg $ pages_arg $ lookups_arg $ passes_arg
      $ entries_arg $ seed_arg)

let analyze_cmd =
  let analyze app seed =
    let trace = (app : Workloads.spec).generate ~seed in
    let summary = Utlb_trace.Analysis.summarize trace in
    Format.printf "%a@." Utlb_trace.Analysis.pp_summary summary;
    let hist = Utlb_trace.Analysis.reuse_distances trace in
    Format.printf "%a@." Utlb_trace.Analysis.pp_histogram hist;
    Format.printf
      "fully-associative LRU hit-ratio bound: 1K %.2f, 4K %.2f, 16K %.2f@."
      (Utlb_trace.Analysis.hit_ratio_at hist ~entries:1024)
      (Utlb_trace.Analysis.hit_ratio_at hist ~entries:4096)
      (Utlb_trace.Analysis.hit_ratio_at hist ~entries:16384)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Locality analysis of a workload: reuse distances, footprints.")
    Term.(const analyze $ app_arg $ seed_arg)

let setup_logging verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let () =
  (* A lone --verbose before the subcommand enables debug logging for
     every command. *)
  setup_logging (Array.exists (String.equal "--verbose") Sys.argv);
  let info =
    Cmd.info "utlbsim" ~version:"1.0.0"
      ~doc:"Trace-driven simulator for UTLB address translation."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd; sweep_cmd; inspect_cmd; list_cmd; trace_cmd; stats_cmd;
            analyze_cmd; synth_cmd;
          ]))
