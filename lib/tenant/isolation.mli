(** Per-tenant isolation summary: the tenant-sliced counterpart of
    [Utlb.Report], produced by {!Arbiter.snapshot} and carried through
    report aggregation.

    The windowed miss-rate moments ([windows]/[win_mean]/[win_m2]) are
    Welford accumulators over fixed-size windows of NI accesses; their
    variance is the interference signal the partitioned/unpartitioned
    sweeps compare. {!add} merges them exactly (parallel Welford), so
    sharded campaign cells aggregate deterministically. *)

type row = {
  name : string;
  weight : int;
  lookups : int;
  ni_accesses : int;
  ni_hits : int;
  ni_misses : int;
  evictions : int;
      (** This tenant's NI-cache lines evicted, by anyone. *)
  cross_evictions : int;
      (** This tenant's lines evicted by a {e different} tenant — the
          direct interference count; zero under strict partitioning. *)
  quota_denials : int;
      (** Pages this tenant was refused pinning for because its quota
          was exhausted. *)
  pinned_peak : int;
  windows : int;
  win_mean : float;  (** Mean per-window NI miss rate. *)
  win_m2 : float;  (** Welford M2 of per-window NI miss rates. *)
}

type t = { mode : Tenant.mode; rows : row array }

val row : name:string -> weight:int -> row
(** A zero row. *)

val miss_rate : row -> float

val window_variance : row -> float
(** Sample variance of the per-window miss rate; 0 below 2 windows. *)

val add : t -> t -> t
(** Row-wise sum with exact parallel-Welford merge of the window
    moments.
    @raise Invalid_argument when the tenant sets differ. *)

val merge_opt : t option -> t option -> t option
(** {!add} lifted over options: [None] is the identity (a run without
    tenancy contributes nothing). *)

val jain : t -> float
(** Jain's fairness index over per-tenant weighted service
    (NI hits / weight), in [(0, 1]]; 1.0 when service is proportional
    to weight (or when there was no service at all). *)

val cross_evictions : t -> int

val quota_denials : t -> int

val pp_row : Format.formatter -> row -> unit

val pp : Format.formatter -> t -> unit
