(* Per-tenant mutable accounting. One record per tenant, touched on the
   engine hot path, so everything is a flat mutable field. *)
type counters = {
  mutable lookups : int;
  mutable ni_accesses : int;
  mutable ni_hits : int;
  mutable ni_misses : int;
  mutable evictions : int;
  mutable cross_evictions : int;
  mutable quota_denials : int;
  mutable pinned_now : int;
  mutable pinned_peak : int;
  (* Fixed-size window over NI accesses; each full window feeds one
     miss-rate observation into the Welford moments below. *)
  mutable win_accesses : int;
  mutable win_misses : int;
  mutable windows : int;
  mutable win_mean : float;
  mutable win_m2 : float;
}

let fresh_counters () =
  {
    lookups = 0;
    ni_accesses = 0;
    ni_hits = 0;
    ni_misses = 0;
    evictions = 0;
    cross_evictions = 0;
    quota_denials = 0;
    pinned_now = 0;
    pinned_peak = 0;
    win_accesses = 0;
    win_misses = 0;
    windows = 0;
    win_mean = 0.0;
    win_m2 = 0.0;
  }

type t = {
  active : bool;
  config : Tenant.config option;
  window : int;
  pid_tenant : int array;  (* dense pid -> tenant id; -1 = unmanaged *)
  counters : counters array;
  quotas : int array;  (* per tenant; max_int = unlimited *)
  (* Cache windows, computed by [bind] once the geometry is known:
     set_index = win_base + ((hash + win_offset) land win_mask). *)
  mutable sets : int;
  win_base : int array;
  win_mask : int array;
  win_offset : int array;
  mutable on_window : tenant:int -> rate:float -> unit;
}

let no_window_hook ~tenant:_ ~rate:_ = ()

let none =
  {
    active = false;
    config = None;
    window = 1;
    pid_tenant = [||];
    counters = [||];
    quotas = [||];
    sets = 0;
    win_base = [||];
    win_mask = [||];
    win_offset = [||];
    on_window = no_window_hook;
  }

let default_window = 256

let create ?(window = default_window) (config : Tenant.config) =
  if window < 1 then invalid_arg "Arbiter.create: window must be positive";
  let n = Tenant.tenants config in
  let max_pid =
    Array.fold_left
      (fun acc p -> List.fold_left max acc p.Tenant.pids)
      (-1) config.policies
  in
  let pid_tenant = Array.make (max_pid + 1) (-1) in
  Array.iteri
    (fun id p -> List.iter (fun pid -> pid_tenant.(pid) <- id) p.Tenant.pids)
    config.policies;
  {
    active = true;
    config = Some config;
    window;
    pid_tenant;
    counters = Array.init n (fun _ -> fresh_counters ());
    quotas =
      Array.map
        (fun p -> Option.value ~default:max_int p.Tenant.quota)
        config.policies;
    sets = 0;
    win_base = Array.make n 0;
    win_mask = Array.make n 0;
    win_offset = Array.make n 0;
    on_window = no_window_hook;
  }

let of_config = function None -> none | Some config -> create config

let active t = t.active

let config t = t.config

let set_on_window t f = if t.active then t.on_window <- f

let tenant_of_pid t ~pid =
  if pid >= 0 && pid < Array.length t.pid_tenant then t.pid_tenant.(pid)
  else -1

let name t ~tenant =
  match t.config with
  | Some c when tenant >= 0 && tenant < Tenant.tenants c ->
    (Tenant.policy c tenant).Tenant.name
  | _ -> "-"

(* ------------------------------------------------------------------ *)
(* Cache-window geometry                                               *)

let floor_pow2 n =
  let rec go p = if p * 2 <= n then go (p * 2) else p in
  if n < 1 then 0 else go 1

let bind t ~sets =
  if not t.active then ()
  else if t.sets = sets then () (* idempotent rebind *)
  else begin
    let config = Option.get t.config in
    let n = Tenant.tenants config in
    t.sets <- sets;
    (* Defaults: the whole cache, no offset. *)
    for id = 0 to n - 1 do
      t.win_base.(id) <- 0;
      t.win_mask.(id) <- sets - 1;
      t.win_offset.(id) <- 0
    done;
    match config.mode with
    | Tenant.Shared -> ()
    | Tenant.Offset ->
      (* Everyone reaches the whole cache but starts from a different
         base, so disjoint working sets collide less. *)
      for id = 0 to n - 1 do
        t.win_offset.(id) <- id * sets / n
      done
    | Tenant.Strict ->
      (* Tenants with a declared share own a private power-of-two
         window; allocating in descending size order at a running base
         keeps every window naturally aligned. Tenants without a share
         (and unmanaged pids) share the largest power-of-two window
         that fits in what is left. *)
      let sized =
        Array.to_list
          (Array.mapi
             (fun id p ->
               match p.Tenant.share with
               | Some f when f > 0.0 ->
                 (id, max 1 (floor_pow2 (int_of_float (f *. float_of_int sets))))
               | _ -> (id, 0))
             config.policies)
      in
      let shared, rest =
        List.partition (fun (_, w) -> w = 0) sized
      in
      let rest =
        List.sort (fun (_, a) (_, b) -> compare b a) rest
      in
      let base = ref 0 in
      List.iter
        (fun (id, w) ->
          if !base + w <= sets then begin
            t.win_base.(id) <- !base;
            t.win_mask.(id) <- w - 1;
            base := !base + w
          end
          (* Over-committed shares fall back to the whole cache; the
             UC182/UC184 lints flag the configuration. *))
        rest;
      let leftover = floor_pow2 (sets - !base) in
      if leftover > 0 then
        List.iter
          (fun (id, _) ->
            t.win_base.(id) <- !base;
            t.win_mask.(id) <- leftover - 1)
          shared
  end

let window t ~pid =
  if not t.active then None
  else begin
    let tenant = tenant_of_pid t ~pid in
    if tenant < 0 then None
    else begin
      let base = t.win_base.(tenant)
      and mask = t.win_mask.(tenant)
      and offset = t.win_offset.(tenant) in
      if base = 0 && offset = 0 && mask = t.sets - 1 then None
      else Some (base, mask, offset)
    end
  end

(* ------------------------------------------------------------------ *)
(* Quotas                                                              *)

let quota_remaining t ~pid =
  if not t.active then max_int
  else begin
    let tenant = tenant_of_pid t ~pid in
    if tenant < 0 then max_int
    else begin
      let q = t.quotas.(tenant) in
      if q = max_int then max_int
      else max 0 (q - t.counters.(tenant).pinned_now)
    end
  end

let note_pin t ~pid ~pages =
  if t.active then begin
    let tenant = tenant_of_pid t ~pid in
    if tenant >= 0 then begin
      let c = t.counters.(tenant) in
      c.pinned_now <- c.pinned_now + pages;
      if c.pinned_now > c.pinned_peak then c.pinned_peak <- c.pinned_now
    end
  end

let note_unpin t ~pid ~pages =
  if t.active then begin
    let tenant = tenant_of_pid t ~pid in
    if tenant >= 0 then begin
      let c = t.counters.(tenant) in
      c.pinned_now <- max 0 (c.pinned_now - pages)
    end
  end

let note_denied t ~pid ~pages =
  if t.active && pages > 0 then begin
    let tenant = tenant_of_pid t ~pid in
    if tenant >= 0 then begin
      let c = t.counters.(tenant) in
      c.quota_denials <- c.quota_denials + pages
    end
  end

(* ------------------------------------------------------------------ *)
(* Accounting                                                          *)

let note_lookup t ~pid =
  if t.active then begin
    let tenant = tenant_of_pid t ~pid in
    if tenant >= 0 then begin
      let c = t.counters.(tenant) in
      c.lookups <- c.lookups + 1
    end
  end

let close_window t ~tenant (c : counters) =
  let rate = float_of_int c.win_misses /. float_of_int c.win_accesses in
  (* Welford over completed windows. *)
  c.windows <- c.windows + 1;
  let delta = rate -. c.win_mean in
  c.win_mean <- c.win_mean +. (delta /. float_of_int c.windows);
  c.win_m2 <- c.win_m2 +. (delta *. (rate -. c.win_mean));
  c.win_accesses <- 0;
  c.win_misses <- 0;
  t.on_window ~tenant ~rate

let note_ni_access t ~pid ~hit =
  if t.active then begin
    let tenant = tenant_of_pid t ~pid in
    if tenant >= 0 then begin
      let c = t.counters.(tenant) in
      c.ni_accesses <- c.ni_accesses + 1;
      if hit then c.ni_hits <- c.ni_hits + 1 else c.ni_misses <- c.ni_misses + 1;
      c.win_accesses <- c.win_accesses + 1;
      if not hit then c.win_misses <- c.win_misses + 1;
      if c.win_accesses >= t.window then close_window t ~tenant c
    end
  end

let note_eviction t ~victim_pid ~by_pid =
  if t.active then begin
    let victim = tenant_of_pid t ~pid:victim_pid in
    if victim >= 0 then begin
      let c = t.counters.(victim) in
      c.evictions <- c.evictions + 1;
      let by = tenant_of_pid t ~pid:by_pid in
      if by <> victim then c.cross_evictions <- c.cross_evictions + 1
    end
  end

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)

let snapshot t =
  match t.config with
  | None -> None
  | Some config ->
    let rows =
      Array.mapi
        (fun id (p : Tenant.policy) ->
          let c = t.counters.(id) in
          {
            Isolation.name = p.Tenant.name;
            weight = p.Tenant.weight;
            lookups = c.lookups;
            ni_accesses = c.ni_accesses;
            ni_hits = c.ni_hits;
            ni_misses = c.ni_misses;
            evictions = c.evictions;
            cross_evictions = c.cross_evictions;
            quota_denials = c.quota_denials;
            pinned_peak = c.pinned_peak;
            windows = c.windows;
            win_mean = c.win_mean;
            win_m2 = c.win_m2;
          })
        config.policies
    in
    Some { Isolation.mode = config.mode; rows }
