(** Tenant registry: which processes belong to which tenant, and what
    each tenant is entitled to.

    A tenancy configuration is declarative — a partition mode plus one
    policy per tenant — and engine-agnostic: the {!Arbiter} turns it
    into runtime enforcement at the engine boundary, and
    {!Isolation} turns the arbiter's accounting into per-tenant report
    rows. Processes not claimed by any tenant are unmanaged: no quota,
    the whole NI cache, weight 1. *)

type mode =
  | Shared  (** No cache partitioning; tenancy only tags and accounts. *)
  | Offset
      (** Proportional-share offsetting: every tenant can reach the
          whole cache, but each indexes it from a different base so
          disjoint working sets collide less. *)
  | Strict
      (** Hard set partitioning: each tenant with a [share] owns a
          private power-of-two window of cache sets and can neither
          evict nor be evicted by another tenant. *)

val mode_name : mode -> string

val mode_of_string : string -> mode option

type policy = {
  name : string;
  pids : int list;  (** Processes belonging to this tenant. *)
  quota : int option;
      (** Max pages the tenant may hold pinned (hier/intr) or
          translation-table entries it may occupy (per-process). *)
  share : float option;
      (** Fraction of NI-cache sets in [Strict] mode (rounded down to a
          power of two); ignored in [Shared]/[Offset]. *)
  weight : int;
      (** Lookup-bandwidth weight used by the fairness metrics
          (default 1). *)
}

type config = { mode : mode; policies : policy array }
(** The tenant id is the index into [policies]. *)

val tenants : config -> int

val policy : config -> int -> policy

val tenant_of_pid : config -> pid:int -> int option

val grammar : string
(** Human-readable one-line description of the spec grammar (for CLI
    error messages). *)

val of_string : string -> (config option, string) result
(** Parse the comma-free spec grammar
    [MODE/NAME=PIDS[:quota=N][:share=F][:weight=N]/...] where [PIDS]
    is [+]-joined pids or inclusive ranges ([0+2-4]). ["off"] and the
    empty string parse to [Ok None] (tenancy disabled). The grammar
    avoids commas so a whole spec can be one value of a grid
    mechanism-parameter axis, and hashes so it survives grid files'
    [#]-comment stripping. *)

val to_string : config -> string
(** Render back to the spec grammar (inverse of {!of_string} up to
    default attributes). *)

val validate : ?sets:int -> config -> (string * string) list
(** Semantic lints as [(code, message)] pairs using the stable UC18x
    codes (see LINTS.md): overlapping pid sets (UC181), bad shares
    (UC182), non-positive quotas/weights (UC183), and — when the NI
    cache geometry [sets] is known — strict windows below one set
    (UC184). Empty when the config is clean. *)
