(** Runtime tenancy enforcement and accounting.

    An arbiter is the compiled form of a {!Tenant.config}: engines tag
    every lookup, NI-cache access, eviction, pin and unpin with the
    owning tenant through it, ask it for quota headroom before pinning,
    and read the cache-window geometry it computes from the partition
    mode. The inert {!none} value keeps the hot path branch-cheap when
    tenancy is off — every [note_*] call is a single load-and-test of
    {!active} — mirroring the [Utlb_obs.Probe] treatment of [?obs]. *)

type t

val none : t
(** The disabled arbiter: {!active} is [false], every note is a no-op,
    every quota is unlimited, every window is the whole cache. *)

val default_window : int
(** NI accesses per miss-rate window (256). *)

val create : ?window:int -> Tenant.config -> t
(** Compile a config. [window] is the per-tenant miss-rate window
    length in NI accesses.
    @raise Invalid_argument when [window < 1]. *)

val of_config : Tenant.config option -> t
(** [create] on [Some], {!none} on [None]. *)

val active : t -> bool

val config : t -> Tenant.config option

val bind : t -> sets:int -> unit
(** Bind the arbiter to an NI cache of [sets] sets, computing per-tenant
    index windows: [Strict] shares become private power-of-two set
    windows allocated largest-first (no-share tenants jointly take the
    leftover window), [Offset] becomes per-tenant additive index
    offsets, [Shared] leaves the geometry alone. Idempotent for a given
    [sets]; a no-op on {!none}. *)

val window : t -> pid:int -> (int * int * int) option
(** [(base, mask, offset)] of [pid]'s tenant set window, such that the
    cache index is [base + ((hash + offset) land mask)] — or [None]
    when the window is the whole unshifted cache (inactive arbiter,
    unmanaged pid, or [Shared] mode). *)

val tenant_of_pid : t -> pid:int -> int
(** Tenant id of [pid], or [-1] when unmanaged. *)

val name : t -> tenant:int -> string
(** Tenant display name; ["-"] for unmanaged. *)

val quota_remaining : t -> pid:int -> int
(** Pages [pid]'s tenant may still pin; [max_int] when unlimited. *)

val note_pin : t -> pid:int -> pages:int -> unit

val note_unpin : t -> pid:int -> pages:int -> unit

val note_denied : t -> pid:int -> pages:int -> unit
(** Count [pages] refused by quota exhaustion. *)

val note_lookup : t -> pid:int -> unit

val note_ni_access : t -> pid:int -> hit:bool -> unit
(** One NI-cache probe; feeds the per-tenant hit/miss counters and the
    windowed miss-rate moments (closing a window fires the
    {!set_on_window} hook). *)

val note_eviction : t -> victim_pid:int -> by_pid:int -> unit
(** An NI-cache line owned by [victim_pid] was evicted by an insert on
    behalf of [by_pid]; counted against the victim tenant, as a
    cross-tenant eviction when the tenants differ. *)

val set_on_window : t -> (tenant:int -> rate:float -> unit) -> unit
(** Hook fired with each completed per-tenant miss-rate window (used to
    stream window rates into the obs metrics registry). *)

val snapshot : t -> Isolation.t option
(** Current per-tenant accounting; [None] on {!none}. *)
