type mode = Shared | Offset | Strict

let mode_name = function
  | Shared -> "shared"
  | Offset -> "offset"
  | Strict -> "strict"

let mode_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "shared" -> Some Shared
  | "offset" -> Some Offset
  | "strict" -> Some Strict
  | _ -> None

type policy = {
  name : string;
  pids : int list;
  quota : int option;
  share : float option;
  weight : int;
}

type config = { mode : mode; policies : policy array }

let tenants config = Array.length config.policies

let policy config id = config.policies.(id)

let tenant_of_pid config ~pid =
  let n = Array.length config.policies in
  let rec scan i =
    if i >= n then None
    else if List.mem pid config.policies.(i).pids then Some i
    else scan (i + 1)
  in
  scan 0

(* ------------------------------------------------------------------ *)
(* Spec grammar                                                        *)

(* The grammar is deliberately comma-free so a whole spec can ride as
   one value of a campaign mechanism-parameter axis (axes split on
   commas), and hash-free so it survives grid files (whose parser
   strips [#] comments):

     MODE/NAME=PIDS[:quota=N][:share=F][:weight=N]/...

   MODE is shared | offset | strict. PIDS is [+]-joined pid atoms, each
   a single pid or an inclusive range: [0], [1-3], [0+2], [0+2-4].
   [off] (or the empty string) means tenancy disabled. *)

let grammar =
  "MODE/NAME=PIDS[:quota=N][:share=F][:weight=N]/... with MODE one of \
   shared|offset|strict and PIDS +-joined pids or ranges (e.g. 0+2-4)"

let ( let* ) = Result.bind

let errf fmt = Format.kasprintf (fun s -> Error s) fmt

let parse_pids s =
  let atoms = String.split_on_char '+' s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | atom :: rest -> (
      match String.index_opt atom '-' with
      | None -> (
        match int_of_string_opt atom with
        | Some p when p >= 0 -> go (p :: acc) rest
        | _ -> errf "bad pid %S" atom)
      | Some i -> (
        let lo = String.sub atom 0 i in
        let hi = String.sub atom (i + 1) (String.length atom - i - 1) in
        match (int_of_string_opt lo, int_of_string_opt hi) with
        | Some lo, Some hi when 0 <= lo && lo <= hi ->
          let range = List.init (hi - lo + 1) (fun k -> lo + k) in
          go (List.rev_append range acc) rest
        | _ -> errf "bad pid range %S" atom))
  in
  if String.equal s "" then errf "empty pid set" else go [] atoms

let parse_attr policy attr =
  match String.index_opt attr '=' with
  | None -> errf "bad attribute %S (expected key=value)" attr
  | Some i -> (
    let key = String.sub attr 0 i in
    let value = String.sub attr (i + 1) (String.length attr - i - 1) in
    match key with
    | "quota" -> (
      match int_of_string_opt value with
      | Some q -> Ok { policy with quota = Some q }
      | None -> errf "quota=%S: expected an integer" value)
    | "share" -> (
      match float_of_string_opt value with
      | Some f -> Ok { policy with share = Some f }
      | None -> errf "share=%S: expected a float" value)
    | "weight" -> (
      match int_of_string_opt value with
      | Some w -> Ok { policy with weight = w }
      | None -> errf "weight=%S: expected an integer" value)
    | _ -> errf "unknown attribute %S" key)

let parse_policy s =
  match String.index_opt s '=' with
  | None -> errf "bad tenant %S (expected NAME=PIDS[:attr...])" s
  | Some i -> (
    let name = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    if String.equal name "" then errf "empty tenant name in %S" s
    else
      match String.split_on_char ':' rest with
      | [] -> errf "bad tenant %S" s
      | pids :: attrs ->
        let* pids = parse_pids pids in
        let init = { name; pids; quota = None; share = None; weight = 1 } in
        List.fold_left
          (fun acc attr ->
            let* p = acc in
            parse_attr p attr)
          (Ok init) attrs)

let of_string spec =
  let spec = String.trim spec in
  if String.equal spec "" || String.equal (String.lowercase_ascii spec) "off"
  then Ok None
  else
    match String.split_on_char '/' spec with
    | [] -> errf "empty tenant spec"
    | mode :: tenants -> (
      match mode_of_string mode with
      | None ->
        errf "bad tenancy mode %S (expected shared, offset, or strict)" mode
      | Some mode ->
        if tenants = [] then errf "tenant spec %S declares no tenants" spec
        else
          let* policies =
            List.fold_left
              (fun acc s ->
                let* ps = acc in
                let* p = parse_policy s in
                Ok (p :: ps))
              (Ok []) tenants
          in
          Ok (Some { mode; policies = Array.of_list (List.rev policies) }))

let to_string config =
  let policy p =
    let pids = String.concat "+" (List.map string_of_int p.pids) in
    let quota =
      match p.quota with None -> "" | Some q -> Printf.sprintf ":quota=%d" q
    in
    let share =
      match p.share with None -> "" | Some f -> Printf.sprintf ":share=%g" f
    in
    let weight = if p.weight = 1 then "" else Printf.sprintf ":weight=%d" p.weight in
    Printf.sprintf "%s=%s%s%s%s" p.name pids quota share weight
  in
  String.concat "/"
    (mode_name config.mode
    :: (Array.to_list config.policies |> List.map policy))

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)

(* Semantic lints over a parsed config, as (code, message) pairs using
   the stable UC18x codes catalogued in [Utlb_check.Catalogue] /
   LINTS.md. Syntax errors from [of_string] are reported by callers as
   UC180. [sets] enables the geometry checks (UC184). *)

let validate ?sets config =
  let problems = ref [] in
  let problem code fmt =
    Format.kasprintf (fun msg -> problems := (code, msg) :: !problems) fmt
  in
  let seen : (int, string) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun p ->
      List.iter
        (fun pid ->
          match Hashtbl.find_opt seen pid with
          | Some other when not (String.equal other p.name) ->
            problem "UC181" "pid %d claimed by both tenants %s and %s" pid
              other p.name
          | _ -> Hashtbl.replace seen pid p.name)
        p.pids;
      (match p.quota with
      | Some q when q <= 0 ->
        problem "UC183" "tenant %s: quota must be positive (got %d)" p.name q
      | _ -> ());
      (match p.share with
      | Some f when f <= 0.0 || f > 1.0 ->
        problem "UC182" "tenant %s: share must be in (0, 1] (got %g)" p.name f
      | _ -> ());
      if p.weight <= 0 then
        problem "UC183" "tenant %s: weight must be positive (got %d)" p.name
          p.weight)
    config.policies;
  let total_share =
    Array.fold_left
      (fun acc p -> acc +. Option.value ~default:0.0 p.share)
      0.0 config.policies
  in
  if total_share > 1.0 +. 1e-9 then
    problem "UC182" "tenant shares sum to %g (> 1.0)" total_share;
  (match (config.mode, sets) with
  | Strict, Some sets ->
    Array.iter
      (fun p ->
        let share = Option.value ~default:0.0 p.share in
        if share > 0.0 && int_of_float (share *. float_of_int sets) < 1 then
          problem "UC184"
            "tenant %s: strict share %g of %d sets is below one cache set"
            p.name share sets)
      config.policies;
    if Array.length config.policies > sets then
      problem "UC184" "%d tenants cannot each own a set window of %d sets"
        (Array.length config.policies) sets
  | _ -> ());
  List.rev !problems
