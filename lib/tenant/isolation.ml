type row = {
  name : string;
  weight : int;
  lookups : int;
  ni_accesses : int;
  ni_hits : int;
  ni_misses : int;
  evictions : int;
  cross_evictions : int;
  quota_denials : int;
  pinned_peak : int;
  windows : int;
  win_mean : float;
  win_m2 : float;
}

type t = { mode : Tenant.mode; rows : row array }

let row ~name ~weight =
  {
    name;
    weight;
    lookups = 0;
    ni_accesses = 0;
    ni_hits = 0;
    ni_misses = 0;
    evictions = 0;
    cross_evictions = 0;
    quota_denials = 0;
    pinned_peak = 0;
    windows = 0;
    win_mean = 0.0;
    win_m2 = 0.0;
  }

let miss_rate r =
  if r.ni_accesses = 0 then 0.0
  else float_of_int r.ni_misses /. float_of_int r.ni_accesses

let window_variance r =
  if r.windows < 2 then 0.0 else r.win_m2 /. float_of_int (r.windows - 1)

let add_row a b =
  (* Chan et al. parallel Welford merge of the windowed miss-rate
     moments; everything else is a plain sum. *)
  let windows = a.windows + b.windows in
  let win_mean, win_m2 =
    if windows = 0 then (0.0, 0.0)
    else begin
      let na = float_of_int a.windows and nb = float_of_int b.windows in
      let n = na +. nb in
      let delta = b.win_mean -. a.win_mean in
      let mean = a.win_mean +. (delta *. nb /. n) in
      let m2 = a.win_m2 +. b.win_m2 +. (delta *. delta *. na *. nb /. n) in
      (mean, m2)
    end
  in
  {
    name = a.name;
    weight = a.weight;
    lookups = a.lookups + b.lookups;
    ni_accesses = a.ni_accesses + b.ni_accesses;
    ni_hits = a.ni_hits + b.ni_hits;
    ni_misses = a.ni_misses + b.ni_misses;
    evictions = a.evictions + b.evictions;
    cross_evictions = a.cross_evictions + b.cross_evictions;
    quota_denials = a.quota_denials + b.quota_denials;
    pinned_peak = max a.pinned_peak b.pinned_peak;
    windows;
    win_mean;
    win_m2;
  }

let add a b =
  if Array.length a.rows <> Array.length b.rows then
    invalid_arg "Isolation.add: tenant sets differ";
  Array.iteri
    (fun i r ->
      if not (String.equal r.name b.rows.(i).name) then
        invalid_arg "Isolation.add: tenant sets differ")
    a.rows;
  { mode = a.mode; rows = Array.mapi (fun i r -> add_row r b.rows.(i)) a.rows }

let merge_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (add a b)

let jain t =
  (* Jain's fairness index over weighted service (NI hits per unit of
     weight). 1.0 means perfectly fair; 1/n means one tenant got
     everything. Degenerate (no service at all) reports 1.0. *)
  let xs =
    Array.map
      (fun r -> float_of_int r.ni_hits /. float_of_int (max 1 r.weight))
      t.rows
  in
  let sum = Array.fold_left ( +. ) 0.0 xs in
  if sum <= 0.0 then 1.0
  else begin
    let sum_sq = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
    sum *. sum /. (float_of_int (Array.length xs) *. sum_sq)
  end

let cross_evictions t =
  Array.fold_left (fun acc r -> acc + r.cross_evictions) 0 t.rows

let quota_denials t =
  Array.fold_left (fun acc r -> acc + r.quota_denials) 0 t.rows

let pp_row ppf r =
  Format.fprintf ppf
    "%s: lookups=%d ni=%d/%d miss=%.3f evict=%d cross=%d denied=%d \
     peak=%d var=%.5f"
    r.name r.lookups r.ni_hits r.ni_accesses (miss_rate r) r.evictions
    r.cross_evictions r.quota_denials r.pinned_peak (window_variance r)

let pp ppf t =
  Format.fprintf ppf "@[<v>tenancy=%s jain=%.4f" (Tenant.mode_name t.mode)
    (jain t);
  Array.iter (fun r -> Format.fprintf ppf "@,  %a" pp_row r) t.rows;
  Format.fprintf ppf "@]"
