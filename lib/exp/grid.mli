(** Declarative experiment campaigns.

    A grid names a seed, a list of workloads, and a list of mechanism
    points (a registered mechanism name plus string parameters). Its
    cells are the full cross product — one simulated run per
    (workload, mechanism point) — which {!Runner} executes, serially or
    fanned out over domains, with identical results either way.

    Mechanism points are built programmatically ({!mech}, {!axes}) or
    parsed from a grid file ({!of_file}):

    {v
    # Table 4: UTLB vs the interrupt baseline across cache sizes.
    name table4
    seed 42
    workloads fft lu barnes radix raytrace volrend water
    mechanism utlb entries=1024,2048,4096,8192,16384
    mechanism intr entries=1024,2048,4096,8192,16384
    v}

    [workloads] tokens name the calibrated generators (optionally
    [name@factor] for a {!Utlb_trace.Workloads.scaled} variant);
    [mechanism] lines cross-multiply their [key=v1,v2,...] axes. *)

type mech = {
  mech_name : string;  (** A {!Utlb.Sim_driver.Registry} name. *)
  params : (string * string) list;  (** Ordered [key, value] pairs. *)
}

type t = {
  name : string;
  seed : int64;  (** Drives trace generation and per-cell engine RNGs. *)
  workloads : Utlb_trace.Workloads.spec list;
  mechanisms : mech list;
  tenants : string option;
      (** Grid-level tenancy spec in the {!Utlb_tenant.Tenant.of_string}
          grammar, applied to every cell unless overridden by a
          [tenants=] mechanism parameter; [None] runs untenanted. *)
}

val mech : ?params:(string * string) list -> string -> mech

val axes : string -> (string * string list) list -> mech list
(** [axes name [(k1, vs1); (k2, vs2); ...]] is the cross product of the
    axis values, first axis outermost — e.g.
    [axes "utlb" [("entries", ["1024"; "8192"])]] is two mechanism
    points. An empty axis list yields the single default point. *)

val mech_label : mech -> string
(** ["utlb\[entries=1024,assoc=2-way\]"] — stable cell naming for
    reports and emitters; just the name when there are no params. *)

type cell = {
  index : int;  (** Position in {!cells} order; seeds derive from it. *)
  workload : Utlb_trace.Workloads.spec;
  mech : mech;
}

val cells : t -> cell list
(** Workloads outermost, mechanism points innermost; indices are
    sequential from 0. The order is part of the campaign's identity:
    emitted results always appear in it, however many domains ran the
    cells. *)

val cell_seed : t -> cell -> int64
(** The cell's private engine seed: a splitmix-style mix of the grid
    seed and the cell index, so no two cells share RNG state and a
    parallel run is byte-identical to a serial one. *)

val param : cell -> string -> string option
(** Look up one mechanism parameter of the cell. *)

val tenant_spec : t -> cell -> string option
(** The tenancy spec governing [cell]: its [tenants=] mechanism
    parameter when present (so one grid can sweep partitioning modes as
    an axis), otherwise the grid-level [tenants] directive. *)

val of_string : ?name:string -> string -> (t, string) result
(** Parse the grid-file syntax above. Lines are [key tokens...];
    [#] starts a comment. Unknown workloads, unregistered mechanisms,
    and malformed lines are errors naming the line number. *)

val of_file : string -> (t, string) result
(** {!of_string} on the file's contents; the default campaign name is
    the file's basename without extension. *)
