(** Campaign layer: declarative experiment grids run domain-parallel.

    The paper's evaluation is a grid — workloads x mechanisms x
    configuration axes. This library makes that grid a value:

    - {!Grid} declares it (programmatically or from a grid file);
    - {!Runner} executes it, fanned out over OCaml 5 domains, with
      per-campaign trace memoisation and one RNG seed per cell so a
      parallel run is byte-identical to a serial one;
    - {!Emit} renders the outcomes as CSV, JSON, or pivot tables.

    Mechanisms come from {!Utlb.Sim_driver.Registry}: registering a new
    engine makes it sweepable here, in [utlbsim sweep], and in the
    bench tables without further plumbing. *)

module Grid = Grid
module Runner = Runner
module Emit = Emit
