(** Campaign result emitters: CSV, JSON, and pretty pivot tables.

    All emitters are pure functions of the outcome list, printing in
    cell order with fixed float formatting — the byte-identical output
    the determinism tests assert on. *)

val csv : Format.formatter -> Runner.outcome list -> unit
(** One row per cell: workload, mechanism, every parameter key seen in
    the campaign (first-seen order, blank where a cell lacks it), the
    raw {!Utlb.Report.t} counters, the derived per-lookup rates, and
    the sanitizer violation count. When any cell ran tenanted, three
    further columns follow — [jain], [cross_tenant_evictions],
    [quota_denials] — blank on untenanted cells; campaigns without
    tenancy keep the historical schema byte-for-byte. *)

val json : Format.formatter -> Runner.outcome list -> unit
(** The same cells as a JSON array of objects, with parameters as a
    nested object and counters/rates under ["report"]. Tenanted cells
    additionally carry an ["isolation"] object with the partition mode,
    Jain's fairness index, and one entry per tenant (counters, miss
    rate, and windowed miss-rate moments). *)

val matrix :
  ?fmt:(float -> string) ->
  rows:(Runner.outcome -> string) ->
  cols:(Runner.outcome -> string) ->
  metrics:(string * (Runner.outcome -> float)) list ->
  Format.formatter ->
  Runner.outcome list ->
  unit
(** Pivot pretty-printer — the bench tables' vocabulary. Row and
    column keys are taken in first-seen cell order; each row key prints
    one line per metric (the metric-name column is omitted for a single
    metric). Cells missing from the campaign print blank. [fmt]
    renders values (default ["%.3f"]). *)

val to_string :
  (Format.formatter -> Runner.outcome list -> unit) ->
  Runner.outcome list ->
  string
(** Render any emitter to a string (for tests and diffing). *)
