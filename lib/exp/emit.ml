module Report = Utlb.Report
module Isolation = Utlb_tenant.Isolation
module Tenant = Utlb_tenant.Tenant

let distinct key outcomes =
  List.fold_left
    (fun acc o ->
      let k = key o in
      if List.mem k acc then acc else acc @ [ k ])
    [] outcomes

let param_keys outcomes =
  List.fold_left
    (fun acc (o : Runner.outcome) ->
      List.fold_left
        (fun acc (k, _) -> if List.mem k acc then acc else acc @ [ k ])
        acc o.Runner.cell.Grid.mech.Grid.params)
    [] outcomes

let counters =
  [
    ("lookups", fun (r : Report.t) -> r.Report.lookups);
    ("check_misses", fun r -> r.Report.check_misses);
    ("ni_miss_lookups", fun r -> r.Report.ni_miss_lookups);
    ("ni_page_accesses", fun r -> r.Report.ni_page_accesses);
    ("ni_page_misses", fun r -> r.Report.ni_page_misses);
    ("pin_calls", fun r -> r.Report.pin_calls);
    ("pages_pinned", fun r -> r.Report.pages_pinned);
    ("unpin_calls", fun r -> r.Report.unpin_calls);
    ("pages_unpinned", fun r -> r.Report.pages_unpinned);
    ("interrupts", fun r -> r.Report.interrupts);
    ("entries_fetched", fun r -> r.Report.entries_fetched);
    ("compulsory", fun r -> r.Report.compulsory);
    ("capacity", fun r -> r.Report.capacity);
    ("conflict", fun r -> r.Report.conflict);
    ("fault_recoveries", fun r -> r.Report.fault_recoveries);
    ("spills", fun r -> r.Report.spills);
    ("recalls", fun r -> r.Report.recalls);
    ("restseg_hits", fun r -> r.Report.restseg_hits);
  ]

let rates =
  [
    ("check_miss_rate", Report.check_miss_rate);
    ("ni_miss_rate", Report.ni_miss_rate);
    ("unpin_rate", Report.unpin_rate);
  ]

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

(* Tenant columns appear only when some outcome carries isolation data,
   so untenanted campaigns keep the historical schema byte-for-byte. *)
let any_isolation outcomes =
  List.exists
    (fun (o : Runner.outcome) -> o.Runner.report.Report.isolation <> None)
    outcomes

let csv ppf outcomes =
  let keys = param_keys outcomes in
  let tenanted = any_isolation outcomes in
  Format.fprintf ppf "workload,mechanism%s%s%s,violations%s@."
    (String.concat "" (List.map (fun k -> "," ^ csv_escape k) keys))
    (String.concat "" (List.map (fun (n, _) -> "," ^ n) counters))
    (String.concat "" (List.map (fun (n, _) -> "," ^ n) rates))
    (if tenanted then ",jain,cross_tenant_evictions,quota_denials" else "");
  List.iter
    (fun (o : Runner.outcome) ->
      let cell = o.Runner.cell in
      Format.fprintf ppf "%s,%s"
        (csv_escape cell.Grid.workload.Utlb_trace.Workloads.name)
        (csv_escape cell.Grid.mech.Grid.mech_name);
      List.iter
        (fun k ->
          Format.fprintf ppf ",%s"
            (csv_escape (Option.value ~default:"" (Grid.param cell k))))
        keys;
      List.iter
        (fun (_, f) -> Format.fprintf ppf ",%d" (f o.Runner.report))
        counters;
      List.iter
        (fun (_, f) -> Format.fprintf ppf ",%.6f" (f o.Runner.report))
        rates;
      Format.fprintf ppf ",%d" (List.length o.Runner.violations);
      if tenanted then begin
        match o.Runner.report.Report.isolation with
        | None -> Format.fprintf ppf ",,,"
        | Some iso ->
          Format.fprintf ppf ",%.6f,%d,%d" (Isolation.jain iso)
            (Isolation.cross_evictions iso)
            (Isolation.quota_denials iso)
      end;
      Format.fprintf ppf "@.")
    outcomes

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json ppf outcomes =
  Format.fprintf ppf "[";
  List.iteri
    (fun i (o : Runner.outcome) ->
      let cell = o.Runner.cell in
      if i > 0 then Format.fprintf ppf ",";
      Format.fprintf ppf "@.  {\"workload\":\"%s\",\"mechanism\":\"%s\""
        (json_escape cell.Grid.workload.Utlb_trace.Workloads.name)
        (json_escape cell.Grid.mech.Grid.mech_name);
      Format.fprintf ppf ",\"params\":{%s}"
        (String.concat ","
           (List.map
              (fun (k, v) ->
                Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
              cell.Grid.mech.Grid.params));
      Format.fprintf ppf ",\"report\":{";
      List.iteri
        (fun j (n, f) ->
          if j > 0 then Format.fprintf ppf ",";
          Format.fprintf ppf "\"%s\":%d" n (f o.Runner.report))
        counters;
      List.iter
        (fun (n, f) ->
          Format.fprintf ppf ",\"%s\":%.6f" n (f o.Runner.report))
        rates;
      Format.fprintf ppf "}";
      (match o.Runner.report.Report.isolation with
      | None -> ()
      | Some iso ->
        Format.fprintf ppf ",\"isolation\":{\"mode\":\"%s\",\"jain\":%.6f"
          (json_escape (Tenant.mode_name iso.Isolation.mode))
          (Isolation.jain iso);
        Format.fprintf ppf ",\"tenants\":[";
        Array.iteri
          (fun i (row : Isolation.row) ->
            if i > 0 then Format.fprintf ppf ",";
            Format.fprintf ppf
              "{\"name\":\"%s\",\"weight\":%d,\"lookups\":%d,\"ni_hits\":%d,\"ni_misses\":%d,\"miss_rate\":%.6f,\"evictions\":%d,\"cross_evictions\":%d,\"quota_denials\":%d,\"pinned_peak\":%d,\"windows\":%d,\"window_mean\":%.6f,\"window_variance\":%.6f}"
              (json_escape row.Isolation.name) row.Isolation.weight
              row.Isolation.lookups row.Isolation.ni_hits
              row.Isolation.ni_misses (Isolation.miss_rate row)
              row.Isolation.evictions row.Isolation.cross_evictions
              row.Isolation.quota_denials row.Isolation.pinned_peak
              row.Isolation.windows row.Isolation.win_mean
              (Isolation.window_variance row))
          iso.Isolation.rows;
        Format.fprintf ppf "]}");
      Format.fprintf ppf ",\"violations\":%d}" (List.length o.Runner.violations))
    outcomes;
  Format.fprintf ppf "@.]@."

let matrix ?(fmt = Printf.sprintf "%.3f") ~rows ~cols ~metrics ppf outcomes =
  let row_keys = distinct rows outcomes in
  let col_keys = distinct cols outcomes in
  let value row col f =
    match
      List.find_opt
        (fun o -> String.equal (rows o) row && String.equal (cols o) col)
        outcomes
    with
    | None -> ""
    | Some o -> fmt (f o)
  in
  let single = match metrics with [ _ ] -> true | _ -> false in
  let width_of init render =
    List.fold_left (fun w s -> max w (String.length (render s))) init
  in
  let row_w = width_of 6 (fun r -> r) row_keys in
  let metric_w =
    if single then 0
    else width_of 6 (fun (n, _) -> n) metrics
  in
  let col_w =
    List.map
      (fun col ->
        let data =
          List.concat_map
            (fun row -> List.map (fun (_, f) -> value row col f) metrics)
            row_keys
        in
        (col, width_of (String.length col) (fun v -> v) data))
      col_keys
  in
  let pad w s = Printf.sprintf "%*s" w s in
  Format.fprintf ppf "%-*s" row_w "";
  if not single then Format.fprintf ppf " %-*s" metric_w "";
  List.iter (fun (col, w) -> Format.fprintf ppf "  %s" (pad w col)) col_w;
  Format.fprintf ppf "@.";
  List.iter
    (fun row ->
      List.iter
        (fun (name, f) ->
          Format.fprintf ppf "%-*s" row_w row;
          if not single then Format.fprintf ppf " %-*s" metric_w name;
          List.iter
            (fun (col, w) -> Format.fprintf ppf "  %s" (pad w (value row col f)))
            col_w;
          Format.fprintf ppf "@.")
        metrics)
    row_keys

let to_string emitter outcomes =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  emitter ppf outcomes;
  Format.pp_print_flush ppf ();
  Buffer.contents buf
