(** Domain-parallel campaign execution.

    Cells of a {!Grid.t} are independent simulations, so the runner
    fans them out over OCaml 5 domains with a work-stealing index and
    collects results into cell order. Determinism is by construction:

    - every workload trace is generated {e once}, in the calling
      domain, before any worker starts, and shared immutably;
    - every cell derives its own RNG seed from the grid seed and its
      index ({!Grid.cell_seed}), so no RNG state is shared;
    - results land in a slot per cell, so the emitted campaign is
      byte-identical whatever the domain count or completion order.

    An exception in any cell (e.g. a sanitizer in [Raise] mode) is
    re-raised in the caller after all workers join — the first one in
    cell order wins. *)

type outcome = {
  cell : Grid.cell;
  report : Utlb.Report.t;
  violations : Utlb_sim.Sanitizer.violation list;
      (** Empty unless the campaign ran with [~sanitize:true]. *)
  metrics : Utlb_obs.Metrics.Snapshot.t option;
      (** [None] unless the campaign ran with [~observe:true]. *)
  events : Utlb_obs.Event.t list;
      (** The cell's retained event trace, in emission order; empty
          unless the campaign ran with [~trace]. *)
}

type trace_cache
(** A caller-held trace memo extending the per-run memoisation across
    runs: traces are keyed by (physical workload spec, seed), so bench
    reps and grid variants over the same calibrated workloads generate
    each trace once. Consulted and extended only in the calling domain,
    before any worker starts. *)

val trace_cache : unit -> trace_cache

val run :
  ?domains:int ->
  ?sanitize:bool ->
  ?observe:bool ->
  ?trace:int ->
  ?faults:Utlb_fault.Plan.t ->
  ?cache:trace_cache ->
  Grid.t ->
  outcome list
(** Execute every cell of the grid. [domains] (default 1) is clamped
    to the cell count; [sanitize] (default false) threads a fresh
    recording {!Utlb_sim.Sanitizer} through each cell and returns its
    violations — see {!Utlb_check.Invariant} for the code catalogue.
    [observe] (default false) threads a fresh {!Utlb_obs.Scope} with a
    private metric registry (priced by {!Utlb.Obs_cost}) through each
    cell and snapshots it into [metrics]. [trace] attaches a private
    {!Utlb_obs.Trace_sink} of that capacity to each cell and returns
    its retained events in [events] — the raw material of sectioned
    timeline files ([utlbsim sweep --timeline-out]) and the
    happens-before pass ([utlbcheck verify --hb]). [faults] threads a
    private
    {!Utlb_fault.Injector} over the plan through each cell, seeded
    from the cell seed — injected faults (and hence the whole
    campaign) are byte-identical at any domain count. [cache] shares
    generated traces across runs (see {!trace_cache}).

    Cells governed by a tenancy spec ({!Grid.tenant_spec}: a [tenants=]
    mechanism parameter or the grid's [tenants] directive) each compile
    a private {!Utlb_tenant.Arbiter} and run tenanted: quotas and cache
    partitions are enforced, and the per-tenant accounting lands in the
    cell report's [isolation] field. Under [observe], each tenant's
    completed miss-rate windows additionally stream into the cell
    registry as [tenant/<name>/window_miss_rate] summaries.
    @raise Invalid_argument on an unregistered mechanism name,
    malformed mechanism parameters, or a malformed tenants spec
    (before any cell runs). *)

val merged_report : outcome list -> Utlb.Report.t
(** {!Utlb.Report.merge} over the outcomes' reports — campaign-wide
    totals. *)

val merged_metrics : outcome list -> Utlb_obs.Metrics.Snapshot.t option
(** {!Utlb_obs.Metrics.Snapshot.merge} over the outcomes' snapshots,
    in cell order — deterministic for any domain count. [None] when
    the campaign did not observe. *)

val violation_summary : outcome list -> (string * int) list
(** Violations across all cells, grouped by code, sorted by code. *)
