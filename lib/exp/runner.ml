module Sanitizer = Utlb_sim.Sanitizer
module Workloads = Utlb_trace.Workloads
module Sim_driver = Utlb.Sim_driver
module Metrics = Utlb_obs.Metrics
module Scope = Utlb_obs.Scope
module Fault = Utlb_fault
module Tenant = Utlb_tenant.Tenant
module Arbiter = Utlb_tenant.Arbiter

type outcome = {
  cell : Grid.cell;
  report : Utlb.Report.t;
  violations : Sanitizer.violation list;
  metrics : Metrics.Snapshot.t option;
  events : Utlb_obs.Event.t list;
}

(* Trace memoisation. Keyed by physical spec identity plus seed, not
   name: [Workloads.scaled] variants may share a name while generating
   different traces, whereas the toplevel calibrated specs are shared
   values. A caller-held cache extends the memoisation across runs
   (bench reps, grid variants over the same workloads); it is consulted
   and extended only in the calling domain before any worker starts,
   and only read afterwards. *)
type trace_cache = (Workloads.spec * int64 * Utlb_trace.Trace.t) list ref

let trace_cache () = ref []

let generate_traces ?cache ~seed cells =
  let store = match cache with Some c -> c | None -> ref [] in
  Array.iter
    (fun (c : Grid.cell) ->
      let spec = c.Grid.workload in
      if
        not
          (List.exists
             (fun (s, sd, _) -> s == spec && Int64.equal sd seed)
             !store)
      then store := (spec, seed, spec.Workloads.generate ~seed) :: !store)
    cells;
  !store

let trace_of traces ~seed (spec : Workloads.spec) =
  let rec find = function
    | [] ->
      invalid_arg
        (Printf.sprintf
           "Runner.trace_of: no cached trace for workload %S at seed %Ld \
            (the trace_cache was built for different cells)"
           spec.Workloads.name seed)
    | (s, sd, trace) :: rest ->
      if s == spec && Int64.equal sd seed then trace else find rest
  in
  find traces

let run ?(domains = 1) ?(sanitize = false) ?(observe = false) ?trace ?faults
    ?cache grid =
  let cells = Array.of_list (Grid.cells grid) in
  (* Resolve every mechanism up front: registry and parameter errors
     surface here, in the calling domain, before any simulation. *)
  let packed =
    Array.map
      (fun (c : Grid.cell) ->
        match Sim_driver.Registry.find c.Grid.mech.Grid.mech_name with
        | None ->
          invalid_arg
            (Printf.sprintf "Runner.run: unregistered mechanism %S"
               c.Grid.mech.Grid.mech_name)
        | Some entry ->
          entry.Sim_driver.Registry.of_params c.Grid.mech.Grid.params)
      cells
  in
  (* Resolve tenancy up front too, so a malformed spec fails in the
     calling domain. Each cell compiles its own arbiter later: arbiters
     hold mutable per-tenant counters, so sharing one across cells (or
     domains) would corrupt the accounting. *)
  let tenancies =
    Array.map
      (fun (c : Grid.cell) ->
        match Grid.tenant_spec grid c with
        | None -> None
        | Some spec -> (
          match Tenant.of_string spec with
          | Ok cfg -> cfg
          | Error e ->
            invalid_arg
              (Printf.sprintf "Runner.run: bad tenants spec %S: %s" spec e)))
      cells
  in
  let traces = generate_traces ?cache ~seed:grid.Grid.seed cells in
  let n = Array.length cells in
  let results = Array.make n None in
  let run_cell i =
    let c = cells.(i) in
    let sanitizer =
      if sanitize then Some (Sanitizer.create ~mode:Sanitizer.Record ())
      else None
    in
    (* One private registry per cell: snapshots are taken in the worker
       domain and merged in cell order by the caller, so the campaign's
       merged metrics are byte-identical whatever the domain count. *)
    let registry = if observe then Some (Metrics.create ()) else None in
    (* Like the registry, one private sink per cell: events are read in
       the worker and carried to the caller in cell order, so exported
       timelines are byte-identical whatever the domain count. *)
    let sink =
      Option.map
        (fun capacity -> Utlb_obs.Trace_sink.create ~capacity ())
        trace
    in
    let obs =
      if registry = None && sink = None then None
      else
        Some
          (Scope.create ?sink ?metrics:registry
             ~cost_of:Utlb.Obs_cost.default ())
    in
    let label =
      c.Grid.workload.Workloads.name ^ "/" ^ Grid.mech_label c.Grid.mech
    in
    let cell_seed = Grid.cell_seed grid c in
    (* One private injector per cell, seeded from the cell seed (xor'd
       so the fault stream is distinct from the engine's RNG stream):
       injections land identically whatever the domain count. *)
    let injector =
      Option.map
        (fun plan ->
          Fault.Injector.create
            ~seed:(Int64.logxor cell_seed 0xFA17_FA17L)
            plan)
        faults
    in
    let tenancy =
      Option.map
        (fun cfg ->
          let arb = Arbiter.create cfg in
          (* Stream each tenant's completed miss-rate windows into the
             cell's registry: the summary's variance is the
             interference signal the partitioned/unpartitioned sweep
             compares, per tenant, without retaining the windows. *)
          (match registry with
          | None -> ()
          | Some reg ->
            let summaries =
              Array.init (Tenant.tenants cfg) (fun ti ->
                  Metrics.summary reg
                    (Printf.sprintf "tenant/%s/window_miss_rate"
                       (Tenant.policy cfg ti).Tenant.name))
            in
            Arbiter.set_on_window arb (fun ~tenant ~rate ->
                if tenant >= 0 && tenant < Array.length summaries then
                  Metrics.Stats.Summary.observe summaries.(tenant) rate));
          arb)
        tenancies.(i)
    in
    let report =
      Sim_driver.run_packed ~seed:cell_seed ?sanitizer ?obs ?faults:injector
        ?tenancy ~label
        packed.(i)
        (trace_of traces ~seed:grid.Grid.seed c.Grid.workload)
    in
    {
      cell = c;
      report;
      violations =
        (match sanitizer with
        | None -> []
        | Some san -> Sanitizer.violations san);
      metrics = Option.map Metrics.snapshot registry;
      events =
        (match sink with
        | None -> []
        | Some sink -> Utlb_obs.Trace_sink.events sink);
    }
  in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (* Capture the worker-domain backtrace with the exception so
           the re-raise in the calling domain can preserve it. *)
        results.(i) <-
          Some
            (try Ok (run_cell i)
             with e -> Error (e, Printexc.get_raw_backtrace ()));
        loop ()
      end
    in
    loop ()
  in
  let workers = max 1 (min domains n) in
  let spawned = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join spawned;
  Array.to_list results
  |> List.map (function
       | Some (Ok o) -> o
       | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
       | None -> assert false)

let merged_report outcomes =
  Utlb.Report.merge (List.map (fun o -> o.report) outcomes)

let merged_metrics outcomes =
  match List.filter_map (fun o -> o.metrics) outcomes with
  | [] -> None
  | snapshots -> Some (Metrics.Snapshot.merge snapshots)

let violation_summary outcomes =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun o ->
      List.iter
        (fun (v : Sanitizer.violation) ->
          Hashtbl.replace counts v.Sanitizer.code
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts v.Sanitizer.code)))
        o.violations)
    outcomes;
  Hashtbl.fold (fun code count acc -> (code, count) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
