module Sanitizer = Utlb_sim.Sanitizer
module Workloads = Utlb_trace.Workloads
module Sim_driver = Utlb.Sim_driver
module Metrics = Utlb_obs.Metrics
module Scope = Utlb_obs.Scope
module Fault = Utlb_fault

type outcome = {
  cell : Grid.cell;
  report : Utlb.Report.t;
  violations : Sanitizer.violation list;
  metrics : Metrics.Snapshot.t option;
  events : Utlb_obs.Event.t list;
}

(* Per-campaign trace memoisation. Keyed by physical spec identity, not
   name: [Workloads.scaled] variants may share a name while generating
   different traces, whereas the toplevel calibrated specs are shared
   values. The list is built in the calling domain before any worker
   starts and only read afterwards. *)
let generate_traces ~seed cells =
  Array.fold_left
    (fun acc (c : Grid.cell) ->
      if List.exists (fun (spec, _) -> spec == c.Grid.workload) acc then acc
      else (c.Grid.workload, c.Grid.workload.Workloads.generate ~seed) :: acc)
    [] cells

let trace_of traces (spec : Workloads.spec) =
  let rec find = function
    | [] -> assert false
    | (s, trace) :: rest -> if s == spec then trace else find rest
  in
  find traces

let run ?(domains = 1) ?(sanitize = false) ?(observe = false) ?trace ?faults
    grid =
  let cells = Array.of_list (Grid.cells grid) in
  (* Resolve every mechanism up front: registry and parameter errors
     surface here, in the calling domain, before any simulation. *)
  let packed =
    Array.map
      (fun (c : Grid.cell) ->
        match Sim_driver.Registry.find c.Grid.mech.Grid.mech_name with
        | None ->
          invalid_arg
            (Printf.sprintf "Runner.run: unregistered mechanism %S"
               c.Grid.mech.Grid.mech_name)
        | Some entry ->
          entry.Sim_driver.Registry.of_params c.Grid.mech.Grid.params)
      cells
  in
  let traces = generate_traces ~seed:grid.Grid.seed cells in
  let n = Array.length cells in
  let results = Array.make n None in
  let run_cell i =
    let c = cells.(i) in
    let sanitizer =
      if sanitize then Some (Sanitizer.create ~mode:Sanitizer.Record ())
      else None
    in
    (* One private registry per cell: snapshots are taken in the worker
       domain and merged in cell order by the caller, so the campaign's
       merged metrics are byte-identical whatever the domain count. *)
    let registry = if observe then Some (Metrics.create ()) else None in
    (* Like the registry, one private sink per cell: events are read in
       the worker and carried to the caller in cell order, so exported
       timelines are byte-identical whatever the domain count. *)
    let sink =
      Option.map
        (fun capacity -> Utlb_obs.Trace_sink.create ~capacity ())
        trace
    in
    let obs =
      if registry = None && sink = None then None
      else
        Some
          (Scope.create ?sink ?metrics:registry
             ~cost_of:Utlb.Obs_cost.default ())
    in
    let label =
      c.Grid.workload.Workloads.name ^ "/" ^ Grid.mech_label c.Grid.mech
    in
    let cell_seed = Grid.cell_seed grid c in
    (* One private injector per cell, seeded from the cell seed (xor'd
       so the fault stream is distinct from the engine's RNG stream):
       injections land identically whatever the domain count. *)
    let injector =
      Option.map
        (fun plan ->
          Fault.Injector.create
            ~seed:(Int64.logxor cell_seed 0xFA17_FA17L)
            plan)
        faults
    in
    let report =
      Sim_driver.run_packed ~seed:cell_seed ?sanitizer ?obs ?faults:injector
        ~label
        packed.(i)
        (trace_of traces c.Grid.workload)
    in
    {
      cell = c;
      report;
      violations =
        (match sanitizer with
        | None -> []
        | Some san -> Sanitizer.violations san);
      metrics = Option.map Metrics.snapshot registry;
      events =
        (match sink with
        | None -> []
        | Some sink -> Utlb_obs.Trace_sink.events sink);
    }
  in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (try Ok (run_cell i) with e -> Error e);
        loop ()
      end
    in
    loop ()
  in
  let workers = max 1 (min domains n) in
  let spawned = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join spawned;
  Array.to_list results
  |> List.map (function
       | Some (Ok o) -> o
       | Some (Error e) -> raise e
       | None -> assert false)

let merged_report outcomes =
  Utlb.Report.merge (List.map (fun o -> o.report) outcomes)

let merged_metrics outcomes =
  match List.filter_map (fun o -> o.metrics) outcomes with
  | [] -> None
  | snapshots -> Some (Metrics.Snapshot.merge snapshots)

let violation_summary outcomes =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun o ->
      List.iter
        (fun (v : Sanitizer.violation) ->
          Hashtbl.replace counts v.Sanitizer.code
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts v.Sanitizer.code)))
        o.violations)
    outcomes;
  Hashtbl.fold (fun code count acc -> (code, count) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
