module Workloads = Utlb_trace.Workloads

type mech = {
  mech_name : string;
  params : (string * string) list;
}

type t = {
  name : string;
  seed : int64;
  workloads : Workloads.spec list;
  mechanisms : mech list;
  tenants : string option;
}

let mech ?(params = []) mech_name = { mech_name; params }

let axes mech_name axes =
  let points =
    List.fold_left
      (fun acc (key, values) ->
        List.concat_map
          (fun params -> List.map (fun v -> (key, v) :: params) values)
          acc)
      [ [] ] axes
  in
  List.map (fun params -> { mech_name; params = List.rev params }) points

let mech_label m =
  match m.params with
  | [] -> m.mech_name
  | params ->
    Printf.sprintf "%s[%s]" m.mech_name
      (String.concat ","
         (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) params))

type cell = {
  index : int;
  workload : Workloads.spec;
  mech : mech;
}

let cells t =
  let i = ref (-1) in
  List.concat_map
    (fun workload ->
      List.map
        (fun mech ->
          incr i;
          { index = !i; workload; mech })
        t.mechanisms)
    t.workloads

let cell_seed t cell =
  (* Golden-ratio stride: distinct, well-spread seeds per cell. *)
  Int64.add t.seed (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (cell.index + 1)))

let param cell key = List.assoc_opt key cell.mech.params

let tenant_spec t cell =
  (* A mechanism-axis [tenants=] value (the comma-free spec grammar was
     chosen so a whole spec fits in one axis value) overrides the
     grid-level directive, letting one grid sweep partitioned against
     unpartitioned points. *)
  match param cell "tenants" with
  | Some spec -> Some spec
  | None -> t.tenants

(* ------------------------------------------------------------------ *)
(* Grid-file parsing                                                   *)

let strip_comment line =
  match String.index_opt line '#' with
  | None -> line
  | Some i -> String.sub line 0 i

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter_map (fun s ->
         let s = String.trim s in
         if String.equal s "" then None else Some s)

let parse_workload lineno token =
  let spec_of name =
    match Workloads.find name with
    | Some spec -> Ok spec
    | None ->
      Error
        (Printf.sprintf "line %d: unknown workload %S (expected one of %s)"
           lineno name
           (String.concat ", "
              (List.map (fun (w : Workloads.spec) -> w.name) Workloads.all)))
  in
  match String.index_opt token '@' with
  | None -> spec_of token
  | Some i -> (
    let name = String.sub token 0 i in
    let factor = String.sub token (i + 1) (String.length token - i - 1) in
    match (spec_of name, float_of_string_opt factor) with
    | Error e, _ -> Error e
    | Ok _, None ->
      Error
        (Printf.sprintf "line %d: bad scale factor %S in %S" lineno factor
           token)
    | Ok spec, Some f -> (
      try
        let scaled = Workloads.scaled spec ~factor:f in
        (* Scaled specs keep the base name; rename so labels, per-
           campaign trace memoisation keys, and emitted rows stay
           unambiguous when several factors of one app share a grid. *)
        Ok
          (Workloads.custom ~name:token
             ~problem_size:scaled.Workloads.problem_size
             ~description:scaled.Workloads.description
             ~generate:scaled.Workloads.generate ())
      with Invalid_argument msg ->
        Error (Printf.sprintf "line %d: %s" lineno msg)))

let parse_mech lineno = function
  | [] -> Error (Printf.sprintf "line %d: mechanism needs a name" lineno)
  | name :: axis_tokens -> (
    match Utlb.Sim_driver.Registry.find name with
    | None ->
      Error
        (Printf.sprintf "line %d: unregistered mechanism %S (see utlbsim list)"
           lineno name)
    | Some entry -> (
      let parse_axis token =
        match String.index_opt token '=' with
        | None -> Error (Printf.sprintf "line %d: expected key=v1,v2 axis, got %S" lineno token)
        | Some i ->
          let key = String.sub token 0 i in
          let values =
            String.sub token (i + 1) (String.length token - i - 1)
            |> String.split_on_char ','
            |> List.filter (fun v -> not (String.equal v ""))
          in
          if String.equal key "" || values = [] then
            Error (Printf.sprintf "line %d: empty axis in %S" lineno token)
          else Ok (key, values)
      in
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | tok :: rest -> (
          match parse_axis tok with
          | Error e -> Error e
          | Ok axis -> collect (axis :: acc) rest)
      in
      match collect [] axis_tokens with
      | Error e -> Error e
      | Ok parsed -> Ok (axes entry.Utlb.Sim_driver.Registry.name parsed)))

let of_string ?(name = "campaign") text =
  let lines = String.split_on_char '\n' text in
  let result =
    List.fold_left
      (fun acc line ->
        match acc with
        | Error _ -> acc
        | Ok (lineno, grid) -> (
          let lineno = lineno + 1 in
          match tokens (strip_comment line) with
          | [] -> Ok (lineno, grid)
          | "name" :: [ n ] -> Ok (lineno, { grid with name = n })
          | "seed" :: [ s ] -> (
            match Int64.of_string_opt s with
            | Some seed -> Ok (lineno, { grid with seed })
            | None ->
              Error (Printf.sprintf "line %d: bad seed %S" lineno s))
          | "workloads" :: names -> (
            let rec resolve acc = function
              | [] -> Ok (List.rev acc)
              | n :: rest -> (
                match parse_workload lineno n with
                | Error e -> Error e
                | Ok spec -> resolve (spec :: acc) rest)
            in
            match resolve [] names with
            | Error e -> Error e
            | Ok specs ->
              Ok (lineno, { grid with workloads = grid.workloads @ specs }))
          | "mechanism" :: rest -> (
            match parse_mech lineno rest with
            | Error e -> Error e
            | Ok mechs ->
              Ok (lineno, { grid with mechanisms = grid.mechanisms @ mechs }))
          | "tenants" :: [ spec ] -> (
            match Utlb_tenant.Tenant.of_string spec with
            | Ok None -> Ok (lineno, { grid with tenants = None })
            | Ok (Some _) -> Ok (lineno, { grid with tenants = Some spec })
            | Error e ->
              Error
                (Printf.sprintf "line %d: bad tenants spec: %s (%s)" lineno e
                   Utlb_tenant.Tenant.grammar))
          | "tenants" :: _ ->
            Error
              (Printf.sprintf
                 "line %d: tenants takes exactly one spec token (%s)" lineno
                 Utlb_tenant.Tenant.grammar)
          | key :: _ ->
            Error
              (Printf.sprintf
                 "line %d: unknown directive %S (expected name, seed, \
                  workloads, mechanism, or tenants)"
                 lineno key)))
      (Ok
         (0, { name; seed = 42L; workloads = []; mechanisms = []; tenants = None }))
      lines
  in
  match result with
  | Error e -> Error e
  | Ok (_, grid) ->
    if grid.workloads = [] then Error "grid declares no workloads"
    else if grid.mechanisms = [] then Error "grid declares no mechanisms"
    else Ok grid

let of_file path =
  let name = Filename.remove_extension (Filename.basename path) in
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string ~name text
  | exception Sys_error msg -> Error msg
