(** Discrete-event simulation engine.

    The engine owns a virtual clock and a priority queue of events.
    Components (NIC firmware, DMA engine, links, hosts) schedule
    callbacks at future instants; [run] dispatches them in timestamp
    order, breaking ties in scheduling order so runs are deterministic.

    A callback may schedule further events, including at the current
    instant (zero-delay events run after all earlier-scheduled events of
    the same timestamp). *)

type t

type event_id
(** Handle that can be used to cancel a pending event. *)

val create : unit -> t
(** A fresh engine with the clock at {!Time.zero}. *)

val now : t -> Time.t
(** Current virtual time. *)

val schedule : t -> delay:Time.t -> (unit -> unit) -> event_id
(** [schedule t ~delay f] runs [f] at [now t + delay].
    @raise Invalid_argument if [delay] is negative. *)

val schedule_at : t -> at:Time.t -> (unit -> unit) -> event_id
(** [schedule_at t ~at f] runs [f] at absolute time [at].
    @raise Invalid_argument if [at] is in the past. *)

val cancel : t -> event_id -> unit
(** Cancel a pending event; cancelling an already-fired or already-
    cancelled event is a no-op. *)

val pending : t -> int
(** Number of events still queued (including cancelled tombstones'
    live peers; cancelled events are not counted). *)

val run : ?until:Time.t -> t -> unit
(** Dispatch events in order until the queue drains, or until the clock
    would pass [until] (events at exactly [until] still fire). The clock
    ends at the timestamp of the last fired event, or at [until] if that
    is later and was supplied. *)

val step : t -> bool
(** Fire exactly one event. Returns [false] when the queue is empty. *)

val set_dispatch_monitor : t -> (now:Time.t -> at:Time.t -> unit) option -> unit
(** Install (or clear) a hook called immediately before each event is
    dispatched, with the clock as it stands and the event's timestamp.
    Used by the invariant sanitizer to assert monotonic dispatch: the
    engine itself rejects past scheduling, so a monitor firing with
    [at < now] means the priority queue is corrupt. *)

val set_dispatch_observer : t -> (now:Time.t -> at:Time.t -> unit) option -> unit
(** Install (or clear) a second pre-dispatch hook, independent of the
    sanitizer's {!set_dispatch_monitor} slot, so tracing can coexist
    with invariant checking. Used by [lib/obs] to emit one dispatch
    event per fired simulation event. *)
