(* Entries carry an insertion sequence number so that equal keys pop in
   FIFO order — a requirement for deterministic event scheduling.

   The heap is 4-ary over a flat array: children of [i] live at
   [4i+1 .. 4i+4], its parent at [(i-1)/4]. Against the binary layout
   this halves the tree depth (fewer cache-missing levels per sift) at
   the price of up to four child comparisons per sift-down level — a
   net win for the event queue, whose hot loop is pop-push. The API
   and observable behaviour are identical; test_heap.ml keeps a seeded
   differential against a reference binary heap. *)
type 'a entry = { value : 'a; seq : int }

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let arity = 4

let create ~cmp = { cmp; data = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

let entry_cmp t a b =
  let c = t.cmp a.value b.value in
  if c <> 0 then c else compare a.seq b.seq

let ensure_capacity t =
  let cap = Array.length t.data in
  if t.size >= cap then begin
    let new_cap = max 16 (2 * cap) in
    let data = Array.make new_cap t.data.(0) in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / arity in
    if entry_cmp t t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let first = (arity * i) + 1 in
  if first < t.size then begin
    let last = min (first + arity - 1) (t.size - 1) in
    let smallest = ref i in
    for c = first to last do
      if entry_cmp t t.data.(c) t.data.(!smallest) < 0 then smallest := c
    done;
    if !smallest <> i then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(!smallest);
      t.data.(!smallest) <- tmp;
      sift_down t !smallest
    end
  end

let push t v =
  let e = { value = v; seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  if t.size = 0 && Array.length t.data = 0 then t.data <- Array.make 16 e
  else ensure_capacity t;
  t.data.(t.size) <- e;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0).value

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0).value in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some top
  end

let pop_exn t =
  match pop t with
  | Some v -> v
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear t =
  t.size <- 0;
  t.data <- [||]

let to_sorted_list t =
  let copy = { t with data = Array.sub t.data 0 t.size } in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some v -> drain (v :: acc)
  in
  drain []
