(** Simulation substrate: deterministic RNG, virtual time, discrete-event
    engine, statistics, and cost-curve interpolation.

    Everything above this library (memory, NIC, network, UTLB, VMMC)
    draws its randomness, clock, and accounting from here, which makes
    whole-system runs bit-reproducible from a seed. *)

module Rng = Rng
module Heap = Heap
module Time = Time
module Engine = Engine
module Stats = Stats
module Cost_table = Cost_table
module Sanitizer = Sanitizer
