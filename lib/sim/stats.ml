module Counter = struct
  type t = { name : string; mutable value : int }

  let create name = { name; value = 0 }

  let name t = t.name

  let incr t = t.value <- t.value + 1

  let add t n = t.value <- t.value + n

  let value t = t.value

  let reset t = t.value <- 0
end

module Summary = struct
  type t = {
    name : string;
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min_v : float;
    mutable max_v : float;
    mutable total : float;
  }

  let create name =
    { name; count = 0; mean = 0.0; m2 = 0.0; min_v = nan; max_v = nan; total = 0.0 }

  let name t = t.name

  let observe t x =
    t.count <- t.count + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if t.count = 1 then begin
      t.min_v <- x;
      t.max_v <- x
    end
    else begin
      if x < t.min_v then t.min_v <- x;
      if x > t.max_v then t.max_v <- x
    end

  let count t = t.count

  let mean t = if t.count = 0 then 0.0 else t.mean

  let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int t.count

  let stddev t = sqrt (variance t)

  let min t = if t.count = 0 then 0.0 else t.min_v

  let max t = if t.count = 0 then 0.0 else t.max_v

  let m2 t = t.m2

  let total t = t.total

  let reset t =
    t.count <- 0;
    t.mean <- 0.0;
    t.m2 <- 0.0;
    t.min_v <- nan;
    t.max_v <- nan;
    t.total <- 0.0

  let pp ppf t =
    if t.count = 0 then Format.fprintf ppf "%s: (empty)" t.name
    else
      Format.fprintf ppf "%s: n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f"
        t.name t.count (mean t) (stddev t) t.min_v t.max_v
end

module Histogram = struct
  type t = {
    name : string;
    bucket_width : float;
    counts : int array; (* last slot is the overflow bucket *)
    mutable total : int;
  }

  let create ~name ~bucket_width ~buckets =
    if bucket_width <= 0.0 then
      invalid_arg "Stats.Histogram.create: bucket_width must be positive";
    if buckets <= 0 then
      invalid_arg "Stats.Histogram.create: buckets must be positive";
    { name; bucket_width; counts = Array.make (buckets + 1) 0; total = 0 }

  let n_buckets t = Array.length t.counts - 1

  let observe t x =
    let i = int_of_float (Float.floor (x /. t.bucket_width)) in
    let i = if i < 0 then 0 else if i >= n_buckets t then n_buckets t else i in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1

  let count t = t.total

  let bucket t i =
    if i < 0 || i > n_buckets t then
      invalid_arg "Stats.Histogram.bucket: index out of range";
    t.counts.(i)

  let percentile t p =
    if t.total = 0 then invalid_arg "Stats.Histogram.percentile: empty";
    if p < 0.0 || p > 100.0 then
      invalid_arg "Stats.Histogram.percentile: p out of range";
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.total)) in
    let rank = if rank < 1 then 1 else rank in
    let rec scan i seen =
      let seen = seen + t.counts.(i) in
      if seen >= rank || i = n_buckets t then
        t.bucket_width *. float_of_int (i + 1)
      else scan (i + 1) seen
    in
    scan 0 0

  let quantile t q =
    if t.total = 0 then 0.0
    else
      let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
      percentile t (q *. 100.0)

  let name t = t.name

  let bucket_width t = t.bucket_width

  let buckets t = n_buckets t

  let pp ppf t =
    Format.fprintf ppf "%s: n=%d" t.name t.total;
    Array.iteri
      (fun i c ->
        if c > 0 then
          if i = n_buckets t then Format.fprintf ppf " [overflow]=%d" c
          else
            Format.fprintf ppf " [%.1f-%.1f)=%d"
              (t.bucket_width *. float_of_int i)
              (t.bucket_width *. float_of_int (i + 1))
              c)
      t.counts
end
