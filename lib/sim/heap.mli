(** Mutable min-heap (4-ary, flat array), used as the event queue of
    the discrete-event engine and as a victim queue in replacement
    policies.

    Elements are ordered by a user-supplied comparison fixed at creation.
    Ties are broken by insertion order (FIFO), which matters for the
    event queue: two events scheduled for the same instant fire in the
    order they were scheduled. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_sorted_list : 'a t -> 'a list
(** Non-destructive: all elements in ascending order. O(n log n). *)
