(** Runtime invariant sanitizer.

    A lightweight violation recorder shared by every layer of the
    model (event engine, DMA engine, translation engines). Components
    accept an optional [Sanitizer.t] at creation; when present, they
    shadow their own execution with consistency checks — pin/unpin
    balance, garbage-frame DMA, cache/table agreement, monotonic event
    dispatch — and report violations here.

    The sanitizer lives at the bottom of the library stack (everything
    already depends on [utlb_sim]) so that the engines can name its
    type; the higher-level [Utlb_check.Invariant] module builds the
    cross-layer checks on top of it.

    Each violation carries a stable machine-readable code (see
    {!Utlb_check.Invariant} for the catalogue) so tests and CI can
    assert on specific failure classes. *)

type severity = Info | Warning | Error

val severity_name : severity -> string

type violation = {
  code : string;  (** Stable machine-readable code, e.g. ["UV01"]. *)
  severity : severity;
  message : string;
}

exception Violation of violation
(** Raised by {!record} when the sanitizer is in [Raise] mode. *)

type mode =
  | Record  (** Accumulate violations; inspect with {!violations}. *)
  | Raise  (** Fail fast: {!record} raises {!Violation}. *)

type t

val create : ?mode:mode -> unit -> t
(** A fresh sanitizer with no recorded violations. Default [Raise]:
    the first violation aborts, which is what CI wants. *)

val mode : t -> mode

val record : t -> ?severity:severity -> code:string -> string -> unit
(** Report a violation (default severity [Error]). In [Raise] mode the
    violation is recorded and then raised as {!Violation}. *)

val recordf :
  t ->
  ?severity:severity ->
  code:string ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a
(** [record] with a format string for the message. *)

val violations : t -> violation list
(** All recorded violations, in recording order. *)

val count : t -> int

val errors : t -> int
(** Number of recorded violations of severity [Error]. *)

val clear : t -> unit

val is_clean : t -> bool
(** No violations of severity [Error] recorded. *)

val pp_violation : Format.formatter -> violation -> unit

val pp : Format.formatter -> t -> unit
(** One line per recorded violation. *)
