(** Statistics collection for simulations.

    Three collectors:
    - {!Counter}: monotone event counts (misses, pinnings, ...).
    - {!Summary}: running mean / variance / min / max of a stream
      (Welford's algorithm, numerically stable over long runs).
    - {!Histogram}: fixed-bucket distribution, used for latency spreads. *)

module Counter : sig
  type t

  val create : string -> t

  val name : t -> string

  val incr : t -> unit

  val add : t -> int -> unit

  val value : t -> int

  val reset : t -> unit
end

module Summary : sig
  type t

  val create : string -> t

  val name : t -> string

  val observe : t -> float -> unit

  val count : t -> int

  val mean : t -> float
  (** 0 when empty. *)

  val variance : t -> float
  (** Population variance; 0 when fewer than two observations. *)

  val stddev : t -> float

  val min : t -> float
  (** 0 when empty (total, like {!mean}). *)

  val max : t -> float
  (** 0 when empty (total, like {!mean}). *)

  val m2 : t -> float
  (** Welford M2 aggregate (sum of squared deviations); exposed so
      snapshots can combine summaries exactly (parallel Welford). *)

  val total : t -> float

  val reset : t -> unit

  val pp : Format.formatter -> t -> unit
end

module Histogram : sig
  type t

  val create : name:string -> bucket_width:float -> buckets:int -> t
  (** Values [>= bucket_width * buckets] land in an overflow bucket. *)

  val name : t -> string

  val bucket_width : t -> float

  val buckets : t -> int
  (** Regular bucket count; {!bucket} index [buckets] is the overflow
      bucket. *)

  val observe : t -> float -> unit

  val count : t -> int

  val bucket : t -> int -> int
  (** Count in bucket [i]; index [buckets] is the overflow bucket.
      @raise Invalid_argument on out-of-range index. *)

  val percentile : t -> float -> float
  (** [percentile t p] for [p] in [0, 100]: upper edge of the bucket
      containing that rank (a conservative estimate).
      @raise Invalid_argument when empty or [p] out of range. *)

  val quantile : t -> float -> float
  (** [quantile t q] for [q] in [0, 1]; total: clamps [q] and returns
      [0.] on an empty histogram. Same bucket-edge estimate as
      {!percentile}. *)

  val pp : Format.formatter -> t -> unit
end
