type severity = Info | Warning | Error

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

type violation = { code : string; severity : severity; message : string }

exception Violation of violation

type mode = Record | Raise

type t = { mode : mode; mutable violations : violation list; mutable n : int }

let create ?(mode = Raise) () = { mode; violations = []; n = 0 }

let mode t = t.mode

let record t ?(severity = Error) ~code message =
  let v = { code; severity; message } in
  t.violations <- v :: t.violations;
  t.n <- t.n + 1;
  match t.mode with Record -> () | Raise -> raise (Violation v)

let recordf t ?severity ~code fmt =
  Format.kasprintf (fun msg -> record t ?severity ~code msg) fmt

let violations t = List.rev t.violations

let count t = t.n

let errors t =
  List.length (List.filter (fun v -> v.severity = Error) t.violations)

let clear t =
  t.violations <- [];
  t.n <- 0

let is_clean t = List.for_all (fun v -> v.severity <> Error) t.violations

let pp_violation ppf v =
  Format.fprintf ppf "%s %s: %s" v.code (severity_name v.severity) v.message

let pp ppf t =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_violation ppf
    (violations t)
