type event_id = int

type event = { at : Time.t; id : event_id; action : unit -> unit }

type t = {
  queue : event Heap.t;
  (* Cancelled-event set as a growable bitset over event ids: ids are
     dense increasing ints, so a Bytes-backed bit per id replaces the
     Hashtbl that used to dominate the flat profile. [cancelled] is
     lazily grown on first cancel past the current capacity; [step]
     pays a bounds check plus one bit test per pop. *)
  mutable cancelled : Bytes.t;
  mutable clock : Time.t;
  mutable next_id : event_id;
  mutable live : int;
  mutable monitor : (now:Time.t -> at:Time.t -> unit) option;
  mutable observer : (now:Time.t -> at:Time.t -> unit) option;
  (* Monitor and observer composed into one closure, recompiled on each
     set so [step] makes a single unconditional call instead of
     matching two options per dispatched event. *)
  mutable pre_dispatch : now:Time.t -> at:Time.t -> unit;
}

let no_dispatch_hook ~now:_ ~at:_ = ()

let create () =
  {
    queue = Heap.create ~cmp:(fun a b -> Time.compare a.at b.at);
    cancelled = Bytes.empty;
    clock = Time.zero;
    next_id = 0;
    live = 0;
    monitor = None;
    observer = None;
    pre_dispatch = no_dispatch_hook;
  }

let recompile_dispatch t =
  t.pre_dispatch <-
    (match (t.monitor, t.observer) with
    | None, None -> no_dispatch_hook
    | Some m, None -> m
    | None, Some o -> o
    | Some m, Some o ->
      fun ~now ~at ->
        m ~now ~at;
        o ~now ~at)

let set_dispatch_monitor t monitor =
  t.monitor <- monitor;
  recompile_dispatch t

let set_dispatch_observer t observer =
  t.observer <- observer;
  recompile_dispatch t

let now t = t.clock

let schedule_at t ~at action =
  if Time.compare at t.clock < 0 then
    invalid_arg "Engine.schedule_at: time is in the past";
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  Heap.push t.queue { at; id; action };
  t.live <- t.live + 1;
  id

let schedule t ~delay action =
  if Time.compare delay Time.zero < 0 then
    invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~at:(Time.add t.clock delay) action

let is_cancelled t id =
  let byte = id lsr 3 in
  byte < Bytes.length t.cancelled
  && Char.code (Bytes.unsafe_get t.cancelled byte) land (1 lsl (id land 7)) <> 0

let cancel t id =
  (* Lazy deletion: fired ids are never re-used, so a stale cancel of an
     already-fired event just leaves a harmless tombstone bit. *)
  if not (is_cancelled t id) then begin
    let byte = id lsr 3 in
    if byte >= Bytes.length t.cancelled then begin
      let size = max 64 (max (2 * Bytes.length t.cancelled) (byte + 1)) in
      let grown = Bytes.make size '\000' in
      Bytes.blit t.cancelled 0 grown 0 (Bytes.length t.cancelled);
      t.cancelled <- grown
    end;
    Bytes.unsafe_set t.cancelled byte
      (Char.chr (Char.code (Bytes.unsafe_get t.cancelled byte)
                 lor (1 lsl (id land 7))));
    t.live <- t.live - 1
  end

let pending t = max 0 t.live

let rec step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
    if is_cancelled t ev.id then begin
      (* Leave the tombstone bit set: the id never fires again, and
         clearing it would only dirty the byte for no reader. *)
      step t
    end
    else begin
      t.pre_dispatch ~now:t.clock ~at:ev.at;
      t.clock <- ev.at;
      t.live <- t.live - 1;
      ev.action ();
      true
    end

let run ?until t =
  let continue () =
    match until, Heap.peek t.queue with
    | _, None -> false
    | None, Some _ -> true
    | Some limit, Some ev -> Time.compare ev.at limit <= 0
  in
  while continue () do
    ignore (step t)
  done;
  match until with
  | Some limit when Time.compare limit t.clock > 0 -> t.clock <- limit
  | Some _ | None -> ()
