type event_id = int

type event = { at : Time.t; id : event_id; action : unit -> unit }

type t = {
  queue : event Heap.t;
  cancelled : (event_id, unit) Hashtbl.t;
  mutable clock : Time.t;
  mutable next_id : event_id;
  mutable live : int;
  mutable monitor : (now:Time.t -> at:Time.t -> unit) option;
  mutable observer : (now:Time.t -> at:Time.t -> unit) option;
  (* Monitor and observer composed into one closure, recompiled on each
     set so [step] makes a single unconditional call instead of
     matching two options per dispatched event. *)
  mutable pre_dispatch : now:Time.t -> at:Time.t -> unit;
}

let no_dispatch_hook ~now:_ ~at:_ = ()

let create () =
  {
    queue = Heap.create ~cmp:(fun a b -> Time.compare a.at b.at);
    cancelled = Hashtbl.create 64;
    clock = Time.zero;
    next_id = 0;
    live = 0;
    monitor = None;
    observer = None;
    pre_dispatch = no_dispatch_hook;
  }

let recompile_dispatch t =
  t.pre_dispatch <-
    (match (t.monitor, t.observer) with
    | None, None -> no_dispatch_hook
    | Some m, None -> m
    | None, Some o -> o
    | Some m, Some o ->
      fun ~now ~at ->
        m ~now ~at;
        o ~now ~at)

let set_dispatch_monitor t monitor =
  t.monitor <- monitor;
  recompile_dispatch t

let set_dispatch_observer t observer =
  t.observer <- observer;
  recompile_dispatch t

let now t = t.clock

let schedule_at t ~at action =
  if Time.compare at t.clock < 0 then
    invalid_arg "Engine.schedule_at: time is in the past";
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  Heap.push t.queue { at; id; action };
  t.live <- t.live + 1;
  id

let schedule t ~delay action =
  if Time.compare delay Time.zero < 0 then
    invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~at:(Time.add t.clock delay) action

let cancel t id =
  (* Lazy deletion: fired ids are never re-used, so a stale cancel of an
     already-fired event just leaves a harmless tombstone. *)
  if not (Hashtbl.mem t.cancelled id) then begin
    Hashtbl.replace t.cancelled id ();
    t.live <- t.live - 1
  end

let pending t = max 0 t.live

let rec step t =
  match Heap.pop t.queue with
  | None -> false
  | Some ev ->
    if Hashtbl.mem t.cancelled ev.id then begin
      Hashtbl.remove t.cancelled ev.id;
      step t
    end
    else begin
      t.pre_dispatch ~now:t.clock ~at:ev.at;
      t.clock <- ev.at;
      t.live <- t.live - 1;
      ev.action ();
      true
    end

let run ?until t =
  let continue () =
    match until, Heap.peek t.queue with
    | _, None -> false
    | None, Some _ -> true
    | Some limit, Some ev -> Time.compare ev.at limit <= 0
  in
  while continue () do
    ignore (step t)
  done;
  match until with
  | Some limit when Time.compare limit t.clock > 0 -> t.clock <- limit
  | Some _ | None -> ()
