(** One communication-trace record.

    A record is one communication operation issued by one process on a
    node: a send (remote store) or a remote fetch of [npages] pages
    starting at virtual page [vpn]. This mirrors the instrumented VMMC
    traces of the paper (Section 6): each send/remote-read request with
    a globally synchronised timestamp. *)

type op = Send | Fetch

type t = {
  time_us : float;  (** Globally synchronised timestamp. *)
  pid : Utlb_mem.Pid.t;  (** Issuing process on this node. *)
  vpn : int;  (** First virtual page of the buffer. *)
  npages : int;  (** Pages spanned by the buffer (>= 1). *)
  op : op;
}

val make :
  time_us:float -> pid:Utlb_mem.Pid.t -> vpn:int -> npages:int -> op:op -> t
(** @raise Invalid_argument if [npages < 1], [vpn < 0], or negative
    time. *)

val compare_time : t -> t -> int
(** Orders by timestamp, then pid, then vpn (a total order for
    deterministic serialisation of simultaneous records). *)

val to_string : t -> string
(** One-line text form: ["<time_us> <pid> <vpn> <npages> <S|F>"]. *)

val of_string : string -> (t, string) result
(** Parse the [to_string] form. Malformed input (wrong field count,
    unparseable numbers, an op other than [S]/[F]) is an [Error]
    naming the offending field and quoting the input — never an
    exception. *)

val of_line : line:int -> string -> (t, string) result
(** {!of_string} with a 1-based line number prefixed to the error
    message — the form trace loaders report. *)

val pp : Format.formatter -> t -> unit
