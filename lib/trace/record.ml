module Pid = Utlb_mem.Pid

type op = Send | Fetch

type t = { time_us : float; pid : Pid.t; vpn : int; npages : int; op : op }

let make ~time_us ~pid ~vpn ~npages ~op =
  if npages < 1 then invalid_arg "Record.make: npages must be >= 1";
  if vpn < 0 then invalid_arg "Record.make: negative vpn";
  if time_us < 0.0 then invalid_arg "Record.make: negative time";
  { time_us; pid; vpn; npages; op }

let compare_time a b =
  let c = Float.compare a.time_us b.time_us in
  if c <> 0 then c
  else
    let c = Pid.compare a.pid b.pid in
    if c <> 0 then c else Int.compare a.vpn b.vpn

let op_char = function Send -> 'S' | Fetch -> 'F'

let to_string t =
  Printf.sprintf "%.3f %d %d %d %c" t.time_us (Pid.to_int t.pid) t.vpn
    t.npages (op_char t.op)

let of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | [ time; pid; vpn; npages; op ] ->
    (try
       let op =
         match op with
         | "S" -> Send
         | "F" -> Fetch
         | other -> failwith (Printf.sprintf "bad op %S (expected S or F)" other)
       in
       Ok
         (make ~time_us:(float_of_string time)
            ~pid:(Pid.of_int (int_of_string pid))
            ~vpn:(int_of_string vpn)
            ~npages:(int_of_string npages)
            ~op)
     with Failure msg | Invalid_argument msg ->
       Error (Printf.sprintf "Record.of_string: %s in %S" msg s))
  | _ -> Error (Printf.sprintf "Record.of_string: expected 5 fields in %S" s)

let of_line ~line s =
  match of_string s with
  | Ok _ as ok -> ok
  | Error msg -> Error (Printf.sprintf "line %d: %s" line msg)

let pp ppf t =
  Format.fprintf ppf "@[%.3fus %a vpn=%d n=%d %c@]" t.time_us Pid.pp t.pid
    t.vpn t.npages (op_char t.op)
