module Pid = Utlb_mem.Pid

type t = { records : Record.t array }

let of_records records =
  Array.sort Record.compare_time records;
  { records }

let records t = t.records

let length t = Array.length t.records

let merge traces =
  of_records (Array.concat (List.map (fun t -> Array.copy t.records) traces))

let iter t f = Array.iter f t.records

let fold_pages t f init =
  Array.fold_left
    (fun acc (r : Record.t) ->
      let acc = ref acc in
      for i = 0 to r.npages - 1 do
        acc := f !acc r.pid (r.vpn + i)
      done;
      !acc)
    init t.records

let footprint_pages t =
  let seen = Hashtbl.create 4096 in
  fold_pages t
    (fun n _pid vpn ->
      if Hashtbl.mem seen vpn then n
      else begin
        Hashtbl.replace seen vpn ();
        n + 1
      end)
    0

let per_pid_footprint t =
  let seen = Hashtbl.create 4096 in
  let counts = Hashtbl.create 8 in
  let () =
    fold_pages t
      (fun () pid vpn ->
        if not (Hashtbl.mem seen (pid, vpn)) then begin
          Hashtbl.replace seen (pid, vpn) ();
          let c = Option.value ~default:0 (Hashtbl.find_opt counts pid) in
          Hashtbl.replace counts pid (c + 1)
        end)
      ()
  in
  Hashtbl.fold (fun pid c acc -> (pid, c) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> Pid.compare a b)

let pids t = List.map fst (per_pid_footprint t)

let total_pages_touched t =
  Array.fold_left (fun n (r : Record.t) -> n + r.npages) 0 t.records

let save t oc =
  Printf.fprintf oc "# utlb trace: %d records\n" (length t);
  Array.iter (fun r -> output_string oc (Record.to_string r ^ "\n")) t.records

(* Shared line loop for [load] and [load_lenient]: hand each
   non-comment line (with its 1-based number) to [f], which decides
   whether parsing continues. *)
let fold_lines ic f init =
  let rec read lineno acc =
    match In_channel.input_line ic with
    | None -> Ok acc
    | Some line ->
      let line = String.trim line in
      if line = "" || (String.length line > 0 && line.[0] = '#') then
        read (lineno + 1) acc
      else
        (match f acc ~line:lineno line with
        | Ok acc -> read (lineno + 1) acc
        | Error _ as e -> e)
  in
  read 1 init

let load ic =
  match
    fold_lines ic
      (fun acc ~line s ->
        match Record.of_line ~line s with
        | Ok r -> Ok (r :: acc)
        | Error _ as e -> (match e with Error m -> Error m | Ok _ -> assert false))
      []
  with
  | Ok acc -> Ok (of_records (Array.of_list (List.rev acc)))
  | Error _ as e -> e

let load_lenient ?on_skip ic =
  let skipped = ref 0 in
  let acc =
    match
      fold_lines ic
        (fun acc ~line s ->
          match Record.of_line ~line s with
          | Ok r -> Ok (r :: acc)
          | Error msg ->
            incr skipped;
            (match on_skip with None -> () | Some f -> f ~line msg);
            Ok acc)
        []
    with
    | Ok acc -> acc
    | Error _ -> assert false (* the callback never returns [Error] *)
  in
  (of_records (Array.of_list (List.rev acc)), !skipped)
