(** Synthetic per-node communication traces for the seven SPLASH-2
    applications of the paper's evaluation (Section 6.1, Table 3).

    The real traces came from instrumented VMMC runs of SPLASH-2 under a
    home-based SVM protocol on 4-way SMP nodes — five communicating
    processes per node (four application processes and one protocol
    process). Those traces are not available, so each generator
    synthesises a node's stream with:

    - the application's communication footprint and lookup count
      calibrated to Table 3;
    - an access structure matching the paper's description of the
      application (strided passes for FFT, paired blocked sweeps for LU,
      a locality walk over particle partitions for Barnes, sequential
      key reads plus recency-biased bucket writes for Radix, task-queue
      runs for Raytrace and Volrend, cyclic multi-page passes for
      Water); and
    - a protocol process (pid 4) that mirrors a fraction of application
      accesses at the same virtual pages — the SVM home/diff traffic
      that makes per-process cache-index offsetting matter (Table 8's
      direct vs direct-nohash gap).

    Generators are deterministic given a seed. *)

type spec = {
  name : string;  (** Lower-case application name, e.g. ["fft"]. *)
  problem_size : string;  (** Table 3's problem-size column. *)
  description : string;
  table3_footprint : int;  (** Paper's footprint, 4 KB pages. *)
  table3_lookups : int;  (** Paper's translation lookups per node. *)
  generate : seed:int64 -> Trace.t;
  rescale : float -> spec;
      (** Same access structure at a scaled problem size (footprint and
          lookup count multiplied); use {!scaled}. *)
}

val app_processes : int
(** 4 application processes per node. *)

val protocol_pid : Utlb_mem.Pid.t
(** Pid 4, the SVM protocol process. *)

val fft : spec

val lu : spec

val barnes : spec

val radix : spec

val raytrace : spec

val volrend : spec

val water : spec

val all : spec list
(** The seven applications in the paper's Table 3 order
    (FFT, LU, Barnes, Radix, Raytrace, Volrend, Water). *)

val interference : spec
(** The multi-tenant interference scenario: pid 0 is a latency-critical
    victim cycling a small hot working set, pids 1-3 are aggressors
    streaming footprints far larger than any evaluated NI cache (no
    protocol mirroring). Designed to be split into tenants — the
    victim's miss-rate variance collapses under strict partitioning. *)

val extras : spec list
(** Scenario-family workloads resolvable by {!find} but kept out of
    {!all}, so the paper-table campaigns and bench baselines that
    enumerate [all] are unaffected. *)

val find : string -> spec option
(** Case-insensitive lookup by name, over [all] and [extras]. *)

val scaled : spec -> factor:float -> spec
(** [scaled spec ~factor] is the workload with footprint and lookups
    multiplied by [factor] — for studying how the paper's results move
    with problem size beyond Table 3.
    @raise Invalid_argument if [factor <= 0]. *)

val custom :
  name:string ->
  ?problem_size:string ->
  ?description:string ->
  generate:(seed:int64 -> Trace.t) ->
  unit ->
  spec
(** Wrap any trace generator — e.g. a {!Pattern} instantiation or a
    {!scaled} spec under a distinguishing name — as a workload usable
    in campaign grids. Table-3 calibration columns are zero and the
    spec rejects {!scaled}. *)

val multiprogram : spec list -> spec
(** Independent applications timesharing one node — the behaviour the
    paper's traces could not capture ("they may not reveal certain
    behaviors that multiple independent programs have", Section 7).
    Each component keeps its own processes (pids renumbered into
    disjoint ranges) and virtual layout; their records interleave by
    timestamp. @raise Invalid_argument on an empty list. *)
