module Rng = Utlb_sim.Rng
module Pid = Utlb_mem.Pid

type spec = {
  name : string;
  problem_size : string;
  description : string;
  table3_footprint : int;
  table3_lookups : int;
  generate : seed:int64 -> Trace.t;
  rescale : float -> spec;
}

let app_processes = 4

let protocol_pid = Pid.of_int app_processes

(* SPMD processes have identical address-space layouts: process i's
   communication buffers live at the same virtual addresses as process
   j's. We model this by placing each process's partition at a base
   that is congruent modulo 16384 pages (the largest cache set count
   evaluated), so partitions alias pairwise at every cache size unless
   the NI applies per-process index offsetting — reproducing the
   direct vs direct-nohash behaviour of Table 8. *)
let arena_base = 65536

let layout_stride = 16384

type event = Interleave.event = { vpn : int; npages : int; op : Record.op }

let ev ?(npages = 1) ?(op = Record.Send) vpn = { vpn; npages; op }

(* The five processes' streams interleave through the shared merger;
   the protocol process mirrors application accesses at the same
   virtual pages, modelling home-based SVM diff/home traffic. *)
let assemble rng ~mirror_fraction ~mirror_npages (streams : event list array) =
  Interleave.merge rng ~mirror_fraction ~mirror_npages ~protocol_pid streams

let rec coprime_from n candidate =
  let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
  if gcd candidate n = 1 then candidate else coprime_from n (candidate + 1)

(* Recency-biased revisit over the pages visited so far: geometric
   depth from the most recent, with a small uniformly-random far tail. *)
let revisit rng history count ~far_prob =
  if count = 0 then invalid_arg "Workloads.revisit: empty history";
  if Rng.float rng 1.0 < far_prob then history.(Rng.int rng count)
  else begin
    let depth = Rng.geometric rng ~p:0.25 in
    let depth = if depth >= count then count - 1 else depth in
    history.(count - 1 - depth)
  end

(* FFT: strided passes with a read/write pair per visit. Two passes over
   the process's partition; the stride models the transpose's scattered
   page order. *)
let fft_stream rng ~base ~pages =
  let stride = coprime_from pages 64 in
  let events = ref [] in
  for _pass = 0 to 1 do
    let offset = Rng.int rng pages in
    for j = 0 to pages - 1 do
      let p = base + (((j * stride) + offset) mod pages) in
      events := ev ~op:Record.Fetch p :: ev ~op:Record.Send p :: !events
    done
  done;
  List.rev !events

(* LU: one blocked sweep, each page touched as a read/write pair; block
   order is strided to model the column-block traversal. *)
let lu_stream rng ~base ~pages =
  let block = 16 in
  let nblocks = (pages + block - 1) / block in
  let bstride = coprime_from nblocks 9 in
  let boffset = Rng.int rng nblocks in
  let events = ref [] in
  for k = 0 to nblocks - 1 do
    let b = ((k * bstride) + boffset) mod nblocks in
    let lo = b * block and hi = min ((b + 1) * block) pages in
    for p = lo to hi - 1 do
      events :=
        ev ~op:Record.Fetch (base + p) :: ev ~op:Record.Send (base + p) :: !events
    done
  done;
  List.rev !events

(* Barnes: most communication concentrates on a hot subset of the
   partition (boundary particles and shared tree cells) walked with
   strong locality; the remaining cold pages are swept sequentially a
   couple of times over the run. One-or-two-page buffers. *)
let barnes_stream rng ~base ~pages ~lookups =
  (* The hot subset is a contiguous cluster: boundary particles are
     neighbours in the space-filling particle order. *)
  let hot_count = max 1 (pages / 6) in
  let hot_start = Rng.int rng (max 1 (pages - hot_count)) in
  let hot = Array.init hot_count (fun i -> hot_start + i) in
  let cold =
    Array.init (pages - hot_count) (fun i ->
        if i < hot_start then i else i + hot_count)
  in
  Rng.shuffle rng cold;
  let cold_len = Array.length cold in
  let events = ref [] in
  let hot_pos = ref 0 in
  let cold_pos = ref 0 in
  for _ = 1 to lookups do
    let r = Rng.float rng 1.0 in
    if r < 0.90 || cold_len = 0 then begin
      (* Hot access with locality: short steps through the hot set,
         occasional jumps. *)
      let r2 = Rng.float rng 1.0 in
      if r2 < 0.70 then hot_pos := (!hot_pos + 1) mod hot_count
      else if r2 < 0.88 then () (* re-touch *)
      else hot_pos := Rng.int rng hot_count;
      let page = hot.(!hot_pos) in
      let npages = if Rng.bool rng && page < pages - 1 then 2 else 1 in
      events := ev ~npages (base + page) :: !events
    end
    else begin
      (* Cold sweep: sequential, each page revisited on later sweeps. *)
      let page = cold.(!cold_pos) in
      cold_pos := (!cold_pos + 1) mod cold_len;
      events := ev (base + page) :: !events
    end
  done;
  List.rev !events

(* Radix: sequential single reads of the source segment, interleaved
   with recency-biased writes into the bucket region (consecutive keys
   mostly land in the same bucket run). *)
let radix_stream rng ~base ~pages ~lookups =
  let source = pages * 5 / 8 in
  let buckets = pages - source in
  let bucket_base = base + source in
  let writes_per_read =
    float_of_int (lookups - source) /. float_of_int source
  in
  let events = ref [] in
  let bucket_pos = ref (Rng.int rng buckets) in
  let budget = ref 0.0 in
  for p = 0 to source - 1 do
    events := ev ~op:Record.Fetch (base + p) :: !events;
    budget := !budget +. writes_per_read;
    while !budget >= 1.0 do
      budget := !budget -. 1.0;
      let r = Rng.float rng 1.0 in
      if r < 0.70 then () (* same bucket page again *)
      else if r < 0.88 then bucket_pos := (!bucket_pos + 1) mod buckets
      else bucket_pos := Rng.int rng buckets;
      events := ev (bucket_base + !bucket_pos) :: !events
    done
  done;
  List.rev !events

(* Task-queue applications (Raytrace, Volrend): tasks are short runs of
   contiguous pages visited once, padded with recency-biased revisits of
   earlier results. [far_prob] controls the far-revisit tail that keeps
   small caches missing. *)
let task_queue_stream rng ~base ~pages ~lookups ~far_prob =
  let events = ref [] in
  let history = Array.make lookups 0 in
  let visited = ref 0 in
  let emitted = ref 0 in
  let emit vpn op =
    events := ev ~op vpn :: !events;
    history.(!visited) <- vpn;
    visited := !visited + 1;
    incr emitted
  in
  (* Random task (run) order over the partition. *)
  let next_new = ref 0 in
  let order = Array.init pages (fun i -> i) in
  Rng.shuffle rng order;
  let revisits_total = max 0 (lookups - pages) in
  let revisit_budget = ref 0.0 in
  let per_new = float_of_int revisits_total /. float_of_int pages in
  while !next_new < pages && !emitted < lookups do
    let run_len = 2 + Rng.int rng 5 in
    let run_len = min run_len (pages - !next_new) in
    for k = 0 to run_len - 1 do
      emit (base + order.(!next_new + k)) Record.Fetch
    done;
    next_new := !next_new + run_len;
    revisit_budget := !revisit_budget +. (per_new *. float_of_int run_len);
    while !revisit_budget >= 1.0 && !emitted < lookups do
      revisit_budget := !revisit_budget -. 1.0;
      let vpn = revisit rng history !visited ~far_prob in
      emit vpn Record.Send
    done
  done;
  List.rev !events

(* Water: neighbour-list exchanges concentrate on a hot cluster of
   molecule rows, while periodic full passes sweep the whole partition
   with multi-page buffers (molecule rows span two to three pages). *)
let water_stream rng ~base ~pages ~lookups =
  let hot_count = max 2 (pages / 4) in
  let events = ref [] in
  let emitted = ref 0 in
  let hot_pos = ref 0 in
  let sweep_pos = ref 0 in
  while !emitted < lookups do
    let npages = if !emitted mod 4 = 3 then 3 else 2 in
    if Rng.float rng 1.0 < 0.65 then begin
      (* Hot neighbour-list touch with locality. *)
      let r = Rng.float rng 1.0 in
      if r < 0.75 then hot_pos := (!hot_pos + npages) mod hot_count
      else if r < 0.90 then ()
      else hot_pos := Rng.int rng hot_count;
      let p = !hot_pos in
      let npages = max 1 (min npages (hot_count - p)) in
      events := ev ~npages (base + p) :: !events
    end
    else begin
      (* Full-pass sweep over the partition. *)
      let p = !sweep_pos in
      let npages = max 1 (min npages (pages - p)) in
      events := ev ~npages (base + p) :: !events;
      sweep_pos := (!sweep_pos + npages) mod pages
    end;
    incr emitted
  done;
  List.rev !events

let partition ~footprint pid =
  (arena_base + (pid * layout_stride), footprint / app_processes)

let make_spec ~name ~problem_size ~description ~footprint ~lookups
    ~mirror_fraction ~mirror_npages ~stream =
  let rec build footprint lookups =
    {
      name;
      problem_size;
      description;
      table3_footprint = footprint;
      table3_lookups = lookups;
      generate =
        (fun ~seed ->
          let rng = Rng.create ~seed in
          let streams =
            Array.init app_processes (fun pid ->
                let base, pages = partition ~footprint pid in
                stream (Rng.split rng) ~base ~pages
                  ~lookups:(lookups / app_processes))
          in
          assemble rng ~mirror_fraction ~mirror_npages streams);
      rescale =
        (fun factor ->
          if factor <= 0.0 then
            invalid_arg "Workloads.scaled: factor must be positive";
          build
            (max app_processes
               (int_of_float (float_of_int footprint *. factor)))
            (max app_processes
               (int_of_float (float_of_int lookups *. factor))));
    }
  in
  build footprint lookups

let fft =
  make_spec ~name:"fft" ~problem_size:"4M elements"
    ~description:"parallel 2D FFT: strided transpose passes, paired touches"
    ~footprint:10803 ~lookups:43132 ~mirror_fraction:0.05 ~mirror_npages:2
    ~stream:(fun rng ~base ~pages ~lookups:_ -> fft_stream rng ~base ~pages)

let lu =
  make_spec ~name:"lu" ~problem_size:"4K x 4K matrix"
    ~description:"blocked LU decomposition: one paired sweep, blocked order"
    ~footprint:12507 ~lookups:25198 ~mirror_fraction:0.05 ~mirror_npages:2
    ~stream:(fun rng ~base ~pages ~lookups:_ -> lu_stream rng ~base ~pages)

let barnes =
  make_spec ~name:"barnes" ~problem_size:"32K particles"
    ~description:"Barnes-Hut N-body: locality walk over particle partition"
    ~footprint:2235 ~lookups:35904 ~mirror_fraction:0.04 ~mirror_npages:1
    ~stream:(fun rng ~base ~pages ~lookups -> barnes_stream rng ~base ~pages ~lookups)

let radix =
  make_spec ~name:"radix" ~problem_size:"4M keys"
    ~description:"radix sort: sequential key reads, recency-biased bucket writes"
    ~footprint:6393 ~lookups:11775 ~mirror_fraction:0.04 ~mirror_npages:2
    ~stream:(fun rng ~base ~pages ~lookups -> radix_stream rng ~base ~pages ~lookups)

let raytrace =
  make_spec ~name:"raytrace" ~problem_size:"256 x 256 car"
    ~description:"task-farm raytracer: task runs plus recency revisits"
    ~footprint:6319 ~lookups:14594 ~mirror_fraction:0.06 ~mirror_npages:2
    ~stream:(fun rng ~base ~pages ~lookups ->
      task_queue_stream rng ~base ~pages ~lookups ~far_prob:0.12)

let volrend =
  make_spec ~name:"volrend" ~problem_size:"256^3 CST head"
    ~description:"task-farm volume renderer: task runs plus recency revisits"
    ~footprint:2371 ~lookups:9438 ~mirror_fraction:0.08 ~mirror_npages:2
    ~stream:(fun rng ~base ~pages ~lookups ->
      task_queue_stream rng ~base ~pages ~lookups ~far_prob:0.10)

let water =
  make_spec ~name:"water" ~problem_size:"15,625 molecules"
    ~description:"spatial water: cyclic multi-page passes over molecules"
    ~footprint:1890 ~lookups:8488 ~mirror_fraction:0.08 ~mirror_npages:2
    ~stream:(fun rng ~base ~pages ~lookups -> water_stream rng ~base ~pages ~lookups)

let all = [ fft; lu; barnes; radix; raytrace; volrend; water ]

(* ------------------------------------------------------------------ *)
(* Multi-tenant interference family                                    *)

(* The victim: a latency-critical process cycling a small hot working
   set with strong locality — the whole set fits in any evaluated NI
   cache, so left alone it barely misses. *)
let victim_stream rng ~base ~pages ~lookups =
  let pos = ref 0 in
  let events = ref [] in
  for _ = 1 to lookups do
    let r = Rng.float rng 1.0 in
    if r < 0.80 then pos := (!pos + 1) mod pages
    else if r < 0.95 then () (* re-touch *)
    else pos := Rng.int rng pages;
    events := ev (base + !pos) :: !events
  done;
  List.rev !events

(* An aggressor: a pure streaming sweep over a footprint far larger
   than the NI cache — every access a compulsory-or-capacity miss,
   every fill an eviction of someone else's line. *)
let aggressor_stream _rng ~base ~pages ~lookups =
  let events = ref [] in
  for i = 0 to lookups - 1 do
    events := ev (base + (i mod pages)) :: !events
  done;
  List.rev !events

let rec interference_build footprint lookups =
  {
    name = "interference";
    problem_size = "1 victim + 3 aggressors";
    description =
      "cross-tenant interference: hot-set victim vs cache-thrashing \
       aggressors";
    table3_footprint = footprint;
    table3_lookups = lookups;
    generate =
      (fun ~seed ->
        let rng = Rng.create ~seed in
        let victim_pages = max 16 (footprint / 192) in
        let aggressor_pages =
          min (layout_stride - 1) (max 64 ((footprint - victim_pages) / 3))
        in
        let per_stream = lookups / app_processes in
        let streams =
          Array.init app_processes (fun pid ->
              let base = arena_base + (pid * layout_stride) in
              let r = Rng.split rng in
              if pid = 0 then
                victim_stream r ~base ~pages:victim_pages ~lookups:per_stream
              else
                aggressor_stream r ~base ~pages:aggressor_pages
                  ~lookups:per_stream)
        in
        (* No protocol mirroring: the interference signal should come
           from the four application tenancies alone. *)
        assemble rng ~mirror_fraction:0.0 ~mirror_npages:1 streams);
    rescale =
      (fun factor ->
        if factor <= 0.0 then
          invalid_arg "Workloads.scaled: factor must be positive";
        interference_build
          (max app_processes (int_of_float (float_of_int footprint *. factor)))
          (max app_processes (int_of_float (float_of_int lookups *. factor))));
  }

let interference = interference_build 18600 44000

(* Kept out of [all] so the paper-table campaigns, bench rows, and
   CLI listings built on it are untouched; [find] still resolves it. *)
let extras = [ interference ]

let scaled spec ~factor = spec.rescale factor

(* Renumber a trace's pids into [base ..] so several applications'
   process sets stay disjoint on one node. *)
let shift_pids trace ~base =
  let records =
    Array.map
      (fun (r : Record.t) ->
        { r with Record.pid = Pid.of_int (base + Pid.to_int r.Record.pid) })
      (Trace.records trace)
  in
  Trace.of_records records

let rec multiprogram specs =
  match specs with
  | [] -> invalid_arg "Workloads.multiprogram: empty list"
  | _ :: _ ->
    let name = String.concat "+" (List.map (fun s -> s.name) specs) in
    {
      name;
      problem_size = "mixed";
      description = "independent applications timesharing one node";
      table3_footprint =
        List.fold_left (fun n s -> n + s.table3_footprint) 0 specs;
      table3_lookups =
        List.fold_left (fun n s -> n + s.table3_lookups) 0 specs;
      generate =
        (fun ~seed ->
          let parts =
            List.mapi
              (fun i spec ->
                let component =
                  spec.generate ~seed:(Int64.add seed (Int64.of_int (i * 7919)))
                in
                shift_pids component ~base:(i * (app_processes + 1)))
              specs
          in
          Trace.merge parts);
      rescale =
        (fun factor ->
          multiprogram (List.map (fun s -> s.rescale factor) specs));
    }

let find name =
  let lower = String.lowercase_ascii name in
  List.find_opt (fun s -> String.equal s.name lower) (all @ extras)

let custom ~name ?(problem_size = "custom") ?(description = "") ~generate () =
  {
    name;
    problem_size;
    description;
    table3_footprint = 0;
    table3_lookups = 0;
    generate;
    rescale =
      (fun _ -> invalid_arg "Workloads.scaled: custom workloads do not rescale");
  }
