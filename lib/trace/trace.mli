(** A communication trace: the time-ordered record stream of one node.

    Provides merging of per-process streams (the paper serialises the
    five per-process traces of each SMP using synchronised timestamps),
    summary statistics matching Table 3's columns, and a line-oriented
    text format for saving and reloading traces. *)

type t

val of_records : Record.t array -> t
(** Takes ownership; sorts by timestamp. *)

val records : t -> Record.t array
(** Time-ordered. Do not mutate. *)

val length : t -> int
(** Number of records (= translation lookups). *)

val merge : t list -> t
(** Interleave several traces by timestamp. *)

val iter : t -> (Record.t -> unit) -> unit

(** {2 Table-3 style statistics} *)

val footprint_pages : t -> int
(** Distinct virtual pages touched by any process on the node. *)

val per_pid_footprint : t -> (Utlb_mem.Pid.t * int) list
(** Distinct pages per process, ascending pid. *)

val pids : t -> Utlb_mem.Pid.t list

val total_pages_touched : t -> int
(** Sum of [npages] over all records. *)

(** {2 Persistence} *)

val save : t -> out_channel -> unit

val load : in_channel -> (t, string) result
(** Stops at end of input; blank lines and [#] comments are skipped.
    Strict: the first malformed record aborts the load with an error
    carrying its 1-based line number. *)

val load_lenient :
  ?on_skip:(line:int -> string -> unit) -> in_channel -> t * int
(** Like {!load} but malformed records are skipped instead of aborting
    the load: returns the trace of the records that did parse together
    with the number skipped. Each skipped line is reported to
    [on_skip] with its 1-based line number and parse error (callers
    typically log a warning). Never raises on malformed input. *)
