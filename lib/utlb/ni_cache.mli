(** The Shared UTLB-Cache (Section 3.2).

    A translation cache on the network interface shared by all
    processes. Each line holds a physical frame plus the tag pair
    (process tag, virtual-address tag) of the paper's cache-line format.

    Geometry covers the paper's four configurations:
    - [Direct_nohash]: direct-mapped, index = vpn mod sets;
    - [Direct]: direct-mapped with per-process index offsetting, the
      paper's chosen design;
    - [Two_way] / [Four_way]: set-associative with offsetting and LRU
      within the set.

    Lookup cost in firmware grows with associativity (the LANai checks
    one entry at a time), which is why the paper's direct-mapped choice
    wins on cost even where set-associativity has slightly fewer misses:
    [probe_cost_entries] reports how many entries the last lookup
    examined. *)

type associativity = Direct_nohash | Direct | Two_way | Four_way

val ways : associativity -> int

val associativity_name : associativity -> string

val associativity_of_string : string -> associativity option

type config = { entries : int; associativity : associativity }
(** [entries] must be a positive multiple of the way count, and the set
    count must be a power of two (the paper sweeps 1K-16K). *)

val sets_of_config : config -> int option
(** Static geometry: the set count a cache built from [config] would
    have, or [None] when the geometry is invalid ([create] would
    raise). Lets static analyses reason about a configuration without
    allocating the line array. *)

val static_set_index : config -> pid:int -> vpn:int -> int option
(** Static geometry: the set a [(pid, vpn)] line maps to under
    [config] — the same per-process offset hash a built cache uses
    ([None] on an invalid geometry). *)

type t

val create : config -> t
(** @raise Invalid_argument on an invalid geometry. *)

val config : t -> config

val sets : t -> int

val set_window :
  t -> pid:Utlb_mem.Pid.t -> base:int -> mask:int -> offset:int -> unit
(** Restrict [pid]'s index window for multi-tenant partitioning: the
    set index becomes [base + ((hash + offset) land mask)]. The default
    window [(0, sets-1, 0)] reproduces the historical index function
    exactly. [static_set_index] ignores windows (it predicts the
    unpartitioned geometry).
    @raise Invalid_argument when [mask+1] is not a power of two or the
    window exceeds the set count. *)

val lookup : t -> pid:Utlb_mem.Pid.t -> vpn:int -> int option
(** Frame on a hit; updates the set's LRU state and hit counters. *)

val insert :
  t -> pid:Utlb_mem.Pid.t -> vpn:int -> frame:int ->
  (Utlb_mem.Pid.t * int * int) option
(** Fill a line, returning the evicted (pid, vpn, frame) if a valid
    line was displaced. Inserting an already-present mapping refreshes
    it in place and evicts nothing. *)

val invalidate : t -> pid:Utlb_mem.Pid.t -> vpn:int -> bool
(** Drop a mapping if cached (unpin path). True when present. *)

val invalidate_process : t -> pid:Utlb_mem.Pid.t -> int
(** Drop all of a process's lines (process exit); returns the count. *)

val contains : t -> pid:Utlb_mem.Pid.t -> vpn:int -> bool
(** Probe without touching LRU state or counters. *)

val peek : t -> pid:Utlb_mem.Pid.t -> vpn:int -> int option
(** Frame for a cached mapping without touching LRU state or counters
    (sanitizer probe). *)

val iter_valid :
  t -> (pid:Utlb_mem.Pid.t -> vpn:int -> frame:int -> unit) -> unit
(** Iterate over every valid line (sanitizer full-cache scan). *)

val valid_lines : t -> int

val hits : t -> int

val misses : t -> int

val evictions : t -> int

val probe_cost_entries : t -> int
(** Total entries examined across all lookups (firmware cost proxy). *)

val reset_counters : t -> unit

val size_bytes : t -> int
(** SRAM the cache would occupy at 4 bytes per line (32 KB at the
    paper's 8 K entries). *)
