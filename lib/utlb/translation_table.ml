module Sram = Utlb_nic.Sram
module Pid = Utlb_mem.Pid

let directory_bits = 10

let table_bits = 10

let table_entries = 1 lsl table_bits

let directory_entries = 1 lsl directory_bits

let max_vpn = (1 lsl (directory_bits + table_bits)) - 1

type lookup = Frame of int | Garbage | Table_swapped of int

(* Flat layout: every second-level table is a [table_entries]-int block
   in one growable pool, and the directory is two int arrays — the
   block id backing each slot (-1 = never allocated; swapped tables
   keep their block so [swap_in] restores entries in place) and a state
   word: [state_empty], [state_resident], or [-(disk_block + 1)] for a
   swapped table. The NI lookup is then two int-array reads with no
   variant header in between. *)
let state_empty = 0

let state_resident = 1

type t = {
  pid : Pid.t;
  garbage : int;
  dir_state : int array;
  dir_block : int array;
  mutable pool : int array;
  mutable blocks : int;
  (* Mirror of the directory's presence bits in NI SRAM, when given. *)
  sram_dir : (Sram.t * Sram.region) option;
  mutable valid : int;
  mutable resident_tables : int;
  mutable swapped : int;
}

let create ?sram ~garbage_frame ~pid () =
  let sram_dir =
    match sram with
    | None -> None
    | Some sram ->
      let name = Printf.sprintf "utlb-dir-%d" (Pid.to_int pid) in
      Some (sram, Sram.alloc sram ~name ~length:(directory_entries * 8))
  in
  {
    pid;
    garbage = garbage_frame;
    dir_state = Array.make directory_entries state_empty;
    dir_block = Array.make directory_entries (-1);
    pool = [||];
    blocks = 0;
    sram_dir;
    valid = 0;
    resident_tables = 0;
    swapped = 0;
  }

let pid t = t.pid

let garbage_frame t = t.garbage

let check_vpn vpn =
  if vpn < 0 || vpn > max_vpn then
    invalid_arg "Translation_table: vpn out of range"

let split vpn = (vpn lsr table_bits, vpn land (table_entries - 1))

(* Keep the SRAM copy of a directory word in sync: positive values are
   "host physical address" of the table (we store the index), negative
   values encode a disk block for swapped tables, zero is empty. *)
let sync_dir t dir =
  match t.sram_dir with
  | None -> ()
  | Some (sram, region) ->
    let state = t.dir_state.(dir) in
    let word =
      if state = state_empty then 0L
      else if state = state_resident then Int64.of_int (dir + 1)
      else Int64.of_int state (* already -(disk_block + 1) *)
    in
    Sram.write_word sram region dir word

let alloc_block t =
  let needed = (t.blocks + 1) * table_entries in
  if needed > Array.length t.pool then begin
    let cap = max needed (max table_entries (2 * Array.length t.pool)) in
    let bigger = Array.make cap t.garbage in
    Array.blit t.pool 0 bigger 0 (t.blocks * table_entries);
    t.pool <- bigger
  end;
  Array.fill t.pool (t.blocks * table_entries) table_entries t.garbage;
  let block = t.blocks in
  t.blocks <- t.blocks + 1;
  block

(* Base offset of [dir]'s block in the pool, allocating on first touch.
   Negative when the table is swapped out. *)
let base_for t dir =
  let state = t.dir_state.(dir) in
  if state = state_resident then t.dir_block.(dir) lsl table_bits
  else if state = state_empty then begin
    let block =
      match t.dir_block.(dir) with
      | -1 ->
        let block = alloc_block t in
        t.dir_block.(dir) <- block;
        block
      | block -> block
    in
    t.dir_state.(dir) <- state_resident;
    t.resident_tables <- t.resident_tables + 1;
    sync_dir t dir;
    block lsl table_bits
  end
  else -1

let install t ~vpn ~frame =
  check_vpn vpn;
  if frame < 0 then invalid_arg "Translation_table.install: negative frame";
  let dir, idx = split vpn in
  let base = base_for t dir in
  if base < 0 then invalid_arg "Translation_table.install: table is swapped out";
  let old = t.pool.(base + idx) in
  if old = t.garbage && frame <> t.garbage then t.valid <- t.valid + 1;
  if old <> t.garbage && frame = t.garbage then t.valid <- t.valid - 1;
  t.pool.(base + idx) <- frame

let invalidate t ~vpn =
  check_vpn vpn;
  let dir, idx = split vpn in
  let state = t.dir_state.(dir) in
  if state <> state_empty then
    if state <> state_resident then
      invalid_arg "Translation_table.invalidate: table is swapped out"
    else begin
      let slot = (t.dir_block.(dir) lsl table_bits) + idx in
      if t.pool.(slot) <> t.garbage then begin
        t.pool.(slot) <- t.garbage;
        t.valid <- t.valid - 1
      end
    end

let lookup t ~vpn =
  check_vpn vpn;
  let dir, idx = split vpn in
  let state = t.dir_state.(dir) in
  if state = state_resident then begin
    let frame = t.pool.((t.dir_block.(dir) lsl table_bits) + idx) in
    if frame = t.garbage then Garbage else Frame frame
  end
  else if state = state_empty then Garbage
  else Table_swapped (-state - 1)

let valid_entries t = t.valid

let second_level_tables t = t.resident_tables

let swap_out t ~dir_index ~disk_block =
  if dir_index < 0 || dir_index >= directory_entries then
    invalid_arg "Translation_table.swap_out: index out of range";
  if t.dir_state.(dir_index) <> state_resident then false
  else begin
    t.dir_state.(dir_index) <- -(disk_block + 1);
    t.resident_tables <- t.resident_tables - 1;
    t.swapped <- t.swapped + 1;
    sync_dir t dir_index;
    true
  end

let swap_in t ~dir_index =
  if dir_index < 0 || dir_index >= directory_entries then
    invalid_arg "Translation_table.swap_in: index out of range";
  let state = t.dir_state.(dir_index) in
  if state = state_empty || state = state_resident then false
  else begin
    (* The block kept its entries while swapped; just flip the state. *)
    t.dir_state.(dir_index) <- state_resident;
    t.resident_tables <- t.resident_tables + 1;
    t.swapped <- t.swapped - 1;
    sync_dir t dir_index;
    true
  end

let swapped_tables t = t.swapped

let iter_valid t f =
  for dir = 0 to directory_entries - 1 do
    if t.dir_state.(dir) = state_resident then begin
      let base = t.dir_block.(dir) lsl table_bits in
      for idx = 0 to table_entries - 1 do
        let frame = t.pool.(base + idx) in
        if frame <> t.garbage then f ((dir lsl table_bits) lor idx) frame
      done
    end
  done
