module Pid = Utlb_mem.Pid
module Host_memory = Utlb_mem.Host_memory
module Sram = Utlb_nic.Sram
module Rng = Utlb_sim.Rng

type t = {
  pid : Pid.t;
  host : Host_memory.t;
  table : int array; (* index -> frame; garbage marks free/invalid *)
  sram : (Sram.t * Sram.region) option;
  garbage : int;
  tree : Lookup_tree.t;
  tracker : Replacement.t;
  (* LIFO stack of free indices: top at [free_len - 1]. Seeded so the
     first pops come out 0, 1, 2, … like the old cons-list did. *)
  free : int array;
  mutable free_len : int;
  mutable occupancy : int;
  mutable pins : int;
  mutable unpins : int;
}

let create ?sram ~host ~pid ~table_entries ~policy ~seed () =
  if table_entries <= 0 then
    invalid_arg "Per_process.create: table_entries must be positive";
  Host_memory.add_process host pid;
  let sram =
    match sram with
    | None -> None
    | Some s ->
      let name = Printf.sprintf "pp-utlb-%d" (Pid.to_int pid) in
      Some (s, Sram.alloc s ~name ~length:(table_entries * 8))
  in
  let garbage = Host_memory.garbage_frame host in
  {
    pid;
    host;
    table = Array.make table_entries garbage;
    sram;
    garbage;
    tree = Lookup_tree.create ();
    tracker = Replacement.create policy ~rng:(Rng.create ~seed);
    free = Array.init table_entries (fun i -> table_entries - 1 - i);
    free_len = table_entries;
    occupancy = 0;
    pins = 0;
    unpins = 0;
  }

let pid t = t.pid

let table_entries t = Array.length t.table

let occupancy t = t.occupancy

let sram_bytes t = table_entries t * 8

let write_entry t index frame =
  t.table.(index) <- frame;
  match t.sram with
  | None -> ()
  | Some (sram, region) -> Sram.write_word sram region index (Int64.of_int frame)

type outcome = {
  check_miss : bool;
  pages_pinned : int;
  pages_unpinned : int;
  indices : int array;
  index_runs : int;
}

let push_free t index =
  t.free.(t.free_len) <- index;
  t.free_len <- t.free_len + 1

(* Evict one page: unpin it, invalidate its tree entry, free its index. *)
let evict_one t ~protect =
  match Replacement.select_victim t.tracker ~protect () with
  | None -> false
  | Some victim ->
    (match Lookup_tree.find t.tree victim with
    | None -> ()
    | Some index ->
      write_entry t index t.garbage;
      push_free t index;
      t.occupancy <- t.occupancy - 1);
    Lookup_tree.remove t.tree victim;
    Host_memory.unpin t.host t.pid ~vpn:victim ~count:1;
    t.unpins <- t.unpins + 1;
    true

let install t vpn =
  if t.free_len = 0 then
    invalid_arg "Per_process: no free index after eviction";
  t.free_len <- t.free_len - 1;
  let index = t.free.(t.free_len) in
  match Host_memory.pin t.host t.pid ~vpn ~count:1 with
  | Error `Out_of_memory ->
    push_free t index;
    invalid_arg "Per_process: host out of memory"
  | Ok frames ->
    write_entry t index frames.(0);
    Lookup_tree.set t.tree vpn ~index;
    Replacement.insert t.tracker vpn;
    t.occupancy <- t.occupancy + 1;
    t.pins <- t.pins + 1;
    index

let lookup t ~vpn ~npages =
  if npages < 1 then invalid_arg "Per_process.lookup: npages must be >= 1";
  if npages > table_entries t then
    invalid_arg "Per_process.lookup: buffer larger than translation table";
  let protect page = page >= vpn && page < vpn + npages in
  let check_miss = ref false in
  let pinned = ref 0 in
  let unpinned_before = t.unpins in
  let indices =
    Array.init npages (fun i ->
        let page = vpn + i in
        match Lookup_tree.find t.tree page with
        | Some index ->
          Replacement.touch t.tracker page;
          index
        | None ->
          check_miss := true;
          (* Capacity miss in the per-process table: evict until an
             index frees up. *)
          let ok = ref (t.free_len > 0) in
          while not !ok do
            if evict_one t ~protect then ok := t.free_len > 0
            else ok := true (* nothing evictable; install will raise *)
          done;
          incr pinned;
          install t page)
  in
  (* Fragmentation: count maximal runs of consecutive indices. *)
  let runs = ref (if npages = 0 then 0 else 1) in
  for i = 1 to npages - 1 do
    if indices.(i) <> indices.(i - 1) + 1 then incr runs
  done;
  {
    check_miss = !check_miss;
    pages_pinned = !pinned;
    pages_unpinned = t.unpins - unpinned_before;
    indices;
    index_runs = !runs;
  }

let release t =
  let released = ref 0 in
  while evict_one t ~protect:(fun _ -> false) do
    incr released
  done;
  !released

let translate_index t ~index =
  if index < 0 || index >= table_entries t then
    invalid_arg "Per_process.translate_index: index out of range";
  if t.table.(index) = t.garbage then None else Some t.table.(index)

let is_pinned t ~vpn = Lookup_tree.find t.tree vpn <> None

let pins t = t.pins

let unpins t = t.unpins

let self_check t =
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let filled =
    Array.fold_left
      (fun n frame -> if frame = t.garbage then n else n + 1)
      0 t.table
  in
  if filled <> t.occupancy then
    note "table holds %d live entries but occupancy counter says %d" filled
      t.occupancy;
  if Lookup_tree.entries t.tree <> t.occupancy then
    note "lookup tree tracks %d pages but occupancy counter says %d"
      (Lookup_tree.entries t.tree) t.occupancy;
  if Replacement.size t.tracker <> t.occupancy then
    note "replacement tracker holds %d pages but occupancy counter says %d"
      (Replacement.size t.tracker) t.occupancy;
  if t.free_len + t.occupancy <> Array.length t.table then
    note "free stack (%d) plus occupancy (%d) does not cover the table (%d)"
      t.free_len t.occupancy (Array.length t.table);
  let host_pinned = Host_memory.pinned_pages t.host t.pid in
  if host_pinned <> t.occupancy then
    note "host reports %d pinned pages but the table tracks %d (pin leak)"
      host_pinned t.occupancy;
  (* Every tracked page must map to a live, host-consistent entry. *)
  Lookup_tree.iter t.tree (fun vpn index ->
      if index < 0 || index >= Array.length t.table then
        note "vpn %#x maps to out-of-range index %d" vpn index
      else begin
        let frame = t.table.(index) in
        if frame = t.garbage then
          note "vpn %#x maps to index %d holding the garbage frame" vpn index
        else
          match Host_memory.translate t.host t.pid ~vpn with
          | Some f when f = frame -> ()
          | Some f ->
            note "vpn %#x: table frame %d disagrees with host frame %d" vpn
              frame f
          | None -> note "vpn %#x tracked but not resident on the host" vpn
      end);
  List.rev !problems
