(** Accumulated statistics of one simulated run, with the derived rates
    the paper reports in Tables 4, 5, 7, 8 and Figures 7, 8.

    Rate conventions (matching the paper's "per lookup" columns):
    - [check_miss_rate] and [ni_miss_rate] count {e lookups} on which at
      least one page missed, divided by total lookups;
    - [unpin_rate] counts {e pages} unpinned per lookup (unpinning is
      one page at a time, Section 6.5);
    - the three-C breakdown is reported as shares of page-level misses
      scaled to the per-lookup miss rate (Figure 7's stacked bars). *)

type t = {
  label : string;
  lookups : int;
  check_misses : int;
  ni_miss_lookups : int;
  ni_page_accesses : int;
  ni_page_misses : int;
  pin_calls : int;
  pages_pinned : int;
  unpin_calls : int;
  pages_unpinned : int;
  interrupts : int;
  entries_fetched : int;
  compulsory : int;
  capacity : int;
  conflict : int;
  fault_recoveries : int;
      (** Injected faults the run recovered from instead of aborting:
          DMA fetches retried to success, interrupt-path fallbacks
          after an exhausted retry budget, re-issued interrupts, and
          repaired spurious cache invalidations. Zero without a fault
          plan. *)
  records_skipped : int;
      (** Malformed trace records skipped (with a warning) while
          loading the input, rather than crashing the run. *)
  spills : int;
      (** NI-cache capacity evictions absorbed by the L2 victim store
          instead of being dropped (victima engine; zero elsewhere). *)
  recalls : int;
      (** NI misses served by recalling a spilled line from the victim
          store, skipping the table walk (victima engine). *)
  restseg_hits : int;
      (** NI accesses resolved by the hash-constrained RestSeg zone
          without touching the set-associative cache or the table
          (utopia engine; zero elsewhere). *)
  isolation : Utlb_tenant.Isolation.t option;
      (** Per-tenant breakdown and fairness accounting when the run
          had a tenancy arbiter; [None] otherwise, so untenanted
          reports (and everything derived from them) are unchanged.
          {!add} merges it exactly across shards. *)
}

val empty : label:string -> t

val add : t -> t -> t
(** Field-wise sum of the counters — incremental accumulation for
    sharded runs. The label is the left report's unless it is empty. *)

val merge : ?label:string -> t list -> t
(** Fold {!add} over the list: aggregate shards of one campaign cell
    without hand-summing fields. Derived rates of the merge are the
    lookup-weighted combination of the inputs. Without [label], the
    shared label is kept when all inputs agree; otherwise (and for the
    empty list) the merge is labelled ["merged"]. *)

val check_miss_rate : t -> float

val ni_miss_rate : t -> float

val unpin_rate : t -> float

val pin_pages_per_call : t -> float
(** Average pages pinned per ioctl; 1.0 when no pinning happened. *)

val miss_breakdown : t -> float * float * float
(** Per-lookup (compulsory, capacity, conflict) rates; they sum to
    [ni_miss_rate] (up to page/lookup scaling). *)

val rates : t -> Cost_model.rates
(** Package the derived rates for the cost equations. *)

val utlb_cost_us : ?prefetch:int -> Cost_model.t -> t -> float
(** Average UTLB lookup cost under the Section 6.2 equation. *)

val intr_cost_us : Cost_model.t -> t -> float

val victima_cost_us : ?prefetch:int -> Cost_model.t -> t -> float
(** UTLB cost equation minus the walk cost saved by victim-store
    recalls (each recall is priced as a direct read instead of a
    [prefetch]-entry DMA walk), floored at the user-check cost. *)

val utopia_cost_us : ?prefetch:int -> Cost_model.t -> t -> float
(** UTLB cost equation minus the probe cost saved by RestSeg hits
    (hashed direct placement instead of a set probe), floored at the
    user-check cost. *)

val amortized_pin_us : Cost_model.t -> t -> float
(** Table 7's "pin" rows: total pinning cost averaged over lookups. *)

val amortized_unpin_us : Cost_model.t -> t -> float

val pp : Format.formatter -> t -> unit
