(** Trace-driven simulation driver (Section 6).

    Replays a node trace through a translation mechanism and returns the
    accumulated {!Report.t}. This is the engine behind every row of
    Tables 4, 5, 7, 8 and both figures.

    Dispatch is over {!Engine_intf.packed} first-class modules: the
    closed {!mechanism} variant survives as sugar for the three built-in
    designs, but any module satisfying {!Engine_intf.S} runs through
    {!run_packed} — and, once registered with {!Registry}, through every
    campaign grid, [utlbsim sweep] invocation, and bench table without
    touching this driver. *)

type mechanism =
  | Utlb of Hier_engine.config
      (** Hierarchical-UTLB with a Shared UTLB-Cache. *)
  | Intr of Intr_engine.config  (** Interrupt-based baseline. *)
  | Per_process of Pp_engine.config
      (** Per-process UTLB tables carved from a fixed SRAM budget. *)

type packed = Engine_intf.packed =
  | Packed : (module Engine_intf.S with type config = 'c) * 'c -> packed
      (** An engine module bundled with a configuration to create it. *)

val pack : mechanism -> packed
(** The built-in mechanisms as packed modules. *)

val mechanism_name : packed -> string
(** The packed engine's stable name (["utlb"], ["intr"], ...). *)

val default_seed : int64

val load_trace_lenient : in_channel -> Utlb_trace.Trace.t * int
(** {!Utlb_trace.Trace.load_lenient} with each skipped record logged
    as a warning on the ["utlb.driver"] [Logs] source. Returns the
    trace and the skip count (pass it to [run_packed]'s
    [?records_skipped] so the report remembers). *)

val run_packed :
  ?seed:int64 ->
  ?sanitizer:Utlb_sim.Sanitizer.t ->
  ?obs:Utlb_obs.Scope.t ->
  ?faults:Utlb_fault.Injector.t ->
  ?tenancy:Utlb_tenant.Arbiter.t ->
  ?records_skipped:int ->
  ?label:string ->
  packed ->
  Utlb_trace.Trace.t ->
  Report.t
(** [run_packed packed trace] replays every record in timestamp order
    through a fresh engine. The default label is the mechanism name.
    With [sanitizer], the engine shadows its execution with invariant
    checks and a full sweep ([run_invariants]) runs after the last
    record. With [obs], the driver ticks the scope once per record
    (emitting one [Lookup] event each) and the engine emits its
    internal events through it; the final lookup is closed with
    {!Utlb_obs.Scope.finish} before the report is taken. With
    [faults], the engine rolls the injector on the fault points it
    implements (an injector over an empty plan changes nothing). With
    [tenancy], the engine enforces per-tenant quotas and cache windows
    and the report carries the per-tenant [isolation] breakdown.
    [records_skipped] (default 0, typically from
    {!load_trace_lenient}) is added to the report's
    [records_skipped]. *)

val run :
  ?seed:int64 ->
  ?sanitizer:Utlb_sim.Sanitizer.t ->
  ?obs:Utlb_obs.Scope.t ->
  ?faults:Utlb_fault.Injector.t ->
  ?tenancy:Utlb_tenant.Arbiter.t ->
  ?records_skipped:int ->
  ?label:string ->
  mechanism ->
  Utlb_trace.Trace.t ->
  Report.t
(** [run mechanism trace] is [run_packed] over [pack mechanism]. *)

val run_workload :
  ?seed:int64 ->
  ?sanitizer:Utlb_sim.Sanitizer.t ->
  ?obs:Utlb_obs.Scope.t ->
  ?faults:Utlb_fault.Injector.t ->
  ?tenancy:Utlb_tenant.Arbiter.t ->
  mechanism ->
  Utlb_trace.Workloads.spec ->
  Report.t
(** Generate the workload's trace (from the same seed) and replay it;
    the report is labelled with the workload name. *)

val compare_mechanisms :
  ?seed:int64 ->
  cache_entries:int ->
  memory_limit_pages:int option ->
  Utlb_trace.Workloads.spec ->
  Report.t * Report.t
(** The Table 4/5 pairing: (UTLB, Intr) on identical direct-mapped
    offset caches, no prefetch, no pre-pin, LRU. *)

(** Registry of translation mechanisms by name.

    Each entry maps string parameters (the axes of a campaign grid, or
    [key=value] pairs from a grid file) to a packed engine. The three
    built-in designs register themselves when this module loads; new
    designs call {!Registry.register} once and become available to
    [Utlb_exp] campaigns, [utlbsim sweep]/[list], and the bench tables
    with no driver changes. Parameter constructors ignore keys they do
    not understand (so one grid can carry axes for several mechanisms)
    and raise [Invalid_argument] on malformed values. *)
module Registry : sig
  type entry = {
    name : string;  (** Lower-case registry key. *)
    doc : string;  (** One-line description incl. recognised params. *)
    of_params : (string * string) list -> packed;
  }

  val register :
    name:string ->
    doc:string ->
    ((string * string) list -> packed) ->
    unit
  (** @raise Invalid_argument if [name] is already taken. *)

  val find : string -> entry option
  (** Case-insensitive. *)

  val mechanisms : unit -> entry list
  (** All registered mechanisms, sorted by name. *)
end
