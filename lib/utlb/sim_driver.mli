(** Trace-driven simulation driver (Section 6).

    Replays a node trace through a translation mechanism and returns the
    accumulated {!Report.t}. This is the engine behind every row of
    Tables 4, 5, 7, 8 and both figures. *)

type mechanism =
  | Utlb of Hier_engine.config
      (** Hierarchical-UTLB with a Shared UTLB-Cache. *)
  | Intr of Intr_engine.config  (** Interrupt-based baseline. *)
  | Per_process of Pp_engine.config
      (** Per-process UTLB tables carved from a fixed SRAM budget. *)

val run :
  ?seed:int64 ->
  ?sanitizer:Utlb_sim.Sanitizer.t ->
  ?label:string ->
  mechanism ->
  Utlb_trace.Trace.t ->
  Report.t
(** [run mechanism trace] replays every record in timestamp order.
    The default label names the mechanism. With [sanitizer], the engine
    shadows its execution with invariant checks and a full sweep
    ([run_invariants]) runs after the last record. *)

val run_workload :
  ?seed:int64 ->
  ?sanitizer:Utlb_sim.Sanitizer.t ->
  mechanism ->
  Utlb_trace.Workloads.spec ->
  Report.t
(** Generate the workload's trace (from the same seed) and replay it;
    the report is labelled with the workload name. *)

val compare_mechanisms :
  ?seed:int64 ->
  cache_entries:int ->
  memory_limit_pages:int option ->
  Utlb_trace.Workloads.spec ->
  Report.t * Report.t
(** The Table 4/5 pairing: (UTLB, Intr) on identical direct-mapped
    offset caches, no prefetch, no pre-pin, LRU. *)
