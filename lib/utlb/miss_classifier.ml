module Pid = Utlb_mem.Pid

type kind = Compulsory | Capacity | Conflict

let kind_name = function
  | Compulsory -> "compulsory"
  | Capacity -> "capacity"
  | Conflict -> "conflict"

(* Shadow fully-associative LRU cache on flat storage: nodes live in a
   fixed pool of parallel int arrays (capacity + 1 slots, the last one
   the recency-list sentinel) linked by index, with an open-addressed
   map from packed (pid, vpn) keys to pool slots. Touch/insert/evict
   stay O(1) and the whole structure allocates nothing after create. *)
type t = {
  capacity : int;
  sentinel : int;
  kpid : int array;
  kvpn : int array;
  prev : int array;
  next : int array;
  free : int array;
  mutable free_len : int;
  (* packed key -> (v0 = pool slot, v1 unused) *)
  table : Flat_map.t;
  mutable size : int;
  seen : Flat_map.t;
  mutable compulsory : int;
  mutable capacity_misses : int;
  mutable conflict : int;
}

(* Packed map key; vpns are bounded by the 20-bit paper address space,
   so a 32-bit field leaves lots of slack. *)
let pack ~pid ~vpn = (pid lsl 32) lor vpn

let create ~capacity =
  if capacity <= 0 then
    invalid_arg "Miss_classifier.create: capacity must be positive";
  let sentinel = capacity in
  {
    capacity;
    sentinel;
    kpid = Array.make (capacity + 1) (-1);
    kvpn = Array.make (capacity + 1) (-1);
    prev = Array.make (capacity + 1) sentinel;
    next = Array.make (capacity + 1) sentinel;
    free = Array.init capacity (fun i -> capacity - 1 - i);
    free_len = capacity;
    table = Flat_map.create ();
    size = 0;
    seen = Flat_map.create ();
    compulsory = 0;
    capacity_misses = 0;
    conflict = 0;
  }

let unlink t n =
  t.next.(t.prev.(n)) <- t.next.(n);
  t.prev.(t.next.(n)) <- t.prev.(n)

let push_front t n =
  t.next.(n) <- t.next.(t.sentinel);
  t.prev.(n) <- t.sentinel;
  t.prev.(t.next.(t.sentinel)) <- n;
  t.next.(t.sentinel) <- n

let shadow_touch t key =
  let slot = Flat_map.find t.table key in
  if slot < 0 then false
  else begin
    let n = Flat_map.value0 t.table slot in
    unlink t n;
    push_front t n;
    true
  end

let shadow_insert t key ~pid ~vpn =
  if not (Flat_map.mem t.table key) then begin
    if t.size >= t.capacity then begin
      (* Evict the LRU tail. *)
      let tail = t.prev.(t.sentinel) in
      unlink t tail;
      Flat_map.remove t.table (pack ~pid:t.kpid.(tail) ~vpn:t.kvpn.(tail));
      t.free.(t.free_len) <- tail;
      t.free_len <- t.free_len + 1;
      t.size <- t.size - 1
    end;
    t.free_len <- t.free_len - 1;
    let n = t.free.(t.free_len) in
    t.kpid.(n) <- pid;
    t.kvpn.(n) <- vpn;
    ignore (Flat_map.add t.table key ~v0:n ~v1:0);
    push_front t n;
    t.size <- t.size + 1
  end

let note_hit t ~pid ~vpn =
  let pid = Pid.to_int pid in
  let key = pack ~pid ~vpn in
  if not (shadow_touch t key) then shadow_insert t key ~pid ~vpn;
  ignore (Flat_map.add t.seen key ~v0:0 ~v1:0)

let classify t ~pid ~vpn =
  let pid = Pid.to_int pid in
  let key = pack ~pid ~vpn in
  let kind =
    if not (Flat_map.mem t.seen key) then Compulsory
    else if Flat_map.mem t.table key then Conflict
    else Capacity
  in
  ignore (Flat_map.add t.seen key ~v0:0 ~v1:0);
  if not (shadow_touch t key) then shadow_insert t key ~pid ~vpn;
  (match kind with
  | Compulsory -> t.compulsory <- t.compulsory + 1
  | Capacity -> t.capacity_misses <- t.capacity_misses + 1
  | Conflict -> t.conflict <- t.conflict + 1);
  kind

let note_invalidate t ~pid ~vpn =
  let pid = Pid.to_int pid in
  let key = pack ~pid ~vpn in
  let slot = Flat_map.find t.table key in
  if slot >= 0 then begin
    let n = Flat_map.value0 t.table slot in
    unlink t n;
    Flat_map.remove t.table key;
    t.free.(t.free_len) <- n;
    t.free_len <- t.free_len + 1;
    t.size <- t.size - 1
  end

let self_check t =
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  if t.size > t.capacity then
    note "shadow cache holds %d entries, capacity is %d" t.size t.capacity;
  if Flat_map.length t.table <> t.size then
    note "shadow table has %d entries but size counter says %d"
      (Flat_map.length t.table) t.size;
  (* Walk the recency list and cross-check against the table: every
     node must be reachable, keyed, and doubly linked. *)
  let forward = ref 0 in
  let n = ref t.next.(t.sentinel) in
  while !n <> t.sentinel && !forward <= t.size do
    incr forward;
    let node = !n in
    if t.prev.(t.next.(node)) <> node || t.next.(t.prev.(node)) <> node then
      note "shadow list node (%d,%d) has broken links" t.kpid.(node)
        t.kvpn.(node);
    let key = pack ~pid:t.kpid.(node) ~vpn:t.kvpn.(node) in
    (match Flat_map.find t.table key with
    | slot when slot < 0 ->
      note "shadow list node (%d,%d) missing from table" t.kpid.(node)
        t.kvpn.(node)
    | slot ->
      if Flat_map.value0 t.table slot <> node then
        note "shadow list node (%d,%d) shadowed by another node" t.kpid.(node)
          t.kvpn.(node));
    n := t.next.(node)
  done;
  if !forward <> t.size then
    note "shadow list length %d disagrees with size counter %d" !forward
      t.size;
  List.rev !problems

(* Deliberately desynchronise the shadow structures — only for testing
   that the sanitizer detects divergence. Removes the most recent
   node's table entry without unlinking it. *)
let corrupt_for_testing t =
  let head = t.next.(t.sentinel) in
  if head <> t.sentinel then
    Flat_map.remove t.table (pack ~pid:t.kpid.(head) ~vpn:t.kvpn.(head))

let compulsory t = t.compulsory

let capacity_misses t = t.capacity_misses

let conflict t = t.conflict
