module Pid = Utlb_mem.Pid

type kind = Compulsory | Capacity | Conflict

let kind_name = function
  | Compulsory -> "compulsory"
  | Capacity -> "capacity"
  | Conflict -> "conflict"

(* Shadow fully-associative LRU cache: intrusive doubly-linked list with
   a sentinel, O(1) touch/insert/evict. *)
type node = {
  key : int * int;
  mutable prev : node;
  mutable next : node;
}

type t = {
  capacity : int;
  table : (int * int, node) Hashtbl.t;
  mutable sentinel : node;
  mutable size : int;
  seen : (int * int, unit) Hashtbl.t;
  mutable compulsory : int;
  mutable capacity_misses : int;
  mutable conflict : int;
}

let make_sentinel () =
  let rec s = { key = (-1, -1); prev = s; next = s } in
  s

let create ~capacity =
  if capacity <= 0 then
    invalid_arg "Miss_classifier.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create (2 * capacity);
    sentinel = make_sentinel ();
    size = 0;
    seen = Hashtbl.create 4096;
    compulsory = 0;
    capacity_misses = 0;
    conflict = 0;
  }

let unlink node =
  node.prev.next <- node.next;
  node.next.prev <- node.prev

let push_front t node =
  node.next <- t.sentinel.next;
  node.prev <- t.sentinel;
  t.sentinel.next.prev <- node;
  t.sentinel.next <- node

let key ~pid ~vpn = (Pid.to_int pid, vpn)

let shadow_touch t k =
  match Hashtbl.find_opt t.table k with
  | Some node ->
    unlink node;
    push_front t node;
    true
  | None -> false

let shadow_insert t k =
  if not (Hashtbl.mem t.table k) then begin
    if t.size >= t.capacity then begin
      (* Evict the LRU tail. *)
      let tail = t.sentinel.prev in
      unlink tail;
      Hashtbl.remove t.table tail.key;
      t.size <- t.size - 1
    end;
    let rec node = { key = k; prev = node; next = node } in
    Hashtbl.replace t.table k node;
    push_front t node;
    t.size <- t.size + 1
  end

let note_hit t ~pid ~vpn =
  let k = key ~pid ~vpn in
  if not (shadow_touch t k) then shadow_insert t k;
  Hashtbl.replace t.seen k ()

let classify t ~pid ~vpn =
  let k = key ~pid ~vpn in
  let kind =
    if not (Hashtbl.mem t.seen k) then Compulsory
    else if Hashtbl.mem t.table k then Conflict
    else Capacity
  in
  Hashtbl.replace t.seen k ();
  if not (shadow_touch t k) then shadow_insert t k;
  (match kind with
  | Compulsory -> t.compulsory <- t.compulsory + 1
  | Capacity -> t.capacity_misses <- t.capacity_misses + 1
  | Conflict -> t.conflict <- t.conflict + 1);
  kind

let note_invalidate t ~pid ~vpn =
  let k = key ~pid ~vpn in
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some node ->
    unlink node;
    Hashtbl.remove t.table k;
    t.size <- t.size - 1

let self_check t =
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  if t.size > t.capacity then
    note "shadow cache holds %d entries, capacity is %d" t.size t.capacity;
  if Hashtbl.length t.table <> t.size then
    note "shadow table has %d entries but size counter says %d"
      (Hashtbl.length t.table) t.size;
  (* Walk the recency list both ways and cross-check against the
     table: every node must be reachable, keyed, and doubly linked. *)
  let forward = ref 0 in
  let node = ref t.sentinel.next in
  while !node != t.sentinel && !forward <= t.size do
    incr forward;
    let n = !node in
    if n.next.prev != n || n.prev.next != n then
      note "shadow list node (%d,%d) has broken links" (fst n.key) (snd n.key);
    (match Hashtbl.find_opt t.table n.key with
    | Some n' when n' == n -> ()
    | Some _ -> note "shadow list node (%d,%d) shadowed by another node"
                  (fst n.key) (snd n.key)
    | None -> note "shadow list node (%d,%d) missing from table"
                (fst n.key) (snd n.key));
    node := n.next
  done;
  if !forward <> t.size then
    note "shadow list length %d disagrees with size counter %d" !forward
      t.size;
  List.rev !problems

(* Deliberately desynchronise the shadow structures — only for testing
   that the sanitizer detects divergence. Removes the most recent
   node's table entry without unlinking it. *)
let corrupt_for_testing t =
  let head = t.sentinel.next in
  if head != t.sentinel then Hashtbl.remove t.table head.key

let compulsory t = t.compulsory

let capacity_misses t = t.capacity_misses

let conflict t = t.conflict
