(* Utopia-style engine: the hierarchical UTLB with a hash-constrained
   RestSeg zone in front of the Shared UTLB-Cache. Pinned pages claim a
   slot in the restrictive segment at pin time (hashed direct
   placement, bounded ways per set); NI accesses that hit the RestSeg
   resolve with one hashed probe — no set walk, no table fetch. Pages
   the RestSeg cannot place fall back to the flexible path, which is
   exactly the hierarchical engine. *)

module Pid = Utlb_mem.Pid
module Host_memory = Utlb_mem.Host_memory
module Rng = Utlb_sim.Rng
module Sanitizer = Utlb_sim.Sanitizer
module Probe = Utlb_obs.Probe
module Ev = Utlb_obs.Event
module Injector = Utlb_fault.Injector
module Arbiter = Utlb_tenant.Arbiter

let log_src = Logs.Src.create "utlb.utopia" ~doc:"Utopia engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  cache : Ni_cache.config;
  prefetch : int;
  prepin : int;
  policy : Replacement.policy;
  memory_limit_pages : int option;
  rest_sets : int;
  rest_ways : int;
}

let default_config =
  {
    cache = { Ni_cache.entries = 8192; associativity = Ni_cache.Direct };
    prefetch = 1;
    prepin = 1;
    policy = Replacement.Lru;
    memory_limit_pages = None;
    rest_sets = 2048;
    rest_ways = 4;
  }

module Pid_table = Hashtbl.Make (struct
  type t = Pid.t

  let equal = Pid.equal

  let hash = Pid.hash
end)

type process = {
  pinned : Bitvec.t;
  table : Translation_table.t;
  tracker : Replacement.t;
}

type san = {
  san_active : bool;
  san_fill : t -> Pid.t -> int -> int -> unit;
  san_pages : t -> Pid.t -> process -> int -> int -> unit;
}

and t = {
  config : config;
  host : Host_memory.t;
  cache : Ni_cache.t;
  classifier : Miss_classifier.t;
  rng : Rng.t;
  procs : process Pid_table.t;
  sanitizer : Sanitizer.t option;
  san : san;
  probe : Probe.t;
  faults : Injector.t option;
  tenancy : Arbiter.t;
  ten_active : bool;
  (* The RestSeg: rest_sets x rest_ways flat key/frame arrays. A key of
     -1 marks a free way. Placement is hash-constrained: a page may
     only live in the ways of its hashed set, so a probe touches one
     set and nothing else. *)
  rest_keys : int array;
  rest_frames : int array;
  mutable run_start : int array;
  mutable run_len : int array;
  mutable totals : Report.t;
  mutable table_swap_interrupts : int;
  mutable fault_interrupts : int;
}

let observe t ~pid ~vpn ~count kind =
  t.probe.Probe.emit kind ~pid:(Pid.to_int pid) ~vpn ~count

let config t = t.config

let host t = t.host

let cache t = t.cache

let classifier t = t.classifier

(* RestSeg keys pack (pid, vpn); vpns fit Translation_table's 20
   bits. *)
let rkey pid vpn = (Pid.to_int pid lsl 20) lor vpn

(* Fibonacci-hash the key into a set index (rest_sets is a power of
   two, so masking the mixed low bits is uniform enough). *)
let rest_set t key =
  let h = key * 0x9E3779B1 in
  (h lxor (h lsr 11)) land (t.config.rest_sets - 1)

(* Claim a RestSeg slot for a freshly pinned page. Restrictive
   placement never displaces: a full set simply leaves the page on the
   flexible path. *)
let rest_place t pid vpn frame =
  if t.config.rest_ways > 0 then begin
    let key = rkey pid vpn in
    let base = rest_set t key * t.config.rest_ways in
    let placed = ref false in
    let free = ref (-1) in
    for w = 0 to t.config.rest_ways - 1 do
      let k = t.rest_keys.(base + w) in
      if k = key then begin
        t.rest_frames.(base + w) <- frame;
        placed := true
      end
      else if k < 0 && !free < 0 then free := base + w
    done;
    if (not !placed) && !free >= 0 then begin
      t.rest_keys.(!free) <- key;
      t.rest_frames.(!free) <- frame
    end
  end

let rest_drop t pid vpn =
  if t.config.rest_ways > 0 then begin
    let key = rkey pid vpn in
    let base = rest_set t key * t.config.rest_ways in
    for w = 0 to t.config.rest_ways - 1 do
      if t.rest_keys.(base + w) = key then t.rest_keys.(base + w) <- -1
    done
  end

let rest_probe t pid vpn =
  if t.config.rest_ways = 0 then None
  else begin
    let key = rkey pid vpn in
    let base = rest_set t key * t.config.rest_ways in
    let frame = ref (-1) in
    for w = 0 to t.config.rest_ways - 1 do
      if t.rest_keys.(base + w) = key then frame := t.rest_frames.(base + w)
    done;
    if !frame < 0 then None else Some !frame
  end

let add_process t pid =
  if not (Pid_table.mem t.procs pid) then begin
    Host_memory.add_process t.host pid;
    let table =
      Translation_table.create
        ~garbage_frame:(Host_memory.garbage_frame t.host)
        ~pid ()
    in
    Pid_table.replace t.procs pid
      {
        pinned = Bitvec.create ();
        table;
        tracker = Replacement.create t.config.policy ~rng:(Rng.split t.rng);
      };
    if t.ten_active then
      match Arbiter.window t.tenancy ~pid:(Pid.to_int pid) with
      | None -> ()
      | Some (base, mask, offset) ->
        Ni_cache.set_window t.cache ~pid ~base ~mask ~offset
  end

let proc t pid =
  match Pid_table.find_opt t.procs pid with
  | Some p -> p
  | None -> invalid_arg "Utopia_engine: unknown process"

let remove_process t pid =
  match Pid_table.find_opt t.procs pid with
  | None -> 0
  | Some p ->
    let released = ref 0 in
    Translation_table.iter_valid p.table (fun vpn _frame ->
        Host_memory.unpin t.host pid ~vpn ~count:1;
        rest_drop t pid vpn;
        incr released);
    (match t.sanitizer with
    | None -> ()
    | Some san ->
      let bits = Bitvec.population p.pinned in
      if bits <> !released then
        Sanitizer.recordf san ~code:"UV01"
          "%a exit: pin bit vector tracks %d pages but the translation \
           table released %d"
          Pid.pp pid bits !released;
      let leaked = Host_memory.pinned_pages t.host pid in
      if leaked <> 0 then
        Sanitizer.recordf san ~code:"UV01"
          "%a exit: %d pages still pinned after releasing the \
           translation table (pin leak)"
          Pid.pp pid leaked;
      let recount = Host_memory.recount_pinned t.host pid in
      if recount <> leaked then
        Sanitizer.recordf san ~code:"UV08"
          "%a exit: host pin counter says %d pinned pages but a table \
           walk finds %d"
          Pid.pp pid leaked recount);
    ignore (Ni_cache.invalidate_process t.cache ~pid);
    if t.ten_active then
      Arbiter.note_unpin t.tenancy ~pid:(Pid.to_int pid) ~pages:!released;
    Pid_table.remove t.procs pid;
    Log.debug (fun m ->
        m "%a exit: released %d pinned pages" Pid.pp pid !released);
    !released

let table t pid = (proc t pid).table

let pinned_pages t pid = Bitvec.population (proc t pid).pinned

type outcome = {
  check_miss : bool;
  pages_pinned : int;
  pin_calls : int;
  pages_unpinned : int;
  unpin_calls : int;
  ni_accesses : int;
  ni_misses : int;
  entries_fetched : int;
}

let unpin_one t pid p victim =
  Log.debug (fun m -> m "%a evict+unpin vpn=%#x" Pid.pp pid victim);
  observe t ~pid ~vpn:victim ~count:1 Ev.Unpin;
  Host_memory.unpin t.host pid ~vpn:victim ~count:1;
  if t.ten_active then
    Arbiter.note_unpin t.tenancy ~pid:(Pid.to_int pid) ~pages:1;
  Bitvec.clear p.pinned victim;
  Translation_table.invalidate p.table ~vpn:victim;
  rest_drop t pid victim;
  if Ni_cache.invalidate t.cache ~pid ~vpn:victim then
    Miss_classifier.note_invalidate t.classifier ~pid ~vpn:victim

let enforce_limit t pid p ~incoming ~request_vpn ~request_npages =
  match t.config.memory_limit_pages with
  | None -> 0
  | Some limit ->
    let protect page =
      page >= request_vpn && page < request_vpn + request_npages
    in
    let unpinned = ref 0 in
    let continue = ref true in
    while !continue && Bitvec.population p.pinned + incoming > limit do
      match Replacement.select_victim p.tracker ~protect () with
      | None -> continue := false
      | Some victim ->
        unpin_one t pid p victim;
        incr unpinned
    done;
    !unpinned

(* Pin the stashed clear runs; freshly pinned pages additionally claim
   their RestSeg slot (this is the restrictive-placement moment: the
   kernel knows the frame right here). *)
let pin_runs t pid p nruns ~budget =
  let calls = ref 0 and total = ref 0 in
  for i = 0 to nruns - 1 do
    let start = t.run_start.(i) in
    let count = min t.run_len.(i) (budget - !total) in
    if count > 0 then begin
      match Host_memory.pin t.host pid ~vpn:start ~count with
      | Error `Out_of_memory -> ()
      | Ok frames ->
        observe t ~pid ~vpn:start ~count Ev.Pin;
        for j = 0 to count - 1 do
          let page = start + j in
          Bitvec.set p.pinned page;
          Translation_table.install p.table ~vpn:page ~frame:frames.(j);
          Replacement.insert p.tracker page;
          rest_place t pid page frames.(j)
        done;
        if t.ten_active then
          Arbiter.note_pin t.tenancy ~pid:(Pid.to_int pid) ~pages:count;
        incr calls;
        total := !total + count
    end
  done;
  (!calls, !total)

let enforce_quota t pid p ~incoming ~request_vpn ~request_npages =
  if not t.ten_active then (0, incoming)
  else begin
    let ipid = Pid.to_int pid in
    let protect page =
      page >= request_vpn && page < request_vpn + request_npages
    in
    let unpinned = ref 0 in
    let continue = ref true in
    while !continue && incoming > Arbiter.quota_remaining t.tenancy ~pid:ipid
    do
      match Replacement.select_victim p.tracker ~protect () with
      | None -> continue := false
      | Some victim ->
        unpin_one t pid p victim;
        incr unpinned
    done;
    let budget = min incoming (Arbiter.quota_remaining t.tenancy ~pid:ipid) in
    if budget < incoming then
      Arbiter.note_denied t.tenancy ~pid:ipid ~pages:(incoming - budget);
    (!unpinned, budget)
  end

let fill_cache t pid vpn frame =
  t.san.san_fill t pid vpn frame;
  match Ni_cache.insert t.cache ~pid ~vpn ~frame with
  | None -> ()
  | Some (evicted_pid, evicted_vpn, _frame) ->
    if t.ten_active then
      Arbiter.note_eviction t.tenancy
        ~victim_pid:(Pid.to_int evicted_pid)
        ~by_pid:(Pid.to_int pid);
    observe t ~pid:evicted_pid ~vpn:evicted_vpn ~count:Probe.no_count
      Ev.Ni_evict

let note_recovery t pid ~vpn () =
  Option.iter Injector.note_recovery t.faults;
  observe t ~pid ~vpn ~count:Probe.no_count Ev.Fault_recover;
  t.totals <-
    { t.totals with Report.fault_recoveries = t.totals.Report.fault_recoveries + 1 }

let serve_entry_via_interrupt t pid p vpn =
  t.fault_interrupts <- t.fault_interrupts + 1;
  observe t ~pid ~vpn ~count:Probe.no_count Ev.Interrupt;
  match Translation_table.lookup p.table ~vpn with
  | Translation_table.Frame frame -> fill_cache t pid vpn frame
  | Translation_table.Garbage -> ()
  | Translation_table.Table_swapped _ ->
    ignore (Translation_table.swap_in p.table ~dir_index:(vpn lsr 10));
    (match Translation_table.lookup p.table ~vpn with
    | Translation_table.Frame frame -> fill_cache t pid vpn frame
    | Translation_table.Garbage | Translation_table.Table_swapped _ -> ())

(* NI-side translation of one page: RestSeg first (hashed direct
   placement — a hit never touches the set-associative cache or the
   miss classifier, which model only the flexible path), then the
   hierarchical flexible path verbatim. *)
let ni_translate t pid p vpn =
  let injected_invalidate =
    match t.faults with
    | None -> false
    | Some inj ->
      Injector.cache_invalidate inj
      && Ni_cache.invalidate t.cache ~pid ~vpn
      &&
      (Miss_classifier.note_invalidate t.classifier ~pid ~vpn;
       observe t ~pid ~vpn ~count:Probe.no_count Ev.Fault_inject;
       true)
  in
  match rest_probe t pid vpn with
  | Some _frame ->
    t.totals <-
      { t.totals with Report.restseg_hits = t.totals.Report.restseg_hits + 1 };
    if t.ten_active then
      Arbiter.note_ni_access t.tenancy ~pid:(Pid.to_int pid) ~hit:true;
    observe t ~pid ~vpn ~count:Probe.no_count Ev.Ni_hit;
    if injected_invalidate then note_recovery t pid ~vpn ();
    (0, 0)
  | None -> (
    match Ni_cache.lookup t.cache ~pid ~vpn with
    | Some _ ->
      if t.ten_active then
        Arbiter.note_ni_access t.tenancy ~pid:(Pid.to_int pid) ~hit:true;
      Miss_classifier.note_hit t.classifier ~pid ~vpn;
      observe t ~pid ~vpn ~count:Probe.no_count Ev.Ni_hit;
      (0, 0)
    | None ->
      if t.ten_active then
        Arbiter.note_ni_access t.tenancy ~pid:(Pid.to_int pid) ~hit:false;
      ignore (Miss_classifier.classify t.classifier ~pid ~vpn);
      observe t ~pid ~vpn ~count:Probe.no_count Ev.Ni_miss;
      let injected_swap =
        match t.faults with
        | None -> false
        | Some inj ->
          Injector.table_swap inj
          && Translation_table.swap_out p.table ~dir_index:(vpn lsr 10)
               ~disk_block:1
          &&
          (observe t ~pid ~vpn ~count:Probe.no_count Ev.Fault_inject;
           true)
      in
      let dma =
        match t.faults with
        | None -> Some 0
        | Some inj -> Injector.dma_attempts inj
      in
      let fetched = ref 0 in
      (match dma with
      | None ->
        let retries =
          match t.faults with
          | Some inj -> max 0 (Injector.plan inj).Utlb_fault.Plan.dma_retries
          | None -> 0
        in
        observe t ~pid ~vpn ~count:Probe.no_count Ev.Fault_inject;
        observe t ~pid ~vpn ~count:(1 + retries) Ev.Fault_retry;
        serve_entry_via_interrupt t pid p vpn;
        note_recovery t pid ~vpn ()
      | Some failed ->
        if failed > 0 then begin
          observe t ~pid ~vpn ~count:Probe.no_count Ev.Fault_inject;
          observe t ~pid ~vpn ~count:failed Ev.Fault_retry
        end;
        for q = vpn to vpn + t.config.prefetch - 1 do
          if q <= Translation_table.max_vpn then begin
            match Translation_table.lookup p.table ~vpn:q with
            | Translation_table.Frame frame ->
              incr fetched;
              fill_cache t pid q frame
            | Translation_table.Garbage -> ()
            | Translation_table.Table_swapped _ ->
              t.table_swap_interrupts <- t.table_swap_interrupts + 1;
              observe t ~pid ~vpn:q ~count:Probe.no_count Ev.Interrupt;
              ignore
                (Translation_table.swap_in p.table ~dir_index:(q lsr 10));
              (match Translation_table.lookup p.table ~vpn:q with
              | Translation_table.Frame frame ->
                incr fetched;
                fill_cache t pid q frame
              | Translation_table.Garbage | Translation_table.Table_swapped _
                -> ())
          end
        done;
        if failed > 0 then note_recovery t pid ~vpn ());
      if injected_swap then note_recovery t pid ~vpn ();
      if injected_invalidate then note_recovery t pid ~vpn ();
      if !fetched > 0 then observe t ~pid ~vpn ~count:!fetched Ev.Fetch;
      (1, !fetched))

let check_cached_page t san pid p vpn =
  match Ni_cache.peek t.cache ~pid ~vpn with
  | None -> ()
  | Some frame ->
    (match Translation_table.lookup p.table ~vpn with
    | Translation_table.Frame f when f = frame -> ()
    | Translation_table.Frame f ->
      Sanitizer.recordf san ~code:"UV04"
        "%a vpn=%#x: cached frame %d disagrees with translation-table \
         frame %d"
        Pid.pp pid vpn frame f
    | Translation_table.Garbage ->
      Sanitizer.recordf san ~code:"UV04"
        "%a vpn=%#x: stale cache entry (frame %d) for an invalidated \
         translation"
        Pid.pp pid vpn frame
    | Translation_table.Table_swapped _ -> ());
    (match Host_memory.translate t.host pid ~vpn with
    | Some f when f = frame ->
      if Host_memory.pin_count t.host pid ~vpn = 0 then
        Sanitizer.recordf san ~code:"UV05"
          "%a vpn=%#x: cached translation for an unpinned page" Pid.pp pid
          vpn
    | Some f ->
      Sanitizer.recordf san ~code:"UV04"
        "%a vpn=%#x: cached frame %d disagrees with host frame %d" Pid.pp
        pid vpn frame f
    | None ->
      Sanitizer.recordf san ~code:"UV04"
        "%a vpn=%#x: cached translation for a non-resident page" Pid.pp pid
        vpn)

let run_invariants t =
  match t.sanitizer with
  | None -> ()
  | Some san ->
    let garbage = Host_memory.garbage_frame t.host in
    Ni_cache.iter_valid t.cache (fun ~pid ~vpn ~frame ->
        match Pid_table.find_opt t.procs pid with
        | None ->
          Sanitizer.recordf san ~code:"UV04"
            "%a vpn=%#x: cache line (frame %d) for a departed process"
            Pid.pp pid vpn frame
        | Some p ->
          if frame = garbage then
            Sanitizer.recordf san ~code:"UV02"
              "%a vpn=%#x: Shared UTLB-Cache holds the garbage frame"
              Pid.pp pid vpn;
          check_cached_page t san pid p vpn);
    (* Every RestSeg slot must describe a pinned, resident page whose
       host frame matches: RestSeg hits bypass table and cache, so a
       stale slot would silently mistranslate. *)
    Array.iteri
      (fun i key ->
        if key >= 0 then begin
          let ipid = key lsr 20 and vpn = key land 0xFFFFF in
          let pid = Pid.of_int ipid in
          let frame = t.rest_frames.(i) in
          match Host_memory.translate t.host pid ~vpn with
          | Some f when f = frame ->
            if Host_memory.pin_count t.host pid ~vpn = 0 then
              Sanitizer.recordf san ~code:"UV05"
                "%a vpn=%#x: RestSeg holds a translation for an unpinned \
                 page"
                Pid.pp pid vpn
          | Some f ->
            Sanitizer.recordf san ~code:"UV04"
              "%a vpn=%#x: RestSeg frame %d disagrees with host frame %d"
              Pid.pp pid vpn frame f
          | None ->
            Sanitizer.recordf san ~code:"UV04"
              "%a vpn=%#x: RestSeg translation for a non-resident page"
              Pid.pp pid vpn
        end)
      t.rest_keys;
    Pid_table.iter
      (fun pid p ->
        let bits = Bitvec.population p.pinned in
        let host_pinned = Host_memory.pinned_pages t.host pid in
        if bits <> host_pinned then
          Sanitizer.recordf san ~code:"UV08"
            "%a: pin bit vector tracks %d pages but the host reports %d \
             pinned"
            Pid.pp pid bits host_pinned;
        let recount = Host_memory.recount_pinned t.host pid in
        if recount <> host_pinned then
          Sanitizer.recordf san ~code:"UV08"
            "%a: host pin counter says %d pinned pages but a table walk \
             finds %d"
            Pid.pp pid host_pinned recount)
      t.procs;
    List.iter
      (fun msg ->
        Sanitizer.recordf san ~code:"UV07" "miss classifier: %s" msg)
      (Miss_classifier.self_check t.classifier)

let no_san =
  {
    san_active = false;
    san_fill = (fun _ _ _ _ -> ());
    san_pages = (fun _ _ _ _ _ -> ());
  }

let compile_san = function
  | None -> no_san
  | Some san ->
    {
      san_active = true;
      san_fill =
        (fun t pid vpn frame ->
          if frame = Host_memory.garbage_frame t.host then
            Sanitizer.recordf san ~code:"UV02"
              "%a vpn=%#x: NI fetched the garbage frame into the Shared \
               UTLB-Cache"
              Pid.pp pid vpn
          else if Host_memory.pin_count t.host pid ~vpn = 0 then
            Sanitizer.recordf san ~code:"UV03"
              "%a vpn=%#x: NI fetched a translation to unpinned frame %d"
              Pid.pp pid vpn frame);
      san_pages =
        (fun t pid p vpn npages ->
          for q = vpn to vpn + npages - 1 do
            check_cached_page t san pid p q
          done);
    }

let create ?host ?sanitizer ?obs ?faults ?tenancy ~seed config =
  if config.prefetch < 1 then
    invalid_arg "Utopia_engine.create: prefetch must be >= 1";
  if config.prepin < 1 then
    invalid_arg "Utopia_engine.create: prepin must be >= 1";
  if config.rest_ways < 0 then
    invalid_arg "Utopia_engine.create: rest_ways must be >= 0";
  if
    config.rest_ways > 0
    && (config.rest_sets <= 0
       || config.rest_sets land (config.rest_sets - 1) <> 0)
  then invalid_arg "Utopia_engine.create: rest_sets must be a power of two";
  let host = match host with Some h -> h | None -> Host_memory.create () in
  let cache = Ni_cache.create config.cache in
  let tenancy = Option.value ~default:Arbiter.none tenancy in
  Arbiter.bind tenancy ~sets:(Ni_cache.sets cache);
  let rest_slots = max 1 (config.rest_sets * config.rest_ways) in
  {
    config;
    host;
    cache;
    classifier = Miss_classifier.create ~capacity:config.cache.Ni_cache.entries;
    rng = Rng.create ~seed;
    procs = Pid_table.create 8;
    sanitizer;
    san = compile_san sanitizer;
    probe = Probe.of_scope_opt obs;
    faults;
    tenancy;
    ten_active = Arbiter.active tenancy;
    rest_keys = Array.make rest_slots (-1);
    rest_frames = Array.make rest_slots 0;
    run_start = Array.make 8 0;
    run_len = Array.make 8 0;
    totals = Report.empty ~label:"utopia";
    table_swap_interrupts = 0;
    fault_interrupts = 0;
  }

let lookup t ~pid ~vpn ~npages =
  if npages < 1 then invalid_arg "Utopia_engine.lookup: npages must be >= 1";
  add_process t pid;
  let p = proc t pid in
  if t.ten_active then Arbiter.note_lookup t.tenancy ~pid:(Pid.to_int pid);
  let check_miss = not (Bitvec.all_set p.pinned ~vpn ~count:npages) in
  let pin_calls, pages_pinned, unpin_calls, pages_unpinned =
    if not check_miss then (0, 0, 0, 0)
    else begin
      if t.probe.Probe.active then
        observe t ~pid ~vpn
          ~count:(Bitvec.clear_count p.pinned ~vpn ~count:npages)
          Ev.Check_miss;
      let start =
        match Bitvec.first_clear p.pinned ~vpn ~count:npages with
        | Some s -> s
        | None -> assert false
      in
      let reach = max (vpn + npages) (start + t.config.prepin) in
      let extra = reach - (vpn + npages) in
      if extra > 0 then
        observe t ~pid ~vpn:(vpn + npages) ~count:extra Ev.Pre_pin;
      let nruns = ref 0 and incoming = ref 0 in
      Bitvec.iter_clear_runs p.pinned ~vpn:start ~count:(reach - start)
        (fun ~vpn:run_vpn ~count:run_len ->
          let i = !nruns in
          if i = Array.length t.run_start then begin
            let grow a =
              let b = Array.make (2 * Array.length a) 0 in
              Array.blit a 0 b 0 (Array.length a);
              b
            in
            t.run_start <- grow t.run_start;
            t.run_len <- grow t.run_len
          end;
          t.run_start.(i) <- run_vpn;
          t.run_len.(i) <- run_len;
          nruns := i + 1;
          incoming := !incoming + run_len);
      let quota_unpinned, budget =
        enforce_quota t pid p ~incoming:!incoming ~request_vpn:vpn
          ~request_npages:npages
      in
      let unpinned =
        quota_unpinned
        + enforce_limit t pid p ~incoming:budget ~request_vpn:vpn
            ~request_npages:npages
      in
      let calls, pinned = pin_runs t pid p !nruns ~budget in
      Log.debug (fun m ->
          m "%a check miss vpn=%#x+%d: pinned %d pages in %d ioctls" Pid.pp
            pid vpn npages pinned calls);
      (calls, pinned, unpinned, unpinned)
    end
  in
  for q = vpn to vpn + npages - 1 do
    Replacement.touch p.tracker q
  done;
  let ni_misses = ref 0 and entries = ref 0 in
  for q = vpn to vpn + npages - 1 do
    let m, f = ni_translate t pid p q in
    ni_misses := !ni_misses + m;
    entries := !entries + f
  done;
  t.san.san_pages t pid p vpn npages;
  let outcome =
    {
      check_miss;
      pages_pinned;
      pin_calls;
      pages_unpinned;
      unpin_calls;
      ni_accesses = npages;
      ni_misses = !ni_misses;
      entries_fetched = !entries;
    }
  in
  let tot = t.totals in
  t.totals <-
    {
      tot with
      Report.lookups = tot.Report.lookups + 1;
      check_misses = (tot.Report.check_misses + if check_miss then 1 else 0);
      ni_miss_lookups =
        (tot.Report.ni_miss_lookups + if !ni_misses > 0 then 1 else 0);
      ni_page_accesses = tot.Report.ni_page_accesses + npages;
      ni_page_misses = tot.Report.ni_page_misses + !ni_misses;
      pin_calls = tot.Report.pin_calls + pin_calls;
      pages_pinned = tot.Report.pages_pinned + pages_pinned;
      unpin_calls = tot.Report.unpin_calls + unpin_calls;
      pages_unpinned = tot.Report.pages_unpinned + pages_unpinned;
      entries_fetched = tot.Report.entries_fetched + !entries;
    };
  t.probe.Probe.flush ();
  outcome

let is_pinned t ~pid ~vpn = Bitvec.test (proc t pid).pinned vpn

let translate t ~pid ~vpn =
  let p = proc t pid in
  match Translation_table.lookup p.table ~vpn with
  | Translation_table.Frame f -> Some f
  | Translation_table.Garbage | Translation_table.Table_swapped _ -> None

let rest_population t =
  Array.fold_left (fun acc k -> if k >= 0 then acc + 1 else acc) 0 t.rest_keys

let report t ~label =
  {
    t.totals with
    Report.label;
    interrupts = t.table_swap_interrupts + t.fault_interrupts;
    compulsory = Miss_classifier.compulsory t.classifier;
    capacity = Miss_classifier.capacity_misses t.classifier;
    conflict = Miss_classifier.conflict t.classifier;
    isolation = Arbiter.snapshot t.tenancy;
  }

let mechanism = "utopia"

let processes t =
  Pid_table.fold (fun pid _ acc -> pid :: acc) t.procs []
  |> List.sort Pid.compare

let remove_and_report t ~label =
  List.iter (fun pid -> ignore (remove_process t pid)) (processes t);
  report t ~label

let stepper (config : config) =
  Stepper.Utopia
    { prepin = config.prepin; limit_pages = config.memory_limit_pages }

let cost_paths (config : config) ~npages =
  {
    Stepper.Cost.paths =
      Stepper.Cost.utopia_paths ~prefetch:config.prefetch
        ~prepin:config.prepin ~npages;
    cache_entries = config.cache.Ni_cache.entries;
    prefetch = max 1 config.prefetch;
  }
