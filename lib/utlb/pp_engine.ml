module Pid = Utlb_mem.Pid
module Host_memory = Utlb_mem.Host_memory
module Rng = Utlb_sim.Rng
module Sanitizer = Utlb_sim.Sanitizer
module Probe = Utlb_obs.Probe
module Ev = Utlb_obs.Event
module Injector = Utlb_fault.Injector
module Arbiter = Utlb_tenant.Arbiter

type config = {
  sram_budget_entries : int;
  processes : int;
  policy : Replacement.policy;
}

let default_config =
  { sram_budget_entries = 8192; processes = 5; policy = Replacement.Lru }

module Pid_table = Hashtbl.Make (struct
  type t = Pid.t

  let equal = Pid.equal

  let hash = Pid.hash
end)

type t = {
  config : config;
  host : Host_memory.t;
  rng : Rng.t;
  per_process : int;
  tables : Per_process.t Pid_table.t;
  sanitizer : Sanitizer.t option;
  probe : Probe.t;
  faults : Injector.t option;
  tenancy : Arbiter.t;
  ten_active : bool;
  mutable totals : Report.t;
  mutable fault_interrupts : int;
      (* Table-entry installs whose DMA burned its retry budget and
         fell back to interrupt-path service. *)
}

let entries_per_process (config : config) =
  if config.processes <= 0 then 0
  else config.sram_budget_entries / config.processes

let create ?host ?sanitizer ?obs ?faults ?tenancy ~seed config =
  if config.processes <= 0 then
    invalid_arg "Pp_engine.create: processes must be positive";
  let per_process = entries_per_process config in
  if per_process <= 0 then
    invalid_arg "Pp_engine.create: budget divides to zero entries";
  let host = match host with Some h -> h | None -> Host_memory.create () in
  let tenancy = Option.value ~default:Arbiter.none tenancy in
  {
    config;
    host;
    rng = Rng.create ~seed;
    per_process;
    tables = Pid_table.create 8;
    sanitizer;
    probe = Probe.of_scope_opt obs;
    faults;
    tenancy;
    ten_active = Arbiter.active tenancy;
    totals = Report.empty ~label:"per-process";
    fault_interrupts = 0;
  }

let observe t ~pid ~vpn ~count kind =
  t.probe.Probe.emit kind ~pid:(Pid.to_int pid) ~vpn ~count

let run_invariants t =
  match t.sanitizer with
  | None -> ()
  | Some san ->
    Pid_table.iter
      (fun pid pp ->
        List.iter
          (fun msg ->
            Sanitizer.recordf san ~code:"UV08" "%a: %s" Pid.pp pid msg)
          (Per_process.self_check pp))
      t.tables

let table_entries_per_process t = t.per_process

(* A process's table entries: the static SRAM split, further capped by
   its tenant's quota split evenly across the tenant's declared pids
   (a static mechanism gets a static quota). *)
let table_entries_for t pid =
  if not t.ten_active then t.per_process
  else begin
    let ipid = Pid.to_int pid in
    match Arbiter.config t.tenancy with
    | None -> t.per_process
    | Some cfg -> (
      match Utlb_tenant.Tenant.tenant_of_pid cfg ~pid:ipid with
      | None -> t.per_process
      | Some id -> (
        let policy = Utlb_tenant.Tenant.policy cfg id in
        match policy.Utlb_tenant.Tenant.quota with
        | None -> t.per_process
        | Some q ->
          let npids = max 1 (List.length policy.Utlb_tenant.Tenant.pids) in
          min t.per_process (max 1 (q / npids))))
  end

let table_for t pid =
  match Pid_table.find_opt t.tables pid with
  | Some pp -> pp
  | None ->
    if Pid_table.length t.tables >= t.config.processes then
      invalid_arg "Pp_engine: more processes than allocated tables";
    let pp =
      Per_process.create ~host:t.host ~pid
        ~table_entries:(table_entries_for t pid)
        ~policy:t.config.policy
        ~seed:(Rng.next_int64 t.rng)
        ()
    in
    Pid_table.replace t.tables pid pp;
    pp

let add_process t pid = ignore (table_for t pid)

let remove_process t pid =
  match Pid_table.find_opt t.tables pid with
  | None -> 0
  | Some pp ->
    let released = Per_process.release pp in
    (match t.sanitizer with
    | None -> ()
    | Some san ->
      let leaked = Host_memory.pinned_pages t.host pid in
      if leaked <> 0 then
        Sanitizer.recordf san ~code:"UV01"
          "%a exit: %d pages still pinned after releasing the \
           per-process table (pin leak)"
          Pid.pp pid leaked;
      let recount = Host_memory.recount_pinned t.host pid in
      if recount <> leaked then
        Sanitizer.recordf san ~code:"UV08"
          "%a exit: host pin counter says %d pinned pages but a table \
           walk finds %d"
          Pid.pp pid leaked recount);
    if t.ten_active then
      Arbiter.note_unpin t.tenancy ~pid:(Pid.to_int pid) ~pages:released;
    Pid_table.remove t.tables pid;
    released

let processes t =
  Pid_table.fold (fun pid _ acc -> pid :: acc) t.tables []
  |> List.sort Pid.compare

type outcome = {
  check_miss : bool;
  pages_pinned : int;
  pages_unpinned : int;
}

let lookup t ~pid ~vpn ~npages =
  let pp = table_for t pid in
  if t.ten_active then Arbiter.note_lookup t.tenancy ~pid:(Pid.to_int pid);
  let o = Per_process.lookup pp ~vpn ~npages in
  let outcome =
    {
      check_miss = o.Per_process.check_miss;
      pages_pinned = o.Per_process.pages_pinned;
      pages_unpinned = o.Per_process.pages_unpinned;
    }
  in
  if outcome.check_miss then
    observe t ~pid ~vpn ~count:outcome.pages_pinned Ev.Check_miss;
  if t.ten_active then begin
    let ipid = Pid.to_int pid in
    (* Once installed, the NI-resident table always answers: npages
       hits against this tenant's private slice. *)
    for _ = 1 to npages do
      Arbiter.note_ni_access t.tenancy ~pid:ipid ~hit:true
    done;
    if outcome.pages_pinned > 0 then
      Arbiter.note_pin t.tenancy ~pid:ipid ~pages:outcome.pages_pinned;
    if outcome.pages_unpinned > 0 then
      Arbiter.note_unpin t.tenancy ~pid:ipid ~pages:outcome.pages_unpinned
  end;
  (* Fault plane: installing the newly pinned pages' entries into the
     NI-resident table is itself a DMA, which may fail and retry; an
     exhausted budget falls back to interrupt-path installation. Either
     way the entries land and the lookup proceeds — graceful
     degradation, counted as a recovery. *)
  (match t.faults with
  | Some inj when outcome.pages_pinned > 0 -> (
    match Injector.dma_attempts inj with
    | Some 0 -> ()
    | Some failed ->
      observe t ~pid ~vpn ~count:Probe.no_count Ev.Fault_inject;
      observe t ~pid ~vpn ~count:failed Ev.Fault_retry;
      Injector.note_recovery inj;
      observe t ~pid ~vpn ~count:Probe.no_count Ev.Fault_recover;
      t.totals <-
        {
          t.totals with
          Report.fault_recoveries = t.totals.Report.fault_recoveries + 1;
        }
    | None ->
      let retries = max 0 (Injector.plan inj).Utlb_fault.Plan.dma_retries in
      observe t ~pid ~vpn ~count:Probe.no_count Ev.Fault_inject;
      observe t ~pid ~vpn ~count:(1 + retries) Ev.Fault_retry;
      t.fault_interrupts <- t.fault_interrupts + 1;
      observe t ~pid ~vpn ~count:Probe.no_count Ev.Interrupt;
      Injector.note_recovery inj;
      observe t ~pid ~vpn ~count:Probe.no_count Ev.Fault_recover;
      t.totals <-
        {
          t.totals with
          Report.fault_recoveries = t.totals.Report.fault_recoveries + 1;
        })
  | Some _ | None -> ());
  (* Per-page reporting loops exist only to feed the probe; with it
     inactive they are skipped entirely. *)
  if t.probe.Probe.active then begin
    (* The per-process table pins page at a time (one ioctl each), and
       a table eviction unpins its page immediately. *)
    for _ = 1 to outcome.pages_pinned do
      observe t ~pid ~vpn ~count:1 Ev.Pin
    done;
    for _ = 1 to outcome.pages_unpinned do
      observe t ~pid ~vpn:Probe.no_vpn ~count:1 Ev.Unpin
    done;
    (* Once pinned, the NI-resident table always answers: npages hits. *)
    for q = vpn to vpn + npages - 1 do
      observe t ~pid ~vpn:q ~count:Probe.no_count Ev.Ni_hit
    done
  end;
  let tot = t.totals in
  t.totals <-
    {
      tot with
      Report.lookups = tot.Report.lookups + 1;
      check_misses =
        (tot.Report.check_misses + if outcome.check_miss then 1 else 0);
      ni_page_accesses = tot.Report.ni_page_accesses + npages;
      pin_calls = tot.Report.pin_calls + outcome.pages_pinned;
      pages_pinned = tot.Report.pages_pinned + outcome.pages_pinned;
      unpin_calls = tot.Report.unpin_calls + outcome.pages_unpinned;
      pages_unpinned = tot.Report.pages_unpinned + outcome.pages_unpinned;
    };
  t.probe.Probe.flush ();
  outcome

let report t ~label =
  {
    t.totals with
    Report.label;
    interrupts = t.fault_interrupts;
    isolation = Arbiter.snapshot t.tenancy;
  }

let mechanism = "per-process"

let remove_and_report t ~label =
  List.iter (fun pid -> ignore (remove_process t pid)) (processes t);
  report t ~label

let occupancy t pid =
  match Pid_table.find_opt t.tables pid with
  | Some pp -> Per_process.occupancy pp
  | None -> 0

let stepper (config : config) =
  Stepper.Static
    { processes = config.processes; share = entries_per_process config }

let cost_paths (config : config) ~npages =
  {
    Stepper.Cost.paths = Stepper.Cost.static_paths ~npages;
    cache_entries = entries_per_process config;
    prefetch = 1;
  }
