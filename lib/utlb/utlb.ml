(** UTLB: user-managed address translation for network interfaces.

    Reproduction of Chen, Bilas, Damianakis, Dubnicki & Li,
    "UTLB: A Mechanism for Address Translation on Network Interfaces"
    (ASPLOS 1998).

    The library provides the three UTLB designs and the machinery around
    them:

    - {!Per_process}: fixed translation tables in NI SRAM plus a
      user-level {!Lookup_tree} (Section 3.1);
    - {!Hier_engine}: the Hierarchical-UTLB — host-resident two-level
      {!Translation_table}, user-level {!Bitvec} pin tracking, and the
      {!Ni_cache} (Shared UTLB-Cache) with prefetching (Sections
      3.2-3.3) — the design the paper evaluates as "UTLB";
    - {!Intr_engine}: the interrupt-based baseline it is compared
      against (Section 6.2);
    - {!Victima_engine} and {!Utopia_engine}: two modern competitors
      (MICRO '23, see PAPERS.md) rebuilt on the UTLB substrate — an L2
      victim store behind the Shared UTLB-Cache, and a
      hash-constrained RestSeg zone in front of it;
    - {!Replacement}: the five user-level replacement policies
      (Section 3.4);
    - {!Miss_classifier}: three-C miss decomposition (Figure 7);
    - {!Cost_model}: the paper's measured cost constants and the
      Section 6.2 average-lookup-cost equations;
    - {!Engine_intf}: the ENGINE signature every design implements,
      and the packed-module representation the driver dispatches over;
    - {!Obs_cost}: the {!Cost_model} pricing of observability events,
      for phase attribution in {!Utlb_obs.Scope};
    - {!Sim_driver} and {!Report}: trace-driven simulation and its
      accounting (Tables 4-8, Figures 7-8), plus the mechanism
      registry new designs plug into. *)

module Bitvec = Bitvec
module Flat_map = Flat_map
module Lookup_tree = Lookup_tree
module Replacement = Replacement
module Translation_table = Translation_table
module Ni_cache = Ni_cache
module Miss_classifier = Miss_classifier
module Cost_model = Cost_model
module Report = Report
module Hier_engine = Hier_engine
module Intr_engine = Intr_engine
module Victima_engine = Victima_engine
module Utopia_engine = Utopia_engine
module Per_process = Per_process
module Pp_engine = Pp_engine
module Engine_intf = Engine_intf
module Stepper = Stepper
module Obs_cost = Obs_cost
module Sim_driver = Sim_driver
