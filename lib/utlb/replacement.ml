module Rng = Utlb_sim.Rng

type policy = Lru | Mru | Lfu | Mfu | Random

let policy_name = function
  | Lru -> "lru"
  | Mru -> "mru"
  | Lfu -> "lfu"
  | Mfu -> "mfu"
  | Random -> "random"

let all_policies = [ Lru; Mru; Lfu; Mfu; Random ]

let policy_of_string s =
  let lower = String.lowercase_ascii s in
  List.find_opt (fun p -> String.equal (policy_name p) lower) all_policies

(* Heap entries are (score1, score2, page) snapshots kept in three
   parallel int arrays; stale snapshots (score no longer current, or
   page no longer tracked) are discarded lazily at pop time. Snapshot
   keys are unique — the tick is monotonic, so no two pushes carry the
   same (score, page) — which makes the pop order independent of heap
   internals. Insert/touch/select stay O(log n) with no allocation. *)
type t = {
  policy : policy;
  rng : Rng.t;
  (* page -> (v0 = last_use, v1 = uses) *)
  pages : Flat_map.t;
  mutable hs1 : int array;
  mutable hs2 : int array;
  mutable hpage : int array;
  mutable hlen : int;
  (* Random policy: dense array of pages with O(1) swap-remove. *)
  mutable dense : int array;
  mutable dense_len : int;
  (* page -> (v0 = dense index, v1 unused) *)
  slot : Flat_map.t;
  mutable tick : int;
}

let score1 policy ~last_use ~uses =
  match policy with
  | Lru -> last_use
  | Mru -> -last_use
  | Lfu -> uses
  | Mfu -> -uses
  | Random -> 0

let score2 policy ~last_use =
  match policy with
  | Lru | Mru | Random -> 0
  | Lfu | Mfu -> last_use

let create policy ~rng =
  {
    policy;
    rng;
    pages = Flat_map.create ();
    hs1 = Array.make 64 0;
    hs2 = Array.make 64 0;
    hpage = Array.make 64 0;
    hlen = 0;
    dense = Array.make 16 0;
    dense_len = 0;
    slot = Flat_map.create ();
    tick = 0;
  }

let policy t = t.policy

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

(* Lexicographic (s1, s2, page) min-heap on the parallel arrays. *)
let heap_less t i j =
  t.hs1.(i) < t.hs1.(j)
  || (t.hs1.(i) = t.hs1.(j)
     && (t.hs2.(i) < t.hs2.(j)
        || (t.hs2.(i) = t.hs2.(j) && t.hpage.(i) < t.hpage.(j))))

let heap_swap t i j =
  let s1 = t.hs1.(i) and s2 = t.hs2.(i) and p = t.hpage.(i) in
  t.hs1.(i) <- t.hs1.(j);
  t.hs2.(i) <- t.hs2.(j);
  t.hpage.(i) <- t.hpage.(j);
  t.hs1.(j) <- s1;
  t.hs2.(j) <- s2;
  t.hpage.(j) <- p

let heap_push t ~s1 ~s2 ~page =
  if t.hlen = Array.length t.hs1 then begin
    let cap = 2 * t.hlen in
    let grow a =
      let b = Array.make cap 0 in
      Array.blit a 0 b 0 t.hlen;
      b
    in
    t.hs1 <- grow t.hs1;
    t.hs2 <- grow t.hs2;
    t.hpage <- grow t.hpage
  end;
  let i = ref t.hlen in
  t.hs1.(!i) <- s1;
  t.hs2.(!i) <- s2;
  t.hpage.(!i) <- page;
  t.hlen <- t.hlen + 1;
  while !i > 0 && heap_less t !i ((!i - 1) / 2) do
    let parent = (!i - 1) / 2 in
    heap_swap t !i parent;
    i := parent
  done

(* Pop the minimum into the given refs; false when empty. *)
let heap_pop t rs1 rs2 rpage =
  if t.hlen = 0 then false
  else begin
    rs1 := t.hs1.(0);
    rs2 := t.hs2.(0);
    rpage := t.hpage.(0);
    t.hlen <- t.hlen - 1;
    if t.hlen > 0 then begin
      t.hs1.(0) <- t.hs1.(t.hlen);
      t.hs2.(0) <- t.hs2.(t.hlen);
      t.hpage.(0) <- t.hpage.(t.hlen);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.hlen && heap_less t l !smallest then smallest := l;
        if r < t.hlen && heap_less t r !smallest then smallest := r;
        if !smallest = !i then continue := false
        else begin
          heap_swap t !i !smallest;
          i := !smallest
        end
      done
    end;
    true
  end

let push_snapshot t page ~last_use ~uses =
  if t.policy <> Random then
    heap_push t
      ~s1:(score1 t.policy ~last_use ~uses)
      ~s2:(score2 t.policy ~last_use)
      ~page

let dense_add t page =
  if t.dense_len = Array.length t.dense then begin
    let bigger = Array.make (2 * t.dense_len) 0 in
    Array.blit t.dense 0 bigger 0 t.dense_len;
    t.dense <- bigger
  end;
  t.dense.(t.dense_len) <- page;
  ignore (Flat_map.add t.slot page ~v0:t.dense_len ~v1:0);
  t.dense_len <- t.dense_len + 1

let dense_remove t page =
  let s = Flat_map.find t.slot page in
  if s >= 0 then begin
    let i = Flat_map.value0 t.slot s in
    let last = t.dense_len - 1 in
    let moved = t.dense.(last) in
    t.dense.(i) <- moved;
    let ms = Flat_map.find t.slot moved in
    Flat_map.set_value0 t.slot ms i;
    t.dense_len <- last;
    Flat_map.remove t.slot page
  end

let insert t page =
  if Flat_map.mem t.pages page then
    invalid_arg "Replacement.insert: page already tracked";
  let last_use = next_tick t in
  ignore (Flat_map.add t.pages page ~v0:last_use ~v1:1);
  if t.policy = Random then dense_add t page
  else push_snapshot t page ~last_use ~uses:1

let touch t page =
  let s = Flat_map.find t.pages page in
  if s >= 0 then begin
    let last_use = next_tick t in
    let uses = Flat_map.value1 t.pages s + 1 in
    Flat_map.set_value0 t.pages s last_use;
    Flat_map.set_value1 t.pages s uses;
    push_snapshot t page ~last_use ~uses
  end

let remove t page =
  if Flat_map.mem t.pages page then begin
    Flat_map.remove t.pages page;
    if t.policy = Random then dense_remove t page
  end

let mem t page = Flat_map.mem t.pages page

let size t = Flat_map.length t.pages

let select_random t protect =
  (* Rejection-sample protected pages; fall back to a full scan when the
     sample keeps hitting protected entries (tiny unprotected sets). *)
  if t.dense_len = 0 then None
  else begin
    let attempts = 8 in
    let rec sample k =
      if k = 0 then
        (* Deterministic fallback: first unprotected page in the dense
           array. *)
        let rec scan i =
          if i >= t.dense_len then None
          else if protect t.dense.(i) then scan (i + 1)
          else Some t.dense.(i)
        in
        scan 0
      else
        let candidate = t.dense.(Rng.int t.rng t.dense_len) in
        if protect candidate then sample (k - 1) else Some candidate
    in
    match sample attempts with
    | None -> None
    | Some page ->
      Flat_map.remove t.pages page;
      dense_remove t page;
      Some page
  end

let select_scored t protect =
  (* Pop snapshots until a current, unprotected one appears. Protected
     current snapshots are set aside and pushed back afterwards. *)
  let stash_s1 = ref [] and stash_s2 = ref [] and stash_page = ref [] in
  let s1 = ref 0 and s2 = ref 0 and page = ref 0 in
  let victim = ref None in
  let continue = ref true in
  while !continue do
    if not (heap_pop t s1 s2 page) then continue := false
    else begin
      let slot = Flat_map.find t.pages !page in
      if slot < 0 then () (* page no longer tracked *)
      else begin
        let last_use = Flat_map.value0 t.pages slot in
        let uses = Flat_map.value1 t.pages slot in
        if
          score1 t.policy ~last_use ~uses <> !s1
          || score2 t.policy ~last_use <> !s2
        then () (* stale *)
        else if protect !page then begin
          stash_s1 := !s1 :: !stash_s1;
          stash_s2 := !s2 :: !stash_s2;
          stash_page := !page :: !stash_page
        end
        else begin
          Flat_map.remove t.pages !page;
          victim := Some !page;
          continue := false
        end
      end
    end
  done;
  let rec push_back l1 l2 l3 =
    match (l1, l2, l3) with
    | s1 :: r1, s2 :: r2, page :: r3 ->
      heap_push t ~s1 ~s2 ~page;
      push_back r1 r2 r3
    | _ -> ()
  in
  push_back !stash_s1 !stash_s2 !stash_page;
  !victim

let select_victim t ?(protect = fun _ -> false) () =
  match t.policy with
  | Random -> select_random t protect
  | Lru | Mru | Lfu | Mfu -> select_scored t protect
