(** The common shape of a translation engine.

    Every translation mechanism in the repository — the
    Hierarchical-UTLB ({!Hier_engine}), the interrupt-based baseline
    ({!Intr_engine}), and the Per-process tables ({!Pp_engine}) —
    implements {!S}. The driver and the campaign layer dispatch over
    {!packed} values, so a new design (say, a two-level NI cache)
    becomes usable by every experiment in the repo the moment it
    satisfies the signature and registers itself with
    {!Sim_driver.Registry}. *)

module type S = sig
  val mechanism : string
  (** Stable lower-case mechanism name, e.g. ["utlb"]. Used as the
      default report label and as the registry key. *)

  type config

  val default_config : config

  type t

  val create :
    ?host:Utlb_mem.Host_memory.t ->
    ?sanitizer:Utlb_sim.Sanitizer.t ->
    ?obs:Utlb_obs.Scope.t ->
    ?faults:Utlb_fault.Injector.t ->
    ?tenancy:Utlb_tenant.Arbiter.t ->
    seed:int64 ->
    config ->
    t
  (** Deterministic from [seed]. With [sanitizer] the engine shadows
      its execution with invariant checks (see {!Utlb_check.Invariant}
      for the violation catalogue). With [obs] the engine emits its
      internal events (check misses, pins/unpins, NI cache traffic,
      interrupts) through the scope; observation never changes the
      simulation. With [faults] the engine draws injected faults from
      the plan and recovers from them (recoveries are counted in
      {!Report}); an injector over an empty plan consumes no
      randomness and changes nothing. With [tenancy] (an active
      {!Utlb_tenant.Arbiter}) the engine binds the arbiter to its NI
      cache geometry, applies per-tenant cache windows and pin quotas,
      tags every lookup/access/eviction with its tenant, and attaches
      the per-tenant {!Utlb_tenant.Isolation} breakdown to its
      {!Report}; the inert arbiter (or omitting it) changes nothing. *)

  val add_process : t -> Utlb_mem.Pid.t -> unit
  (** Admit a process, allocating its translation state. *)

  val remove_process : t -> Utlb_mem.Pid.t -> int
  (** Process exit: release everything the process still pins and drop
      its translation state. Returns pages released; unknown processes
      release 0. *)

  val processes : t -> Utlb_mem.Pid.t list
  (** Live (admitted, not yet removed) processes, ascending pid. *)

  type outcome
  (** Per-lookup accounting. The shape is engine-specific; drivers that
      only need totals use {!report}. *)

  val lookup : t -> pid:Utlb_mem.Pid.t -> vpn:int -> npages:int -> outcome
  (** Translate one communication buffer.
      @raise Invalid_argument if [npages < 1]. *)

  val report : t -> label:string -> Report.t
  (** Snapshot of the accumulated counters. *)

  val remove_and_report : t -> label:string -> Report.t
  (** Tear down every live process (releasing its pins, with the
      sanitizer auditing the pin ledger) and then snapshot: the
      end-of-run sequence of a whole simulated node. *)

  val run_invariants : t -> unit
  (** Full invariant sweep; a no-op without a sanitizer. *)

  val stepper : config -> Stepper.semantics
  (** Step-level view of the pin protocol this configuration runs:
      the capacity parameters {!Stepper} needs to enumerate the
      engine's individual protocol transitions. Used by
      [utlbcheck explore] to model-check any registered engine
      without disturbing the whole-trace entry points above. *)

  val cost_paths : config -> npages:int -> Stepper.Cost.profile
  (** Worst-case control paths one translation of an [npages]-page
      buffer can take under this configuration, as priced protocol
      steps ({!Stepper.Cost}), plus the NI-side geometry the bound
      analyzer audits. Each path must dominate the corresponding terms
      of the engine's cost equation at worst-case rates, so
      [utlbcheck bound] derives a sound single-translation latency
      bound from the {!Cost_model} alone — no simulation. *)
end

type packed =
  | Packed : (module S with type config = 'c) * 'c -> packed
      (** A mechanism bundled with the configuration to create it —
          the unit of dispatch for {!Sim_driver} and [lib/exp]. *)
