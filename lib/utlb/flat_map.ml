(* Open-addressed hash map from non-negative int keys to a pair of int
   values, linear probing over a power-of-two table. This is the flat
   replacement for the tuple-keyed Hashtbls on the translation hot
   path: a probe is a multiply, a mask, and a short scan of one int
   array, with the payloads in parallel arrays — no boxing, no bucket
   chains. Deletion uses tombstones ([tomb]); the table rehashes when
   live + tombstone slots pass 3/4 of capacity. *)

let empty = -1

let tomb = -2

type t = {
  mutable keys : int array;
  mutable v0 : int array;
  mutable v1 : int array;
  mutable mask : int;
  mutable live : int;
  mutable used : int; (* live + tombstones *)
}

let create () =
  {
    keys = Array.make 16 empty;
    v0 = Array.make 16 0;
    v1 = Array.make 16 0;
    mask = 15;
    live = 0;
    used = 0;
  }

let length t = t.live

(* Knuth multiplicative hash; keys are page numbers or packed
   (pid, vpn) words, so scrambling the low bits is what matters. *)
let slot_of t key = key * 2654435761 land t.mask

let check_key key = if key < 0 then invalid_arg "Flat_map: negative key"

(* Slot holding [key], or -1. *)
let find t key =
  check_key key;
  let i = ref (slot_of t key) in
  let found = ref (-1) in
  let continue = ref true in
  while !continue do
    let k = t.keys.(!i) in
    if k = key then begin
      found := !i;
      continue := false
    end
    else if k = empty then continue := false
    else i := (!i + 1) land t.mask
  done;
  !found

let mem t key = find t key >= 0

let value0 t slot = t.v0.(slot)

let value1 t slot = t.v1.(slot)

let set_value0 t slot v = t.v0.(slot) <- v

let set_value1 t slot v = t.v1.(slot) <- v

let key_at t slot = t.keys.(slot)

let rec grow t =
  let cap = Array.length t.keys in
  (* Double only when most of the pressure is live entries; a table
     full of tombstones rehashes at the same size. *)
  let cap = if t.live * 2 >= cap then cap * 2 else cap in
  let keys = Array.make cap empty in
  let v0 = Array.make cap 0 in
  let v1 = Array.make cap 0 in
  let old_keys = t.keys and old_v0 = t.v0 and old_v1 = t.v1 in
  t.keys <- keys;
  t.v0 <- v0;
  t.v1 <- v1;
  t.mask <- cap - 1;
  t.live <- 0;
  t.used <- 0;
  Array.iteri
    (fun i k -> if k >= 0 then add t k ~v0:old_v0.(i) ~v1:old_v1.(i) |> ignore)
    old_keys

(* Insert or update; returns the slot now holding [key]. *)
and add t key ~v0 ~v1 =
  check_key key;
  if 4 * (t.used + 1) > 3 * Array.length t.keys then grow t;
  let i = ref (slot_of t key) in
  let target = ref (-1) in
  let continue = ref true in
  while !continue do
    let k = t.keys.(!i) in
    if k = key then begin
      target := !i;
      continue := false
    end
    else if k = empty then begin
      (* Reuse the first tombstone passed, if any. *)
      if !target < 0 then target := !i;
      if t.keys.(!target) = empty then t.used <- t.used + 1;
      t.keys.(!target) <- key;
      t.live <- t.live + 1;
      continue := false
    end
    else begin
      if k = tomb && !target < 0 then target := !i;
      i := (!i + 1) land t.mask
    end
  done;
  t.v0.(!target) <- v0;
  t.v1.(!target) <- v1;
  !target

let remove t key =
  let slot = find t key in
  if slot >= 0 then begin
    t.keys.(slot) <- tomb;
    t.live <- t.live - 1
  end

let iter t f =
  Array.iteri
    (fun i k -> if k >= 0 then f k ~v0:t.v0.(i) ~v1:t.v1.(i))
    t.keys
