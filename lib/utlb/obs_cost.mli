(** Modelled cost of one observability event, from the paper's
    {!Cost_model} (Tables 1/2, Section 6.2).

    This is the [?cost_of] function handed to
    {!Utlb_obs.Scope.create}: with it, the scope's per-lookup latency
    histograms and the [utlbsim inspect] top-k ranking are priced in
    the paper's microseconds. Span halves, cache evictions, and other
    bookkeeping events cost 0 — their time is billed by the event that
    caused them. *)

val of_model : Cost_model.t -> Utlb_obs.Event.kind -> count:int -> float

val default : Utlb_obs.Event.kind -> count:int -> float
(** [of_model Cost_model.default]. *)
