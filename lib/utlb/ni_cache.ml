module Pid = Utlb_mem.Pid

type associativity = Direct_nohash | Direct | Two_way | Four_way

let ways = function
  | Direct_nohash | Direct -> 1
  | Two_way -> 2
  | Four_way -> 4

let associativity_name = function
  | Direct_nohash -> "direct-nohash"
  | Direct -> "direct"
  | Two_way -> "2-way"
  | Four_way -> "4-way"

let all = [ Direct_nohash; Direct; Two_way; Four_way ]

let associativity_of_string s =
  let lower = String.lowercase_ascii s in
  List.find_opt (fun a -> String.equal (associativity_name a) lower) all

type config = { entries : int; associativity : associativity }

(* One line per slot; pid < 0 marks an invalid line. *)
type line = {
  mutable pid : int;
  mutable vpn : int;
  mutable frame : int;
  mutable stamp : int; (* per-set LRU *)
}

type t = {
  config : config;
  sets : int;
  nways : int;
  lines : line array;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable valid : int;
  mutable probes : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create config =
  let nways = ways config.associativity in
  if config.entries <= 0 || config.entries mod nways <> 0 then
    invalid_arg "Ni_cache.create: entries must be a positive multiple of ways";
  let sets = config.entries / nways in
  if not (is_power_of_two sets) then
    invalid_arg "Ni_cache.create: set count must be a power of two";
  {
    config;
    sets;
    nways;
    lines =
      Array.init config.entries (fun _ ->
          { pid = -1; vpn = -1; frame = -1; stamp = 0 });
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    valid = 0;
    probes = 0;
  }

let config t = t.config

let sets t = t.sets

(* Per-process index offsetting: "offset a translation table index by a
   process-dependent constant" so identical virtual pages from
   different processes hash to different sets. SPMD processes have
   identical address-space layouts, so without the offset their buffers
   alias pairwise at every power-of-two set count. The multiplier 6553
   spreads up to five concurrent processes with gaps of at least 1/5th
   of the index space for set counts from 1 K to 16 K. *)
let offset_multiplier = 6553

(* The one index function, shared by the live cache and the static
   accessors so a config-level prediction provably matches what a
   built cache does. *)
let index_of ~associativity ~sets ~pid ~vpn =
  let base =
    match associativity with
    | Direct_nohash -> vpn
    | Direct | Two_way | Four_way -> vpn + (pid * offset_multiplier)
  in
  base land (sets - 1)

let sets_of_config config =
  let nways = ways config.associativity in
  if config.entries <= 0 || config.entries mod nways <> 0 then None
  else
    let sets = config.entries / nways in
    if is_power_of_two sets then Some sets else None

let static_set_index config ~pid ~vpn =
  Option.map
    (fun sets ->
      index_of ~associativity:config.associativity ~sets ~pid ~vpn)
    (sets_of_config config)

let set_index t ~pid ~vpn =
  index_of ~associativity:t.config.associativity ~sets:t.sets
    ~pid:(Pid.to_int pid) ~vpn

let set_slice t idx = idx * t.nways

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

let find_way t ~pid ~vpn =
  let p = Pid.to_int pid in
  let base = set_slice t (set_index t ~pid ~vpn) in
  let rec scan w probes =
    if w = t.nways then (None, probes)
    else
      let line = t.lines.(base + w) in
      if line.pid = p && line.vpn = vpn then (Some (base + w), probes + 1)
      else scan (w + 1) (probes + 1)
  in
  scan 0 0

let lookup t ~pid ~vpn =
  let slot, probes = find_way t ~pid ~vpn in
  t.probes <- t.probes + probes;
  match slot with
  | Some i ->
    t.hits <- t.hits + 1;
    t.lines.(i).stamp <- next_tick t;
    Some t.lines.(i).frame
  | None ->
    t.misses <- t.misses + 1;
    None

let contains t ~pid ~vpn = fst (find_way t ~pid ~vpn) <> None

let peek t ~pid ~vpn =
  match fst (find_way t ~pid ~vpn) with
  | None -> None
  | Some i -> Some t.lines.(i).frame

let iter_valid t f =
  Array.iter
    (fun line ->
      if line.pid >= 0 then
        f ~pid:(Pid.of_int line.pid) ~vpn:line.vpn ~frame:line.frame)
    t.lines

let insert t ~pid ~vpn ~frame =
  let p = Pid.to_int pid in
  let base = set_slice t (set_index t ~pid ~vpn) in
  (* Refresh in place if present. *)
  let existing = ref None in
  let free = ref None in
  let lru = ref base in
  for w = 0 to t.nways - 1 do
    let line = t.lines.(base + w) in
    if line.pid = p && line.vpn = vpn then existing := Some (base + w);
    if line.pid < 0 && !free = None then free := Some (base + w);
    if line.stamp < t.lines.(!lru).stamp then lru := base + w
  done;
  match !existing with
  | Some i ->
    t.lines.(i).frame <- frame;
    t.lines.(i).stamp <- next_tick t;
    None
  | None ->
    let slot, evicted =
      match !free with
      | Some i -> (i, None)
      | None ->
        let line = t.lines.(!lru) in
        t.evictions <- t.evictions + 1;
        (!lru, Some (Pid.of_int line.pid, line.vpn, line.frame))
    in
    let line = t.lines.(slot) in
    if line.pid < 0 then t.valid <- t.valid + 1;
    line.pid <- p;
    line.vpn <- vpn;
    line.frame <- frame;
    line.stamp <- next_tick t;
    evicted

let invalidate t ~pid ~vpn =
  match fst (find_way t ~pid ~vpn) with
  | None -> false
  | Some i ->
    let line = t.lines.(i) in
    line.pid <- -1;
    line.vpn <- -1;
    line.frame <- -1;
    line.stamp <- 0;
    t.valid <- t.valid - 1;
    true

let invalidate_process t ~pid =
  let p = Pid.to_int pid in
  let dropped = ref 0 in
  Array.iter
    (fun line ->
      if line.pid = p then begin
        line.pid <- -1;
        line.vpn <- -1;
        line.frame <- -1;
        line.stamp <- 0;
        incr dropped
      end)
    t.lines;
  t.valid <- t.valid - !dropped;
  !dropped

let valid_lines t = t.valid

let hits t = t.hits

let misses t = t.misses

let evictions t = t.evictions

let probe_cost_entries t = t.probes

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.probes <- 0

let size_bytes t = t.config.entries * 4
