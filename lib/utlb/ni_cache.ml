module Pid = Utlb_mem.Pid

type associativity = Direct_nohash | Direct | Two_way | Four_way

let ways = function
  | Direct_nohash | Direct -> 1
  | Two_way -> 2
  | Four_way -> 4

let associativity_name = function
  | Direct_nohash -> "direct-nohash"
  | Direct -> "direct"
  | Two_way -> "2-way"
  | Four_way -> "4-way"

let all = [ Direct_nohash; Direct; Two_way; Four_way ]

let associativity_of_string s =
  let lower = String.lowercase_ascii s in
  List.find_opt (fun a -> String.equal (associativity_name a) lower) all

type config = { entries : int; associativity : associativity }

(* Parallel arrays, one slot per line; pid < 0 marks an invalid line.
   Keeping the four fields in separate int arrays (instead of a record
   per line) makes a set probe a handful of unboxed array reads over
   adjacent slots. *)
type t = {
  config : config;
  sets : int;
  nways : int;
  pids : int array;
  vpns : int array;
  frames : int array;
  stamps : int array; (* per-set LRU *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable valid : int;
  mutable probes : int;
  (* Per-process tenant windows (multi-tenant partitioning):
     index = win_base.(pid) + ((hash + win_offset.(pid)) land
     win_mask.(pid)). [windowed] stays false until the first
     [set_window], so an unpartitioned cache pays one predictable
     branch and keeps the exact historical index function. *)
  mutable windowed : bool;
  mutable win_base : int array;
  mutable win_mask : int array;
  mutable win_offset : int array;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create config =
  let nways = ways config.associativity in
  if config.entries <= 0 || config.entries mod nways <> 0 then
    invalid_arg "Ni_cache.create: entries must be a positive multiple of ways";
  let sets = config.entries / nways in
  if not (is_power_of_two sets) then
    invalid_arg "Ni_cache.create: set count must be a power of two";
  {
    config;
    sets;
    nways;
    pids = Array.make config.entries (-1);
    vpns = Array.make config.entries (-1);
    frames = Array.make config.entries (-1);
    stamps = Array.make config.entries 0;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    valid = 0;
    probes = 0;
    windowed = false;
    win_base = [||];
    win_mask = [||];
    win_offset = [||];
  }

let config t = t.config

let sets t = t.sets

(* Per-process index offsetting: "offset a translation table index by a
   process-dependent constant" so identical virtual pages from
   different processes hash to different sets. SPMD processes have
   identical address-space layouts, so without the offset their buffers
   alias pairwise at every power-of-two set count. The multiplier 6553
   spreads up to five concurrent processes with gaps of at least 1/5th
   of the index space for set counts from 1 K to 16 K. *)
let offset_multiplier = 6553

(* The one index function, shared by the live cache and the static
   accessors so a config-level prediction provably matches what a
   built cache does. *)
let index_of ~associativity ~sets ~pid ~vpn =
  let base =
    match associativity with
    | Direct_nohash -> vpn
    | Direct | Two_way | Four_way -> vpn + (pid * offset_multiplier)
  in
  base land (sets - 1)

let sets_of_config config =
  let nways = ways config.associativity in
  if config.entries <= 0 || config.entries mod nways <> 0 then None
  else
    let sets = config.entries / nways in
    if is_power_of_two sets then Some sets else None

let static_set_index config ~pid ~vpn =
  Option.map
    (fun sets ->
      index_of ~associativity:config.associativity ~sets ~pid ~vpn)
    (sets_of_config config)

let set_index t ~pid ~vpn =
  let p = Pid.to_int pid in
  let h = index_of ~associativity:t.config.associativity ~sets:t.sets ~pid:p ~vpn in
  if (not t.windowed) || p >= Array.length t.win_base then h
  else t.win_base.(p) + ((h + t.win_offset.(p)) land t.win_mask.(p))

let grow t pid =
  let n = Array.length t.win_base in
  if pid >= n then begin
    let size = pid + 1 in
    let extend a fill =
      let b = Array.make size fill in
      Array.blit a 0 b 0 n;
      b
    in
    t.win_base <- extend t.win_base 0;
    t.win_mask <- extend t.win_mask (t.sets - 1);
    t.win_offset <- extend t.win_offset 0
  end

let set_window t ~pid ~base ~mask ~offset =
  let p = Pid.to_int pid in
  if not (is_power_of_two (mask + 1)) then
    invalid_arg "Ni_cache.set_window: mask+1 must be a power of two";
  if base < 0 || base + mask >= t.sets then
    invalid_arg "Ni_cache.set_window: window exceeds the set count";
  grow t p;
  t.win_base.(p) <- base;
  t.win_mask.(p) <- mask;
  t.win_offset.(p) <- offset;
  t.windowed <- true

let set_slice t idx = idx * t.nways

let next_tick t =
  t.tick <- t.tick + 1;
  t.tick

(* Slot of (pid, vpn) in its set, or -1; ways probed in the high bits
   would cost a tuple, so probes are reported through [last_probes]. *)
let find_way t ~pid ~vpn =
  let p = Pid.to_int pid in
  let base = set_slice t (set_index t ~pid ~vpn) in
  let slot = ref (-1) in
  let probes = ref 0 in
  let w = ref 0 in
  while !slot < 0 && !w < t.nways do
    incr probes;
    let i = base + !w in
    if t.pids.(i) = p && t.vpns.(i) = vpn then slot := i else incr w
  done;
  (!slot, !probes)

let lookup t ~pid ~vpn =
  let slot, probes = find_way t ~pid ~vpn in
  t.probes <- t.probes + probes;
  if slot >= 0 then begin
    t.hits <- t.hits + 1;
    t.stamps.(slot) <- next_tick t;
    Some t.frames.(slot)
  end
  else begin
    t.misses <- t.misses + 1;
    None
  end

let contains t ~pid ~vpn = fst (find_way t ~pid ~vpn) >= 0

let peek t ~pid ~vpn =
  let slot = fst (find_way t ~pid ~vpn) in
  if slot < 0 then None else Some t.frames.(slot)

let iter_valid t f =
  for i = 0 to t.config.entries - 1 do
    if t.pids.(i) >= 0 then
      f ~pid:(Pid.of_int t.pids.(i)) ~vpn:t.vpns.(i) ~frame:t.frames.(i)
  done

let insert t ~pid ~vpn ~frame =
  let p = Pid.to_int pid in
  let base = set_slice t (set_index t ~pid ~vpn) in
  (* Refresh in place if present. *)
  let existing = ref (-1) in
  let free = ref (-1) in
  let lru = ref base in
  for w = 0 to t.nways - 1 do
    let i = base + w in
    if t.pids.(i) = p && t.vpns.(i) = vpn then existing := i;
    if t.pids.(i) < 0 && !free < 0 then free := i;
    if t.stamps.(i) < t.stamps.(!lru) then lru := i
  done;
  if !existing >= 0 then begin
    t.frames.(!existing) <- frame;
    t.stamps.(!existing) <- next_tick t;
    None
  end
  else begin
    let slot, evicted =
      if !free >= 0 then (!free, None)
      else begin
        t.evictions <- t.evictions + 1;
        (!lru, Some (Pid.of_int t.pids.(!lru), t.vpns.(!lru), t.frames.(!lru)))
      end
    in
    if t.pids.(slot) < 0 then t.valid <- t.valid + 1;
    t.pids.(slot) <- p;
    t.vpns.(slot) <- vpn;
    t.frames.(slot) <- frame;
    t.stamps.(slot) <- next_tick t;
    evicted
  end

let clear_slot t i =
  t.pids.(i) <- -1;
  t.vpns.(i) <- -1;
  t.frames.(i) <- -1;
  t.stamps.(i) <- 0

let invalidate t ~pid ~vpn =
  let slot = fst (find_way t ~pid ~vpn) in
  if slot < 0 then false
  else begin
    clear_slot t slot;
    t.valid <- t.valid - 1;
    true
  end

let invalidate_process t ~pid =
  let p = Pid.to_int pid in
  let dropped = ref 0 in
  for i = 0 to t.config.entries - 1 do
    if t.pids.(i) = p then begin
      clear_slot t i;
      incr dropped
    end
  done;
  t.valid <- t.valid - !dropped;
  !dropped

let valid_lines t = t.valid

let hits t = t.hits

let misses t = t.misses

let evictions t = t.evictions

let probe_cost_entries t = t.probes

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.probes <- 0

let size_bytes t = t.config.entries * 4
