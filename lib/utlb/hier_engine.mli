(** The Hierarchical-UTLB mechanism (the paper's "UTLB").

    Glues together the per-process user-level state (pin bit vector,
    replacement tracker), the device-driver state (host-resident
    hierarchical translation table, OS pin/unpin), and the NI state
    (Shared UTLB-Cache with prefetching) and executes translation
    lookups the way Figure 2's pseudo-code describes:

    + user-level check of the pin bit vector;
    + on a check miss, an ioctl that pins the missing pages (optionally
      pre-pinning [prepin] contiguous pages) and installs their frames
      in the translation table, evicting/unpinning victims chosen by the
      configured replacement policy when the per-process pinned-page
      limit is reached;
    + an NI lookup per page in the Shared UTLB-Cache; on a miss, the NI
      DMAs [prefetch] consecutive entries from the translation table and
      fills the cache (entries still holding the garbage frame are not
      cached).

    The engine is deterministic from its seed and accumulates a
    {!Report.t}. It is used both by the trace-driven simulator and
    (page at a time) by the online VMMC integration. It satisfies
    {!Engine_intf.S} (the driver packs it as the ["utlb"] mechanism). *)

val mechanism : string
(** ["utlb"]. *)

type config = {
  cache : Ni_cache.config;
  prefetch : int;  (** Entries fetched per NI miss, >= 1. *)
  prepin : int;  (** Contiguous pages pinned per check miss, >= 1. *)
  policy : Replacement.policy;
  memory_limit_pages : int option;  (** Per-process pinned-page cap. *)
}

val default_config : config
(** The paper's implementation defaults: 8 K-entry direct-mapped cache
    with index offsetting, no prefetch, no pre-pin, LRU, no limit. *)

type t

val create :
  ?host:Utlb_mem.Host_memory.t ->
  ?sanitizer:Utlb_sim.Sanitizer.t ->
  ?obs:Utlb_obs.Scope.t ->
  ?faults:Utlb_fault.Injector.t ->
  ?tenancy:Utlb_tenant.Arbiter.t ->
  seed:int64 ->
  config ->
  t
(** With [tenancy], the arbiter is bound to the Shared UTLB-Cache
    geometry: tenant set windows partition the cache, pin requests are
    admitted against the tenant quota (the process first shrinks
    itself, then the shortfall is denied and the pages stay unpinned —
    safe by design), and every lookup/NI access/eviction is tagged with
    its tenant for the report's [isolation] breakdown.
    A private 256 MB host is created when none is supplied. With
    [sanitizer], the engine shadows its own execution: every lookup
    re-checks the touched cache entries against the host translation,
    NI cache fills reject garbage/unpinned frames, and process removal
    verifies pin/unpin balance. Violations are reported to the
    sanitizer (codes UV01-UV08, see {!Utlb_check.Invariant}). With
    [obs], every check miss, pre-pin, pin/unpin, cache hit/miss/evict,
    entry fetch, and table-swap interrupt is emitted through the scope.
    With [faults], NI misses may absorb injected DMA fetch failures
    (retried with exponential backoff; an exhausted budget falls back
    to interrupt-path service of the faulting entry), spurious cache
    invalidations, and table swap-outs — every recovery is counted in
    the report's [fault_recoveries].
    @raise Invalid_argument on a non-positive prefetch/prepin or an
    invalid cache geometry. *)

val config : t -> config

val host : t -> Utlb_mem.Host_memory.t

val cache : t -> Ni_cache.t

val classifier : t -> Miss_classifier.t

val add_process : t -> Utlb_mem.Pid.t -> unit
(** Idempotent. Allocates the process's translation table and user
    lookup state. *)

val remove_process : t -> Utlb_mem.Pid.t -> int
(** Process exit: unpin every page the process still holds, drop its
    Shared UTLB-Cache lines and translation table. Returns the number
    of pages released. Unknown processes release 0. *)

val processes : t -> Utlb_mem.Pid.t list
(** Live processes, ascending pid. *)

val table : t -> Utlb_mem.Pid.t -> Translation_table.t
(** @raise Invalid_argument for an unknown process. *)

val pinned_pages : t -> Utlb_mem.Pid.t -> int

type outcome = {
  check_miss : bool;
  pages_pinned : int;
  pin_calls : int;
  pages_unpinned : int;
  unpin_calls : int;
  ni_accesses : int;
  ni_misses : int;
  entries_fetched : int;
}

val lookup : t -> pid:Utlb_mem.Pid.t -> vpn:int -> npages:int -> outcome
(** Translate one communication buffer. Unknown processes are admitted
    on first use.
    @raise Invalid_argument if [npages < 1]. *)

val is_pinned : t -> pid:Utlb_mem.Pid.t -> vpn:int -> bool

val translate : t -> pid:Utlb_mem.Pid.t -> vpn:int -> int option
(** What the NI would read for this page right now (cache or table),
    without side effects. *)

val report : t -> label:string -> Report.t
(** Snapshot of the accumulated counters. *)

val remove_and_report : t -> label:string -> Report.t
(** Remove every live process (auditing the pin ledger when a
    sanitizer is present), then snapshot the counters. *)

val run_invariants : t -> unit
(** Full invariant sweep (no-op without a sanitizer): every Shared
    UTLB-Cache line must agree with its process's translation table and
    the host page table and point at a pinned, non-garbage frame; every
    process's pin accounting must agree across the user bit vector, the
    host's incremental counter, and a full page-table walk; and the
    miss classifier's shadow cache must be structurally consistent.
    Intended at quiescent points (end of run, between phases). *)

val stepper : config -> Stepper.semantics
(** Step-level protocol view for [utlbcheck explore]: host-table
    semantics ({!Stepper.Hier}) with this config's pre-pin window and
    pinned-page limit. *)

val cost_paths : config -> npages:int -> Stepper.Cost.profile
(** Worst-case priced control paths of one [npages]-page translation
    under this configuration, for [utlbcheck bound]
    ({!Engine_intf.S.cost_paths}). *)
