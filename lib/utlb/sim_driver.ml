module Trace = Utlb_trace.Trace
module Record = Utlb_trace.Record
module Workloads = Utlb_trace.Workloads

type mechanism =
  | Utlb of Hier_engine.config
  | Intr of Intr_engine.config
  | Per_process of Pp_engine.config

let default_seed = 0x5EED_CAFEL

let run ?(seed = default_seed) ?sanitizer ?label mechanism trace =
  match mechanism with
  | Utlb config ->
    let engine = Hier_engine.create ?sanitizer ~seed config in
    Trace.iter trace (fun (r : Record.t) ->
        ignore
          (Hier_engine.lookup engine ~pid:r.pid ~vpn:r.vpn ~npages:r.npages));
    Hier_engine.run_invariants engine;
    Hier_engine.report engine ~label:(Option.value ~default:"utlb" label)
  | Intr config ->
    let engine = Intr_engine.create ?sanitizer ~seed config in
    Trace.iter trace (fun (r : Record.t) ->
        ignore
          (Intr_engine.lookup engine ~pid:r.pid ~vpn:r.vpn ~npages:r.npages));
    Intr_engine.run_invariants engine;
    Intr_engine.report engine ~label:(Option.value ~default:"intr" label)
  | Per_process config ->
    let engine = Pp_engine.create ?sanitizer ~seed config in
    Trace.iter trace (fun (r : Record.t) ->
        ignore
          (Pp_engine.lookup engine ~pid:r.pid ~vpn:r.vpn ~npages:r.npages));
    Pp_engine.run_invariants engine;
    Pp_engine.report engine ~label:(Option.value ~default:"per-process" label)

let run_workload ?(seed = default_seed) ?sanitizer mechanism
    (spec : Workloads.spec) =
  let trace = spec.Workloads.generate ~seed in
  run ~seed ?sanitizer ~label:spec.Workloads.name mechanism trace

let compare_mechanisms ?(seed = default_seed) ~cache_entries
    ~memory_limit_pages (spec : Workloads.spec) =
  let cache =
    { Ni_cache.entries = cache_entries; associativity = Ni_cache.Direct }
  in
  let trace = spec.Workloads.generate ~seed in
  let utlb =
    run ~seed ~label:(spec.Workloads.name ^ "/utlb")
      (Utlb { Hier_engine.default_config with cache; memory_limit_pages })
      trace
  in
  let intr =
    run ~seed ~label:(spec.Workloads.name ^ "/intr")
      (Intr { Intr_engine.cache; memory_limit_pages })
      trace
  in
  (utlb, intr)
