module Trace = Utlb_trace.Trace
module Record = Utlb_trace.Record
module Workloads = Utlb_trace.Workloads

type mechanism =
  | Utlb of Hier_engine.config
  | Intr of Intr_engine.config
  | Per_process of Pp_engine.config

type packed = Engine_intf.packed =
  | Packed : (module Engine_intf.S with type config = 'c) * 'c -> packed

let pack = function
  | Utlb config -> Packed ((module Hier_engine), config)
  | Intr config -> Packed ((module Intr_engine), config)
  | Per_process config -> Packed ((module Pp_engine), config)

let mechanism_name (Packed ((module E), _)) = E.mechanism

let default_seed = 0x5EED_CAFEL

let src =
  Logs.Src.create "utlb.driver" ~doc:"Trace-driven simulation driver"

module Log = (val Logs.src_log src : Logs.LOG)

let load_trace_lenient ic =
  Trace.load_lenient
    ~on_skip:(fun ~line:_ msg ->
      Log.warn (fun m -> m "skipping malformed trace record: %s" msg))
    ic

let run_packed ?(seed = default_seed) ?sanitizer ?obs ?faults ?tenancy
    ?(records_skipped = 0) ?label (Packed ((module E), config)) trace =
  let engine = E.create ?sanitizer ?obs ?faults ?tenancy ~seed config in
  (* The observed/unobserved decision is hoisted out of the record loop
     so the unobserved hot path tests nothing per record. *)
  (match obs with
  | None ->
    Trace.iter trace (fun (r : Record.t) ->
        ignore (E.lookup engine ~pid:r.pid ~vpn:r.vpn ~npages:r.npages))
  | Some o ->
    Trace.iter trace (fun (r : Record.t) ->
        (* One tick per record: the scope emits the Lookup event, closes
           the previous lookup's cost attribution, and carries the pid
           for the engine's own emissions. *)
        Utlb_obs.Scope.tick o
          ~pid:(Utlb_mem.Pid.to_int r.pid)
          ~vpn:r.vpn ~npages:r.npages ();
        ignore (E.lookup engine ~pid:r.pid ~vpn:r.vpn ~npages:r.npages));
    Utlb_obs.Scope.finish o);
  E.run_invariants engine;
  let report = E.report engine ~label:(Option.value ~default:E.mechanism label) in
  if records_skipped = 0 then report
  else
    {
      report with
      Report.records_skipped = report.Report.records_skipped + records_skipped;
    }

let run ?seed ?sanitizer ?obs ?faults ?tenancy ?records_skipped ?label
    mechanism trace =
  run_packed ?seed ?sanitizer ?obs ?faults ?tenancy ?records_skipped ?label
    (pack mechanism) trace

let run_workload ?seed ?sanitizer ?obs ?faults ?tenancy mechanism
    (spec : Workloads.spec) =
  let seed = Option.value ~default:default_seed seed in
  let trace = spec.Workloads.generate ~seed in
  run ~seed ?sanitizer ?obs ?faults ?tenancy ~label:spec.Workloads.name
    mechanism trace

let compare_mechanisms ?(seed = default_seed) ~cache_entries
    ~memory_limit_pages (spec : Workloads.spec) =
  let cache =
    { Ni_cache.entries = cache_entries; associativity = Ni_cache.Direct }
  in
  let trace = spec.Workloads.generate ~seed in
  let utlb =
    run ~seed ~label:(spec.Workloads.name ^ "/utlb")
      (Utlb { Hier_engine.default_config with cache; memory_limit_pages })
      trace
  in
  let intr =
    run ~seed ~label:(spec.Workloads.name ^ "/intr")
      (Intr { Intr_engine.cache; memory_limit_pages })
      trace
  in
  (utlb, intr)

(* ------------------------------------------------------------------ *)
(* Mechanism registry                                                  *)

module Registry = struct
  type entry = {
    name : string;
    doc : string;
    of_params : (string * string) list -> packed;
  }

  let table : (string, entry) Hashtbl.t = Hashtbl.create 8

  let register ~name ~doc of_params =
    let key = String.lowercase_ascii name in
    if Hashtbl.mem table key then
      invalid_arg
        (Printf.sprintf "Sim_driver.Registry.register: %S already registered"
           name);
    Hashtbl.replace table key { name = key; doc; of_params }

  let find name = Hashtbl.find_opt table (String.lowercase_ascii name)

  let mechanisms () =
    Hashtbl.fold (fun _ e acc -> e :: acc) table []
    |> List.sort (fun a b -> String.compare a.name b.name)
end

(* Parameter parsing shared by the built-in registrations. Unknown keys
   are deliberately ignored so that one campaign grid can carry axes
   for several mechanisms (e.g. a prefetch axis that only the UTLB
   engine interprets). *)

let bad key value expected =
  invalid_arg
    (Printf.sprintf "mechanism parameter %s=%S: expected %s" key value
       expected)

let int_param params key ~default =
  match List.assoc_opt key params with
  | None -> default
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n -> n
    | None -> bad key s "an integer")

let assoc_param params ~default =
  match List.assoc_opt "assoc" params with
  | None -> default
  | Some s -> (
    match Ni_cache.associativity_of_string (String.trim s) with
    | Some a -> a
    | None -> bad "assoc" s "direct, direct-nohash, 2-way, or 4-way")

let policy_param params ~default =
  match List.assoc_opt "policy" params with
  | None -> default
  | Some s -> (
    match Replacement.policy_of_string (String.trim s) with
    | Some p -> p
    | None -> bad "policy" s "lru, mru, lfu, mfu, or random")

let limit_param params =
  match List.assoc_opt "limit-mb" params with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some mb -> Some (mb * 256) (* 4 KB pages per MB *)
    | None -> bad "limit-mb" s "an integer")

let cache_param params =
  {
    Ni_cache.entries = int_param params "entries" ~default:8192;
    associativity = assoc_param params ~default:Ni_cache.Direct;
  }

let () =
  Registry.register ~name:Hier_engine.mechanism
    ~doc:
      "Hierarchical-UTLB with the Shared UTLB-Cache (params: entries, \
       assoc, prefetch, prepin, policy, limit-mb)"
    (fun params ->
      Packed
        ( (module Hier_engine),
          {
            Hier_engine.cache = cache_param params;
            prefetch = int_param params "prefetch" ~default:1;
            prepin = int_param params "prepin" ~default:1;
            policy = policy_param params ~default:Replacement.Lru;
            memory_limit_pages = limit_param params;
          } ));
  Registry.register ~name:Intr_engine.mechanism
    ~doc:
      "interrupt-based baseline (params: entries, assoc, limit-mb)"
    (fun params ->
      Packed
        ( (module Intr_engine),
          {
            Intr_engine.cache = cache_param params;
            memory_limit_pages = limit_param params;
          } ));
  Registry.register ~name:Pp_engine.mechanism
    ~doc:
      "per-process UTLB tables carved from one SRAM budget (params: \
       budget, processes, policy)"
    (fun params ->
      Packed
        ( (module Pp_engine),
          {
            Pp_engine.sram_budget_entries =
              int_param params "budget" ~default:8192;
            processes = int_param params "processes" ~default:5;
            policy = policy_param params ~default:Replacement.Lru;
          } ));
  Registry.register ~name:Victima_engine.mechanism
    ~doc:
      "Hierarchical-UTLB with an L2 victim store behind the Shared \
       UTLB-Cache (params: entries, assoc, prefetch, prepin, policy, \
       limit-mb, victim-entries)"
    (fun params ->
      Packed
        ( (module Victima_engine),
          {
            Victima_engine.cache = cache_param params;
            prefetch = int_param params "prefetch" ~default:1;
            prepin = int_param params "prepin" ~default:1;
            policy = policy_param params ~default:Replacement.Lru;
            memory_limit_pages = limit_param params;
            victim_entries = int_param params "victim-entries" ~default:2048;
          } ));
  Registry.register ~name:Utopia_engine.mechanism
    ~doc:
      "Hierarchical-UTLB with a hash-constrained RestSeg zone in front \
       of the Shared UTLB-Cache (params: entries, assoc, prefetch, \
       prepin, policy, limit-mb, rest-sets, rest-ways)"
    (fun params ->
      Packed
        ( (module Utopia_engine),
          {
            Utopia_engine.cache = cache_param params;
            prefetch = int_param params "prefetch" ~default:1;
            prepin = int_param params "prepin" ~default:1;
            policy = policy_param params ~default:Replacement.Lru;
            memory_limit_pages = limit_param params;
            rest_sets = int_param params "rest-sets" ~default:2048;
            rest_ways = int_param params "rest-ways" ~default:4;
          } ))
