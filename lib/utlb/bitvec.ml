(* Packed bitset on a flat, growable int array. Words hold 62 bits
   (not 63) so every mask stays positive on 63-bit native ints, which
   keeps the word-wise comparisons below branch-free. The array grows
   on demand, so a 4 GB address space with a few thousand pinned pages
   still costs only as many words as the highest pinned page needs. *)
let bits_per_chunk = 62

let full_chunk = (1 lsl bits_per_chunk) - 1

type t = {
  mutable chunks : int array;
  mutable population : int;
}

let create () = { chunks = Array.make 64 0; population = 0 }

let check_vpn vpn = if vpn < 0 then invalid_arg "Bitvec: negative vpn"

let locate vpn = (vpn / bits_per_chunk, vpn mod bits_per_chunk)

let grow t idx =
  let cap = ref (Array.length t.chunks) in
  while idx >= !cap do
    cap := !cap * 2
  done;
  let bigger = Array.make !cap 0 in
  Array.blit t.chunks 0 bigger 0 (Array.length t.chunks);
  t.chunks <- bigger

(* Reads past the allocated prefix see zero bits; only [set] grows. *)
let chunk t idx = if idx < Array.length t.chunks then t.chunks.(idx) else 0

let test t vpn =
  check_vpn vpn;
  let idx, bit = locate vpn in
  chunk t idx land (1 lsl bit) <> 0

let set t vpn =
  check_vpn vpn;
  let idx, bit = locate vpn in
  if idx >= Array.length t.chunks then grow t idx;
  let word = t.chunks.(idx) in
  let mask = 1 lsl bit in
  if word land mask = 0 then begin
    t.chunks.(idx) <- word lor mask;
    t.population <- t.population + 1
  end

let clear t vpn =
  check_vpn vpn;
  let idx, bit = locate vpn in
  if idx < Array.length t.chunks then begin
    let word = t.chunks.(idx) in
    let mask = 1 lsl bit in
    if word land mask <> 0 then begin
      t.chunks.(idx) <- word land lnot mask;
      t.population <- t.population - 1
    end
  end

let check_range count =
  if count <= 0 then invalid_arg "Bitvec: count must be positive"

(* Kernighan popcount; words are 62-bit so the loop runs at most 62
   times and usually far fewer. *)
let popcount word =
  let n = ref 0 in
  let w = ref word in
  while !w <> 0 do
    w := !w land (!w - 1);
    incr n
  done;
  !n

let recount t = Array.fold_left (fun n word -> n + popcount word) 0 t.chunks

(* Mask of the bits of [chunk idx] that fall inside [vpn, vpn+count):
   all 62 bits except a low and a high margin. *)
let range_mask ~lo ~hi = full_chunk lsr (bits_per_chunk - 1 - hi) land lnot ((1 lsl lo) - 1)

let first_clear t ~vpn ~count =
  check_vpn vpn;
  check_range count;
  let last = vpn + count - 1 in
  let idx0, bit0 = locate vpn in
  let idx1, bit1 = locate last in
  let rec scan idx =
    if idx > idx1 then None
    else
      let lo = if idx = idx0 then bit0 else 0 in
      let hi = if idx = idx1 then bit1 else bits_per_chunk - 1 in
      let mask = range_mask ~lo ~hi in
      let missing = lnot (chunk t idx) land mask in
      if missing = 0 then scan (idx + 1)
      else begin
        (* Lowest zero bit of the word inside the range. *)
        let bit = ref lo in
        while missing land (1 lsl !bit) = 0 do
          incr bit
        done;
        Some ((idx * bits_per_chunk) + !bit)
      end
  in
  scan idx0

let all_set t ~vpn ~count = first_clear t ~vpn ~count = None

(* Number of clear pages in the range, word-wise. *)
let clear_count t ~vpn ~count =
  check_vpn vpn;
  check_range count;
  let last = vpn + count - 1 in
  let idx0, bit0 = locate vpn in
  let idx1, bit1 = locate last in
  let n = ref 0 in
  for idx = idx0 to idx1 do
    let lo = if idx = idx0 then bit0 else 0 in
    let hi = if idx = idx1 then bit1 else bits_per_chunk - 1 in
    let mask = range_mask ~lo ~hi in
    n := !n + popcount (lnot (chunk t idx) land mask)
  done;
  !n

let iter_clear_runs t ~vpn ~count f =
  check_vpn vpn;
  check_range count;
  let last = vpn + count - 1 in
  let run_start = ref (-1) in
  let flush upto =
    if !run_start >= 0 then begin
      f ~vpn:!run_start ~count:(upto - !run_start);
      run_start := -1
    end
  in
  let page = ref vpn in
  while !page <= last do
    let idx, bit = locate !page in
    let word = chunk t idx in
    if word = full_chunk then begin
      (* Whole word set: close any open run and skip to the next word. *)
      flush !page;
      page := (idx + 1) * bits_per_chunk
    end
    else begin
      if word land (1 lsl bit) = 0 then begin
        if !run_start < 0 then run_start := !page
      end
      else flush !page;
      incr page
    end
  done;
  flush (last + 1)

let clear_pages t ~vpn ~count =
  let acc = ref [] in
  iter_clear_runs t ~vpn ~count (fun ~vpn ~count ->
      for page = vpn to vpn + count - 1 do
        acc := page :: !acc
      done);
  List.rev !acc

let population t = t.population
