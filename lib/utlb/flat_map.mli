(** Open-addressed hash map from non-negative int keys to a pair of
    int values — the flat replacement for tuple-keyed Hashtbls on the
    translation hot path. Linear probing over a power-of-two table,
    tombstone deletion, no allocation per operation.

    Lookups hand back a transient slot: an index valid until the next
    [add] (which may rehash). Callers probe once with [find] and read
    or write the payload through the slot accessors. *)

type t

val create : unit -> t

val length : t -> int
(** Number of live entries. *)

val find : t -> int -> int
(** Slot holding the key, or -1. @raise Invalid_argument on a negative
    key. *)

val mem : t -> int -> bool

val add : t -> int -> v0:int -> v1:int -> int
(** Insert or overwrite; returns the slot now holding the key. *)

val remove : t -> int -> unit

val value0 : t -> int -> int
(** Payload reads/writes through a slot returned by [find]/[add]. *)

val value1 : t -> int -> int

val set_value0 : t -> int -> int -> unit

val set_value1 : t -> int -> int -> unit

val key_at : t -> int -> int
(** Key stored in a live slot. *)

val iter : t -> (int -> v0:int -> v1:int -> unit) -> unit
(** Visit live entries in unspecified order. *)
