type t = {
  label : string;
  lookups : int;
  check_misses : int;
  ni_miss_lookups : int;
  ni_page_accesses : int;
  ni_page_misses : int;
  pin_calls : int;
  pages_pinned : int;
  unpin_calls : int;
  pages_unpinned : int;
  interrupts : int;
  entries_fetched : int;
  compulsory : int;
  capacity : int;
  conflict : int;
  fault_recoveries : int;
  records_skipped : int;
  spills : int;
  recalls : int;
  restseg_hits : int;
  isolation : Utlb_tenant.Isolation.t option;
}

let empty ~label =
  {
    label;
    lookups = 0;
    check_misses = 0;
    ni_miss_lookups = 0;
    ni_page_accesses = 0;
    ni_page_misses = 0;
    pin_calls = 0;
    pages_pinned = 0;
    unpin_calls = 0;
    pages_unpinned = 0;
    interrupts = 0;
    entries_fetched = 0;
    compulsory = 0;
    capacity = 0;
    conflict = 0;
    fault_recoveries = 0;
    records_skipped = 0;
    spills = 0;
    recalls = 0;
    restseg_hits = 0;
    isolation = None;
  }

let add a b =
  {
    label = (if String.equal a.label "" then b.label else a.label);
    lookups = a.lookups + b.lookups;
    check_misses = a.check_misses + b.check_misses;
    ni_miss_lookups = a.ni_miss_lookups + b.ni_miss_lookups;
    ni_page_accesses = a.ni_page_accesses + b.ni_page_accesses;
    ni_page_misses = a.ni_page_misses + b.ni_page_misses;
    pin_calls = a.pin_calls + b.pin_calls;
    pages_pinned = a.pages_pinned + b.pages_pinned;
    unpin_calls = a.unpin_calls + b.unpin_calls;
    pages_unpinned = a.pages_unpinned + b.pages_unpinned;
    interrupts = a.interrupts + b.interrupts;
    entries_fetched = a.entries_fetched + b.entries_fetched;
    compulsory = a.compulsory + b.compulsory;
    capacity = a.capacity + b.capacity;
    conflict = a.conflict + b.conflict;
    fault_recoveries = a.fault_recoveries + b.fault_recoveries;
    records_skipped = a.records_skipped + b.records_skipped;
    spills = a.spills + b.spills;
    recalls = a.recalls + b.recalls;
    restseg_hits = a.restseg_hits + b.restseg_hits;
    isolation = Utlb_tenant.Isolation.merge_opt a.isolation b.isolation;
  }

let merge ?label reports =
  let label =
    match label with
    | Some l -> l
    | None -> (
      match reports with
      | [] -> "merged"
      | r :: rest ->
        if List.for_all (fun x -> String.equal x.label r.label) rest then
          r.label
        else "merged")
  in
  List.fold_left add (empty ~label) reports

let per_lookup t n =
  if t.lookups = 0 then 0.0 else float_of_int n /. float_of_int t.lookups

let check_miss_rate t = per_lookup t t.check_misses

let ni_miss_rate t = per_lookup t t.ni_miss_lookups

let unpin_rate t = per_lookup t t.pages_unpinned

let pin_pages_per_call t =
  if t.pin_calls = 0 then 1.0
  else float_of_int t.pages_pinned /. float_of_int t.pin_calls

let miss_breakdown t =
  let total = t.compulsory + t.capacity + t.conflict in
  if total = 0 then (0.0, 0.0, 0.0)
  else begin
    let scale = ni_miss_rate t /. float_of_int total in
    ( float_of_int t.compulsory *. scale,
      float_of_int t.capacity *. scale,
      float_of_int t.conflict *. scale )
  end

let rates t =
  {
    Cost_model.check_miss = check_miss_rate t;
    ni_miss = ni_miss_rate t;
    unpin = unpin_rate t;
    pin_pages = pin_pages_per_call t;
  }

let utlb_cost_us ?(prefetch = 1) model t =
  Cost_model.utlb_lookup_us model ~prefetch (rates t)

let intr_cost_us model t = Cost_model.intr_lookup_us model (rates t)

let victima_cost_us ?(prefetch = 1) model t =
  (* A recall serves the NI miss from the on-host victim store (one
     direct read) instead of the full prefetch-sized table walk. *)
  let full = utlb_cost_us ~prefetch model t in
  let saving_per_recall =
    Float.max 0.0
      (Cost_model.ni_miss_us model ~entries:prefetch
      -. Cost_model.ni_direct_us model)
  in
  Float.max
    (Cost_model.user_check_us model)
    (full -. (per_lookup t t.recalls *. saving_per_recall))

let utopia_cost_us ?(prefetch = 1) model t =
  (* A RestSeg hit resolves by hashed direct placement: no set walk,
     no fetch — priced as the direct-mapped probe. *)
  let full = utlb_cost_us ~prefetch model t in
  let saving_per_hit =
    Float.max 0.0 (Cost_model.ni_hit_us model -. Cost_model.ni_direct_us model)
  in
  Float.max
    (Cost_model.user_check_us model)
    (full -. (per_lookup t t.restseg_hits *. saving_per_hit))

let amortized_pin_us model t =
  if t.lookups = 0 || t.pin_calls = 0 then 0.0
  else begin
    let pages = int_of_float (Float.max 1.0 (Float.round (pin_pages_per_call t))) in
    Cost_model.pin_us model ~pages *. float_of_int t.pin_calls
    /. float_of_int t.lookups
  end

let amortized_unpin_us model t =
  if t.lookups = 0 || t.unpin_calls = 0 then 0.0
  else
    Cost_model.unpin_us model ~pages:1 *. float_of_int t.unpin_calls
    /. float_of_int t.lookups

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s: lookups=%d check=%.3f ni=%.3f unpin=%.3f pins=%d(%0.1fpp) \
     unpins=%d intr=%d 3c=(%d,%d,%d)@]"
    t.label t.lookups (check_miss_rate t) (ni_miss_rate t) (unpin_rate t)
    t.pin_calls (pin_pages_per_call t) t.unpin_calls t.interrupts t.compulsory
    t.capacity t.conflict;
  (* Engine-specific counters only appear when the engine uses them, so
     reports from the 1998 engines render byte-identically. *)
  if t.spills > 0 || t.recalls > 0 then
    Format.fprintf ppf " spills=%d recalls=%d" t.spills t.recalls;
  if t.restseg_hits > 0 then Format.fprintf ppf " restseg=%d" t.restseg_hits
