(** Three-C classification of Shared UTLB-Cache misses (Figure 7).

    Uses the standard methodology (Hill 1987, cited by the paper): a
    miss is {e compulsory} on the first-ever reference to a
    (process, page) pair; otherwise it is {e capacity} if a
    fully-associative LRU cache with the same entry count would also
    have missed, and {e conflict} if only the real (set-indexed) cache
    missed.

    Feed the classifier every access: [note_hit] on real-cache hits
    keeps the shadow LRU stack in sync; [classify] on real-cache misses
    returns the miss kind and updates the shadow. *)

type kind = Compulsory | Capacity | Conflict

val kind_name : kind -> string

type t

val create : capacity:int -> t
(** [capacity] = the real cache's entry count.
    @raise Invalid_argument if not positive. *)

val note_hit : t -> pid:Utlb_mem.Pid.t -> vpn:int -> unit

val classify : t -> pid:Utlb_mem.Pid.t -> vpn:int -> kind

val note_invalidate : t -> pid:Utlb_mem.Pid.t -> vpn:int -> unit
(** Mirror an unpin-driven invalidation into the shadow cache so later
    misses on that page are not blamed on capacity. *)

val compulsory : t -> int

val capacity_misses : t -> int

val conflict : t -> int

val self_check : t -> string list
(** Structural divergence check of the shadow cache: recency list,
    hash table, and size/capacity accounting must agree. Returns one
    description per inconsistency; [[]] when healthy. The invariant
    sanitizer reports these as shadow-cache divergence. *)

val corrupt_for_testing : t -> unit
(** Deliberately desynchronise the shadow structures so tests can
    assert that {!self_check} (and the sanitizer built on it) detects
    divergence. Never call outside tests. *)
