(* Step-level view of the pin protocol: the transition system
   [utlbcheck explore] enumerates. See stepper.mli for the model. *)

module Record = Utlb_trace.Record

(* {2 Semantics} *)

type semantics =
  | Hier of { prepin : int; limit_pages : int option }
  | Intr of { entries : int; limit_pages : int option }
  | Static of { processes : int; share : int }
  | Victima of { prepin : int; limit_pages : int option }
  | Utopia of { prepin : int; limit_pages : int option }

let mechanism = function
  | Hier _ -> "utlb"
  | Intr _ -> "intr"
  | Static _ -> "per-process"
  | Victima _ -> "victima"
  | Utopia _ -> "utopia"

(* {2 Requests, mutants, scope} *)

type request = { vpn : int; npages : int; op : Record.op }

let request ?(op = Record.Send) ~vpn ~npages () =
  if npages < 1 then invalid_arg "Stepper.request: npages < 1";
  if vpn < 0 then invalid_arg "Stepper.request: vpn < 0";
  { vpn; npages; op }

type mutant = Blocking_evict | Leak_unpin | No_shootdown | Early_unpin

let mutants = [ Blocking_evict; Leak_unpin; No_shootdown; Early_unpin ]

let mutant_name = function
  | Blocking_evict -> "blocking-evict"
  | Leak_unpin -> "leak-unpin"
  | No_shootdown -> "no-shootdown"
  | Early_unpin -> "early-unpin"

let mutant_of_string s =
  List.find_opt (fun m -> mutant_name m = String.trim s) mutants

let mutant_code = function
  | Blocking_evict -> "UP20"
  | Leak_unpin -> "UP21"
  | No_shootdown -> "UP22"
  | Early_unpin -> "UP23"

type scope = {
  procs : int;
  pages : int;
  sets : int;
  requests : int;
  page_cap : int;
  program : (int * request) list option;
  mutant : mutant option;
}

let default_scope =
  {
    procs = 2;
    pages = 2;
    sets = 4;
    requests = 2;
    page_cap = 4;
    program = None;
    mutant = None;
  }

(* {2 Actions} *)

type action =
  | Issue of { pid : int; req : request }
  | Irq of { pid : int; vpn : int }
  | Pin of { pid : int; vpn : int }
  | Publish of { pid : int; vpn : int }
  | Fetch of { pid : int; vpn : int }
  | Evict of { pid : int; vpn : int }
  | Use of { pid : int; vpn : int }
  | Complete of { pid : int }
  | Unpin of { pid : int; vpn : int }

let pid_of = function
  | Issue { pid; _ }
  | Irq { pid; _ }
  | Pin { pid; _ }
  | Publish { pid; _ }
  | Fetch { pid; _ }
  | Evict { pid; _ }
  | Use { pid; _ }
  | Complete { pid }
  | Unpin { pid; _ } -> pid

let page_of = function
  | Issue _ | Complete _ -> None
  | Irq { pid; vpn }
  | Pin { pid; vpn }
  | Publish { pid; vpn }
  | Fetch { pid; vpn }
  | Evict { pid; vpn }
  | Use { pid; vpn }
  | Unpin { pid; vpn } -> Some (pid, vpn)

let action_label = function
  | Issue { pid; req } ->
    Printf.sprintf "issue(pid=%d vpn=%#x npages=%d)" pid req.vpn req.npages
  | Irq { pid; vpn } -> Printf.sprintf "irq(pid=%d vpn=%#x)" pid vpn
  | Pin { pid; vpn } -> Printf.sprintf "pin(pid=%d vpn=%#x)" pid vpn
  | Publish { pid; vpn } -> Printf.sprintf "publish(pid=%d vpn=%#x)" pid vpn
  | Fetch { pid; vpn } -> Printf.sprintf "fetch(pid=%d vpn=%#x)" pid vpn
  | Evict { pid; vpn } -> Printf.sprintf "evict(pid=%d vpn=%#x)" pid vpn
  | Use { pid; vpn } -> Printf.sprintf "use(pid=%d vpn=%#x)" pid vpn
  | Complete { pid } -> Printf.sprintf "complete(pid=%d)" pid
  | Unpin { pid; vpn } -> Printf.sprintf "unpin(pid=%d vpn=%#x)" pid vpn

(* {2 State} *)

type pin_sub = Irq_pending | Pin_pending | Publish_pending
type xfer_sub = Fetch_pending | Use_pending

type stage =
  | Pinning of { idx : int; sub : pin_sub }
  | Transfer of { idx : int; sub : xfer_sub }
  | Finishing

type activity = { req : request; stepped : int; stage : stage }

type pstate = { pid : int; left : int; act : activity option }

type state = {
  ps : pstate list;
  next_seq : int;
  pins : (int * int) list;
  table : (int * int) list;
  cache : (int * int) list;
  seen : int list;
}

(* All collections stay sorted so structurally equal states are the
   same OCaml value shape: the canonical hashing the explorer's
   visited set relies on. *)
let rec sorted_add x l =
  match l with
  | [] -> [ x ]
  | y :: rest ->
    let c = compare x y in
    if c < 0 then x :: l else if c = 0 then l else y :: sorted_add x rest
let sorted_remove x l = List.filter (fun y -> y <> x) l

let initial scope _sem =
  let ps =
    match scope.program with
    | Some prog ->
      let pids =
        List.sort_uniq compare (List.map (fun (pid, _) -> pid) prog)
      in
      List.map (fun pid -> { pid; left = 0; act = None }) pids
    | None ->
      List.init (max 1 scope.procs) (fun pid ->
          { pid; left = max 0 scope.requests; act = None })
  in
  { ps; next_seq = 0; pins = []; table = []; cache = []; seen = [] }

let pstate st pid = List.find (fun p -> p.pid = pid) st.ps

let update_pstate st pid f =
  { st with ps = List.map (fun p -> if p.pid = pid then f p else p) st.ps }

let in_active st pid vpn =
  match (pstate st pid).act with
  | None -> false
  | Some a -> vpn >= a.req.vpn && vpn < a.req.vpn + a.stepped
  | exception Not_found -> false

let capacity = function
  | Hier { limit_pages = Some l; _ }
  | Intr { limit_pages = Some l; _ }
  | Victima { limit_pages = Some l; _ }
  | Utopia { limit_pages = Some l; _ } -> l
  | Hier _ | Intr _ | Victima _ | Utopia _ -> max_int
  | Static { share; _ } -> share

let population st pid =
  List.length (List.filter (fun (p, _) -> p = pid) st.pins)

(* Under intr, cached = pinned: evicting a line unpins its page, so
   lines of an in-flight span are protected. The hierarchical cache is
   only an accelerator (translations survive in the host table), so
   any line may be dropped harmlessly — and the same holds for the
   victima victim store and the utopia RestSeg, both of which are
   host-resident acceleration structures over the same pin ledger. *)
let protected_entry sem st (owner, vpn) =
  match sem with
  | Intr _ -> in_active st owner vpn
  | Hier _ | Static _ | Victima _ | Utopia _ -> false

let first_pin_sub = function
  | Intr _ -> Irq_pending
  | Hier _ | Static _ | Victima _ | Utopia _ -> Pin_pending

let first_xfer_sub = function
  | Static _ -> Use_pending
  | Hier _ | Intr _ | Victima _ | Utopia _ -> Fetch_pending

(* {2 Violations} *)

type severity = Error | Warning

type violation = {
  code : string;
  pid : int;
  severity : severity;
  message : string;
}

let max_vpn = Translation_table.max_vpn

(* Issue-time admission checks mirror Utlb_check.Protocol.step exactly
   (the differential fuzz test in test_explore.ml holds them to it). *)
let issue_checks sem st pid (req : request) =
  let n = req.npages in
  let viols = ref [] in
  let emit ?(severity = Error) code fmt =
    Printf.ksprintf
      (fun message -> viols := { code; pid; severity; message } :: !viols)
      fmt
  in
  if req.vpn + n - 1 > max_vpn then
    emit "UP02"
      "buffer [%#x, %#x] extends past the translation table (max vpn %#x); \
       the NI dereferences the garbage frame"
      req.vpn
      (req.vpn + n - 1)
      max_vpn;
  (match sem with
  | Hier { prepin; limit_pages }
  | Victima { prepin; limit_pages }
  | Utopia { prepin; limit_pages } -> (
    match limit_pages with
    | None -> ()
    | Some l ->
      if n > l then
        emit "UP01"
          "record pins %d pages at once but the per-process limit is %d \
           pages; in-flight pages are protected from eviction, so the \
           engine must break the limit"
          n l
      else if prepin > 1 && n + prepin - 1 > l then
        emit ~severity:Warning "UP05"
          "buffer of %d pages fits the %d-page limit but its pre-pin window \
           (%d) reaches %d pages; replacement may invalidate NI entries of \
           the in-flight buffer"
          n l prepin
          (n + prepin - 1))
  | Intr { entries; limit_pages } -> (
    if n > entries then
      emit "UP03"
        "buffer of %d pages is wider than the %d-entry cache; under cached \
         = pinned, self-conflict eviction unpins the first %d page(s) while \
         their transfer is in flight"
        n entries (n - entries);
    match limit_pages with
    | Some l when n > l ->
      emit "UP01"
        "record pins %d pages at once but the per-process limit is %d \
         pages; in-flight pages are protected from eviction, so the engine \
         must break the limit"
        n l
    | _ -> ())
  | Static { processes; share } ->
    if (not (List.mem pid st.seen)) && List.length st.seen >= processes then
      emit "UP04"
        "process %d is distinct process number %d but only %d per-process \
         tables are carved; the engine aborts"
        pid
        (List.length st.seen + 1)
        processes;
    if n > share then
      emit "UP04"
        "buffer of %d pages is wider than the %d-entry per-process table \
         share; every index is protected, eviction cannot free one, and \
         the engine aborts"
        n share);
  List.rev !viols

(* {2 Enabled actions} *)

let request_menu scope =
  List.concat_map
    (fun vpn ->
      List.map
        (fun n -> { vpn; npages = n; op = Record.Send })
        (List.init (max 1 scope.pages - vpn) (fun i -> i + 1)))
    (List.init (max 1 scope.pages) (fun v -> v))

let unprotected_victims sem st =
  List.filter (fun e -> not (protected_entry sem st e)) st.cache

let pin_blocked scope sem st pid vpn =
  (* The kernel reclaims (unpins) a victim before pinning past the
     population cap — unless nothing outside an in-flight span can be
     reclaimed, in which case the engine must break the limit (the
     UP01 scenario) and the pin proceeds. *)
  (not (List.mem (pid, vpn) st.pins))
  && population st pid >= capacity sem
  && scope.mutant <> Some Leak_unpin
  && List.exists
       (fun (p, w) -> p = pid && not (in_active st p w))
       st.pins

let enabled scope sem st =
  let acts = ref [] in
  let add a = acts := a :: !acts in
  List.iter
    (fun p ->
      match p.act with
      | None -> (
        match scope.program with
        | Some prog -> (
          match List.nth_opt prog st.next_seq with
          | Some (pid, req) when pid = p.pid -> add (Issue { pid; req })
          | _ -> ())
        | None ->
          if p.left > 0 then
            List.iter
              (fun req -> add (Issue { pid = p.pid; req }))
              (request_menu scope))
      | Some a -> (
        let v idx = a.req.vpn + idx in
        match a.stage with
        | Pinning { idx; sub = Irq_pending } ->
          add (Irq { pid = p.pid; vpn = v idx })
        | Pinning { idx; sub = Pin_pending } ->
          if not (pin_blocked scope sem st p.pid (v idx)) then
            add (Pin { pid = p.pid; vpn = v idx })
        | Pinning { idx; sub = Publish_pending } ->
          add (Publish { pid = p.pid; vpn = v idx })
        | Transfer { idx; sub = Fetch_pending } ->
          let vpn = v idx in
          if
            List.mem (p.pid, vpn) st.cache
            || List.length st.cache < scope.sets
          then add (Fetch { pid = p.pid; vpn })
          else begin
            (* Cache full: an eviction must free a set first. *)
            match unprotected_victims sem st with
            | _ :: _ as victims ->
              List.iter
                (fun (ep, ev) -> add (Evict { pid = ep; vpn = ev }))
                victims
            | [] ->
              if scope.mutant <> Some Blocking_evict then
                (* Every line is protected; the engine must evict one
                   anyway (the in-flight race apply flags as UP23).
                   The blocking-evict mutant instead refuses — and
                   deadlocks. *)
                List.iter
                  (fun (ep, ev) -> add (Evict { pid = ep; vpn = ev }))
                  st.cache
          end
        | Transfer { idx; sub = Use_pending } ->
          add (Use { pid = p.pid; vpn = v idx })
        | Finishing -> add (Complete { pid = p.pid })))
    st.ps;
  (match scope.mutant with
  | Some Leak_unpin -> ()
  | Some Early_unpin ->
    List.iter (fun (p, v) -> add (Unpin { pid = p; vpn = v })) st.pins
  | _ ->
    List.iter
      (fun (p, v) ->
        if not (in_active st p v) then add (Unpin { pid = p; vpn = v }))
      st.pins);
  List.sort_uniq compare !acts

(* {2 Applying an action} *)

let advance_pin sem (a : activity) =
  match a.stage with
  | Pinning { idx; sub } -> (
    let next_sub =
      match sub with
      | Irq_pending -> Some Pin_pending
      | Pin_pending -> Some Publish_pending
      | Publish_pending -> None
    in
    match next_sub with
    | Some sub -> { a with stage = Pinning { idx; sub } }
    | None ->
      if idx + 1 < a.stepped then
        { a with stage = Pinning { idx = idx + 1; sub = first_pin_sub sem } }
      else { a with stage = Transfer { idx = 0; sub = first_xfer_sub sem } })
  | Transfer _ | Finishing -> a

let advance_xfer sem (a : activity) =
  match a.stage with
  | Transfer { idx; sub } -> (
    match sub with
    | Fetch_pending -> { a with stage = Transfer { idx; sub = Use_pending } }
    | Use_pending ->
      if idx + 1 < a.stepped then
        {
          a with
          stage = Transfer { idx = idx + 1; sub = first_xfer_sub sem };
        }
      else { a with stage = Finishing })
  | Pinning _ | Finishing -> a

let step_activity st pid f =
  update_pstate st pid (fun p ->
      match p.act with
      | None -> p
      | Some a -> { p with act = Some (f a) })

let apply scope sem st action =
  match action with
  | Issue { pid; req } ->
    let viols = issue_checks sem st pid req in
    let stepped = max 1 (min req.npages scope.page_cap) in
    let act =
      Some
        { req; stepped; stage = Pinning { idx = 0; sub = first_pin_sub sem } }
    in
    let st =
      update_pstate st pid (fun p -> { p with left = max 0 (p.left - 1); act })
    in
    let st =
      {
        st with
        seen = sorted_add pid st.seen;
        next_seq =
          (match scope.program with
          | Some _ -> st.next_seq + 1
          | None -> st.next_seq);
      }
    in
    (st, viols)
  | Irq { pid; _ } -> (step_activity st pid (advance_pin sem), [])
  | Pin { pid; vpn } ->
    let st = { st with pins = sorted_add (pid, vpn) st.pins } in
    (step_activity st pid (advance_pin sem), [])
  | Publish { pid; vpn } ->
    let st = { st with table = sorted_add (pid, vpn) st.table } in
    (step_activity st pid (advance_pin sem), [])
  | Fetch { pid; vpn } ->
    let viols =
      if List.mem (pid, vpn) st.table then []
      else
        [
          {
            code = "UP23";
            pid;
            severity = Error;
            message =
              Printf.sprintf
                "NI fetch of page %#x for process %d raced an in-flight \
                 invalidation: the table entry was removed before the NI \
                 read it"
                vpn pid;
          };
        ]
    in
    let st = { st with cache = sorted_add (pid, vpn) st.cache } in
    (step_activity st pid (advance_xfer sem), viols)
  | Evict { pid; vpn } ->
    let st = { st with cache = sorted_remove (pid, vpn) st.cache } in
    let st, viols =
      match sem with
      | Intr _ ->
        (* cached = pinned: the eviction unpins the page and drops its
           only translation. *)
        let viols =
          if in_active st pid vpn then
            [
              {
                code = "UP23";
                pid;
                severity = Error;
                message =
                  Printf.sprintf
                    "conflict eviction unpinned page %#x of process %d \
                     while its transfer was in flight (cached = pinned)"
                    vpn pid;
              };
            ]
          else []
        in
        ( {
            st with
            pins = sorted_remove (pid, vpn) st.pins;
            table = sorted_remove (pid, vpn) st.table;
          },
          viols )
      | Hier _ | Static _ | Victima _ | Utopia _ -> (st, [])
    in
    (st, viols)
  | Use { pid; vpn } ->
    let viols =
      if List.mem (pid, vpn) st.pins then []
      else
        [
          {
            code = "UP23";
            pid;
            severity = Error;
            message =
              Printf.sprintf
                "DMA into page %#x of process %d while it is not pinned: \
                 the page was released mid-transfer"
                vpn pid;
          };
        ]
    in
    (step_activity st pid (advance_xfer sem), viols)
  | Complete { pid } -> (update_pstate st pid (fun p -> { p with act = None }), [])
  | Unpin { pid; vpn } ->
    let st = { st with pins = sorted_remove (pid, vpn) st.pins } in
    let st =
      if scope.mutant = Some No_shootdown then st
      else
        {
          st with
          table = sorted_remove (pid, vpn) st.table;
          cache = sorted_remove (pid, vpn) st.cache;
        }
    in
    (st, [])

(* {2 Terminal states} *)

let stage_label = function
  | Pinning { idx; sub } ->
    Printf.sprintf "pinning page +%d (%s)" idx
      (match sub with
      | Irq_pending -> "awaiting interrupt service"
      | Pin_pending -> "awaiting pin"
      | Publish_pending -> "awaiting table publish")
  | Transfer { idx; sub } ->
    Printf.sprintf "transferring page +%d (%s)" idx
      (match sub with
      | Fetch_pending -> "awaiting NI fetch"
      | Use_pending -> "awaiting DMA use")
  | Finishing -> "awaiting completion"

let pending_work scope st =
  let issue_pending =
    match scope.program with
    | Some prog -> st.next_seq < List.length prog
    | None -> List.exists (fun p -> p.left > 0) st.ps
  in
  issue_pending || List.exists (fun p -> p.act <> None) st.ps

let terminal_violations scope _sem st =
  if pending_work scope st then
    List.filter_map
      (fun p ->
        match p.act with
        | Some a ->
          Some
            {
              code = "UP20";
              pid = p.pid;
              severity = Error;
              message =
                Printf.sprintf
                  "deadlock: process %d is stuck %s on buffer [%#x, %#x] \
                   and no action is enabled"
                  p.pid (stage_label a.stage) a.req.vpn
                  (a.req.vpn + a.req.npages - 1);
            }
        | None -> None)
      st.ps
    |> function
    | [] ->
      (* Work is pending but no activity is stuck: the issue stream
         itself is blocked (trace mode only). *)
      [
        {
          code = "UP20";
          pid = 0;
          severity = Error;
          message =
            "deadlock: protocol work is pending but no action is enabled";
        };
      ]
    | vs -> vs
  else if st.pins <> [] then
    List.sort_uniq compare (List.map (fun (p, _) -> p) st.pins)
    |> List.map (fun pid ->
           let pages =
             List.filter_map
               (fun (p, v) -> if p = pid then Some v else None)
               st.pins
           in
           {
             code = "UP21";
             pid;
             severity = Error;
             message =
               Printf.sprintf
                 "unreachable unpin: exploration terminated with %d page(s) \
                  of process %d still pinned (%s) and no transition can \
                  ever release them"
                 (List.length pages) pid
                 (String.concat ", "
                    (List.map (Printf.sprintf "%#x") pages));
           })
  else if st.table <> [] || st.cache <> [] then
    List.sort_uniq compare
      (List.map (fun (p, _) -> p) (st.table @ st.cache))
    |> List.map (fun pid ->
           {
             code = "UP22";
             pid;
             severity = Error;
             message =
               Printf.sprintf
                 "non-quiescent final state: process %d left stale \
                  translations behind (%d table, %d cached) mapping pages \
                  that are no longer pinned"
                 pid
                 (List.length (List.filter (fun (p, _) -> p = pid) st.table))
                 (List.length (List.filter (fun (p, _) -> p = pid) st.cache));
           })
  else []

(* {2 Worst-case cost paths}

   The priced step vocabulary utlbcheck bound abstract-interprets; see
   stepper.mli for the soundness contract each path family keeps with
   its engine's Section 6.2 cost equation. *)

module Cost = struct
  type step =
    | Check of int
    | Pin of int
    | Unpin of int
    | Intr
    | Kernel_pin
    | Kernel_unpin
    | Ni_hit
    | Ni_direct
    | Walk of int
    | Dma of int

  type path = { path : string; steps : step list }

  type profile = { paths : path list; cache_entries : int; prefetch : int }

  let repeat n s = List.init (max 0 n) (fun _ -> s)

  (* The per-page chain, unrolled npages times: the worst case has
     every page of the buffer take the slow chain independently. *)
  let per_page n steps = List.concat (repeat n steps)

  let hier_paths ~prefetch ~prepin ~npages =
    let n = max 1 npages in
    let prefetch = max 1 prefetch in
    (* Widest pin ioctl the pre-pin window allows (Section 6.5): the
       buffer plus prepin-1 lookahead pages, and at the memory limit
       each of those pins may first reclaim one victim with a
       single-page unpin. *)
    let span = n + max 1 prepin - 1 in
    [
      { path = "hit"; steps = Check n :: repeat n Ni_hit };
      {
        path = "ni-miss";
        steps = Check n :: per_page n [ Ni_hit; Walk prefetch ];
      };
      {
        path = "walk";
        steps =
          (Check n :: Pin span :: per_page n [ Ni_hit; Walk prefetch ])
          @ repeat span (Unpin 1);
      };
    ]

  let intr_paths ~npages =
    let n = max 1 npages in
    [
      { path = "hit"; steps = repeat n Ni_hit };
      { path = "miss"; steps = per_page n [ Ni_hit; Intr; Kernel_pin ] };
      {
        path = "evict-unpin";
        steps = per_page n [ Ni_hit; Intr; Kernel_pin; Kernel_unpin ];
      };
    ]

  let static_paths ~npages =
    let n = max 1 npages in
    [
      { path = "hit"; steps = Check n :: repeat n Ni_direct };
      {
        path = "miss";
        steps =
          (Check n :: Pin n :: per_page n [ Ni_hit; Walk 1; Ni_direct ])
          @ repeat n (Unpin 1);
      };
    ]

  let victima_paths ~prefetch ~prepin ~npages =
    let n = max 1 npages in
    let span = n + max 1 prepin - 1 in
    hier_paths ~prefetch ~prepin ~npages
    @ [
        {
          path = "recall";
          steps = Check n :: per_page n [ Ni_hit; Ni_direct ];
        };
        {
          path = "spill-walk";
          steps =
            (Check n :: Pin span
            :: per_page n [ Ni_hit; Walk (max 1 prefetch); Dma 1 ])
            @ repeat span (Unpin 1);
        };
      ]

  let utopia_paths ~prefetch ~prepin ~npages =
    let n = max 1 npages in
    let span = n + max 1 prepin - 1 in
    [
      { path = "restseg-hit"; steps = Check n :: repeat n Ni_direct };
      {
        path = "probe-hit";
        steps = Check n :: per_page n [ Ni_direct; Ni_hit ];
      };
      {
        path = "restseg-fallback";
        steps =
          (Check n :: Pin span
          :: per_page n [ Ni_direct; Ni_hit; Walk (max 1 prefetch) ])
          @ repeat span (Unpin 1);
      };
    ]
end
