module Pid = Utlb_mem.Pid
module Host_memory = Utlb_mem.Host_memory
module Rng = Utlb_sim.Rng
module Sanitizer = Utlb_sim.Sanitizer
module Probe = Utlb_obs.Probe
module Ev = Utlb_obs.Event
module Injector = Utlb_fault.Injector
module Arbiter = Utlb_tenant.Arbiter

let log_src = Logs.Src.create "utlb.hier" ~doc:"Hierarchical-UTLB engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  cache : Ni_cache.config;
  prefetch : int;
  prepin : int;
  policy : Replacement.policy;
  memory_limit_pages : int option;
}

let default_config =
  {
    cache = { Ni_cache.entries = 8192; associativity = Ni_cache.Direct };
    prefetch = 1;
    prepin = 1;
    policy = Replacement.Lru;
    memory_limit_pages = None;
  }

module Pid_table = Hashtbl.Make (struct
  type t = Pid.t

  let equal = Pid.equal

  let hash = Pid.hash
end)

type process = {
  pinned : Bitvec.t;
  table : Translation_table.t;
  tracker : Replacement.t;
}

(* The [?sanitizer] option compiled into a record at [create], the same
   treatment [Utlb_obs.Probe] gives [?obs]: the hot path makes two
   unconditional indirect calls instead of matching an option per check.
   [no_san]'s closures are shared no-ops. Cold paths (process exit,
   [run_invariants]) still use the raw [sanitizer] field. *)
type san = {
  san_active : bool;
  san_fill : t -> Pid.t -> int -> int -> unit;
      (* pid vpn frame: the UV02/UV03 fetched-entry checks. *)
  san_pages : t -> Pid.t -> process -> int -> int -> unit;
      (* pid proc vpn npages: the UV04/UV05 post-lookup shadow scan. *)
}

and t = {
  config : config;
  host : Host_memory.t;
  cache : Ni_cache.t;
  classifier : Miss_classifier.t;
  rng : Rng.t;
  procs : process Pid_table.t;
  sanitizer : Sanitizer.t option;
  san : san;
  probe : Probe.t;
  faults : Injector.t option;
  tenancy : Arbiter.t;
  ten_active : bool;
      (* [Arbiter.active tenancy], cached so the untenanted per-page
         path pays one local branch instead of a cross-module call. *)
  (* Scratch for [lookup]: the clear runs captured before the pin limit
     is enforced (see there). Grown on demand, never shrunk. *)
  mutable run_start : int array;
  mutable run_len : int array;
  mutable totals : Report.t;
  mutable table_swap_interrupts : int;
      (* Rare path of Section 3.3: a second-level translation table was
         swapped to disk; the NI interrupts the host to bring it back. *)
  mutable fault_interrupts : int;
      (* Injected DMA failures that exhausted their retry budget: the
         NI gives up on the fetch and interrupts the host instead. *)
}

(* [create] lives after the sanitizer hooks it compiles (see
   [compile_san] below). *)

let observe t ~pid ~vpn ~count kind =
  t.probe.Probe.emit kind ~pid:(Pid.to_int pid) ~vpn ~count

let config t = t.config

let host t = t.host

let cache t = t.cache

let classifier t = t.classifier

let add_process t pid =
  if not (Pid_table.mem t.procs pid) then begin
    Host_memory.add_process t.host pid;
    let table =
      Translation_table.create
        ~garbage_frame:(Host_memory.garbage_frame t.host)
        ~pid ()
    in
    Pid_table.replace t.procs pid
      {
        pinned = Bitvec.create ();
        table;
        tracker = Replacement.create t.config.policy ~rng:(Rng.split t.rng);
      };
    if t.ten_active then
      match Arbiter.window t.tenancy ~pid:(Pid.to_int pid) with
      | None -> ()
      | Some (base, mask, offset) ->
        Ni_cache.set_window t.cache ~pid ~base ~mask ~offset
  end

let proc t pid =
  match Pid_table.find_opt t.procs pid with
  | Some p -> p
  | None -> invalid_arg "Hier_engine: unknown process"

let remove_process t pid =
  match Pid_table.find_opt t.procs pid with
  | None -> 0
  | Some p ->
    (* Unpin everything still pinned, then drop all per-process state
       and the process's cache lines. *)
    let released = ref 0 in
    Translation_table.iter_valid p.table (fun vpn _frame ->
        Host_memory.unpin t.host pid ~vpn ~count:1;
        incr released);
    (match t.sanitizer with
    | None -> ()
    | Some san ->
      (* Every pin must have been matched by an unpin by the time the
         process leaves (Section 3.4's safety argument). *)
      let bits = Bitvec.population p.pinned in
      if bits <> !released then
        Sanitizer.recordf san ~code:"UV01"
          "%a exit: pin bit vector tracks %d pages but the translation \
           table released %d"
          Pid.pp pid bits !released;
      let leaked = Host_memory.pinned_pages t.host pid in
      if leaked <> 0 then
        Sanitizer.recordf san ~code:"UV01"
          "%a exit: %d pages still pinned after releasing the \
           translation table (pin leak)"
          Pid.pp pid leaked;
      let recount = Host_memory.recount_pinned t.host pid in
      if recount <> leaked then
        Sanitizer.recordf san ~code:"UV08"
          "%a exit: host pin counter says %d pinned pages but a table \
           walk finds %d"
          Pid.pp pid leaked recount);
    ignore (Ni_cache.invalidate_process t.cache ~pid);
    if t.ten_active then
      Arbiter.note_unpin t.tenancy ~pid:(Pid.to_int pid) ~pages:!released;
    Pid_table.remove t.procs pid;
    Log.debug (fun m ->
        m "%a exit: released %d pinned pages" Pid.pp pid !released);
    !released

let table t pid = (proc t pid).table

let pinned_pages t pid = Bitvec.population (proc t pid).pinned

type outcome = {
  check_miss : bool;
  pages_pinned : int;
  pin_calls : int;
  pages_unpinned : int;
  unpin_calls : int;
  ni_accesses : int;
  ni_misses : int;
  entries_fetched : int;
}

(* Unpin one victim page: clear every layer that knows about it. The
   paper unpins "one page at a time" (Section 6.5). *)
let unpin_one t pid p victim =
  Log.debug (fun m -> m "%a evict+unpin vpn=%#x" Pid.pp pid victim);
  observe t ~pid ~vpn:victim ~count:1 Ev.Unpin;
  Host_memory.unpin t.host pid ~vpn:victim ~count:1;
  if t.ten_active then
    Arbiter.note_unpin t.tenancy ~pid:(Pid.to_int pid) ~pages:1;
  Bitvec.clear p.pinned victim;
  Translation_table.invalidate p.table ~vpn:victim;
  if Ni_cache.invalidate t.cache ~pid ~vpn:victim then
    Miss_classifier.note_invalidate t.classifier ~pid ~vpn:victim

(* Make room for [incoming] new pins under the per-process limit.
   Pages of the current request must not be selected (outstanding
   transfer). Returns pages unpinned. *)
let enforce_limit t pid p ~incoming ~request_vpn ~request_npages =
  match t.config.memory_limit_pages with
  | None -> 0
  | Some limit ->
    let protect page =
      page >= request_vpn && page < request_vpn + request_npages
    in
    let unpinned = ref 0 in
    let continue = ref true in
    (* [unpin_one] updates the bit vector, so the population already
       reflects prior evictions in this loop. *)
    while !continue && Bitvec.population p.pinned + incoming > limit do
      match Replacement.select_victim p.tracker ~protect () with
      | None -> continue := false
      | Some victim ->
        unpin_one t pid p victim;
        incr unpinned
    done;
    !unpinned

(* Pin the runs stashed in [t.run_start]/[t.run_len], one Host_memory
   ioctl per contiguous run (pinning a buffer all at once is cheaper
   than page at a time, Section 6.5). [budget] caps the pages pinned
   (tenant quota): runs beyond it are truncated or skipped, leaving
   the pages unpinned — the NI then sees garbage entries, which is safe
   by design. Returns (calls, pages). *)
let pin_runs t pid p nruns ~budget =
  let calls = ref 0 and total = ref 0 in
  for i = 0 to nruns - 1 do
    let start = t.run_start.(i) in
    let count = min t.run_len.(i) (budget - !total) in
    if count > 0 then begin
      match Host_memory.pin t.host pid ~vpn:start ~count with
      | Error `Out_of_memory ->
        (* Host DRAM exhausted: skip; the pages stay unpinned and the NI
           will see garbage entries (safe by design). *)
        ()
      | Ok frames ->
        observe t ~pid ~vpn:start ~count Ev.Pin;
        for j = 0 to count - 1 do
          let page = start + j in
          Bitvec.set p.pinned page;
          Translation_table.install p.table ~vpn:page ~frame:frames.(j);
          Replacement.insert p.tracker page
        done;
        if t.ten_active then
          Arbiter.note_pin t.tenancy ~pid:(Pid.to_int pid) ~pages:count;
        incr calls;
        total := !total + count
    end
  done;
  (!calls, !total)

(* Tenant quota admission for [incoming] new pins: first try to make
   room by evicting this process's own pages (the tenant shrinks
   itself, never a neighbour), then cap what may still be pinned at the
   tenant's remaining quota, counting the shortfall as denials.
   Returns (pages unpinned, pin budget). *)
let enforce_quota t pid p ~incoming ~request_vpn ~request_npages =
  if not t.ten_active then (0, incoming)
  else begin
    let ipid = Pid.to_int pid in
    let protect page =
      page >= request_vpn && page < request_vpn + request_npages
    in
    let unpinned = ref 0 in
    let continue = ref true in
    while !continue && incoming > Arbiter.quota_remaining t.tenancy ~pid:ipid
    do
      match Replacement.select_victim p.tracker ~protect () with
      | None -> continue := false
      | Some victim ->
        unpin_one t pid p victim;
        incr unpinned
    done;
    let budget = min incoming (Arbiter.quota_remaining t.tenancy ~pid:ipid) in
    if budget < incoming then
      Arbiter.note_denied t.tenancy ~pid:ipid ~pages:(incoming - budget);
    (!unpinned, budget)
  end

(* Cache fill = one entry of the NI's DMA fetch from the translation
   table. With the sanitizer on, verify the fetched entry obeys the
   garbage-page scheme: never the garbage frame, always a pinned page. *)
let fill_cache t pid vpn frame =
  t.san.san_fill t pid vpn frame;
  match Ni_cache.insert t.cache ~pid ~vpn ~frame with
  | None -> ()
  | Some (evicted_pid, evicted_vpn, _frame) ->
    if t.ten_active then
      Arbiter.note_eviction t.tenancy
        ~victim_pid:(Pid.to_int evicted_pid)
        ~by_pid:(Pid.to_int pid);
    observe t ~pid:evicted_pid ~vpn:evicted_vpn ~count:Probe.no_count
      Ev.Ni_evict

let note_recovery t pid ~vpn () =
  Option.iter Injector.note_recovery t.faults;
  observe t ~pid ~vpn ~count:Probe.no_count Ev.Fault_recover;
  t.totals <-
    { t.totals with Report.fault_recoveries = t.totals.Report.fault_recoveries + 1 }

(* Interrupt-path service of a single entry: the fallback when an
   injected DMA failure burns its whole retry budget. The host installs
   exactly the faulting page's translation (swapping the second-level
   table back in first if needed); no prefetch, no DMA accounting. *)
let serve_entry_via_interrupt t pid p vpn =
  t.fault_interrupts <- t.fault_interrupts + 1;
  observe t ~pid ~vpn ~count:Probe.no_count Ev.Interrupt;
  match Translation_table.lookup p.table ~vpn with
  | Translation_table.Frame frame -> fill_cache t pid vpn frame
  | Translation_table.Garbage -> ()
  | Translation_table.Table_swapped _ ->
    ignore (Translation_table.swap_in p.table ~dir_index:(vpn lsr 10));
    (match Translation_table.lookup p.table ~vpn with
    | Translation_table.Frame frame -> fill_cache t pid vpn frame
    | Translation_table.Garbage | Translation_table.Table_swapped _ -> ())

(* NI-side translation of one page: Shared UTLB-Cache lookup, with a
   [prefetch]-entry fill on a miss. Only valid (pinned) translations are
   cached; garbage entries are skipped. *)
let ni_translate t pid p vpn =
  (* Fault plane: a spurious invalidation may knock this page's line
     out just before the probe. It only becomes visible (and worth
     recovering) if the line was actually resident. *)
  let injected_invalidate =
    match t.faults with
    | None -> false
    | Some inj ->
      Injector.cache_invalidate inj
      && Ni_cache.invalidate t.cache ~pid ~vpn
      &&
      (Miss_classifier.note_invalidate t.classifier ~pid ~vpn;
       observe t ~pid ~vpn ~count:Probe.no_count Ev.Fault_inject;
       true)
  in
  match Ni_cache.lookup t.cache ~pid ~vpn with
  | Some _ ->
    if t.ten_active then
      Arbiter.note_ni_access t.tenancy ~pid:(Pid.to_int pid) ~hit:true;
    Miss_classifier.note_hit t.classifier ~pid ~vpn;
    observe t ~pid ~vpn ~count:Probe.no_count Ev.Ni_hit;
    (0, 0)
  | None ->
    if t.ten_active then
      Arbiter.note_ni_access t.tenancy ~pid:(Pid.to_int pid) ~hit:false;
    ignore (Miss_classifier.classify t.classifier ~pid ~vpn);
    observe t ~pid ~vpn ~count:Probe.no_count Ev.Ni_miss;
    (* Fault plane: the second-level table holding this page may have
       been swapped out from under the NI; the existing Table_swapped
       recovery below then brings it back. *)
    let injected_swap =
      match t.faults with
      | None -> false
      | Some inj ->
        Injector.table_swap inj
        && Translation_table.swap_out p.table ~dir_index:(vpn lsr 10)
             ~disk_block:1
        &&
        (observe t ~pid ~vpn ~count:Probe.no_count Ev.Fault_inject;
         true)
    in
    (* Fault plane: the DMA fetch of the prefetch block may fail and be
       retried with backoff; an exhausted budget falls back to the
       interrupt path for just the faulting entry. *)
    let dma =
      match t.faults with None -> Some 0 | Some inj -> Injector.dma_attempts inj
    in
    let fetched = ref 0 in
    (match dma with
    | None ->
      let retries =
        match t.faults with
        | Some inj -> max 0 (Injector.plan inj).Utlb_fault.Plan.dma_retries
        | None -> 0
      in
      observe t ~pid ~vpn ~count:Probe.no_count Ev.Fault_inject;
      observe t ~pid ~vpn ~count:(1 + retries) Ev.Fault_retry;
      serve_entry_via_interrupt t pid p vpn;
      note_recovery t pid ~vpn ()
    | Some failed ->
      if failed > 0 then begin
        observe t ~pid ~vpn ~count:Probe.no_count Ev.Fault_inject;
        observe t ~pid ~vpn ~count:failed Ev.Fault_retry
      end;
      for q = vpn to vpn + t.config.prefetch - 1 do
        if q <= Translation_table.max_vpn then begin
          match Translation_table.lookup p.table ~vpn:q with
          | Translation_table.Frame frame ->
            incr fetched;
            fill_cache t pid q frame
          | Translation_table.Garbage -> ()
          | Translation_table.Table_swapped _ ->
            (* Interrupt the host to swap the table back in, then retry
               the entry. *)
            t.table_swap_interrupts <- t.table_swap_interrupts + 1;
            observe t ~pid ~vpn:q ~count:Probe.no_count Ev.Interrupt;
            ignore (Translation_table.swap_in p.table ~dir_index:(q lsr 10));
            (match Translation_table.lookup p.table ~vpn:q with
            | Translation_table.Frame frame ->
              incr fetched;
              fill_cache t pid q frame
            | Translation_table.Garbage | Translation_table.Table_swapped _ ->
              ())
        end
      done;
      if failed > 0 then note_recovery t pid ~vpn ());
    if injected_swap then note_recovery t pid ~vpn ();
    if injected_invalidate then note_recovery t pid ~vpn ();
    if !fetched > 0 then observe t ~pid ~vpn ~count:!fetched Ev.Fetch;
    (1, !fetched)

(* Shadow check of one page: if the Shared UTLB-Cache holds a
   translation for it, that translation must agree with both the
   host-resident translation table and the OS page table, and the page
   must still be pinned. *)
let check_cached_page t san pid p vpn =
  match Ni_cache.peek t.cache ~pid ~vpn with
  | None -> ()
  | Some frame ->
    (match Translation_table.lookup p.table ~vpn with
    | Translation_table.Frame f when f = frame -> ()
    | Translation_table.Frame f ->
      Sanitizer.recordf san ~code:"UV04"
        "%a vpn=%#x: cached frame %d disagrees with translation-table \
         frame %d"
        Pid.pp pid vpn frame f
    | Translation_table.Garbage ->
      Sanitizer.recordf san ~code:"UV04"
        "%a vpn=%#x: stale cache entry (frame %d) for an invalidated \
         translation"
        Pid.pp pid vpn frame
    | Translation_table.Table_swapped _ -> ());
    (match Host_memory.translate t.host pid ~vpn with
    | Some f when f = frame ->
      if Host_memory.pin_count t.host pid ~vpn = 0 then
        Sanitizer.recordf san ~code:"UV05"
          "%a vpn=%#x: cached translation for an unpinned page" Pid.pp pid
          vpn
    | Some f ->
      Sanitizer.recordf san ~code:"UV04"
        "%a vpn=%#x: cached frame %d disagrees with host frame %d" Pid.pp
        pid vpn frame f
    | None ->
      Sanitizer.recordf san ~code:"UV04"
        "%a vpn=%#x: cached translation for a non-resident page" Pid.pp pid
        vpn)

let run_invariants t =
  match t.sanitizer with
  | None -> ()
  | Some san ->
    let garbage = Host_memory.garbage_frame t.host in
    Ni_cache.iter_valid t.cache (fun ~pid ~vpn ~frame ->
        match Pid_table.find_opt t.procs pid with
        | None ->
          Sanitizer.recordf san ~code:"UV04"
            "%a vpn=%#x: cache line (frame %d) for a departed process"
            Pid.pp pid vpn frame
        | Some p ->
          if frame = garbage then
            Sanitizer.recordf san ~code:"UV02"
              "%a vpn=%#x: Shared UTLB-Cache holds the garbage frame"
              Pid.pp pid vpn;
          check_cached_page t san pid p vpn);
    Pid_table.iter
      (fun pid p ->
        let bits = Bitvec.population p.pinned in
        let host_pinned = Host_memory.pinned_pages t.host pid in
        if bits <> host_pinned then
          Sanitizer.recordf san ~code:"UV08"
            "%a: pin bit vector tracks %d pages but the host reports %d \
             pinned"
            Pid.pp pid bits host_pinned;
        let recount = Host_memory.recount_pinned t.host pid in
        if recount <> host_pinned then
          Sanitizer.recordf san ~code:"UV08"
            "%a: host pin counter says %d pinned pages but a table walk \
             finds %d"
            Pid.pp pid host_pinned recount)
      t.procs;
    List.iter
      (fun msg ->
        Sanitizer.recordf san ~code:"UV07" "miss classifier: %s" msg)
      (Miss_classifier.self_check t.classifier)

let no_san =
  {
    san_active = false;
    san_fill = (fun _ _ _ _ -> ());
    san_pages = (fun _ _ _ _ _ -> ());
  }

let compile_san = function
  | None -> no_san
  | Some san ->
    {
      san_active = true;
      san_fill =
        (fun t pid vpn frame ->
          if frame = Host_memory.garbage_frame t.host then
            Sanitizer.recordf san ~code:"UV02"
              "%a vpn=%#x: NI fetched the garbage frame into the Shared \
               UTLB-Cache"
              Pid.pp pid vpn
          else if Host_memory.pin_count t.host pid ~vpn = 0 then
            Sanitizer.recordf san ~code:"UV03"
              "%a vpn=%#x: NI fetched a translation to unpinned frame %d"
              Pid.pp pid vpn frame);
      san_pages =
        (fun t pid p vpn npages ->
          for q = vpn to vpn + npages - 1 do
            check_cached_page t san pid p q
          done);
    }

let create ?host ?sanitizer ?obs ?faults ?tenancy ~seed config =
  if config.prefetch < 1 then
    invalid_arg "Hier_engine.create: prefetch must be >= 1";
  if config.prepin < 1 then
    invalid_arg "Hier_engine.create: prepin must be >= 1";
  let host = match host with Some h -> h | None -> Host_memory.create () in
  let cache = Ni_cache.create config.cache in
  let tenancy = Option.value ~default:Arbiter.none tenancy in
  Arbiter.bind tenancy ~sets:(Ni_cache.sets cache);
  {
    config;
    host;
    cache;
    classifier = Miss_classifier.create ~capacity:config.cache.Ni_cache.entries;
    rng = Rng.create ~seed;
    procs = Pid_table.create 8;
    sanitizer;
    san = compile_san sanitizer;
    probe = Probe.of_scope_opt obs;
    faults;
    tenancy;
    ten_active = Arbiter.active tenancy;
    run_start = Array.make 8 0;
    run_len = Array.make 8 0;
    totals = Report.empty ~label:"utlb";
    table_swap_interrupts = 0;
    fault_interrupts = 0;
  }

let lookup t ~pid ~vpn ~npages =
  if npages < 1 then invalid_arg "Hier_engine.lookup: npages must be >= 1";
  add_process t pid;
  let p = proc t pid in
  if t.ten_active then Arbiter.note_lookup t.tenancy ~pid:(Pid.to_int pid);
  (* 1. user-level check — a word-wise scan, no page-list allocation *)
  let check_miss = not (Bitvec.all_set p.pinned ~vpn ~count:npages) in
  let pin_calls, pages_pinned, unpin_calls, pages_unpinned =
    if not check_miss then (0, 0, 0, 0)
    else begin
      (* The clear count exists only to be reported, so it is computed
         only when someone is listening. *)
      if t.probe.Probe.active then
        observe t ~pid ~vpn
          ~count:(Bitvec.clear_count p.pinned ~vpn ~count:npages)
          Ev.Check_miss;
      (* Sequential pre-pinning from the first unpinned page. *)
      let start =
        match Bitvec.first_clear p.pinned ~vpn ~count:npages with
        | Some s -> s
        | None -> assert false (* check_miss implies a clear page *)
      in
      let reach = max (vpn + npages) (start + t.config.prepin) in
      let extra = reach - (vpn + npages) in
      if extra > 0 then
        observe t ~pid ~vpn:(vpn + npages) ~count:extra Ev.Pre_pin;
      (* Snapshot the clear runs of [start, reach) BEFORE enforcing the
         pin limit: eviction below may unpin pages inside this window,
         and those must not be re-pinned by this lookup. *)
      let nruns = ref 0 and incoming = ref 0 in
      Bitvec.iter_clear_runs p.pinned ~vpn:start ~count:(reach - start)
        (fun ~vpn:run_vpn ~count:run_len ->
          let i = !nruns in
          if i = Array.length t.run_start then begin
            let grow a =
              let b = Array.make (2 * Array.length a) 0 in
              Array.blit a 0 b 0 (Array.length a);
              b
            in
            t.run_start <- grow t.run_start;
            t.run_len <- grow t.run_len
          end;
          t.run_start.(i) <- run_vpn;
          t.run_len.(i) <- run_len;
          nruns := i + 1;
          incoming := !incoming + run_len);
      let quota_unpinned, budget =
        enforce_quota t pid p ~incoming:!incoming ~request_vpn:vpn
          ~request_npages:npages
      in
      let unpinned =
        quota_unpinned
        + enforce_limit t pid p ~incoming:budget ~request_vpn:vpn
            ~request_npages:npages
      in
      let calls, pinned = pin_runs t pid p !nruns ~budget in
      Log.debug (fun m ->
          m "%a check miss vpn=%#x+%d: pinned %d pages in %d ioctls" Pid.pp
            pid vpn npages pinned calls);
      (calls, pinned, unpinned, unpinned)
    end
  in
  (* Touch for recency/frequency. *)
  for q = vpn to vpn + npages - 1 do
    Replacement.touch p.tracker q
  done;
  (* 2. NI-side per-page translation *)
  let ni_misses = ref 0 and entries = ref 0 in
  for q = vpn to vpn + npages - 1 do
    let m, f = ni_translate t pid p q in
    ni_misses := !ni_misses + m;
    entries := !entries + f
  done;
  t.san.san_pages t pid p vpn npages;
  let outcome =
    {
      check_miss;
      pages_pinned;
      pin_calls;
      pages_unpinned;
      unpin_calls;
      ni_accesses = npages;
      ni_misses = !ni_misses;
      entries_fetched = !entries;
    }
  in
  let tot = t.totals in
  t.totals <-
    {
      tot with
      Report.lookups = tot.Report.lookups + 1;
      check_misses = (tot.Report.check_misses + if check_miss then 1 else 0);
      ni_miss_lookups =
        (tot.Report.ni_miss_lookups + if !ni_misses > 0 then 1 else 0);
      ni_page_accesses = tot.Report.ni_page_accesses + npages;
      ni_page_misses = tot.Report.ni_page_misses + !ni_misses;
      pin_calls = tot.Report.pin_calls + pin_calls;
      pages_pinned = tot.Report.pages_pinned + pages_pinned;
      unpin_calls = tot.Report.unpin_calls + unpin_calls;
      pages_unpinned = tot.Report.pages_unpinned + pages_unpinned;
      entries_fetched = tot.Report.entries_fetched + !entries;
    };
  (* End of the lookup is this engine's dispatch boundary: hand the
     batched events to the scope in one replay. *)
  t.probe.Probe.flush ();
  outcome

let is_pinned t ~pid ~vpn = Bitvec.test (proc t pid).pinned vpn

let translate t ~pid ~vpn =
  let p = proc t pid in
  match Translation_table.lookup p.table ~vpn with
  | Translation_table.Frame f -> Some f
  | Translation_table.Garbage | Translation_table.Table_swapped _ -> None

let report t ~label =
  {
    t.totals with
    Report.label;
    interrupts = t.table_swap_interrupts + t.fault_interrupts;
    compulsory = Miss_classifier.compulsory t.classifier;
    capacity = Miss_classifier.capacity_misses t.classifier;
    conflict = Miss_classifier.conflict t.classifier;
    isolation = Arbiter.snapshot t.tenancy;
  }

let mechanism = "utlb"

let processes t =
  Pid_table.fold (fun pid _ acc -> pid :: acc) t.procs []
  |> List.sort Pid.compare

let remove_and_report t ~label =
  List.iter (fun pid -> ignore (remove_process t pid)) (processes t);
  report t ~label

let stepper (config : config) =
  Stepper.Hier
    { prepin = config.prepin; limit_pages = config.memory_limit_pages }

let cost_paths (config : config) ~npages =
  {
    Stepper.Cost.paths =
      Stepper.Cost.hier_paths ~prefetch:config.prefetch ~prepin:config.prepin
        ~npages;
    cache_entries = config.cache.Ni_cache.entries;
    prefetch = max 1 config.prefetch;
  }
