let directory_bits = 10

let table_bits = 10

let table_entries = 1 lsl table_bits

let directory_entries = 1 lsl directory_bits

let max_vpn = (1 lsl (directory_bits + table_bits)) - 1

let memory_references = 2

(* The directory maps each top-level index to a block in one flat node
   pool (-1 = no second-level node yet); blocks are [table_entries]
   ints, -1 marking an invalid entry. Allocating from the pool instead
   of boxing each second-level table keeps lookups to two int-array
   reads with no option header between them. *)
type t = {
  directory : int array;
  mutable pool : int array;
  mutable blocks : int;
  mutable entries : int;
}

let create () =
  {
    directory = Array.make directory_entries (-1);
    pool = [||];
    blocks = 0;
    entries = 0;
  }

let check_vpn vpn =
  if vpn < 0 || vpn > max_vpn then invalid_arg "Lookup_tree: vpn out of range"

let split vpn = (vpn lsr table_bits, vpn land (table_entries - 1))

let alloc_block t =
  let needed = (t.blocks + 1) * table_entries in
  if needed > Array.length t.pool then begin
    let cap = max needed (max table_entries (2 * Array.length t.pool)) in
    let bigger = Array.make cap (-1) in
    Array.blit t.pool 0 bigger 0 (t.blocks * table_entries);
    t.pool <- bigger
  end;
  Array.fill t.pool (t.blocks * table_entries) table_entries (-1);
  let block = t.blocks in
  t.blocks <- t.blocks + 1;
  block

let find t vpn =
  check_vpn vpn;
  let dir, idx = split vpn in
  let block = t.directory.(dir) in
  if block < 0 then None
  else
    let v = t.pool.((block lsl table_bits) + idx) in
    if v < 0 then None else Some v

let set t vpn ~index =
  check_vpn vpn;
  if index < 0 then invalid_arg "Lookup_tree.set: negative index";
  let dir, idx = split vpn in
  let block =
    match t.directory.(dir) with
    | -1 ->
      let block = alloc_block t in
      t.directory.(dir) <- block;
      block
    | block -> block
  in
  let slot = (block lsl table_bits) + idx in
  if t.pool.(slot) < 0 then t.entries <- t.entries + 1;
  t.pool.(slot) <- index

let remove t vpn =
  check_vpn vpn;
  let dir, idx = split vpn in
  let block = t.directory.(dir) in
  if block >= 0 then begin
    let slot = (block lsl table_bits) + idx in
    if t.pool.(slot) >= 0 then begin
      t.pool.(slot) <- -1;
      t.entries <- t.entries - 1
    end
  end

let entries t = t.entries

let iter t f =
  for dir = 0 to directory_entries - 1 do
    let block = t.directory.(dir) in
    if block >= 0 then
      let base = block lsl table_bits in
      for idx = 0 to table_entries - 1 do
        let v = t.pool.(base + idx) in
        if v >= 0 then f ((dir lsl table_bits) lor idx) v
      done
  done
