module Pid = Utlb_mem.Pid
module Host_memory = Utlb_mem.Host_memory
module Rng = Utlb_sim.Rng
module Sanitizer = Utlb_sim.Sanitizer
module Probe = Utlb_obs.Probe
module Ev = Utlb_obs.Event
module Injector = Utlb_fault.Injector
module Arbiter = Utlb_tenant.Arbiter

type config = {
  cache : Ni_cache.config;
  memory_limit_pages : int option;
}

let default_config =
  {
    cache = { Ni_cache.entries = 8192; associativity = Ni_cache.Direct };
    memory_limit_pages = None;
  }

module Pid_table = Hashtbl.Make (struct
  type t = Pid.t

  let equal = Pid.equal

  let hash = Pid.hash
end)

(* Per process: an LRU tracker over the pages currently pinned (equal to
   the pages whose translation sits in the NI cache). *)
type process = { tracker : Replacement.t }

(* The [?sanitizer] option compiled into a record at [create] (the
   [Utlb_obs.Probe] treatment): the post-lookup shadow scan is one
   unconditional indirect call, a shared no-op when absent. Cold paths
   still use the raw [sanitizer] field. *)
type san = {
  san_active : bool;
  san_pages : t -> Pid.t -> process -> int -> int -> unit;
}

and t = {
  config : config;
  host : Host_memory.t;
  cache : Ni_cache.t;
  classifier : Miss_classifier.t;
  rng : Rng.t;
  procs : process Pid_table.t;
  sanitizer : Sanitizer.t option;
  san : san;
  probe : Probe.t;
  faults : Injector.t option;
  tenancy : Arbiter.t;
  ten_active : bool;
  mutable totals : Report.t;
}

(* [create] lives after the sanitizer hooks it compiles (see
   [compile_san] below). *)

let observe t ~pid ~vpn ~count kind =
  t.probe.Probe.emit kind ~pid:(Pid.to_int pid) ~vpn ~count

let host t = t.host

let cache t = t.cache

let add_process t pid =
  if not (Pid_table.mem t.procs pid) then begin
    Host_memory.add_process t.host pid;
    Pid_table.replace t.procs pid
      { tracker = Replacement.create Replacement.Lru ~rng:(Rng.split t.rng) };
    if t.ten_active then
      match Arbiter.window t.tenancy ~pid:(Pid.to_int pid) with
      | None -> ()
      | Some (base, mask, offset) ->
        Ni_cache.set_window t.cache ~pid ~base ~mask ~offset
  end

let proc t pid =
  match Pid_table.find_opt t.procs pid with
  | Some p -> p
  | None -> invalid_arg "Intr_engine: unknown process"

let pinned_pages t pid = Replacement.size (proc t pid).tracker

let remove_process t pid =
  match Pid_table.find_opt t.procs pid with
  | None -> 0
  | Some p ->
    let released = ref 0 in
    let continue = ref true in
    while !continue do
      match Replacement.select_victim p.tracker () with
      | None -> continue := false
      | Some vpn ->
        Host_memory.unpin t.host pid ~vpn ~count:1;
        incr released
    done;
    (match t.sanitizer with
    | None -> ()
    | Some san ->
      let leaked = Host_memory.pinned_pages t.host pid in
      if leaked <> 0 then
        Sanitizer.recordf san ~code:"UV01"
          "%a exit: %d pages still pinned after draining the tracker \
           (pin leak)"
          Pid.pp pid leaked;
      let recount = Host_memory.recount_pinned t.host pid in
      if recount <> leaked then
        Sanitizer.recordf san ~code:"UV08"
          "%a exit: host pin counter says %d pinned pages but a table \
           walk finds %d"
          Pid.pp pid leaked recount);
    ignore (Ni_cache.invalidate_process t.cache ~pid);
    if t.ten_active then
      Arbiter.note_unpin t.tenancy ~pid:(Pid.to_int pid) ~pages:!released;
    Pid_table.remove t.procs pid;
    !released

type outcome = {
  ni_accesses : int;
  ni_misses : int;
  interrupts : int;
  pages_pinned : int;
  pages_unpinned : int;
}

let note_recovery t pid ~vpn () =
  Option.iter Injector.note_recovery t.faults;
  observe t ~pid ~vpn ~count:Probe.no_count Ev.Fault_recover;
  t.totals <-
    {
      t.totals with
      Report.fault_recoveries = t.totals.Report.fault_recoveries + 1;
    }

(* One host interrupt, with the fault plane's timeout + re-issue loop:
   each re-issue costs another dispatch (counted and observed like a
   real interrupt) and a delivery that needed one is a recovery. *)
let issue_interrupt t pid q interrupts =
  incr interrupts;
  observe t ~pid ~vpn:q ~count:Probe.no_count Ev.Interrupt;
  match t.faults with
  | None -> ()
  | Some inj ->
    let reissues = Injector.irq_reissues inj in
    if reissues > 0 then begin
      observe t ~pid ~vpn:q ~count:Probe.no_count Ev.Fault_inject;
      for _ = 1 to reissues do
        incr interrupts;
        observe t ~pid ~vpn:q ~count:Probe.no_count Ev.Interrupt
      done;
      observe t ~pid ~vpn:q ~count:reissues Ev.Fault_retry;
      note_recovery t pid ~vpn:q ()
    end

(* Shadow check of one page: a cached translation must agree with the
   host page table and its page must still be pinned (in this design,
   cached <=> pinned). *)
let check_cached_page t san pid p vpn =
  match Ni_cache.peek t.cache ~pid ~vpn with
  | None -> ()
  | Some frame ->
    if frame = Host_memory.garbage_frame t.host then
      Sanitizer.recordf san ~code:"UV02"
        "%a vpn=%#x: NI cache holds the garbage frame" Pid.pp pid vpn;
    if not (Replacement.mem p.tracker vpn) then
      Sanitizer.recordf san ~code:"UV08"
        "%a vpn=%#x: cached page missing from the pinned-page tracker"
        Pid.pp pid vpn;
    (match Host_memory.translate t.host pid ~vpn with
    | Some f when f = frame ->
      if Host_memory.pin_count t.host pid ~vpn = 0 then
        Sanitizer.recordf san ~code:"UV05"
          "%a vpn=%#x: cached translation for an unpinned page" Pid.pp pid
          vpn
    | Some f ->
      Sanitizer.recordf san ~code:"UV04"
        "%a vpn=%#x: cached frame %d disagrees with host frame %d" Pid.pp
        pid vpn frame f
    | None ->
      Sanitizer.recordf san ~code:"UV04"
        "%a vpn=%#x: cached translation for a non-resident page" Pid.pp pid
        vpn)

let run_invariants t =
  match t.sanitizer with
  | None -> ()
  | Some san ->
    Ni_cache.iter_valid t.cache (fun ~pid ~vpn ~frame:_ ->
        match Pid_table.find_opt t.procs pid with
        | None ->
          Sanitizer.recordf san ~code:"UV04"
            "%a vpn=%#x: cache line for a departed process" Pid.pp pid vpn
        | Some p -> check_cached_page t san pid p vpn);
    Pid_table.iter
      (fun pid p ->
        let tracked = Replacement.size p.tracker in
        let host_pinned = Host_memory.pinned_pages t.host pid in
        if tracked <> host_pinned then
          Sanitizer.recordf san ~code:"UV08"
            "%a: tracker holds %d pages but the host reports %d pinned"
            Pid.pp pid tracked host_pinned;
        let recount = Host_memory.recount_pinned t.host pid in
        if recount <> host_pinned then
          Sanitizer.recordf san ~code:"UV08"
            "%a: host pin counter says %d pinned pages but a table walk \
             finds %d"
            Pid.pp pid host_pinned recount)
      t.procs;
    List.iter
      (fun msg ->
        Sanitizer.recordf san ~code:"UV07" "miss classifier: %s" msg)
      (Miss_classifier.self_check t.classifier)

let no_san =
  { san_active = false; san_pages = (fun _ _ _ _ _ -> ()) }

let compile_san = function
  | None -> no_san
  | Some san ->
    {
      san_active = true;
      san_pages =
        (fun t pid p vpn npages ->
          for q = vpn to vpn + npages - 1 do
            check_cached_page t san pid p q
          done);
    }

let create ?host ?sanitizer ?obs ?faults ?tenancy ~seed (config : config) =
  let host = match host with Some h -> h | None -> Host_memory.create () in
  let cache = Ni_cache.create config.cache in
  let tenancy = Option.value ~default:Arbiter.none tenancy in
  Arbiter.bind tenancy ~sets:(Ni_cache.sets cache);
  {
    config;
    host;
    cache;
    classifier = Miss_classifier.create ~capacity:config.cache.Ni_cache.entries;
    rng = Rng.create ~seed;
    procs = Pid_table.create 8;
    sanitizer;
    san = compile_san sanitizer;
    probe = Probe.of_scope_opt obs;
    faults;
    tenancy;
    ten_active = Arbiter.active tenancy;
    totals = Report.empty ~label:"intr";
  }

let lookup t ~pid ~vpn ~npages =
  if npages < 1 then invalid_arg "Intr_engine.lookup: npages must be >= 1";
  add_process t pid;
  let p = proc t pid in
  if t.ten_active then Arbiter.note_lookup t.tenancy ~pid:(Pid.to_int pid);
  let misses = ref 0 in
  let interrupts = ref 0 in
  let pinned = ref 0 in
  let unpinned = ref 0 in
  (* Cache eviction implies unpinning the evicted page. *)
  let evict_unpin (evicted_pid, evicted_vpn, _frame) =
    if t.ten_active then begin
      Arbiter.note_eviction t.tenancy
        ~victim_pid:(Pid.to_int evicted_pid)
        ~by_pid:(Pid.to_int pid);
      Arbiter.note_unpin t.tenancy ~pid:(Pid.to_int evicted_pid) ~pages:1
    end;
    observe t ~pid:evicted_pid ~vpn:evicted_vpn ~count:Probe.no_count
      Ev.Ni_evict;
    observe t ~pid:evicted_pid ~vpn:evicted_vpn ~count:1 Ev.Unpin;
    let ep = proc t evicted_pid in
    Replacement.remove ep.tracker evicted_vpn;
    Miss_classifier.note_invalidate t.classifier ~pid:evicted_pid
      ~vpn:evicted_vpn;
    Host_memory.unpin t.host evicted_pid ~vpn:evicted_vpn ~count:1;
    incr unpinned
  in
  for q = vpn to vpn + npages - 1 do
    (* Fault plane: a spurious invalidation may knock this page's line
       out just before the probe. The page stays pinned (cached <=>
       pinned would otherwise break), so recovery re-installs the
       translation from the host page table without re-pinning. *)
    let injected_invalidate =
      match t.faults with
      | None -> false
      | Some inj ->
        Injector.cache_invalidate inj
        && Ni_cache.invalidate t.cache ~pid ~vpn:q
        &&
        (Miss_classifier.note_invalidate t.classifier ~pid ~vpn:q;
         observe t ~pid ~vpn:q ~count:Probe.no_count Ev.Fault_inject;
         true)
    in
    if injected_invalidate then begin
      if t.ten_active then
        Arbiter.note_ni_access t.tenancy ~pid:(Pid.to_int pid) ~hit:false;
      incr misses;
      ignore (Miss_classifier.classify t.classifier ~pid ~vpn:q);
      observe t ~pid ~vpn:q ~count:Probe.no_count Ev.Ni_miss;
      issue_interrupt t pid q interrupts;
      (match Host_memory.translate t.host pid ~vpn:q with
      | None -> ()
      | Some frame ->
        (match Ni_cache.insert t.cache ~pid ~vpn:q ~frame with
        | None -> ()
        | Some evicted -> evict_unpin evicted);
        Replacement.touch p.tracker q);
      note_recovery t pid ~vpn:q ()
    end
    else
    match Ni_cache.lookup t.cache ~pid ~vpn:q with
    | Some _ ->
      if t.ten_active then
        Arbiter.note_ni_access t.tenancy ~pid:(Pid.to_int pid) ~hit:true;
      Miss_classifier.note_hit t.classifier ~pid ~vpn:q;
      observe t ~pid ~vpn:q ~count:Probe.no_count Ev.Ni_hit;
      Replacement.touch p.tracker q
    | None ->
      if t.ten_active then
        Arbiter.note_ni_access t.tenancy ~pid:(Pid.to_int pid) ~hit:false;
      incr misses;
      ignore (Miss_classifier.classify t.classifier ~pid ~vpn:q);
      observe t ~pid ~vpn:q ~count:Probe.no_count Ev.Ni_miss;
      issue_interrupt t pid q interrupts;
      (* Tenant quota admission: a full tenant first tries to shrink
         itself (evict+unpin one of this process's own pages); if it
         still has no headroom the pin is denied and the page simply
         keeps missing — cached <=> pinned is preserved. *)
      let admitted =
        (not t.ten_active)
        || begin
             let ipid = Pid.to_int pid in
             if Arbiter.quota_remaining t.tenancy ~pid:ipid <= 0 then begin
               match
                 Replacement.select_victim p.tracker
                   ~protect:(fun page -> page >= vpn && page < vpn + npages)
                   ()
               with
               | Some victim ->
                 observe t ~pid ~vpn:victim ~count:1 Ev.Unpin;
                 if Ni_cache.invalidate t.cache ~pid ~vpn:victim then
                   Miss_classifier.note_invalidate t.classifier ~pid
                     ~vpn:victim;
                 Host_memory.unpin t.host pid ~vpn:victim ~count:1;
                 Arbiter.note_unpin t.tenancy ~pid:ipid ~pages:1;
                 incr unpinned
               | None -> ()
             end;
             let ok = Arbiter.quota_remaining t.tenancy ~pid:ipid > 0 in
             if not ok then Arbiter.note_denied t.tenancy ~pid:ipid ~pages:1;
             ok
           end
      in
      if not admitted then ()
      else
      (* Host interrupt handler: pin the page and install the entry. *)
      (match Host_memory.pin t.host pid ~vpn:q ~count:1 with
      | Error `Out_of_memory -> ()
      | Ok frames ->
        incr pinned;
        if t.ten_active then
          Arbiter.note_pin t.tenancy ~pid:(Pid.to_int pid) ~pages:1;
        observe t ~pid ~vpn:q ~count:1 Ev.Pin;
        Replacement.insert p.tracker q;
        (match Ni_cache.insert t.cache ~pid ~vpn:q ~frame:frames.(0) with
        | None -> ()
        | Some evicted -> evict_unpin evicted);
        (* Per-process memory limit: shrink the pinned set via LRU. *)
        (match t.config.memory_limit_pages with
        | None -> ()
        | Some limit ->
          let stuck = ref false in
          while (not !stuck) && Replacement.size p.tracker > limit do
            match
              Replacement.select_victim p.tracker
                ~protect:(fun page -> page >= vpn && page < vpn + npages)
                ()
            with
            | None ->
              (* Everything protected: give up this round. *)
              stuck := true
            | Some victim ->
              observe t ~pid ~vpn:victim ~count:1 Ev.Unpin;
              if Ni_cache.invalidate t.cache ~pid ~vpn:victim then
                Miss_classifier.note_invalidate t.classifier ~pid ~vpn:victim;
              Host_memory.unpin t.host pid ~vpn:victim ~count:1;
              if t.ten_active then
                Arbiter.note_unpin t.tenancy ~pid:(Pid.to_int pid) ~pages:1;
              incr unpinned
          done))
  done;
  t.san.san_pages t pid p vpn npages;
  let outcome =
    {
      ni_accesses = npages;
      ni_misses = !misses;
      interrupts = !interrupts;
      pages_pinned = !pinned;
      pages_unpinned = !unpinned;
    }
  in
  let tot = t.totals in
  t.totals <-
    {
      tot with
      Report.lookups = tot.Report.lookups + 1;
      ni_miss_lookups =
        (tot.Report.ni_miss_lookups + if !misses > 0 then 1 else 0);
      ni_page_accesses = tot.Report.ni_page_accesses + npages;
      ni_page_misses = tot.Report.ni_page_misses + !misses;
      pin_calls = tot.Report.pin_calls + !pinned;
      pages_pinned = tot.Report.pages_pinned + !pinned;
      unpin_calls = tot.Report.unpin_calls + !unpinned;
      pages_unpinned = tot.Report.pages_unpinned + !unpinned;
      interrupts = tot.Report.interrupts + !interrupts;
    };
  t.probe.Probe.flush ();
  outcome

let report t ~label =
  {
    t.totals with
    Report.label;
    compulsory = Miss_classifier.compulsory t.classifier;
    capacity = Miss_classifier.capacity_misses t.classifier;
    conflict = Miss_classifier.conflict t.classifier;
    isolation = Arbiter.snapshot t.tenancy;
  }



let mechanism = "intr"

let processes t =
  Pid_table.fold (fun pid _ acc -> pid :: acc) t.procs []
  |> List.sort Pid.compare

let remove_and_report t ~label =
  List.iter (fun pid -> ignore (remove_process t pid)) (processes t);
  report t ~label

let stepper (config : config) =
  Stepper.Intr
    {
      entries = config.cache.Ni_cache.entries;
      limit_pages = config.memory_limit_pages;
    }

let cost_paths (config : config) ~npages =
  {
    Stepper.Cost.paths = Stepper.Cost.intr_paths ~npages;
    cache_entries = config.cache.Ni_cache.entries;
    prefetch = 1;
  }
