(** A whole node running Per-process UTLBs — the design point the paper
    could not evaluate ("we have not compared the per-process UTLB with
    [the] Shared UTLB-Cache approach because we lack multiple program
    traces", Section 7). The synthetic workload generators remove that
    obstacle, so this engine exists to run exactly that comparison.

    A fixed NI SRAM budget is split evenly into one translation table
    per process (the static allocation drawback of Section 3.2). A
    process whose communication footprint exceeds its table share
    evicts — and therefore {e unpins} — on every capacity miss, which is
    the behaviour the Shared UTLB-Cache was invented to avoid.

    Lookups never miss on the NI (the table is indexed directly), so
    the per-lookup cost is the user-level tree lookup, plus pinning on
    check misses, plus the unpinning forced by table capacity.
    Satisfies {!Engine_intf.S} as the ["per-process"] mechanism. *)

val mechanism : string
(** ["per-process"]. *)

type config = {
  sram_budget_entries : int;
      (** Total NI SRAM translation entries across all processes. *)
  processes : int;  (** Number of per-process tables to carve. *)
  policy : Replacement.policy;
}

val default_config : config
(** 8192 entries (the paper's 32 KB) split over 5 processes, LRU. *)

val entries_per_process : config -> int
(** Static geometry: the table share each process would be carved,
    [sram_budget_entries / processes] — [0] when [processes <= 0]
    ({!create} would raise). Lets static analyses size the per-process
    tables without building an engine. *)

type t

val create :
  ?host:Utlb_mem.Host_memory.t ->
  ?sanitizer:Utlb_sim.Sanitizer.t ->
  ?obs:Utlb_obs.Scope.t ->
  ?faults:Utlb_fault.Injector.t ->
  ?tenancy:Utlb_tenant.Arbiter.t ->
  seed:int64 ->
  config ->
  t
(** With [sanitizer], {!run_invariants} cross-checks every per-process
    table against the host (see {!Per_process.self_check}). With
    [faults], table-entry installs after a pinning lookup may absorb
    injected DMA failures (retried; an exhausted budget falls back to
    an interrupt-path install) — recoveries are counted in the
    report's [fault_recoveries].
    @raise Invalid_argument if the budget divides to zero entries per
    process. *)

val table_entries_per_process : t -> int

val add_process : t -> Utlb_mem.Pid.t -> unit
(** Admit a process, carving its table from the SRAM budget.
    Idempotent for known processes.
    @raise Invalid_argument if more processes appear than tables. *)

val remove_process : t -> Utlb_mem.Pid.t -> int
(** Process exit: evict (and unpin) everything in the process's table
    and free it. Returns pages released; unknown processes release 0.
    With a sanitizer, audits the pin ledger (UV01/UV08). *)

val processes : t -> Utlb_mem.Pid.t list
(** Live processes, ascending pid. *)

type outcome = {
  check_miss : bool;
  pages_pinned : int;
  pages_unpinned : int;
}

val lookup : t -> pid:Utlb_mem.Pid.t -> vpn:int -> npages:int -> outcome
(** Processes are admitted on first use, up to [config.processes].
    @raise Invalid_argument if more processes appear than tables. *)

val report : t -> label:string -> Report.t
(** [ni_page_misses] is always 0; pins/unpins reflect table capacity
    behaviour. *)

val remove_and_report : t -> label:string -> Report.t
(** Remove every live process, then snapshot the counters. *)

val occupancy : t -> Utlb_mem.Pid.t -> int

val run_invariants : t -> unit
(** Full invariant sweep over every admitted process (no-op without a
    sanitizer); violations are reported with code UV08. *)

val stepper : config -> Stepper.semantics
(** Step-level protocol view for [utlbcheck explore]: static-share
    semantics ({!Stepper.Static}) over {!entries_per_process}. *)

val cost_paths : config -> npages:int -> Stepper.Cost.profile
(** Worst-case priced control paths of one [npages]-page translation
    under this configuration, for [utlbcheck bound]
    ({!Engine_intf.S.cost_paths}). *)
