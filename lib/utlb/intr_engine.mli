(** The interrupt-based baseline (UNet-MM style, Section 6.2).

    The NI keeps the same Shared UTLB-Cache, but translations live
    {e only} in that cache: on every translation miss the NI interrupts
    the host CPU, which pins the page in kernel mode and installs the
    entry. A page whose entry is evicted from the cache — by a conflict
    or by the per-process memory limit — is immediately unpinned
    ("the interrupt-based approach always unpins a page that is evicted
    from the network interface translation cache").

    There is no user-level check, so [check_miss] is always zero.
    Satisfies {!Engine_intf.S} as the ["intr"] mechanism. *)

val mechanism : string
(** ["intr"]. *)

type config = {
  cache : Ni_cache.config;
  memory_limit_pages : int option;  (** Per-process pinned-page cap. *)
}

val default_config : config

type t

val create :
  ?host:Utlb_mem.Host_memory.t ->
  ?sanitizer:Utlb_sim.Sanitizer.t ->
  ?obs:Utlb_obs.Scope.t ->
  ?faults:Utlb_fault.Injector.t ->
  ?tenancy:Utlb_tenant.Arbiter.t ->
  seed:int64 ->
  config ->
  t
(** With [tenancy], the arbiter is bound to the cache geometry: tenant
    set windows partition the cache, a full tenant must shrink itself
    (or be denied) before pinning on a miss, and every access/eviction
    is tagged for the report's [isolation] breakdown.
    With [sanitizer], lookups shadow-check the touched cache entries
    against the host page table (cached <=> pinned in this design) and
    process removal verifies pin/unpin balance; violations are reported
    with codes UV01-UV08 (see {!Utlb_check.Invariant}). With [obs],
    every cache hit/miss/evict, interrupt, and pin/unpin is emitted
    through the scope. With [faults], interrupt service may time out
    and be re-issued (bounded by the plan's [irq-retries]) and cache
    lines may be spuriously invalidated — repaired from the host page
    table without re-pinning, preserving cached <=> pinned. Recoveries
    are counted in the report's [fault_recoveries]. *)

val host : t -> Utlb_mem.Host_memory.t

val cache : t -> Ni_cache.t

val add_process : t -> Utlb_mem.Pid.t -> unit

val remove_process : t -> Utlb_mem.Pid.t -> int
(** Process exit: unpin the process's cached pages and drop its lines.
    Returns pages released. *)

val processes : t -> Utlb_mem.Pid.t list
(** Live processes, ascending pid. *)

val pinned_pages : t -> Utlb_mem.Pid.t -> int

type outcome = {
  ni_accesses : int;
  ni_misses : int;
  interrupts : int;
  pages_pinned : int;
  pages_unpinned : int;
}

val lookup : t -> pid:Utlb_mem.Pid.t -> vpn:int -> npages:int -> outcome
(** @raise Invalid_argument if [npages < 1]. *)

val report : t -> label:string -> Report.t

val remove_and_report : t -> label:string -> Report.t
(** Remove every live process, then snapshot the counters. *)

val run_invariants : t -> unit
(** Full invariant sweep (no-op without a sanitizer): every cache line
    must belong to a live process, agree with the host page table, and
    be pinned; per-process pin accounting must agree between the
    tracker, the host counter, and a page-table walk; the miss
    classifier's shadow cache must be structurally consistent. *)

val stepper : config -> Stepper.semantics
(** Step-level protocol view for [utlbcheck explore]:
    cached = pinned semantics ({!Stepper.Intr}) with this config's
    cache entry count and pinned-page limit. *)

val cost_paths : config -> npages:int -> Stepper.Cost.profile
(** Worst-case priced control paths of one [npages]-page translation
    under this configuration, for [utlbcheck bound]
    ({!Engine_intf.S.cost_paths}). *)
