(** Step-level view of the pin protocol: the transition system that
    [utlbcheck explore] exhaustively enumerates.

    The whole-trace entry points of {!Engine_intf.S} execute a
    complete lookup — check, pin, publish, NI fetch, DMA — atomically,
    which is exactly the abstraction an interleaving explorer must
    {e not} take for granted. This module decomposes one communication
    request into the protocol's individual steps:

    {v
      issue -> [irq ->] pin -> publish   (per page, kernel side)
            -> fetch -> use              (per page, NI side; static
                                          tables skip the fetch)
            -> complete
    v}

    with background [unpin] (and, when the NI cache is full, [evict])
    actions interleaving freely. Each engine derives its semantics via
    {!Engine_intf.S.stepper}: the hierarchical UTLB keeps
    translations in the host table (evictions are harmless), the
    interrupt baseline equates cached with pinned (evictions unpin),
    and the per-process tables skip the NI fetch but live under a
    static share.

    The state is a small immutable value whose collections are kept
    sorted, so structural equality is canonical equality — the
    explorer hashes states directly. [enabled] and [apply] are
    deterministic; all nondeterminism is the explorer's choice of
    which enabled action to fire.

    Violations surface in three places: at [issue] (the admission
    checks, mirroring {!Utlb_check.Protocol} — UP01-UP05), at [apply]
    of a racing action (UP23), and at terminal states
    ({!terminal_violations} — UP20 deadlock, UP21 pin leak, UP22
    non-quiescence). The [mutant] knob seeds one protocol bug at a
    time so the explorer's detectors can be validated
    deterministically. *)

(** {2 Semantics} *)

type semantics =
  | Hier of { prepin : int; limit_pages : int option }
  | Intr of { entries : int; limit_pages : int option }
  | Static of { processes : int; share : int }
  | Victima of { prepin : int; limit_pages : int option }
      (** Hierarchical semantics: the victim store is a host-resident
          accelerator, so evictions stay harmless. *)
  | Utopia of { prepin : int; limit_pages : int option }
      (** Hierarchical semantics: RestSeg placement never changes the
          pin ledger, only where the NI finds the translation. *)
(** The capacity parameters the step relation needs, derived from an
    engine config by {!Engine_intf.S.stepper}. *)

val mechanism : semantics -> string
(** Registry name of the engine family: ["utlb"], ["intr"],
    ["per-process"], ["victima"], or ["utopia"]. *)

(** {2 Requests, mutants, scope} *)

type request = { vpn : int; npages : int; op : Utlb_trace.Record.op }

val request :
  ?op:Utlb_trace.Record.op -> vpn:int -> npages:int -> unit -> request
(** @raise Invalid_argument if [npages < 1] or [vpn < 0]. *)

(** One seeded protocol bug, for validating the explorer's
    detectors. *)
type mutant =
  | Blocking_evict
      (** The NI refuses to evict protected lines and blocks the
          fetch forever: deadlock (UP20). *)
  | Leak_unpin  (** The kernel never unpins: pin leak (UP21). *)
  | No_shootdown
      (** Unpin releases the page but leaves its translations in the
          table and NI cache: non-quiescence (UP22). *)
  | Early_unpin
      (** Unpin ignores in-flight spans: mid-transfer release
          (UP23). *)

val mutants : mutant list

val mutant_name : mutant -> string

val mutant_of_string : string -> mutant option

val mutant_code : mutant -> string
(** The UP code the mutant is designed to trip. *)

type scope = {
  procs : int;  (** Processes in synthesis mode. *)
  pages : int;  (** Distinct pages each request menu draws from. *)
  sets : int;  (** Modelled NI-cache capacity (lines). *)
  requests : int;  (** Requests each process issues, synthesis mode. *)
  page_cap : int;
      (** Pages of a request that are micro-stepped individually;
          wider requests still run their admission checks over the
          full span. *)
  program : (int * request) list option;
      (** Trace mode: the exact (pid, request) issue sequence, in
          global order, instead of the synthesized menu. *)
  mutant : mutant option;
}

val default_scope : scope
(** 2 processes x 2 pages x 4 cache lines, 2 requests each, no
    mutant — the scope [utlbcheck explore] checks by default. *)

(** {2 Actions} *)

type action =
  | Issue of { pid : int; req : request }  (** Process starts a request. *)
  | Irq of { pid : int; vpn : int }  (** Interrupt delivery (intr). *)
  | Pin of { pid : int; vpn : int }  (** Kernel pins one page. *)
  | Publish of { pid : int; vpn : int }  (** Table update. *)
  | Fetch of { pid : int; vpn : int }  (** NI fetches the entry. *)
  | Evict of { pid : int; vpn : int }  (** NI evicts a cache line. *)
  | Use of { pid : int; vpn : int }  (** DMA through the entry. *)
  | Complete of { pid : int }  (** Request retires. *)
  | Unpin of { pid : int; vpn : int }  (** Kernel releases a page. *)

val pid_of : action -> int

val page_of : action -> (int * int) option
(** The (owner pid, vpn) the action touches; [None] for [Issue] and
    [Complete]. *)

val action_label : action -> string
(** Stable one-line rendering, used in counterexample schedules. *)

(** {2 State} *)

type pin_sub = Irq_pending | Pin_pending | Publish_pending
type xfer_sub = Fetch_pending | Use_pending

type stage =
  | Pinning of { idx : int; sub : pin_sub }
  | Transfer of { idx : int; sub : xfer_sub }
  | Finishing

type activity = { req : request; stepped : int; stage : stage }

type pstate = { pid : int; left : int; act : activity option }

type state = {
  ps : pstate list;  (** Ascending pid. *)
  next_seq : int;  (** Trace-mode issue cursor. *)
  pins : (int * int) list;  (** Sorted (pid, vpn). *)
  table : (int * int) list;
  cache : (int * int) list;
  seen : int list;  (** Pids that ever issued, sorted. *)
}
(** Canonical by construction: every collection sorted, so structural
    equality and [Hashtbl.hash] identify equal protocol states. *)

val initial : scope -> semantics -> state

val in_active : state -> int -> int -> bool
(** [in_active st pid vpn]: the page lies in [pid]'s in-flight
    (micro-stepped) span. In-flight pages are protected from clean
    unpinning. *)

val population : state -> int -> int
(** Pages the process currently pins. *)

val capacity : semantics -> int
(** Pinned-page population cap ([max_int] when unlimited). *)

(** {2 The step relation} *)

type severity = Error | Warning

type violation = {
  code : string;  (** UP01-UP05, UP20-UP23 ({!Utlb_check.Catalogue}). *)
  pid : int;
  severity : severity;
  message : string;
}

val enabled : scope -> semantics -> state -> action list
(** All actions the protocol allows from [st], deterministically
    sorted. The empty list marks a terminal state — pass it to
    {!terminal_violations}. *)

val apply : scope -> semantics -> state -> action -> state * violation list
(** Fire one action. Deterministic. The violations are those this
    very transition proves (admission checks at [Issue], in-flight
    races at [Fetch]/[Evict]/[Use]). *)

val terminal_violations : scope -> semantics -> state -> violation list
(** Judge a terminal state ([enabled] returned []): pending work means
    deadlock (UP20); otherwise surviving pins are an unreachable-unpin
    leak (UP21); otherwise stale table/cache entries are
    non-quiescence (UP22). Clean discipline drains all three. *)

(** {2 Worst-case cost paths}

    The priced step vocabulary the [utlbcheck bound] analyzer
    abstract-interprets. Each engine enumerates — via
    {!Engine_intf.S.cost_paths} — the control paths one translation of
    [npages] pages can take through its protocol (hit, miss, walk,
    reclaim, plus engine-specific chains such as Victima's
    spill-recall or Utopia's RestSeg fallback) as sequences of priced
    steps. {!Utlb_check.Bound} prices every step against the
    {!Cost_model} (adding the fault plan's worst-case surcharge at
    walk and interrupt steps) and takes the per-path maximum as a
    sound single-translation latency bound.

    Soundness contract: each path must {e dominate} the corresponding
    terms of the engine's Section 6.2 cost equation — every rate is
    replaced by its worst case (miss rates 1, one reclaim unpin per
    page pinned, the widest pin ioctl the pre-pin window allows) — so
    an empirically observed average cost can never exceed the priced
    worst path. *)

module Cost : sig
  type step =
    | Check of int  (** Worst-case user-level bitmap check of n pages. *)
    | Pin of int  (** One pin ioctl covering n contiguous pages. *)
    | Unpin of int  (** One unpin ioctl releasing n pages. *)
    | Intr  (** Interrupt dispatch to the host. *)
    | Kernel_pin  (** Interrupt-path kernel pin service. *)
    | Kernel_unpin  (** Interrupt-path unpin (cached = pinned evict). *)
    | Ni_hit  (** Shared UTLB-Cache probe. *)
    | Ni_direct
        (** Direct NI SRAM read: per-process table slot, victim-store
            line, or RestSeg frame. *)
    | Walk of int  (** NI miss walk DMA-fetching n entries. *)
    | Dma of int  (** Raw DMA of n entries (victim-store spill). *)

  type path = { path : string; steps : step list }

  type profile = {
    paths : path list;
    cache_entries : int;
        (** Effective NI-side translation capacity (cache entries or
            the per-process SRAM share) — the geometry UP43 checks. *)
    prefetch : int;  (** Entries fetched per miss walk. *)
  }

  val hier_paths : prefetch:int -> prepin:int -> npages:int -> path list
  (** Hierarchical-UTLB family: [hit], [ni-miss] (every page walks),
      and [walk] (every page also check-misses: one pin ioctl over the
      pre-pin span, then a single-page reclaim unpin per pinned
      page). *)

  val intr_paths : npages:int -> path list
  (** Interrupt baseline: [hit], [miss] (interrupt + kernel pin per
      page), and [evict-unpin] (every fill also evicts, and under
      cached = pinned every eviction unpins). *)

  val static_paths : npages:int -> path list
  (** Per-process tables: [hit] (direct SRAM reads) and [miss] (pin,
      single-entry table fill per page, one reclaim unpin per
      page). *)

  val victima_paths : prefetch:int -> prepin:int -> npages:int -> path list
  (** {!hier_paths} plus [recall] (miss served from the victim store:
      a direct read instead of a walk) and [spill-walk] (every fill
      also spills an evicted line to the store: one extra single-entry
      DMA per page). *)

  val utopia_paths : prefetch:int -> prepin:int -> npages:int -> path list
  (** [restseg-hit] (hashed direct placement), [probe-hit] (RestSeg
      probe misses, cache probe hits), and [restseg-fallback] (both
      probes miss on every page: the full walk chain behind a wasted
      RestSeg probe per page). *)
end
