(** Step-level view of the pin protocol: the transition system that
    [utlbcheck explore] exhaustively enumerates.

    The whole-trace entry points of {!Engine_intf.S} execute a
    complete lookup — check, pin, publish, NI fetch, DMA — atomically,
    which is exactly the abstraction an interleaving explorer must
    {e not} take for granted. This module decomposes one communication
    request into the protocol's individual steps:

    {v
      issue -> [irq ->] pin -> publish   (per page, kernel side)
            -> fetch -> use              (per page, NI side; static
                                          tables skip the fetch)
            -> complete
    v}

    with background [unpin] (and, when the NI cache is full, [evict])
    actions interleaving freely. Each engine derives its semantics via
    {!Engine_intf.S.stepper}: the hierarchical UTLB keeps
    translations in the host table (evictions are harmless), the
    interrupt baseline equates cached with pinned (evictions unpin),
    and the per-process tables skip the NI fetch but live under a
    static share.

    The state is a small immutable value whose collections are kept
    sorted, so structural equality is canonical equality — the
    explorer hashes states directly. [enabled] and [apply] are
    deterministic; all nondeterminism is the explorer's choice of
    which enabled action to fire.

    Violations surface in three places: at [issue] (the admission
    checks, mirroring {!Utlb_check.Protocol} — UP01-UP05), at [apply]
    of a racing action (UP23), and at terminal states
    ({!terminal_violations} — UP20 deadlock, UP21 pin leak, UP22
    non-quiescence). The [mutant] knob seeds one protocol bug at a
    time so the explorer's detectors can be validated
    deterministically. *)

(** {2 Semantics} *)

type semantics =
  | Hier of { prepin : int; limit_pages : int option }
  | Intr of { entries : int; limit_pages : int option }
  | Static of { processes : int; share : int }
  | Victima of { prepin : int; limit_pages : int option }
      (** Hierarchical semantics: the victim store is a host-resident
          accelerator, so evictions stay harmless. *)
  | Utopia of { prepin : int; limit_pages : int option }
      (** Hierarchical semantics: RestSeg placement never changes the
          pin ledger, only where the NI finds the translation. *)
(** The capacity parameters the step relation needs, derived from an
    engine config by {!Engine_intf.S.stepper}. *)

val mechanism : semantics -> string
(** Registry name of the engine family: ["utlb"], ["intr"],
    ["per-process"], ["victima"], or ["utopia"]. *)

(** {2 Requests, mutants, scope} *)

type request = { vpn : int; npages : int; op : Utlb_trace.Record.op }

val request :
  ?op:Utlb_trace.Record.op -> vpn:int -> npages:int -> unit -> request
(** @raise Invalid_argument if [npages < 1] or [vpn < 0]. *)

(** One seeded protocol bug, for validating the explorer's
    detectors. *)
type mutant =
  | Blocking_evict
      (** The NI refuses to evict protected lines and blocks the
          fetch forever: deadlock (UP20). *)
  | Leak_unpin  (** The kernel never unpins: pin leak (UP21). *)
  | No_shootdown
      (** Unpin releases the page but leaves its translations in the
          table and NI cache: non-quiescence (UP22). *)
  | Early_unpin
      (** Unpin ignores in-flight spans: mid-transfer release
          (UP23). *)

val mutants : mutant list

val mutant_name : mutant -> string

val mutant_of_string : string -> mutant option

val mutant_code : mutant -> string
(** The UP code the mutant is designed to trip. *)

type scope = {
  procs : int;  (** Processes in synthesis mode. *)
  pages : int;  (** Distinct pages each request menu draws from. *)
  sets : int;  (** Modelled NI-cache capacity (lines). *)
  requests : int;  (** Requests each process issues, synthesis mode. *)
  page_cap : int;
      (** Pages of a request that are micro-stepped individually;
          wider requests still run their admission checks over the
          full span. *)
  program : (int * request) list option;
      (** Trace mode: the exact (pid, request) issue sequence, in
          global order, instead of the synthesized menu. *)
  mutant : mutant option;
}

val default_scope : scope
(** 2 processes x 2 pages x 4 cache lines, 2 requests each, no
    mutant — the scope [utlbcheck explore] checks by default. *)

(** {2 Actions} *)

type action =
  | Issue of { pid : int; req : request }  (** Process starts a request. *)
  | Irq of { pid : int; vpn : int }  (** Interrupt delivery (intr). *)
  | Pin of { pid : int; vpn : int }  (** Kernel pins one page. *)
  | Publish of { pid : int; vpn : int }  (** Table update. *)
  | Fetch of { pid : int; vpn : int }  (** NI fetches the entry. *)
  | Evict of { pid : int; vpn : int }  (** NI evicts a cache line. *)
  | Use of { pid : int; vpn : int }  (** DMA through the entry. *)
  | Complete of { pid : int }  (** Request retires. *)
  | Unpin of { pid : int; vpn : int }  (** Kernel releases a page. *)

val pid_of : action -> int

val page_of : action -> (int * int) option
(** The (owner pid, vpn) the action touches; [None] for [Issue] and
    [Complete]. *)

val action_label : action -> string
(** Stable one-line rendering, used in counterexample schedules. *)

(** {2 State} *)

type pin_sub = Irq_pending | Pin_pending | Publish_pending
type xfer_sub = Fetch_pending | Use_pending

type stage =
  | Pinning of { idx : int; sub : pin_sub }
  | Transfer of { idx : int; sub : xfer_sub }
  | Finishing

type activity = { req : request; stepped : int; stage : stage }

type pstate = { pid : int; left : int; act : activity option }

type state = {
  ps : pstate list;  (** Ascending pid. *)
  next_seq : int;  (** Trace-mode issue cursor. *)
  pins : (int * int) list;  (** Sorted (pid, vpn). *)
  table : (int * int) list;
  cache : (int * int) list;
  seen : int list;  (** Pids that ever issued, sorted. *)
}
(** Canonical by construction: every collection sorted, so structural
    equality and [Hashtbl.hash] identify equal protocol states. *)

val initial : scope -> semantics -> state

val in_active : state -> int -> int -> bool
(** [in_active st pid vpn]: the page lies in [pid]'s in-flight
    (micro-stepped) span. In-flight pages are protected from clean
    unpinning. *)

val population : state -> int -> int
(** Pages the process currently pins. *)

val capacity : semantics -> int
(** Pinned-page population cap ([max_int] when unlimited). *)

(** {2 The step relation} *)

type severity = Error | Warning

type violation = {
  code : string;  (** UP01-UP05, UP20-UP23 ({!Utlb_check.Catalogue}). *)
  pid : int;
  severity : severity;
  message : string;
}

val enabled : scope -> semantics -> state -> action list
(** All actions the protocol allows from [st], deterministically
    sorted. The empty list marks a terminal state — pass it to
    {!terminal_violations}. *)

val apply : scope -> semantics -> state -> action -> state * violation list
(** Fire one action. Deterministic. The violations are those this
    very transition proves (admission checks at [Issue], in-flight
    races at [Fetch]/[Evict]/[Use]). *)

val terminal_violations : scope -> semantics -> state -> violation list
(** Judge a terminal state ([enabled] returned []): pending work means
    deadlock (UP20); otherwise surviving pins are an unreachable-unpin
    leak (UP21); otherwise stale table/cache entries are
    non-quiescence (UP22). Clean discipline drains all three. *)
