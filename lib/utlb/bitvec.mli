(** Packed pin-status bit vector.

    The Hierarchical-UTLB user-level library "only needs a bit array to
    maintain the memory-pinning status of virtual pages" (Section 3.3).
    The vector is a flat, growable array of 62-bit words, so the check
    operation of the paper's Table 1 ([all_set]/[first_clear]: scan a
    page range and report whether every page is pinned) runs word-wise
    — a fully pinned 62-page span costs one comparison, not 62 table
    probes. *)

type t

val create : unit -> t

val set : t -> int -> unit
(** Mark page [vpn] pinned. @raise Invalid_argument on negative vpn. *)

val clear : t -> int -> unit

val test : t -> int -> bool

val all_set : t -> vpn:int -> count:int -> bool
(** True when every page of [vpn .. vpn+count-1] is set.
    @raise Invalid_argument if [count <= 0]. *)

val first_clear : t -> vpn:int -> count:int -> int option
(** Lowest unset page in the range, if any. *)

val clear_pages : t -> vpn:int -> count:int -> int list
(** All unset pages in the range, ascending. *)

val clear_count : t -> vpn:int -> count:int -> int
(** Number of unset pages in the range, without building the list. *)

val iter_clear_runs :
  t -> vpn:int -> count:int -> (vpn:int -> count:int -> unit) -> unit
(** Call [f ~vpn ~count] once per maximal run of consecutive unset
    pages in the range, ascending. [f] may set bits inside the run it
    was given (the pin path does); bits at or before the delivered run
    are not re-examined. *)

val population : t -> int
(** Number of set bits (maintained incrementally). *)

val recount : t -> int
(** Number of set bits recomputed by a popcount sweep of the backing
    words — the audit the differential tests compare against
    [population]. *)
