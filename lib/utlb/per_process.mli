(** The Per-process UTLB (Section 3.1) — the paper's first design.

    A fixed-size translation table lives in NI SRAM for each process
    (allocated at creation, region ["pp-utlb-<pid>"] when SRAM is
    given). The user-level library keeps a two-level {!Lookup_tree}
    from virtual page to table index plus a free-index list. On a check
    miss it pins the pages and installs their frames at free indices;
    when the table fills, it evicts victims with the configured policy,
    unpinning them and freeing their indices.

    The NI reads the physical address by direct table indexing — there
    are no NI-side misses, but SRAM capacity bounds the table (the
    motivation for the Shared UTLB-Cache). The module also reports the
    fragmentation the paper says Hierarchical-UTLB eliminates: the
    number of non-contiguous index runs a multi-page buffer maps to. *)

type t

val create :
  ?sram:Utlb_nic.Sram.t ->
  host:Utlb_mem.Host_memory.t ->
  pid:Utlb_mem.Pid.t ->
  table_entries:int ->
  policy:Replacement.policy ->
  seed:int64 ->
  unit ->
  t
(** @raise Invalid_argument if [table_entries <= 0] or SRAM is
    exhausted. *)

val pid : t -> Utlb_mem.Pid.t

val table_entries : t -> int

val occupancy : t -> int
(** Indices currently holding a valid translation. *)

val sram_bytes : t -> int
(** SRAM consumed by the table (8 bytes per entry). *)

type outcome = {
  check_miss : bool;
  pages_pinned : int;
  pages_unpinned : int;
  indices : int array;  (** Table index for each page of the buffer. *)
  index_runs : int;  (** Contiguous index runs (1 = unfragmented). *)
}

val lookup : t -> vpn:int -> npages:int -> outcome
(** Translate a buffer, pinning and installing as needed.
    @raise Invalid_argument if [npages < 1] or larger than the table. *)

val release : t -> int
(** Process exit: evict (and unpin) every page still resident in the
    table, leaving it empty. Returns the number of pages released. *)

val translate_index : t -> index:int -> int option
(** NI path: read the frame stored at a table index. [None] when the
    slot holds the garbage frame. *)

val is_pinned : t -> vpn:int -> bool

val self_check : t -> string list
(** Cross-check every layer of the per-process design against the
    host: SRAM table occupancy, lookup-tree and replacement-tracker
    agreement, free-list accounting, and per-entry frame/pin
    consistency. Returns one description per violation; [[]] when
    healthy. *)

val pins : t -> int
(** Total pages pinned over the object's lifetime. *)

val unpins : t -> int
