(** Victima-style translation engine (cf. PAPERS.md: "Victima:
    Drastically Increasing Address Translation Reach by Leveraging
    Underutilized Cache Resources", MICRO '23), transplanted onto the
    UTLB substrate.

    The front end is the hierarchical UTLB verbatim — pin bit vector,
    host-resident translation table, Shared UTLB-Cache with
    prefetching. Behind the cache sits an L2-resident {e victim store}
    of [victim_entries] lines, managed FIFO:

    + a capacity eviction from the Shared UTLB-Cache {e spills} the
      displaced (pid, vpn, frame) into the store instead of dropping
      it (counted in {!Report.t.spills});
    + an NI miss first probes the store; a hit {e recalls} the line —
      one direct read refills the cache, no DMA table walk (counted in
      {!Report.t.recalls}, priced by {!Report.victima_cost_us});
    + unpinning or process exit purges the page's store entry, so a
      recall can never resurface a stale translation.

    [victim_entries = 0] disables the store and the engine degenerates
    to {!Hier_engine} exactly (same RNG draw order, same report). It
    satisfies {!Engine_intf.S} (registered as ["victima"]). *)

val mechanism : string
(** ["victima"]. *)

type config = {
  cache : Ni_cache.config;
  prefetch : int;  (** Entries fetched per NI miss, >= 1. *)
  prepin : int;  (** Contiguous pages pinned per check miss, >= 1. *)
  policy : Replacement.policy;
  memory_limit_pages : int option;  (** Per-process pinned-page cap. *)
  victim_entries : int;
      (** L2 victim-store capacity in lines; 0 disables spilling. *)
}

val default_config : config
(** The hierarchical defaults plus a 2 K-line victim store. *)

type t

val create :
  ?host:Utlb_mem.Host_memory.t ->
  ?sanitizer:Utlb_sim.Sanitizer.t ->
  ?obs:Utlb_obs.Scope.t ->
  ?faults:Utlb_fault.Injector.t ->
  ?tenancy:Utlb_tenant.Arbiter.t ->
  seed:int64 ->
  config ->
  t
(** All optional planes behave as in {!Hier_engine.create}; the
    sanitizer additionally audits the victim store at
    {!run_invariants} (a recallable line must map a pinned, resident
    page).
    @raise Invalid_argument on a non-positive prefetch/prepin, a
    negative [victim_entries], or an invalid cache geometry. *)

val config : t -> config

val host : t -> Utlb_mem.Host_memory.t

val cache : t -> Ni_cache.t

val classifier : t -> Miss_classifier.t

val add_process : t -> Utlb_mem.Pid.t -> unit
(** Idempotent. *)

val remove_process : t -> Utlb_mem.Pid.t -> int
(** Unpins everything the process holds, drops its cache lines and
    victim-store entries. Returns pages released. *)

val processes : t -> Utlb_mem.Pid.t list
(** Live processes, ascending pid. *)

val table : t -> Utlb_mem.Pid.t -> Translation_table.t
(** @raise Invalid_argument for an unknown process. *)

val pinned_pages : t -> Utlb_mem.Pid.t -> int

val victim_population : t -> int
(** Live lines currently spilled into the victim store. *)

type outcome = {
  check_miss : bool;
  pages_pinned : int;
  pin_calls : int;
  pages_unpinned : int;
  unpin_calls : int;
  ni_accesses : int;
  ni_misses : int;
  entries_fetched : int;
}

val lookup : t -> pid:Utlb_mem.Pid.t -> vpn:int -> npages:int -> outcome
(** Translate one communication buffer. A recall counts as an NI miss
    with zero entries fetched.
    @raise Invalid_argument if [npages < 1]. *)

val is_pinned : t -> pid:Utlb_mem.Pid.t -> vpn:int -> bool

val translate : t -> pid:Utlb_mem.Pid.t -> vpn:int -> int option

val report : t -> label:string -> Report.t

val remove_and_report : t -> label:string -> Report.t

val run_invariants : t -> unit

val stepper : config -> Stepper.semantics
(** {!Stepper.Victima}: hierarchical pin protocol (the victim store is
    a host-resident accelerator, so evictions stay harmless). *)

val cost_paths : config -> npages:int -> Stepper.Cost.profile
(** Worst-case priced control paths of one [npages]-page translation
    under this configuration, for [utlbcheck bound]
    ({!Engine_intf.S.cost_paths}). *)
