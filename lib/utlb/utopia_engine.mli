(** Utopia-style translation engine (cf. PAPERS.md: "Utopia: Fast and
    Efficient Address Translation via Hybrid Restrictive & Flexible
    Virtual-to-Physical Address Mappings", MICRO '23), transplanted
    onto the UTLB substrate.

    Translations live in one of two zones:

    + the {e RestSeg}, a [rest_sets] x [rest_ways] hash-constrained
      segment. Freshly pinned pages claim a slot at pin time (the
      kernel knows the frame right there); a full set leaves the page
      on the flexible path — restrictive placement never displaces.
      An NI access that hits the RestSeg resolves with one hashed
      probe: no set walk, no table fetch, no miss-classifier traffic
      (counted in {!Report.t.restseg_hits}, priced by
      {!Report.utopia_cost_us});
    + the {e flexible} zone — the hierarchical UTLB verbatim (Shared
      UTLB-Cache over the host-resident table) — for everything else.

    Unpinning or process exit frees the page's RestSeg slot, so a hit
    can never resurface a stale translation. [rest_ways = 0] disables
    the RestSeg and the engine degenerates to {!Hier_engine} exactly
    (same RNG draw order, same report). It satisfies {!Engine_intf.S}
    (registered as ["utopia"]). *)

val mechanism : string
(** ["utopia"]. *)

type config = {
  cache : Ni_cache.config;
  prefetch : int;  (** Entries fetched per NI miss, >= 1. *)
  prepin : int;  (** Contiguous pages pinned per check miss, >= 1. *)
  policy : Replacement.policy;
  memory_limit_pages : int option;  (** Per-process pinned-page cap. *)
  rest_sets : int;
      (** RestSeg sets; must be a power of two when [rest_ways > 0]. *)
  rest_ways : int;  (** Slots per RestSeg set; 0 disables the zone. *)
}

val default_config : config
(** The hierarchical defaults plus a 2 K-set x 4-way RestSeg. *)

type t

val create :
  ?host:Utlb_mem.Host_memory.t ->
  ?sanitizer:Utlb_sim.Sanitizer.t ->
  ?obs:Utlb_obs.Scope.t ->
  ?faults:Utlb_fault.Injector.t ->
  ?tenancy:Utlb_tenant.Arbiter.t ->
  seed:int64 ->
  config ->
  t
(** All optional planes behave as in {!Hier_engine.create}; the
    sanitizer additionally audits every RestSeg slot at
    {!run_invariants} (it must map a pinned, resident page with the
    matching frame).
    @raise Invalid_argument on a non-positive prefetch/prepin, a
    negative [rest_ways], a non-power-of-two [rest_sets] (when the
    zone is enabled), or an invalid cache geometry. *)

val config : t -> config

val host : t -> Utlb_mem.Host_memory.t

val cache : t -> Ni_cache.t

val classifier : t -> Miss_classifier.t

val add_process : t -> Utlb_mem.Pid.t -> unit
(** Idempotent. *)

val remove_process : t -> Utlb_mem.Pid.t -> int
(** Unpins everything the process holds, drops its cache lines and
    RestSeg slots. Returns pages released. *)

val processes : t -> Utlb_mem.Pid.t list
(** Live processes, ascending pid. *)

val table : t -> Utlb_mem.Pid.t -> Translation_table.t
(** @raise Invalid_argument for an unknown process. *)

val pinned_pages : t -> Utlb_mem.Pid.t -> int

val rest_population : t -> int
(** RestSeg slots currently claimed. *)

type outcome = {
  check_miss : bool;
  pages_pinned : int;
  pin_calls : int;
  pages_unpinned : int;
  unpin_calls : int;
  ni_accesses : int;
  ni_misses : int;
  entries_fetched : int;
}

val lookup : t -> pid:Utlb_mem.Pid.t -> vpn:int -> npages:int -> outcome
(** Translate one communication buffer. A RestSeg hit counts as an NI
    hit.
    @raise Invalid_argument if [npages < 1]. *)

val is_pinned : t -> pid:Utlb_mem.Pid.t -> vpn:int -> bool

val translate : t -> pid:Utlb_mem.Pid.t -> vpn:int -> int option

val report : t -> label:string -> Report.t

val remove_and_report : t -> label:string -> Report.t

val run_invariants : t -> unit

val stepper : config -> Stepper.semantics
(** {!Stepper.Utopia}: hierarchical pin protocol (RestSeg placement
    never changes the pin ledger). *)

val cost_paths : config -> npages:int -> Stepper.Cost.profile
(** Worst-case priced control paths of one [npages]-page translation
    under this configuration, for [utlbcheck bound]
    ({!Engine_intf.S.cost_paths}). *)
