module Ev = Utlb_obs.Event

let of_model model kind ~count =
  let n = max 1 count in
  match (kind : Ev.kind) with
  | Ev.Lookup -> Cost_model.user_check_us model
  | Ev.Pin -> Cost_model.pin_us model ~pages:n
  | Ev.Unpin -> Cost_model.unpin_us model ~pages:n
  | Ev.Ni_hit -> Cost_model.ni_hit_us model
  | Ev.Ni_miss ->
    (* The DMA portion is billed to the Fetch event; keep the NI-side
       remainder here so a miss plus its fetch sums to ni_miss_us. *)
    Float.max 0.0
      (Cost_model.ni_miss_us model ~entries:1 -. Cost_model.dma_us model ~entries:1)
  | Ev.Fetch -> Cost_model.dma_us model ~entries:n
  | Ev.Interrupt -> Cost_model.intr_us model
  | Ev.Fault_retry ->
    (* Each failed attempt burned one single-entry DMA transfer. *)
    Cost_model.dma_us model ~entries:1 *. float_of_int n
  | Ev.Check_miss | Ev.Pre_pin | Ev.Ni_evict | Ev.Dma_fetch_start
  | Ev.Dma_fetch_end | Ev.Dma_data_start | Ev.Dma_data_end | Ev.Bus_start
  | Ev.Bus_end | Ev.Dispatch | Ev.Fault | Ev.Diff | Ev.Fault_inject
  | Ev.Fault_recover ->
    0.0

let default kind ~count = of_model Cost_model.default kind ~count
