(** Bounded ring buffer of observability events.

    The sink retains the last [capacity] events (oldest evicted first)
    but keeps exact per-kind event counts and magnitude totals for the
    whole run regardless of drops — so end-of-run reconciliation
    against {!Utlb.Report} counters is exact even when the buffered
    timeline is truncated. *)

type t

val default_capacity : int
(** 65536 events. *)

val create : ?capacity:int -> unit -> t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : t -> int

val emit :
  t ->
  at_us:float ->
  kind:Event.kind ->
  pid:int ->
  ?vpn:int ->
  ?count:int ->
  unit ->
  unit
(** Append one event; assigns its [seq]. When the ring is full the
    oldest retained event is evicted (the per-kind counters still see
    it). *)

val emitted : t -> int
(** Total events ever emitted. *)

val retained : t -> int
(** Events currently buffered ([min emitted capacity]). *)

val dropped : t -> int
(** [emitted - retained]. *)

val kind_count : t -> Event.kind -> int
(** Events of this kind emitted over the whole run (drop-proof). *)

val kind_total : t -> Event.kind -> int
(** Sum of the [count] magnitudes of this kind over the whole run
    (pages pinned, entries fetched, bytes moved, ...). *)

val iter : t -> (Event.t -> unit) -> unit
(** Retained events, oldest first. *)

val events : t -> Event.t list
(** Retained events, oldest first. *)

val clear : t -> unit
