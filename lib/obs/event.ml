type component = Host | Ni | Dma | Bus | Irq | Sched | Svm | Flt

let component_name = function
  | Host -> "host"
  | Ni -> "ni"
  | Dma -> "dma"
  | Bus -> "bus"
  | Irq -> "irq"
  | Sched -> "sched"
  | Svm -> "svm"
  | Flt -> "flt"

let component_tid = function
  | Host -> 0
  | Ni -> 1
  | Dma -> 2
  | Bus -> 3
  | Irq -> 4
  | Sched -> 5
  | Svm -> 6
  | Flt -> 7

type kind =
  | Lookup
  | Check_miss
  | Pre_pin
  | Pin
  | Unpin
  | Ni_hit
  | Ni_miss
  | Ni_evict
  | Fetch
  | Interrupt
  | Dma_fetch_start
  | Dma_fetch_end
  | Dma_data_start
  | Dma_data_end
  | Bus_start
  | Bus_end
  | Dispatch
  | Fault
  | Diff
  | Fault_inject
  | Fault_retry
  | Fault_recover

let n_kinds = 22

let kind_index = function
  | Lookup -> 0
  | Check_miss -> 1
  | Pre_pin -> 2
  | Pin -> 3
  | Unpin -> 4
  | Ni_hit -> 5
  | Ni_miss -> 6
  | Ni_evict -> 7
  | Fetch -> 8
  | Interrupt -> 9
  | Dma_fetch_start -> 10
  | Dma_fetch_end -> 11
  | Dma_data_start -> 12
  | Dma_data_end -> 13
  | Bus_start -> 14
  | Bus_end -> 15
  | Dispatch -> 16
  | Fault -> 17
  | Diff -> 18
  | Fault_inject -> 19
  | Fault_retry -> 20
  | Fault_recover -> 21

let all_kinds =
  [
    Lookup; Check_miss; Pre_pin; Pin; Unpin; Ni_hit; Ni_miss; Ni_evict;
    Fetch; Interrupt; Dma_fetch_start; Dma_fetch_end; Dma_data_start;
    Dma_data_end; Bus_start; Bus_end; Dispatch; Fault; Diff; Fault_inject;
    Fault_retry; Fault_recover;
  ]

let kind_name = function
  | Lookup -> "lookup"
  | Check_miss -> "check_miss"
  | Pre_pin -> "pre_pin"
  | Pin -> "pin"
  | Unpin -> "unpin"
  | Ni_hit -> "ni_hit"
  | Ni_miss -> "ni_miss"
  | Ni_evict -> "ni_evict"
  | Fetch -> "fetch"
  | Interrupt -> "interrupt"
  | Dma_fetch_start -> "dma_fetch_start"
  | Dma_fetch_end -> "dma_fetch_end"
  | Dma_data_start -> "dma_data_start"
  | Dma_data_end -> "dma_data_end"
  | Bus_start -> "bus_start"
  | Bus_end -> "bus_end"
  | Dispatch -> "dispatch"
  | Fault -> "fault"
  | Diff -> "diff"
  | Fault_inject -> "fault_inject"
  | Fault_retry -> "fault_retry"
  | Fault_recover -> "fault_recover"

let component_of_kind = function
  | Lookup | Check_miss | Pre_pin | Pin | Unpin -> Host
  | Ni_hit | Ni_miss | Ni_evict | Fetch -> Ni
  | Interrupt -> Irq
  | Dma_fetch_start | Dma_fetch_end | Dma_data_start | Dma_data_end -> Dma
  | Bus_start | Bus_end -> Bus
  | Dispatch -> Sched
  | Fault | Diff -> Svm
  | Fault_inject | Fault_retry | Fault_recover -> Flt

(* Fault-plane kinds only exist while a fault plan is active; the
   standard metric schema (and therefore every committed golden
   snapshot) excludes them. *)
let is_fault_kind = function
  | Fault_inject | Fault_retry | Fault_recover -> true
  | _ -> false

type phase = Begin | End | Instant

let phase_of_kind = function
  | Dma_fetch_start | Dma_data_start | Bus_start -> Begin
  | Dma_fetch_end | Dma_data_end | Bus_end -> End
  | _ -> Instant

(* Chrome span begin/end events must share one name; everything else
   keeps its kind name. *)
let span_name = function
  | Dma_fetch_start | Dma_fetch_end -> "dma_fetch"
  | Dma_data_start | Dma_data_end -> "dma_data"
  | Bus_start | Bus_end -> "bus"
  | k -> kind_name k

type t = {
  seq : int;
  at_us : float;
  kind : kind;
  pid : int;
  vpn : int;
  count : int;
}

let component t = component_of_kind t.kind

let pp ppf t =
  Format.fprintf ppf "%10.3f %s/%s pid=%d" t.at_us
    (component_name (component t))
    (kind_name t.kind) t.pid;
  if t.vpn >= 0 then Format.fprintf ppf " vpn=%#x" t.vpn;
  if t.count > 0 then Format.fprintf ppf " n=%d" t.count

let kind_of_name name = List.find_opt (fun k -> kind_name k = name) all_kinds

(* Inverse of [pp]. [int_of_string] accepts both the bare decimal and
   the [0x]-prefixed hex [pp] writes for [vpn]. *)
let of_string ?(seq = 0) s =
  let tokens =
    String.split_on_char ' ' s |> List.filter (fun t -> t <> "")
  in
  match tokens with
  | [] | [ _ ] -> Error "expected \"<time> <component>/<kind> pid=N ...\""
  | time :: comp_kind :: fields -> (
    match float_of_string_opt time with
    | None -> Error (Printf.sprintf "bad timestamp %S" time)
    | Some at_us -> (
      match String.index_opt comp_kind '/' with
      | None ->
        Error (Printf.sprintf "expected <component>/<kind>, got %S" comp_kind)
      | Some i -> (
        let comp = String.sub comp_kind 0 i in
        let kname =
          String.sub comp_kind (i + 1) (String.length comp_kind - i - 1)
        in
        match kind_of_name kname with
        | None -> Error (Printf.sprintf "unknown event kind %S" kname)
        | Some kind ->
          if component_name (component_of_kind kind) <> comp then
            Error
              (Printf.sprintf "component %S does not emit %S" comp kname)
          else
            let rec parse pid vpn count = function
              | [] -> (
                match pid with
                | None -> Error "missing pid= field"
                | Some pid -> Ok { seq; at_us; kind; pid; vpn; count })
              | tok :: rest -> (
                match String.index_opt tok '=' with
                | None -> Error (Printf.sprintf "bad field %S" tok)
                | Some j -> (
                  let key = String.sub tok 0 j in
                  let value =
                    String.sub tok (j + 1) (String.length tok - j - 1)
                  in
                  match (key, int_of_string_opt value) with
                  | _, None ->
                    Error (Printf.sprintf "bad value in field %S" tok)
                  | "pid", v -> parse v vpn count rest
                  | "vpn", Some v -> parse pid v count rest
                  | "n", Some v -> parse pid vpn v rest
                  | _ -> Error (Printf.sprintf "unknown field %S" tok)))
            in
            parse None (-1) 0 fields)))
