type t = {
  capacity : int;
  ring : Event.t array;
  mutable len : int;
  mutable head : int; (* next write slot *)
  mutable emitted : int;
  counts : int array; (* events per kind, never dropped *)
  totals : int array; (* sum of Event.count per kind, never dropped *)
}

let default_capacity = 1 lsl 16

let dummy =
  { Event.seq = -1; at_us = 0.0; kind = Event.Lookup; pid = 0; vpn = -1;
    count = 0 }

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Trace_sink.create: capacity must be >= 1";
  {
    capacity;
    ring = Array.make capacity dummy;
    len = 0;
    head = 0;
    emitted = 0;
    counts = Array.make Event.n_kinds 0;
    totals = Array.make Event.n_kinds 0;
  }

let capacity t = t.capacity

let emitted t = t.emitted

let retained t = t.len

let dropped t = t.emitted - t.len

let emit t ~at_us ~kind ~pid ?(vpn = -1) ?(count = 0) () =
  let ev = { Event.seq = t.emitted; at_us; kind; pid; vpn; count } in
  t.ring.(t.head) <- ev;
  t.head <- (t.head + 1) mod t.capacity;
  if t.len < t.capacity then t.len <- t.len + 1;
  t.emitted <- t.emitted + 1;
  let i = Event.kind_index kind in
  t.counts.(i) <- t.counts.(i) + 1;
  t.totals.(i) <- t.totals.(i) + count

let kind_count t kind = t.counts.(Event.kind_index kind)

let kind_total t kind = t.totals.(Event.kind_index kind)

let iter t f =
  (* Oldest retained event first: when the ring wrapped, the oldest is
     at [head]; before that, at slot 0. *)
  let start = if t.len < t.capacity then 0 else t.head in
  for i = 0 to t.len - 1 do
    f t.ring.((start + i) mod t.capacity)
  done

let events t =
  let acc = ref [] in
  iter t (fun ev -> acc := ev :: !acc);
  List.rev !acc

let clear t =
  t.len <- 0;
  t.head <- 0;
  t.emitted <- 0;
  Array.fill t.counts 0 Event.n_kinds 0;
  Array.fill t.totals 0 Event.n_kinds 0
