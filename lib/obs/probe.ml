(* Compiled instrumentation hooks.

   A probe is the pre-resolved form of a [Scope.t option]: components
   build it once at creation and the hot path calls [t.emit] /
   [t.emit_at] unconditionally — no per-event [match] on an option and
   no argument boxing. [null]'s closures are shared no-ops, so the
   uninstrumented path costs two indirect calls that touch no state;
   the instrumented path appends to the scope's flat buffer and the
   owning component replays it at its own dispatch boundaries via
   [t.flush]. Per-event work the probe cannot absorb (e.g. computing a
   count that is only reported) should be gated on [t.active]. *)

type t = {
  active : bool;
  emit : Event.kind -> pid:int -> vpn:int -> count:int -> unit;
  emit_at : Event.kind -> at_us:float -> pid:int -> vpn:int -> count:int -> unit;
  flush : unit -> unit;
}

let null =
  {
    active = false;
    emit = (fun _ ~pid:_ ~vpn:_ ~count:_ -> ());
    emit_at = (fun _ ~at_us:_ ~pid:_ ~vpn:_ ~count:_ -> ());
    flush = ignore;
  }

let of_scope scope =
  {
    active = true;
    emit = (fun kind ~pid ~vpn ~count -> Scope.buffer_emit scope kind ~pid ~vpn ~count);
    emit_at =
      (fun kind ~at_us ~pid ~vpn ~count ->
        Scope.buffer_emit_at scope kind ~at_us ~pid ~vpn ~count);
    flush = (fun () -> Scope.flush scope);
  }

let of_scope_opt = function None -> null | Some scope -> of_scope scope

(* Sentinels understood by the scope/sink layer. *)
let no_vpn = -1

let no_count = 0
