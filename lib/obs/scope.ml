module Stats = Utlb_sim.Stats
module Engine = Utlb_sim.Engine
module Time = Utlb_sim.Time

(* Pre-resolved collectors for the standard metric schema, so the hot
   emit path never hashes a metric name. Building the cache registers
   the full schema up front: snapshots of runs that never hit a code
   path still carry its (zero) metrics, which keeps campaign snapshot
   merges structurally identical across cells. *)
type metric_cache = {
  registry : Metrics.t;
  kind_counters : Stats.Counter.t array;
  volume_counters : Stats.Counter.t option array;
  lookup_h : Stats.Histogram.t;
  miss_h : Stats.Histogram.t;
  fetch_h : Stats.Histogram.t;
}

let kind_metric_name kind =
  Event.component_name (Event.component_of_kind kind) ^ "/"
  ^ Event.kind_name kind

let volume_metric_name = function
  | Event.Pin -> Some "host/pages_pinned"
  | Event.Unpin -> Some "host/pages_unpinned"
  | Event.Pre_pin -> Some "host/pages_prepinned"
  | Event.Fetch -> Some "ni/entries_fetched"
  | Event.Dma_data_start -> Some "dma/bytes"
  | Event.Diff -> Some "svm/diff_bytes"
  | _ -> None

let build_cache registry =
  (* Fault-plane kinds are counted but never registered: the standard
     schema (and every golden snapshot of it) keeps its shape whether
     or not a fault plan is active. Their counts surface through the
     scope's own per-kind arrays and the trace sink instead. *)
  let kind_counters =
    Array.of_list
      (List.map
         (fun kind ->
           if Event.is_fault_kind kind then
             Stats.Counter.create (kind_metric_name kind)
           else Metrics.counter registry (kind_metric_name kind))
         Event.all_kinds)
  in
  let volume_counters =
    Array.of_list
      (List.map
         (fun kind ->
           Option.map
             (fun name -> Metrics.counter registry name)
             (volume_metric_name kind))
         Event.all_kinds)
  in
  {
    registry;
    kind_counters;
    volume_counters;
    lookup_h =
      Metrics.histogram registry "host/lookup_us" ~bucket_width:5.0 ~buckets:40;
    miss_h =
      Metrics.histogram registry "host/miss_us" ~bucket_width:5.0 ~buckets:40;
    fetch_h =
      Metrics.histogram registry "dma/fetch_us" ~bucket_width:2.0 ~buckets:50;
  }

let preregister registry = ignore (build_cache registry)

type t = {
  sink : Trace_sink.t option;
  cache : metric_cache option;
  cost_of : (Event.kind -> count:int -> float) option;
  mutable now_us : float;
  mutable pid : int;
  kind_counts : int array;
  kind_costs : float array;
  (* state of the lookup currently being attributed (between ticks) *)
  mutable lookup_open : bool;
  mutable lookup_cost : float;
  mutable miss_path : bool;
  (* open begin/end spans keyed by (pid, span name) *)
  spans : (int * string, float) Hashtbl.t;
  (* Probe batching buffer (see {!Probe}): pending events in flat
     parallel arrays, replayed in order by [flush]. [buf_at] is nan for
     modelled-clock events ([emit] semantics) and a timestamp for
     engine-clocked ones ([emit_at] semantics). Every direct operation
     below flushes first, so the buffer is invisible to readers. *)
  mutable buf_kind : int array;
  mutable buf_pid : int array;
  mutable buf_vpn : int array;
  mutable buf_count : int array;
  mutable buf_at : float array;
  mutable buf_len : int;
}

let create ?sink ?metrics ?cost_of () =
  {
    sink;
    cache = Option.map build_cache metrics;
    cost_of;
    now_us = 0.0;
    pid = 0;
    kind_counts = Array.make Event.n_kinds 0;
    kind_costs = Array.make Event.n_kinds 0.0;
    lookup_open = false;
    lookup_cost = 0.0;
    miss_path = false;
    spans = Hashtbl.create 16;
    buf_kind = Array.make 256 0;
    buf_pid = Array.make 256 0;
    buf_vpn = Array.make 256 0;
    buf_count = Array.make 256 0;
    buf_at = Array.make 256 0.0;
    buf_len = 0;
  }

(* Sentinels shared with the probe layer: vpn -1 and count 0 are what
   the trace sink's optional arguments default to, so plain ints can
   stand in for the option-typed interface with no boxing. *)
let no_vpn = -1

let no_count = 0

let record t ~at_us ~pid ~vpn ~count kind =
  let magnitude = count in
  (match t.sink with
  | None -> ()
  | Some s -> Trace_sink.emit s ~at_us ~kind ~pid ~vpn ~count ());
  let i = Event.kind_index kind in
  t.kind_counts.(i) <- t.kind_counts.(i) + 1;
  let cost =
    match t.cost_of with
    | None -> 0.0
    | Some f -> f kind ~count:magnitude
  in
  t.kind_costs.(i) <- t.kind_costs.(i) +. cost;
  if t.lookup_open then begin
    t.lookup_cost <- t.lookup_cost +. cost;
    match kind with
    | Event.Check_miss | Event.Ni_miss | Event.Interrupt ->
      t.miss_path <- true
    | _ -> ()
  end;
  (match t.cache with
  | None -> ()
  | Some c ->
    Stats.Counter.incr c.kind_counters.(i);
    (match c.volume_counters.(i) with
    | Some volume when magnitude > 0 -> Stats.Counter.add volume magnitude
    | Some _ | None -> ()));
  (match Event.phase_of_kind kind with
  | Event.Begin -> Hashtbl.replace t.spans (pid, Event.span_name kind) at_us
  | Event.End -> (
    let key = (pid, Event.span_name kind) in
    match Hashtbl.find_opt t.spans key with
    | None -> ()
    | Some start ->
      Hashtbl.remove t.spans key;
      (match (kind, t.cache) with
      | Event.Dma_fetch_end, Some c ->
        Stats.Histogram.observe c.fetch_h (at_us -. start)
      | _ -> ()))
  | Event.Instant -> ());
  cost

(* Replay [emit] semantics for a buffered modelled-clock event. *)
let replay_emit t ~pid ~vpn ~count kind =
  let cost = record t ~at_us:t.now_us ~pid ~vpn ~count kind in
  t.now_us <- t.now_us +. cost

let kind_of_index = Array.of_list Event.all_kinds

let flush t =
  if t.buf_len > 0 then begin
    let n = t.buf_len in
    t.buf_len <- 0;
    for i = 0 to n - 1 do
      let kind = kind_of_index.(t.buf_kind.(i)) in
      let pid = t.buf_pid.(i) in
      let vpn = t.buf_vpn.(i) in
      let count = t.buf_count.(i) in
      let at = t.buf_at.(i) in
      if Float.is_nan at then replay_emit t ~pid ~vpn ~count kind
      else ignore (record t ~at_us:at ~pid ~vpn ~count kind)
    done
  end

let buf_grow t =
  let cap = 2 * Array.length t.buf_kind in
  let grow a fill =
    let b = Array.make cap fill in
    Array.blit a 0 b 0 t.buf_len;
    b
  in
  t.buf_kind <- grow t.buf_kind 0;
  t.buf_pid <- grow t.buf_pid 0;
  t.buf_vpn <- grow t.buf_vpn 0;
  t.buf_count <- grow t.buf_count 0;
  t.buf_at <- grow t.buf_at 0.0

let buf_push t kind ~at_us ~pid ~vpn ~count =
  if t.buf_len = Array.length t.buf_kind then buf_grow t;
  let i = t.buf_len in
  t.buf_kind.(i) <- Event.kind_index kind;
  t.buf_pid.(i) <- pid;
  t.buf_vpn.(i) <- vpn;
  t.buf_count.(i) <- count;
  t.buf_at.(i) <- at_us;
  t.buf_len <- i + 1

let buffer_emit t kind ~pid ~vpn ~count =
  buf_push t kind ~at_us:Float.nan ~pid ~vpn ~count

let buffer_emit_at t kind ~at_us ~pid ~vpn ~count =
  buf_push t kind ~at_us ~pid ~vpn ~count

(* Direct operations flush pending probe events first so event order
   and every readable aggregate reflect program order. *)

let sink t =
  flush t;
  t.sink

let metrics t =
  flush t;
  Option.map (fun c -> c.registry) t.cache

let now_us t =
  flush t;
  t.now_us

let set_time t us =
  flush t;
  t.now_us <- us

let kind_count t kind =
  flush t;
  t.kind_counts.(Event.kind_index kind)

let kind_cost t kind =
  flush t;
  t.kind_costs.(Event.kind_index kind)

let by_cost t =
  flush t;
  Event.all_kinds
  |> List.filter_map (fun kind ->
         let n = t.kind_counts.(Event.kind_index kind) in
         if n = 0 then None
         else Some (kind, n, t.kind_costs.(Event.kind_index kind)))
  |> List.stable_sort (fun (_, _, a) (_, _, b) -> Float.compare b a)

let total_cost t =
  flush t;
  Array.fold_left ( +. ) 0.0 t.kind_costs

let emit_at t ~at_us ~pid ?vpn ?count kind =
  flush t;
  ignore
    (record t ~at_us ~pid
       ~vpn:(Option.value ~default:no_vpn vpn)
       ~count:(Option.value ~default:no_count count)
       kind)

let emit t ?pid ?vpn ?count kind =
  flush t;
  let pid = Option.value ~default:t.pid pid in
  (* Advance the modelled clock so successive events of one lookup get
     distinct, ordered timestamps in engine-less (driver) runs. *)
  replay_emit t ~pid
    ~vpn:(Option.value ~default:no_vpn vpn)
    ~count:(Option.value ~default:no_count count)
    kind

let close_lookup t =
  if t.lookup_open then begin
    t.lookup_open <- false;
    (match t.cache with
    | None -> ()
    | Some c ->
      Stats.Histogram.observe c.lookup_h t.lookup_cost;
      if t.miss_path then Stats.Histogram.observe c.miss_h t.lookup_cost);
    t.lookup_cost <- 0.0;
    t.miss_path <- false
  end

let tick t ~pid ?vpn ?npages () =
  flush t;
  close_lookup t;
  t.pid <- pid;
  t.lookup_open <- true;
  emit t ~pid ?vpn ?count:npages Event.Lookup

let finish t =
  flush t;
  close_lookup t

(* The observer emits directly (flushing any probe backlog first) so
   the sink is current the moment [Engine.run] returns, with no flush
   obligation on the engine's caller. *)
let observe_engine t engine ~pid =
  Engine.set_dispatch_observer engine
    (Some
       (fun ~now:_ ~at ->
         flush t;
         ignore
           (record t ~at_us:(Time.to_us at) ~pid ~vpn:no_vpn ~count:no_count
              Event.Dispatch)))
