module Stats = Utlb_sim.Stats
module Engine = Utlb_sim.Engine
module Time = Utlb_sim.Time

(* Pre-resolved collectors for the standard metric schema, so the hot
   emit path never hashes a metric name. Building the cache registers
   the full schema up front: snapshots of runs that never hit a code
   path still carry its (zero) metrics, which keeps campaign snapshot
   merges structurally identical across cells. *)
type metric_cache = {
  registry : Metrics.t;
  kind_counters : Stats.Counter.t array;
  volume_counters : Stats.Counter.t option array;
  lookup_h : Stats.Histogram.t;
  miss_h : Stats.Histogram.t;
  fetch_h : Stats.Histogram.t;
}

let kind_metric_name kind =
  Event.component_name (Event.component_of_kind kind) ^ "/"
  ^ Event.kind_name kind

let volume_metric_name = function
  | Event.Pin -> Some "host/pages_pinned"
  | Event.Unpin -> Some "host/pages_unpinned"
  | Event.Pre_pin -> Some "host/pages_prepinned"
  | Event.Fetch -> Some "ni/entries_fetched"
  | Event.Dma_data_start -> Some "dma/bytes"
  | Event.Diff -> Some "svm/diff_bytes"
  | _ -> None

let build_cache registry =
  (* Fault-plane kinds are counted but never registered: the standard
     schema (and every golden snapshot of it) keeps its shape whether
     or not a fault plan is active. Their counts surface through the
     scope's own per-kind arrays and the trace sink instead. *)
  let kind_counters =
    Array.of_list
      (List.map
         (fun kind ->
           if Event.is_fault_kind kind then
             Stats.Counter.create (kind_metric_name kind)
           else Metrics.counter registry (kind_metric_name kind))
         Event.all_kinds)
  in
  let volume_counters =
    Array.of_list
      (List.map
         (fun kind ->
           Option.map
             (fun name -> Metrics.counter registry name)
             (volume_metric_name kind))
         Event.all_kinds)
  in
  {
    registry;
    kind_counters;
    volume_counters;
    lookup_h =
      Metrics.histogram registry "host/lookup_us" ~bucket_width:5.0 ~buckets:40;
    miss_h =
      Metrics.histogram registry "host/miss_us" ~bucket_width:5.0 ~buckets:40;
    fetch_h =
      Metrics.histogram registry "dma/fetch_us" ~bucket_width:2.0 ~buckets:50;
  }

let preregister registry = ignore (build_cache registry)

type t = {
  sink : Trace_sink.t option;
  cache : metric_cache option;
  cost_of : (Event.kind -> count:int -> float) option;
  mutable now_us : float;
  mutable pid : int;
  kind_counts : int array;
  kind_costs : float array;
  (* state of the lookup currently being attributed (between ticks) *)
  mutable lookup_open : bool;
  mutable lookup_cost : float;
  mutable miss_path : bool;
  (* open begin/end spans keyed by (pid, span name) *)
  spans : (int * string, float) Hashtbl.t;
}

let create ?sink ?metrics ?cost_of () =
  {
    sink;
    cache = Option.map build_cache metrics;
    cost_of;
    now_us = 0.0;
    pid = 0;
    kind_counts = Array.make Event.n_kinds 0;
    kind_costs = Array.make Event.n_kinds 0.0;
    lookup_open = false;
    lookup_cost = 0.0;
    miss_path = false;
    spans = Hashtbl.create 16;
  }

let sink t = t.sink

let metrics t = Option.map (fun c -> c.registry) t.cache

let now_us t = t.now_us

let set_time t us = t.now_us <- us

let kind_count t kind = t.kind_counts.(Event.kind_index kind)

let kind_cost t kind = t.kind_costs.(Event.kind_index kind)

let by_cost t =
  Event.all_kinds
  |> List.filter_map (fun kind ->
         let n = kind_count t kind in
         if n = 0 then None else Some (kind, n, kind_cost t kind))
  |> List.stable_sort (fun (_, _, a) (_, _, b) -> Float.compare b a)

let total_cost t = Array.fold_left ( +. ) 0.0 t.kind_costs

let record t ~at_us ~pid ?vpn ?count kind =
  let magnitude = Option.value ~default:0 count in
  (match t.sink with
  | None -> ()
  | Some s -> Trace_sink.emit s ~at_us ~kind ~pid ?vpn ?count ());
  let i = Event.kind_index kind in
  t.kind_counts.(i) <- t.kind_counts.(i) + 1;
  let cost =
    match t.cost_of with
    | None -> 0.0
    | Some f -> f kind ~count:magnitude
  in
  t.kind_costs.(i) <- t.kind_costs.(i) +. cost;
  if t.lookup_open then begin
    t.lookup_cost <- t.lookup_cost +. cost;
    match kind with
    | Event.Check_miss | Event.Ni_miss | Event.Interrupt ->
      t.miss_path <- true
    | _ -> ()
  end;
  (match t.cache with
  | None -> ()
  | Some c ->
    Stats.Counter.incr c.kind_counters.(i);
    (match c.volume_counters.(i) with
    | Some volume when magnitude > 0 -> Stats.Counter.add volume magnitude
    | Some _ | None -> ()));
  (match Event.phase_of_kind kind with
  | Event.Begin -> Hashtbl.replace t.spans (pid, Event.span_name kind) at_us
  | Event.End -> (
    let key = (pid, Event.span_name kind) in
    match Hashtbl.find_opt t.spans key with
    | None -> ()
    | Some start ->
      Hashtbl.remove t.spans key;
      (match (kind, t.cache) with
      | Event.Dma_fetch_end, Some c ->
        Stats.Histogram.observe c.fetch_h (at_us -. start)
      | _ -> ()))
  | Event.Instant -> ());
  cost

let emit_at t ~at_us ~pid ?vpn ?count kind =
  ignore (record t ~at_us ~pid ?vpn ?count kind)

let emit t ?pid ?vpn ?count kind =
  let pid = Option.value ~default:t.pid pid in
  let cost = record t ~at_us:t.now_us ~pid ?vpn ?count kind in
  (* Advance the modelled clock so successive events of one lookup get
     distinct, ordered timestamps in engine-less (driver) runs. *)
  t.now_us <- t.now_us +. cost

let close_lookup t =
  if t.lookup_open then begin
    t.lookup_open <- false;
    (match t.cache with
    | None -> ()
    | Some c ->
      Stats.Histogram.observe c.lookup_h t.lookup_cost;
      if t.miss_path then Stats.Histogram.observe c.miss_h t.lookup_cost);
    t.lookup_cost <- 0.0;
    t.miss_path <- false
  end

let tick t ~pid ?vpn ?npages () =
  close_lookup t;
  t.pid <- pid;
  t.lookup_open <- true;
  emit t ~pid ?vpn ?count:npages Event.Lookup

let finish t = close_lookup t

let observe_engine t engine ~pid =
  Engine.set_dispatch_observer engine
    (Some
       (fun ~now:_ ~at ->
         emit_at t ~at_us:(Time.to_us at) ~pid Event.Dispatch))
