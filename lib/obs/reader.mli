(** Reader for saved text timelines.

    Parses the one-line-per-event form {!Export.timeline} writes and
    the sectioned multi-cell form [utlbsim sweep --timeline-out]
    writes, where each cell's events follow a [# cell <index> <label>]
    header. The reader is lenient: blank lines, [#] comments (other
    than cell headers), and the exporter's ["N event(s), M dropped"]
    trailer are skipped; a line that parses as none of these is
    reported with its 1-based line number instead of aborting, so one
    corrupt line costs one finding, not the whole timeline. *)

type section = {
  label : string;
      (** The cell header's text after [# cell], or [""] for events
          before any header (a plain single-run timeline). *)
  events : (int * Event.t) list;
      (** [(line, event)] in file order; [Event.seq] is re-assigned
          from whole-file input order. *)
}

type t = {
  sections : section list;  (** In file order; no empty sections. *)
  errors : (int * string) list;
      (** Unparseable non-comment lines: [(line, message)]. *)
}

val of_string : string -> t

val of_channel : in_channel -> t

val read_file : string -> (t, string) result
(** [Error msg] only when the file cannot be read. *)

val events : t -> Event.t list
(** All events of all sections, in file order. *)
