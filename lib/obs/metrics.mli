(** Named metric registry over {!Utlb_sim.Stats} collectors.

    A registry names and owns Counter/Summary/Histogram collectors so
    every component of one simulated run reports into a single
    labelled namespace (["host/pin"], ["dma/fetch_us"], ...).
    Accessors are get-or-create: asking twice for the same name and
    kind returns the same collector. Asking for a name already
    registered with a different kind (or different histogram geometry)
    returns a detached throw-away collector and records the clash —
    see {!collisions}; `utlbcheck` lints these.

    {!Snapshot} freezes a registry into a plain, name-sorted value
    that can be diffed (what happened between two points), merged
    across campaign cells (exact parallel Welford combination for
    summaries), and exported as CSV or JSON. Merging in deterministic
    cell order yields byte-identical output regardless of how many
    domains ran the campaign. *)

module Stats = Utlb_sim.Stats

type collector =
  | Counter of Stats.Counter.t
  | Summary of Stats.Summary.t
  | Histogram of Stats.Histogram.t

type t

val create : unit -> t

val counter : t -> string -> Stats.Counter.t

val summary : t -> string -> Stats.Summary.t

val histogram :
  t -> string -> bucket_width:float -> buckets:int -> Stats.Histogram.t

val find : t -> string -> collector option

val names : t -> string list
(** Registered names, sorted. *)

val collisions : t -> (string * string) list
(** [(name, requested-kind)] for every get-or-create call that clashed
    with an existing registration, in request order. *)

val iter : t -> (string -> collector -> unit) -> unit
(** Collectors in sorted-name order. *)

module Snapshot : sig
  type value =
    | Counter of int
    | Summary of {
        count : int;
        total : float;
        mean : float;
        m2 : float;
        vmin : float;
        vmax : float;
      }
    | Histogram of { bucket_width : float; counts : int array }

  type t = (string * value) list
  (** Name-sorted. *)

  val merge : t list -> t
  (** Pointwise combination: counters add, summaries combine by
      parallel Welford (exact), histograms add bucketwise.
      @raise Invalid_argument on kind or histogram-geometry mismatch
      for a shared name. *)

  val diff : older:t -> newer:t -> t
  (** What happened between the two snapshots, assuming [older] is a
      prefix of [newer]'s history. Summary min/max are not invertible
      and keep the newer cumulative extrema.
      @raise Invalid_argument if a counter or summary shrank, or on
      kind/geometry mismatch. *)

  val hist_quantile : bucket_width:float -> int array -> float -> float
  (** Bucket-edge quantile over raw snapshot bucket counts (same
      estimate as {!Utlb_sim.Stats.Histogram.quantile}); [0.] when
      empty. *)

  val to_csv : Format.formatter -> t -> unit
  (** Header [name,kind,count,total,mean,min,max,p50,p90,p99]; fields
      that do not apply to a collector kind print as [0.000000]. *)

  val to_json : Format.formatter -> t -> unit
  (** Faithful export (includes Welford [m2] and raw histogram
      buckets), so a snapshot survives a JSON round trip. *)

  val pp : Format.formatter -> t -> unit
end

val snapshot : t -> Snapshot.t
