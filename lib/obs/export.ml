(* Exporters for a Trace_sink: Chrome trace_event JSON (open in
   chrome://tracing or https://ui.perfetto.dev) and a compact text
   timeline. Both are deterministic: events are written in emission
   order and floats with fixed precision, so exported traces diff
   cleanly across runs of one seed. *)

let span_pairs =
  [
    (Event.Dma_fetch_start, Event.Dma_fetch_end);
    (Event.Dma_data_start, Event.Dma_data_end);
    (Event.Bus_start, Event.Bus_end);
  ]

(* (pid, component) lanes present among the retained events, in first-
   appearance order: one Chrome metadata record each. *)
let lanes sink =
  let acc = ref [] in
  Trace_sink.iter sink (fun ev ->
      let lane = (ev.Event.pid, Event.component ev) in
      if not (List.mem lane !acc) then acc := lane :: !acc);
  List.rev !acc

let chrome_event ppf (ev : Event.t) =
  let ph =
    match Event.phase_of_kind ev.kind with
    | Event.Begin -> "B"
    | Event.End -> "E"
    | Event.Instant -> "i"
  in
  Format.fprintf ppf
    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\"%s,\"ts\":%.3f,\"pid\":%d,\"tid\":%d"
    (Event.span_name ev.kind)
    (Event.component_name (Event.component ev))
    ph
    (if String.equal ph "i" then ",\"s\":\"t\"" else "")
    ev.at_us ev.pid
    (Event.component_tid (Event.component ev));
  let args =
    (if ev.vpn >= 0 then [ Printf.sprintf "\"vpn\":%d" ev.vpn ] else [])
    @ (if ev.count > 0 then [ Printf.sprintf "\"count\":%d" ev.count ] else [])
    @ [ Printf.sprintf "\"seq\":%d" ev.seq ]
  in
  Format.fprintf ppf ",\"args\":{%s}}" (String.concat "," args)

let chrome_json ppf sink =
  Format.fprintf ppf "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Format.fprintf ppf ",";
    Format.fprintf ppf "@\n "
  in
  let named_pids = ref [] in
  List.iter
    (fun (pid, component) ->
      if not (List.mem pid !named_pids) then begin
        named_pids := pid :: !named_pids;
        sep ();
        Format.fprintf ppf
          "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"process %d\"}}"
          pid pid
      end;
      sep ();
      Format.fprintf ppf
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
        pid
        (Event.component_tid component)
        (Event.component_name component))
    (lanes sink);
  Trace_sink.iter sink (fun ev ->
      sep ();
      chrome_event ppf ev);
  Format.fprintf ppf "@\n],@\n\"displayTimeUnit\":\"ms\",@\n";
  (* Whole-run per-kind counts: exact even when the ring dropped
     events, so reports reconcile against this block, not the (possibly
     truncated) event list. *)
  Format.fprintf ppf "\"otherData\":{\"emitted\":%d,\"dropped\":%d,\"counts\":{"
    (Trace_sink.emitted sink) (Trace_sink.dropped sink);
  let first = ref true in
  List.iter
    (fun kind ->
      let n = Trace_sink.kind_count sink kind in
      if n > 0 then begin
        if !first then first := false else Format.fprintf ppf ",";
        Format.fprintf ppf "\"%s\":%d" (Event.kind_name kind) n
      end)
    Event.all_kinds;
  Format.fprintf ppf "},\"totals\":{";
  let first = ref true in
  List.iter
    (fun kind ->
      let n = Trace_sink.kind_total sink kind in
      if n > 0 then begin
        if !first then first := false else Format.fprintf ppf ",";
        Format.fprintf ppf "\"%s\":%d" (Event.kind_name kind) n
      end)
    Event.all_kinds;
  Format.fprintf ppf "}}}@."

let timeline ?limit ppf sink =
  let events = Trace_sink.events sink in
  let events =
    match limit with
    | None -> events
    | Some n ->
      let len = List.length events in
      if len <= n then events
      else List.filteri (fun i _ -> i >= len - n) events
  in
  List.iter (fun ev -> Format.fprintf ppf "%a@\n" Event.pp ev) events;
  Format.fprintf ppf "%d event(s), %d dropped@." (Trace_sink.emitted sink)
    (Trace_sink.dropped sink)

(* Pair up retained begin/end span halves per (pid, span kind) in seq
   order; unmatched halves (partner dropped from the ring) are
   skipped. Used by duration accounting in `utlbsim inspect`. *)
let span_durations sink =
  let open_spans = Hashtbl.create 16 in
  let acc = ref [] in
  Trace_sink.iter sink (fun ev ->
      match Event.phase_of_kind ev.Event.kind with
      | Event.Begin ->
        Hashtbl.replace open_spans
          (ev.Event.pid, Event.span_name ev.Event.kind)
          ev
      | Event.End -> (
        let key = (ev.Event.pid, Event.span_name ev.Event.kind) in
        match Hashtbl.find_opt open_spans key with
        | None -> ()
        | Some b ->
          Hashtbl.remove open_spans key;
          acc :=
            (b.Event.kind, ev.Event.at_us -. b.Event.at_us) :: !acc)
      | Event.Instant -> ());
  List.rev !acc
