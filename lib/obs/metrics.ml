module Stats = Utlb_sim.Stats

type collector =
  | Counter of Stats.Counter.t
  | Summary of Stats.Summary.t
  | Histogram of Stats.Histogram.t

let collector_kind = function
  | Counter _ -> "counter"
  | Summary _ -> "summary"
  | Histogram _ -> "histogram"

type t = {
  tbl : (string, collector) Hashtbl.t;
  mutable rev_order : string list; (* registration order, reversed *)
  mutable rev_collisions : (string * string) list;
}

let create () = { tbl = Hashtbl.create 64; rev_order = []; rev_collisions = [] }

let register t name collector =
  Hashtbl.replace t.tbl name collector;
  t.rev_order <- name :: t.rev_order

let collide t name wanted =
  t.rev_collisions <- (name, wanted) :: t.rev_collisions

(* Get-or-create. On a kind (or histogram-geometry) mismatch the
   request is recorded as a collision and a detached collector is
   returned: the caller still works, the registry keeps the original,
   and `utlbcheck` surfaces the clash. *)

let counter t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter c) -> c
  | Some other ->
    collide t name
      (Printf.sprintf "counter (registered as %s)" (collector_kind other));
    Stats.Counter.create name
  | None ->
    let c = Stats.Counter.create name in
    register t name (Counter c);
    c

let summary t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Summary s) -> s
  | Some other ->
    collide t name
      (Printf.sprintf "summary (registered as %s)" (collector_kind other));
    Stats.Summary.create name
  | None ->
    let s = Stats.Summary.create name in
    register t name (Summary s);
    s

let histogram t name ~bucket_width ~buckets =
  match Hashtbl.find_opt t.tbl name with
  | Some (Histogram h)
    when Stats.Histogram.bucket_width h = bucket_width
         && Stats.Histogram.buckets h = buckets ->
    h
  | Some (Histogram h) ->
    collide t name
      (Printf.sprintf
         "histogram %gx%d (registered as histogram %gx%d)" bucket_width
         buckets
         (Stats.Histogram.bucket_width h)
         (Stats.Histogram.buckets h));
    Stats.Histogram.create ~name ~bucket_width ~buckets
  | Some other ->
    collide t name
      (Printf.sprintf "histogram (registered as %s)" (collector_kind other));
    Stats.Histogram.create ~name ~bucket_width ~buckets
  | None ->
    let h = Stats.Histogram.create ~name ~bucket_width ~buckets in
    register t name (Histogram h);
    h

let find t name = Hashtbl.find_opt t.tbl name

let names t = List.sort String.compare (List.rev t.rev_order)

let collisions t = List.rev t.rev_collisions

let iter t f = List.iter (fun name -> f name (Hashtbl.find t.tbl name)) (names t)

module Snapshot = struct
  type value =
    | Counter of int
    | Summary of {
        count : int;
        total : float;
        mean : float;
        m2 : float;
        vmin : float;
        vmax : float;
      }
    | Histogram of { bucket_width : float; counts : int array }

  type nonrec t = (string * value) list

  let value_kind = function
    | Counter _ -> "counter"
    | Summary _ -> "summary"
    | Histogram _ -> "histogram"

  let of_collector = function
    | (Counter c : collector) -> Counter (Stats.Counter.value c)
    | (Summary s : collector) ->
      Summary
        {
          count = Stats.Summary.count s;
          total = Stats.Summary.total s;
          mean = Stats.Summary.mean s;
          m2 = Stats.Summary.m2 s;
          vmin = Stats.Summary.min s;
          vmax = Stats.Summary.max s;
        }
    | (Histogram h : collector) ->
      Histogram
        {
          bucket_width = Stats.Histogram.bucket_width h;
          counts =
            Array.init
              (Stats.Histogram.buckets h + 1)
              (fun i -> Stats.Histogram.bucket h i);
        }

  let hist_count counts = Array.fold_left ( + ) 0 counts

  (* Bucket-edge quantile over snapshot bucket counts; mirrors
     Stats.Histogram.quantile. *)
  let hist_quantile ~bucket_width counts q =
    let total = hist_count counts in
    if total = 0 then 0.0
    else
      let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
      let rank = int_of_float (Float.ceil (q *. float_of_int total)) in
      let rank = if rank < 1 then 1 else rank in
      let last = Array.length counts - 1 in
      let rec scan i seen =
        let seen = seen + counts.(i) in
        if seen >= rank || i = last then bucket_width *. float_of_int (i + 1)
        else scan (i + 1) seen
      in
      scan 0 0

  let mismatch name a b =
    invalid_arg
      (Printf.sprintf "Metrics.Snapshot: %s is %s in one snapshot, %s in another"
         name (value_kind a) (value_kind b))

  (* Parallel Welford combination (Chan et al.): exact streaming merge
     of two summaries. *)
  let combine_summary a b =
    match (a, b) with
    | ( Summary ({ count = na; _ } as sa),
        Summary ({ count = nb; _ } as sb) ) ->
      if na = 0 then Summary sb
      else if nb = 0 then Summary sa
      else
        let n = na + nb in
        let fa = float_of_int na and fb = float_of_int nb in
        let delta = sb.mean -. sa.mean in
        let mean = sa.mean +. (delta *. fb /. float_of_int n) in
        let m2 =
          sa.m2 +. sb.m2 +. (delta *. delta *. fa *. fb /. float_of_int n)
        in
        Summary
          {
            count = n;
            total = sa.total +. sb.total;
            mean;
            m2;
            vmin = Float.min sa.vmin sb.vmin;
            vmax = Float.max sa.vmax sb.vmax;
          }
    | _ -> assert false

  let combine name a b =
    match (a, b) with
    | Counter x, Counter y -> Counter (x + y)
    | Summary _, Summary _ -> combine_summary a b
    | Histogram ha, Histogram hb ->
      if
        ha.bucket_width <> hb.bucket_width
        || Array.length ha.counts <> Array.length hb.counts
      then
        invalid_arg
          (Printf.sprintf "Metrics.Snapshot: %s histogram geometry mismatch"
             name)
      else
        Histogram
          {
            bucket_width = ha.bucket_width;
            counts = Array.map2 ( + ) ha.counts hb.counts;
          }
    | _ -> mismatch name a b

  let of_registry reg =
    let acc = ref [] in
    iter reg (fun name collector ->
        acc := (name, of_collector collector) :: !acc);
    List.rev !acc

  let merge2 a b =
    (* Both inputs are name-sorted; merge like a sorted-list union. *)
    let rec go a b acc =
      match (a, b) with
      | [], rest | rest, [] -> List.rev_append acc rest
      | (na, va) :: ta, (nb, vb) :: tb ->
        let c = String.compare na nb in
        if c < 0 then go ta b ((na, va) :: acc)
        else if c > 0 then go a tb ((nb, vb) :: acc)
        else go ta tb ((na, combine na va vb) :: acc)
    in
    go a b []

  let merge = function [] -> [] | s :: rest -> List.fold_left merge2 s rest

  (* Inverse parallel Welford: recover the newer-only summary from a
     cumulative snapshot and an older prefix. min/max are not
     invertible, so the newer cumulative extrema are kept. *)
  let subtract_summary name a b =
    match (a, b) with
    | ( Summary ({ count = nab; _ } as sab),
        Summary ({ count = na; _ } as sa) ) ->
      if nab < na then
        invalid_arg
          (Printf.sprintf "Metrics.Snapshot.diff: %s shrank (%d -> %d)" name
             na nab)
      else if na = 0 then Summary sab
      else
        let nb = nab - na in
        if nb = 0 then
          Summary
            { count = 0; total = 0.0; mean = 0.0; m2 = 0.0; vmin = 0.0;
              vmax = 0.0 }
        else
          let fa = float_of_int na
          and fb = float_of_int nb
          and fab = float_of_int nab in
          let mean_b = ((fab *. sab.mean) -. (fa *. sa.mean)) /. fb in
          let delta = mean_b -. sa.mean in
          let m2_b =
            sab.m2 -. sa.m2 -. (delta *. delta *. fa *. fb /. fab)
          in
          let m2_b = if m2_b < 0.0 then 0.0 else m2_b in
          Summary
            {
              count = nb;
              total = sab.total -. sa.total;
              mean = mean_b;
              m2 = m2_b;
              vmin = sab.vmin;
              vmax = sab.vmax;
            }
    | _ -> assert false

  let subtract name newer older =
    match (newer, older) with
    | Counter x, Counter y ->
      if x < y then
        invalid_arg
          (Printf.sprintf "Metrics.Snapshot.diff: %s shrank (%d -> %d)" name y
             x)
      else Counter (x - y)
    | Summary _, Summary _ -> subtract_summary name newer older
    | Histogram hn, Histogram ho ->
      if
        hn.bucket_width <> ho.bucket_width
        || Array.length hn.counts <> Array.length ho.counts
      then
        invalid_arg
          (Printf.sprintf "Metrics.Snapshot: %s histogram geometry mismatch"
             name)
      else
        Histogram
          {
            bucket_width = hn.bucket_width;
            counts = Array.map2 ( - ) hn.counts ho.counts;
          }
    | _ -> mismatch name newer older

  let diff ~older ~newer =
    List.map
      (fun (name, nv) ->
        match List.assoc_opt name older with
        | None -> (name, nv)
        | Some ov -> (name, subtract name nv ov))
      newer

  let count_of = function
    | Counter n -> n
    | Summary s -> s.count
    | Histogram h -> hist_count h.counts

  let to_csv ppf t =
    Format.fprintf ppf "name,kind,count,total,mean,min,max,p50,p90,p99@\n";
    List.iter
      (fun (name, v) ->
        let row total mean vmin vmax p50 p90 p99 =
          Format.fprintf ppf "%s,%s,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f@\n"
            name (value_kind v) (count_of v) total mean vmin vmax p50 p90 p99
        in
        match v with
        | Counter n ->
          row (float_of_int n) 0.0 0.0 0.0 0.0 0.0 0.0
        | Summary s -> row s.total s.mean s.vmin s.vmax 0.0 0.0 0.0
        | Histogram h ->
          let q p = hist_quantile ~bucket_width:h.bucket_width h.counts p in
          row 0.0 0.0 0.0 0.0 (q 0.5) (q 0.9) (q 0.99))
      t

  let to_json ppf t =
    Format.fprintf ppf "{";
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Format.fprintf ppf ",";
        Format.fprintf ppf "@\n \"%s\":" name;
        match v with
        | Counter n -> Format.fprintf ppf "{\"kind\":\"counter\",\"value\":%d}" n
        | Summary s ->
          Format.fprintf ppf
            "{\"kind\":\"summary\",\"count\":%d,\"total\":%.6f,\"mean\":%.6f,\"m2\":%.6f,\"min\":%.6f,\"max\":%.6f}"
            s.count s.total s.mean s.m2 s.vmin s.vmax
        | Histogram h ->
          Format.fprintf ppf
            "{\"kind\":\"histogram\",\"bucket_width\":%.6f,\"counts\":[%s]}"
            h.bucket_width
            (String.concat ","
               (Array.to_list (Array.map string_of_int h.counts))))
      t;
    Format.fprintf ppf "@\n}@."

  let pp ppf t =
    List.iter
      (fun (name, v) ->
        match v with
        | Counter n -> Format.fprintf ppf "%-32s %d@\n" name n
        | Summary s ->
          Format.fprintf ppf "%-32s n=%d mean=%.3f min=%.3f max=%.3f@\n" name
            s.count s.mean s.vmin s.vmax
        | Histogram h ->
          let q p = hist_quantile ~bucket_width:h.bucket_width h.counts p in
          Format.fprintf ppf "%-32s n=%d p50=%.3f p90=%.3f p99=%.3f@\n" name
            (hist_count h.counts) (q 0.5) (q 0.9) (q 0.99))
      t
end

let snapshot t = Snapshot.of_registry t
