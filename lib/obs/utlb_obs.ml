(** Observability: typed event tracing, a named metric registry, and
    timeline export for simulated runs.

    - {!Event} / {!Trace_sink}: bounded ring of typed, timestamped
      events with exact (drop-proof) per-kind totals;
    - {!Export}: Chrome [trace_event] JSON and a compact text timeline;
    - {!Reader}: parser for saved text timelines (single-run or the
      sectioned multi-cell form campaigns write);
    - {!Metrics}: named Counter/Summary/Histogram registry with
      snapshot, diff, and exact parallel merge;
    - {!Scope}: the optional [?obs] hook components thread through,
      mirroring the [?sanitizer] wiring — a no-op when absent.

    This library sits directly above [utlb_sim]; every higher layer
    (engines, NIC components, SVM, campaigns) accepts a {!Scope.t}
    without new dependencies of its own. *)

module Event = Event
module Trace_sink = Trace_sink
module Export = Export
module Reader = Reader
module Metrics = Metrics
module Scope = Scope
module Probe = Probe
