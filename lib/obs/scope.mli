(** The [?obs] hook threaded through engines and NIC components.

    A scope bundles an optional {!Trace_sink} (timeline), an optional
    {!Metrics} registry (aggregates), and an optional per-event cost
    model. Components hold a [Scope.t option] exactly like the
    existing [?sanitizer] wiring: absent means every probe is a no-op.

    Two timebases coexist:
    - Engine-less driver runs ({!Utlb.Sim_driver}) call {!tick} once
      per trace record; {!emit} then stamps events on a modelled clock
      that {!emit} itself advances by each event's modelled cost.
    - Discrete-event components (DMA, bus, interrupts) call {!emit_at}
      with real simulated time and do not move the modelled clock.

    {!tick} also delimits per-lookup attribution: when the next tick
    (or {!finish}) closes a lookup, its accumulated modelled cost is
    observed into the [host/lookup_us] histogram — and into
    [host/miss_us] as well if the lookup crossed a miss path
    (check miss, NI miss, or interrupt). *)

type t

val create :
  ?sink:Trace_sink.t ->
  ?metrics:Metrics.t ->
  ?cost_of:(Event.kind -> count:int -> float) ->
  unit ->
  t
(** With [metrics], the standard schema (see {!preregister}) is
    registered immediately so snapshots are structurally identical
    across runs that exercised different code paths. *)

val preregister : Metrics.t -> unit
(** Register the standard metric schema without creating a scope: one
    counter per event kind named ["<component>/<kind>"], magnitude
    counters ([host/pages_pinned], [host/pages_unpinned],
    [host/pages_prepinned], [ni/entries_fetched], [dma/bytes],
    [svm/diff_bytes]), and latency histograms [host/lookup_us],
    [host/miss_us], [dma/fetch_us]. Idempotent. Fault-plane kinds
    ({!Event.is_fault_kind}) are deliberately not part of the schema;
    see {!Event.is_fault_kind}. *)

val sink : t -> Trace_sink.t option

val metrics : t -> Metrics.t option

val now_us : t -> float
(** Modelled clock used by {!emit}. *)

val set_time : t -> float -> unit

val tick : t -> pid:int -> ?vpn:int -> ?npages:int -> unit -> unit
(** Start attributing a new lookup (closing the previous one) and emit
    its [Lookup] event ([count] = [npages]). *)

val finish : t -> unit
(** Close the last open lookup; call once at end of run. *)

val emit : t -> ?pid:int -> ?vpn:int -> ?count:int -> Event.kind -> unit
(** Emit at the modelled clock, attributed to the current lookup, and
    advance the clock by the event's modelled cost. [pid] defaults to
    the pid of the last {!tick}. *)

val emit_at :
  t -> at_us:float -> pid:int -> ?vpn:int -> ?count:int -> Event.kind -> unit
(** Emit at an explicit (engine) timestamp; the modelled clock is not
    advanced. Begin/end pairs are matched per (pid, span) to feed the
    [dma/fetch_us] histogram. *)

val observe_engine : t -> Utlb_sim.Engine.t -> pid:int -> unit
(** Install a dispatch observer on [engine] emitting one [Dispatch]
    event per fired simulation event (independent of the sanitizer's
    monitor slot). *)

(** {2 Probe buffer}

    The batching backend of {!Probe}: probes append events to a flat
    per-scope buffer ([buffer_emit] with {!emit} semantics on the
    modelled clock, [buffer_emit_at] with {!emit_at} semantics at an
    engine timestamp) and [flush] replays them in order. Every direct
    operation above flushes first, so buffering is invisible to
    readers; components flush at their own dispatch boundaries. The
    plain-int [vpn]/[count] use the trace sink's sentinel defaults
    (-1 / 0) in place of the option-typed interface. *)

val buffer_emit : t -> Event.kind -> pid:int -> vpn:int -> count:int -> unit

val buffer_emit_at :
  t -> Event.kind -> at_us:float -> pid:int -> vpn:int -> count:int -> unit

val flush : t -> unit

val kind_count : t -> Event.kind -> int

val kind_cost : t -> Event.kind -> float
(** Accumulated modelled cost (µs) of this kind; [0.] without
    [cost_of]. *)

val by_cost : t -> (Event.kind * int * float) list
(** Seen kinds as [(kind, events, total modelled µs)], costliest
    first — the ranking behind [utlbsim inspect]. *)

val total_cost : t -> float
