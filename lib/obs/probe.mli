(** Compiled instrumentation hooks — the zero-cost form of [?obs].

    A probe resolves a [Scope.t option] once, at component creation,
    into a record of closures the hot path calls unconditionally:

    - without a scope, {!null}'s shared no-op closures make every
      probe site two indirect calls that allocate nothing;
    - with a scope, events append to the scope's flat batching buffer
      ({!Scope.buffer_emit}) and the owning component replays them in
      order at its own dispatch boundaries via [flush].

    Arguments are plain ints with the sink's sentinel defaults
    ({!no_vpn} / {!no_count}), so probe sites never box options. Work
    that exists only to feed the probe (e.g. counting pages just to
    report the count) should be gated on [active]. *)

type t = {
  active : bool;  (** [false] exactly for {!null}. *)
  emit : Event.kind -> pid:int -> vpn:int -> count:int -> unit;
      (** Modelled-clock event ({!Scope.emit} semantics on flush). *)
  emit_at : Event.kind -> at_us:float -> pid:int -> vpn:int -> count:int -> unit;
      (** Engine-clocked event ({!Scope.emit_at} semantics on flush). *)
  flush : unit -> unit;
      (** Replay buffered events into the scope, in order. Call at the
          end of each public operation of the owning component. *)
}

val null : t
(** The inactive probe; its closures are shared no-ops. *)

val of_scope : Scope.t -> t

val of_scope_opt : Scope.t option -> t
(** {!null} when [None]. *)

val no_vpn : int
(** -1 — "no vpn" sentinel matching the sink's default. *)

val no_count : int
(** 0 — "no count" sentinel matching the sink's default. *)
