(** Typed, timestamped observability events.

    One event is one thing that happened inside the simulated system:
    a translation lookup, a user-level check miss, a Shared UTLB-Cache
    hit/miss/eviction, a pin or unpin, a DMA fetch, an interrupt, an
    SVM page fault. Events carry the simulated-process pid (the Chrome
    trace "process") and derive a component (the Chrome trace "thread")
    from their kind, so exported timelines show host, NI, DMA, bus,
    interrupt, scheduler, and SVM activity as parallel lanes per
    process. *)

type component = Host | Ni | Dma | Bus | Irq | Sched | Svm | Flt

val component_name : component -> string

val component_tid : component -> int
(** Stable thread id used by the Chrome exporter (one tid per
    component). *)

type kind =
  | Lookup  (** One buffer translation request (the unit of the paper's
                "per lookup" rates). [count] = pages in the buffer. *)
  | Check_miss  (** User-level bitmap check missed; [count] = unpinned
                    pages found. *)
  | Pre_pin  (** Pages pinned beyond the faulting buffer by the
                 sequential pre-pin window; [count] = extra pages. *)
  | Pin  (** One pin ioctl; [count] = pages pinned by the call. *)
  | Unpin  (** Pages unpinned (evictions are one page at a time);
               [count] = pages. *)
  | Ni_hit  (** NI-side translation served from cache/table. *)
  | Ni_miss  (** NI-side translation missed. *)
  | Ni_evict  (** A Shared UTLB-Cache line was replaced. *)
  | Fetch  (** NI fetched translation entries from the host table;
               [count] = entries. *)
  | Interrupt  (** Host interrupt (miss service or table swap-in). *)
  | Dma_fetch_start  (** Begin of a modelled DMA entry fetch. *)
  | Dma_fetch_end
  | Dma_data_start  (** Begin of a bulk data DMA; [count] = bytes. *)
  | Dma_data_end
  | Bus_start  (** Begin of an I/O bus transaction occupancy. *)
  | Bus_end
  | Dispatch  (** Discrete-event engine dispatched an event. *)
  | Fault  (** SVM page fault (remote fetch of a page). *)
  | Diff  (** SVM diff propagated home; [count] = bytes. *)
  | Fault_inject  (** The fault plane injected a fault; [count] = 0. *)
  | Fault_retry  (** Recovery retries after an injected fault;
                     [count] = attempts. *)
  | Fault_recover  (** An injected fault was fully recovered from. *)

val n_kinds : int

val kind_index : kind -> int
(** Dense index in [0, n_kinds); used for per-kind accumulator
    arrays. *)

val all_kinds : kind list
(** Every kind once, in [kind_index] order. *)

val kind_name : kind -> string

val component_of_kind : kind -> component

val is_fault_kind : kind -> bool
(** Kinds emitted only by the fault-injection plane. They are excluded
    from the standard metric schema ({!Scope} registers no counters for
    them), so enabling the plane never changes the shape of metric
    snapshots; their counts remain visible through
    {!Scope.by_cost}/{!Scope.kind_count} and trace exports. *)

type phase = Begin | End | Instant

val phase_of_kind : kind -> phase
(** Chrome [ph] mapping: spans export as ["B"]/["E"] pairs, everything
    else as instants. *)

val span_name : kind -> string
(** Chrome event name; the begin and end halves of one span share it. *)

type t = {
  seq : int;  (** Monotone emission index (total order of the run). *)
  at_us : float;  (** Simulated time, microseconds. *)
  kind : kind;
  pid : int;  (** Simulated process the event is attributed to. *)
  vpn : int;  (** Virtual page, or [-1] when not applicable. *)
  count : int;  (** Kind-specific magnitude (pages, entries, bytes);
                    [0] when not applicable. *)
}

val component : t -> component

val pp : Format.formatter -> t -> unit
(** One-line text form used by the compact timeline. *)

val kind_of_name : string -> kind option
(** Inverse of {!kind_name}. *)

val of_string : ?seq:int -> string -> (t, string) result
(** Parse the {!pp} form back into an event. [seq] is not part of the
    text form; readers assign it from input order (default [0]).
    Malformed input (bad timestamp, unknown kind, a component that does
    not emit the kind, missing [pid=], unparseable field) is an [Error]
    naming the offending part — never an exception. *)
