(** Trace exporters.

    - {!chrome_json}: Chrome [trace_event] JSON ("JSON Object Format"
      with [traceEvents] plus an [otherData] block carrying exact
      whole-run per-kind counts). One Chrome process per simulated
      pid, one thread per component; spans export as [B]/[E] pairs,
      everything else as thread-scoped instants. Open the file in
      [chrome://tracing] or Perfetto.
    - {!timeline}: compact one-line-per-event text form for terminals
      and golden tests. *)

val chrome_json : Format.formatter -> Trace_sink.t -> unit

val timeline : ?limit:int -> Format.formatter -> Trace_sink.t -> unit
(** With [limit], only the last [limit] retained events are printed
    (the trailer line always reports whole-run totals). *)

val span_durations : Trace_sink.t -> (Event.kind * float) list
(** Durations (µs) of retained begin/end span pairs, matched per
    (pid, span name) in emission order; tagged with the begin kind.
    Halves whose partner was dropped from the ring are skipped. *)

val span_pairs : (Event.kind * Event.kind) list
(** The (begin, end) kind pairs the exporters treat as spans. *)
