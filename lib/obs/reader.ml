type section = { label : string; events : (int * Event.t) list }

type t = { sections : section list; errors : (int * string) list }

let cell_prefix = "# cell "

(* The exporter's trailer ("1234 event(s), 0 dropped") is data written
   without a comment marker; recognise it so plain [Export.timeline]
   output round-trips. *)
let is_trailer line =
  let rec contains i =
    i + 9 <= String.length line
    && (String.sub line i 9 = "event(s)," || contains (i + 1))
  in
  contains 0

let of_string text =
  let sections = ref [] in
  let errors = ref [] in
  let label = ref "" in
  let current = ref [] in
  let seq = ref 0 in
  let close () =
    if !current <> [] then
      sections := { label = !label; events = List.rev !current } :: !sections
  in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let s = String.trim raw in
      if s = "" then ()
      else if String.length s >= String.length cell_prefix
              && String.sub s 0 (String.length cell_prefix) = cell_prefix
      then begin
        close ();
        current := [];
        label :=
          String.trim
            (String.sub s (String.length cell_prefix)
               (String.length s - String.length cell_prefix))
      end
      else if s.[0] = '#' || is_trailer s then ()
      else
        match Event.of_string ~seq:!seq s with
        | Ok ev ->
          incr seq;
          current := (line, ev) :: !current
        | Error msg -> errors := (line, msg) :: !errors)
    (String.split_on_char '\n' text);
  close ();
  { sections = List.rev !sections; errors = List.rev !errors }

let of_channel ic = of_string (In_channel.input_all ic)

let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> Ok (of_string text)

let events t =
  List.concat_map (fun s -> List.map snd s.events) t.sections
