module Time = Utlb_sim.Time
module Engine = Utlb_sim.Engine
module Probe = Utlb_obs.Probe
module Ev = Utlb_obs.Event
module Injector = Utlb_fault.Injector

type t = {
  bus : Io_bus.t;
  mutable entry_transfers : int;
  mutable data_transfers : int;
  mutable bytes_moved : int;
  mutable retried_transfers : int;
  mutable failed_transfers : int;
  mutable frame_guard : (frame:int -> unit) option;
  mutable probe : Probe.t;
  mutable probe_pid : int;
  mutable faults : Injector.t option;
}

let create bus =
  {
    bus;
    entry_transfers = 0;
    data_transfers = 0;
    bytes_moved = 0;
    retried_transfers = 0;
    failed_transfers = 0;
    frame_guard = None;
    probe = Probe.null;
    probe_pid = 0;
    faults = None;
  }

let bus t = t.bus

let set_frame_guard t guard = t.frame_guard <- guard

let set_obs t ?(pid = 0) scope =
  t.probe <- Probe.of_scope_opt scope;
  t.probe_pid <- pid

let set_faults t faults = t.faults <- faults

(* Emit the begin half of a DMA span at the instant the bus will grant
   the transfer (call just before [Io_bus.submit], which advances
   [busy_until]); then the end half at the completion instant (call
   just after). *)
let observe_begin t kind ~count =
  if t.probe.Probe.active then begin
    let engine = Io_bus.engine t.bus in
    let start = Time.max (Engine.now engine) (Io_bus.busy_until t.bus) in
    t.probe.Probe.emit_at kind ~at_us:(Time.to_us start) ~pid:t.probe_pid
      ~vpn:Probe.no_vpn ~count
  end

let observe_end t kind ~count =
  if t.probe.Probe.active then
    t.probe.Probe.emit_at kind
      ~at_us:(Time.to_us (Io_bus.busy_until t.bus))
      ~pid:t.probe_pid ~vpn:Probe.no_vpn ~count

let guard_frames t frames =
  match t.frame_guard with
  | None -> ()
  | Some guard -> Array.iter (fun frame -> guard ~frame) frames

let fetch_entries ?on_fail t ~count ~on_done ~read =
  let base = Io_bus.entry_fetch_cost t.bus ~entries:count in
  (* Consult the fault plane before touching the bus: how many injected
     failures does this fetch absorb, and does a latency spike fire?
     With no injector both answers are free (no rng is consumed). *)
  let attempts, spike_us =
    match t.faults with
    | None -> (Some 0, 0.0)
    | Some inj -> (Injector.dma_attempts inj, Injector.dma_spike_us inj)
  in
  if spike_us > 0.0 then observe_begin t Ev.Fault_inject ~count:0;
  let deliver ~extra_us ~recovered =
    let cost = Time.add base (Time.of_us (spike_us +. extra_us)) in
    t.entry_transfers <- t.entry_transfers + 1;
    observe_begin t Ev.Dma_fetch_start ~count;
    Io_bus.submit t.bus ~cost (fun () -> on_done (Array.init count read));
    observe_end t Ev.Dma_fetch_end ~count;
    if recovered then observe_end t Ev.Fault_recover ~count:0
  in
  (match attempts with
  | Some 0 -> deliver ~extra_us:0.0 ~recovered:false
  | Some failed ->
    (* Recovered: [failed] attempts were lost and re-issued, separated
       by exponential backoff; the transfer then completed. *)
    let inj = Option.get t.faults in
    t.retried_transfers <- t.retried_transfers + 1;
    observe_begin t Ev.Fault_inject ~count:0;
    observe_begin t Ev.Fault_retry ~count:failed;
    Injector.note_recovery inj;
    let extra_us =
      (Time.to_us base *. float_of_int failed)
      +. Injector.backoff_us inj ~attempts:failed
    in
    deliver ~extra_us ~recovered:true
  | None -> (
    (* The whole retry budget burned. The bus was occupied for every
       attempt plus backoff; the entries never arrive. *)
    let inj = Option.get t.faults in
    let retries = max 0 (Injector.plan inj).Utlb_fault.Plan.dma_retries in
    t.failed_transfers <- t.failed_transfers + 1;
    observe_begin t Ev.Fault_inject ~count:0;
    observe_begin t Ev.Fault_retry ~count:retries;
    let burned_us =
      (Time.to_us base *. float_of_int (1 + retries))
      +. Injector.backoff_us inj ~attempts:retries
      +. spike_us
    in
    match on_fail with
    | Some fail -> Io_bus.submit t.bus ~cost:(Time.of_us burned_us) fail
    | None ->
      (* No failure continuation: degrade gracefully by completing the
         fetch after the burned budget instead of dropping it. *)
      Injector.note_recovery inj;
      t.entry_transfers <- t.entry_transfers + 1;
      observe_begin t Ev.Dma_fetch_start ~count;
      Io_bus.submit t.bus
        ~cost:(Time.of_us (burned_us +. Time.to_us base))
        (fun () -> on_done (Array.init count read));
      observe_end t Ev.Dma_fetch_end ~count;
      observe_end t Ev.Fault_recover ~count:0));
  t.probe.Probe.flush ()

let host_to_nic ?(frames = [||]) t ~src ~len ~on_done =
  if len < 0 then invalid_arg "Dma.host_to_nic: negative length";
  guard_frames t frames;
  let cost = Io_bus.data_cost t.bus ~bytes:len in
  t.data_transfers <- t.data_transfers + 1;
  t.bytes_moved <- t.bytes_moved + len;
  observe_begin t Ev.Dma_data_start ~count:len;
  Io_bus.submit t.bus ~cost (fun () ->
      let data = src () in
      if Bytes.length data <> len then
        invalid_arg "Dma.host_to_nic: source length mismatch";
      on_done data);
  observe_end t Ev.Dma_data_end ~count:len;
  t.probe.Probe.flush ()

let nic_to_host ?(frames = [||]) t ~data ~on_done =
  guard_frames t frames;
  let len = Bytes.length data in
  let cost = Io_bus.data_cost t.bus ~bytes:len in
  t.data_transfers <- t.data_transfers + 1;
  t.bytes_moved <- t.bytes_moved + len;
  observe_begin t Ev.Dma_data_start ~count:len;
  Io_bus.submit t.bus ~cost (fun () -> on_done data);
  observe_end t Ev.Dma_data_end ~count:len;
  t.probe.Probe.flush ()

let entry_transfers t = t.entry_transfers

let retried_transfers t = t.retried_transfers

let failed_transfers t = t.failed_transfers

let data_transfers t = t.data_transfers

let bytes_moved t = t.bytes_moved
