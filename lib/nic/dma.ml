module Time = Utlb_sim.Time
module Engine = Utlb_sim.Engine
module Scope = Utlb_obs.Scope
module Ev = Utlb_obs.Event

type t = {
  bus : Io_bus.t;
  mutable entry_transfers : int;
  mutable data_transfers : int;
  mutable bytes_moved : int;
  mutable frame_guard : (frame:int -> unit) option;
  mutable obs : (Scope.t * int) option;
}

let create bus =
  {
    bus;
    entry_transfers = 0;
    data_transfers = 0;
    bytes_moved = 0;
    frame_guard = None;
    obs = None;
  }

let bus t = t.bus

let set_frame_guard t guard = t.frame_guard <- guard

let set_obs t ?(pid = 0) scope =
  t.obs <- Option.map (fun s -> (s, pid)) scope

(* Emit the begin half of a DMA span at the instant the bus will grant
   the transfer (call just before [Io_bus.submit], which advances
   [busy_until]); then the end half at the completion instant (call
   just after). *)
let observe_begin t kind ~count =
  match t.obs with
  | None -> ()
  | Some (scope, pid) ->
    let engine = Io_bus.engine t.bus in
    let start = Time.max (Engine.now engine) (Io_bus.busy_until t.bus) in
    Scope.emit_at scope ~at_us:(Time.to_us start) ~pid ~count kind

let observe_end t kind ~count =
  match t.obs with
  | None -> ()
  | Some (scope, pid) ->
    Scope.emit_at scope
      ~at_us:(Time.to_us (Io_bus.busy_until t.bus))
      ~pid ~count kind

let guard_frames t frames =
  match t.frame_guard with
  | None -> ()
  | Some guard -> Array.iter (fun frame -> guard ~frame) frames

let fetch_entries t ~count ~on_done ~read =
  let cost = Io_bus.entry_fetch_cost t.bus ~entries:count in
  t.entry_transfers <- t.entry_transfers + 1;
  observe_begin t Ev.Dma_fetch_start ~count;
  Io_bus.submit t.bus ~cost (fun () ->
      on_done (Array.init count read));
  observe_end t Ev.Dma_fetch_end ~count

let host_to_nic ?(frames = [||]) t ~src ~len ~on_done =
  if len < 0 then invalid_arg "Dma.host_to_nic: negative length";
  guard_frames t frames;
  let cost = Io_bus.data_cost t.bus ~bytes:len in
  t.data_transfers <- t.data_transfers + 1;
  t.bytes_moved <- t.bytes_moved + len;
  observe_begin t Ev.Dma_data_start ~count:len;
  Io_bus.submit t.bus ~cost (fun () ->
      let data = src () in
      if Bytes.length data <> len then
        invalid_arg "Dma.host_to_nic: source length mismatch";
      on_done data);
  observe_end t Ev.Dma_data_end ~count:len

let nic_to_host ?(frames = [||]) t ~data ~on_done =
  guard_frames t frames;
  let len = Bytes.length data in
  let cost = Io_bus.data_cost t.bus ~bytes:len in
  t.data_transfers <- t.data_transfers + 1;
  t.bytes_moved <- t.bytes_moved + len;
  observe_begin t Ev.Dma_data_start ~count:len;
  Io_bus.submit t.bus ~cost (fun () -> on_done data);
  observe_end t Ev.Dma_data_end ~count:len

let entry_transfers t = t.entry_transfers

let data_transfers t = t.data_transfers

let bytes_moved t = t.bytes_moved
