type t = {
  bus : Io_bus.t;
  mutable entry_transfers : int;
  mutable data_transfers : int;
  mutable bytes_moved : int;
  mutable frame_guard : (frame:int -> unit) option;
}

let create bus =
  {
    bus;
    entry_transfers = 0;
    data_transfers = 0;
    bytes_moved = 0;
    frame_guard = None;
  }

let bus t = t.bus

let set_frame_guard t guard = t.frame_guard <- guard

let guard_frames t frames =
  match t.frame_guard with
  | None -> ()
  | Some guard -> Array.iter (fun frame -> guard ~frame) frames

let fetch_entries t ~count ~on_done ~read =
  let cost = Io_bus.entry_fetch_cost t.bus ~entries:count in
  t.entry_transfers <- t.entry_transfers + 1;
  Io_bus.submit t.bus ~cost (fun () ->
      on_done (Array.init count read))

let host_to_nic ?(frames = [||]) t ~src ~len ~on_done =
  if len < 0 then invalid_arg "Dma.host_to_nic: negative length";
  guard_frames t frames;
  let cost = Io_bus.data_cost t.bus ~bytes:len in
  t.data_transfers <- t.data_transfers + 1;
  t.bytes_moved <- t.bytes_moved + len;
  Io_bus.submit t.bus ~cost (fun () ->
      let data = src () in
      if Bytes.length data <> len then
        invalid_arg "Dma.host_to_nic: source length mismatch";
      on_done data)

let nic_to_host ?(frames = [||]) t ~data ~on_done =
  guard_frames t frames;
  let len = Bytes.length data in
  let cost = Io_bus.data_cost t.bus ~bytes:len in
  t.data_transfers <- t.data_transfers + 1;
  t.bytes_moved <- t.bytes_moved + len;
  Io_bus.submit t.bus ~cost (fun () -> on_done data)

let entry_transfers t = t.entry_transfers

let data_transfers t = t.data_transfers

let bytes_moved t = t.bytes_moved
