(** The host I/O bus (PCI in the paper's PCs).

    Carries two kinds of traffic the UTLB cares about:
    - small translation-entry reads issued by the NI on a Shared
      UTLB-Cache miss (cost curve of the paper's Table 2), and
    - bulk data DMA between host DRAM and NI SRAM.

    Costs are returned as {!Utlb_sim.Time.t}; callers either add them to
    analytic totals or schedule completions on the event engine. The bus
    serialises transactions: when used with an engine, a transaction
    issued while the bus is busy queues behind the current one. *)

type t

type config = {
  entry_fetch : Utlb_sim.Cost_table.t;
  (** Cost (µs) of fetching [n] translation entries in one transaction. *)
  dma_setup_us : float;  (** Fixed setup cost of a bulk DMA. *)
  bandwidth_mb_per_s : float;  (** Sustained bulk bandwidth. *)
}

val default_config : config
(** Paper values: entry fetches per Table 2 (1.5–2.5 µs for 1–32
    entries), 1.0 µs DMA setup, 127 MB/s sustained PCI bandwidth. *)

val create : ?config:config -> Utlb_sim.Engine.t -> t

val config : t -> config

val engine : t -> Utlb_sim.Engine.t
(** The event engine the bus schedules completions on. *)

val set_obs : t -> ?pid:int -> Utlb_obs.Scope.t option -> unit
(** Install (or clear) an observability scope: every submitted
    transaction then emits a bus-occupancy span ([Bus_start] at the
    instant the transaction wins the bus, [Bus_end] at completion),
    attributed to [pid] (default 0; a node id under SVM). *)

val set_faults : t -> Utlb_fault.Injector.t option -> unit
(** Install (or clear) a fault injector. Each submitted transaction
    then rolls the injector's [bus-stall] class; a hit lengthens that
    transaction's bus occupancy by the planned stall (and emits a
    [Fault_inject] event when an observability scope is installed).
    Ordering and completion are unaffected — a stall is pure added
    latency. *)

val entry_fetch_cost : t -> entries:int -> Utlb_sim.Time.t
(** Latency of one translation-entry fetch transaction.
    @raise Invalid_argument if [entries < 1]. *)

val data_cost : t -> bytes:int -> Utlb_sim.Time.t
(** Latency of a bulk transfer of [bytes] bytes.
    @raise Invalid_argument if [bytes < 0]. *)

val submit : t -> cost:Utlb_sim.Time.t -> (unit -> unit) -> unit
(** [submit t ~cost k] occupies the bus for [cost], then calls [k].
    Transactions are serviced FIFO. *)

val busy_until : t -> Utlb_sim.Time.t
(** Instant at which the bus next becomes idle. *)

val transactions : t -> int
(** Number of transactions submitted so far. *)

val stalls : t -> int
(** Transactions that absorbed an injected bus stall. *)
