module Time = Utlb_sim.Time
module Engine = Utlb_sim.Engine
module Scope = Utlb_obs.Scope
module Ev = Utlb_obs.Event
module Injector = Utlb_fault.Injector

type delivery = Delivered | Dropped

type t = {
  engine : Engine.t;
  dispatch : Time.t;
  mutable handler : (payload:int -> unit) option;
  mutable busy_until : Time.t;
  mutable raised : int;
  mutable dropped : int;
  mutable obs : Scope.t option;
  mutable faults : Injector.t option;
}

let create ?(dispatch_us = 10.0) engine =
  {
    engine;
    dispatch = Time.of_us dispatch_us;
    handler = None;
    busy_until = Time.zero;
    raised = 0;
    dropped = 0;
    obs = None;
    faults = None;
  }

let set_handler t h = t.handler <- Some h

let set_obs t obs = t.obs <- obs

let set_faults t faults = t.faults <- faults

let timeouts t =
  match t.faults with None -> 0 | Some inj -> Injector.irq_reissues inj

let raise_irq t ~payload =
  match t.handler with
  | None ->
    (* No service routine: count the interrupt as dropped instead of
       tearing the simulation down. The NI keeps running; the caller
       sees the outcome and can degrade. *)
    t.dropped <- t.dropped + 1;
    Dropped
  | Some h ->
    let timeouts = timeouts t in
    (* Each timed-out issue occupies a full dispatch window before the
       host notices silence and the NI re-raises the line. *)
    for _ = 1 to timeouts do
      t.raised <- t.raised + 1;
      let now = Engine.now t.engine in
      let start = Time.max now t.busy_until in
      let fire = Time.add start t.dispatch in
      t.busy_until <- fire;
      match t.obs with
      | None -> ()
      | Some scope ->
        Scope.emit_at scope ~at_us:(Time.to_us fire) ~pid:payload Ev.Interrupt
    done;
    t.raised <- t.raised + 1;
    let now = Engine.now t.engine in
    let start = Time.max now t.busy_until in
    let fire = Time.add start t.dispatch in
    t.busy_until <- fire;
    (match t.obs with
    | None -> ()
    | Some scope ->
      if timeouts > 0 then begin
        Scope.emit_at scope ~at_us:(Time.to_us fire) ~pid:payload
          Ev.Fault_inject;
        Scope.emit_at scope ~at_us:(Time.to_us fire) ~pid:payload
          ~count:timeouts Ev.Fault_retry;
        Scope.emit_at scope ~at_us:(Time.to_us fire) ~pid:payload
          Ev.Fault_recover
      end;
      Scope.emit_at scope ~at_us:(Time.to_us fire) ~pid:payload Ev.Interrupt);
    if timeouts > 0 then
      Option.iter Injector.note_recovery t.faults;
    ignore (Engine.schedule_at t.engine ~at:fire (fun () -> h ~payload));
    Delivered

let raised t = t.raised

let dropped t = t.dropped

let dispatch_cost t = t.dispatch
