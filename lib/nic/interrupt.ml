module Time = Utlb_sim.Time
module Engine = Utlb_sim.Engine
module Scope = Utlb_obs.Scope
module Ev = Utlb_obs.Event

type t = {
  engine : Engine.t;
  dispatch : Time.t;
  mutable handler : (payload:int -> unit) option;
  mutable busy_until : Time.t;
  mutable raised : int;
  mutable obs : Scope.t option;
}

let create ?(dispatch_us = 10.0) engine =
  {
    engine;
    dispatch = Time.of_us dispatch_us;
    handler = None;
    busy_until = Time.zero;
    raised = 0;
    obs = None;
  }

let set_handler t h = t.handler <- Some h

let set_obs t obs = t.obs <- obs

let raise_irq t ~payload =
  match t.handler with
  | None -> failwith "Interrupt.raise_irq: no handler installed"
  | Some h ->
    t.raised <- t.raised + 1;
    let now = Engine.now t.engine in
    let start = Time.max now t.busy_until in
    let fire = Time.add start t.dispatch in
    t.busy_until <- fire;
    (match t.obs with
    | None -> ()
    | Some scope ->
      Scope.emit_at scope ~at_us:(Time.to_us fire) ~pid:payload Ev.Interrupt);
    ignore (Engine.schedule_at t.engine ~at:fire (fun () -> h ~payload))

let raised t = t.raised

let dispatch_cost t = t.dispatch
