module Time = Utlb_sim.Time
module Engine = Utlb_sim.Engine
module Probe = Utlb_obs.Probe
module Ev = Utlb_obs.Event
module Injector = Utlb_fault.Injector

type delivery = Delivered | Dropped

type t = {
  engine : Engine.t;
  dispatch : Time.t;
  mutable handler : (payload:int -> unit) option;
  mutable busy_until : Time.t;
  mutable raised : int;
  mutable dropped : int;
  mutable probe : Probe.t;
  mutable faults : Injector.t option;
}

let create ?(dispatch_us = 10.0) engine =
  {
    engine;
    dispatch = Time.of_us dispatch_us;
    handler = None;
    busy_until = Time.zero;
    raised = 0;
    dropped = 0;
    probe = Probe.null;
    faults = None;
  }

let set_handler t h = t.handler <- Some h

let set_obs t obs = t.probe <- Probe.of_scope_opt obs

let set_faults t faults = t.faults <- faults

let timeouts t =
  match t.faults with None -> 0 | Some inj -> Injector.irq_reissues inj

let raise_irq t ~payload =
  match t.handler with
  | None ->
    (* No service routine: count the interrupt as dropped instead of
       tearing the simulation down. The NI keeps running; the caller
       sees the outcome and can degrade. *)
    t.dropped <- t.dropped + 1;
    Dropped
  | Some h ->
    let timeouts = timeouts t in
    (* Each timed-out issue occupies a full dispatch window before the
       host notices silence and the NI re-raises the line. *)
    for _ = 1 to timeouts do
      t.raised <- t.raised + 1;
      let now = Engine.now t.engine in
      let start = Time.max now t.busy_until in
      let fire = Time.add start t.dispatch in
      t.busy_until <- fire;
      t.probe.Probe.emit_at Ev.Interrupt ~at_us:(Time.to_us fire)
        ~pid:payload ~vpn:Probe.no_vpn ~count:Probe.no_count
    done;
    t.raised <- t.raised + 1;
    let now = Engine.now t.engine in
    let start = Time.max now t.busy_until in
    let fire = Time.add start t.dispatch in
    t.busy_until <- fire;
    if timeouts > 0 then begin
      t.probe.Probe.emit_at Ev.Fault_inject ~at_us:(Time.to_us fire)
        ~pid:payload ~vpn:Probe.no_vpn ~count:Probe.no_count;
      t.probe.Probe.emit_at Ev.Fault_retry ~at_us:(Time.to_us fire)
        ~pid:payload ~vpn:Probe.no_vpn ~count:timeouts;
      t.probe.Probe.emit_at Ev.Fault_recover ~at_us:(Time.to_us fire)
        ~pid:payload ~vpn:Probe.no_vpn ~count:Probe.no_count
    end;
    t.probe.Probe.emit_at Ev.Interrupt ~at_us:(Time.to_us fire)
      ~pid:payload ~vpn:Probe.no_vpn ~count:Probe.no_count;
    if timeouts > 0 then
      Option.iter Injector.note_recovery t.faults;
    ignore (Engine.schedule_at t.engine ~at:fire (fun () -> h ~payload));
    (* Delivery is this component's dispatch boundary. *)
    t.probe.Probe.flush ();
    Delivered

let raised t = t.raised

let dropped t = t.dropped

let dispatch_cost t = t.dispatch
