(** A complete network-interface card: SRAM, I/O bus, DMA engine,
    interrupt line, and MCP firmware, assembled around one event engine.

    This is the substrate the UTLB library programs against. One [t] per
    simulated node. *)

type t

val create :
  ?sram_bytes:int ->
  ?bus_config:Io_bus.config ->
  ?intr_dispatch_us:float ->
  ?mcp_poll_us:float ->
  node:int ->
  Utlb_sim.Engine.t ->
  t

val node : t -> int

val engine : t -> Utlb_sim.Engine.t

val sram : t -> Sram.t

val bus : t -> Io_bus.t

val dma : t -> Dma.t

val interrupt : t -> Interrupt.t

val mcp : t -> Mcp.t

val set_faults : t -> Utlb_fault.Injector.t option -> unit
(** Install (or clear) one fault injector on the card's bus, DMA
    engine, and interrupt line at once — the usual way a node opts its
    whole substrate into a fault plan. *)

val new_command_queue : t -> pid:Utlb_mem.Pid.t -> slots:int -> Command_queue.t
(** Allocate a command ring in this card's SRAM and attach it to the
    firmware rotation. *)
