(** NI-to-host interrupt line.

    The interrupt-based baseline (and rare UTLB corner cases, e.g. a
    swapped-out second-level table) raise host interrupts. Dispatch
    costs the paper's measured 10 µs before the registered handler runs;
    interrupts raised while one is being serviced queue FIFO. *)

type t

val create :
  ?dispatch_us:float -> Utlb_sim.Engine.t -> t
(** Default dispatch cost 10 µs. *)

val set_handler : t -> (payload:int -> unit) -> unit
(** Install the host-side service routine. Replaces any previous one. *)

val set_obs : t -> Utlb_obs.Scope.t option -> unit
(** Install (or clear) an observability scope: each raised interrupt
    then emits an [Interrupt] event at its dispatch instant, with the
    payload word as the pid. *)

val raise_irq : t -> payload:int -> unit
(** Raise an interrupt carrying a small payload word (e.g. the missing
    virtual page number).
    @raise Failure if no handler is installed. *)

val raised : t -> int
(** Total interrupts raised. *)

val dispatch_cost : t -> Utlb_sim.Time.t
