(** NI-to-host interrupt line.

    The interrupt-based baseline (and rare UTLB corner cases, e.g. a
    swapped-out second-level table) raise host interrupts. Dispatch
    costs the paper's measured 10 µs before the registered handler runs;
    interrupts raised while one is being serviced queue FIFO. *)

type t

type delivery = Delivered | Dropped
(** Outcome of {!raise_irq}: [Dropped] means no handler was installed
    and the interrupt was counted and discarded rather than crashing
    the simulation. *)

val create :
  ?dispatch_us:float -> Utlb_sim.Engine.t -> t
(** Default dispatch cost 10 µs. *)

val set_handler : t -> (payload:int -> unit) -> unit
(** Install the host-side service routine. Replaces any previous one. *)

val set_obs : t -> Utlb_obs.Scope.t option -> unit
(** Install (or clear) an observability scope: each raised interrupt
    then emits an [Interrupt] event at its dispatch instant, with the
    payload word as the pid. *)

val set_faults : t -> Utlb_fault.Injector.t option -> unit
(** Install (or clear) a fault injector driving the [irq-timeout]
    class: a delivery may time out and be re-issued (each re-issue
    occupies a full dispatch window and counts in {!raised}), at most
    [irq_retries] times, after which the handler is guaranteed to run.
    A delivery that needed at least one re-issue counts one recovery. *)

val raise_irq : t -> payload:int -> delivery
(** Raise an interrupt carrying a small payload word (e.g. the missing
    virtual page number). With no handler installed the interrupt is
    dropped — counted in {!dropped} — and [Dropped] is returned. *)

val raised : t -> int
(** Total interrupts raised (including fault-injected re-issues). *)

val dropped : t -> int
(** Interrupts discarded because no handler was installed. *)

val dispatch_cost : t -> Utlb_sim.Time.t
