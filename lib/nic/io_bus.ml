module Time = Utlb_sim.Time
module Engine = Utlb_sim.Engine
module Cost_table = Utlb_sim.Cost_table
module Probe = Utlb_obs.Probe
module Ev = Utlb_obs.Event
module Injector = Utlb_fault.Injector

type config = {
  entry_fetch : Cost_table.t;
  dma_setup_us : float;
  bandwidth_mb_per_s : float;
}

let default_config =
  {
    (* Paper Table 2, "DMA cost" row: microseconds to fetch n entries. *)
    entry_fetch =
      Cost_table.create
        [ (1, 1.5); (2, 1.6); (4, 1.6); (8, 1.9); (16, 2.1); (32, 2.5) ];
    dma_setup_us = 1.0;
    bandwidth_mb_per_s = 127.0;
  }

type t = {
  engine : Engine.t;
  config : config;
  mutable busy_until : Time.t;
  mutable transactions : int;
  mutable stalls : int;
  mutable probe : Probe.t;
  mutable probe_pid : int;
  mutable faults : Injector.t option;
}

let create ?(config = default_config) engine =
  {
    engine;
    config;
    busy_until = Time.zero;
    transactions = 0;
    stalls = 0;
    probe = Probe.null;
    probe_pid = 0;
    faults = None;
  }

let config t = t.config

let engine t = t.engine

let set_obs t ?(pid = 0) scope =
  t.probe <- Probe.of_scope_opt scope;
  t.probe_pid <- pid

let set_faults t faults = t.faults <- faults

let entry_fetch_cost t ~entries =
  if entries < 1 then invalid_arg "Io_bus.entry_fetch_cost: entries < 1";
  Time.of_us (Cost_table.eval t.config.entry_fetch entries)

let data_cost t ~bytes =
  if bytes < 0 then invalid_arg "Io_bus.data_cost: negative length";
  let transfer_us =
    float_of_int bytes /. (t.config.bandwidth_mb_per_s *. 1e6) *. 1e6
  in
  Time.of_us (t.config.dma_setup_us +. transfer_us)

let submit t ~cost k =
  let now = Engine.now t.engine in
  let start = Time.max now t.busy_until in
  (* An injected arbitration stall lengthens this transaction's bus
     occupancy; FIFO order and eventual completion are unaffected. *)
  let cost =
    match t.faults with
    | None -> cost
    | Some inj ->
      let stall = Injector.bus_stall_us inj in
      if stall <= 0.0 then cost
      else begin
        t.stalls <- t.stalls + 1;
        t.probe.Probe.emit_at Ev.Fault_inject ~at_us:(Time.to_us start)
          ~pid:t.probe_pid ~vpn:Probe.no_vpn ~count:Probe.no_count;
        Time.add cost (Time.of_us stall)
      end
  in
  let finish = Time.add start cost in
  t.busy_until <- finish;
  t.transactions <- t.transactions + 1;
  if t.probe.Probe.active then begin
    t.probe.Probe.emit_at Ev.Bus_start ~at_us:(Time.to_us start)
      ~pid:t.probe_pid ~vpn:Probe.no_vpn ~count:Probe.no_count;
    t.probe.Probe.emit_at Ev.Bus_end ~at_us:(Time.to_us finish)
      ~pid:t.probe_pid ~vpn:Probe.no_vpn ~count:Probe.no_count
  end;
  ignore (Engine.schedule_at t.engine ~at:finish k);
  (* The submit is this component's dispatch boundary. *)
  t.probe.Probe.flush ()

let busy_until t = t.busy_until

let transactions t = t.transactions

let stalls t = t.stalls
