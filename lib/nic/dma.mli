(** The NI DMA engine.

    Two operation classes, matching the two ways the paper's firmware
    uses DMA:

    - {!fetch_entries}: pull [n] consecutive translation entries from a
      host-resident UTLB page table into the NI (the Shared UTLB-Cache
      miss/prefetch path, Table 2 costs);
    - {!host_to_nic} / {!nic_to_host}: bulk data movement between pinned
      host pages and SRAM staging buffers (the actual message payload
      path).

    Completions are delivered through the event engine; the DMA engine
    shares the I/O bus, so overlapping transfers serialise. *)

type t

val create : Io_bus.t -> t

val bus : t -> Io_bus.t

val fetch_entries :
  ?on_fail:(unit -> unit) ->
  t ->
  count:int ->
  on_done:(int64 array -> unit) ->
  read:(int -> int64) ->
  unit
(** [fetch_entries t ~count ~on_done ~read] reads entries
    [read 0 .. read (count-1)] from host memory with one bus
    transaction, then delivers them. The [read] functions run at
    completion time, modelling the host-memory snapshot the DMA sees.

    Under an installed fault injector ({!set_faults}) the fetch may
    absorb injected failures: each failed attempt re-issues the
    transfer after exponential backoff (extra bus occupancy), and a
    fetch that survives the retry budget completes normally. If the
    whole budget burns, [on_fail] (when given) is scheduled at the
    instant the budget is exhausted and [on_done] never runs — the
    caller's interrupt-path fallback; without [on_fail] the fetch
    degrades to completing after the burned budget. *)

val host_to_nic :
  ?frames:int array ->
  t ->
  src:(unit -> bytes) ->
  len:int ->
  on_done:(bytes -> unit) ->
  unit
(** Bulk DMA of [len] bytes from host memory into the NI. [src] is
    sampled at completion. [frames] names the host physical frames the
    transfer touches; each is checked by the installed frame guard (if
    any) at issue time. @raise Invalid_argument if [len < 0] or the
    sampled buffer length mismatches [len]. *)

val nic_to_host :
  ?frames:int array -> t -> data:bytes -> on_done:(bytes -> unit) -> unit
(** Bulk DMA of a staged SRAM buffer out to host memory. [frames] as in
    {!host_to_nic}. *)

val set_obs : t -> ?pid:int -> Utlb_obs.Scope.t option -> unit
(** Install (or clear) an observability scope. Every transfer then
    emits a begin/end span ([Dma_fetch_start]/[Dma_fetch_end] with
    [count] = entries for {!fetch_entries},
    [Dma_data_start]/[Dma_data_end] with [count] = bytes for the bulk
    paths) covering exactly the bus window the transfer occupies.
    [pid] (default 0) attributes the spans, e.g. to a node id. *)

val set_frame_guard : t -> (frame:int -> unit) option -> unit
(** Install (or clear) a sanitizer guard consulted with every frame a
    bulk DMA declares via [?frames]. The guard is expected to report a
    violation when the frame is the pinned garbage frame or is not
    currently pinned — the safety property of the paper's Section 3.4
    that the NI never moves data through an unpinned page. *)

val set_faults : t -> Utlb_fault.Injector.t option -> unit
(** Install (or clear) a fault injector driving {!fetch_entries}'s
    [dma-fail]/[dma-spike] classes. Clean transfers consume no
    randomness when the corresponding probabilities are 0. *)

val entry_transfers : t -> int

val retried_transfers : t -> int
(** Entry fetches that absorbed at least one injected failure but
    recovered within the retry budget. *)

val failed_transfers : t -> int
(** Entry fetches whose whole retry budget burned. *)

val data_transfers : t -> int

val bytes_moved : t -> int
