type t = {
  node : int;
  engine : Utlb_sim.Engine.t;
  sram : Sram.t;
  bus : Io_bus.t;
  dma : Dma.t;
  interrupt : Interrupt.t;
  mcp : Mcp.t;
}

let create ?sram_bytes ?bus_config ?intr_dispatch_us ?mcp_poll_us ~node engine =
  let sram =
    match sram_bytes with
    | None -> Sram.create ()
    | Some bytes -> Sram.create ~bytes ()
  in
  let bus =
    match bus_config with
    | None -> Io_bus.create engine
    | Some config -> Io_bus.create ~config engine
  in
  let interrupt =
    match intr_dispatch_us with
    | None -> Interrupt.create engine
    | Some dispatch_us -> Interrupt.create ~dispatch_us engine
  in
  let mcp =
    match mcp_poll_us with
    | None -> Mcp.create engine
    | Some poll_us -> Mcp.create ~poll_us engine
  in
  { node; engine; sram; bus; dma = Dma.create bus; interrupt; mcp }

let node t = t.node

let engine t = t.engine

let sram t = t.sram

let bus t = t.bus

let dma t = t.dma

let interrupt t = t.interrupt

let mcp t = t.mcp

let set_faults t faults =
  Io_bus.set_faults t.bus faults;
  Dma.set_faults t.dma faults;
  Interrupt.set_faults t.interrupt faults

let new_command_queue t ~pid ~slots =
  let ring = Command_queue.create t.sram ~pid ~slots in
  Mcp.attach t.mcp ring;
  ring
