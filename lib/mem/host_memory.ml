module Pid_table = Hashtbl.Make (struct
  type t = Pid.t

  let equal = Pid.equal

  let hash = Pid.hash
end)

type pin_error = [ `Out_of_memory ]

type process = { table : Page_table.t; mutable pinned : int }

type t = {
  frames : Frame_allocator.t;
  procs : process Pid_table.t;
  owner : (int, Pid.t * int) Hashtbl.t; (* frame -> (pid, vpn) *)
  mutable clock_hand : int;
  mutable faults : int;
  mutable evictions : int;
  mutable pin_calls : int;
  mutable pages_pinned : int;
  mutable unpin_calls : int;
  mutable pages_unpinned : int;
}

let create ?(frames = 65536) () =
  {
    frames = Frame_allocator.create ~frames;
    procs = Pid_table.create 8;
    owner = Hashtbl.create 1024;
    clock_hand = 1;
    faults = 0;
    evictions = 0;
    pin_calls = 0;
    pages_pinned = 0;
    unpin_calls = 0;
    pages_unpinned = 0;
  }

let add_process t pid =
  if not (Pid_table.mem t.procs pid) then
    Pid_table.replace t.procs pid { table = Page_table.create (); pinned = 0 }

let has_process t pid = Pid_table.mem t.procs pid

let proc t pid =
  match Pid_table.find_opt t.procs pid with
  | Some p -> p
  | None -> invalid_arg "Host_memory: unknown process"

let garbage_frame t = Frame_allocator.garbage_frame t.frames

let translate t pid ~vpn =
  let p = proc t pid in
  let frame = Page_table.frame_of p.table vpn in
  if frame < 0 then None else Some frame

(* Clock scan for an unpinned resident frame to evict. Returns false
   when every allocated frame is pinned (or owned by no process, which
   cannot happen outside the garbage frame). *)
let try_evict t =
  let total = Frame_allocator.total t.frames in
  let rec scan remaining =
    if remaining = 0 then false
    else begin
      let f = t.clock_hand in
      t.clock_hand <- if f + 1 >= total then 1 else f + 1;
      match Hashtbl.find_opt t.owner f with
      | None -> scan (remaining - 1)
      | Some (pid, vpn) ->
        let p = proc t pid in
        if Page_table.frame_of p.table vpn >= 0 && Page_table.pin_of p.table vpn = 0
        then begin
          Page_table.remove p.table vpn;
          Hashtbl.remove t.owner f;
          Frame_allocator.free t.frames f;
          t.evictions <- t.evictions + 1;
          true
        end
        else scan (remaining - 1)
    end
  in
  scan (total - 1)

let rec alloc_frame t =
  match Frame_allocator.alloc t.frames with
  | Some f -> Some f
  | None -> if try_evict t then alloc_frame t else None

let ensure_resident t pid ~vpn =
  let p = proc t pid in
  let frame = Page_table.frame_of p.table vpn in
  if frame >= 0 then Ok frame
  else
    match alloc_frame t with
    | None -> Error `Out_of_memory
    | Some f ->
      Page_table.set p.table vpn ~frame:f;
      Hashtbl.replace t.owner f (pid, vpn);
      t.faults <- t.faults + 1;
      Ok f

let pin t pid ~vpn ~count =
  if count <= 0 then invalid_arg "Host_memory.pin: count must be positive";
  let p = proc t pid in
  let frames = Array.make count 0 in
  let rec pin_from i =
    if i = count then Ok frames
    else
      match ensure_resident t pid ~vpn:(vpn + i) with
      | Error _ as e ->
        (* Roll back the pages this call already pinned. *)
        for j = 0 to i - 1 do
          let remaining = Page_table.adjust_pin p.table (vpn + j) ~delta:(-1) in
          if remaining = 0 then p.pinned <- p.pinned - 1
        done;
        e
      | Ok f ->
        frames.(i) <- f;
        let now = Page_table.adjust_pin p.table (vpn + i) ~delta:1 in
        if now = 1 then p.pinned <- p.pinned + 1;
        pin_from (i + 1)
  in
  match pin_from 0 with
  | Ok _ as ok ->
    t.pin_calls <- t.pin_calls + 1;
    t.pages_pinned <- t.pages_pinned + count;
    ok
  | Error _ as e -> e

let unpin t pid ~vpn ~count =
  if count <= 0 then invalid_arg "Host_memory.unpin: count must be positive";
  let p = proc t pid in
  (* Validate the whole range first so the operation is all-or-nothing. *)
  for i = 0 to count - 1 do
    if Page_table.pin_of p.table (vpn + i) <= 0 then
      invalid_arg "Host_memory.unpin: page not pinned"
  done;
  for i = 0 to count - 1 do
    let remaining = Page_table.adjust_pin p.table (vpn + i) ~delta:(-1) in
    if remaining = 0 then p.pinned <- p.pinned - 1
  done;
  t.unpin_calls <- t.unpin_calls + 1;
  t.pages_unpinned <- t.pages_unpinned + count

let is_pinned t pid ~vpn =
  let p = proc t pid in
  Page_table.pin_of p.table vpn > 0

let pin_count t pid ~vpn =
  let p = proc t pid in
  Page_table.pin_of p.table vpn

let pinned_pages t pid = (proc t pid).pinned

let recount_pinned t pid = Page_table.pinned_count (proc t pid).table

let frame_owner t ~frame = Hashtbl.find_opt t.owner frame

let resident_pages t pid = Page_table.resident_count (proc t pid).table

let free_frames t = Frame_allocator.free_count t.frames

let faults t = t.faults

let evictions t = t.evictions

let pin_calls t = t.pin_calls

let pages_pinned t = t.pages_pinned

let unpin_calls t = t.unpin_calls

let pages_unpinned t = t.pages_unpinned

let reset_counters t =
  t.faults <- 0;
  t.evictions <- 0;
  t.pin_calls <- 0;
  t.pages_pinned <- 0;
  t.unpin_calls <- 0;
  t.pages_unpinned <- 0
