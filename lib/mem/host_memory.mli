(** The simulated host operating-system memory subsystem.

    This is the only OS facility UTLB needs (Section 3 of the paper):
    demand paging, page pinning/unpinning with reference counts, and
    virtual-to-physical lookup. The device driver layer above calls
    [pin]/[unpin]; the NIC model reads translations through
    [translate].

    Paging: when DRAM runs out, an unpinned resident page is evicted
    (clock scan); pinned pages are never evicted, which is exactly the
    guarantee the NI relies on. *)

type t

type pin_error = [ `Out_of_memory ]

val create : ?frames:int -> unit -> t
(** [create ~frames ()] simulates a host with [frames] DRAM frames
    (default 65536 = 256 MB, the paper's SMP nodes).
    @raise Invalid_argument if [frames < 2]. *)

val add_process : t -> Pid.t -> unit
(** Register a process. Idempotent. *)

val has_process : t -> Pid.t -> bool

val garbage_frame : t -> int
(** The driver's pinned garbage frame (see {!Frame_allocator}). *)

val translate : t -> Pid.t -> vpn:int -> int option
(** Frame backing [vpn] if resident, without faulting it in.
    @raise Invalid_argument for an unknown process. *)

val ensure_resident : t -> Pid.t -> vpn:int -> (int, pin_error) result
(** Fault the page in if needed (possibly evicting an unpinned page)
    and return its frame. *)

val pin : t -> Pid.t -> vpn:int -> count:int -> (int array, pin_error) result
(** [pin t pid ~vpn ~count] pins the contiguous range
    [vpn .. vpn+count-1], faulting pages in as needed, and returns their
    frames. On [`Out_of_memory] no page of the range is left pinned by
    this call.
    @raise Invalid_argument if [count <= 0]. *)

val unpin : t -> Pid.t -> vpn:int -> count:int -> unit
(** Decrement pin counts over the range.
    @raise Invalid_argument if some page in the range is not pinned. *)

val is_pinned : t -> Pid.t -> vpn:int -> bool

val pin_count : t -> Pid.t -> vpn:int -> int

val pinned_pages : t -> Pid.t -> int
(** Number of distinct pages with a positive pin count. *)

val recount_pinned : t -> Pid.t -> int
(** Like {!pinned_pages} but recomputed by a full page-table walk
    rather than read from the incremental counter; the invariant
    sanitizer compares the two to detect accounting drift. *)

val frame_owner : t -> frame:int -> (Pid.t * int) option
(** The (pid, vpn) currently backed by physical [frame], if any. The
    garbage frame and never-allocated frames have no owner. *)

val resident_pages : t -> Pid.t -> int

val free_frames : t -> int

(** Operation counters, for experiment accounting. *)

val faults : t -> int
(** Pages made resident on demand. *)

val evictions : t -> int
(** Unpinned pages evicted to satisfy demand. *)

val pin_calls : t -> int
(** Number of [pin] invocations (one ioctl each in the real system). *)

val pages_pinned : t -> int

val unpin_calls : t -> int

val pages_unpinned : t -> int

val reset_counters : t -> unit
