(** Per-process two-level page table.

    Mirrors the classic 32-bit two-level layout the paper's
    Hierarchical-UTLB borrows: a 1024-entry directory of 1024-entry
    second-level tables covering a 20-bit virtual page number space
    (4 GB of virtual address space at 4 KB pages). Second-level tables
    are allocated lazily on first touch, so sparse address spaces stay
    cheap. *)

type t

type pte = {
  frame : int;  (** Physical frame backing this virtual page. *)
  pinned : int;  (** Pin reference count; 0 means unpinned. *)
}

val directory_bits : int
(** 10. *)

val table_bits : int
(** 10. *)

val max_vpn : int
(** Largest representable virtual page number (2^20 - 1). *)

val create : unit -> t

val find : t -> int -> pte option
(** [find t vpn] is the entry for [vpn], or [None] if not resident.
    @raise Invalid_argument if [vpn] is out of range. *)

val frame_of : t -> int -> int
(** Frame backing [vpn], or -1 if not resident — the allocation-free
    fast path the OS layer uses instead of [find].
    @raise Invalid_argument if [vpn] is out of range. *)

val pin_of : t -> int -> int
(** Pin refcount of [vpn]; 0 when unpinned or not resident (pair with
    [frame_of] to distinguish). Allocation-free. *)

val set : t -> int -> frame:int -> unit
(** Install or replace the frame for [vpn], preserving its pin count. *)

val remove : t -> int -> unit
(** Drop the mapping for [vpn] (page evicted / swapped out). The pin
    count must be zero.
    @raise Invalid_argument if the page is still pinned. *)

val adjust_pin : t -> int -> delta:int -> int
(** [adjust_pin t vpn ~delta] changes the pin refcount and returns the
    new count.
    @raise Invalid_argument if the page is not resident or the count
    would go negative. *)

val resident_count : t -> int
(** Number of resident (mapped) pages. *)

val pinned_count : t -> int
(** Number of resident pages with a positive pin count, recomputed by a
    full table walk (not the incremental counter the OS layer keeps) —
    the invariant sanitizer compares the two to catch accounting
    drift. *)

val second_level_tables : t -> int
(** Number of allocated second-level tables — the paper's concern about
    Hierarchical-UTLB table memory. *)

val iter : t -> (int -> pte -> unit) -> unit
(** Iterate over resident pages in ascending vpn order. *)
