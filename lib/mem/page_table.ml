let directory_bits = 10

let table_bits = 10

let table_entries = 1 lsl table_bits

let directory_entries = 1 lsl directory_bits

let max_vpn = (1 lsl (directory_bits + table_bits)) - 1

type pte = { frame : int; pinned : int }

(* A slot is [None] when not resident; the pte is immutable and replaced
   on update, keeping [find] allocation-free for the common read path. *)
type t = {
  directory : pte option array option array;
  mutable resident : int;
  mutable tables : int;
}

let create () =
  { directory = Array.make directory_entries None; resident = 0; tables = 0 }

let check_vpn vpn =
  if vpn < 0 || vpn > max_vpn then
    invalid_arg "Page_table: vpn out of range"

let split vpn = (vpn lsr table_bits, vpn land (table_entries - 1))

let find t vpn =
  check_vpn vpn;
  let dir, idx = split vpn in
  match t.directory.(dir) with
  | None -> None
  | Some table -> table.(idx)

let table_for t dir =
  match t.directory.(dir) with
  | Some table -> table
  | None ->
    let table = Array.make table_entries None in
    t.directory.(dir) <- Some table;
    t.tables <- t.tables + 1;
    table

let set t vpn ~frame =
  check_vpn vpn;
  let dir, idx = split vpn in
  let table = table_for t dir in
  (match table.(idx) with
  | None ->
    t.resident <- t.resident + 1;
    table.(idx) <- Some { frame; pinned = 0 }
  | Some pte -> table.(idx) <- Some { pte with frame })

let remove t vpn =
  check_vpn vpn;
  let dir, idx = split vpn in
  match t.directory.(dir) with
  | None -> ()
  | Some table ->
    (match table.(idx) with
    | None -> ()
    | Some pte ->
      if pte.pinned > 0 then
        invalid_arg "Page_table.remove: page is pinned";
      table.(idx) <- None;
      t.resident <- t.resident - 1)

let adjust_pin t vpn ~delta =
  check_vpn vpn;
  let dir, idx = split vpn in
  match t.directory.(dir) with
  | None -> invalid_arg "Page_table.adjust_pin: page not resident"
  | Some table ->
    (match table.(idx) with
    | None -> invalid_arg "Page_table.adjust_pin: page not resident"
    | Some pte ->
      let pinned = pte.pinned + delta in
      if pinned < 0 then
        invalid_arg "Page_table.adjust_pin: negative pin count";
      table.(idx) <- Some { pte with pinned };
      pinned)

let resident_count t = t.resident

let pinned_count t =
  let n = ref 0 in
  Array.iter
    (fun slot ->
      match slot with
      | None -> ()
      | Some table ->
        Array.iter
          (fun entry ->
            match entry with
            | Some pte when pte.pinned > 0 -> incr n
            | Some _ | None -> ())
          table)
    t.directory;
  !n

let second_level_tables t = t.tables

let iter t f =
  Array.iteri
    (fun dir slot ->
      match slot with
      | None -> ()
      | Some table ->
        Array.iteri
          (fun idx entry ->
            match entry with
            | None -> ()
            | Some pte -> f ((dir lsl table_bits) lor idx) pte)
          table)
    t.directory
