let directory_bits = 10

let table_bits = 10

let table_entries = 1 lsl table_bits

let directory_entries = 1 lsl directory_bits

let max_vpn = (1 lsl (directory_bits + table_bits)) - 1

type pte = { frame : int; pinned : int }

(* Flat layout: second-level tables are [table_entries]-int blocks in
   two growable pools — one plane of frames (-1 = not resident) and one
   of pin counts — indexed by a directory of block ids. Residency
   checks, pin adjustments, and the OS fast paths below ([frame_of],
   [pin_of]) are bare int-array reads with no option or record
   allocation; [find] keeps the boxed pte interface for callers that
   want both fields at once. *)
type t = {
  dir_block : int array;
  mutable frames : int array;
  mutable pins : int array;
  mutable blocks : int;
  mutable resident : int;
  mutable tables : int;
}

let create () =
  {
    dir_block = Array.make directory_entries (-1);
    frames = [||];
    pins = [||];
    blocks = 0;
    resident = 0;
    tables = 0;
  }

let check_vpn vpn =
  if vpn < 0 || vpn > max_vpn then
    invalid_arg "Page_table: vpn out of range"

let split vpn = (vpn lsr table_bits, vpn land (table_entries - 1))

let alloc_block t =
  let needed = (t.blocks + 1) * table_entries in
  if needed > Array.length t.frames then begin
    let cap = max needed (max table_entries (2 * Array.length t.frames)) in
    let grow a fill =
      let b = Array.make cap fill in
      Array.blit a 0 b 0 (t.blocks * table_entries);
      b
    in
    t.frames <- grow t.frames (-1);
    t.pins <- grow t.pins 0
  end;
  Array.fill t.frames (t.blocks * table_entries) table_entries (-1);
  Array.fill t.pins (t.blocks * table_entries) table_entries 0;
  let block = t.blocks in
  t.blocks <- t.blocks + 1;
  block

(* Pool offset of [vpn]'s slot, or -1 when its table was never
   allocated. *)
let slot_of t vpn =
  let dir, idx = split vpn in
  let block = t.dir_block.(dir) in
  if block < 0 then -1 else (block lsl table_bits) + idx

let find t vpn =
  check_vpn vpn;
  let slot = slot_of t vpn in
  if slot < 0 then None
  else
    let frame = t.frames.(slot) in
    if frame < 0 then None else Some { frame; pinned = t.pins.(slot) }

let frame_of t vpn =
  check_vpn vpn;
  let slot = slot_of t vpn in
  if slot < 0 then -1 else t.frames.(slot)

let pin_of t vpn =
  check_vpn vpn;
  let slot = slot_of t vpn in
  if slot < 0 then 0
  else if t.frames.(slot) < 0 then 0
  else t.pins.(slot)

let set t vpn ~frame =
  check_vpn vpn;
  let dir, idx = split vpn in
  let block =
    match t.dir_block.(dir) with
    | -1 ->
      let block = alloc_block t in
      t.dir_block.(dir) <- block;
      t.tables <- t.tables + 1;
      block
    | block -> block
  in
  let slot = (block lsl table_bits) + idx in
  if t.frames.(slot) < 0 then begin
    t.resident <- t.resident + 1;
    t.pins.(slot) <- 0
  end;
  t.frames.(slot) <- frame

let remove t vpn =
  check_vpn vpn;
  let slot = slot_of t vpn in
  if slot >= 0 && t.frames.(slot) >= 0 then begin
    if t.pins.(slot) > 0 then invalid_arg "Page_table.remove: page is pinned";
    t.frames.(slot) <- -1;
    t.resident <- t.resident - 1
  end

let adjust_pin t vpn ~delta =
  check_vpn vpn;
  let slot = slot_of t vpn in
  if slot < 0 || t.frames.(slot) < 0 then
    invalid_arg "Page_table.adjust_pin: page not resident";
  let pinned = t.pins.(slot) + delta in
  if pinned < 0 then invalid_arg "Page_table.adjust_pin: negative pin count";
  t.pins.(slot) <- pinned;
  pinned

let resident_count t = t.resident

let pinned_count t =
  let n = ref 0 in
  for slot = 0 to (t.blocks * table_entries) - 1 do
    if t.frames.(slot) >= 0 && t.pins.(slot) > 0 then incr n
  done;
  !n

let second_level_tables t = t.tables

let iter t f =
  for dir = 0 to directory_entries - 1 do
    let block = t.dir_block.(dir) in
    if block >= 0 then
      let base = block lsl table_bits in
      for idx = 0 to table_entries - 1 do
        let frame = t.frames.(base + idx) in
        if frame >= 0 then
          f ((dir lsl table_bits) lor idx) { frame; pinned = t.pins.(base + idx) }
      done
  done
