module Time = Utlb_sim.Time
module Engine = Utlb_sim.Engine
module Rng = Utlb_sim.Rng
module Stats = Utlb_sim.Stats
module Pid = Utlb_mem.Pid
module Addr = Utlb_mem.Addr
module Nic = Utlb_nic.Nic
module Dma = Utlb_nic.Dma
module Mcp = Utlb_nic.Mcp
module Command_queue = Utlb_nic.Command_queue
module Fabric = Utlb_net.Fabric
module Demux = Utlb_net.Demux
module Channel = Utlb_net.Channel
module Link = Utlb_net.Link
module Hier_engine = Utlb.Hier_engine
module Intr_engine = Utlb.Intr_engine
module Cost_model = Utlb.Cost_model

let log_src = Logs.Src.create "utlb.vmmc" ~doc:"VMMC cluster"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Which address-translation mechanism every NI in the cluster runs. *)
type translation =
  | Utlb_translation of Hier_engine.config
  | Intr_translation of Intr_engine.config
  | Per_process_translation of Utlb.Pp_engine.config

type topology =
  | Star of int
  | Chain of { switches : int; hosts_per_switch : int }

type config = {
  topology : topology;
  seed : int64;
  translation : translation;
  faults : Link.fault_model;
  channel_window : int;
  command_slots : int;
}

let default_config =
  {
    topology = Star 4;
    seed = 0x564D4D43L; (* "VMMC" *)
    translation = Utlb_translation Hier_engine.default_config;
    faults = Link.no_faults;
    channel_window = 16;
    command_slots = 64;
  }

type export_entry = {
  owner : Pid.t;
  base_vaddr : int;
  len : int;
  key : int;
  mutable redirect_vaddr : int option;
}

(* Metadata that cannot travel through the int-only command ring: the
   import target and completion callback, queued FIFO per process in
   lockstep with the ring. *)
type import_target = { dest_node : int; export_id : int; key : int }

type cmd_meta =
  | Send_meta of {
      target : import_target;
      offset : int;
      on_complete : (unit -> unit) option;
      posted_at : Time.t;
      ni_cost_us : float;  (** NI translation cost of the source pages. *)
    }
  | Fetch_meta of {
      target : import_target;
      offset : int;
      len : int;
      lvaddr : int;
      on_complete : (unit -> unit) option;
    }

type fetch_waiter = {
  w_lvaddr : int;
  w_pid : Pid.t;
  w_on_complete : (unit -> unit) option;
}

type translator =
  | Hier of Hier_engine.t
  | Interrupt_based of Intr_engine.t
  | Per_process_tables of Utlb.Pp_engine.t

type node_rt = {
  id : int;
  nic : Nic.t;
  translator : translator;
  exports : (int, export_entry) Hashtbl.t;
  waiters : (int, fetch_waiter) Hashtbl.t;
  mutable next_export : int;
  mutable next_req : int;
  mutable channels_to : Channel.t option array;
  procs : (int, process) Hashtbl.t; (* by pid int *)
}

and notification = {
  n_export_id : int;
  n_offset : int;
  n_len : int;
  n_time_us : float;
}

and process = {
  cluster : cluster;
  rt : node_rt;
  pid : Pid.t;
  memory : Memory_image.t;
  ring : Command_queue.t;
  meta : cmd_meta Queue.t;
  notifications : notification Queue.t;
  mutable alive : bool;
}

and cluster = {
  config : config;
  engine : Engine.t;
  rng : Rng.t;
  fabric : Fabric.t;
  demux : Demux.t;
  node_rts : node_rt array;
  model : Cost_model.t;
  mutable next_pid : int;
  mutable sends_completed : int;
  mutable fetches_completed : int;
  mutable stores_received : int;
  mutable garbage_stores : int;
  mutable ring_desyncs : int;
  send_latency : Stats.Summary.t;
  (* Installed after creation: the firmware receive path; channels
     created later wire their receivers through it. *)
  mutable on_msg : (src:int -> dst:int -> bytes -> unit) option;
}

type t = cluster

let page_size = Addr.page_size

let engine t = t.engine

let node_count t = Array.length t.node_rts

let now_us t = Time.to_us (Engine.now t.engine)

let utlb_engine t ~node =
  match t.node_rts.(node).translator with
  | Hier engine -> engine
  | Interrupt_based _ | Per_process_tables _ ->
    invalid_arg "Cluster.utlb_engine: node does not run the Hierarchical-UTLB"

let nic t ~node = t.node_rts.(node).nic

let utlb_report t ~node =
  let label = Printf.sprintf "vmmc-node%d" node in
  match t.node_rts.(node).translator with
  | Hier engine -> Hier_engine.report engine ~label
  | Interrupt_based engine -> Intr_engine.report engine ~label
  | Per_process_tables engine -> Utlb.Pp_engine.report engine ~label

let sends_completed t = t.sends_completed

let fetches_completed t = t.fetches_completed

let stores_received t = t.stores_received

let garbage_stores t = t.garbage_stores

let ring_desyncs t = t.ring_desyncs

let retransmissions t =
  let total = ref 0 in
  Array.iter
    (fun rt ->
      Array.iter
        (function
          | Some ch -> total := !total + Channel.retransmissions ch
          | None -> ())
        rt.channels_to)
    t.node_rts;
  !total

let send_latency t = t.send_latency

let channel_to t rt dest =
  match rt.channels_to.(dest) with
  | Some ch -> ch
  | None ->
    let ch =
      Channel.create ~window:t.config.channel_window ~demux:t.demux
        ~src:rt.id ~dst:dest ()
    in
    rt.channels_to.(dest) <- Some ch;
    (* Wire the receive side of this channel into the destination's
       firmware message handler (installed at cluster creation). *)
    (match t.on_msg with
    | Some hook -> Channel.set_receiver ch (hook ~src:rt.id ~dst:dest)
    | None -> failwith "Cluster: receive hook not installed");
    ch

let pages_of ~vaddr ~len =
  let vpn = vaddr / page_size in
  let npages = Addr.pages_spanned (Addr.Vaddr.of_int vaddr) ~bytes:len in
  (vpn, max 1 npages)

(* One translation through whichever mechanism the node runs, reduced
   to (host-side cost, NI-side cost) in microseconds.

   UTLB charges the user-level check/pin/unpin on the host and cheap
   DMA refills on the NI. The interrupt-based baseline charges nothing
   on the host (there is no user-level state) but every NI miss costs an
   interrupt dispatch plus a kernel pin, and every eviction a kernel
   unpin — the Section 6.2 cost structure, now applied end to end. *)
type translation_cost = { host_us : float; ni_us : float; ni_misses : int }

let translate_pages t rt ~pid ~vpn ~npages =
  let model = t.model in
  match rt.translator with
  | Hier engine ->
    let o = Hier_engine.lookup engine ~pid ~vpn ~npages in
    let prefetch =
      match t.config.translation with
      | Utlb_translation c -> c.Hier_engine.prefetch
      | Intr_translation _ | Per_process_translation _ -> 1
    in
    let pin =
      if o.Hier_engine.pages_pinned > 0 then
        Cost_model.pin_us model ~pages:o.Hier_engine.pages_pinned
      else 0.0
    in
    let unpin =
      Cost_model.unpin_us model ~pages:1
      *. float_of_int o.Hier_engine.pages_unpinned
    in
    {
      host_us = Cost_model.user_check_us model +. pin +. unpin;
      ni_us =
        (Cost_model.ni_hit_us model *. float_of_int npages)
        +. Cost_model.ni_miss_us model ~entries:prefetch
           *. float_of_int o.Hier_engine.ni_misses;
      ni_misses = o.Hier_engine.ni_misses;
    }
  | Interrupt_based engine ->
    let o = Intr_engine.lookup engine ~pid ~vpn ~npages in
    {
      host_us = 0.0;
      ni_us =
        (Cost_model.ni_hit_us model *. float_of_int npages)
        +. (Cost_model.intr_us model +. Cost_model.kernel_pin_us model)
           *. float_of_int o.Intr_engine.interrupts
        +. Cost_model.kernel_unpin_us model
           *. float_of_int o.Intr_engine.pages_unpinned;
      ni_misses = o.Intr_engine.ni_misses;
    }
  | Per_process_tables engine ->
    let o = Utlb.Pp_engine.lookup engine ~pid ~vpn ~npages in
    let pin =
      if o.Utlb.Pp_engine.pages_pinned > 0 then
        Cost_model.pin_us model ~pages:o.Utlb.Pp_engine.pages_pinned
      else 0.0
    in
    let unpin =
      Cost_model.unpin_us model ~pages:1
      *. float_of_int o.Utlb.Pp_engine.pages_unpinned
    in
    {
      host_us = Cost_model.user_check_us model +. pin +. unpin;
      ni_us = Cost_model.ni_direct_us model *. float_of_int npages;
      ni_misses = 0;
    }

(* Deliver a store to its destination buffer: translate the target
   pages through the receiving node's UTLB (pinning on demand — the
   transfer-redirection path), then DMA to host memory. *)
let deliver_store t rt (msg_export : int) key offset data =
  match Hashtbl.find_opt rt.exports msg_export with
  | None ->
    Log.warn (fun m ->
        m "node%d: store to unknown export %d -> garbage page" rt.id
          msg_export);
    t.garbage_stores <- t.garbage_stores + 1
  | Some e when e.key <> key ->
    Log.warn (fun m ->
        m "node%d: store with bad key to export %d -> garbage page" rt.id
          msg_export);
    t.garbage_stores <- t.garbage_stores + 1
  | Some e when offset < 0 || offset + Bytes.length data > e.len ->
    t.garbage_stores <- t.garbage_stores + 1
  | Some e ->
    let base = Option.value ~default:e.base_vaddr e.redirect_vaddr in
    let dest_vaddr = base + offset in
    (match Hashtbl.find_opt rt.procs (Pid.to_int e.owner) with
    | None -> t.garbage_stores <- t.garbage_stores + 1
    | Some proc ->
      let vpn, npages = pages_of ~vaddr:dest_vaddr ~len:(Bytes.length data) in
      let cost = translate_pages t rt ~pid:e.owner ~vpn ~npages in
      ignore
        (Engine.schedule t.engine
           ~delay:(Time.of_us (cost.host_us +. cost.ni_us)) (fun () ->
             Dma.nic_to_host (Nic.dma rt.nic) ~data ~on_done:(fun data ->
                 Memory_image.write proc.memory ~vaddr:dest_vaddr data;
                 Queue.push
                   {
                     n_export_id = msg_export;
                     n_offset = offset;
                     n_len = Bytes.length data;
                     n_time_us = Time.to_us (Engine.now t.engine);
                   }
                   proc.notifications;
                 t.stores_received <- t.stores_received + 1))))

let deliver_fetch_request t rt ~src req_id export_id key offset len =
  let reply ok data =
    let ch = channel_to t rt src in
    Channel.send ch
      (Message.to_bytes (Message.Fetch_reply { req_id; ok; data }))
  in
  match Hashtbl.find_opt rt.exports export_id with
  | None -> reply false Bytes.empty
  | Some e when e.key <> key || offset < 0 || len < 0 || offset + len > e.len
    ->
    reply false Bytes.empty
  | Some e ->
    (match Hashtbl.find_opt rt.procs (Pid.to_int e.owner) with
    | None -> reply false Bytes.empty
    | Some proc ->
      let src_vaddr = e.base_vaddr + offset in
      let vpn, npages = pages_of ~vaddr:src_vaddr ~len in
      let cost = translate_pages t rt ~pid:e.owner ~vpn ~npages in
      ignore
        (Engine.schedule t.engine
           ~delay:(Time.of_us (cost.host_us +. cost.ni_us)) (fun () ->
             Dma.host_to_nic (Nic.dma rt.nic)
               ~src:(fun () -> Memory_image.read proc.memory ~vaddr:src_vaddr ~len)
               ~len
               ~on_done:(fun data -> reply true data))))

let deliver_fetch_reply t rt req_id ok data =
  match Hashtbl.find_opt rt.waiters req_id with
  | None -> ()
  | Some w ->
    Hashtbl.remove rt.waiters req_id;
    if not ok then begin
      t.garbage_stores <- t.garbage_stores + 1;
      match w.w_on_complete with Some f -> f () | None -> ()
    end
    else begin
      match Hashtbl.find_opt rt.procs (Pid.to_int w.w_pid) with
      | None -> ()
      | Some proc ->
        Dma.nic_to_host (Nic.dma rt.nic) ~data ~on_done:(fun data ->
            Memory_image.write proc.memory ~vaddr:w.w_lvaddr data;
            t.fetches_completed <- t.fetches_completed + 1;
            match w.w_on_complete with Some f -> f () | None -> ())
    end

(* Firmware receive path for one node: parse and dispatch. *)
let on_message t ~src ~dst payload =
  let rt = t.node_rts.(dst) in
  match Message.of_bytes payload with
  | Error _ -> t.garbage_stores <- t.garbage_stores + 1
  | Ok (Message.Store { export_id; key; offset; data }) ->
    deliver_store t rt export_id key offset data
  | Ok (Message.Fetch_request { req_id; export_id; key; offset; len }) ->
    deliver_fetch_request t rt ~src req_id export_id key offset len
  | Ok (Message.Fetch_reply { req_id; ok; data }) ->
    deliver_fetch_reply t rt req_id ok data

(* Firmware command path: a command popped from a process ring. *)
let on_command t rt ~pid cmd =
  match Hashtbl.find_opt rt.procs (Pid.to_int pid) with
  | None -> ()
  | Some proc ->
    (match cmd with
    | Command_queue.Noop -> ()
    | Command_queue.Send _ | Command_queue.Fetch _ | Command_queue.Redirect _ ->
    match (cmd, Queue.take_opt proc.meta) with
    | Command_queue.Noop, _ -> assert false
    | _, None ->
      (* A command with no matching metadata (a rogue ring sharing the
         pid, or a wrapped ring slot): drop it and keep the firmware
         alive — the command never acquires a target, so nothing can
         reach a stale buffer. *)
      t.ring_desyncs <- t.ring_desyncs + 1;
      Log.warn (fun m ->
          m "node%d: command ring and metadata out of sync, command dropped"
            rt.id)
    | ( Command_queue.Send { lvaddr; nbytes; dest_node; dest_import = _ },
        Some (Send_meta m) ) ->
      (* Charge NI translation cost for the source pages, then DMA the
         payload up and ship it page chunk by page chunk. *)
      ignore
        (Engine.schedule t.engine ~delay:(Time.of_us m.ni_cost_us) (fun () ->
             Dma.host_to_nic (Nic.dma rt.nic)
               ~src:(fun () ->
                 Memory_image.read proc.memory ~vaddr:lvaddr ~len:nbytes)
               ~len:nbytes
               ~on_done:(fun data ->
                 (* Break at page boundaries (footnote 1). *)
                 let ch = channel_to t rt dest_node in
                 let total = Bytes.length data in
                 let rec ship off =
                   if off < total then begin
                     let addr = lvaddr + off in
                     let chunk_len =
                       min (page_size - (addr mod page_size)) (total - off)
                     in
                     let chunk = Bytes.sub data off chunk_len in
                     let last = off + chunk_len >= total in
                     let on_delivered =
                       if last then
                         Some
                           (fun () ->
                             t.sends_completed <- t.sends_completed + 1;
                             Stats.Summary.observe t.send_latency
                               (Time.to_us
                                  (Time.sub (Engine.now t.engine) m.posted_at));
                             match m.on_complete with
                             | Some f -> f ()
                             | None -> ())
                       else None
                     in
                     let msg =
                       Message.Store
                         {
                           export_id = m.target.export_id;
                           key = m.target.key;
                           offset = m.offset + off;
                           data = chunk;
                         }
                     in
                     (match on_delivered with
                     | Some f -> Channel.send ch ~on_delivered:f (Message.to_bytes msg)
                     | None -> Channel.send ch (Message.to_bytes msg));
                     ship (off + chunk_len)
                   end
                 in
                 ship 0)))
    | ( Command_queue.Fetch { lvaddr = _; nbytes = _; src_node; src_import = _ },
        Some (Fetch_meta m) ) ->
      let req_id = rt.next_req in
      rt.next_req <- req_id + 1;
      Hashtbl.replace rt.waiters req_id
        {
          w_lvaddr = m.lvaddr;
          w_pid = Command_queue.pid proc.ring;
          w_on_complete = m.on_complete;
        };
      let ch = channel_to t rt src_node in
      Channel.send ch
        (Message.to_bytes
           (Message.Fetch_request
              {
                req_id;
                export_id = m.target.export_id;
                key = m.target.key;
                offset = m.offset;
                len = m.len;
              }))
    | Command_queue.Redirect _, Some _ ->
      (* Redirection is applied host-side in Process.redirect; the ring
         command exists for firmware visibility only. *)
      ()
    | (Command_queue.Send _ | Command_queue.Fetch _), Some _ ->
      (* The metadata at the queue head belongs to a different command
         kind. Both halves are discarded: completing either with the
         other's target could deliver into the wrong export. *)
      t.ring_desyncs <- t.ring_desyncs + 1;
      Log.warn (fun m ->
          m "node%d: command/metadata kind mismatch, both dropped" rt.id))

let create ?(config = default_config) () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:config.seed in
  let fabric =
    match config.topology with
    | Star nodes ->
      Fabric.create ~faults:config.faults ~rng:(Rng.split rng) ~nodes engine
    | Chain { switches; hosts_per_switch } ->
      Fabric.create_chain ~faults:config.faults ~rng:(Rng.split rng)
        ~switches ~hosts_per_switch engine
  in
  let demux = Demux.create fabric in
  let node_rts =
    Array.init (Fabric.nodes fabric) (fun id ->
        let nic = Nic.create ~node:id engine in
        let host = Utlb_mem.Host_memory.create () in
        let translator =
          match config.translation with
          | Utlb_translation c ->
            Hier (Hier_engine.create ~host ~seed:(Rng.next_int64 rng) c)
          | Intr_translation c ->
            Interrupt_based
              (Intr_engine.create ~host ~seed:(Rng.next_int64 rng) c)
          | Per_process_translation c ->
            Per_process_tables
              (Utlb.Pp_engine.create ~host ~seed:(Rng.next_int64 rng) c)
        in
        {
          id;
          nic;
          translator;
          exports = Hashtbl.create 32;
          waiters = Hashtbl.create 32;
          next_export = 1;
          next_req = 1;
          channels_to = Array.make (Fabric.nodes fabric) None;
          procs = Hashtbl.create 8;
        })
  in
  let t =
    {
      config;
      engine;
      rng;
      fabric;
      demux;
      node_rts;
      model = Cost_model.default;
      next_pid = 0;
      sends_completed = 0;
      fetches_completed = 0;
      stores_received = 0;
      garbage_stores = 0;
      ring_desyncs = 0;
      send_latency = Stats.Summary.create "send-latency-us";
      on_msg = None;
    }
  in
  t.on_msg <- Some (fun ~src ~dst payload -> on_message t ~src ~dst payload);
  Array.iter
    (fun rt -> Mcp.set_handler (Nic.mcp rt.nic) (fun ~pid cmd -> on_command t rt ~pid cmd))
    node_rts;
  t

let run ?until_us t =
  match until_us with
  | None -> Engine.run t.engine
  | Some us -> Engine.run ~until:(Time.of_us us) t.engine

let spawn t ~node =
  if node < 0 || node >= node_count t then
    invalid_arg "Cluster.spawn: bad node";
  let rt = t.node_rts.(node) in
  let pid = Pid.of_int t.next_pid in
  t.next_pid <- t.next_pid + 1;
  (match rt.translator with
  | Hier engine -> Hier_engine.add_process engine pid
  | Interrupt_based engine -> Intr_engine.add_process engine pid
  | Per_process_tables _ -> () (* tables allocate on first lookup *));
  let ring =
    Nic.new_command_queue rt.nic ~pid ~slots:t.config.command_slots
  in
  let proc =
    { cluster = t; rt; pid; memory = Memory_image.create (); ring;
      meta = Queue.create (); notifications = Queue.create (); alive = true }
  in
  Hashtbl.replace rt.procs (Pid.to_int pid) proc;
  proc

let kill_process (_ : t) proc =
  if not proc.alive then 0
  else begin
    proc.alive <- false;
    let rt = proc.rt in
    (* Revoke this process's exports: later stores land on the garbage
       page. *)
    let revoked =
      Hashtbl.fold
        (fun id e acc -> if Pid.equal e.owner proc.pid then id :: acc else acc)
        rt.exports []
    in
    List.iter (Hashtbl.remove rt.exports) revoked;
    Hashtbl.remove rt.procs (Pid.to_int proc.pid);
    let released =
      match rt.translator with
      | Hier engine -> Hier_engine.remove_process engine proc.pid
      | Interrupt_based engine -> Intr_engine.remove_process engine proc.pid
      | Per_process_tables _ -> 0
    in
    Log.debug (fun m ->
        m "node%d: %a exited, %d exports revoked, %d pages released" rt.id
          Pid.pp proc.pid (List.length revoked) released);
    released
  end

module Process = struct
  type import = import_target

  let pid p = p.pid

  let node p = p.rt.id

  let write_memory p ~vaddr data = Memory_image.write p.memory ~vaddr data

  let read_memory p ~vaddr ~len = Memory_image.read p.memory ~vaddr ~len

  let export p ~vaddr ~len =
    if len <= 0 then invalid_arg "Process.export: len must be positive";
    let t = p.cluster in
    let rt = p.rt in
    let id = rt.next_export in
    rt.next_export <- id + 1;
    let key = Rng.int t.rng 0x3FFFFFFF in
    (* Exported receive buffers are pinned with translations installed
       before any data can arrive. *)
    let vpn, npages = pages_of ~vaddr ~len in
    ignore (translate_pages t rt ~pid:p.pid ~vpn ~npages);
    Hashtbl.replace rt.exports id
      { owner = p.pid; base_vaddr = vaddr; len; key; redirect_vaddr = None };
    (id, key)

  let import p ~node ~export_id ~key =
    if node < 0 || node >= node_count p.cluster then
      invalid_arg "Process.import: bad node";
    { dest_node = node; export_id; key }

  let post p cmd meta_entry =
    if not (Command_queue.post p.ring cmd) then
      invalid_arg "Process: command ring full";
    Queue.push meta_entry p.meta;
    Mcp.kick (Nic.mcp p.rt.nic)

  (* The command ring is mapped into user space, so the firmware cannot
     assume its contents are well-formed: a buggy or malicious user
     library can scribble a slot without going through the driver. This
     hook models exactly that — a raw command with no host-side metadata
     and no doorbell — so tests can exercise the desync recovery paths
     in [on_command]. *)
  let post_rogue p cmd = Command_queue.post p.ring cmd

  let send p ?on_complete (target : import) ~lvaddr ~offset ~len =
    if len <= 0 then invalid_arg "Process.send: len must be positive";
    let t = p.cluster in
    let vpn, npages = pages_of ~vaddr:lvaddr ~len in
    (* User-level lookup (UTLB: bit-vector check + demand pinning;
       interrupt baseline: nothing on the host, misses cost later on
       the NI). *)
    let cost = translate_pages t p.rt ~pid:p.pid ~vpn ~npages in
    ignore
      (Engine.schedule t.engine ~delay:(Time.of_us cost.host_us) (fun () ->
           post p
             (Command_queue.Send
                {
                  lvaddr;
                  nbytes = len;
                  dest_node = target.dest_node;
                  dest_import = target.export_id;
                })
             (Send_meta
                {
                  target;
                  offset;
                  on_complete;
                  posted_at = Engine.now t.engine;
                  ni_cost_us = cost.ni_us;
                })))

  let fetch p ?on_complete (target : import) ~offset ~len ~lvaddr =
    if len <= 0 then invalid_arg "Process.fetch: len must be positive";
    let t = p.cluster in
    let vpn, npages = pages_of ~vaddr:lvaddr ~len in
    (* Pin the local destination buffer before the data can arrive. *)
    let cost = translate_pages t p.rt ~pid:p.pid ~vpn ~npages in
    ignore
      (Engine.schedule t.engine
         ~delay:(Time.of_us (cost.host_us +. cost.ni_us)) (fun () ->
           post p
             (Command_queue.Fetch
                {
                  lvaddr;
                  nbytes = len;
                  src_node = target.dest_node;
                  src_import = target.export_id;
                })
             (Fetch_meta { target; offset; len; lvaddr; on_complete })))

  let redirect p ~export_id ~new_vaddr =
    match Hashtbl.find_opt p.rt.exports export_id with
    | Some e when Pid.equal e.owner p.pid ->
      e.redirect_vaddr <- Some new_vaddr
    | Some _ | None ->
      invalid_arg "Process.redirect: export not owned by this process"

  let clear_redirect p ~export_id =
    match Hashtbl.find_opt p.rt.exports export_id with
    | Some e when Pid.equal e.owner p.pid -> e.redirect_vaddr <- None
    | Some _ | None ->
      invalid_arg "Process.clear_redirect: export not owned by this process"

  type nonrec notification = notification = {
    n_export_id : int;
    n_offset : int;
    n_len : int;
    n_time_us : float;
  }

  let poll_notification p = Queue.take_opt p.notifications

  let pending_notifications p = Queue.length p.notifications
end
