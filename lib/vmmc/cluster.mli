(** Virtual Memory-Mapped Communication over the simulated cluster.

    This is the end-to-end integration the paper built UTLB for: a
    cluster of nodes, each with a NIC (SRAM, DMA, firmware), connected
    by a Myrinet-class fabric with reliable link-level channels, running
    VMMC with Hierarchical-UTLB address translation on both the send and
    receive sides.

    The model implements the VMMC operations of Section 4.1:
    - {e export}/{e import} of receive buffers with permission keys;
    - {e remote store} ([send]): direct transfer from a local virtual
      buffer into a remote process's exported buffer;
    - {e remote fetch} ([fetch]): the VMMC-2 extension pulling data from
      a remote exported buffer into a local buffer;
    - {e transfer redirection} ([redirect]): retargeting incoming data
      to a different user buffer, with the destination pinned on demand
      through the UTLB — the zero-copy enabler;
    - reliable delivery via go-back-N retransmission.

    The firmware breaks transfers at 4 KB page boundaries and translates
    one page at a time (the paper's footnote 1); stores addressed to an
    unknown export or carrying a wrong key land on the garbage page —
    they are counted and discarded, harming nothing (Section 4.2).

    All activity runs on one discrete-event engine; [run] drives it to
    quiescence and simulated time accumulates per the cost model. *)

type t

type process

type translation =
  | Utlb_translation of Utlb.Hier_engine.config
      (** Hierarchical-UTLB on every NI (the paper's system). *)
  | Intr_translation of Utlb.Intr_engine.config
      (** The interrupt-based baseline on every NI: each translation
          miss interrupts the host, each cache eviction unpins. Lets the
          Table 4/6 comparison run end-to-end instead of analytically. *)
  | Per_process_translation of Utlb.Pp_engine.config
      (** Per-process UTLB tables in NI SRAM (the paper's Section 3.1
          design): no NI cache misses, but static table capacity forces
          unpins. *)

type topology =
  | Star of int  (** [Star n]: n hosts around one switch. *)
  | Chain of { switches : int; hosts_per_switch : int }
      (** Cascaded switches for larger clusters. *)

type config = {
  topology : topology;
  seed : int64;
  translation : translation;
  faults : Utlb_net.Link.fault_model;
  channel_window : int;
  command_slots : int;  (** Per-process command ring capacity. *)
}

val default_config : config
(** 4 nodes, the paper's UTLB defaults, a fault-free fabric. *)

val create : ?config:config -> unit -> t

val engine : t -> Utlb_sim.Engine.t

val node_count : t -> int

val spawn : t -> node:int -> process
(** Register a new process on a node: allocates its pid, command ring
    in NIC SRAM, and UTLB state. *)

val kill_process : t -> process -> int
(** Process exit in a multiprogramming environment: revoke the
    process's exports, drop its Shared UTLB-Cache lines, and unpin every
    page it still holds. Returns the number of pages released. In-flight
    transfers addressed to its exports fall onto the garbage page.
    Idempotent (a second kill releases 0). *)

val run : ?until_us:float -> t -> unit
(** Drive the event engine until it drains (all communication and
    retransmission activity settles) or until the given simulated time. *)

val now_us : t -> float

val utlb_engine : t -> node:int -> Utlb.Hier_engine.t
(** @raise Invalid_argument when the cluster runs the interrupt-based
    baseline (use {!utlb_report}, which works for both). *)

val nic : t -> node:int -> Utlb_nic.Nic.t

val utlb_report : t -> node:int -> Utlb.Report.t

(** {2 Cluster-wide statistics} *)

val sends_completed : t -> int

val fetches_completed : t -> int

val stores_received : t -> int

val garbage_stores : t -> int
(** Stores dropped onto the garbage page (bad export id or key). *)

val ring_desyncs : t -> int
(** Commands dropped because the ring and its host-side metadata queue
    disagreed (missing metadata, or a kind mismatch at the queue head).
    Each drop is logged and the firmware keeps running. *)

val retransmissions : t -> int

val send_latency : t -> Utlb_sim.Stats.Summary.t
(** Post-to-acknowledgement latency of remote stores, µs. *)

module Process : sig
  type import
  (** Handle to an imported remote receive buffer. *)

  val pid : process -> Utlb_mem.Pid.t

  val node : process -> int

  val write_memory : process -> vaddr:int -> bytes -> unit
  (** Host-side write into the process's virtual memory. *)

  val read_memory : process -> vaddr:int -> len:int -> bytes

  val export : process -> vaddr:int -> len:int -> int * int
  (** [export p ~vaddr ~len] makes a receive buffer visible to remote
      importers; pins it and installs its translations (VMMC requires
      exported buffers resident). Returns [(export_id, key)].
      @raise Invalid_argument if [len <= 0]. *)

  val import : process -> node:int -> export_id:int -> key:int -> import
  (** Gain access to a remote exported buffer. The key is checked on
      every transfer, not at import time (imports are unauthenticated
      handles, as in VMMC). @raise Invalid_argument on a bad node. *)

  val send :
    process -> ?on_complete:(unit -> unit) -> import -> lvaddr:int ->
    offset:int -> len:int -> unit
  (** Remote store: transfer [len] bytes from local virtual address
      [lvaddr] into the imported buffer at [offset]. [on_complete] fires
      when the data is acknowledged by the remote NI.
      @raise Invalid_argument if [len <= 0] or the command ring is full
      after backoff. *)

  val fetch :
    process -> ?on_complete:(unit -> unit) -> import -> offset:int ->
    len:int -> lvaddr:int -> unit
  (** Remote fetch: pull [len] bytes from the imported buffer at
      [offset] into local address [lvaddr]. *)

  val redirect : process -> export_id:int -> new_vaddr:int -> unit
  (** Transfer-redirection on one of this process's own exports:
      subsequent incoming stores land at [new_vaddr] instead of the
      exported address. The redirected buffer is pinned on demand
      through the UTLB when data arrives.
      @raise Invalid_argument if the export is not owned by [process]. *)

  val clear_redirect : process -> export_id:int -> unit

  (** {2 Notifications}

      VMMC delivers receive notifications: each completed incoming store
      enqueues one, and the application polls at its convenience (there
      is no interrupt). *)

  type notification = {
    n_export_id : int;
    n_offset : int;  (** Offset within the exported buffer. *)
    n_len : int;
    n_time_us : float;  (** Simulated completion time. *)
  }

  val poll_notification : process -> notification option

  val pending_notifications : process -> int

  (** {2 Fault-plane testing hook} *)

  val post_rogue : process -> Utlb_nic.Command_queue.command -> bool
  (** Write a raw command into the process's ring with {e no} host-side
      metadata and {e no} doorbell — what a buggy or malicious user
      library scribbling the mapped ring looks like to the firmware.
      Returns [false] when the ring is full (the rogue writer sees the
      same backpressure as the driver). The firmware must survive the
      resulting ring/metadata disagreement: such commands are dropped
      and counted in {!ring_desyncs}. *)
end
