(** A unidirectional point-to-point link.

    Models one Myrinet cable direction: 160 MB/s serialisation, fixed
    propagation delay, FIFO ordering, and optional fault injection
    (packet drop and payload corruption with configured probabilities).
    Packets serialise back-to-back: a packet offered while the link is
    still transmitting queues behind it. *)

type t

type fault_model = {
  drop_probability : float;
  corrupt_probability : float;
  duplicate_probability : float;
      (** Probability a delivered packet is delivered twice: the copy
          re-serialises back-to-back behind the original. Receivers
          are expected to drop replays by sequence number. *)
}

val no_faults : fault_model

val fault_model_of_plan : Utlb_fault.Plan.t -> fault_model
(** Project the network classes of a fault plan ([net-drop],
    [net-dup]) onto a link fault model; corruption is not part of the
    plan vocabulary and maps to 0. *)

val fault_model_active : fault_model -> bool
(** True when any probability is non-zero (an rng is then required). *)

val create :
  ?bandwidth_mb_per_s:float ->
  ?latency_us:float ->
  ?faults:fault_model ->
  ?rng:Utlb_sim.Rng.t ->
  sink:(Packet.t -> unit) ->
  Utlb_sim.Engine.t ->
  t
(** Defaults: 160 MB/s, 0.5 µs propagation, no faults. [rng] is required
    when [faults] has non-zero probabilities.
    @raise Invalid_argument on a faulty model without an rng. *)

val transmit : t -> Packet.t -> unit
(** Offer a packet for transmission. Delivery (or silent drop) happens
    after serialisation + propagation. *)

val transmitted : t -> int

val delivered : t -> int

val dropped : t -> int

val corrupted : t -> int

val duplicated : t -> int

val bytes_sent : t -> int
