module Time = Utlb_sim.Time
module Engine = Utlb_sim.Engine
module Rng = Utlb_sim.Rng

type fault_model = {
  drop_probability : float;
  corrupt_probability : float;
  duplicate_probability : float;
}

let no_faults =
  {
    drop_probability = 0.0;
    corrupt_probability = 0.0;
    duplicate_probability = 0.0;
  }

let fault_model_of_plan plan =
  {
    drop_probability = plan.Utlb_fault.Plan.net_drop;
    corrupt_probability = 0.0;
    duplicate_probability = plan.Utlb_fault.Plan.net_dup;
  }

let fault_model_active f =
  f.drop_probability > 0.0
  || f.corrupt_probability > 0.0
  || f.duplicate_probability > 0.0

type t = {
  engine : Engine.t;
  bandwidth : float; (* bytes per microsecond *)
  latency : Time.t;
  faults : fault_model;
  rng : Rng.t option;
  sink : Packet.t -> unit;
  mutable busy_until : Time.t;
  mutable transmitted : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable corrupted : int;
  mutable duplicated : int;
  mutable bytes_sent : int;
}

let create ?(bandwidth_mb_per_s = 160.0) ?(latency_us = 0.5)
    ?(faults = no_faults) ?rng ~sink engine =
  if fault_model_active faults && rng = None then
    invalid_arg "Link.create: fault model requires an rng";
  {
    engine;
    bandwidth = bandwidth_mb_per_s; (* MB/s = bytes/us *)
    latency = Time.of_us latency_us;
    faults;
    rng;
    sink;
    busy_until = Time.zero;
    transmitted = 0;
    delivered = 0;
    dropped = 0;
    corrupted = 0;
    duplicated = 0;
    bytes_sent = 0;
  }

let roll t p =
  match t.rng with
  | None -> false
  | Some rng -> p > 0.0 && Rng.float rng 1.0 < p

let transmit t pkt =
  t.transmitted <- t.transmitted + 1;
  t.bytes_sent <- t.bytes_sent + Packet.wire_size pkt;
  let serialisation =
    Time.of_us (float_of_int (Packet.wire_size pkt) /. t.bandwidth)
  in
  let now = Engine.now t.engine in
  let start = Time.max now t.busy_until in
  let sent = Time.add start serialisation in
  t.busy_until <- sent;
  let arrival = Time.add sent t.latency in
  if roll t t.faults.drop_probability then t.dropped <- t.dropped + 1
  else begin
    let pkt =
      if roll t t.faults.corrupt_probability then begin
        t.corrupted <- t.corrupted + 1;
        Packet.corrupt pkt
      end
      else pkt
    in
    ignore
      (Engine.schedule_at t.engine ~at:arrival (fun () ->
           t.delivered <- t.delivered + 1;
           t.sink pkt));
    (* A duplicated packet is re-serialised back-to-back behind the
       original, so the copy arrives one wire time later and receivers
       must tolerate replays (sequence numbers make them idempotent). *)
    if roll t t.faults.duplicate_probability then begin
      t.duplicated <- t.duplicated + 1;
      let resent = Time.add t.busy_until serialisation in
      t.busy_until <- resent;
      let re_arrival = Time.add resent t.latency in
      ignore
        (Engine.schedule_at t.engine ~at:re_arrival (fun () ->
             t.delivered <- t.delivered + 1;
             t.sink pkt))
    end
  end

let transmitted t = t.transmitted

let delivered t = t.delivered

let dropped t = t.dropped

let corrupted t = t.corrupted

let duplicated t = t.duplicated

let bytes_sent t = t.bytes_sent
