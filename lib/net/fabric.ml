type t = {
  engine : Utlb_sim.Engine.t;
  switches : Switch.t array;
  uplinks : Link.t array; (* node -> its switch *)
  handlers : (Packet.t -> unit) option array;
  compute_route : src:int -> dst:int -> int list;
  mutable delivered : int;
  mutable all_links : Link.t list;
}

let make_links ?(bandwidth_mb_per_s = 160.0) ?(link_latency_us = 0.5)
    ?(faults = Link.no_faults) ?rng engine =
  let make sink =
    match rng with
    | None ->
      Link.create ~bandwidth_mb_per_s ~latency_us:link_latency_us ~faults
        ~sink engine
    | Some rng ->
      Link.create ~bandwidth_mb_per_s ~latency_us:link_latency_us ~faults
        ~rng ~sink engine
  in
  make

let deliver t node pkt =
  t.delivered <- t.delivered + 1;
  match t.handlers.(node) with Some h -> h pkt | None -> ()

let create ?bandwidth_mb_per_s ?link_latency_us ?(hop_latency_us = 0.5)
    ?faults ?rng ~nodes engine =
  if nodes < 2 then invalid_arg "Fabric.create: need at least two nodes";
  let make = make_links ?bandwidth_mb_per_s ?link_latency_us ?faults ?rng engine in
  let switch = Switch.create ~hop_latency_us ~ports:nodes engine in
  let handlers = Array.make nodes None in
  let t_ref = ref None in
  let sink node pkt =
    match !t_ref with None -> () | Some t -> deliver t node pkt
  in
  let downlinks = Array.init nodes (fun node -> make (sink node)) in
  Array.iteri (fun port link -> Switch.connect switch ~port link) downlinks;
  let uplinks = Array.init nodes (fun _ -> make (Switch.ingress switch)) in
  let t =
    {
      engine;
      switches = [| switch |];
      uplinks;
      handlers;
      compute_route = (fun ~src:_ ~dst -> [ dst ]);
      delivered = 0;
      all_links = Array.to_list uplinks @ Array.to_list downlinks;
    }
  in
  t_ref := Some t;
  t

(* Chain: switch s has ports 0..h-1 for its hosts, port h towards
   switch s+1, port h+1 towards switch s-1. *)
let create_chain ?bandwidth_mb_per_s ?link_latency_us ?(hop_latency_us = 0.5)
    ?faults ?rng ~switches ~hosts_per_switch engine =
  if switches < 1 then invalid_arg "Fabric.create_chain: switches < 1";
  if hosts_per_switch < 1 then
    invalid_arg "Fabric.create_chain: hosts_per_switch < 1";
  let nodes = switches * hosts_per_switch in
  if nodes < 2 then invalid_arg "Fabric.create_chain: need at least two hosts";
  let make = make_links ?bandwidth_mb_per_s ?link_latency_us ?faults ?rng engine in
  let right_port = hosts_per_switch in
  let left_port = hosts_per_switch + 1 in
  let sw =
    Array.init switches (fun _ ->
        Switch.create ~hop_latency_us ~ports:(hosts_per_switch + 2) engine)
  in
  let handlers = Array.make nodes None in
  let t_ref = ref None in
  let sink node pkt =
    match !t_ref with None -> () | Some t -> deliver t node pkt
  in
  let all_links = ref [] in
  (* Host downlinks. *)
  Array.iteri
    (fun s switch ->
      for p = 0 to hosts_per_switch - 1 do
        let node = (s * hosts_per_switch) + p in
        let link = make (sink node) in
        all_links := link :: !all_links;
        Switch.connect switch ~port:p link
      done)
    sw;
  (* Inter-switch links, both directions. *)
  for s = 0 to switches - 2 do
    let to_right = make (Switch.ingress sw.(s + 1)) in
    let to_left = make (Switch.ingress sw.(s)) in
    all_links := to_right :: to_left :: !all_links;
    Switch.connect sw.(s) ~port:right_port to_right;
    Switch.connect sw.(s + 1) ~port:left_port to_left
  done;
  let uplinks =
    Array.init nodes (fun node ->
        let link = make (Switch.ingress sw.(node / hosts_per_switch)) in
        all_links := link :: !all_links;
        link)
  in
  let compute_route ~src ~dst =
    let s_src = src / hosts_per_switch and s_dst = dst / hosts_per_switch in
    let rec hops s acc =
      if s = s_dst then List.rev ((dst mod hosts_per_switch) :: acc)
      else if s < s_dst then hops (s + 1) (right_port :: acc)
      else hops (s - 1) (left_port :: acc)
    in
    hops s_src []
  in
  let t =
    {
      engine;
      switches = sw;
      uplinks;
      handlers;
      compute_route;
      delivered = 0;
      all_links = !all_links;
    }
  in
  t_ref := Some t;
  t

let nodes t = Array.length t.uplinks

let switch_count t = Array.length t.switches

let engine t = t.engine

let check_pair t ~src ~dst =
  if src < 0 || src >= nodes t then invalid_arg "Fabric: bad src";
  if dst < 0 || dst >= nodes t then invalid_arg "Fabric: bad dst";
  if src = dst then invalid_arg "Fabric.send: src = dst (loopback not modelled)"

let route t ~src ~dst =
  check_pair t ~src ~dst;
  t.compute_route ~src ~dst

let attach t ~node h =
  if node < 0 || node >= nodes t then invalid_arg "Fabric.attach: bad node";
  t.handlers.(node) <- Some h

let inject t pkt =
  let src = pkt.Packet.src in
  if src < 0 || src >= nodes t then invalid_arg "Fabric.inject: bad src";
  Link.transmit t.uplinks.(src) pkt

let send t ~src ~dst ~chan ~seq ~kind ~payload =
  check_pair t ~src ~dst;
  let route = t.compute_route ~src ~dst in
  inject t (Packet.make ~src ~dst ~chan ~seq ~kind ~route ~payload)

let delivered t = t.delivered

let dropped t =
  List.fold_left (fun acc l -> acc + Link.dropped l) 0 t.all_links

let duplicated t =
  List.fold_left (fun acc l -> acc + Link.duplicated l) 0 t.all_links

let switch t = t.switches.(0)

let switches t = t.switches
