(** A cluster fabric of hosts and crossbar switches.

    Two topologies:

    - {!create}: [n] hosts in a star around one switch — the paper's
      4-node Myrinet configuration;
    - {!create_chain}: a chain of switches with [hosts_per_switch] hosts
      on each, the way larger Myrinet installations cascade 8-port
      switches. Packets traverse one output port per switch, consuming
      their source route hop by hop.

    Each host owns an uplink (host to its switch) and a downlink.
    [send] computes the source route automatically. Received packets are
    demultiplexed to per-node handlers registered with [attach]. *)

type t

val create :
  ?bandwidth_mb_per_s:float ->
  ?link_latency_us:float ->
  ?hop_latency_us:float ->
  ?faults:Link.fault_model ->
  ?rng:Utlb_sim.Rng.t ->
  nodes:int ->
  Utlb_sim.Engine.t ->
  t
(** Star topology.
    @raise Invalid_argument if [nodes < 2] or a faulty model lacks an
    rng. *)

val create_chain :
  ?bandwidth_mb_per_s:float ->
  ?link_latency_us:float ->
  ?hop_latency_us:float ->
  ?faults:Link.fault_model ->
  ?rng:Utlb_sim.Rng.t ->
  switches:int ->
  hosts_per_switch:int ->
  Utlb_sim.Engine.t ->
  t
(** Chain topology with [switches * hosts_per_switch] hosts; host [n]
    sits on switch [n / hosts_per_switch].
    @raise Invalid_argument if [switches < 1], [hosts_per_switch < 1],
    or the total host count is below 2. *)

val nodes : t -> int

val switch_count : t -> int

val engine : t -> Utlb_sim.Engine.t

val route : t -> src:int -> dst:int -> int list
(** The source route (switch output ports) a packet will carry.
    @raise Invalid_argument on bad nodes or [src = dst]. *)

val attach : t -> node:int -> (Packet.t -> unit) -> unit
(** Install the receive handler for a node (its NIC receive path).
    Replaces any previous handler. *)

val send :
  t -> src:int -> dst:int -> chan:int -> seq:int -> kind:Packet.kind ->
  payload:bytes -> unit
(** Build, route, and inject a packet at the source node's uplink.
    @raise Invalid_argument on out-of-range node ids or [src = dst]. *)

val inject : t -> Packet.t -> unit
(** Inject a pre-built packet (for tests that forge routes). *)

val delivered : t -> int

val dropped : t -> int
(** Packets lost to fault injection across all links. *)

val duplicated : t -> int
(** Packets delivered twice by fault injection across all links. *)

val switch : t -> Switch.t
(** The first (or only) switch — kept for star-topology tests. *)

val switches : t -> Switch.t array
