module Cluster = Utlb_vmmc.Cluster
module Scope = Utlb_obs.Scope
module Ev = Utlb_obs.Event

let page_size = Utlb_mem.Addr.page_size

(* Virtual layout inside every SVM process (identical across nodes, as
   in a real SPMD runtime): the home segment holds master copies of the
   pages homed here; the cache region holds copies of remote pages. *)
let home_base = 0x1000000

let cache_base = 0x4000000

type node_state = {
  node : int;
  proc : Cluster.process;
  imports : Cluster.Process.import option array; (* by home node; None = self *)
  valid : (int, unit) Hashtbl.t; (* cached remote pages *)
  twins : (int, bytes) Hashtbl.t;
  dirty : (int, unit) Hashtbl.t;
}

type t = {
  cluster : Cluster.t;
  pages : int;
  nodes : node_state array;
  obs : Scope.t option;
  mutable faults : int;
  mutable diffs_sent : int;
  mutable diff_bytes : int;
  mutable twins_made : int;
  mutable forced_flushes : int;
      (* Acquires that found dirty pages and had to release first. *)
  mutable scratch_seq : int;
      (* DMA samples the source buffer at completion time, after
         [release] has queued every diff — so each diff gets its own
         scratch page to avoid clobbering in-flight sources. *)
}

type handle = { svm : t; state : node_state }

let pages t = t.pages

let home_of t ~page =
  if page < 0 || page >= t.pages then invalid_arg "Svm: page out of range";
  page mod Array.length t.nodes

let home_slot t page = page / Array.length t.nodes

let create ?obs cluster ~pages =
  if pages <= 0 then invalid_arg "Svm.create: pages must be positive";
  let n = Cluster.node_count cluster in
  (* Attach the scope to every node's NI components (bus spans, DMA
     spans, interrupt instants) and to the shared event engine. *)
  (match obs with
  | None -> ()
  | Some scope ->
    Scope.observe_engine scope (Cluster.engine cluster) ~pid:0;
    for node = 0 to n - 1 do
      let nic = Cluster.nic cluster ~node in
      Utlb_nic.Io_bus.set_obs (Utlb_nic.Nic.bus nic) ~pid:node (Some scope);
      Utlb_nic.Dma.set_obs (Utlb_nic.Nic.dma nic) ~pid:node (Some scope);
      Utlb_nic.Interrupt.set_obs (Utlb_nic.Nic.interrupt nic) (Some scope)
    done);
  let procs = Array.init n (fun node -> Cluster.spawn cluster ~node) in
  let segment_len = ((pages + n - 1) / n) * page_size in
  (* Export every node's home segment, then import everywhere else. *)
  let export_info =
    Array.map
      (fun proc -> Cluster.Process.export proc ~vaddr:home_base ~len:segment_len)
      procs
  in
  let nodes =
    Array.init n (fun node ->
        let imports =
          Array.init n (fun home ->
              if home = node then None
              else
                let export_id, key = export_info.(home) in
                Some
                  (Cluster.Process.import procs.(node) ~node:home ~export_id
                     ~key))
        in
        {
          node;
          proc = procs.(node);
          imports;
          valid = Hashtbl.create 256;
          twins = Hashtbl.create 64;
          dirty = Hashtbl.create 64;
        })
  in
  Cluster.run cluster;
  {
    cluster;
    pages;
    nodes;
    obs;
    faults = 0;
    diffs_sent = 0;
    diff_bytes = 0;
    twins_made = 0;
    forced_flushes = 0;
    scratch_seq = 0;
  }

let handle t ~node =
  if node < 0 || node >= Array.length t.nodes then
    invalid_arg "Svm.handle: bad node";
  { svm = t; state = t.nodes.(node) }

let node h = h.state.node

let check_range t ~page ~off ~len =
  if page < 0 || page >= t.pages then invalid_arg "Svm: page out of range";
  if off < 0 || len < 0 || off + len > page_size then
    invalid_arg "Svm: access must stay within one page"

let local_vaddr h page =
  let t = h.svm in
  if home_of t ~page = h.state.node then
    home_base + (home_slot t page * page_size)
  else cache_base + (page * page_size)

(* Fault a remote page into the local cache region via remote fetch. *)
let ensure_valid h page =
  let t = h.svm in
  let home = home_of t ~page in
  if home <> h.state.node && not (Hashtbl.mem h.state.valid page) then begin
    let import = Option.get h.state.imports.(home) in
    Cluster.Process.fetch h.state.proc import
      ~offset:(home_slot t page * page_size)
      ~len:page_size
      ~lvaddr:(cache_base + (page * page_size));
    Cluster.run t.cluster;
    Hashtbl.replace h.state.valid page ();
    t.faults <- t.faults + 1;
    match t.obs with
    | None -> ()
    | Some scope ->
      Scope.emit_at scope
        ~at_us:(Cluster.now_us t.cluster)
        ~pid:h.state.node ~vpn:page Ev.Fault
  end

let read h ~page ~off ~len =
  let t = h.svm in
  check_range t ~page ~off ~len;
  ensure_valid h page;
  Cluster.Process.read_memory h.state.proc
    ~vaddr:(local_vaddr h page + off)
    ~len

let write h ~page ~off data =
  let t = h.svm in
  let len = Bytes.length data in
  check_range t ~page ~off ~len;
  let home = home_of t ~page in
  if home = h.state.node then
    (* Home writes go straight to the master copy. *)
    Cluster.Process.write_memory h.state.proc
      ~vaddr:(local_vaddr h page + off)
      data
  else begin
    ensure_valid h page;
    if not (Hashtbl.mem h.state.twins page) then begin
      let twin =
        Cluster.Process.read_memory h.state.proc
          ~vaddr:(cache_base + (page * page_size))
          ~len:page_size
      in
      Hashtbl.replace h.state.twins page twin;
      t.twins_made <- t.twins_made + 1
    end;
    Cluster.Process.write_memory h.state.proc
      ~vaddr:(cache_base + (page * page_size) + off)
      data;
    Hashtbl.replace h.state.dirty page ()
  end

(* Changed ranges of [current] against [twin], at 8-byte word
   granularity (real SVM diffs are word diffs): maximal runs of
   consecutive changed words, so a page of freshly written values
   yields one run even when individual values contain unchanged
   bytes. *)
let diff_word = 8

let diff_runs ~twin ~current =
  let len = Bytes.length twin in
  let words = len / diff_word in
  let changed w =
    not
      (Int64.equal
         (Bytes.get_int64_le twin (w * diff_word))
         (Bytes.get_int64_le current (w * diff_word)))
  in
  let runs = ref [] in
  let start = ref (-1) in
  for w = 0 to words - 1 do
    if changed w && !start < 0 then start := w;
    if (not (changed w)) && !start >= 0 then begin
      runs := (!start * diff_word, (w - !start) * diff_word) :: !runs;
      start := -1
    end
  done;
  if !start >= 0 then
    runs := (!start * diff_word, (words - !start) * diff_word) :: !runs;
  (* Tail bytes beyond the last whole word, if any. *)
  let tail = len - (words * diff_word) in
  if
    tail > 0
    && not
         (Bytes.equal
            (Bytes.sub twin (words * diff_word) tail)
            (Bytes.sub current (words * diff_word) tail))
  then runs := (words * diff_word, tail) :: !runs;
  List.rev !runs

let release h =
  let t = h.svm in
  (* Drain the command ring periodically: a release with many diffs must
     not overrun the 64-slot ring before the firmware polls it. *)
  let queued = ref 0 in
  let throttle () =
    incr queued;
    if !queued mod 32 = 0 then Cluster.run t.cluster
  in
  let flush page () =
    let home = home_of t ~page in
    let import = Option.get h.state.imports.(home) in
    let twin = Hashtbl.find h.state.twins page in
    let current =
      Cluster.Process.read_memory h.state.proc
        ~vaddr:(cache_base + (page * page_size))
        ~len:page_size
    in
    List.iter
      (fun (off, len) ->
        (* Stage the changed run in a fresh scratch page and remote-store
           it into the home's master copy. *)
        let scratch = 0x8000000 + (t.scratch_seq * page_size) in
        t.scratch_seq <- t.scratch_seq + 1;
        Cluster.Process.write_memory h.state.proc ~vaddr:scratch
          (Bytes.sub current off len);
        Cluster.Process.send h.state.proc import ~lvaddr:scratch
          ~offset:((home_slot t page * page_size) + off)
          ~len;
        t.diffs_sent <- t.diffs_sent + 1;
        t.diff_bytes <- t.diff_bytes + len;
        (match t.obs with
        | None -> ()
        | Some scope ->
          Scope.emit_at scope
            ~at_us:(Cluster.now_us t.cluster)
            ~pid:h.state.node ~vpn:page ~count:len Ev.Diff);
        throttle ())
      (diff_runs ~twin ~current);
    Hashtbl.remove h.state.twins page
  in
  Hashtbl.iter flush h.state.dirty;
  Hashtbl.reset h.state.dirty;
  Cluster.run t.cluster

(* Acquiring with unreleased writes used to be a hard crash. The
   release-consistency protocol has a perfectly good answer — flush
   first — so do that, and count it so tests and tuning can tell the
   node missed a release. *)
let acquire h =
  if Hashtbl.length h.state.dirty > 0 then begin
    h.svm.forced_flushes <- h.svm.forced_flushes + 1;
    release h
  end;
  Hashtbl.reset h.state.valid

let barrier t =
  Array.iter (fun state -> release { svm = t; state }) t.nodes;
  Array.iter (fun state -> acquire { svm = t; state }) t.nodes;
  Cluster.run t.cluster

let faults t = t.faults

let diffs_sent t = t.diffs_sent

let diff_bytes t = t.diff_bytes

let twins_made t = t.twins_made

let forced_flushes t = t.forced_flushes
