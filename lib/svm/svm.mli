(** A miniature home-based shared virtual memory system.

    The paper's traces come from SPLASH-2 programs running under a
    home-based release-consistency SVM protocol over VMMC. This module
    rebuilds that substrate in small: a shared array of pages, each with
    a {e home} node holding the master copy, accessed by one SVM process
    per node with the classic home-based multiple-writer protocol:

    - a read of an invalid page {e faults}: the page is fetched from its
      home with a VMMC remote fetch (translated through the UTLB on both
      sides);
    - the first write to a cached page makes a {e twin} (a private copy);
    - [release] computes {e diffs} (byte ranges that changed against the
      twin) and remote-stores them to the home — concurrent writers to
      disjoint parts of one page merge there;
    - [acquire] invalidates cached copies so later reads refetch;
    - [barrier t] is release + acquire on every node.

    Operations run the cluster's event engine to quiescence before
    returning, so the API is synchronous and deterministic; all the
    communication it generates exercises the UTLB exactly the way the
    paper's workloads did. *)

type t

type handle
(** One node's view of the shared array. *)

val create : ?obs:Utlb_obs.Scope.t -> Utlb_vmmc.Cluster.t -> pages:int -> t
(** Spawn one SVM process per cluster node, assign homes round-robin,
    export every home segment, and import them everywhere. With [obs],
    the scope is attached to every node's NI components (bus/DMA spans,
    interrupts), a dispatch observer is installed on the cluster's
    engine, and SVM-level page faults and diffs are emitted at
    simulated time with the node as the pid.
    @raise Invalid_argument if [pages <= 0]. *)

val pages : t -> int

val page_size : int
(** 4096, matching the rest of the system. *)

val home_of : t -> page:int -> int
(** The node holding the master copy. *)

val handle : t -> node:int -> handle
(** @raise Invalid_argument on a bad node. *)

val node : handle -> int

val read : handle -> page:int -> off:int -> len:int -> bytes
(** Fault the page in if needed and read from the local copy (or
    directly from the home segment when this node is the home).
    @raise Invalid_argument on out-of-range page/offset/len. *)

val write : handle -> page:int -> off:int -> bytes -> unit
(** Write locally (twinning on first write). Not visible remotely until
    [release]. A home node writes its master copy directly, but still
    through the twin/diff path so concurrent remote diffs merge. *)

val release : handle -> unit
(** Flush this node's diffs to the pages' homes. *)

val acquire : handle -> unit
(** Invalidate cached copies so later reads refetch. Dirty pages are
    flushed first (an implicit {!release}, counted in
    {!forced_flushes}) — acquiring with unreleased writes degrades to
    release-then-acquire instead of crashing. *)

val barrier : t -> unit
(** Release on every node, then acquire on every node. *)

(** {2 Statistics} *)

val faults : t -> int
(** Page fetches from a home. *)

val diffs_sent : t -> int
(** Diff messages (one per contiguous changed run). *)

val diff_bytes : t -> int

val twins_made : t -> int

val forced_flushes : t -> int
(** Acquires that found unreleased dirty pages and flushed them
    first. *)
