(* A fault plan: the declarative half of the injection plane. A plan
   only states *what* can go wrong and how often; the seeded random
   choices happen in [Injector]. Plans are plain data so they can be
   parsed from the command line, linted by utlbcheck, and shipped to
   worker domains without sharing mutable state. *)

type t = {
  dma_fail : float;
  dma_retries : int;
  dma_backoff_us : float;
  dma_spike : float;
  dma_spike_us : float;
  bus_stall : float;
  bus_stall_us : float;
  net_drop : float;
  net_dup : float;
  cache_invalidate : float;
  table_swap : float;
  irq_timeout : float;
  irq_retries : int;
}

let empty =
  {
    dma_fail = 0.0;
    dma_retries = 3;
    dma_backoff_us = 2.0;
    dma_spike = 0.0;
    dma_spike_us = 50.0;
    bus_stall = 0.0;
    bus_stall_us = 20.0;
    net_drop = 0.0;
    net_dup = 0.0;
    cache_invalidate = 0.0;
    table_swap = 0.0;
    irq_timeout = 0.0;
    irq_retries = 2;
  }

let is_empty t =
  t.dma_fail = 0.0 && t.dma_spike = 0.0 && t.bus_stall = 0.0
  && t.net_drop = 0.0 && t.net_dup = 0.0 && t.cache_invalidate = 0.0
  && t.table_swap = 0.0 && t.irq_timeout = 0.0

(* Spec grammar: comma- or semicolon-separated KEY=VALUE pairs, e.g.
     dma-fail=0.05,dma-retries=3,cache-invalidate=0.01
   Unknown keys and malformed values are syntax errors; range problems
   (probability outside [0,1], negative budgets) are reported by
   [validate] so the linter can list them all with UC17x codes. *)

type field = Prob of (t -> float) * (t -> float -> t)
           | Count of (t -> int) * (t -> int -> t)
           | Micros of (t -> float) * (t -> float -> t)

let fields =
  [
    ( "dma-fail",
      Prob ((fun t -> t.dma_fail), fun t v -> { t with dma_fail = v }) );
    ( "dma-retries",
      Count ((fun t -> t.dma_retries), fun t v -> { t with dma_retries = v })
    );
    ( "dma-backoff-us",
      Micros
        ((fun t -> t.dma_backoff_us), fun t v -> { t with dma_backoff_us = v })
    );
    ( "dma-spike",
      Prob ((fun t -> t.dma_spike), fun t v -> { t with dma_spike = v }) );
    ( "dma-spike-us",
      Micros ((fun t -> t.dma_spike_us), fun t v -> { t with dma_spike_us = v })
    );
    ( "bus-stall",
      Prob ((fun t -> t.bus_stall), fun t v -> { t with bus_stall = v }) );
    ( "bus-stall-us",
      Micros ((fun t -> t.bus_stall_us), fun t v -> { t with bus_stall_us = v })
    );
    ("net-drop", Prob ((fun t -> t.net_drop), fun t v -> { t with net_drop = v }));
    ("net-dup", Prob ((fun t -> t.net_dup), fun t v -> { t with net_dup = v }));
    ( "cache-invalidate",
      Prob
        ( (fun t -> t.cache_invalidate),
          fun t v -> { t with cache_invalidate = v } ) );
    ( "table-swap",
      Prob ((fun t -> t.table_swap), fun t v -> { t with table_swap = v }) );
    ( "irq-timeout",
      Prob ((fun t -> t.irq_timeout), fun t v -> { t with irq_timeout = v }) );
    ( "irq-retries",
      Count ((fun t -> t.irq_retries), fun t v -> { t with irq_retries = v })
    );
  ]

let keys = List.map fst fields

let parse spec =
  let chunks =
    String.split_on_char ',' (String.map (function ';' -> ',' | c -> c) spec)
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if chunks = [] then Error "empty fault spec"
  else
    List.fold_left
      (fun acc chunk ->
        match acc with
        | Error _ -> acc
        | Ok t -> (
          match String.index_opt chunk '=' with
          | None ->
            Error
              (Printf.sprintf "fault spec: expected KEY=VALUE, got %S" chunk)
          | Some i -> (
            let key = String.trim (String.sub chunk 0 i) in
            let value =
              String.trim
                (String.sub chunk (i + 1) (String.length chunk - i - 1))
            in
            match List.assoc_opt key fields with
            | None ->
              Error
                (Printf.sprintf
                   "fault spec: unknown fault class %S (expected one of %s)"
                   key (String.concat ", " keys))
            | Some (Prob (_, set) | Micros (_, set)) -> (
              match float_of_string_opt value with
              | Some v -> Ok (set t v)
              | None ->
                Error
                  (Printf.sprintf "fault spec: %s=%S is not a number" key
                     value))
            | Some (Count (_, set)) -> (
              match int_of_string_opt value with
              | Some v -> Ok (set t v)
              | None ->
                Error
                  (Printf.sprintf "fault spec: %s=%S is not an integer" key
                     value)))))
      (Ok empty) chunks

(* Range problems, one (key, complaint) pair each, for UC17x lints. *)
let validate t =
  List.concat_map
    (fun (key, field) ->
      match field with
      | Prob (get, _) ->
        let v = get t in
        if v < 0.0 || v > 1.0 then
          [
            ( key,
              Printf.sprintf "probability %g outside [0,1]" v );
          ]
        else []
      | Count (get, _) ->
        let v = get t in
        if v < 0 then [ (key, Printf.sprintf "negative retry budget %d" v) ]
        else []
      | Micros (get, _) ->
        let v = get t in
        if v < 0.0 then
          [ (key, Printf.sprintf "negative duration %gus" v) ]
        else [])
    fields

let of_string spec =
  match parse spec with
  | Error _ as e -> e
  | Ok t -> (
    match validate t with
    | [] -> Ok t
    | (key, problem) :: _ ->
      Error (Printf.sprintf "fault spec: %s: %s" key problem))

let to_string t =
  let prob name v = if v > 0.0 then Some (Printf.sprintf "%s=%g" name v) else None in
  List.filter_map Fun.id
    [
      prob "dma-fail" t.dma_fail;
      (if t.dma_fail > 0.0 then
         Some (Printf.sprintf "dma-retries=%d" t.dma_retries)
       else None);
      (if t.dma_fail > 0.0 then
         Some (Printf.sprintf "dma-backoff-us=%g" t.dma_backoff_us)
       else None);
      prob "dma-spike" t.dma_spike;
      (if t.dma_spike > 0.0 then
         Some (Printf.sprintf "dma-spike-us=%g" t.dma_spike_us)
       else None);
      prob "bus-stall" t.bus_stall;
      (if t.bus_stall > 0.0 then
         Some (Printf.sprintf "bus-stall-us=%g" t.bus_stall_us)
       else None);
      prob "net-drop" t.net_drop;
      prob "net-dup" t.net_dup;
      prob "cache-invalidate" t.cache_invalidate;
      prob "table-swap" t.table_swap;
      prob "irq-timeout" t.irq_timeout;
      (if t.irq_timeout > 0.0 then
         Some (Printf.sprintf "irq-retries=%d" t.irq_retries)
       else None);
    ]
  |> String.concat ","
  |> function "" -> "none" | s -> s

let pp ppf t = Format.pp_print_string ppf (to_string t)
