(** A declarative fault plan.

    A plan states which fault classes are active and how often they
    strike; the seeded coin flips live in {!Injector}. Every class maps
    onto a mechanism of the paper it stresses:

    - [dma_fail]/[dma_retries]/[dma_backoff_us] — a DMA entry fetch
      over the I/O bus fails; the NI retries with exponential backoff
      and, when the budget is exhausted, falls back to the interrupt
      path (the paper's slow path).
    - [dma_spike]/[dma_spike_us] — a DMA transfer completes but takes a
      latency spike (bus contention, Section 5.2's shared-bus caveat).
    - [bus_stall]/[bus_stall_us] — an I/O-bus transaction stalls before
      being granted.
    - [net_drop]/[net_dup] — a network link drops or duplicates a
      packet ({!Utlb_net.Link}'s fault model).
    - [cache_invalidate] — a Shared UTLB-Cache line is spuriously
      invalidated; the next access takes a forced miss and refetches.
    - [table_swap] — a second-level translation table is swapped to
      disk (Section 3.3's reclamation extension); the NI must interrupt
      the host to swap it back in.
    - [irq_timeout]/[irq_retries] — an interrupt is lost or times out
      and must be re-issued. *)

type t = {
  dma_fail : float;  (** probability an entry-fetch DMA transfer fails *)
  dma_retries : int;  (** bounded retries before interrupt fallback *)
  dma_backoff_us : float;  (** base backoff; doubles per retry *)
  dma_spike : float;  (** probability of a DMA latency spike *)
  dma_spike_us : float;  (** added latency when a spike strikes *)
  bus_stall : float;  (** probability an I/O-bus transaction stalls *)
  bus_stall_us : float;  (** added stall time *)
  net_drop : float;  (** extra packet-drop probability on links *)
  net_dup : float;  (** packet duplication probability on links *)
  cache_invalidate : float;  (** spurious NI-cache line invalidation *)
  table_swap : float;  (** translation-table swap-out per NI miss *)
  irq_timeout : float;  (** interrupt service timeout, re-issued *)
  irq_retries : int;  (** re-issue budget per interrupt *)
}

val empty : t
(** No faults. An empty plan is guaranteed to consume no randomness, so
    a run with [empty] is byte-identical to a run with no plan at
    all. *)

val is_empty : t -> bool

val keys : string list
(** The spec-grammar key of every fault class, parser order. *)

val parse : string -> (t, string) result
(** Parse a spec string — comma- or semicolon-separated [KEY=VALUE]
    pairs such as ["dma-fail=0.05,dma-retries=3,table-swap=0.01"] —
    checking syntax only. Range problems are left to {!validate} so a
    linter can report them all. *)

val validate : t -> (string * string) list
(** [(key, problem)] for every out-of-range field: probabilities
    outside [[0,1]], negative retry budgets or durations. Empty means
    the plan is well-formed. *)

val of_string : string -> (t, string) result
(** {!parse} followed by {!validate}; the first problem becomes the
    error. This is the strict entry point used by the CLI. *)

val to_string : t -> string
(** Round-trippable spec for the active classes, or ["none"]. *)

val pp : Format.formatter -> t -> unit
