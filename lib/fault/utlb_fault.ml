(* lib/fault: the deterministic fault-injection plane.

   [Plan] is the declarative spec (parsed from `--faults KEY=VALUE,...`
   and linted by utlbcheck); [Injector] is a plan plus a seeded random
   stream plus counters, threaded through the NIC substrate and the
   translation engines as an optional [?faults] capability, mirroring
   the [?sanitizer] and [?obs] wiring. *)

module Plan = Plan
module Injector = Injector
