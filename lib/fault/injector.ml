module Rng = Utlb_sim.Rng

(* The imperative half of the fault plane: a plan plus a private
   SplitMix64 stream plus injection/recovery counters. Each simulation
   cell owns its injector, so campaign results are byte-identical at
   any domain count.

   Determinism contract: a probability of exactly 0.0 consumes no
   randomness. An injector built from [Plan.empty] therefore leaves
   every simulation bit-for-bit identical to one with no injector. *)

type klass =
  | Dma_fail
  | Dma_spike
  | Bus_stall
  | Net_drop
  | Net_dup
  | Cache_invalidate
  | Table_swap
  | Irq_timeout

let n_classes = 8

let class_index = function
  | Dma_fail -> 0
  | Dma_spike -> 1
  | Bus_stall -> 2
  | Net_drop -> 3
  | Net_dup -> 4
  | Cache_invalidate -> 5
  | Table_swap -> 6
  | Irq_timeout -> 7

let class_name = function
  | Dma_fail -> "dma-fail"
  | Dma_spike -> "dma-spike"
  | Bus_stall -> "bus-stall"
  | Net_drop -> "net-drop"
  | Net_dup -> "net-dup"
  | Cache_invalidate -> "cache-invalidate"
  | Table_swap -> "table-swap"
  | Irq_timeout -> "irq-timeout"

let all_classes =
  [
    Dma_fail; Dma_spike; Bus_stall; Net_drop; Net_dup; Cache_invalidate;
    Table_swap; Irq_timeout;
  ]

type t = {
  plan : Plan.t;
  rng : Rng.t;
  injected : int array;
  mutable recoveries : int;
}

let create ?(seed = 0xFA17L) plan =
  { plan; rng = Rng.create ~seed; injected = Array.make n_classes 0; recoveries = 0 }

let plan t = t.plan

(* A derived injector: same plan, independent stream, fresh counters.
   Used to give each node of a cluster (or each campaign cell) its own
   deterministic fault sequence. *)
let split t =
  {
    plan = t.plan;
    rng = Rng.split t.rng;
    injected = Array.make n_classes 0;
    recoveries = 0;
  }

(* p = 0.0 short-circuits WITHOUT touching the rng: see the
   determinism contract above. *)
let roll t p = p > 0.0 && Rng.float t.rng 1.0 < p

let note t klass = t.injected.(class_index klass) <- t.injected.(class_index klass) + 1

let strike t klass p =
  let hit = roll t p in
  if hit then note t klass;
  hit

let dma_spike_us t =
  if strike t Dma_spike t.plan.Plan.dma_spike then t.plan.Plan.dma_spike_us
  else 0.0

let bus_stall_us t =
  if strike t Bus_stall t.plan.Plan.bus_stall then t.plan.Plan.bus_stall_us
  else 0.0

let net_drop t = strike t Net_drop t.plan.Plan.net_drop

let net_dup t = strike t Net_dup t.plan.Plan.net_dup

let cache_invalidate t = strike t Cache_invalidate t.plan.Plan.cache_invalidate

let table_swap t = strike t Table_swap t.plan.Plan.table_swap

let irq_timeout t = strike t Irq_timeout t.plan.Plan.irq_timeout

(* Timed-out deliveries before one interrupt lands: each issue rolls
   the irq-timeout class independently, bounded by the re-issue budget
   (after which the interrupt is serviced unconditionally). With a
   budget of 0 no roll is made — a timeout without a re-issue budget
   cannot be modelled as recoverable. *)
let irq_reissues t =
  let budget = max 0 t.plan.Plan.irq_retries in
  let rec go n =
    if n >= budget then n
    else if strike t Irq_timeout t.plan.Plan.irq_timeout then go (n + 1)
    else n
  in
  if budget > 0 && strike t Irq_timeout t.plan.Plan.irq_timeout then go 1
  else 0

(* One DMA fetch under the plan: the initial attempt plus up to
   [dma_retries] retries, each failing independently with probability
   [dma_fail]. [Some k] means the fetch succeeded after [k] injected
   failures; [None] means the whole retry budget burned and the caller
   must fall back to the interrupt path. *)
let dma_attempts t =
  if t.plan.Plan.dma_fail <= 0.0 then Some 0
  else begin
    let budget = 1 + max 0 t.plan.Plan.dma_retries in
    let rec go attempt =
      if attempt >= budget then None
      else if strike t Dma_fail t.plan.Plan.dma_fail then go (attempt + 1)
      else Some attempt
    in
    go 0
  end

(* Exponential backoff paid after [attempts] failed tries:
   base * (2^attempts - 1), the classic doubling series. *)
let backoff_us t ~attempts =
  if attempts <= 0 then 0.0
  else t.plan.Plan.dma_backoff_us *. (Float.of_int (1 lsl attempts) -. 1.0)

let note_recovery t = t.recoveries <- t.recoveries + 1

let recoveries t = t.recoveries

let injected_class t klass = t.injected.(class_index klass)

let injected t = Array.fold_left ( + ) 0 t.injected

let by_class t =
  List.filter_map
    (fun klass ->
      let n = injected_class t klass in
      if n = 0 then None else Some (class_name klass, n))
    all_classes

let pp ppf t =
  Format.fprintf ppf "@[<h>injected=%d recovered=%d" (injected t)
    (recoveries t);
  List.iter (fun (name, n) -> Format.fprintf ppf " %s=%d" name n) (by_class t);
  Format.fprintf ppf "@]"
