(** The imperative half of the fault plane.

    An injector pairs a {!Plan} with a private deterministic random
    stream and per-class injection counters. Substrate layers and
    engines ask it questions ("does this DMA fetch fail?", "does this
    line get invalidated?") and record recoveries back into it.

    Determinism contract: a fault class with probability 0.0 consumes
    no randomness, so an injector built from {!Plan.empty} leaves the
    simulation bit-for-bit unchanged — the property behind the
    "empty plan changes no golden output" guarantee, and behind
    byte-identical serial/parallel campaigns (each cell gets its own
    seeded injector). *)

type klass =
  | Dma_fail
  | Dma_spike
  | Bus_stall
  | Net_drop
  | Net_dup
  | Cache_invalidate
  | Table_swap
  | Irq_timeout

val class_name : klass -> string

val all_classes : klass list

type t

val create : ?seed:int64 -> Plan.t -> t

val plan : t -> Plan.t

val split : t -> t
(** Derived injector: same plan, independent stream, fresh counters. *)

val dma_attempts : t -> int option
(** One DMA entry fetch under the plan. [Some 0]: clean. [Some k]:
    succeeded after [k] injected failures (pay [backoff_us] and retry
    accounting). [None]: the retry budget is exhausted — fall back to
    the interrupt path. *)

val backoff_us : t -> attempts:int -> float
(** Exponential backoff paid for [attempts] failed tries:
    [dma_backoff_us * (2^attempts - 1)]. *)

val dma_spike_us : t -> float
(** 0.0, or the configured spike latency when the spike fires. *)

val bus_stall_us : t -> float

val net_drop : t -> bool

val net_dup : t -> bool

val cache_invalidate : t -> bool

val table_swap : t -> bool

val irq_timeout : t -> bool

val irq_reissues : t -> int
(** Timed-out deliveries before one interrupt lands (0 when nothing
    fires): each issue rolls [irq-timeout] independently, bounded by
    the [irq-retries] budget, after which the interrupt is serviced
    unconditionally. 0 re-issues are possible only with a positive
    budget; a budget of 0 disables the class entirely. *)

val note_recovery : t -> unit
(** Record one completed recovery action (a retried fetch that
    eventually succeeded, an interrupt-path fallback, a re-issued
    interrupt, a repaired cache line). *)

val recoveries : t -> int

val injected : t -> int
(** Total faults injected across all classes. *)

val injected_class : t -> klass -> int

val by_class : t -> (string * int) list
(** Nonzero injection counts, [(class name, count)], stable order. *)

val pp : Format.formatter -> t -> unit
