module Event = Utlb_obs.Event
module Reader = Utlb_obs.Reader
module Tenant = Utlb_tenant.Tenant

module Actor = struct
  type t = User of int | Kernel | Device of Event.component

  let compare = Stdlib.compare

  let name = function
    | User pid -> Printf.sprintf "user:%d" pid
    | Kernel -> "kernel"
    | Device c -> Event.component_name c
end

module AMap = Map.Make (Actor)

(* Vector clocks: a missing component is 0. *)
type vc = int AMap.t

let join = AMap.union (fun _ a b -> Some (max a b))

let tick actor vc =
  AMap.add actor (1 + Option.value ~default:0 (AMap.find_opt actor vc)) vc

let leq a b =
  AMap.for_all (fun k v -> v <= Option.value ~default:0 (AMap.find_opt k b)) a

let concurrent a b = (not (leq a b)) && not (leq b a)

let actor_of (ev : Event.t) =
  match ev.kind with
  | Event.Lookup | Event.Check_miss -> Actor.User ev.pid
  | Event.Pin | Event.Unpin | Event.Pre_pin -> Actor.Kernel
  | _ -> Actor.Device (Event.component_of_kind ev.kind)

(* Conflict classes over (pid, vpn) variables. All writes are kernel
   events and all reads NI events, so program order never hides a
   cross-actor race and write-write checks stay cheap. *)
let up10_write = function Event.Unpin -> true | _ -> false

let up10_read = function
  | Event.Ni_hit | Event.Ni_miss | Event.Fetch -> true
  | _ -> false

let up11_write = function
  | Event.Pin | Event.Unpin | Event.Pre_pin -> true
  | _ -> false

let up11_read = function Event.Fetch -> true | _ -> false

type access = { vc : vc; line : int; kind : Event.kind }

type var_state = {
  mutable last_write : access option;
  mutable reads : access list;  (* since the last write, newest first *)
  mutable flagged : bool;
}

(* Bound the per-variable read history: a page read thousands of times
   with no intervening write keeps only the newest reads. A race with a
   dropped older read implies one with a kept newer read, because reads
   of one variable come from the single NI actor in program order. *)
let max_reads = 128

let max_span = 4096

type conflict_table = {
  code : string;
  describe : string;
  is_write : Event.kind -> bool;
  is_read : Event.kind -> bool;
  vars : (int * int, var_state) Hashtbl.t;
}

let analyze_events ?context ?tenants events =
  let findings = ref [] in
  let clocks : (Actor.t, vc) Hashtbl.t = Hashtbl.create 16 in
  (* Tenancy isolation state (UP30/UP31), active only with [tenants].
     These checks are positional, not vector-clock based: the timeline
     claims a tenancy discipline and we look for interleavings the
     discipline forbids outright. *)
  let tenant_of pid =
    match tenants with
    | None -> -1
    | Some cfg ->
      if pid < 0 then -1
      else Option.value ~default:(-1) (Tenant.tenant_of_pid cfg ~pid)
  in
  let strict =
    match tenants with
    | Some cfg -> cfg.Tenant.mode = Tenant.Strict
    | None -> false
  in
  let tenant_name t =
    match tenants with
    | Some cfg when t >= 0 -> (Tenant.policy cfg t).Tenant.name
    | _ -> "-"
  in
  (* Pid of the NI's current requester: Ni_evict events carry the
     victim line's pid, so the inserter is the pid of the nearest
     preceding NI activity (its Ni_miss opens the fill). *)
  let last_ni_requester = ref (-1) in
  (* Open miss->fetch windows, one per tenant: (opening line, pid). *)
  let open_fetch : (int, int * int) Hashtbl.t = Hashtbl.create 4 in
  let tenancy_flagged : (string * int * int, unit) Hashtbl.t =
    Hashtbl.create 4
  in
  let tenancy_check line (ev : Event.t) =
    match tenants with
    | None -> ()
    | Some _ ->
      (match ev.kind with
      | Event.Ni_evict when strict ->
        (* UP30: under strict partitioning no tenant's line may be
           evicted by another tenant's fill. *)
        (* Both tenants must be known: an eviction before any tracked
           NI activity, or on behalf of an unmanaged pid, cannot be
           attributed to a cross-tenant fill. *)
        let vt = tenant_of ev.pid in
        let it = tenant_of !last_ni_requester in
        if vt >= 0 && it >= 0 && vt <> it
           && not (Hashtbl.mem tenancy_flagged ("UP30", vt, it))
        then begin
          Hashtbl.replace tenancy_flagged ("UP30", vt, it) ();
          findings :=
            Finding.vf ?context ~line ~code:"UP30"
              "strict partitioning violated: tenant %s's line (pid %d vpn \
               %#x) evicted by a fill on behalf of tenant %s (pid %d)"
              (tenant_name vt) ev.pid ev.vpn (tenant_name it)
              !last_ni_requester
            :: !findings
        end
      | Event.Ni_miss ->
        let t = tenant_of ev.pid in
        if t >= 0 then Hashtbl.replace open_fetch t (line, ev.pid)
      | Event.Fetch -> Hashtbl.remove open_fetch (tenant_of ev.pid)
      | Event.Unpin ->
        (* UP31: a tenant's unpin must not land inside another tenant's
           in-flight miss->fetch window — the NI could fetch through
           the dying translation on the victim tenant's behalf. *)
        let ut = tenant_of ev.pid in
        Hashtbl.iter
          (fun t (open_line, open_pid) ->
            if t <> ut && not (Hashtbl.mem tenancy_flagged ("UP31", t, ut))
            then begin
              Hashtbl.replace tenancy_flagged ("UP31", t, ut) ();
              findings :=
                Finding.vf ?context ~line ~code:"UP31"
                  "unpin of pid %d vpn %#x (tenant %s) interleaves with \
                   tenant %s's in-flight fetch (ni_miss of pid %d at line \
                   %d, no fetch yet)"
                  ev.pid ev.vpn (tenant_name ut) (tenant_name t) open_pid
                  open_line
                :: !findings
            end)
          open_fetch
      | _ -> ());
      (match ev.kind with
      | Event.Lookup | Event.Ni_hit | Event.Ni_miss | Event.Fetch ->
        if ev.pid >= 0 then last_ni_requester := ev.pid
      | _ -> ())
  in
  let last_time : (Actor.t, float) Hashtbl.t = Hashtbl.create 16 in
  let last_ni_vc : (int, vc) Hashtbl.t = Hashtbl.create 8 in
  let time_flagged : (Actor.t, unit) Hashtbl.t = Hashtbl.create 4 in
  let vc_of actor =
    Option.value ~default:AMap.empty (Hashtbl.find_opt clocks actor)
  in
  let host_join () =
    Hashtbl.fold
      (fun k v acc ->
        match k with
        | Actor.User _ | Actor.Kernel -> join acc v
        | Actor.Device _ -> acc)
      clocks AMap.empty
  in
  let tables =
    [
      {
        code = "UP10";
        describe = "NI translation use";
        is_write = up10_write;
        is_read = up10_read;
        vars = Hashtbl.create 64;
      };
      {
        code = "UP11";
        describe = "NI table-entry fetch";
        is_write = up11_write;
        is_read = up11_read;
        vars = Hashtbl.create 64;
      };
    ]
  in
  let var_of table key =
    match Hashtbl.find_opt table.vars key with
    | Some st -> st
    | None ->
      let st = { last_write = None; reads = []; flagged = false } in
      Hashtbl.add table.vars key st;
      st
  in
  let report table ~pid ~vpn (earlier : access) (later : access) =
    findings :=
      Finding.vf ?context ~line:later.line ~code:table.code
        "%s (line %d) and %s (line %d) of pid %d vpn %#x are unordered: no \
         happens-before edge separates the %s from the unpin/update"
        (Event.kind_name earlier.kind)
        earlier.line
        (Event.kind_name later.kind)
        later.line pid vpn table.describe
      :: !findings
  in
  let check table ~pid ~vpn (acc : access) =
    let st = var_of table (pid, vpn) in
    let conflict earlier =
      if (not st.flagged) && concurrent earlier.vc acc.vc then begin
        st.flagged <- true;
        report table ~pid ~vpn earlier acc
      end
    in
    if table.is_write acc.kind then begin
      Option.iter conflict st.last_write;
      List.iter conflict (List.rev st.reads);
      st.last_write <- Some acc;
      st.reads <- []
    end
    else begin
      Option.iter conflict st.last_write;
      st.reads <-
        (if List.length st.reads >= max_reads then
           acc :: List.filteri (fun i _ -> i < max_reads - 1) st.reads
         else acc :: st.reads)
    end
  in
  List.iter
    (fun (line, (ev : Event.t)) ->
      let actor = actor_of ev in
      tenancy_check line ev;
      (* UP13: per-actor time monotonicity. *)
      (match Hashtbl.find_opt last_time actor with
      | Some t
        when ev.at_us < t -. 1e-9 && not (Hashtbl.mem time_flagged actor) ->
        Hashtbl.replace time_flagged actor ();
        findings :=
          Finding.vf ?context ~line ~code:"UP13"
            "time regresses within actor %s: %s at %.3f us follows %.3f us"
            (Actor.name actor) (Event.kind_name ev.kind) ev.at_us t
          :: !findings
      | _ -> ());
      Hashtbl.replace last_time actor ev.at_us;
      (* Incoming edges, then the actor's own step. *)
      let cur = vc_of actor in
      let cur =
        match actor with
        | Actor.User pid ->
          if ev.kind = Event.Lookup then
            match Hashtbl.find_opt last_ni_vc pid with
            | Some v -> join cur v
            | None -> cur
          else cur
        | Actor.Kernel -> join cur (host_join ())
        | Actor.Device c ->
          let cur = join cur (host_join ()) in
          if c = Event.Irq then join cur (vc_of (Actor.Device Event.Ni))
          else cur
      in
      let stamped = tick actor cur in
      Hashtbl.replace clocks actor stamped;
      (* Outgoing edges. *)
      (match (actor, ev.kind) with
      | Actor.Kernel, _ when ev.pid >= 0 ->
        let u = Actor.User ev.pid in
        Hashtbl.replace clocks u (join (vc_of u) stamped)
      | Actor.Device Event.Irq, _ ->
        Hashtbl.replace clocks Actor.Kernel
          (join (vc_of Actor.Kernel) stamped)
      | Actor.Device Event.Dma, (Event.Dma_fetch_end | Event.Dma_data_end)
      | Actor.Device Event.Bus, Event.Bus_end ->
        let ni = Actor.Device Event.Ni in
        Hashtbl.replace clocks ni (join (vc_of ni) stamped)
      | Actor.Device Event.Ni, _ when ev.pid >= 0 ->
        Hashtbl.replace last_ni_vc ev.pid stamped
      | _ -> ());
      (* Conflict detection over the event's page span. *)
      if ev.vpn >= 0 then begin
        let span = min (max ev.count 1) max_span in
        List.iter
          (fun table ->
            if table.is_write ev.kind || table.is_read ev.kind then
              for vpn = ev.vpn to ev.vpn + span - 1 do
                check table ~pid:ev.pid ~vpn
                  { vc = stamped; line; kind = ev.kind }
              done)
          tables
      end)
    events;
  List.rev !findings

let analyze ?context ?tenants (t : Reader.t) =
  let up12 =
    List.map
      (fun (line, msg) -> Finding.v ?context ~line ~code:"UP12" msg)
      t.Reader.errors
  in
  let section_findings =
    List.concat_map
      (fun (s : Reader.section) ->
        let context =
          match (context, s.Reader.label) with
          | None, "" -> None
          | None, label -> Some label
          | Some c, "" -> Some c
          | Some c, label -> Some (c ^ ":" ^ label)
        in
        analyze_events ?context ?tenants s.Reader.events)
      t.Reader.sections
  in
  up12 @ section_findings

let analyze_file ?tenants path =
  match Reader.read_file path with
  | Error msg -> Error msg
  | Ok t -> Ok (analyze ~context:path ?tenants t)
