type severity = Utlb_sim.Sanitizer.severity = Info | Warning | Error

type t = {
  code : string;
  severity : severity;
  message : string;
  context : string option;
  line : int option;
}

let v ?context ?line ?(severity = Error) ~code message =
  { code; severity; message; context; line }

let vf ?context ?line ?severity ~code fmt =
  Format.kasprintf (fun message -> v ?context ?line ?severity ~code message) fmt

let errors l = List.length (List.filter (fun f -> f.severity = Error) l)

let warnings l = List.length (List.filter (fun f -> f.severity = Warning) l)

let has_errors l = List.exists (fun f -> f.severity = Error) l

let rank = function Error -> 0 | Warning -> 1 | Info -> 2

let by_severity l =
  List.stable_sort (fun a b -> compare (rank a.severity) (rank b.severity)) l

let exit_code ?(strict = false) l =
  if has_errors l then 1
  else if strict && warnings l > 0 then 1
  else 0

let pp ppf f =
  (match (f.context, f.line) with
  | None, None -> ()
  | Some c, None -> Format.fprintf ppf "%s: " c
  | Some c, Some line -> Format.fprintf ppf "%s:%d: " c line
  | None, Some line -> Format.fprintf ppf "line %d: " line);
  Format.fprintf ppf "%s %s: %s" f.code
    (Utlb_sim.Sanitizer.severity_name f.severity)
    f.message

(* Minimal JSON string escaping: the messages are ASCII diagnostics,
   but paths in [context] may hold anything. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp_json ppf f =
  Format.fprintf ppf "{\"code\":\"%s\",\"severity\":\"%s\",\"message\":\"%s\""
    (json_escape f.code)
    (Utlb_sim.Sanitizer.severity_name f.severity)
    (json_escape f.message);
  (match f.context with
  | None -> ()
  | Some c -> Format.fprintf ppf ",\"context\":\"%s\"" (json_escape c));
  (match f.line with
  | None -> ()
  | Some line -> Format.fprintf ppf ",\"line\":%d" line);
  Format.fprintf ppf "}"

let pp_json_list ppf findings =
  Format.fprintf ppf "[";
  List.iteri
    (fun i f ->
      if i > 0 then Format.fprintf ppf ",";
      Format.fprintf ppf "@\n  %a" pp_json f)
    findings;
  if findings <> [] then Format.fprintf ppf "@\n";
  Format.fprintf ppf "]"
