type severity = Utlb_sim.Sanitizer.severity = Info | Warning | Error

type t = {
  code : string;
  severity : severity;
  message : string;
  context : string option;
}

let v ?context ?(severity = Error) ~code message =
  { code; severity; message; context }

let vf ?context ?severity ~code fmt =
  Format.kasprintf (fun message -> v ?context ?severity ~code message) fmt

let errors l = List.length (List.filter (fun f -> f.severity = Error) l)

let warnings l = List.length (List.filter (fun f -> f.severity = Warning) l)

let has_errors l = List.exists (fun f -> f.severity = Error) l

let rank = function Error -> 0 | Warning -> 1 | Info -> 2

let by_severity l =
  List.stable_sort (fun a b -> compare (rank a.severity) (rank b.severity)) l

let exit_code ?(strict = false) l =
  if has_errors l then 1
  else if strict && warnings l > 0 then 1
  else 0

let pp ppf f =
  (match f.context with
  | None -> ()
  | Some c -> Format.fprintf ppf "%s: " c);
  Format.fprintf ppf "%s %s: %s" f.code
    (Utlb_sim.Sanitizer.severity_name f.severity)
    f.message
