(** Cross-layer runtime invariant sanitizers.

    The engines in [lib/utlb] carry their own shadow checks (enabled by
    passing a {!Utlb_sim.Sanitizer.t} to their [create]); this module
    supplies the glue that single layers cannot: guarding the NIC DMA
    engine against frames the host says are unpinned, and watching the
    event loop for non-monotonic dispatch.

    {2 Violation codes}

    - [UV01] pin/unpin imbalance detected when a process is removed;
    - [UV02] DMA issued against (or cache filled with) the pinned
      garbage frame;
    - [UV03] DMA issued against a frame whose backing page is not
      pinned — the OS could evict it mid-transfer;
    - [UV04] NI-cache entry disagrees with the host translation table;
    - [UV05] NI-cache holds a translation for a page that is no longer
      pinned;
    - [UV06] event dispatched before the simulation clock (time ran
      backwards);
    - [UV07] {!Utlb.Miss_classifier} shadow structures diverged;
    - [UV08] incremental pin accounting disagrees with a full
      page-table recount.

    The catalogue also carries the fault-plan lint codes
    ([UC170]-[UC172], see {!Config_lint}) so [--explain] can describe
    them. *)

val codes : (string * string) list
(** The catalogue above as [(code, description)] — the runtime slice
    of {!Catalogue.all}. *)

val describe : string -> string option
(** Description of one code, if known. Resolves against the full
    merged {!Catalogue} (UC/UV/UP), not just the runtime slice. *)

val check_dispatch :
  Utlb_sim.Sanitizer.t -> now:Utlb_sim.Time.t -> at:Utlb_sim.Time.t -> unit
(** Record UV06 if [at] is earlier than [now]. *)

val monitor_engine : Utlb_sim.Sanitizer.t -> Utlb_sim.Engine.t -> unit
(** Install {!check_dispatch} as the engine's dispatch monitor: every
    event delivery is checked against the clock before it advances. *)

val dma_frame_guard :
  Utlb_sim.Sanitizer.t -> host:Utlb_mem.Host_memory.t -> frame:int -> unit
(** Judge one frame about to be DMA-transferred: UV02 for the garbage
    frame, UV03 when the backing page is unpinned or the frame has no
    owner at all. *)

val guard_dma :
  Utlb_sim.Sanitizer.t -> host:Utlb_mem.Host_memory.t -> Utlb_nic.Dma.t -> unit
(** Install {!dma_frame_guard} on a DMA engine, checking every frame
    passed to [host_to_nic]/[nic_to_host] at issue time. *)
