module Ni_cache = Utlb.Ni_cache
module Replacement = Utlb.Replacement

type engine = Utlb | Intr | Per_process

let engine_name = function
  | Utlb -> "utlb"
  | Intr -> "intr"
  | Per_process -> "per-process"

let engine_of_string s =
  match String.lowercase_ascii s with
  | "utlb" | "hier" | "hierarchical" -> Some Utlb
  | "intr" | "interrupt" | "interrupt-based" -> Some Intr
  | "per-process" | "pp" -> Some Per_process
  | _ -> None

type t = {
  source : string;
  engine : engine;
  entries : int;
  associativity : Ni_cache.associativity;
  prefetch : int;
  prepin : int;
  policy : Replacement.policy;
  limit_mb : int option;
  processes : int;
  sram_budget_entries : int;
  user_check_us : float;
  ni_hit_us : float;
  ni_direct_us : float;
  intr_us : float;
  kernel_pin_us : float;
  kernel_unpin_us : float;
  check_min_us : float;
  pin_table : (int * float) list;
  unpin_table : (int * float) list;
  ni_miss_table : (int * float) list;
  dma_table : (int * float) list;
  check_max_table : (int * float) list;
  faults : string option;
}

(* Paper defaults, matching Cost_model.default and the engines'
   default_config values. *)
let default =
  {
    source = "<default>";
    engine = Utlb;
    entries = 8192;
    associativity = Ni_cache.Direct;
    prefetch = 1;
    prepin = 1;
    policy = Replacement.Lru;
    limit_mb = None;
    processes = 5;
    sram_budget_entries = 8192;
    user_check_us = 0.5;
    ni_hit_us = 0.8;
    ni_direct_us = 0.5;
    intr_us = 10.0;
    kernel_pin_us = 17.0;
    kernel_unpin_us = 15.0;
    check_min_us = 0.2;
    pin_table =
      [ (1, 27.0); (2, 30.0); (4, 36.0); (8, 47.0); (16, 70.0); (32, 115.0) ];
    unpin_table =
      [ (1, 25.0); (2, 30.0); (4, 36.0); (8, 50.0); (16, 80.0); (32, 139.0) ];
    ni_miss_table =
      [ (1, 1.8); (2, 1.9); (4, 1.9); (8, 2.3); (16, 2.8); (32, 3.2) ];
    dma_table =
      [ (1, 1.5); (2, 1.6); (4, 1.6); (8, 1.9); (16, 2.1); (32, 2.5) ];
    check_max_table =
      [ (1, 0.4); (2, 0.6); (4, 0.6); (8, 0.6); (16, 0.6); (32, 0.7) ];
    faults = None;
  }

(* Anchor-table syntax: "1:27, 2:30.5, 4:36". *)
let parse_anchors s =
  let parse_pair chunk =
    match String.split_on_char ':' (String.trim chunk) with
    | [ size; cost ] ->
      (match (int_of_string_opt (String.trim size),
              float_of_string_opt (String.trim cost)) with
      | Some n, Some c -> Some (n, c)
      | _ -> None)
    | _ -> None
  in
  let chunks = String.split_on_char ',' s in
  let pairs = List.filter_map parse_pair chunks in
  if List.length pairs = List.length chunks then Some pairs else None

let parse_string ?(source = "<string>") text =
  let cfg = ref { default with source } in
  let findings = ref [] in
  let seen = Hashtbl.create 16 in
  let note ?severity ~code fmt =
    Finding.vf ~context:source ?severity ~code fmt
  in
  let add f = findings := f :: !findings in
  let bad_value ~line key value expected =
    add
      (note ~code:"UC003" "line %d: invalid value %S for %S (expected %s)"
         line value key expected)
  in
  let set_int ~line key value f =
    match int_of_string_opt value with
    | Some n -> f n
    | None -> bad_value ~line key value "an integer"
  in
  let set_float ~line key value f =
    match float_of_string_opt value with
    | Some x -> f x
    | None -> bad_value ~line key value "a number"
  in
  let set_anchors ~line key value f =
    match parse_anchors value with
    | Some pairs -> f pairs
    | None -> bad_value ~line key value "size:cost pairs, e.g. 1:27,2:30"
  in
  let handle ~line key value =
    (match Hashtbl.find_opt seen key with
    | Some first ->
      add
        (note ~severity:Finding.Warning ~code:"UC004"
           "line %d: duplicate key %S (first set on line %d); later value \
            wins"
           line key first)
    | None -> Hashtbl.replace seen key line);
    match key with
    | "engine" ->
      (match engine_of_string value with
      | Some e -> cfg := { !cfg with engine = e }
      | None -> bad_value ~line key value "utlb, intr, or per-process")
    | "entries" -> set_int ~line key value (fun n -> cfg := { !cfg with entries = n })
    | "assoc" | "associativity" ->
      (match Ni_cache.associativity_of_string value with
      | Some a -> cfg := { !cfg with associativity = a }
      | None -> bad_value ~line key value "direct, direct-nohash, 2-way, or 4-way")
    | "prefetch" ->
      set_int ~line key value (fun n -> cfg := { !cfg with prefetch = n })
    | "prepin" ->
      set_int ~line key value (fun n -> cfg := { !cfg with prepin = n })
    | "policy" ->
      (match Replacement.policy_of_string value with
      | Some p -> cfg := { !cfg with policy = p }
      | None -> bad_value ~line key value "lru, mru, lfu, mfu, or random")
    | "limit_mb" ->
      if String.lowercase_ascii value = "none" then
        cfg := { !cfg with limit_mb = None }
      else
        set_int ~line key value (fun n -> cfg := { !cfg with limit_mb = Some n })
    | "processes" ->
      set_int ~line key value (fun n -> cfg := { !cfg with processes = n })
    | "sram_budget_entries" ->
      set_int ~line key value (fun n ->
          cfg := { !cfg with sram_budget_entries = n })
    | "user_check_us" ->
      set_float ~line key value (fun x -> cfg := { !cfg with user_check_us = x })
    | "ni_hit_us" ->
      set_float ~line key value (fun x -> cfg := { !cfg with ni_hit_us = x })
    | "ni_direct_us" ->
      set_float ~line key value (fun x -> cfg := { !cfg with ni_direct_us = x })
    | "intr_us" ->
      set_float ~line key value (fun x -> cfg := { !cfg with intr_us = x })
    | "kernel_pin_us" ->
      set_float ~line key value (fun x -> cfg := { !cfg with kernel_pin_us = x })
    | "kernel_unpin_us" ->
      set_float ~line key value (fun x ->
          cfg := { !cfg with kernel_unpin_us = x })
    | "check_min_us" ->
      set_float ~line key value (fun x -> cfg := { !cfg with check_min_us = x })
    | "pin_table" ->
      set_anchors ~line key value (fun a -> cfg := { !cfg with pin_table = a })
    | "unpin_table" ->
      set_anchors ~line key value (fun a -> cfg := { !cfg with unpin_table = a })
    | "ni_miss_table" ->
      set_anchors ~line key value (fun a ->
          cfg := { !cfg with ni_miss_table = a })
    | "dma_table" ->
      set_anchors ~line key value (fun a -> cfg := { !cfg with dma_table = a })
    | "check_max_table" ->
      set_anchors ~line key value (fun a ->
          cfg := { !cfg with check_max_table = a })
    | "faults" ->
      (* Kept as the raw spec: Config_lint parses and range-checks it
         (UC170-UC172) so all problems surface together. *)
      cfg := { !cfg with faults = Some value }
    | _ ->
      add
        (note ~severity:Finding.Warning ~code:"UC002"
           "line %d: unknown key %S ignored" line key)
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i raw ->
      let line = i + 1 in
      let body =
        match String.index_opt raw '#' with
        | Some j -> String.sub raw 0 j
        | None -> raw
      in
      let body = String.trim body in
      if body <> "" then
        match String.index_opt body '=' with
        | None ->
          add
            (note ~code:"UC001" "line %d: expected \"key = value\", got %S"
               line body)
        | Some j ->
          let key = String.trim (String.sub body 0 j) in
          let value =
            String.trim (String.sub body (j + 1) (String.length body - j - 1))
          in
          if key = "" then
            add (note ~code:"UC001" "line %d: empty key" line)
          else if value = "" then
            add (note ~code:"UC005" "line %d: empty value for %S" line key)
          else handle ~line key value)
    lines;
  (!cfg, List.rev !findings)

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> Ok (parse_string ~source:path text)
  | exception Sys_error msg -> Error msg
