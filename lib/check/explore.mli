(** Exhaustive small-scope model checking of the pin protocol: the
    [utlbcheck explore] pass.

    The {!Protocol} verifier checks the traces we happen to run; this
    pass instead enumerates {e every} interleaving of the protocol's
    individual steps — pin, unpin, table publish, NI fetch, eviction,
    interrupt delivery, DMA use ({!Utlb.Stepper.action}) — for a small
    configuration (a few processes x pages x NI-cache lines) against
    the step-level semantics any registered engine derives via
    {!Utlb.Engine_intf.S.stepper}. A new engine gets a machine-checked
    protocol certificate the moment it registers.

    The search is a depth-first enumeration with:

    - {b canonical state hashing} — {!Utlb.Stepper.state} keeps every
      collection sorted, so structurally equal values are equal
      protocol states and the visited table hashes them directly;
    - {b dynamic partial-order reduction} — sleep sets (an explored
      action is pushed to its siblings' sleep sets and inherited by
      children through an independence filter keyed on the (page,
      process) footprint) plus a persistent-set heuristic (a process
      whose next protocol step provably conflicts with nobody is
      advanced alone);
    - {b bounded search} — a depth cap and a transition budget; hitting
      either is reported in {!stats.truncation}, never silent.

    Violations combine the admission codes of {!Protocol} (UP01-UP05,
    found on [Issue] transitions) with the exploration-only codes
    UP20-UP23 ({!Catalogue.exploration}): deadlock, unreachable-unpin
    leak, non-quiescent terminal state, and in-flight invalidation
    races. Each first (code, pid) violation is minimized to a
    {!counterexample} whose records form a standard trace file —
    replayable by [utlbsim run --trace-in], re-checkable by [utlbcheck
    verify] (same UP0x code), and re-explorable in trace mode (same
    UP2x code). *)

(** {2 Configuration} *)

type config = {
  scope : Utlb.Stepper.scope;
  max_depth : int;  (** Longest explored action sequence. *)
  budget : int;  (** Maximum transitions fired. *)
}

val default_config : config
(** {!Utlb.Stepper.default_scope}, depth 400, budget 200k — the fixed
    small scope CI checks every engine against. *)

(** {2 Results} *)

type truncation = Exhaustive | Depth_capped | Budget_capped

val truncation_label : truncation -> string

type stats = {
  states : int;  (** Distinct canonical states reached. *)
  transitions : int;  (** Transitions fired. *)
  enabled_total : int;
      (** Enabled actions summed over expanded states: the naive
          interleaving frontier. *)
  dpor_prunes : int;
      (** Enabled actions not fired (persistent-set selection plus
          sleep-set skips). *)
  sleep_prunes : int;  (** The sleep-set share of [dpor_prunes]. *)
  revisits : int;  (** Arrivals at an already-covered state. *)
  max_depth : int;
  truncation : truncation;
  time_ms : float;  (** Search CPU time. *)
}

val prune_ratio : stats -> float
(** [dpor_prunes / enabled_total] — the fraction of the naive
    frontier DPOR avoided. *)

type counterexample = {
  code : string;
  pid : int;
  records : Utlb_trace.Record.t list;  (** The minimized trace. *)
  schedule : string list;
      (** The full interleaving that tripped the violation, one
          {!Utlb.Stepper.action_label} per step. *)
}

type result = {
  label : string;
  semantics : Utlb.Stepper.semantics;
  findings : Finding.t list;  (** Deduplicated per (code, pid). *)
  counterexamples : counterexample list;  (** Same order as findings
      were discovered. *)
  stats : stats;
}

(** {2 Deriving semantics} *)

val semantics_of_packed : Utlb.Engine_intf.packed -> Utlb.Stepper.semantics
(** The engine's own step-level view
    ({!Utlb.Engine_intf.S.stepper}). *)

val semantics_of_mech :
  name:string ->
  params:(string * string) list ->
  (Utlb.Stepper.semantics, string) Stdlib.result
(** Resolve a registry mechanism spec (the [--engine name,k=v,...]
    form) through {!Utlb.Sim_driver.Registry} and derive its
    semantics. [Error] on an unknown mechanism or malformed
    parameters. *)

val semantics_of_config : Config_file.t -> Utlb.Stepper.semantics
(** Step-level semantics of a parsed configuration file (mirrors
    {!Protocol.of_config}). *)

val program_of_records :
  Utlb_trace.Record.t list -> (int * Utlb.Stepper.request) list
(** Trace mode: the (pid, request) issue program, in record order. *)

val program_of_trace :
  Utlb_trace.Trace.t -> (int * Utlb.Stepper.request) list

(** {2 Running} *)

val explore :
  ?config:config -> ?label:string -> Utlb.Stepper.semantics -> result
(** Exhaustively search the scope (default {!default_config}; default
    label {!Utlb.Stepper.mechanism}). Deterministic: same semantics
    and config, same result (modulo [time_ms]). *)

(** {2 Witness search}

    [utlbcheck bound --witness] support: a reachability query for a
    concrete schedule realizing a pinned-population target inside the
    scope. DPOR is deliberately off here — it preserves violations,
    not every intermediate global state, and the peak population lives
    in the intermediate states — so this is a plain bounded DFS with
    state caching, a greedy (population-raising actions first) order,
    and branch-and-bound termination at the target. *)

type witness = {
  target : int;  (** The population the search aimed for. *)
  peak : int;  (** The largest population actually reached. *)
  confirmed : bool;  (** [peak >= target]. *)
  schedule : string list;
      (** The interleaving reaching the peak, one
          {!Utlb.Stepper.action_label} per step. *)
  records : Utlb_trace.Record.t list;
      (** Its issued requests as a standard trace, replayable by
          [utlbsim run --trace-in]. *)
  states : int;
  transitions : int;
}

val pinned_witness :
  ?config:config -> target:int -> Utlb.Stepper.semantics -> witness
(** Search the scope for a schedule pinning [target] pages at once
    ({!Bound.witness_target} of the analyzed engine). Deterministic.
    A [confirmed] witness upgrades the scoped pinned bound from
    PLAUSIBLE (sound but possibly loose) to CONFIRMED (realized by a
    concrete schedule). *)

val witness_lines : label:string -> witness -> string list
(** The witness as the lines of a standard trace file: [#] headers
    carrying the engine, target, peak, and CONFIRMED/PLAUSIBLE status,
    the schedule as comments, then one record per issued request. *)

val counterexample_lines : result -> counterexample -> string list
(** The counterexample as the lines of a standard trace file: a [#]
    header carrying the engine, code, and full schedule, then one
    record per line — loadable by every trace reader in the repo. *)

val pp_stats : Format.formatter -> result -> unit
(** One-line stats summary, with the truncation cap called out when
    the search was bounded. *)
