(** A static-analysis finding.

    Every problem the configuration linter detects is reported as a
    finding with a stable machine-readable code (the UC1xx catalogue in
    {!Config_lint}), a severity, and a human-readable message, so CI
    can assert on classes of problems and [utlbcheck] can derive its
    exit code mechanically. *)

type severity = Utlb_sim.Sanitizer.severity = Info | Warning | Error

type t = {
  code : string;  (** Stable machine-readable code, e.g. ["UC103"]. *)
  severity : severity;
  message : string;
  context : string option;
      (** What was being linted: a file name, a config field, ... *)
}

val v : ?context:string -> ?severity:severity -> code:string -> string -> t
(** Build a finding (default severity [Error]). *)

val vf :
  ?context:string ->
  ?severity:severity ->
  code:string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a
(** [v] with a format string for the message. *)

val errors : t list -> int

val warnings : t list -> int

val has_errors : t list -> bool

val by_severity : t list -> t list
(** Stable sort, most severe first. *)

val exit_code : ?strict:bool -> t list -> int
(** CI exit code: 1 when the list has errors — or, with [strict],
    warnings — and 0 otherwise. Info findings never fail a run. *)

val pp : Format.formatter -> t -> unit
(** ["context: code severity: message"]. *)
