(** A static-analysis finding.

    Every problem the configuration linter or the [verify] passes
    detect is reported as a finding with a stable machine-readable code
    (the UC/UP catalogues in {!Catalogue}), a severity, and a
    human-readable message, so CI can assert on classes of problems and
    [utlbcheck] can derive its exit code mechanically. *)

type severity = Utlb_sim.Sanitizer.severity = Info | Warning | Error

type t = {
  code : string;  (** Stable machine-readable code, e.g. ["UC103"]. *)
  severity : severity;
  message : string;
  context : string option;
      (** What was being analysed: a file name, a config field, a
          campaign cell label, ... *)
  line : int option;
      (** 1-based line in [context] the finding anchors to (a trace
          record, an event), when the input has lines. *)
}

val v :
  ?context:string -> ?line:int -> ?severity:severity -> code:string ->
  string -> t
(** Build a finding (default severity [Error]). *)

val vf :
  ?context:string ->
  ?line:int ->
  ?severity:severity ->
  code:string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a
(** [v] with a format string for the message. *)

val errors : t list -> int

val warnings : t list -> int

val has_errors : t list -> bool

val by_severity : t list -> t list
(** Stable sort, most severe first: [Error] before [Warning] before
    [Info], findings of equal severity keeping their input order — so
    the report order is deterministic for a given analysis. *)

val exit_code : ?strict:bool -> t list -> int
(** CI exit code: 1 when the list has errors — or, with [strict],
    warnings — and 0 otherwise. Info findings never fail a run. *)

val json_escape : string -> string
(** Backslash-escape a string for embedding inside a JSON string
    literal (quotes, backslashes, control characters). *)

val pp : Format.formatter -> t -> unit
(** ["context:line: code severity: message"] (context/line parts only
    when present). *)

val pp_json : Format.formatter -> t -> unit
(** One finding as a JSON object with [code], [severity], [message],
    and — when present — [context] and [line] members. *)

val pp_json_list : Format.formatter -> t list -> unit
(** A JSON array of {!pp_json} objects, one per line. *)
