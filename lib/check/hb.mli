(** Happens-before race detector over exported event timelines.

    The paper's protocol hinges on orderings the host and the NI must
    establish before touching shared translation state: a page may only
    be unpinned after the NI is done translating through it, and the NI
    may only fetch a table entry the host is not concurrently
    rewriting. A simulated run's event timeline ({!Utlb_obs.Export},
    readable back via {!Utlb_obs.Reader}) records {e one} interleaving;
    this pass asks which of its orderings are {e guaranteed} by a
    synchronisation edge rather than by scheduling accident, using
    vector clocks over the trace's actors:

    - one [User] actor per simulated pid (the SMP node's processes run
      in parallel) for [Lookup]/[Check_miss];
    - a single [Kernel] actor for [Pin]/[Unpin]/[Pre_pin] (pin ioctls
      serialise in the kernel);
    - one actor per device component ([Ni], [Dma], [Bus], [Irq], and
      the rest) for everything else.

    Happens-before edges, beyond per-actor program order:

    - {e issue}: every kernel and device event is ordered after all
      user program order so far (host-issued work is FIFO), and device
      events after the kernel too;
    - {e interrupt delivery}: an [Interrupt] is ordered after all NI
      activity so far, and the kernel after the interrupt (the miss
      handler runs in the kernel);
    - {e DMA/bus completion}: [Dma_*_end] and [Bus_end] order
      subsequent NI activity after the transfer they complete;
    - {e lookup completion}: a [Lookup] by pid [p] is ordered after
      the NI activity attributed to [p] so far (the VMMC notification
      the process observed before issuing again);
    - {e kernel return}: a kernel event's issuing process observes it.

    Conflicting accesses to the same (pid, page) with {e neither} order
    guaranteed are reported:

    - [UP10] an [Unpin] unordered with an NI use ([Ni_hit], [Ni_miss],
      [Fetch]) of the page's translation — the use-after-unpin race
      the UV03/UV05 sanitizers catch dynamically;
    - [UP11] a pin-table write ([Pin], [Pre_pin], [Unpin]) unordered
      with an NI [Fetch] of the same entry;
    - [UP12] a timeline line that does not parse;
    - [UP13] event time regresses within one actor (a corrupt or
      misassembled timeline).

    With [tenants] (a {!Utlb_tenant.Tenant.config}), the pass also
    checks the cross-tenant isolation discipline the config claims:

    - [UP30] under [Strict] partitioning, an [Ni_evict] of one
      tenant's line caused by a fill on behalf of a different tenant
      ([Ni_evict] events carry the victim's pid; the filling tenant is
      the nearest preceding NI requester) — running an unpartitioned
      timeline against a strict spec surfaces exactly the interference
      partitioning would have prevented;
    - [UP31] an [Unpin] by one tenant interleaved inside another
      tenant's in-flight [Ni_miss]->[Fetch] window — the NI could
      fetch through the dying translation on the victim's behalf.

    UP30/UP31 are positional (interleaving-based), not vector-clock
    based, and report once per (code, tenant pair).

    One finding is reported per (code, page) — the first unordered
    pair found — and each carries the line number of the later event.

    The edges above model the synchronisation the paper's engines
    actually emit (interrupts, completion notifications). An engine
    relying on orderings the timeline cannot show — e.g. host-serial
    execution with no notification — can report a race on a benign
    trace; such a finding means "no ordering {e visible in the
    trace}", which is exactly what the corpus under [test/verify/]
    seeds and what a protocol regression would silently lose. *)

val analyze_events :
  ?context:string ->
  ?tenants:Utlb_tenant.Tenant.config ->
  (int * Utlb_obs.Event.t) list ->
  Finding.t list
(** Race-check one section's [(line, event)] stream with fresh clocks;
    with [tenants], also run the UP30/UP31 isolation checks. *)

val analyze :
  ?context:string ->
  ?tenants:Utlb_tenant.Tenant.config ->
  Utlb_obs.Reader.t ->
  Finding.t list
(** Check every section of a parsed timeline independently (cells of a
    campaign share no state); reader errors become UP12 findings. The
    section label is appended to [context]. *)

val analyze_file :
  ?tenants:Utlb_tenant.Tenant.config ->
  string ->
  (Finding.t list, string) result
(** {!analyze} on a timeline file, with the path as context. [Error]
    only when the file cannot be read. *)
