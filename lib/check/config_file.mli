(** Simulation configuration files for [utlbcheck].

    A deliberately simple [key = value] format (one pair per line, [#]
    comments) describing everything a simulation run is parameterised
    by: which engine, the Shared UTLB-Cache geometry, prefetch/pre-pin
    depths, the replacement policy, the per-process memory limit, and
    the cost-model constants. Example:

    {v
    # Paper-default Hierarchical UTLB
    engine   = utlb
    entries  = 8192
    assoc    = direct
    prefetch = 1
    prepin   = 1
    policy   = lru
    limit_mb = 64
    ni_hit_us = 0.8
    pin_table = 1:27, 2:30, 4:36, 8:47, 16:70, 32:115
    v}

    Parsing is forgiving by design: malformed or unknown entries
    produce {!Finding.t}s (codes UC001-UC005) and fall back to the
    paper defaults, so the semantic linter ({!Config_lint}) always has
    a complete configuration to analyse. *)

type engine = Utlb | Intr | Per_process

val engine_name : engine -> string

type t = {
  source : string;  (** Where the config came from, for messages. *)
  engine : engine;
  entries : int;
  associativity : Utlb.Ni_cache.associativity;
  prefetch : int;
  prepin : int;
  policy : Utlb.Replacement.policy;
  limit_mb : int option;
  processes : int;
  sram_budget_entries : int;
  user_check_us : float;
  ni_hit_us : float;
  ni_direct_us : float;
  intr_us : float;
  kernel_pin_us : float;
  kernel_unpin_us : float;
  check_min_us : float;
  pin_table : (int * float) list;
  unpin_table : (int * float) list;
  ni_miss_table : (int * float) list;
  dma_table : (int * float) list;
  check_max_table : (int * float) list;
  faults : string option;
      (** Raw fault-plan spec ([faults = dma-fail=0.05,...]); parsed
          and range-checked by {!Config_lint} (codes UC170-UC172). *)
}

val default : t
(** The paper-default Hierarchical-UTLB configuration. *)

val parse_string : ?source:string -> string -> t * Finding.t list
(** Parse config text. Syntactic problems (unparseable lines, bad
    values, unknown or duplicate keys) are returned as findings; the
    affected keys keep their defaults. *)

val parse_file : string -> (t * Finding.t list, string) result
(** [Error msg] when the file cannot be read. *)
